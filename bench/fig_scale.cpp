// fig_scale -- sharded-simulator scale sweep (BENCH_shard.json).
//
// The figures in section 6 stop where one event loop on one core stops; the
// sharded engine (DESIGN.md section 13) is what lets the same seeded churn
// workload reach the paper's claimed scales.  This bench sweeps shard counts
// over a >=100k-host internet-like topology, reporting events/sec and peak
// RSS as first-class metrics, then runs the 1M-host cell from the
// EXPERIMENTS.md recipe.
//
// Two gates decide the exit code:
//   - determinism: the 1-shard and 4-shard runs of the same seed must agree
//     byte-for-byte on merged metrics and bit-for-bit on flight-recorder and
//     shard-audit digests, and every cell must audit clean;
//   - speedup: >=2x events/sec at 4 shards vs 1 -- enforced only when the
//     host actually has >=4 hardware threads (on fewer cores the workers
//     time-slice and the number measures oversubscription, not the engine).
//
// Output: a console table plus BENCH_shard.json (override the path with
// ROFL_SHARD_JSON; empty string suppresses emission).  peak_rss_kb is the
// process high-water mark at the end of each cell, so within one run it is
// monotone; the 1M-host cell's value is the honest figure for that scale.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "audit/shard_audit.hpp"
#include "bench_common.hpp"
#include "interdomain/shard_model.hpp"
#include "obs/timeline.hpp"
#include "sim/profiler.hpp"
#include "util/table.hpp"

namespace rofl {
namespace {

struct ScaleCell {
  std::uint64_t hosts = 0;
  std::uint32_t shards = 0;
  std::uint64_t events = 0;
  std::uint64_t cross_msgs = 0;
  std::uint64_t batches = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  long rss_kb = 0;
  std::uint64_t flight_digest = 0;
  std::string audit_digest;
  bool clean = false;
  std::string metrics_json;   // kept only where a gate compares it
  std::string timeline_jsonl; // merged windowed series (same gate)
  std::string profile_json;   // per-shard busy/stall/idle (wall clock)
  std::vector<std::uint64_t> events_series;  // per-window sim.events deltas
  double timeline_window_ms = 0.0;
};

inter::ScaleParams make_params(std::uint64_t hosts, std::uint32_t shards) {
  inter::ScaleParams p;
  p.hosts = hosts;
  p.shards = shards;
  p.seed = bench::kSeed;
  p.trace_sample = 16;  // exercise the flight-recorder digest gate
  // Windowed telemetry + engine self-profile on every cell: the timeline is
  // deterministic (folds into the shard-count gate below); the profile is
  // wall-clock reporting only and never compared.
  p.timeline_window_ms = 50.0;
  p.profile = true;
  if (hosts >= 1'000'000) {
    // ~3000 ASes, short horizon: the point is reaching the scale at all.
    p.topo.tier1_count = 10;
    p.topo.tier2_count = 120;
    p.topo.tier3_count = 500;
    p.topo.stub_count = 2400;
    p.duration_ms = bench::full_scale() ? 1'000.0 : 200.0;
  } else {
    p.duration_ms = bench::full_scale() ? 2'000.0 : 1'000.0;
  }
  return p;
}

ScaleCell run_cell(std::uint64_t hosts, std::uint32_t shards,
                   bool keep_metrics) {
  ScaleCell cell;
  cell.hosts = hosts;
  cell.shards = shards;

  inter::ShardScaleModel model(make_params(hosts, shards));
  const auto stats = model.run();
  const audit::ShardAuditReport rep = audit::audit_scale_run(model);

  cell.events = stats.processed;
  cell.cross_msgs = stats.cross_shard_msgs;
  cell.batches = stats.batches;
  cell.wall_seconds = stats.wall_seconds;
  cell.events_per_sec =
      stats.wall_seconds > 0.0
          ? static_cast<double>(stats.processed) / stats.wall_seconds
          : 0.0;
  cell.rss_kb = bench::peak_rss_kb();
  cell.flight_digest = model.flight_digest();
  cell.audit_digest = rep.digest();
  cell.clean = rep.clean();
  if (!cell.clean) {
    std::cerr << "hosts=" << hosts << " shards=" << shards
              << ": shard audit NOT clean\n"
              << rep.to_string();
  }
  if (keep_metrics) cell.metrics_json = model.merged_metrics().to_json(2);
  const obs::Timeline timeline = model.merged_timeline();
  if (keep_metrics) cell.timeline_jsonl = timeline.to_jsonl();
  cell.events_series = timeline.counter_series("sim.events");
  cell.timeline_window_ms = timeline.window_ms();
  if (model.profiler() != nullptr) {
    cell.profile_json = model.profiler()->to_json();
  }
  return cell;
}

void write_json(const std::vector<ScaleCell>& cells, double speedup,
                bool deterministic, double total_wall) {
  std::string path = "BENCH_shard.json";
  if (const char* env = std::getenv("ROFL_SHARD_JSON")) path = env;
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "fig_scale: cannot open " << path << "\n";
    return;
  }
  out << "{\n  \"schema\": \"rofl-bench-shard-v1\",\n  \"sweep\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    char digest[20];
    std::snprintf(digest, sizeof digest, "0x%016llx",
                  static_cast<unsigned long long>(c.flight_digest));
    out << "    {\"hosts\": " << c.hosts << ", \"shards\": " << c.shards
        << ", \"events\": " << c.events
        << ", \"cross_shard_msgs\": " << c.cross_msgs
        << ", \"batches\": " << c.batches
        << ", \"wall_seconds\": " << c.wall_seconds
        << ", \"events_per_sec\": " << c.events_per_sec
        << ", \"peak_rss_kb\": " << c.rss_kb << ", \"flight_digest\": \""
        << digest << "\", \"audit\": \"" << c.audit_digest
        << "\", \"clean\": " << (c.clean ? "true" : "false");
    if (!c.profile_json.empty()) out << ", \"profile\": " << c.profile_json;
    out << "}" << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  // Windowed events/sec over sim time from the 1-shard reference cell; the
  // determinism gate guarantees every other shard count yields these bytes.
  const ScaleCell& ref = cells.front();
  out << "  ],\n  \"series\": {\n    \"window_ms\": " << ref.timeline_window_ms
      << ",\n    \"events_per_window\": [";
  for (std::size_t i = 0; i < ref.events_series.size(); ++i) {
    out << (i == 0 ? "" : ", ") << ref.events_series[i];
  }
  out << "],\n    \"events_per_sec\": [";
  const double per_sec = ref.timeline_window_ms > 0.0
                             ? 1000.0 / ref.timeline_window_ms
                             : 0.0;
  for (std::size_t i = 0; i < ref.events_series.size(); ++i) {
    out << (i == 0 ? "" : ", ")
        << static_cast<double>(ref.events_series[i]) * per_sec;
  }
  out << "]\n  },\n  \"speedup_4_vs_1\": " << speedup
      << ",\n  \"deterministic\": " << (deterministic ? "true" : "false")
      << ",\n  \"run\": " << bench::run_info_json(total_wall) << "\n}\n";
  std::cout << "JSON written to " << path << "\n";
}

}  // namespace
}  // namespace rofl

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  print_banner(std::cout,
               "Sharded engine: events/sec and peak RSS, 100k-1M hosts");
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "[hardware threads: " << hw << "]\n\n";

  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t sweep_hosts = 100'000;
  std::vector<ScaleCell> cells;

  Table t({"hosts", "shards", "events", "cross-shard", "batches", "wall s",
           "events/sec", "rss MB"});
  const auto add = [&](const ScaleCell& c) {
    cells.push_back(c);
    t.add_row({static_cast<std::int64_t>(c.hosts),
               static_cast<std::int64_t>(c.shards),
               static_cast<std::int64_t>(c.events),
               static_cast<std::int64_t>(c.cross_msgs),
               static_cast<std::int64_t>(c.batches), c.wall_seconds,
               c.events_per_sec, static_cast<double>(c.rss_kb) / 1024.0});
  };

  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    add(run_cell(sweep_hosts, shards, /*keep_metrics=*/shards == 1 ||
                                                       shards == 4));
  }
  // The 1M-host cell (EXPERIMENTS.md recipe): completing it with peak RSS
  // recorded is the acceptance bar; shard count capped by the hardware.
  add(run_cell(1'000'000, hw >= 4 ? 4u : std::max(1u, hw),
               /*keep_metrics=*/false));
  t.print(std::cout);

  const ScaleCell& s1 = cells[0];
  const ScaleCell& s4 = cells[2];
  const double speedup =
      s1.events_per_sec > 0.0 ? s4.events_per_sec / s1.events_per_sec : 0.0;

  // Gate 1: shard-count independence -- same seed, same bytes.  The merged
  // timeline is part of the contract: windowed deltas fold shard-count
  // independently just like the merged registry.
  const bool deterministic = s1.metrics_json == s4.metrics_json &&
                             s1.timeline_jsonl == s4.timeline_jsonl &&
                             !s1.timeline_jsonl.empty() &&
                             s1.flight_digest == s4.flight_digest &&
                             s1.audit_digest == s4.audit_digest &&
                             s1.events == s4.events;
  bool all_clean = true;
  for (const auto& c : cells) all_clean = all_clean && c.clean;
  std::cout << "\nshards 1 vs 4 at " << sweep_hosts << " hosts: "
            << (deterministic
                    ? "bit-identical metrics + flight/audit digests"
                    : "MISMATCH")
            << "\nshard audits: " << (all_clean ? "all clean" : "VIOLATIONS")
            << "\n";

  // Gate 2: parallel speedup, meaningful only with the cores to run on.
  std::cout << "speedup 4 shards vs 1: " << speedup << "x";
  bool speedup_ok = true;
  if (hw >= 4) {
    speedup_ok = speedup >= 2.0;
    std::cout << (speedup_ok ? " (>=2x gate: PASS)" : " (>=2x gate: FAIL)");
  } else {
    std::cout << " (gate skipped: " << hw
              << " hardware thread(s); workers time-slice one core)";
  }
  std::cout << "\n";

  const double total_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  write_json(cells, speedup, deterministic, total_wall);
  return (deterministic && all_clean && speedup_ok) ? 0 : 1;
}
