#include "wire/messages.hpp"

namespace rofl::wire::msg {
namespace {

// ---- per-type payload encoders ---------------------------------------------
// Each writes only the payload bytes; packet framing (header + CRC) is added
// by Packet::encode.  All counts ride u16 fields and are range-checked by the
// caller before these run.

void put(ByteWriter& w, const JoinRequest& m) {
  w.u64(m.nonce);
  w.u32(m.gateway);
  w.u8(m.host_class);
  w.u8(m.strategy);
  w.bytes(std::span<const std::uint8_t>(m.public_key.data(),
                                        m.public_key.size()));
  w.u16(static_cast<std::uint16_t>(m.fingers.size()));
  for (const CompactFinger& f : m.fingers) {
    w.u32(f.target_prefix);
    w.u16(f.home_as);
  }
}

void put(ByteWriter& w, const JoinReply& m) {
  write_node_id(w, m.predecessor);
  w.u32(m.predecessor_host);
  w.u16(static_cast<std::uint16_t>(m.successors.size()));
  for (const FingerField& s : m.successors) {
    write_node_id(w, s.target);
    w.u32(s.home_as);
  }
  w.u16(static_cast<std::uint16_t>(m.migrated_ephemerals.size()));
  for (const NodeId& id : m.migrated_ephemerals) write_node_id(w, id);
}

void put(ByteWriter& w, const Locate& m) {
  write_node_id(w, m.target);
  w.u8(m.purpose);
}

void put(ByteWriter& w, const PointerInstall& m) {
  write_node_id(w, m.subject);
  write_node_id(w, m.neighbor);
  w.u32(m.neighbor_host);
  w.u8(m.op);
}

void put(ByteWriter& w, const Teardown& m) {
  write_node_id(w, m.id);
  w.u8(m.reason);
}

void put(ByteWriter& w, const Repair& m) {
  write_node_id(w, m.subject);
  write_node_id(w, m.neighbor);
  w.u32(m.neighbor_host);
  w.u8(m.op);
}

void put(ByteWriter& w, const Keepalive& m) { w.u64(m.seq); }

void put(ByteWriter& w, const Lsa& m) {
  w.u32(m.origin);
  w.u64(m.version);
  w.u8(m.event);
  w.u32(m.a);
  w.u32(m.b);
}

void put(ByteWriter& w, const LabelInstall& m) {
  write_node_id(w, m.dest);
  w.u32(m.label);
  w.u32(m.next_label);
  w.u32(m.out);
  w.u8(m.op);
}

void put(ByteWriter& w, const LabelTeardown& m) {
  write_node_id(w, m.dest);
  w.u32(m.label);
  w.u8(m.reason);
}

void put(ByteWriter& w, const RingMerge& m) {
  write_node_id(w, m.id);
  w.u32(m.home_as);
  w.u32(m.anchor_as);
  w.u16(m.level);
  w.u8(m.op);
}

// ---- per-type payload decoders ---------------------------------------------
// Every field read is checked; the shared decode_control wrapper additionally
// requires the payload to be fully consumed.

std::optional<ControlMessage> get_join_request(ByteReader& r) {
  JoinRequest m;
  const auto nonce = r.u64();
  const auto gateway = r.u32();
  const auto host_class = r.u8();
  const auto strategy = r.u8();
  const auto key = r.bytes(m.public_key.size());
  const auto count = r.u16();
  if (!nonce || !gateway || !host_class || !strategy || !key || !count) {
    return std::nullopt;
  }
  m.nonce = *nonce;
  m.gateway = *gateway;
  m.host_class = *host_class;
  m.strategy = *strategy;
  std::copy(key->begin(), key->end(), m.public_key.begin());
  m.fingers.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    const auto prefix = r.u32();
    const auto home = r.u16();
    if (!prefix || !home) return std::nullopt;
    m.fingers.push_back(CompactFinger{*prefix, *home});
  }
  return m;
}

std::optional<ControlMessage> get_join_reply(ByteReader& r) {
  JoinReply m;
  const auto pred = read_node_id(r);
  const auto pred_host = r.u32();
  const auto nsucc = r.u16();
  if (!pred || !pred_host || !nsucc) return std::nullopt;
  m.predecessor = *pred;
  m.predecessor_host = *pred_host;
  m.successors.reserve(*nsucc);
  for (std::uint16_t i = 0; i < *nsucc; ++i) {
    const auto target = read_node_id(r);
    const auto home = r.u32();
    if (!target || !home) return std::nullopt;
    m.successors.push_back(FingerField{*target, *home});
  }
  const auto nmig = r.u16();
  if (!nmig) return std::nullopt;
  m.migrated_ephemerals.reserve(*nmig);
  for (std::uint16_t i = 0; i < *nmig; ++i) {
    const auto id = read_node_id(r);
    if (!id) return std::nullopt;
    m.migrated_ephemerals.push_back(*id);
  }
  return m;
}

std::optional<ControlMessage> get_locate(ByteReader& r) {
  const auto target = read_node_id(r);
  const auto purpose = r.u8();
  if (!target || !purpose) return std::nullopt;
  return Locate{*target, *purpose};
}

std::optional<ControlMessage> get_pointer_install(ByteReader& r) {
  const auto subject = read_node_id(r);
  const auto neighbor = read_node_id(r);
  const auto host = r.u32();
  const auto op = r.u8();
  if (!subject || !neighbor || !host || !op) return std::nullopt;
  return PointerInstall{*subject, *neighbor, *host, *op};
}

std::optional<ControlMessage> get_teardown(ByteReader& r) {
  const auto id = read_node_id(r);
  const auto reason = r.u8();
  if (!id || !reason) return std::nullopt;
  return Teardown{*id, *reason};
}

std::optional<ControlMessage> get_repair(ByteReader& r) {
  const auto subject = read_node_id(r);
  const auto neighbor = read_node_id(r);
  const auto host = r.u32();
  const auto op = r.u8();
  if (!subject || !neighbor || !host || !op) return std::nullopt;
  return Repair{*subject, *neighbor, *host, *op};
}

std::optional<ControlMessage> get_keepalive(ByteReader& r) {
  const auto seq = r.u64();
  if (!seq) return std::nullopt;
  return Keepalive{*seq};
}

std::optional<ControlMessage> get_lsa(ByteReader& r) {
  const auto origin = r.u32();
  const auto version = r.u64();
  const auto event = r.u8();
  const auto a = r.u32();
  const auto b = r.u32();
  if (!origin || !version || !event || !a || !b) return std::nullopt;
  return Lsa{*origin, *version, *event, *a, *b};
}

std::optional<ControlMessage> get_ring_merge(ByteReader& r) {
  const auto id = read_node_id(r);
  const auto home = r.u32();
  const auto anchor = r.u32();
  const auto level = r.u16();
  const auto op = r.u8();
  if (!id || !home || !anchor || !level || !op) return std::nullopt;
  return RingMerge{*id, *home, *anchor, *level, *op};
}

std::optional<ControlMessage> get_label_install(ByteReader& r) {
  const auto dest = read_node_id(r);
  const auto label = r.u32();
  const auto next_label = r.u32();
  const auto out = r.u32();
  const auto op = r.u8();
  if (!dest || !label || !next_label || !out || !op) return std::nullopt;
  return LabelInstall{*dest, *label, *next_label, *out, *op};
}

std::optional<ControlMessage> get_label_teardown(ByteReader& r) {
  const auto dest = read_node_id(r);
  const auto label = r.u32();
  const auto reason = r.u8();
  if (!dest || !label || !reason) return std::nullopt;
  return LabelTeardown{*dest, *label, *reason};
}

bool counts_fit(const ControlMessage& m) {
  if (const auto* jr = std::get_if<JoinRequest>(&m)) {
    return jr->fingers.size() <= 0xFFFF;
  }
  if (const auto* jp = std::get_if<JoinReply>(&m)) {
    return jp->successors.size() <= 0xFFFF &&
           jp->migrated_ephemerals.size() <= 0xFFFF;
  }
  return true;
}

std::size_t payload_size(const ControlMessage& m) {
  struct Sizer {
    std::size_t operator()(const JoinRequest& x) const {
      return 8 + 4 + 1 + 1 + 32 + 2 + 6 * x.fingers.size();
    }
    std::size_t operator()(const JoinReply& x) const {
      return 16 + 4 + 2 + 20 * x.successors.size() + 2 +
             16 * x.migrated_ephemerals.size();
    }
    std::size_t operator()(const Locate&) const { return 17; }
    std::size_t operator()(const PointerInstall&) const { return 37; }
    std::size_t operator()(const Teardown&) const { return 17; }
    std::size_t operator()(const Repair&) const { return 37; }
    std::size_t operator()(const Keepalive&) const { return 8; }
    std::size_t operator()(const Lsa&) const { return 21; }
    std::size_t operator()(const RingMerge&) const { return 27; }
    std::size_t operator()(const LabelInstall&) const { return 29; }
    std::size_t operator()(const LabelTeardown&) const { return 21; }
  };
  return std::visit(Sizer{}, m);
}

}  // namespace

PacketType type_of(const ControlMessage& m) {
  struct Typer {
    PacketType operator()(const JoinRequest&) const {
      return PacketType::kJoinRequest;
    }
    PacketType operator()(const JoinReply&) const {
      return PacketType::kJoinReply;
    }
    PacketType operator()(const Locate&) const { return PacketType::kLocate; }
    PacketType operator()(const PointerInstall&) const {
      return PacketType::kPointerInstall;
    }
    PacketType operator()(const Teardown&) const {
      return PacketType::kTeardown;
    }
    PacketType operator()(const Repair&) const { return PacketType::kRepair; }
    PacketType operator()(const Keepalive&) const {
      return PacketType::kKeepalive;
    }
    PacketType operator()(const Lsa&) const { return PacketType::kLsa; }
    PacketType operator()(const RingMerge&) const {
      return PacketType::kRingMerge;
    }
    PacketType operator()(const LabelInstall&) const {
      return PacketType::kLabelInstall;
    }
    PacketType operator()(const LabelTeardown&) const {
      return PacketType::kLabelTeardown;
    }
  };
  return std::visit(Typer{}, m);
}

std::vector<std::uint8_t> encode_control(const ControlMessage& m,
                                         const NodeId& src, const NodeId& dst,
                                         std::uint64_t trace_id) {
  if (!counts_fit(m) || payload_size(m) > 0xFFFF) return {};
  ByteWriter w;
  std::visit([&w](const auto& x) { put(w, x); }, m);
  if (!w.ok()) return {};
  Packet p;
  p.type = type_of(m);
  p.source = src;
  p.destination = dst;
  p.trace_id = trace_id;
  p.payload = w.take();
  return p.encode();
}

std::optional<ControlMessage> decode_control(
    std::span<const std::uint8_t> frame) {
  const auto p = Packet::decode(frame);
  if (!p.has_value()) return std::nullopt;
  ByteReader r(p->payload);
  std::optional<ControlMessage> m;
  switch (p->type) {
    case PacketType::kJoinRequest: m = get_join_request(r); break;
    case PacketType::kJoinReply: m = get_join_reply(r); break;
    case PacketType::kLocate: m = get_locate(r); break;
    case PacketType::kPointerInstall: m = get_pointer_install(r); break;
    case PacketType::kTeardown: m = get_teardown(r); break;
    case PacketType::kRepair: m = get_repair(r); break;
    case PacketType::kKeepalive: m = get_keepalive(r); break;
    case PacketType::kLsa: m = get_lsa(r); break;
    case PacketType::kRingMerge: m = get_ring_merge(r); break;
    case PacketType::kLabelInstall: m = get_label_install(r); break;
    case PacketType::kLabelTeardown: m = get_label_teardown(r); break;
    default: return std::nullopt;  // kData / kCapabilityGrant carry no codec
  }
  if (!m.has_value() || !r.exhausted()) return std::nullopt;
  return m;
}

std::size_t control_wire_size(const ControlMessage& m) {
  // Packet framing for a control frame (no as_path, no capability, no
  // packet-level fingers) is kFrameOverhead = 54 bytes.
  return kFrameOverhead + payload_size(m);
}

}  // namespace rofl::wire::msg
