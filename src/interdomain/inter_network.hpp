// inter_network.hpp -- the interdomain ROFL protocol engine (sections 2.3, 4).
//
// Following the paper's methodology, each AS is one node.  The engine owns
// the working AS topology (the virtual-AS conversion of figure 4a when
// peering_mode is kVirtualAs, the raw graph when kBloom), per-AS routing
// state, and executes:
//
//   * join_host   -- Canon-style recursive merge (Algorithm 3): locate the
//                    predecessor at each level of the chosen anchor set
//                    (which depends on the join strategy, figure 8a), install
//                    pruned external successors with AS-level source routes,
//                    update the predecessors' pointers, and optionally
//                    acquire proximity fingers;
//   * route       -- greedy forwarding over every pointer known at the
//                    current AS, with BGP-like per-segment policy (each
//                    pointer's source route is valley-free by construction),
//                    optional per-AS pointer caches guarded by subtree bloom
//                    filters, and the bloom-peering shortcut with
//                    backtracking on false positives (section 4.2);
//   * fail_as / restore_as, fail_link / restore_link -- failure machinery
//                    with per-level ring repair and zero-ID-style
//                    reconvergence (section 4.1, "Failure recovery").
//
// State bookkeeping note (documented in DESIGN.md): per-anchor ring
// membership is tracked in sorted per-AS registries.  The paper itself
// requires hosts to register identifiers with their providers (section 4.1,
// "Joining"), so this is protocol state, not an oracle; lookups still charge
// the messages a distributed walk would send, via simulate_lookup.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "interdomain/inter_types.hpp"
#include "interdomain/policy.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/simulator.hpp"
#include "util/bloom.hpp"
#include "util/rng.hpp"
#include "wire/messages.hpp"

namespace rofl::audit {
class Auditor;
}

namespace rofl::inter {

class InterNetwork {
 public:
  /// `base` must outlive the network.  When peering_mode is kVirtualAs the
  /// engine builds and routes over the converted topology internally; the
  /// base graph keeps serving as the BGP baseline and for physical-hop
  /// accounting.
  InterNetwork(const graph::AsTopology* base, InterConfig cfg,
               std::uint64_t seed);

  InterNetwork(const InterNetwork&) = delete;
  InterNetwork& operator=(const InterNetwork&) = delete;

  /// The live base topology (failures applied); serves as the BGP baseline
  /// and, in bloom peering mode, as the source of peering adjacencies.
  [[nodiscard]] const graph::AsTopology& base_topology() const {
    return base_copy_;
  }
  [[nodiscard]] const graph::AsTopology& work_topology() const { return work_; }
  [[nodiscard]] const InterConfig& config() const { return cfg_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  // -- host lifecycle -------------------------------------------------------
  InterJoinStats join_host(const Identity& ident, AsIndex home,
                           JoinStrategy strategy);
  InterJoinStats join_random_host(JoinStrategy strategy);

  /// Joins a group-held or TE-suffix ID (sections 5.1/5.2): the caller
  /// authenticates membership; `via_provider` forces the single-homed chain
  /// through a specific provider (multi-address multihoming, section 4.2).
  InterJoinStats join_group_id(const NodeId& id, AsIndex home,
                               JoinStrategy strategy,
                               std::optional<AsIndex> via_provider =
                                   std::nullopt);

  /// Removes an ID: ring splice-out at every level it joined, pointer
  /// teardowns at its predecessors.
  InterRepairStats leave_host(const NodeId& id);

  // -- data plane -----------------------------------------------------------
  /// Routes a packet from (any host in) `src_as` toward flat label `dest`.
  /// When `traversed` is non-null the AS-level path is appended to it (used
  /// by the failure-impact experiment).  With a flight recorder installed,
  /// every decision is recorded under `trace_id` (0 = allocate a fresh id;
  /// pass RouteStats::trace_id from an intradomain leg to stitch the legs
  /// into one flight).
  InterRouteStats route(AsIndex src_as, const NodeId& dest,
                        std::vector<AsIndex>* traversed = nullptr,
                        std::uint64_t trace_id = 0);

  // -- observability --------------------------------------------------------
  /// Installs (or removes, with nullptr) the per-packet hop recorder.  The
  /// recorder must outlive the network; sharing one instance with an
  /// intradomain Network keeps trace ids globally unique across layers.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }
  [[nodiscard]] obs::FlightRecorder* flight_recorder() const {
    return recorder_;
  }

  // -- sharded execution ----------------------------------------------------
  /// Declares which shard each AS belongs to (sim::balanced_shard_map over
  /// the working topology; empty = unsharded).  Every route() then counts
  /// the shard boundaries its traversed AS path crosses on
  /// "shards.cross_msgs" / "shards.cross_bytes" -- the traffic the SPSC
  /// channels would carry under the sharded simulator with this partition.
  /// ASes beyond the map (virtual peering ASes added later) never count.
  void set_shard_map(std::vector<std::uint32_t> map);
  [[nodiscard]] const std::vector<std::uint32_t>& shard_map() const {
    return shard_map_;
  }

  /// Installs (or removes, with nullptr) a fault injector.  Control-plane
  /// exchanges (ring-merge join levels, re-anchor registrations) then run
  /// through retry-with-backoff (InterConfig::retry); an exchange whose
  /// retries are exhausted is skipped and left for the next `repair()` pass.
  /// The injector must outlive the network.
  void set_fault_injector(sim::FaultInjector* injector) { faults_ = injector; }
  [[nodiscard]] sim::FaultInjector* fault_injector() const { return faults_; }

  /// Maintenance pass: recomputes anchor sets and ring registrations for
  /// every hosted ID and rebuilds pointers -- the hook that re-drives join
  /// levels dropped earlier under message loss.  Charges only actual
  /// changes, so it converges to a no-op on a consistent network.
  InterRepairStats repair();

  // -- failures (section 6.3, "Failures") -----------------------------------
  InterRepairStats fail_as(AsIndex as);

  /// Section 4.1: "an ISP may host virtual servers on behalf of a customer
  /// ISP, which it can maintain during that customer's outages."  Fails the
  /// customer AS but keeps its identifiers alive at `provider`: the ring
  /// never churns, remote pointers stay valid (re-routed to the provider),
  /// and restore_as becomes a cheap re-point instead of a mass rejoin.
  InterRepairStats fail_as_with_virtual_servers(AsIndex customer,
                                                AsIndex provider);
  InterRepairStats restore_as(AsIndex as);
  InterRepairStats fail_link(AsIndex a, AsIndex b);
  InterRepairStats restore_link(AsIndex a, AsIndex b);

  // -- introspection / verification -----------------------------------------
  [[nodiscard]] const std::map<NodeId, AsIndex>& directory() const {
    return directory_;
  }
  [[nodiscard]] std::optional<AsIndex> home_of(const NodeId& id) const;
  [[nodiscard]] const InterVNode* find_vnode(const NodeId& id) const;

  /// Checks that at every anchor with ring members, each member's derived
  /// successor equals the registry order (invariant 1/5 of DESIGN.md, per
  /// level).  Anchors sampled when there are many.
  [[nodiscard]] bool verify_rings(std::string* err = nullptr,
                                  std::size_t max_anchors = 0) const;

  /// figure 8a/6.3 metrics.
  [[nodiscard]] std::uint64_t total_pointer_count() const;
  [[nodiscard]] std::uint64_t total_finger_count() const;
  /// Hosting + finger state in bits (each entry one 128-bit ID plus an
  /// AS-path; the paper's Mbit-per-AS figures count the same way).
  [[nodiscard]] double mean_state_bits_per_as() const;
  [[nodiscard]] double mean_bloom_bits_per_as() const;
  [[nodiscard]] std::size_t ring_size(AsIndex anchor) const;

 private:
  /// The invariant auditor reads (never writes) the ring registries, bloom
  /// summaries, and pointer sets to assert cross-layer consistency.
  friend class rofl::audit::Auditor;

  struct AsNode {
    std::map<NodeId, InterVNode> hosted;
    /// IDs registered in the ring anchored at this AS (protocol state: hosts
    /// register with providers up the hierarchy).
    std::map<NodeId, AsIndex> ring;  // id -> hosting AS
    /// Greedy index: every pointer target known here -> (home, anchors).
    struct Known {
      AsIndex home = graph::kInvalidAs;
      std::vector<AsIndex> anchors;  // anchors of pointers to this target
    };
    std::map<NodeId, Known> known;
    std::unique_ptr<BloomFilter> subtree_bloom;  // ids in this AS's subtree
    /// Optional per-AS pointer cache (figure 8c): id -> home AS.
    std::map<NodeId, AsIndex> cache;
    std::vector<NodeId> cache_fifo;
  };

  // anchor selection per strategy
  struct Anchor {
    AsIndex as;
    unsigned level;
  };
  [[nodiscard]] std::vector<Anchor> anchors_for(
      AsIndex home, JoinStrategy strategy,
      std::optional<AsIndex> via_provider = std::nullopt) const;

  /// Shared join body (post-authentication).
  InterJoinStats join_id(const NodeId& id, AsIndex home, JoinStrategy strategy,
                         std::optional<AsIndex> via_provider);

  // ring registry helpers
  [[nodiscard]] std::optional<std::pair<NodeId, AsIndex>> ring_succ(
      AsIndex anchor, const NodeId& id) const;
  [[nodiscard]] std::optional<std::pair<NodeId, AsIndex>> ring_pred(
      AsIndex anchor, const NodeId& id) const;

  /// Rebuilds a vnode's level pointers from the ring registries (pruned per
  /// Algorithm 3); returns the number of pointers that changed.
  std::uint32_t rebuild_pointers(InterVNode& vn);

  /// Simulated greedy walk locating `target`'s ring predecessor at `anchor`
  /// starting from `from`; returns AS-level message cost.
  std::uint64_t simulate_lookup(AsIndex from, const NodeId& target,
                                AsIndex anchor) const;

  /// Outcome of one control-plane exchange: AS-level packets and wire bytes
  /// actually charged (retries included), and whether an attempt survived.
  struct WireExchange {
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
    bool ok = false;
  };

  /// Runs one control-plane exchange of `msgs` AS-level messages, each
  /// carrying the encoded frame of `m`, under the fault injector: an attempt
  /// may be dropped mid-path (costing the legs transmitted so far) or its
  /// frame corrupted in flight (the CRC trailer rejects it at the receiver,
  /// which the sender cannot tell from loss), then retried with backoff.
  /// Without an injector the exchange succeeds and charges every leg once.
  [[nodiscard]] WireExchange reliable_exchange(std::uint64_t msgs,
                                               const wire::msg::ControlMessage& m);

  void select_fingers(InterVNode& vn);
  /// Recomputes every hosted ID's anchor set and ring registrations after a
  /// topology change, rebuilding pointers; charges only actual changes.
  void reanchor_all(InterRepairStats& stats);
  void index_vnode(const InterVNode& vn);
  void reindex_as(AsIndex as);
  void cache_insert(AsIndex as, const NodeId& id, AsIndex home);

  /// True if `anc`'s customer subtree contains `des` (precomputed masks over
  /// the working topology; recomputed on demand after failures).
  [[nodiscard]] bool is_ancestor(AsIndex anc, AsIndex des) const;
  void rebuild_ancestor_masks() const;

  /// Builds the AS route from `from` via `anchor` down to the AS hosting
  /// `id`; honors the target's forced access provider (TE suffixes /
  /// multi-address multihoming) so incoming traffic descends the branch the
  /// ID joined through.
  [[nodiscard]] std::optional<AsRoute> route_to_target(AsIndex from,
                                                       AsIndex anchor,
                                                       const NodeId& id,
                                                       AsIndex home) const;

  [[nodiscard]] std::uint32_t route_hops(const AsRoute& r) const {
    return physical_hops(work_, r);
  }

  /// Best policy-usable candidate at `as` for `dest`, constrained (when
  /// `within` is set) to pointers anchored inside subtree(within).
  struct RCandidate {
    NodeId id;
    AsIndex home;
    AsRoute route;  // empty route = local/cached (charged via hop count)
  };
  [[nodiscard]] std::optional<RCandidate> best_candidate(
      AsIndex as, const NodeId& dest,
      std::optional<AsIndex> within = std::nullopt) const;

  InterRouteStats route_constrained(AsIndex src_as, const NodeId& dest,
                                    std::optional<AsIndex> within,
                                    std::vector<AsIndex>* traversed,
                                    std::uint64_t trace_id = 0,
                                    std::uint32_t depth = 0);

  /// Appends one hop record (no-op without a recorder).
  void record_hop(std::uint64_t trace_id, obs::HopKind kind, AsIndex as,
                  const NodeId& chased);

  const graph::AsTopology* base_;
  graph::AsTopology base_copy_;  // failures are applied here and to work_
  graph::AsTopology work_;
  InterConfig cfg_;
  sim::Simulator sim_;
  Rng rng_;
  obs::FlightRecorder* recorder_ = nullptr;
  sim::FaultInjector* faults_ = nullptr;
  // Interdomain datapath metric ids in sim_.metrics().
  obs::MetricId routes_id_ = 0;
  obs::MetricId delivered_id_ = 0;
  obs::MetricId peer_crossings_id_ = 0;
  obs::MetricId backtracks_id_ = 0;
  obs::MetricId probes_id_ = 0;
  obs::MetricId encode_failures_id_ = 0;
  obs::MetricId codec_rejected_id_ = 0;
  // Sharded-execution accounting (set_shard_map); empty when unsharded.
  std::vector<std::uint32_t> shard_map_;
  obs::MetricId shard_cross_msgs_id_ = 0;
  obs::MetricId shard_cross_bytes_id_ = 0;
  /// Framing overhead charged per AS-level data hop (measured once from the
  /// encoder -- interdomain data packets carry an empty payload here).
  std::size_t data_frame_bytes_ = 0;
  std::vector<AsNode> nodes_;
  std::map<NodeId, AsIndex> directory_;
  std::map<NodeId, Identity> identities_;
  std::map<NodeId, JoinStrategy> strategies_;
  /// Customer AS -> provider currently hosting its IDs as virtual servers.
  std::map<AsIndex, AsIndex> virtual_server_host_;

  // ancestor masks: masks_[anc * stride + des/64] bit
  mutable std::vector<std::uint64_t> ancestor_masks_;
  mutable bool masks_valid_ = false;
};

}  // namespace rofl::inter
