#include "baselines/ospf_routing.hpp"

#include <algorithm>

namespace rofl::baselines {

OspfRouting::OspfRouting(const graph::IspTopology* topo)
    : topo_(topo),
      map_(const_cast<graph::Graph*>(&topo->graph), nullptr),
      traversals_(topo->graph.node_count(), 0) {}

void OspfRouting::attach_host(const NodeId& id, graph::NodeIndex gateway) {
  bindings_[id] = gateway;
}

OspfRouting::RouteStats OspfRouting::route(graph::NodeIndex src,
                                           const NodeId& dest) {
  RouteStats stats;
  const auto it = bindings_.find(dest);
  if (it == bindings_.end()) return stats;
  const auto path = map_.path(src, it->second);
  if (path.empty()) return stats;
  for (const graph::NodeIndex r : path) ++traversals_[r];
  stats.delivered = true;
  stats.physical_hops = static_cast<std::uint32_t>(path.size() - 1);
  return stats;
}

void OspfRouting::reset_traversals() {
  std::fill(traversals_.begin(), traversals_.end(), 0);
}

}  // namespace rofl::baselines
