#include "ext/group_id.hpp"

namespace rofl::ext {

GroupId::GroupId(const Identity& group_identity) : identity_(group_identity) {
  const NodeId gid = group_identity.id();
  base_ = NodeId::compose(gid, kGroupPrefixBits, 0, 0, /*fill_ones=*/false);
  high_ = NodeId::compose(gid, kGroupPrefixBits, 0, 0, /*fill_ones=*/true);
}

NodeId GroupId::with_suffix(std::uint32_t suffix) const {
  return NodeId::compose(base_, kGroupPrefixBits, suffix,
                         128 - kGroupPrefixBits, /*fill_ones=*/false);
}

bool GroupId::contains(const NodeId& id) const {
  return id.common_prefix_len(base_) >= kGroupPrefixBits;
}

}  // namespace rofl::ext
