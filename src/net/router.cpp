#include "net/router.hpp"

#include <algorithm>
#include <cassert>

namespace rofl::net {

namespace {

using wire::Packet;
using wire::PacketType;
namespace msg = wire::msg;

/// The requester's router id rides in the packet source label.
NodeId router_label(RouterId r) { return NodeId::from_u64(r); }
RouterId label_router(const NodeId& id) {
  return static_cast<RouterId>(id.lo());
}

/// Synthetic compact-finger payload: the byte accounting only depends on the
/// entry count (6 bytes each), not the values, so fill deterministically.
std::vector<msg::CompactFinger> make_fingers(std::uint32_t n,
                                             const NodeId& target) {
  std::vector<msg::CompactFinger> out(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out[i].target_prefix = static_cast<std::uint32_t>(target.lo()) + i;
    out[i].home_as = static_cast<std::uint16_t>(i);
  }
  return out;
}

}  // namespace

LiveRouter::LiveRouter(LiveRouterConfig cfg, Transport* transport)
    : cfg_(cfg), transport_(transport) {
  // Registration order is the merge contract: every router registers the
  // same names in the same order, so dense MetricIds line up across
  // registries and timelines (obs::Registry::merge_from discipline).
  tx_frames_ = registry_.counter("net.tx.frames");
  tx_bytes_ = registry_.counter("net.tx.bytes");
  rx_frames_ = registry_.counter("net.rx.frames");
  rx_bytes_ = registry_.counter("net.rx.bytes");
  dedup_dropped_ = registry_.counter("net.rx.dedup_dropped");
  ring_dropped_ = registry_.counter("net.rx.ring_dropped");
  decode_failed_ = registry_.counter("net.rx.decode_failed");
  malformed_ = registry_.counter("net.rx.malformed");
  throttle_waits_ = registry_.counter("net.tx.throttle_waits");
  retrans_ = registry_.counter("net.retrans");
  acks_ = registry_.counter("net.acks");
  redirects_ = registry_.counter("net.redirects");
  locate_steps_ = registry_.counter("net.locate.steps");
  joins_done_id_ = registry_.counter("net.joins.completed");
  joins_rejected_ = registry_.counter("net.joins.rejected");
  const auto per_type = [this](PacketType t, const char* name) {
    PerType p;
    p.msgs = registry_.counter(std::string("net.msgs.") + name);
    p.bytes = registry_.counter(std::string("net.bytes.") + name);
    per_type_[static_cast<std::uint8_t>(t)] = p;
  };
  per_type(PacketType::kLocate, "locate");
  per_type(PacketType::kJoinRequest, "join_request");
  per_type(PacketType::kJoinReply, "join_reply");
  per_type(PacketType::kPointerInstall, "pointer_install");
  per_type(PacketType::kKeepalive, "keepalive");
  join_latency_ = registry_.histogram(
      "net.join.latency_ms",
      obs::Histogram::exponential_bounds(1.0, 2.0, 16));

  // Always constructed (registration order again); a no-fault plan makes
  // message_faults_enabled() false and the transport takes its fast path.
  sim::FaultPlan plan;
  plan.defaults = cfg_.conditions;
  injector_ = std::make_unique<sim::FaultInjector>(plan, cfg_.fault_seed,
                                                   &registry_);
  transport_->set_fault_injector(injector_.get());

  if (cfg_.timeline_window_ms > 0.0) {
    obs::Timeline::Config tc;
    tc.window_ms = cfg_.timeline_window_ms;
    timeline_ = std::make_unique<obs::Timeline>(&registry_, tc);
  }
}

void LiveRouter::seed(const Identity& first) {
  Vnode v;
  v.id = first.id();
  v.succ = v.id;
  v.succ_owner = cfg_.self;
  v.pred = v.id;
  v.pred_owner = cfg_.self;
  vnodes_[v.id] = v;
}

void LiveRouter::enqueue_join(Identity ident) {
  queued_.push_back(std::move(ident));
  ++joins_queued_total_;
}

bool LiveRouter::poll_harness(RxFrame& out) {
  if (harness_rx_.empty()) return false;
  out = std::move(harness_rx_.front());
  harness_rx_.pop_front();
  return true;
}

void LiveRouter::send_control(RouterId dst, const msg::ControlMessage& m,
                              const NodeId& src, const NodeId& dst_id,
                              std::uint64_t trace_id, double now_ms) {
  std::vector<std::uint8_t> frame =
      msg::encode_control(m, src, dst_id, trace_id);
  if (frame.empty()) return;  // over a u16 wire limit; never transmit
  const auto it = per_type_.find(static_cast<std::uint8_t>(msg::type_of(m)));
  if (it != per_type_.end()) {
    registry_.add(it->second.msgs);
    registry_.add(it->second.bytes, frame.size());
  }
  transport_->send(dst, PumpOp::kData, 0, frame, now_ms);
}

void LiveRouter::start_locate(JoinTask& t, RouterId at, double now_ms) {
  t.st = JoinTask::St::kLocating;
  t.locate_at = at;
  t.timeout_ms = cfg_.retry.timeout_ms;
  t.deadline_ms = now_ms + t.timeout_ms;
  msg::Locate loc;
  loc.target = t.target;
  loc.purpose = 0;
  send_control(at, loc, router_label(cfg_.self), t.target, t.nonce, now_ms);
}

void LiveRouter::send_join_request(JoinTask& t, double now_ms) {
  msg::JoinRequest jr;
  jr.nonce = t.nonce;
  jr.gateway = cfg_.self;
  jr.public_key = t.ident.public_key();
  jr.fingers = make_fingers(cfg_.fingers, t.target);
  send_control(t.join_to, jr, router_label(cfg_.self), t.target, t.nonce,
               now_ms);
}

LiveRouter::JoinTask* LiveRouter::task_by_nonce(std::uint64_t nonce) {
  for (JoinTask& t : active_) {
    if (t.nonce == nonce) return &t;
  }
  return nullptr;
}

Vnode* LiveRouter::best_predecessor(const NodeId& target) {
  Vnode* best = nullptr;
  NodeId best_d;
  for (auto& [id, v] : vnodes_) {
    if (id == target) continue;  // the id itself is never its own predecessor
    const NodeId d = NodeId::distance_cw(id, target);
    if (best == nullptr || d < best_d) {
      best = &v;
      best_d = d;
    }
  }
  return best;
}

void LiveRouter::apply_set_predecessor(const NodeId& subject,
                                       const NodeId& neighbor,
                                       RouterId neighbor_owner) {
  const auto it = vnodes_.find(subject);
  if (it == vnodes_.end()) return;
  Vnode& v = it->second;
  // Chord notify rule: only a strictly closer predecessor may replace the
  // current one, so stale (reordered/delayed) installs cannot regress the
  // pointer.  A self-looped pred (fresh seed) accepts anything.
  if (v.pred == v.id || NodeId::in_interval_oo(v.pred, neighbor, v.id)) {
    v.pred = neighbor;
    v.pred_owner = neighbor_owner;
  }
}

void LiveRouter::schedule_install(RouterId dst, const NodeId& subject,
                                  const NodeId& neighbor,
                                  RouterId neighbor_owner, double now_ms) {
  // Deliberately no self-delivery shortcut: even when dst == self the
  // subject vnode may not be resident yet (its JoinReply is still in this
  // router's own transport queue), so the install must go through the same
  // retry-until-acked path as the remote case.
  const std::uint64_t nonce =
      (static_cast<std::uint64_t>(cfg_.self) << 40) | ++nonce_counter_;
  PendingInstall pi;
  pi.dst = dst;
  pi.msg.subject = subject;
  pi.msg.neighbor = neighbor;
  pi.msg.neighbor_host = neighbor_owner;
  pi.msg.op = 1;  // set-predecessor
  pi.timeout_ms = cfg_.retry.timeout_ms;
  pi.deadline_ms = now_ms + pi.timeout_ms;
  send_control(dst, pi.msg, router_label(cfg_.self), subject, nonce, now_ms);
  installs_.emplace(nonce, std::move(pi));
}

void LiveRouter::on_locate(const Packet& pkt, const msg::Locate& m,
                           double now_ms) {
  const RouterId requester = label_router(pkt.source);
  if (vnodes_.empty()) {
    // Nothing to answer with yet; punt the walk at the bootstrap router
    // (it always holds the seed).  Self-forwarding would loop.
    if (cfg_.self != cfg_.bootstrap) {
      send_control(cfg_.bootstrap, m, pkt.source, pkt.destination,
                   pkt.trace_id, now_ms);
    }
    return;
  }
  Vnode* p = best_predecessor(m.target);
  if (p == nullptr) {
    // The target is the only id here (single-vnode router owning the target
    // itself): its predecessor is recorded on the vnode.
    const auto it = vnodes_.find(m.target);
    if (it == vnodes_.end()) return;
    msg::PointerInstall reply;
    reply.subject = m.target;
    reply.neighbor = it->second.pred;
    reply.neighbor_host = it->second.pred_owner;
    reply.op = 2;  // refill == locate answer
    send_control(requester, reply, router_label(cfg_.self), m.target,
                 pkt.trace_id, now_ms);
    return;
  }
  if (NodeId::in_interval_oc(p->id, m.target, p->succ)) {
    msg::PointerInstall reply;
    reply.subject = m.target;
    reply.neighbor = p->id;
    reply.neighbor_host = cfg_.self;
    reply.op = 2;
    send_control(requester, reply, router_label(cfg_.self), m.target,
                 pkt.trace_id, now_ms);
    return;
  }
  // Forward the walk greedily; the source label (requester) is preserved so
  // the eventual answer goes straight back.
  registry_.add(locate_steps_);
  send_control(p->succ_owner, m, pkt.source, pkt.destination, pkt.trace_id,
               now_ms);
}

void LiveRouter::on_join_request(const Packet& pkt, const msg::JoinRequest& m,
                                 double now_ms) {
  const RouterId requester = m.gateway;
  const NodeId target = pkt.destination;
  // Self-certification (section 2.1): the label must be the hash of the
  // carried public key.
  if (derive_id(m.public_key) != target) {
    registry_.add(joins_rejected_);
    return;
  }
  // Idempotent re-reply: a retransmitted JoinRequest for an id we already
  // spliced gets the cached JoinReply verbatim.
  const auto cached = join_cache_.find(target);
  if (cached != join_cache_.end()) {
    const auto it = per_type_.find(
        static_cast<std::uint8_t>(PacketType::kJoinReply));
    registry_.add(it->second.msgs);
    registry_.add(it->second.bytes, cached->second.size());
    transport_->send(requester, PumpOp::kData, 0, cached->second, now_ms);
    return;
  }
  Vnode* p = best_predecessor(target);
  if (p == nullptr || !NodeId::in_interval_oc(p->id, target, p->succ)) {
    // The ring moved under the walk: redirect the gateway to keep walking
    // from the closest point we do know.
    msg::JoinReply redirect;
    if (p != nullptr) {
      redirect.predecessor = p->succ;
      redirect.predecessor_host = p->succ_owner;
    } else {
      redirect.predecessor_host = cfg_.bootstrap;
    }
    send_control(requester, redirect, router_label(cfg_.self), target,
                 pkt.trace_id, now_ms);
    return;
  }
  // Splice target between p and p.succ.
  const NodeId old_succ = p->succ;
  const RouterId old_owner = p->succ_owner;
  p->succ = target;
  p->succ_owner = requester;

  msg::JoinReply reply;
  reply.predecessor = p->id;
  reply.predecessor_host = cfg_.self;
  reply.successors.push_back(wire::FingerField{old_succ, old_owner});
  std::vector<std::uint8_t> frame = msg::encode_control(
      reply, router_label(cfg_.self), target, pkt.trace_id);
  const auto it =
      per_type_.find(static_cast<std::uint8_t>(PacketType::kJoinReply));
  registry_.add(it->second.msgs);
  registry_.add(it->second.bytes, frame.size());
  transport_->send(requester, PumpOp::kData, 0, frame, now_ms);
  join_cache_[target] = std::move(frame);

  // Tell the old successor its predecessor changed (reliable, acked).
  schedule_install(old_owner, old_succ, target, requester, now_ms);
}

void LiveRouter::on_pointer_install(const Packet& pkt,
                                    const msg::PointerInstall& m,
                                    double now_ms) {
  if (m.op == 2) {  // locate answer
    JoinTask* t = task_by_nonce(pkt.trace_id);
    if (t == nullptr || t->st != JoinTask::St::kLocating) return;  // stale
    t->st = JoinTask::St::kJoining;
    t->join_to = m.neighbor_host;
    t->attempt = 0;
    t->timeout_ms = cfg_.retry.timeout_ms;
    t->deadline_ms = now_ms + t->timeout_ms;
    send_join_request(*t, now_ms);
    return;
  }
  if (m.op == 1) {  // set-predecessor from a splicer
    // Not resident yet: the subject's own JoinReply may still be in flight
    // to this gateway.  Stay silent -- the splicer's retry loop redelivers
    // until the vnode exists and the install can actually apply.
    if (vnodes_.find(m.subject) == vnodes_.end()) return;
    apply_set_predecessor(m.subject, m.neighbor, m.neighbor_host);
    // Ack regardless of whether the notify rule applied it -- the sender
    // only needs to know the install arrived (a stale install is *complete*,
    // not lost).
    msg::Keepalive ack;
    ack.seq = pkt.trace_id;
    send_control(label_router(pkt.source), ack, router_label(cfg_.self),
                 m.subject, pkt.trace_id, now_ms);
  }
}

void LiveRouter::on_join_reply(const Packet& pkt, const msg::JoinReply& m,
                               double now_ms) {
  JoinTask* t = task_by_nonce(pkt.trace_id);
  if (t == nullptr || t->st != JoinTask::St::kJoining) return;  // stale
  if (m.successors.empty()) {
    // Redirect: re-locate from the router the splicer pointed us at.
    registry_.add(redirects_);
    t->attempt = 0;
    start_locate(*t, static_cast<RouterId>(m.predecessor_host), now_ms);
    return;
  }
  Vnode v;
  v.id = t->target;
  v.succ = m.successors.front().target;
  v.succ_owner = static_cast<RouterId>(m.successors.front().home_as);
  v.pred = m.predecessor;
  v.pred_owner = static_cast<RouterId>(m.predecessor_host);
  vnodes_[v.id] = v;
  ++joins_completed_;
  registry_.add(joins_done_id_);
  registry_.observe(join_latency_, now_ms - t->started_ms);
  active_.erase(active_.begin() + (t - active_.data()));
}

void LiveRouter::on_keepalive(const Packet& /*pkt*/, const msg::Keepalive& m) {
  if (installs_.erase(m.seq) != 0) registry_.add(acks_);
}

void LiveRouter::handle_frame(const RxFrame& rx, double now_ms) {
  const auto pkt = Packet::decode(rx.frame);
  const auto m = msg::decode_control(rx.frame);
  if (!pkt.has_value() || !m.has_value()) {
    // CRC-rejected (impairment corruption) or otherwise undecodable: to the
    // protocol this is loss; retries recover.
    registry_.add(decode_failed_);
    return;
  }
  std::visit(
      [&](const auto& mm) {
        using T = std::decay_t<decltype(mm)>;
        if constexpr (std::is_same_v<T, msg::Locate>) {
          on_locate(*pkt, mm, now_ms);
        } else if constexpr (std::is_same_v<T, msg::JoinRequest>) {
          on_join_request(*pkt, mm, now_ms);
        } else if constexpr (std::is_same_v<T, msg::JoinReply>) {
          on_join_reply(*pkt, mm, now_ms);
        } else if constexpr (std::is_same_v<T, msg::PointerInstall>) {
          on_pointer_install(*pkt, mm, now_ms);
        } else if constexpr (std::is_same_v<T, msg::Keepalive>) {
          on_keepalive(*pkt, mm);
        }
        // Other control types never appear in the live join protocol.
      },
      *m);
}

void LiveRouter::step(double now_ms) {
  if (timeline_ != nullptr) timeline_->advance_to(now_ms);
  transport_->pump(now_ms);

  RxFrame rx;
  while (transport_->poll(rx)) {
    if (rx.op != PumpOp::kData) {
      harness_rx_.push_back(std::move(rx));
      continue;
    }
    handle_frame(rx, now_ms);
  }

  // Start queued joins up to the outstanding cap.
  while (active_.size() < cfg_.max_outstanding && !queued_.empty()) {
    JoinTask t(std::move(queued_.front()));
    queued_.pop_front();
    t.target = t.ident.id();
    t.nonce = (static_cast<std::uint64_t>(cfg_.self) << 40) | ++nonce_counter_;
    t.started_ms = now_ms;
    active_.push_back(std::move(t));
    start_locate(active_.back(), cfg_.bootstrap, now_ms);
  }

  // Retry timers.
  for (JoinTask& t : active_) {
    if (now_ms < t.deadline_ms) continue;
    ++t.attempt;
    if (t.attempt >= cfg_.retry.max_attempts) {
      // Give up on this walk entirely and restart from the bootstrap.
      injector_->note_retry_exhausted();
      t.attempt = 0;
      start_locate(t, cfg_.bootstrap, now_ms);
      continue;
    }
    registry_.add(retrans_);
    injector_->note_retry();
    t.timeout_ms = cfg_.retry.next_timeout(t.timeout_ms);
    t.deadline_ms = now_ms + t.timeout_ms;
    if (t.st == JoinTask::St::kLocating) {
      msg::Locate loc;
      loc.target = t.target;
      send_control(t.locate_at, loc, router_label(cfg_.self), t.target,
                   t.nonce, now_ms);
    } else {
      send_join_request(t, now_ms);
    }
  }
  for (auto& [nonce, pi] : installs_) {
    if (now_ms < pi.deadline_ms) continue;
    ++pi.attempt;
    registry_.add(retrans_);
    injector_->note_retry();
    pi.timeout_ms = cfg_.retry.next_timeout(pi.timeout_ms);
    pi.deadline_ms = now_ms + pi.timeout_ms;
    send_control(pi.dst, pi.msg, router_label(cfg_.self), pi.msg.subject,
                 nonce, now_ms);
  }
}

void LiveRouter::debug_dump(std::ostream& os) const {
  os << "router " << cfg_.self << ": vnodes=" << vnodes_.size()
     << " queued=" << queued_.size() << " active=" << active_.size()
     << " installs=" << installs_.size() << "\n";
  for (const JoinTask& t : active_) {
    os << "  task nonce=" << std::hex << t.nonce << std::dec << " target="
       << t.target.to_string().substr(0, 8)
       << (t.st == JoinTask::St::kLocating ? " LOCATING at=" : " JOINING to=")
       << (t.st == JoinTask::St::kLocating ? t.locate_at : t.join_to)
       << " attempt=" << t.attempt << " timeout=" << t.timeout_ms << "\n";
  }
  for (const auto& [nonce, pi] : installs_) {
    os << "  install nonce=" << std::hex << nonce << std::dec << " dst="
       << pi.dst << " subject=" << pi.msg.subject.to_string().substr(0, 8)
       << " neighbor=" << pi.msg.neighbor.to_string().substr(0, 8)
       << " attempt=" << pi.attempt << "\n";
  }
}

void LiveRouter::finish(double now_ms) {
  const TransportStats& s = transport_->stats();
  registry_.set_counter(tx_frames_, s.tx_frames);
  registry_.set_counter(tx_bytes_, s.tx_bytes);
  registry_.set_counter(rx_frames_, s.rx_frames);
  registry_.set_counter(rx_bytes_, s.rx_bytes);
  registry_.set_counter(dedup_dropped_, s.dedup_dropped);
  registry_.set_counter(ring_dropped_, transport_->ring_dropped());
  registry_.set_counter(malformed_, s.malformed);
  registry_.set_counter(throttle_waits_, s.throttle_waits);
  if (timeline_ != nullptr) timeline_->flush(now_ms);
}

}  // namespace rofl::net
