// spsc_queue.hpp -- bounded single-producer/single-consumer ring buffer.
//
// The cross-shard event channel of the sharded simulator: each ordered shard
// pair (s -> d) owns one queue, written only by s's worker and read only by
// d's worker.  That pairing is what makes the lock-free implementation
// trivial: the producer owns tail_, the consumer owns head_, and each side
// only ever *reads* the other's index with acquire ordering.  Capacity is
// rounded up to a power of two so index masking is one AND.
//
// push() is non-blocking and returns false when full -- the shard loop spins
// with a yield, which is safe because the consumer drains unconditionally on
// every iteration regardless of how far its clock may advance.
//
// Thread contract: this is a TWO-thread structure.  Exactly one thread may
// call push() (the producer) and exactly one thread may call pop() (the
// consumer); size_approx() is meaningful only from one of those two threads
// (see its comment).  There is no safe third-party observer role.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <vector>

namespace rofl::util {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` slots (rounded up to a power of two, minimum 2).
  explicit SpscQueue(std::size_t capacity)
      : slots_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity)),
        mask_(slots_.size() - 1) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Producer side.  Returns false when the ring is full.
  bool push(const T& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = v;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Returns false when the ring is empty.
  bool pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Occupancy estimate.  Only valid from the producer or the consumer
  /// thread: the two indices are loaded separately, so a caller that owns
  /// neither index can observe them torn against each other -- e.g. read a
  /// stale tail, then a head the consumer has since advanced PAST that tail,
  /// and the unsigned difference wraps to a preposterous count.  From the
  /// producer the estimate errs low (consumer may still be draining); from
  /// the consumer it errs low the other way (producer may still be filling);
  /// from any third thread it is garbage, not merely stale.  EngineProfiler's
  /// spsc_hwm is therefore sampled by each channel's consumer only.
  [[nodiscard]] std::size_t size_approx() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  const std::size_t mask_;
  // Indices are free-running; the distance is the fill level.  Padded to
  // separate the producer-owned and consumer-owned cache lines.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

}  // namespace rofl::util
