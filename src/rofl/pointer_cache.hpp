// pointer_cache.hpp -- bounded per-router cache of source-route pointers.
//
// "Whenever a source route is established, the routers along the path can
// cache the route. ... The pointer-cache of routers is limited in size, and
// precedence is given to pointers [from resident IDs]" (section 2.2).  The
// cache is the knob behind figure 6a: bigger caches shortcut greedy routing
// and cut stretch.  Eviction is LRU; ring pointers owned by virtual nodes
// never live here, so precedence is structural.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "rofl/types.hpp"

namespace rofl::intra {

struct CacheEntry {
  NodeId id;
  NodeIndex host = graph::kInvalidNode;
  SourceRoute path;  // physical route from the caching router to `host`
};

class PointerCache {
 public:
  explicit PointerCache(std::size_t capacity) : capacity_(capacity) {}

  /// Inserts/refreshes an entry.  Evicts the least-recently-used entry when
  /// full.  A capacity of zero disables the cache entirely.
  void insert(const NodeId& id, NodeIndex host, SourceRoute path);

  /// The cached ID closest to `dest` without overshooting it (the entry
  /// minimising clockwise distance to dest), or nullptr if empty.  Marks the
  /// returned entry as used.
  [[nodiscard]] const CacheEntry* best_match(const NodeId& dest);

  /// Exact lookup without touching LRU state.
  [[nodiscard]] const CacheEntry* find(const NodeId& id) const;

  void erase(const NodeId& id);

  /// Drops every entry whose source route traverses `router` (router
  /// failure, section 2.2 "Recovering").
  void invalidate_through_router(NodeIndex router);

  /// Drops every entry whose source route uses link (u,v) in either
  /// direction (link failure, section 3.2).
  void invalidate_through_link(NodeIndex u, NodeIndex v);

  void clear();

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t capacity);

  [[nodiscard]] const std::map<NodeId, CacheEntry>& entries() const {
    return entries_;
  }

  // -- cache-effectiveness accounting (benches) -----------------------------
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  void touch(const NodeId& id);
  void evict_lru();

  std::size_t capacity_;
  std::map<NodeId, CacheEntry> entries_;
  // LRU bookkeeping: tick -> id and id -> tick.
  std::map<std::uint64_t, NodeId> by_tick_;
  std::map<NodeId, std::uint64_t> tick_of_;
  std::uint64_t next_tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace rofl::intra
