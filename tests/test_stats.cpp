#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/table.hpp"

#include <cstdlib>
#include <sstream>

namespace rofl {
namespace {

TEST(SampleSet, BasicMoments) {
  SampleSet s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.118, 1e-3);
}

TEST(SampleSet, PercentileNearestRank) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
}

TEST(SampleSet, CdfAt) {
  SampleSet s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.cdf_at(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(SampleSet, CdfSeriesMonotone) {
  SampleSet s;
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) s.add(rng.uniform());
  const auto series = s.cdf_series(20);
  ASSERT_EQ(series.size(), 20u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].first, series[i - 1].first);
    EXPECT_GT(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(SampleSet, AddAfterQueryResorts) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(MovingAverage, WindowedMean) {
  MovingAverage ma(3);
  ma.add(3.0);
  EXPECT_DOUBLE_EQ(ma.value(), 3.0);
  ma.add(6.0);
  EXPECT_DOUBLE_EQ(ma.value(), 4.5);
  ma.add(9.0);
  EXPECT_DOUBLE_EQ(ma.value(), 6.0);
  EXPECT_TRUE(ma.full());
  ma.add(12.0);  // 3.0 falls out of the window
  EXPECT_DOUBLE_EQ(ma.value(), 9.0);
}

TEST(MovingAverage, EmptyIsZero) {
  MovingAverage ma(5);
  EXPECT_DOUBLE_EQ(ma.value(), 0.0);
  EXPECT_FALSE(ma.full());
}

TEST(Zipf, PmfSumsToOneAndDecays) {
  ZipfSampler z(100, 1.2);
  double sum = 0.0;
  for (std::size_t k = 0; k < 100; ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(z.pmf(0), z.pmf(1));
  EXPECT_GT(z.pmf(1), z.pmf(50));
}

TEST(Zipf, SamplingMatchesPmfRoughly) {
  ZipfSampler z(10, 1.0);
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 50'000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, z.pmf(0), 0.02);
  EXPECT_GT(counts[0], counts[5]);
}

TEST(Table, AlignedOutputContainsCells) {
  Table t({"x", "value"});
  t.add_row({std::int64_t{1}, 3.25});
  t.add_row({std::string("total"), 10.0});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("3.250"), std::string::npos);
  EXPECT_NE(out.find("total"), std::string::npos);
}

TEST(Table, CsvMirrorHonorsEnvToggle) {
  Table t({"a"});
  t.add_row({std::int64_t{7}});
  setenv("ROFL_BENCH_CSV", "1", 1);
  std::ostringstream with_csv;
  t.print(with_csv);
  unsetenv("ROFL_BENCH_CSV");
  std::ostringstream without;
  t.print(without);
  EXPECT_NE(with_csv.str().find("--- csv ---"), std::string::npos);
  EXPECT_EQ(without.str().find("--- csv ---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({std::int64_t{1}, std::string("x,y")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,x;y\n");
}

}  // namespace
}  // namespace rofl
