// faults.hpp -- the unreliable-network model for the simulator.
//
// By default the discrete-event engine delivers every message exactly once
// with deterministic latency, so none of ROFL's loss-recovery machinery is
// ever exercised.  This module makes the network lie: a FaultPlan describes
// per-link probabilistic message loss, duplication and latency jitter, plus
// scheduled link flaps and router crash/restart windows; a FaultInjector
// turns the plan into per-transmission decisions.
//
// Determinism contract: every stochastic decision flows through the
// injector's own dedicated Rng stream, seeded explicitly and consulted in
// transmission order.  The protocol layers' RNGs are never touched, so a
// fixed (scenario seed, fault seed) pair reproduces a faulty run bit-for-bit
// -- including every drop, duplicate and jitter draw.  Knobs that are zero
// skip their draw entirely; the stream only advances for decisions that can
// actually happen, which keeps runs with the same plan comparable.
//
// Accounting: drop/duplicate/delay/retry decisions are exported through the
// obs::Registry as `faults.*` counters, so metric snapshots (and the
// check.sh determinism gate) see exactly what the network did to the run.
//
// The injector is attached to a protocol engine as a nullable pointer, the
// same pattern as the flight recorder and tracer: with no injector installed
// the send path costs one null check and behaves exactly as before.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace rofl::sim {

/// Message-level misbehavior of one link (or of the network as a whole when
/// used as FaultPlan::defaults).  Probabilities apply independently to every
/// physical transmission crossing the link.
struct NetworkConditions {
  double loss = 0.0;       // P(transmission dropped)
  double duplicate = 0.0;  // P(one spurious extra copy transmitted)
  double jitter_ms = 0.0;  // extra propagation delay, uniform in [0, jitter]
  double corrupt = 0.0;    // P(bit flips in the encoded frame)

  [[nodiscard]] bool active() const {
    return loss > 0.0 || duplicate > 0.0 || jitter_ms > 0.0 || corrupt > 0.0;
  }
};

/// Conditions override for one undirected link (u, v).
struct LinkConditions {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  NetworkConditions conditions;
};

/// Scheduled link outage: down at `down_at_ms`, back up at `up_at_ms`.
struct LinkFlap {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  double down_at_ms = 0.0;
  double up_at_ms = 0.0;
};

/// Scheduled router (or AS) crash/restart window.
struct CrashWindow {
  std::uint32_t node = 0;
  double down_at_ms = 0.0;
  double up_at_ms = 0.0;
};

/// A complete description of what the network does to a run.  The
/// message-level conditions are interpreted by the FaultInjector; the flap
/// and crash schedules are interpreted by the protocol engine
/// (e.g. intra::Network::schedule_fault_plan), which owns the fail/restore
/// machinery the events must drive.
struct FaultPlan {
  NetworkConditions defaults;                 // applies to every link
  std::vector<LinkConditions> link_overrides; // per-link exceptions
  std::vector<LinkFlap> link_flaps;
  std::vector<CrashWindow> crash_windows;

  /// True when any link can drop/duplicate/delay a message.  (Flap and crash
  /// schedules do not count: they run through the normal failure APIs and
  /// need no per-transmission branch.)
  [[nodiscard]] bool message_faults_possible() const;
};

/// Retransmission policy for control-plane exchanges over an unreliable
/// network: up to `max_attempts` tries, waiting a timeout that starts at
/// `timeout_ms` and multiplies by `backoff` after every loss, capped at
/// `max_timeout_ms`.  The timeout is the latency price of discovering a
/// loss; with a reliable network the first attempt succeeds and the policy
/// costs nothing.
struct RetryPolicy {
  unsigned max_attempts = 5;
  double timeout_ms = 50.0;
  double backoff = 2.0;
  double max_timeout_ms = 1'000.0;

  [[nodiscard]] double next_timeout(double current_ms) const {
    return std::min(current_ms * backoff, max_timeout_ms);
  }
};

/// Outcome of one transmission attempt across one link.
struct FaultDecision {
  bool dropped = false;
  std::uint32_t copies = 1;      // transmissions made, including the original
  double extra_latency_ms = 0.0; // jitter added to the link's latency
};

/// Outcome of one logical exchange spanning several transmissions (used by
/// layers that account whole multi-hop exchanges at once, e.g. the
/// interdomain engine's simulated lookups).
struct PathDecision {
  bool dropped = false;            // some leg lost the message
  std::uint64_t transmissions = 0; // legs actually transmitted (incl. dups)
  double extra_latency_ms = 0.0;
};

class FaultInjector {
 public:
  /// `registry` must outlive the injector; the `faults.*` counters are
  /// registered at construction so metric ids stay identical across
  /// same-seed runs.
  FaultInjector(FaultPlan plan, std::uint64_t seed, obs::Registry* registry);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// One branch on the hot path: false means no link can misbehave and the
  /// caller should take its original (fault-free) code path.
  [[nodiscard]] bool message_faults_enabled() const { return message_faults_; }

  /// Decides the fate of one transmission crossing undirected link (u, v).
  FaultDecision on_link(std::uint32_t u, std::uint32_t v);

  /// Decides the fate of one transmission on a host access link (the
  /// host<->gateway leg keepalives ride); default conditions apply.
  FaultDecision on_access_link() { return decide(plan_.defaults); }

  /// Decides one logical exchange of `transmissions` legs under the default
  /// conditions: legs are decided in order and the exchange stops at the
  /// first drop (later legs are never transmitted).
  PathDecision on_path(std::uint64_t transmissions);

  /// Byte-corruption mode: with probability `defaults.corrupt`, flips 1-3
  /// bits of `frame` at random positions and returns true.  The receiver's
  /// CRC-32 check then rejects the frame, converting corruption into loss
  /// that feeds the normal retry/backoff machinery.  With the knob at zero no
  /// randomness is consumed (same determinism contract as decide()).
  bool maybe_corrupt_frame(std::vector<std::uint8_t>& frame);

  /// True when the corruption knob is set anywhere in the plan; senders use
  /// this to skip the per-attempt frame copy on corruption-free runs.
  [[nodiscard]] bool corruption_enabled() const { return corruption_; }

  // Bookkeeping hooks for the layers that own retry loops and schedules.
  void note_retry() { registry_->add(retries_id_); }
  void note_retry_exhausted() { registry_->add(exhausted_id_); }
  void note_flap() { registry_->add(flaps_id_); }
  void note_crash() { registry_->add(crashes_id_); }

  // Counter reads (mirrors of the faults.* registry cells), for tests and
  // report tables.
  [[nodiscard]] std::uint64_t dropped() const {
    return registry_->counter_value(dropped_id_);
  }
  [[nodiscard]] std::uint64_t duplicated() const {
    return registry_->counter_value(duplicated_id_);
  }
  [[nodiscard]] std::uint64_t delayed() const {
    return registry_->counter_value(delayed_id_);
  }
  [[nodiscard]] std::uint64_t corrupted() const {
    return registry_->counter_value(corrupted_id_);
  }
  [[nodiscard]] std::uint64_t retries() const {
    return registry_->counter_value(retries_id_);
  }
  [[nodiscard]] std::uint64_t retries_exhausted() const {
    return registry_->counter_value(exhausted_id_);
  }
  [[nodiscard]] std::uint64_t flaps() const {
    return registry_->counter_value(flaps_id_);
  }
  [[nodiscard]] std::uint64_t crashes() const {
    return registry_->counter_value(crashes_id_);
  }

 private:
  FaultDecision decide(const NetworkConditions& c);
  [[nodiscard]] const NetworkConditions& conditions_for(std::uint32_t u,
                                                        std::uint32_t v) const;

  FaultPlan plan_;
  bool message_faults_ = false;
  bool corruption_ = false;
  Rng rng_;  // dedicated stream: protocol RNGs never see fault decisions
  obs::Registry* registry_;
  // Normalized (min, max) link key -> override conditions.
  std::map<std::pair<std::uint32_t, std::uint32_t>, NetworkConditions>
      overrides_;
  obs::MetricId dropped_id_ = 0;
  obs::MetricId duplicated_id_ = 0;
  obs::MetricId delayed_id_ = 0;
  obs::MetricId corrupted_id_ = 0;
  obs::MetricId retries_id_ = 0;
  obs::MetricId exhausted_id_ = 0;
  obs::MetricId flaps_id_ = 0;
  obs::MetricId crashes_id_ = 0;
};

}  // namespace rofl::sim
