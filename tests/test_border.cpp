#include "interdomain/border.hpp"

#include <gtest/gtest.h>

namespace rofl::inter {
namespace {

using graph::AsRel;

struct Fixture {
  graph::AsTopology topo;
  std::unique_ptr<InterNetwork> net;
  graph::IspTopology isp_topo;
  std::unique_ptr<intra::Network> isp;

  Fixture() {
    topo = graph::AsTopology::from_links(
        5, {{1, 0, AsRel::kProvider},
            {2, 0, AsRel::kProvider},
            {3, 1, AsRel::kProvider},
            {4, 2, AsRel::kProvider}});
    for (graph::AsIndex a : {3u, 4u}) topo.set_host_count(a, 10);
    net = std::make_unique<InterNetwork>(&topo, InterConfig{}, 5);
    Rng trng(9);
    graph::IspParams p;
    p.router_count = 40;
    p.pop_count = 5;
    isp_topo = graph::make_isp_topology(p, trng);
    isp = std::make_unique<intra::Network>(&isp_topo, intra::Config{}, 10);
  }
};

TEST(Border, AttachAssignsBordersPerAdjacency) {
  Fixture f;
  BorderFabric fabric(f.net.get());
  // AS 0 has adjacencies to 1 and 2.
  const std::size_t n = fabric.attach_isp(0, f.isp.get(), 42);
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 2u);
  EXPECT_TRUE(fabric.attached(0));
  ASSERT_TRUE(fabric.border_router(0, 1).has_value());
  ASSERT_TRUE(fabric.border_router(0, 2).has_value());
  // Borders are backbone routers of the attached ISP.
  EXPECT_TRUE(f.isp_topo.is_backbone[*fabric.border_router(0, 1)]);
  EXPECT_FALSE(fabric.border_router(0, 3).has_value());  // not adjacent
  EXPECT_FALSE(fabric.border_router(1, 0).has_value());  // not attached
}

TEST(Border, FloodCostAccounted) {
  Fixture f;
  BorderFabric fabric(f.net.get());
  const auto before =
      f.isp->simulator().counters().get(sim::MsgCategory::kControl);
  (void)fabric.attach_isp(0, f.isp.get(), 42);
  EXPECT_GT(fabric.flood_cost(0), 0u);
  EXPECT_EQ(f.isp->simulator().counters().get(sim::MsgCategory::kControl),
            before + fabric.flood_cost(0));
}

TEST(Border, ExpansionAddsInteriorHops) {
  Fixture f;
  BorderFabric fabric(f.net.get());
  (void)fabric.attach_isp(0, f.isp.get(), 42);
  // AS route 3 -> 1 -> 0 -> 2 -> 4: only AS 0 has a router map.
  const AsRoute route{3, 1, 0, 2, 4};
  const auto ex = fabric.expand(route);
  ASSERT_TRUE(ex.ok);
  // 4 inter-AS links + the interior of AS 0.
  EXPECT_GE(ex.router_hops, 4u);
  const auto in1 = fabric.border_router(0, 1);
  const auto in2 = fabric.border_router(0, 2);
  if (*in1 != *in2) {
    EXPECT_GT(ex.internal_hops, 0u);
  }
  EXPECT_EQ(ex.router_hops, 4u + ex.internal_hops);
}

TEST(Border, ExpansionWithoutMapsIsPureAsHops) {
  Fixture f;
  BorderFabric fabric(f.net.get());
  const AsRoute route{3, 1, 0, 2, 4};
  const auto ex = fabric.expand(route);
  ASSERT_TRUE(ex.ok);
  EXPECT_EQ(ex.router_hops, 4u);
  EXPECT_EQ(ex.internal_hops, 0u);
}

TEST(Border, EndToEndExpansionOfRealRoute) {
  Fixture f;
  BorderFabric fabric(f.net.get());
  (void)fabric.attach_isp(0, f.isp.get(), 42);
  // Join hosts and route 3 -> (host at 4); expand the traversed path.
  Identity ident = Identity::generate(f.net->rng());
  ASSERT_TRUE(
      f.net->join_host(ident, 4, JoinStrategy::kRecursiveMultihomed).ok);
  for (int i = 0; i < 5; ++i) {
    Identity filler = Identity::generate(f.net->rng());
    (void)f.net->join_host(filler, 3, JoinStrategy::kRecursiveMultihomed);
  }
  std::vector<graph::AsIndex> trace;
  const auto rs = f.net->route(3, ident.id(), &trace);
  ASSERT_TRUE(rs.delivered);
  const auto ex = fabric.expand(trace);
  EXPECT_TRUE(ex.ok);
  EXPECT_GE(ex.router_hops, rs.as_hops);
}

}  // namespace
}  // namespace rofl::inter
