#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace rofl {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<Cell> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render(const Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  const double v = std::get<double>(c);
  std::ostringstream os;
  if (v != 0.0 && (std::fabs(v) >= 1e7 || std::fabs(v) < 1e-3)) {
    os << std::scientific << std::setprecision(3) << v;
  } else {
    os << std::fixed << std::setprecision(3) << v;
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(render(row[i]));
      width[i] = std::max(width[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::setw(static_cast<int>(width[i]) + 2) << cells[i];
    }
    os << '\n';
  };
  line(headers_);
  for (const auto& r : rendered) line(r);
  // Opt-in machine-readable mirror of every printed table.
  const char* csv = std::getenv("ROFL_BENCH_CSV");
  if (csv != nullptr && csv[0] == '1') {
    os << "--- csv ---\n";
    print_csv(os);
    os << "--- end csv ---\n";
  }
}

void Table::print_csv(std::ostream& os) const {
  auto sanitize = [](std::string s) {
    std::replace(s.begin(), s.end(), ',', ';');
    return s;
  };
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << (i ? "," : "") << sanitize(headers_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i ? "," : "") << sanitize(render(row[i]));
    }
    os << '\n';
  }
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace rofl
