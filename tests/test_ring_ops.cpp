// Unit tests for the successor-group ordering helpers in rofl/types.hpp:
// insert_sorted_successor must keep the group sorted by clockwise distance
// from the owner with one binary-search pass, refresh duplicates in place,
// and truncate to the group size k.
#include "rofl/types.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rofl::intra {
namespace {

NodeId id(std::uint64_t v) { return NodeId::from_u64(v); }

VirtualNode owner_at(std::uint64_t v) {
  VirtualNode vn;
  vn.id = id(v);
  return vn;
}

std::vector<std::uint64_t> ids_of(const VirtualNode& vn) {
  std::vector<std::uint64_t> out;
  for (const NeighborPtr& s : vn.successors) out.push_back(s.id.lo());
  return out;
}

TEST(RingOps, InsertKeepsClockwiseDistanceOrder) {
  VirtualNode vn = owner_at(100);
  insert_sorted_successor(vn, {id(300), 3}, 8);
  insert_sorted_successor(vn, {id(150), 1}, 8);
  insert_sorted_successor(vn, {id(200), 2}, 8);
  EXPECT_EQ(ids_of(vn), (std::vector<std::uint64_t>{150, 200, 300}));
}

TEST(RingOps, InsertHandlesRingWraparound) {
  // Owner at the very top of the 128-bit ring: numerically tiny IDs wrap
  // past zero and are clockwise *nearer* than a large ID halfway around.
  VirtualNode vn;
  vn.id = NodeId(0xFFFF'FFFF'FFFF'FFFFull, 0xFFFF'FFFF'FFFF'FFF0ull);
  const NodeId halfway(0x8000'0000'0000'0000ull, 0);
  insert_sorted_successor(vn, {id(50), 1}, 8);  // wraps: distance 0x42
  insert_sorted_successor(vn, {id(5), 2}, 8);   // wraps: distance 0x15
  insert_sorted_successor(vn, {halfway, 3}, 8);
  EXPECT_EQ(vn.successors[0].id, id(5));
  EXPECT_EQ(vn.successors[1].id, id(50));
  EXPECT_EQ(vn.successors[2].id, halfway);
}

TEST(RingOps, DuplicateIdReinsertRefreshesHostWithoutGrowth) {
  VirtualNode vn = owner_at(100);
  insert_sorted_successor(vn, {id(150), 1}, 8);
  insert_sorted_successor(vn, {id(200), 2}, 8);
  insert_sorted_successor(vn, {id(150), 9}, 8);  // same ID, new host
  ASSERT_EQ(vn.successors.size(), 2u);
  EXPECT_EQ(vn.successors[0].id, id(150));
  EXPECT_EQ(vn.successors[0].host, 9u);
  EXPECT_EQ(vn.successors[1].host, 2u);
}

TEST(RingOps, GroupTruncatesToKKeepingNearest) {
  VirtualNode vn = owner_at(0);
  for (std::uint64_t v = 10; v <= 60; v += 10) {
    insert_sorted_successor(vn, {id(v), 1}, 4);
  }
  EXPECT_EQ(ids_of(vn), (std::vector<std::uint64_t>{10, 20, 30, 40}));
  // A nearer ID still displaces the group tail once full.
  insert_sorted_successor(vn, {id(5), 2}, 4);
  EXPECT_EQ(ids_of(vn), (std::vector<std::uint64_t>{5, 10, 20, 30}));
  // A farther-than-tail ID is dropped by the truncation.
  insert_sorted_successor(vn, {id(99), 3}, 4);
  EXPECT_EQ(ids_of(vn), (std::vector<std::uint64_t>{5, 10, 20, 30}));
}

TEST(RingOps, OwnersOwnIdIsRejected) {
  VirtualNode vn = owner_at(100);
  insert_sorted_successor(vn, {id(100), 7}, 8);
  EXPECT_TRUE(vn.successors.empty());
}

TEST(RingOps, RemoveSuccessorDropsAllMatches) {
  VirtualNode vn = owner_at(0);
  insert_sorted_successor(vn, {id(10), 1}, 8);
  insert_sorted_successor(vn, {id(20), 2}, 8);
  remove_successor(vn, id(10));
  EXPECT_EQ(ids_of(vn), (std::vector<std::uint64_t>{20}));
  remove_successor(vn, id(999));  // absent: no-op
  EXPECT_EQ(vn.successors.size(), 1u);
}

}  // namespace
}  // namespace rofl::intra
