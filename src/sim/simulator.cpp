#include "sim/simulator.hpp"

#include <cassert>
#include <chrono>
#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/timeline.hpp"
#include "sim/profiler.hpp"

namespace rofl::sim {

std::string_view to_string(MsgCategory c) {
  switch (c) {
    case MsgCategory::kJoin: return "join";
    case MsgCategory::kTeardown: return "teardown";
    case MsgCategory::kRepair: return "repair";
    case MsgCategory::kLinkState: return "linkstate";
    case MsgCategory::kData: return "data";
    case MsgCategory::kControl: return "control";
  }
  return "?";
}

// HopRecord carries MsgCategory as a raw byte; obs::category_name must keep
// printing the same names in the same order.
static_assert(kMsgCategoryCount == 6);
static_assert(obs::category_name(static_cast<std::uint8_t>(
                  MsgCategory::kJoin)) == "join");
static_assert(obs::category_name(static_cast<std::uint8_t>(
                  MsgCategory::kControl)) == "control");

Counters::Counters(obs::Registry* registry) : registry_(registry) {
  assert(registry != nullptr);
  for (std::size_t c = 0; c < kMsgCategoryCount; ++c) {
    const std::string name(to_string(static_cast<MsgCategory>(c)));
    ids_[c] = registry_->counter("msgs." + name);
    byte_ids_[c] = registry_->counter("bytes." + name);
  }
}

std::uint64_t Counters::total() const {
  std::uint64_t sum = 0;
  for (const obs::MetricId id : ids_) sum += registry_->counter_value(id);
  return sum;
}

std::uint64_t Counters::total_bytes() const {
  std::uint64_t sum = 0;
  for (const obs::MetricId id : byte_ids_) sum += registry_->counter_value(id);
  return sum;
}

void Counters::reset() {
  for (const obs::MetricId id : ids_) registry_->set_counter(id, 0);
  for (const obs::MetricId id : byte_ids_) registry_->set_counter(id, 0);
}

void Simulator::schedule_in(double delay_ms, Action action) {
  assert(delay_ms >= 0.0);
  schedule_at(now_ms_ + delay_ms, std::move(action));
}

void Simulator::schedule_at(double when_ms, Action action) {
  assert(when_ms >= now_ms_);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slab_[slot] = std::move(action);
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(std::move(action));
  }
  queue_.push(HeapItem{when_ms, next_seq_++, slot});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  const HeapItem item = queue_.pop();
  // Close timeline windows before the dispatch is recorded anywhere, so all
  // registry activity since the previous event -- and any counter-track
  // samples the timeline emits -- lands ahead of this event in trace order.
  if (timeline_ != nullptr) timeline_->advance_to(item.when);
  now_ms_ = item.when;
  // Move the payload out and recycle the slot before running it: the action
  // may schedule further events (growing or reusing the slab).
  Action action = std::move(slab_[item.slot]);
  free_slots_.push_back(item.slot);
  metrics_.add(events_id_);
  if (tracer_ != nullptr) {
    tracer_->instant("dispatch", "sim", now_ms_ * 1000.0, /*track=*/0,
                     {obs::TraceArg{"seq", item.seq}});
  }
  if (profiler_ != nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    action();
    const auto t1 = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(t1 - t0).count();
    EngineProfiler::ShardProfile& p = profiler_->shard(0);
    p.busy_s += dt;
    p.add_event(0, dt);
  } else {
    action();
  }
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t Simulator::run_until(double t_ms) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().when <= t_ms && step()) ++n;
  now_ms_ = std::max(now_ms_, t_ms);
  return n;
}

}  // namespace rofl::sim
