// rusage.hpp -- portable process resource readings.
//
// The one consumer-facing wrinkle: getrusage's ru_maxrss field is in
// kilobytes on Linux but in *bytes* on macOS and the BSDs.  Every caller
// wants KiB (BENCH_*.json "peak_rss_kb" fields, the roflsim run-summary
// line), so the platform guard lives here, once, instead of being silently
// wrong in per-binary copies.
#pragma once

#include <sys/resource.h>

namespace rofl::util {

/// Peak resident set size of this process in KiB, on every platform.
inline long peak_rss_kb() {
  rusage u{};
  getrusage(RUSAGE_SELF, &u);
#if defined(__APPLE__) || defined(__FreeBSD__) || defined(__NetBSD__) || \
    defined(__OpenBSD__) || defined(__DragonFly__)
  return u.ru_maxrss / 1024;  // bytes on macOS/BSD
#else
  return u.ru_maxrss;  // KiB on Linux
#endif
}

}  // namespace rofl::util
