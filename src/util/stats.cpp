#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace rofl {

void SampleSet::add(double v) {
  samples_.push_back(v);
  sorted_ = false;
}

void SampleSet::add_all(const std::vector<double>& vs) {
  samples_.insert(samples_.end(), vs.begin(), vs.end());
  sorted_ = false;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    auto& s = const_cast<std::vector<double>&>(samples_);
    std::sort(s.begin(), s.end());
    const_cast<bool&>(sorted_) = true;
  }
}

double SampleSet::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double SampleSet::mean() const {
  assert(!samples_.empty());
  return sum() / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  ensure_sorted();
  assert(!samples_.empty());
  return samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  assert(!samples_.empty());
  return samples_.back();
}

double SampleSet::stddev() const {
  assert(!samples_.empty());
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double SampleSet::percentile(double p) const {
  assert(!samples_.empty());
  assert(p >= 0.0 && p <= 1.0);
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

double SampleSet::cdf_at(double x) const {
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(std::distance(samples_.begin(), it)) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> SampleSet::cdf_series(
    std::size_t points) const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(points);
    const auto rank = static_cast<std::size_t>(
        std::ceil(frac * static_cast<double>(samples_.size())));
    out.emplace_back(samples_[rank == 0 ? 0 : rank - 1], frac);
  }
  return out;
}

MovingAverage::MovingAverage(std::size_t window) : buf_(window, 0.0) {
  assert(window > 0);
}

void MovingAverage::add(double v) {
  sum_ -= buf_[next_];
  buf_[next_] = v;
  sum_ += v;
  next_ = (next_ + 1) % buf_.size();
  ++count_;
}

double MovingAverage::value() const {
  const std::size_t n = std::min(count_, buf_.size());
  return n == 0 ? 0.0 : sum_ / static_cast<double>(n);
}

}  // namespace rofl
