// capability.hpp -- default-off reachability and capabilities (section 5.3).
//
// ROFL identifiers enable TVA-style fine-grained access control:
//   * default-off: hosts are reachable only by explicitly admitted sources;
//     unregistered destinations are dropped at (or before) the provider;
//   * capabilities: a destination grants a cryptographic token binding
//     (source ID, destination ID, expiry); only packets carrying a valid,
//     unexpired token are forwarded by the data plane;
//   * path capabilities: the token additionally pins the AS-level path,
//     giving fine-grained pushback against DDoS.
//
// The token is an HMAC-style construction over the destination's private
// key, so only the destination (or its hosting router acting on its behalf,
// holding the per-session secret) can mint or validate it -- forging one
// requires inverting SHA-256, matching the guarantee the paper claims from
// self-certifying IDs.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "graph/as_topology.hpp"
#include "rofl/network.hpp"
#include "util/sha256.hpp"

namespace rofl::ext {

struct Capability {
  NodeId source;
  NodeId destination;
  double expiry_ms = 0.0;
  Sha256::Digest token{};
};

/// Destination-side authority: mints and validates capabilities for one
/// host identity.
class CapabilityIssuer {
 public:
  explicit CapabilityIssuer(const Identity& host);

  [[nodiscard]] Capability issue(const NodeId& source, double now_ms,
                                 double lifetime_ms) const;

  /// Valid iff the token matches this destination, names `source`, and has
  /// not expired.
  [[nodiscard]] bool validate(const Capability& cap, const NodeId& source,
                              double now_ms) const;

 private:
  [[nodiscard]] Sha256::Digest mint(const NodeId& source,
                                    double expiry_ms) const;
  Identity host_;
};

/// Default-off forwarding filter for one network (section 5.3, "Default
/// off"): traffic to a destination in default-off mode is dropped unless it
/// carries a capability its issuer validates; traffic to hosts that never
/// registered with their provider is dropped outright.
class DefaultOffFilter {
 public:
  /// Marks `host` as registered with its provider (deliverable).
  void register_host(const NodeId& host);
  /// Enables default-off protection for `host` with its issuer.
  void protect(const NodeId& host, const CapabilityIssuer* issuer);

  [[nodiscard]] bool registered(const NodeId& host) const;
  [[nodiscard]] bool protected_host(const NodeId& host) const;

  /// Routes src_router -> dest, applying the filter before any forwarding
  /// happens: unregistered destinations and missing/invalid capabilities
  /// yield an undelivered result with zero data-plane cost (dropped at the
  /// edge).
  intra::RouteStats guarded_route(intra::Network& net,
                                  graph::NodeIndex src_router,
                                  const NodeId& source, const NodeId& dest,
                                  const Capability* cap) const;

 private:
  std::set<NodeId> registered_;
  std::map<NodeId, const CapabilityIssuer*> issuers_;
};

/// Path capability (section 5.3): pins the admissible AS-level path.
struct PathCapability {
  Capability base;
  std::vector<graph::AsIndex> allowed_ases;
};

/// True iff every AS in `traversed` is named by the path capability.
[[nodiscard]] bool path_compliant(const PathCapability& cap,
                                  const std::vector<graph::AsIndex>& traversed);

}  // namespace rofl::ext
