// transport.hpp -- real-packet transport abstraction for the control plane.
//
// PR 5 made every control exchange a CRC-framed wire::Packet; this module
// supplies the last simulated component: how those frames move between
// routers.  A Transport sends and receives whole frames addressed by router
// id.  Two backends exist:
//
//   * LoopbackTransport (loopback.hpp) -- in-process delivery through a
//     shared hub, the in-sim backend: single-threaded, deterministic, used by
//     tests and the byte-accounting parity runs.
//   * UdpTransport (udp.hpp) -- one real UDP socket per router on localhost,
//     with a multi-threaded packet pump modelled on production high-rate
//     probers (FlashRoute, PAPERS.md): a bounded token-bucket send rate and a
//     dedicated RX thread feeding an SPSC ring into the event loop.
//
// Every datagram carries a 21-byte pump header ahead of the wire frame:
//
//   magic u16 | op u8 | src_router u32 | seq u64 | arg u32 | hsum u16
//
// `seq` is a per-(sender, receiver) transmission counter; the receiver keeps
// a sliding dedup window per peer, so duplicates manufactured by the
// impairment layer (or by the network itself) are dropped at the pump and
// never reach a protocol handler.  Protocol-level retransmissions are new
// transmissions (new seq) -- idempotency of re-processed *requests* is the
// protocol layer's job, suppression of re-delivered *transmissions* is ours.
// `hsum` covers the preceding 19 header bytes and is verified on ingest:
// the payload is integrity-checked by the wire frame's own CRC-32, but the
// header has no such cover, and a corrupted *seq* in particular must never
// reach the dedup window -- a flipped high byte would advance max_seen by
// ~2^56 and make every later legitimate frame from that peer look like an
// ancient duplicate, permanently deafening the link.  (Found live: under
// `--corrupt`, a handful of joins would wedge forever re-locating while the
// poisoned peer silently discarded everything they sent.)  With the
// checksum, a corrupted header is indistinguishable from loss, which the
// sender's retry machinery already covers.
// The header is transport overhead and is excluded from the net.bytes.*
// wire-byte accounting (which must reproduce the simulator's section 6.3
// numbers exactly).
//
// Impairment: sim::FaultInjector is reused unchanged as a netem-style layer
// at the socket boundary.  Loss, duplication, jitter, and corruption are
// applied per transmission in PumpBase::send, exactly as the simulator
// applies them per link crossing, so the existing fault matrix (and its
// counters, faults.*) runs against live sockets without modification.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/faults.hpp"

namespace rofl::net {

using RouterId = std::uint32_t;

inline constexpr std::uint16_t kPumpMagic = 0x524F;  // "RO"
inline constexpr std::size_t kPumpHeaderBytes = 2 + 1 + 4 + 8 + 4 + 2;
/// Largest datagram the pump will carry (wire frame + header).
inline constexpr std::size_t kMaxDatagram = 4096;

/// Pump-layer frame kinds.  kData carries a wire::Packet frame for the
/// protocol layer; the rest are harness signaling for the multi-process mesh
/// (worker lifecycle + state collection) and are exempt from impairment --
/// they coordinate the experiment, they are not part of the measured
/// control plane.
enum class PumpOp : std::uint8_t {
  kData = 0,
  kDone = 1,       // worker -> driver: all assigned joins finished (arg=failed)
  kStop = 2,       // driver -> worker: storm over, dump state
  kStateChunk = 3, // worker -> driver: vnode table chunk (arg = index|total)
  kStateAck = 4,   // driver -> worker: state received, exit now
};

/// One received pump frame, already deduplicated.
struct RxFrame {
  RouterId src = 0;
  PumpOp op = PumpOp::kData;
  std::uint32_t arg = 0;
  std::vector<std::uint8_t> frame;  // wire frame for kData; op payload else
};

/// Pump counters.  Mutated only on the consumer/TX side (the router's event
/// loop thread) except the rx_* ingest cells, which the UDP RX thread owns
/// and the consumer reads after the pump has stopped.
struct TransportStats {
  std::uint64_t tx_frames = 0;     // datagrams actually handed to the wire
  std::uint64_t tx_bytes = 0;      // including pump headers
  std::uint64_t rx_frames = 0;     // delivered to poll() after dedup
  std::uint64_t rx_bytes = 0;
  std::uint64_t dedup_dropped = 0; // duplicate transmissions suppressed
  std::uint64_t ring_dropped = 0;  // RX ring full (UDP backend only)
  std::uint64_t malformed = 0;     // short/bad-magic datagrams
  std::uint64_t throttle_waits = 0;  // token-bucket stalls on send
};

/// FNV-1a over the first 19 header bytes, folded to 16 bits: the header
/// integrity check.  Not cryptographic -- it only has to catch the
/// impairment layer's (and the network's) bit flips.
inline std::uint16_t pump_header_sum(std::span<const std::uint8_t> hdr) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < kPumpHeaderBytes - 2; ++i) {
    h ^= hdr[i];
    h *= 1099511628211ull;
  }
  h ^= h >> 32;
  h ^= h >> 16;
  return static_cast<std::uint16_t>(h);
}

/// Serializes the pump header in front of `frame`.
inline std::vector<std::uint8_t> encode_pump_frame(
    RouterId src, PumpOp op, std::uint64_t seq, std::uint32_t arg,
    std::span<const std::uint8_t> frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kPumpHeaderBytes + frame.size());
  const auto be = [&out](std::uint64_t v, int bytes) {
    for (int i = bytes - 1; i >= 0; --i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  be(kPumpMagic, 2);
  out.push_back(static_cast<std::uint8_t>(op));
  be(src, 4);
  be(seq, 8);
  be(arg, 4);
  be(pump_header_sum(out), 2);
  out.insert(out.end(), frame.begin(), frame.end());
  return out;
}

/// Parsed pump header.
struct PumpHeader {
  RouterId src = 0;
  PumpOp op = PumpOp::kData;
  std::uint64_t seq = 0;
  std::uint32_t arg = 0;
};

inline std::optional<PumpHeader> decode_pump_header(
    std::span<const std::uint8_t> datagram) {
  if (datagram.size() < kPumpHeaderBytes) return std::nullopt;
  const auto be = [&datagram](std::size_t at, int bytes) {
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) v = (v << 8) | datagram[at + i];
    return v;
  };
  if (be(0, 2) != kPumpMagic) return std::nullopt;
  if (be(kPumpHeaderBytes - 2, 2) != pump_header_sum(datagram)) {
    return std::nullopt;  // corrupted header: treat as loss, never dedup
  }
  const std::uint8_t op = datagram[2];
  if (op > static_cast<std::uint8_t>(PumpOp::kStateAck)) return std::nullopt;
  PumpHeader h;
  h.op = static_cast<PumpOp>(op);
  h.src = static_cast<RouterId>(be(3, 4));
  h.seq = be(7, 8);
  h.arg = static_cast<std::uint32_t>(be(15, 4));
  return h;
}

/// Per-peer receive-side duplicate suppression: a 1024-transmission sliding
/// bitmap keyed on the pump seq.  Anything older than the window is treated
/// as a duplicate -- safe because senders never have that many transmissions
/// outstanding to one peer.
class DedupWindow {
 public:
  static constexpr std::uint64_t kWindow = 1024;

  /// True if `seq` is new (caller should deliver), false on duplicate/stale.
  bool accept(std::uint64_t seq) {
    if (!any_) {
      any_ = true;
      max_seen_ = seq;
      clear_all();
      mark(seq);
      return true;
    }
    if (seq > max_seen_) {
      // Advance: clear the slots the window slides over.
      const std::uint64_t advance = seq - max_seen_;
      if (advance >= kWindow) {
        clear_all();
      } else {
        for (std::uint64_t s = max_seen_ + 1; s <= seq; ++s) unmark(s);
      }
      max_seen_ = seq;
      mark(seq);
      return true;
    }
    if (max_seen_ - seq >= kWindow) return false;  // too old: assume dup
    if (marked(seq)) return false;
    mark(seq);
    return true;
  }

 private:
  void clear_all() { bits_.fill(0); }
  void mark(std::uint64_t s) { bits_[(s / 64) % kWords] |= bit(s); }
  void unmark(std::uint64_t s) { bits_[(s / 64) % kWords] &= ~bit(s); }
  [[nodiscard]] bool marked(std::uint64_t s) const {
    return (bits_[(s / 64) % kWords] & bit(s)) != 0;
  }
  static std::uint64_t bit(std::uint64_t s) { return 1ull << (s % 64); }
  static constexpr std::size_t kWords = kWindow / 64;

  bool any_ = false;
  std::uint64_t max_seen_ = 0;
  std::array<std::uint64_t, kWords> bits_{};
};

/// Token bucket bounding the send rate in packets/sec (0 = unlimited).
/// take() returns 0 when a token was consumed, else the milliseconds to wait
/// before retrying -- the UDP backend sleeps, the loopback backend just
/// counts (virtual time).
struct TokenBucket {
  double rate_pps = 0.0;
  double burst = 64.0;
  double tokens = 64.0;
  double last_ms = 0.0;

  [[nodiscard]] double take(double now_ms) {
    if (rate_pps <= 0.0) return 0.0;
    tokens = std::min(burst, tokens + (now_ms - last_ms) * rate_pps / 1000.0);
    last_ms = now_ms;
    if (tokens >= 1.0) {
      tokens -= 1.0;
      return 0.0;
    }
    return (1.0 - tokens) * 1000.0 / rate_pps;
  }
};

/// The backend-independent half of the packet pump: per-peer TX sequencing,
/// the impairment layer, jitter-delayed transmission, receive-side dedup,
/// and the stats block.  Backends implement raw datagram IO.
class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  [[nodiscard]] RouterId self() const { return self_; }
  [[nodiscard]] const TransportStats& stats() const { return stats_; }

  /// Installs the netem-style impairment layer (nullable; loss/dup/jitter/
  /// corruption drawn per transmission at the socket boundary).  The injector
  /// must outlive the transport and is only touched from the send thread.
  void set_fault_injector(sim::FaultInjector* inj) { injector_ = inj; }

  /// Bounds the send rate (packets/sec; 0 = unlimited).
  void set_rate_limit(double pps) {
    bucket_.rate_pps = pps;
    bucket_.burst = std::max(32.0, pps / 20.0);
    bucket_.tokens = bucket_.burst;
  }

  /// Sends one pump frame to `dst`.  Best-effort: the impairment layer may
  /// drop, duplicate, delay, or corrupt the transmission; kernel-side loss is
  /// possible on the UDP backend.  Reliability belongs to the caller's
  /// retry/backoff machinery (sim::RetryPolicy semantics).
  void send(RouterId dst, PumpOp op, std::uint32_t arg,
            std::span<const std::uint8_t> frame, double now_ms) {
    const std::uint64_t seq = ++tx_seq_[dst];
    std::vector<std::uint8_t> datagram =
        encode_pump_frame(self_, op, seq, arg, frame);
    if (op != PumpOp::kData || injector_ == nullptr ||
        !injector_->message_faults_enabled()) {
      transmit(dst, std::move(datagram), now_ms);
      return;
    }
    const sim::FaultDecision d = injector_->on_link(self_, dst);
    if (d.dropped) return;
    for (std::uint32_t copy = 0; copy < d.copies; ++copy) {
      std::vector<std::uint8_t> wire = datagram;
      if (injector_->corruption_enabled()) {
        (void)injector_->maybe_corrupt_frame(wire);
      }
      if (d.extra_latency_ms > 0.0) {
        delayed_.push(Delayed{now_ms + d.extra_latency_ms, delay_seq_++, dst,
                              std::move(wire)});
      } else {
        transmit(dst, std::move(wire), now_ms);
      }
    }
  }

  /// Flushes jitter-delayed transmissions that have come due.  Call once per
  /// event-loop iteration.
  void pump(double now_ms) {
    while (!delayed_.empty() && delayed_.top().due_ms <= now_ms) {
      Delayed d = delayed_.top();
      delayed_.pop();
      transmit(d.dst, std::move(d.datagram), now_ms);
    }
  }

  /// Next received frame, deduplicated; false when none pending.
  virtual bool poll(RxFrame& out) = 0;

  /// Datagrams discarded because the backend's RX ring was full (UDP only;
  /// stable once the pump has stopped).
  [[nodiscard]] virtual std::uint64_t ring_dropped() const { return 0; }

 protected:
  explicit Transport(RouterId self) : self_(self) {}

  /// Hands one datagram to the backend after rate limiting.
  void transmit(RouterId dst, std::vector<std::uint8_t> datagram,
                double now_ms) {
    double wait = bucket_.take(now_ms);
    while (wait > 0.0) {
      ++stats_.throttle_waits;
      wait = bucket_.take(throttle_wait(now_ms, wait));
    }
    stats_.tx_frames++;
    stats_.tx_bytes += datagram.size();
    raw_send(dst, std::move(datagram));
  }

  /// Backend IO: ship one datagram.
  virtual void raw_send(RouterId dst, std::vector<std::uint8_t> datagram) = 0;

  /// Backend wait policy when the token bucket is empty: the UDP backend
  /// sleeps `wait_ms` of wall time and returns the new clock; the loopback
  /// backend advances its virtual clock.  Returns the updated now_ms.
  virtual double throttle_wait(double now_ms, double wait_ms) = 0;

  /// Shared receive-side processing: header parse + dedup.  Returns true and
  /// fills `out` when the datagram should be delivered.
  bool ingest(std::span<const std::uint8_t> datagram, RxFrame& out) {
    const auto h = decode_pump_header(datagram);
    if (!h.has_value()) {
      ++stats_.malformed;
      return false;
    }
    if (!rx_dedup_[h->src].accept(h->seq)) {
      ++stats_.dedup_dropped;
      return false;
    }
    out.src = h->src;
    out.op = h->op;
    out.arg = h->arg;
    out.frame.assign(datagram.begin() + kPumpHeaderBytes, datagram.end());
    stats_.rx_frames++;
    stats_.rx_bytes += datagram.size();
    return true;
  }

  TransportStats stats_;

 private:
  struct Delayed {
    double due_ms = 0.0;
    std::uint64_t order = 0;  // FIFO among equal due times
    RouterId dst = 0;
    std::vector<std::uint8_t> datagram;
    bool operator>(const Delayed& o) const {
      return due_ms != o.due_ms ? due_ms > o.due_ms : order > o.order;
    }
  };

  RouterId self_;
  sim::FaultInjector* injector_ = nullptr;
  TokenBucket bucket_;
  std::unordered_map<RouterId, std::uint64_t> tx_seq_;
  std::unordered_map<RouterId, DedupWindow> rx_dedup_;
  std::priority_queue<Delayed, std::vector<Delayed>, std::greater<>> delayed_;
  std::uint64_t delay_seq_ = 0;
};

}  // namespace rofl::net
