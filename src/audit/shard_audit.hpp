// shard_audit.hpp -- post-quiescence invariant checks for sharded runs.
//
// The mid-run Auditor (auditor.hpp) walks a single-threaded engine's state;
// the sharded simulator needs its own gate because the failure modes are
// different: a lost or duplicated cross-shard frame, a lookahead violation,
// a non-monotone shard clock, or a registration cascade that left an anchor
// ring inconsistent with the home AS's ground truth.  All checks run after
// run() returns (the engine is quiescent, so every cascade has completed)
// and inspect only sharding-independent state -- per-entity send/processed
// counts, the model's ring maps, engine monotonicity flags -- so the report
// and its digest are bit-identical for every shard count of the same seed.
// That identity is itself part of the determinism gate: check.sh and CI
// byte-compare the digest between --shards 1 and --shards N runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interdomain/shard_model.hpp"

namespace rofl::audit {

struct ShardAuditReport {
  std::uint64_t checks = 0;  // individual assertions evaluated
  /// "check-name: detail" lines, in deterministic order.  Every violation
  /// from these checks is hard: quiescent state has no tolerated staleness.
  std::vector<std::string> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
  /// Multi-line human rendering (header + one line per violation).
  [[nodiscard]] std::string to_string() const;
  /// "checks=<n>;hard=<v>;fnv=<hex64>" -- same shape as Auditor digests, so
  /// the determinism gates grep for it the same way.
  [[nodiscard]] std::string digest() const;
};

/// Audits a completed ShardScaleModel run:
///   1. per-entity sequence conservation (every send processed exactly once,
///      including engine seeds) -- catches lost/duplicated channel frames;
///   2. per-shard clock monotonicity and lookahead compliance -- catches
///      conservative-synchronization bugs;
///   3. ring/ground-truth consistency: slot s of AS t is live iff
///      id_for(t, s) is registered at every anchor on t's chain, and no
///      anchor holds an entry its subtree never produced.
[[nodiscard]] ShardAuditReport audit_scale_run(
    const inter::ShardScaleModel& model);

}  // namespace rofl::audit
