// fig8_stretch -- regenerates Figure 8b: CDF of interdomain data-packet
// stretch (vs the BGP-policy path) for single-homed joins with 60 / 160 /
// 280 proximity fingers, alongside today's BGP-policy stretch (policy path
// over unconstrained shortest path) measured on the same topology.
//
// Paper reference: average stretch 2.8 with 60 fingers, 2.3 with 160;
// stretch decreases as fingers grow and (slightly) as the system grows; the
// isolation property held in every experiment.
#include <iostream>

#include "baselines/bgp_baseline.hpp"
#include "bench_common.hpp"
#include "interdomain/inter_network.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rofl {
namespace {

struct SeriesResult {
  SampleSet stretch;
  std::uint64_t isolation_violations = 0;
};

SeriesResult run_fingers(const graph::AsTopology& topo, std::size_t fingers,
                         std::size_t ids, std::size_t packets) {
  inter::InterConfig cfg;
  cfg.fingers_per_id = fingers;
  inter::InterNetwork net(&topo, cfg, bench::kSeed + 11);
  std::vector<NodeId> joined;
  for (std::size_t i = 0; i < ids; ++i) {
    // Figure 8b uses single-homed joins.
    const auto before = net.directory().size();
    (void)net.join_random_host(inter::JoinStrategy::kSingleHomed);
    if (net.directory().size() > before) {
      joined.push_back(net.directory().rbegin()->first);
    }
  }
  // Re-collect all ids (directory order is by ID, not join order).
  joined.clear();
  for (const auto& [id, home] : net.directory()) joined.push_back(id);

  SeriesResult res;
  for (std::size_t i = 0; i < packets; ++i) {
    const NodeId dest = joined[net.rng().index(joined.size())];
    const NodeId src_id = joined[net.rng().index(joined.size())];
    const auto src = net.home_of(src_id);
    if (!src.has_value() || net.home_of(dest) == *src) continue;
    const auto rs = net.route(*src, dest);
    if (!rs.delivered) continue;
    if (!rs.isolation_held) ++res.isolation_violations;
    if (rs.bgp_hops > 0) res.stretch.add(rs.stretch());
  }
  return res;
}

}  // namespace
}  // namespace rofl

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  const std::size_t ids = bench::full_scale() ? 8'000 : 2'000;
  const std::size_t packets = bench::full_scale() ? 4'000 : 1'500;

  Rng trng(bench::kSeed);
  const graph::AsTopology topo = bench::make_inter_topology(trng);

  print_banner(std::cout,
               "Figure 8b: CDF of data-packet stretch vs BGP-policy path");
  Table t({"series", "p25", "p50", "p75", "p90", "mean"});
  for (const std::size_t fingers : {0u, 60u, 160u, 280u}) {
    const SeriesResult r = run_fingers(topo, fingers, ids, packets);
    const std::string name =
        fingers == 0 ? "ROFL no fingers" :
        "ROFL " + std::to_string(fingers) + " fingers";
    t.add_row({name, r.stretch.percentile(0.25), r.stretch.percentile(0.50),
               r.stretch.percentile(0.75), r.stretch.percentile(0.90),
               r.stretch.mean()});
    if (r.isolation_violations > 0) {
      std::cout << "(" << name << ": " << r.isolation_violations
                << " isolation violations -- expected ~0)\n";
    }
  }

  // BGP-policy series: the stretch BGP's policy paths impose over the
  // unconstrained shortest paths, on the same pair sample.
  {
    Rng rng(bench::kSeed + 13);
    SampleSet bgp;
    for (std::size_t i = 0; i < packets; ++i) {
      const auto a = static_cast<graph::AsIndex>(rng.index(topo.as_count()));
      const auto b = static_cast<graph::AsIndex>(rng.index(topo.as_count()));
      if (a == b) continue;
      const auto st = baselines::bgp_policy_stretch(topo, a, b);
      if (st.has_value()) bgp.add(*st);
    }
    t.add_row({std::string("BGP-policy (vs shortest)"), bgp.percentile(0.25),
               bgp.percentile(0.50), bgp.percentile(0.75),
               bgp.percentile(0.90), bgp.mean()});
  }
  t.print(std::cout);
  std::cout << "\nPaper reference: stretch decreases with the number of "
               "fingers (2.8 avg at 60 fingers, 2.3 at 160); BGP-policy "
               "itself sits close to 1; isolation was never violated.  "
               "Extrapolated: 128 fingers -> ~2.9, 340 fingers -> ~2.5 at "
               "600M IDs.\n";
  return 0;
}
