#include <gtest/gtest.h>

#include "graph/as_topology.hpp"
#include "graph/isp_topology.hpp"

namespace rofl::graph {
namespace {

// -- ISP (Rocketfuel-like) topologies ---------------------------------------

class IspPresets : public ::testing::TestWithParam<RocketfuelAs> {};

TEST_P(IspPresets, MatchesPaperRouterCounts) {
  Rng rng(1);
  const IspTopology topo = make_rocketfuel_like(GetParam(), rng);
  const IspParams params = rocketfuel_params(GetParam());
  EXPECT_EQ(topo.router_count(), params.router_count);
  EXPECT_EQ(topo.host_count, params.host_count);
  EXPECT_EQ(topo.pop_count(), params.pop_count);
  EXPECT_TRUE(topo.graph.connected());
}

TEST_P(IspPresets, EveryRouterBelongsToItsPop) {
  Rng rng(2);
  const IspTopology topo = make_rocketfuel_like(GetParam(), rng);
  std::size_t total = 0;
  for (std::size_t p = 0; p < topo.pop_count(); ++p) {
    for (const NodeIndex r : topo.pops[p]) {
      EXPECT_EQ(topo.pop_of[r], p);
    }
    total += topo.pops[p].size();
  }
  EXPECT_EQ(total, topo.router_count());
}

TEST_P(IspPresets, EveryPopHasABackboneRouter) {
  Rng rng(3);
  const IspTopology topo = make_rocketfuel_like(GetParam(), rng);
  for (std::size_t p = 0; p < topo.pop_count(); ++p) {
    bool has_bb = false;
    for (const NodeIndex r : topo.pops[p]) has_bb |= topo.is_backbone[r];
    EXPECT_TRUE(has_bb) << "PoP " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFour, IspPresets,
                         ::testing::ValuesIn(all_rocketfuel_ases()));

TEST(IspTopology, SurvivesSinglePopRemoval) {
  // Figure 7 disconnects whole PoPs; the backbone ring must keep the rest
  // connected when one PoP is taken out.
  Rng rng(4);
  const IspTopology topo = make_rocketfuel_like(RocketfuelAs::kAs3967, rng);
  Graph g = topo.graph;  // copy
  for (const NodeIndex r : topo.pops[topo.pop_count() / 2]) {
    g.set_node_up(r, false);
  }
  // All remaining live routers form one component.
  EXPECT_TRUE(g.connected());
}

TEST(IspTopology, DeterministicUnderSeed) {
  Rng a(5);
  Rng b(5);
  const IspTopology ta = make_rocketfuel_like(RocketfuelAs::kAs1221, a);
  const IspTopology tb = make_rocketfuel_like(RocketfuelAs::kAs1221, b);
  EXPECT_EQ(ta.graph.edge_count(), tb.graph.edge_count());
}

TEST(IspTopology, CustomParams) {
  Rng rng(6);
  IspParams p;
  p.router_count = 40;
  p.pop_count = 5;
  const IspTopology topo = make_isp_topology(p, rng);
  EXPECT_EQ(topo.router_count(), 40u);
  EXPECT_TRUE(topo.graph.connected());
}

// -- AS-level topology -------------------------------------------------------

AsGenParams small_params() {
  AsGenParams p;
  p.tier1_count = 4;
  p.tier2_count = 10;
  p.tier3_count = 20;
  p.stub_count = 60;
  p.total_hosts = 10'000;
  return p;
}

TEST(AsTopology, TierOneIsAPeeringClique) {
  Rng rng(7);
  const AsTopology t = AsTopology::make_internet_like(small_params(), rng);
  for (AsIndex a = 0; a < 4; ++a) {
    for (AsIndex b = 0; b < 4; ++b) {
      if (a == b) continue;
      EXPECT_EQ(t.relationship(a, b), AsRel::kPeer);
    }
  }
}

TEST(AsTopology, EveryNonTier1HasAProvider) {
  Rng rng(8);
  const AsTopology t = AsTopology::make_internet_like(small_params(), rng);
  for (AsIndex a = 0; a < t.as_count(); ++a) {
    if (t.tier(a) == 1) continue;
    EXPECT_FALSE(t.providers(a, /*include_backup=*/true).empty()) << "AS " << a;
  }
}

TEST(AsTopology, RelationshipsAreSymmetricallyReversed) {
  Rng rng(9);
  const AsTopology t = AsTopology::make_internet_like(small_params(), rng);
  for (AsIndex a = 0; a < t.as_count(); ++a) {
    for (const auto& adj : t.adjacencies(a)) {
      const auto back = t.relationship(adj.neighbor, a);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, reverse_rel(adj.rel));
    }
  }
}

TEST(AsTopology, UpHierarchyReachesTier1) {
  Rng rng(10);
  const AsTopology t = AsTopology::make_internet_like(small_params(), rng);
  // Every stub's up-hierarchy must contain at least one tier-1 AS.
  for (AsIndex a = 0; a < t.as_count(); ++a) {
    if (!t.is_stub(a)) continue;
    const UpHierarchy g = t.up_hierarchy(a, /*include_backup=*/true);
    const bool has_t1 = std::any_of(g.nodes.begin(), g.nodes.end(),
                                    [&](AsIndex x) { return t.tier(x) == 1; });
    EXPECT_TRUE(has_t1) << "stub " << a;
  }
}

TEST(AsTopology, UpHierarchyLevelsIncreaseFromRoot) {
  Rng rng(11);
  const AsTopology t = AsTopology::make_internet_like(small_params(), rng);
  const UpHierarchy g = t.up_hierarchy(t.as_count() - 1);
  EXPECT_EQ(g.level.at(g.root), 0u);
  for (const auto& [c, p] : g.edges) {
    EXPECT_LE(g.level.at(p), g.level.at(c) + 1);
  }
}

TEST(AsTopology, CustomerSubtreeContainsSelfAndCustomers) {
  const AsTopology t = AsTopology::from_links(
      4, {{1, 0, AsRel::kProvider},   // 1's provider is 0
          {2, 1, AsRel::kProvider},   // 2's provider is 1
          {3, 0, AsRel::kProvider}});
  const auto sub = t.customer_subtree(0);
  EXPECT_EQ(sub.size(), 4u);
  const auto sub1 = t.customer_subtree(1);
  EXPECT_EQ(sub1.size(), 2u);  // 1 and 2
  EXPECT_TRUE(t.in_subtree(0, 2));
  EXPECT_FALSE(t.in_subtree(1, 3));
}

TEST(AsTopology, CommonAncestorsOfSiblings) {
  const AsTopology t = AsTopology::from_links(
      3, {{1, 0, AsRel::kProvider}, {2, 0, AsRel::kProvider}});
  const auto anc = t.common_ancestors(1, 2);
  ASSERT_EQ(anc.size(), 1u);
  EXPECT_EQ(anc[0], 0u);
}

TEST(AsTopology, FailedLinkDropsFromHierarchy) {
  AsTopology t = AsTopology::from_links(
      3, {{1, 0, AsRel::kProvider}, {2, 0, AsRel::kProvider}});
  t.set_link_up(1, 0, false);
  const UpHierarchy g = t.up_hierarchy(1);
  EXPECT_FALSE(g.contains(0));
  t.set_link_up(1, 0, true);
  EXPECT_TRUE(t.up_hierarchy(1).contains(0));
}

TEST(AsTopology, HostCountsConcentratedAtEdge) {
  Rng rng(12);
  const AsTopology t = AsTopology::make_internet_like(small_params(), rng);
  std::uint64_t edge_hosts = 0;
  std::uint64_t core_hosts = 0;
  for (AsIndex a = 0; a < t.as_count(); ++a) {
    if (t.tier(a) <= 2) core_hosts += t.host_count(a);
    else edge_hosts += t.host_count(a);
  }
  EXPECT_GT(edge_hosts, core_hosts);
  EXPECT_GT(t.total_hosts(), 0u);
}

TEST(AsTopology, VirtualPeeringAsReplacesClique) {
  // Two peers with one provider each -> one virtual AS providing both.
  AsTopology t = AsTopology::from_links(
      4, {{2, 0, AsRel::kProvider},
          {3, 1, AsRel::kProvider},
          {2, 3, AsRel::kPeer}});
  std::vector<std::pair<AsIndex, std::vector<AsIndex>>> vmap;
  const AsTopology converted = t.with_virtual_peering_ases(&vmap);
  ASSERT_EQ(vmap.size(), 1u);
  const AsIndex v = vmap[0].first;
  EXPECT_TRUE(converted.is_virtual(v));
  // Virtual AS is a provider of both peers.
  EXPECT_EQ(converted.relationship(2, v), AsRel::kProvider);
  EXPECT_EQ(converted.relationship(3, v), AsRel::kProvider);
  // And a customer of each peer's providers.
  EXPECT_EQ(converted.relationship(v, 0), AsRel::kProvider);
  EXPECT_EQ(converted.relationship(v, 1), AsRel::kProvider);
  // The original peering link is gone.
  EXPECT_FALSE(converted.relationship(2, 3).has_value());
}

TEST(AsTopology, Tier1CliqueCollapsesToSingleVirtualAs) {
  Rng rng(13);
  AsGenParams p = small_params();
  const AsTopology t = AsTopology::make_internet_like(p, rng);
  std::vector<std::pair<AsIndex, std::vector<AsIndex>>> vmap;
  (void)t.with_virtual_peering_ases(&vmap);
  // The 4-AS tier-1 full mesh must map to exactly one virtual AS covering
  // all four.
  bool found_t1_clique = false;
  for (const auto& [v, members] : vmap) {
    if (members.size() == p.tier1_count) found_t1_clique = true;
  }
  EXPECT_TRUE(found_t1_clique);
}

TEST(AsTopology, DegreeInferenceRecoversCoreRoughly) {
  Rng rng(14);
  const AsTopology t = AsTopology::make_internet_like(small_params(), rng);
  const auto inferred = t.infer_tiers_by_degree();
  // Degree-based inference is approximate (as in the paper's source data):
  // require that it recovers at least some of the true core, and that what
  // it calls tier-1 is never a stub.
  int hits = 0;
  int t1 = 0;
  for (AsIndex a = 0; a < t.as_count(); ++a) {
    if (t.tier(a) == 1) {
      ++t1;
      if (inferred[a] == 1) ++hits;
    }
    if (inferred[a] == 1) {
      EXPECT_FALSE(t.is_stub(a)) << "AS " << a;
    }
  }
  EXPECT_GE(hits * 4, t1);
}

TEST(AsTopology, FailedAsExcludedFromSubtreeAndHierarchy) {
  AsTopology t = AsTopology::from_links(
      3, {{1, 0, AsRel::kProvider}, {2, 1, AsRel::kProvider}});
  t.set_as_up(1, false);
  EXPECT_EQ(t.customer_subtree(0).size(), 1u);
  EXPECT_FALSE(t.up_hierarchy(2).contains(0));
}

}  // namespace
}  // namespace rofl::graph
