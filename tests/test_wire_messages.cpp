// Tests for the typed control-message codecs (wire/messages): per-type
// round trips, exact sizing, truncation and bit-flip rejection, MTU
// fragmentation boundaries, and the section 6.3 regression pinning the
// paper's 1638-byte / 258-packet figure for a 256-finger single-homed join
// to the actual encoder output.
#include "wire/messages.hpp"

#include <gtest/gtest.h>

#include "sim/faults.hpp"
#include "util/rng.hpp"

namespace rofl::wire::msg {
namespace {

NodeId random_id(Rng& rng) { return NodeId(rng.next_u64(), rng.next_u64()); }

Sha256::Digest random_key(Rng& rng) {
  Sha256::Digest d{};
  for (auto& b : d) b = static_cast<std::uint8_t>(rng.below(256));
  return d;
}

/// One random instance of each message type, index-addressable so the fuzz
/// loops sweep every variant alternative.
ControlMessage random_message(Rng& rng, std::size_t which) {
  switch (which % 11) {
    case 0: {
      JoinRequest m;
      m.nonce = rng.next_u64();
      m.gateway = static_cast<std::uint32_t>(rng.below(1 << 20));
      m.host_class = static_cast<std::uint8_t>(rng.below(4));
      m.strategy = static_cast<std::uint8_t>(rng.below(4));
      m.public_key = random_key(rng);
      const std::size_t n = rng.index(300);
      for (std::size_t i = 0; i < n; ++i) {
        m.fingers.push_back(
            CompactFinger{static_cast<std::uint32_t>(rng.next_u64()),
                          static_cast<std::uint16_t>(rng.below(1 << 16))});
      }
      return m;
    }
    case 1: {
      JoinReply m;
      m.predecessor = random_id(rng);
      m.predecessor_host = static_cast<std::uint32_t>(rng.below(1 << 20));
      const std::size_t ns = rng.index(6);
      for (std::size_t i = 0; i < ns; ++i) {
        m.successors.push_back(FingerField{
            random_id(rng), static_cast<std::uint32_t>(rng.below(1 << 20))});
      }
      const std::size_t nm = rng.index(4);
      for (std::size_t i = 0; i < nm; ++i) {
        m.migrated_ephemerals.push_back(random_id(rng));
      }
      return m;
    }
    case 2:
      return Locate{random_id(rng), static_cast<std::uint8_t>(rng.below(3))};
    case 3:
      return PointerInstall{random_id(rng), random_id(rng),
                            static_cast<std::uint32_t>(rng.below(1 << 20)),
                            static_cast<std::uint8_t>(rng.below(3))};
    case 4:
      return Teardown{random_id(rng), static_cast<std::uint8_t>(rng.below(4))};
    case 5:
      return Repair{random_id(rng), random_id(rng),
                    static_cast<std::uint32_t>(rng.below(1 << 20)),
                    static_cast<std::uint8_t>(rng.below(3))};
    case 6:
      return Keepalive{rng.next_u64()};
    case 7:
      return Lsa{static_cast<std::uint32_t>(rng.below(1 << 20)),
                 rng.next_u64(), static_cast<std::uint8_t>(rng.below(4)),
                 static_cast<std::uint32_t>(rng.below(1 << 20)),
                 static_cast<std::uint32_t>(rng.below(1 << 20))};
    case 8:
      return RingMerge{random_id(rng),
                       static_cast<std::uint32_t>(rng.below(1 << 20)),
                       static_cast<std::uint32_t>(rng.below(1 << 20)),
                       static_cast<std::uint16_t>(rng.below(1 << 16)),
                       static_cast<std::uint8_t>(rng.below(3))};
    case 9:
      return LabelInstall{random_id(rng),
                          static_cast<std::uint32_t>(rng.next_u64()),
                          static_cast<std::uint32_t>(rng.next_u64()),
                          static_cast<std::uint32_t>(rng.below(1 << 20)),
                          static_cast<std::uint8_t>(rng.below(2))};
    default:
      return LabelTeardown{random_id(rng),
                           static_cast<std::uint32_t>(rng.next_u64()),
                           static_cast<std::uint8_t>(rng.below(3))};
  }
}

TEST(ControlMessages, RoundTripEveryType) {
  Rng rng(20260806);
  for (std::size_t which = 0; which < 11; ++which) {
    for (int trial = 0; trial < 40; ++trial) {
      const ControlMessage m = random_message(rng, which);
      const NodeId src = random_id(rng);
      const NodeId dst = random_id(rng);
      const std::uint64_t trace = rng.next_u64();
      const auto frame = encode_control(m, src, dst, trace);
      ASSERT_FALSE(frame.empty()) << "type " << which << " trial " << trial;
      const auto back = decode_control(frame);
      ASSERT_TRUE(back.has_value()) << "type " << which << " trial " << trial;
      EXPECT_EQ(*back, m) << "type " << which << " trial " << trial;
      // The packet framing carries addressing and trace id intact.
      const auto p = Packet::decode(frame);
      ASSERT_TRUE(p.has_value());
      EXPECT_EQ(p->type, type_of(m));
      EXPECT_EQ(p->source, src);
      EXPECT_EQ(p->destination, dst);
      EXPECT_EQ(p->trace_id, trace);
    }
  }
}

TEST(ControlMessages, ControlWireSizeMatchesEncoder) {
  Rng rng(7);
  for (std::size_t which = 0; which < 11; ++which) {
    for (int trial = 0; trial < 25; ++trial) {
      const ControlMessage m = random_message(rng, which);
      const auto frame = encode_control(m, random_id(rng), random_id(rng));
      ASSERT_FALSE(frame.empty());
      EXPECT_EQ(frame.size(), control_wire_size(m))
          << "type " << which << " trial " << trial;
    }
  }
}

TEST(ControlMessages, TruncationAlwaysRejected) {
  Rng rng(77);
  for (std::size_t which = 0; which < 11; ++which) {
    const ControlMessage m = random_message(rng, which);
    const auto frame = encode_control(m, random_id(rng), random_id(rng));
    ASSERT_FALSE(frame.empty());
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      EXPECT_FALSE(decode_control({frame.data(), cut}).has_value())
          << "type " << which << " prefix " << cut;
    }
  }
}

TEST(ControlMessages, SingleBitFlipAlwaysRejected) {
  // CRC-32 detects every single-bit error; a flipped frame must never decode
  // into a silently different message.
  Rng rng(31337);
  for (std::size_t which = 0; which < 11; ++which) {
    const ControlMessage m = random_message(rng, which);
    const auto frame = encode_control(m, random_id(rng), random_id(rng));
    ASSERT_FALSE(frame.empty());
    for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
      auto flipped = frame;
      flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      EXPECT_FALSE(decode_control(flipped).has_value())
          << "type " << which << " bit " << bit;
    }
  }
}

TEST(ControlMessages, InjectorCorruptionAlwaysRejected) {
  // The fault injector's byte-corruption mode flips a short burst of bits;
  // CRC-32 detects all bursts up to 32 bits, so every frame the injector
  // touches must be rejected at the receiver -- corruption becomes loss.
  sim::FaultPlan plan;
  plan.defaults.corrupt = 1.0;
  obs::Registry reg;
  sim::FaultInjector inj(plan, 42, &reg);
  ASSERT_TRUE(inj.corruption_enabled());
  Rng rng(606);
  std::uint64_t corrupted = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const ControlMessage m = random_message(rng, trial);
    auto frame = encode_control(m, random_id(rng), random_id(rng));
    ASSERT_FALSE(frame.empty());
    if (inj.maybe_corrupt_frame(frame)) {
      ++corrupted;
      EXPECT_FALSE(decode_control(frame).has_value()) << "trial " << trial;
    }
  }
  EXPECT_EQ(corrupted, 400u);  // corrupt=1.0 touches every frame
  EXPECT_EQ(inj.corrupted(), 400u);
}

TEST(ControlMessages, CorruptionIsDeterministicPerSeed) {
  sim::FaultPlan plan;
  plan.defaults.corrupt = 0.5;
  obs::Registry reg_a, reg_b;
  sim::FaultInjector a(plan, 99, &reg_a);
  sim::FaultInjector b(plan, 99, &reg_b);
  Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    const auto frame =
        encode_control(random_message(rng, trial), random_id(rng), NodeId{});
    auto fa = frame;
    auto fb = frame;
    ASSERT_EQ(a.maybe_corrupt_frame(fa), b.maybe_corrupt_frame(fb));
    ASSERT_EQ(fa, fb);  // same seed, same bits flipped
  }
  EXPECT_EQ(a.corrupted(), b.corrupted());
  EXPECT_GT(a.corrupted(), 0u);
}

TEST(ControlMessages, OversizedCountsRefuseToEncode) {
  // The explicit-failure contract: an un-encodable message yields an empty
  // vector, never a truncated or zero-byte frame on the wire.
  JoinRequest jr;
  jr.fingers.resize(0x10000);
  EXPECT_TRUE(encode_control(jr, NodeId{}, NodeId{}).empty());
  JoinReply jp;
  jp.migrated_ephemerals.resize(0x10000);
  EXPECT_TRUE(encode_control(jp, NodeId{}, NodeId{}).empty());
  // One under the limit on the count -- but the payload itself would exceed
  // the u16 payload-length field, so it must still refuse.
  JoinReply big;
  big.successors.resize(0xFFFF);
  EXPECT_TRUE(encode_control(big, NodeId{}, NodeId{}).empty());
}

TEST(ControlMessages, DataFramesCarryNoControlCodec) {
  Packet p;
  p.type = PacketType::kData;
  const auto frame = p.encode();
  ASSERT_FALSE(frame.empty());
  ASSERT_TRUE(Packet::decode(frame).has_value());
  EXPECT_FALSE(decode_control(frame).has_value());
}

// -- MTU fragmentation boundaries --------------------------------------------

TEST(ControlMessages, FragmentationExactlyAtMtuIsOnePacket) {
  // Control framing is 54 bytes, so a 1446-byte payload lands exactly on
  // kDefaultMtu.  The JoinRequest equivalent: 102 fixed bytes + 6 per
  // compact finger, so 233 fingers give exactly 1500 bytes.
  Packet p;
  p.payload.assign(kDefaultMtu - 54, 0xA5);
  ASSERT_EQ(p.wire_size(), kDefaultMtu);
  EXPECT_EQ(p.fragments(), 1u);

  JoinRequest jr;
  jr.fingers.resize(233);
  const auto frame = encode_control(jr, NodeId{}, NodeId{});
  ASSERT_EQ(frame.size(), kDefaultMtu);
  const auto back = Packet::decode(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->fragments(), 1u);
}

TEST(ControlMessages, FragmentationOneByteOverMtuIsTwoPackets) {
  Packet p;
  p.payload.assign(kDefaultMtu - 54 + 1, 0xA5);
  ASSERT_EQ(p.wire_size(), kDefaultMtu + 1);
  EXPECT_EQ(p.fragments(), 2u);

  // The next finger over the 233-finger boundary spills into a second
  // packet: 234 fingers = 1506 bytes.
  JoinRequest jr;
  jr.fingers.resize(234);
  const auto frame = encode_control(jr, NodeId{}, NodeId{});
  ASSERT_EQ(frame.size(), kDefaultMtu + 6);
  const auto back = Packet::decode(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->fragments(), 2u);
}

// -- section 6.3 regression ---------------------------------------------------

TEST(ControlMessages, Section63JoinBytesAndPackets) {
  // "with 256 fingers the message size increases to 1638 bytes" -- measured
  // from the real encoder, not recomputed from a formula.
  Rng rng(63);
  JoinRequest jr;
  jr.nonce = rng.next_u64();
  jr.gateway = 7;
  jr.public_key = random_key(rng);
  for (std::uint32_t i = 0; i < 256; ++i) {
    jr.fingers.push_back(CompactFinger{
        static_cast<std::uint32_t>(rng.next_u64()),
        static_cast<std::uint16_t>(rng.below(1 << 16))});
  }
  const auto frame = encode_control(jr, random_id(rng), random_id(rng));
  ASSERT_EQ(frame.size(), 1638u);
  EXPECT_EQ(control_wire_size(jr), 1638u);
  const auto p = Packet::decode(frame);
  ASSERT_TRUE(p.has_value());
  const std::size_t join_packets = p->fragments();
  EXPECT_EQ(join_packets, 2u);

  // "a 256-finger single-homed join requires 258 IP packets": one locate
  // probe per finger (each under the MTU) plus the two-fragment join.
  const auto probe = encode_control(Locate{random_id(rng), 2},
                                    NodeId{}, NodeId{});
  ASSERT_FALSE(probe.empty());
  const auto probe_pkt = Packet::decode(probe);
  ASSERT_TRUE(probe_pkt.has_value());
  EXPECT_EQ(probe_pkt->fragments(), 1u);
  const std::size_t total = 256 * probe_pkt->fragments() + join_packets;
  EXPECT_EQ(total, 258u);
}

}  // namespace
}  // namespace rofl::wire::msg
