// router.hpp -- a ROFL hosting router (sections 2.2, 3).
//
// Each router owns: its self-certified identity (held by a "default" virtual
// node whose successors double as default routes), a virtual node per
// resident host ID, backpointer state for ephemeral hosts, and a bounded
// pointer cache.  The router keeps a sorted index of every ID it can make
// greedy progress toward (resident IDs plus all their successors); Algorithm
// 2's VN.best_match is a lookup in that index.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>

#include "rofl/pointer_cache.hpp"
#include "rofl/types.hpp"

namespace rofl::intra {

/// A candidate next pointer for greedy forwarding.
struct Candidate {
  NodeId id;                          // the ID we'd be making progress toward
  NodeIndex host = graph::kInvalidNode;  // router currently hosting it
  bool resident = false;              // true if hosted here
};

class Router {
 public:
  Router(NodeIndex index, Identity identity, std::size_t cache_capacity);

  [[nodiscard]] NodeIndex index() const { return index_; }
  [[nodiscard]] NodeId router_id() const { return identity_.id(); }
  [[nodiscard]] const Identity& identity() const { return identity_; }

  // -- virtual nodes --------------------------------------------------------
  /// Registers a vnode (Algorithm 1, register_virtual_node).  Returns the
  /// stored node.  Fails (nullptr) if the ID is already resident.
  VirtualNode* add_vnode(VirtualNode vn);
  void remove_vnode(const NodeId& id);
  [[nodiscard]] VirtualNode* find_vnode(const NodeId& id);
  [[nodiscard]] const VirtualNode* find_vnode(const NodeId& id) const;
  [[nodiscard]] const std::map<NodeId, VirtualNode>& vnodes() const {
    return vnodes_;
  }
  [[nodiscard]] std::size_t resident_count() const { return vnodes_.size(); }

  /// Re-indexes a vnode's successor set after the caller mutated it.
  void reindex_vnode(const NodeId& id);

  // -- ephemeral backpointers (section 2.2, "Ephemeral hosts") --------------
  /// Called on the *predecessor's* router: remembers that ephemeral `id`
  /// currently hangs off `gateway`.
  void add_ephemeral_backpointer(const NodeId& id, NodeIndex gateway);
  void remove_ephemeral_backpointer(const NodeId& id);
  [[nodiscard]] std::optional<NodeIndex> ephemeral_gateway(const NodeId& id) const;
  [[nodiscard]] const std::map<NodeId, NodeIndex>& ephemeral_backpointers() const {
    return ephemerals_;
  }

  // -- Algorithm 2 ----------------------------------------------------------
  /// VN.best_match: the closest ID to `dest` (clockwise, not past it) among
  /// resident IDs and their successors.  nullopt when the router has no
  /// vnode state at all.
  [[nodiscard]] std::optional<Candidate> vn_best_match(const NodeId& dest) const;

  /// True if `dest` is a resident (non-default) ID or the router's own ID.
  [[nodiscard]] bool hosts(const NodeId& dest) const;

  /// Finds the resident vnode that is `id`'s predecessor, i.e. a vnode v
  /// with id in (v.id, v.successor0.id].  Used to terminate join routing.
  [[nodiscard]] VirtualNode* predecessor_vnode_of(const NodeId& id);

  PointerCache& cache() { return cache_; }
  const PointerCache& cache() const { return cache_; }

  /// Total routing-table entries held (resident vnode pointers + cache):
  /// the figure 6c memory metric.
  [[nodiscard]] std::size_t state_entries() const;

  // -- load accounting (figure 6b) ------------------------------------------
  void count_traversal() { ++traversals_; }
  [[nodiscard]] std::uint64_t traversals() const { return traversals_; }
  void reset_traversals() { traversals_ = 0; }

 private:
  void index_ptr(const NodeId& id, NodeIndex host, bool resident);

  NodeIndex index_;
  Identity identity_;
  std::map<NodeId, VirtualNode> vnodes_;
  std::map<NodeId, NodeIndex> ephemerals_;
  PointerCache cache_;
  std::uint64_t traversals_ = 0;

  // Greedy index over {resident IDs} U {their successors}.  Values carry a
  // refcount because several vnodes can share a successor ID.
  struct IndexedPtr {
    NodeIndex host;
    bool resident;
    int refs;
  };
  std::map<NodeId, IndexedPtr> known_;
};

}  // namespace rofl::intra
