// fig6_load_balance -- regenerates Figure 6b: fraction of messages
// traversing each router under ROFL vs shortest-path (OSPF) routing.
//
// Method as in the paper: route the same random traffic matrix under both
// systems; rank routers by their OSPF load; report, for sampled ranks, the
// load fraction at that router under OSPF and under ROFL.  The claim being
// checked: "although load varies across routers, the difference from OSPF
// is fairly slight", i.e. ROFL does not create significant new hot-spots.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "baselines/ospf_routing.hpp"
#include "bench_common.hpp"
#include "rofl/network.hpp"
#include "util/table.hpp"

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  const std::size_t ids = bench::full_scale() ? 10'000 : 3'000;
  const std::size_t packets = bench::full_scale() ? 50'000 : 15'000;

  Rng trng(bench::kSeed);
  const graph::IspTopology topo =
      graph::make_rocketfuel_like(graph::RocketfuelAs::kAs1239, trng);
  intra::Config cfg;
  cfg.cache_capacity = 4096;
  intra::Network net(&topo, cfg, bench::kSeed + 3);
  baselines::OspfRouting ospf(&topo);

  std::vector<NodeId> joined;
  for (std::size_t i = 0; i < ids; ++i) {
    const auto gw =
        static_cast<graph::NodeIndex>(net.rng().index(net.router_count()));
    const Identity ident = Identity::generate(net.rng());
    if (net.join_host(ident, gw).ok) {
      joined.push_back(ident.id());
      ospf.attach_host(ident.id(), gw);
    }
  }

  net.reset_traffic_counters();
  for (std::size_t i = 0; i < packets; ++i) {
    const NodeId dest = joined[net.rng().index(joined.size())];
    const auto src =
        static_cast<graph::NodeIndex>(net.rng().index(net.router_count()));
    (void)net.route(src, dest);
    (void)ospf.route(src, dest);
  }

  // Collect per-router load fractions.
  const std::size_t n = net.router_count();
  std::vector<double> rofl_load(n), ospf_load(n);
  double rofl_total = 0.0, ospf_total = 0.0;
  for (graph::NodeIndex r = 0; r < n; ++r) {
    rofl_load[r] = static_cast<double>(net.router(r).traversals());
    ospf_load[r] = static_cast<double>(ospf.traversals()[r]);
    rofl_total += rofl_load[r];
    ospf_total += ospf_load[r];
  }
  for (graph::NodeIndex r = 0; r < n; ++r) {
    rofl_load[r] /= rofl_total;
    ospf_load[r] /= ospf_total;
  }

  // Rank by OSPF load (the x-axis of the figure).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ospf_load[a] > ospf_load[b];
  });

  print_banner(std::cout,
               "Figure 6b: per-router load fraction, ranked by OSPF load "
               "(AS1239)");
  Table t({"router rank", "OSPF fraction", "ROFL fraction"});
  for (std::size_t rank = 0; rank < n;
       rank += std::max<std::size_t>(1, n / 24)) {
    t.add_row({static_cast<std::int64_t>(rank), ospf_load[order[rank]],
               rofl_load[order[rank]]});
  }
  t.print(std::cout);

  const double max_rofl = *std::max_element(rofl_load.begin(), rofl_load.end());
  const double max_ospf = *std::max_element(ospf_load.begin(), ospf_load.end());
  std::cout << "\nhottest router: OSPF " << max_ospf << " vs ROFL " << max_rofl
            << " (ratio " << max_rofl / max_ospf << ")\n";
  std::cout << "Paper reference: the difference from OSPF is fairly slight; "
               "ROFL introduces no significant new hot-spots.\n";
  return 0;
}
