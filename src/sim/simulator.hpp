// simulator.hpp -- discrete-event engine driving the protocol simulations.
//
// All ROFL protocol activity (joins, teardowns, repairs, data forwarding) is
// executed as events on a virtual clock measured in milliseconds.  Message
// transmissions are accounted per category so each bench can report exactly
// the packet counts the paper's figures plot.  Event ordering is
// deterministic: ties on the timestamp are broken by insertion sequence, so
// a fixed seed reproduces a run exactly.
//
// Hot-path layout: event callables live in a slab of recycled slots, with
// captures up to kActionBufferBytes embedded inline (util::InlineFunction);
// the 4-ary heap orders 24-byte {when, seq, slot} records only.  Scheduling
// and dispatching an event therefore performs no heap allocation in the
// common case, and heap sifts move small PODs instead of payloads.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "sim/event_queue.hpp"
#include "util/inline_function.hpp"

namespace rofl::obs {
class Timeline;
}  // namespace rofl::obs

namespace rofl::sim {

class EngineProfiler;

/// Categories of network-level messages, for the paper's overhead metrics.
enum class MsgCategory : std::uint8_t {
  kJoin,        // join requests/replies and pointer setup (figures 5a/5b, 8a)
  kTeardown,    // pointer teardown on host/router failure
  kRepair,      // partition repair / zero-ID convergence traffic (figure 7)
  kLinkState,   // OSPF-like substrate flooding
  kData,        // data packets
  kControl,     // other control (probes, finger maintenance, capability setup)
};
inline constexpr std::size_t kMsgCategoryCount = 6;

[[nodiscard]] std::string_view to_string(MsgCategory c);

/// Per-category message counters.  A "message" here is one network-level
/// transmission (one hop), matching how the paper counts join overhead in
/// packets.
///
/// Since the observability refactor this is a thin client of the
/// obs::Registry owned by the enclosing Simulator: each category is a named
/// registry counter ("msgs.join", ...), so metric exports and the legacy
/// add/get/total/reset API read the same cells.  add() stays one indexed
/// increment -- the ids are registered once at construction.
class Counters {
 public:
  explicit Counters(obs::Registry* registry);

  void add(MsgCategory c, std::uint64_t n = 1) {
    registry_->add(ids_[static_cast<std::size_t>(c)], n);
  }
  [[nodiscard]] std::uint64_t get(MsgCategory c) const {
    return registry_->counter_value(ids_[static_cast<std::size_t>(c)]);
  }
  /// Wire bytes per category ("bytes.join", ...), parallel to the packet
  /// counts above.  Frames come out of the real wire::Packet encoder, so
  /// these are the section 6.3 byte figures, not estimates.
  void add_bytes(MsgCategory c, std::uint64_t n) {
    registry_->add(byte_ids_[static_cast<std::size_t>(c)], n);
  }
  [[nodiscard]] std::uint64_t bytes(MsgCategory c) const {
    return registry_->counter_value(byte_ids_[static_cast<std::size_t>(c)]);
  }
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  void reset();

 private:
  obs::Registry* registry_;
  std::array<obs::MetricId, kMsgCategoryCount> ids_{};
  std::array<obs::MetricId, kMsgCategoryCount> byte_ids_{};
};

/// Captures up to this size are stored inline in the event slab; larger
/// closures fall back to one heap cell each.
inline constexpr std::size_t kActionBufferBytes = 48;

class Simulator {
 public:
  using Action = util::InlineFunction<void(), kActionBufferBytes>;

  Simulator() = default;
  // Counters (and any layer-held MetricId user) points into this simulator's
  // registry, so the simulator must stay put for its lifetime.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  Simulator(Simulator&&) = delete;
  Simulator& operator=(Simulator&&) = delete;

  [[nodiscard]] double now_ms() const { return now_ms_; }

  /// Schedules `action` to run `delay_ms` from now (>= 0).
  void schedule_in(double delay_ms, Action action);
  void schedule_at(double when_ms, Action action);

  /// Executes the next pending event; returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains (or max_events is hit); returns the number
  /// of events executed.
  std::size_t run(std::size_t max_events =
                      std::numeric_limits<std::size_t>::max());

  /// Runs all events scheduled at or before `t_ms`.
  std::size_t run_until(double t_ms);

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }

  /// The simulation-wide metrics registry.  The Counters above are backed by
  /// it; protocol layers register their own counters/gauges/histograms here.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

  /// Installs (or removes, with nullptr) a timeline sink.  The tracer is not
  /// owned and must outlive its installation.  With no sink installed every
  /// instrumentation site reduces to one null-pointer check.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

  /// Installs (or removes) a timeline sampler over this simulator's
  /// registry.  The engine advances it to each event's timestamp *before*
  /// dispatch, so window membership is decided purely on the sim clock; the
  /// caller flushes it at end of run (Timeline::flush(now_ms())).  Not owned.
  void set_timeline(obs::Timeline* timeline) { timeline_ = timeline; }
  [[nodiscard]] obs::Timeline* timeline() const { return timeline_; }

  /// Installs (or removes) a wall-clock self-profiler (shard 0 of a
  /// 1-shard EngineProfiler).  Wall time never enters the registry or the
  /// timeline -- see profiler.hpp.  Not owned.
  void set_profiler(EngineProfiler* profiler) { profiler_ = profiler; }

  /// Events dispatched over this simulator's lifetime (the "sim.events"
  /// registry counter).
  [[nodiscard]] std::uint64_t events_dispatched() const {
    return metrics_.counter_value(events_id_);
  }

 private:
  struct HeapItem {
    double when;
    std::uint64_t seq;
    std::uint32_t slot;  // payload position in slab_
  };

  double now_ms_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventQueue<HeapItem> queue_;
  std::vector<Action> slab_;              // callables; slots are recycled
  std::vector<std::uint32_t> free_slots_;
  obs::Registry metrics_;                  // must precede counters_
  obs::MetricId events_id_ = metrics_.counter("sim.events");
  Counters counters_{&metrics_};
  obs::Tracer* tracer_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
  EngineProfiler* profiler_ = nullptr;
};

}  // namespace rofl::sim
