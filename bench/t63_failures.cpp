// t63_failures -- regenerates the "Failures" experiment of section 6.3:
// fail randomly selected stub ASes and measure (a) the fraction of Internet
// paths affected and (b) the repair traffic relative to the number of IDs
// the failed stub hosted.
//
// Paper reference: on average 99.998% of paths were unaffected by a stub
// failure, and repair took ~4950 messages, "roughly the number of
// identifiers hosted in the failed stub AS".
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "interdomain/inter_network.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  const std::size_t ids = bench::full_scale() ? 6'000 : 2'000;
  const std::size_t path_sample = bench::full_scale() ? 3'000 : 1'200;
  const std::size_t failures = bench::full_scale() ? 30 : 12;

  Rng trng(bench::kSeed);
  const graph::AsTopology topo = bench::make_inter_topology(trng);
  inter::InterNetwork net(&topo, inter::InterConfig{}, bench::kSeed + 19);
  for (std::size_t i = 0; i < ids; ++i) {
    (void)net.join_random_host(inter::JoinStrategy::kRecursiveMultihomed);
  }
  std::vector<NodeId> joined;
  for (const auto& [id, home] : net.directory()) joined.push_back(id);

  // Pre-compute a sample of live paths (traces) between random pairs.
  struct PathSample {
    graph::AsIndex src;
    NodeId dest;
    std::vector<graph::AsIndex> trace;
  };
  std::vector<PathSample> paths;
  while (paths.size() < path_sample) {
    const NodeId dest = joined[net.rng().index(joined.size())];
    const NodeId src_id = joined[net.rng().index(joined.size())];
    const auto src = net.home_of(src_id);
    if (!src.has_value()) continue;
    PathSample ps;
    ps.src = *src;
    ps.dest = dest;
    const auto rs = net.route(*src, dest, &ps.trace);
    if (rs.delivered) paths.push_back(std::move(ps));
  }

  // Candidate victims: stub ASes that host at least one ID.
  std::vector<graph::AsIndex> stubs;
  for (graph::AsIndex a = 0; a < topo.as_count(); ++a) {
    if (net.base_topology().is_stub(a) && net.base_topology().host_count(a) > 0) {
      stubs.push_back(a);
    }
  }
  net.rng().shuffle(stubs);

  print_banner(std::cout, "Section 6.3 failures: random stub-AS failures");
  Table t({"failed AS", "IDs lost", "repair msgs", "msgs/ID",
           "paths affected [%]"});
  SampleSet unaffected_pct;
  SampleSet msgs_per_id;
  std::size_t done = 0;
  for (const graph::AsIndex victim : stubs) {
    if (done >= failures) break;
    // Count pre-failure paths that traversed the victim.
    std::size_t affected = 0;
    for (const auto& ps : paths) {
      if (ps.src == victim) continue;
      if (std::find(ps.trace.begin(), ps.trace.end(), victim) !=
          ps.trace.end()) {
        ++affected;
      }
    }
    const auto rs = net.fail_as(victim);
    if (rs.ids_lost == 0) {
      (void)net.restore_as(victim);
      continue;
    }
    ++done;
    const double affected_pct =
        100.0 * static_cast<double>(affected) /
        static_cast<double>(paths.size());
    unaffected_pct.add(100.0 - affected_pct);
    const double per_id = static_cast<double>(rs.messages) /
                          static_cast<double>(rs.ids_lost);
    msgs_per_id.add(per_id);
    t.add_row({static_cast<std::int64_t>(victim),
               static_cast<std::int64_t>(rs.ids_lost),
               static_cast<std::int64_t>(rs.messages), per_id, affected_pct});
    (void)net.restore_as(victim);
  }
  t.print(std::cout);
  std::cout << "\nmean unaffected paths: " << unaffected_pct.mean()
            << "% (paper: 99.998%)\n";
  std::cout << "mean repair messages per hosted ID: " << msgs_per_id.mean()
            << " (paper: repair ~= number of identifiers hosted, i.e. ~a few "
               "messages per ID across its levels)\n";
  std::string err;
  const bool ok = net.verify_rings(&err);
  std::cout << "rings consistent after all fail/restore cycles: "
            << (ok ? "yes" : ("NO: " + err)) << "\n";
  return ok ? 0 : 1;
}
