// test_net.cpp -- transport pump and live-mesh protocol tests.
//
// Covers the src/net stack bottom-up: pump header codec, the dedup window,
// loopback transport delivery, a real-socket UDP transport pair on ephemeral
// ports, and full mesh runs -- a deterministic loopback storm whose byte
// accounting must reproduce the simulator's section 6.3 figure (1638 bytes
// per 256-finger JoinRequest), a two-router UDP mesh converging under heavy
// impairment, and a negative audit check proving the auditor actually sees
// defects.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "net/loopback.hpp"
#include "net/mesh.hpp"
#include "net/router.hpp"
#include "net/transport.hpp"
#include "net/udp.hpp"
#include "wire/messages.hpp"

namespace rofl::net {
namespace {

TEST(PumpHeader, RoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  const auto frame =
      encode_pump_frame(7, PumpOp::kStateChunk, 0x1122334455667788ull,
                        0xDEADBEEF, payload);
  ASSERT_EQ(frame.size(), kPumpHeaderBytes + payload.size());
  const auto h = decode_pump_header(frame);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->src, 7u);
  EXPECT_EQ(h->op, PumpOp::kStateChunk);
  EXPECT_EQ(h->seq, 0x1122334455667788ull);
  EXPECT_EQ(h->arg, 0xDEADBEEFu);
}

TEST(PumpHeader, RejectsShortAndBadMagic) {
  const auto frame = encode_pump_frame(1, PumpOp::kData, 1, 0, {});
  for (std::size_t cut = 0; cut < kPumpHeaderBytes; ++cut) {
    EXPECT_FALSE(decode_pump_header(
                     std::span(frame.data(), cut))
                     .has_value())
        << "prefix " << cut;
  }
  auto bad = frame;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(decode_pump_header(bad).has_value());
  auto bad_op = frame;
  bad_op[2] = 200;  // past kStateAck
  EXPECT_FALSE(decode_pump_header(bad_op).has_value());
}

TEST(PumpHeader, RejectsEveryCorruptedHeaderByte) {
  // The dedup-poisoning regression: a bit flip in the big-endian seq field
  // used to advance the receiver's window by up to ~2^56 and permanently
  // deafen the peer link.  The header checksum must catch a flip in *any*
  // header byte (including the checksum bytes themselves) so corruption
  // degrades to loss, never to a poisoned window.
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  const auto frame =
      encode_pump_frame(3, PumpOp::kData, 0x00000000000000FFull, 0, payload);
  for (std::size_t at = 0; at < kPumpHeaderBytes; ++at) {
    for (const std::uint8_t flip : {0x01, 0x80, 0xFF}) {
      auto bad = frame;
      bad[at] ^= flip;
      EXPECT_FALSE(decode_pump_header(bad).has_value())
          << "byte " << at << " flip " << int(flip);
    }
  }
  ASSERT_TRUE(decode_pump_header(frame).has_value());  // pristine still ok
}

TEST(DedupWindow, SuppressesDuplicatesAcceptsFresh) {
  DedupWindow w;
  EXPECT_TRUE(w.accept(1));
  EXPECT_FALSE(w.accept(1));
  EXPECT_TRUE(w.accept(2));
  EXPECT_TRUE(w.accept(5));  // gap: 3, 4 still acceptable later
  EXPECT_TRUE(w.accept(3));
  EXPECT_TRUE(w.accept(4));
  EXPECT_FALSE(w.accept(3));
  // Far jump slides the window; anything older than 1024 behind is a dup.
  EXPECT_TRUE(w.accept(5000));
  EXPECT_FALSE(w.accept(5000));
  EXPECT_FALSE(w.accept(3000));  // outside window: treated as duplicate
  EXPECT_TRUE(w.accept(4999));   // inside window, never seen
}

TEST(DedupWindow, SlidingClearsOldSlots) {
  DedupWindow w;
  for (std::uint64_t s = 1; s <= 3000; ++s) {
    EXPECT_TRUE(w.accept(s)) << s;
  }
  for (std::uint64_t s = 2990; s <= 3000; ++s) {
    EXPECT_FALSE(w.accept(s)) << s;
  }
}

TEST(Loopback, DeliversAndDedups) {
  LoopbackHub hub;
  LoopbackTransport a(1, &hub);
  LoopbackTransport b(2, &hub);
  const std::vector<std::uint8_t> payload = {9, 9, 9};
  a.send(2, PumpOp::kData, 0, payload, 0.0);
  RxFrame rx;
  ASSERT_TRUE(b.poll(rx));
  EXPECT_EQ(rx.src, 1u);
  EXPECT_EQ(rx.frame, payload);
  EXPECT_FALSE(b.poll(rx));
  EXPECT_EQ(b.stats().rx_frames, 1u);

  // A duplicated transmission (same datagram replayed) is suppressed.
  hub.deliver(2, encode_pump_frame(1, PumpOp::kData, 1, 0, payload));
  EXPECT_FALSE(b.poll(rx));
  EXPECT_EQ(b.stats().dedup_dropped, 1u);
}

TEST(Loopback, ImpairmentDropsAndDuplicates) {
  LoopbackHub hub;
  LoopbackTransport a(1, &hub);
  LoopbackTransport b(2, &hub);
  obs::Registry reg;
  sim::FaultPlan plan;
  plan.defaults.loss = 0.5;
  plan.defaults.duplicate = 0.25;
  sim::FaultInjector inj(plan, /*seed=*/42, &reg);
  a.set_fault_injector(&inj);

  const std::vector<std::uint8_t> payload = {1};
  constexpr int kSends = 400;
  for (int i = 0; i < kSends; ++i) a.send(2, PumpOp::kData, 0, payload, 0.0);
  int delivered = 0;
  RxFrame rx;
  while (b.poll(rx)) ++delivered;
  // Half dropped; duplicates of surviving transmissions carry fresh pump
  // seqs only when the injector duplicates the *logical* send, so the pump
  // dedup kills the extra copies (same seq).  Delivered ~= kSends * P(keep).
  EXPECT_GT(delivered, kSends / 4);
  EXPECT_LT(delivered, (3 * kSends) / 4);
  EXPECT_GT(inj.dropped(), 0u);
  EXPECT_EQ(b.stats().dedup_dropped, inj.duplicated());
}

TEST(Udp, PairExchangesFramesOnEphemeralPorts) {
  UdpTransport a(1, /*port=*/0);
  UdpTransport b(2, /*port=*/0);
  ASSERT_NE(a.port(), 0);
  ASSERT_NE(b.port(), 0);
  a.set_peer(2, b.port());
  b.set_peer(1, a.port());

  const std::vector<std::uint8_t> payload = {5, 6, 7, 8};
  a.send(2, PumpOp::kData, 77, payload, UdpTransport::wall_ms());
  RxFrame rx;
  bool got = false;
  for (int spin = 0; spin < 200 && !got; ++spin) {
    got = b.poll(rx);
    if (!got) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(got) << "datagram never arrived on loopback UDP";
  EXPECT_EQ(rx.src, 1u);
  EXPECT_EQ(rx.arg, 77u);
  EXPECT_EQ(rx.frame, payload);

  b.send(1, PumpOp::kDone, 3, {}, UdpTransport::wall_ms());
  got = false;
  for (int spin = 0; spin < 200 && !got; ++spin) {
    got = a.poll(rx);
    if (!got) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(got);
  EXPECT_EQ(rx.op, PumpOp::kDone);
  EXPECT_EQ(rx.arg, 3u);
}

TEST(Mesh, LoopbackStormConvergesWithExactRing) {
  MeshConfig cfg;
  cfg.backend = MeshBackend::kLoopback;
  cfg.routers = 4;
  cfg.hosts = 120;
  cfg.fingers = 8;  // keep frames small; byte parity has its own test
  cfg.seed = 7;
  MeshResult r = run_mesh(cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.joins_completed, cfg.hosts - 1);
  EXPECT_TRUE(r.audit.ok()) << (r.audit.errors.empty()
                                    ? "population mismatch"
                                    : r.audit.errors.front());
}

TEST(Mesh, LoopbackByteAccountingMatchesSection63) {
  // Zero impairment, 256 compact fingers: every JoinRequest frame must cost
  // exactly 54 + 48 + 256*6 = 1638 bytes -- the simulator's (and the
  // paper's) section 6.3 figure, now measured on the live path.
  MeshConfig cfg;
  cfg.backend = MeshBackend::kLoopback;
  cfg.routers = 3;
  cfg.hosts = 60;
  cfg.fingers = 256;
  cfg.seed = 11;
  MeshResult r = run_mesh(cfg);
  ASSERT_TRUE(r.converged);
  ASSERT_TRUE(r.audit.ok());

  wire::msg::JoinRequest jr;
  jr.fingers.resize(256);
  const std::size_t expect = wire::msg::control_wire_size(jr);
  EXPECT_EQ(expect, 1638u);

  obs::Registry& m = r.metrics;
  const std::uint64_t msgs = m.counter_value(m.counter("net.msgs.join_request"));
  const std::uint64_t bytes =
      m.counter_value(m.counter("net.bytes.join_request"));
  ASSERT_GT(msgs, 0u);
  EXPECT_EQ(bytes, msgs * expect);
  // Loopback is lossless: one JoinRequest per join (no retransmissions
  // unless a redirect re-walked; redirects resend, so msgs >= joins).
  EXPECT_GE(msgs, r.joins_completed);
}

TEST(Mesh, LoopbackDeterministicAcrossRuns) {
  MeshConfig cfg;
  cfg.backend = MeshBackend::kLoopback;
  cfg.routers = 3;
  cfg.hosts = 50;
  cfg.fingers = 4;
  cfg.seed = 23;
  MeshResult a = run_mesh(cfg);
  MeshResult b = run_mesh(cfg);
  EXPECT_EQ(a.metrics.to_json(2), b.metrics.to_json(2));
  EXPECT_EQ(a.elapsed_ms, b.elapsed_ms);
}

TEST(Mesh, UdpMeshConvergesUnderHeavyImpairment) {
  MeshConfig cfg;
  cfg.backend = MeshBackend::kUdp;
  cfg.routers = 2;
  cfg.hosts = 40;
  cfg.fingers = 8;
  cfg.seed = 5;
  cfg.conditions.loss = 0.25;
  cfg.conditions.duplicate = 0.10;
  cfg.conditions.corrupt = 0.05;
  cfg.conditions.jitter_ms = 2.0;
  cfg.deadline_ms = 60'000.0;
  MeshResult r = run_mesh(cfg);
  EXPECT_TRUE(r.converged) << "did not converge under impairment";
  EXPECT_EQ(r.joins_completed, cfg.hosts - 1);
  EXPECT_TRUE(r.audit.ok()) << (r.audit.errors.empty()
                                    ? "population mismatch"
                                    : r.audit.errors.front());
  // The impairment layer visibly acted and the retry machinery recovered.
  obs::Registry& m = r.metrics;
  EXPECT_GT(m.counter_value(m.counter("faults.dropped")), 0u);
  EXPECT_GT(m.counter_value(m.counter("net.retrans")), 0u);
}

TEST(Mesh, LoopbackLookupsAllHit) {
  MeshConfig cfg;
  cfg.backend = MeshBackend::kLoopback;
  cfg.routers = 3;
  cfg.hosts = 60;
  cfg.fingers = 8;
  cfg.seed = 29;
  cfg.lookups = 24;
  MeshResult r = run_mesh(cfg);
  ASSERT_TRUE(r.converged);
  ASSERT_TRUE(r.audit.ok());
  // Every probe targets a joined id over an exact ring: all must resolve,
  // and resolve correctly.
  EXPECT_EQ(r.lookups_completed, cfg.lookups);
  EXPECT_EQ(r.lookups_hit, r.lookups_completed);
  obs::Registry& m = r.metrics;
  EXPECT_EQ(m.counter_value(m.counter("net.lookups.completed")), cfg.lookups);
  EXPECT_EQ(m.counter_value(m.counter("net.lookups.hit")), cfg.lookups);
  // Lookup phase determinism rides the same virtual clock as the storm.
  MeshResult again = run_mesh(cfg);
  EXPECT_EQ(r.metrics.to_json(2), again.metrics.to_json(2));
}

TEST(Mesh, LoopbackCleanLeavePassesAudit) {
  MeshConfig cfg;
  cfg.backend = MeshBackend::kLoopback;
  cfg.routers = 4;
  cfg.hosts = 80;
  cfg.fingers = 8;
  cfg.seed = 31;
  cfg.leave_router = 2;
  MeshResult r = run_mesh(cfg);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(r.leave_completed);
  // The audit expects only survivors -- exact ring over the remaining ids,
  // with the departed router's vnodes gone and the boundaries repaired.
  EXPECT_TRUE(r.audit.ok()) << (r.audit.errors.empty()
                                    ? "population mismatch"
                                    : r.audit.errors.front());
  obs::Registry& m = r.metrics;
  EXPECT_GT(m.counter_value(m.counter("net.leave.relinks")), 0u);
}

TEST(Mesh, UdpLookupsAndLeaveUnderImpairment) {
  MeshConfig cfg;
  cfg.backend = MeshBackend::kUdp;
  cfg.routers = 2;
  cfg.hosts = 30;
  cfg.fingers = 8;
  cfg.seed = 37;
  cfg.lookups = 8;
  cfg.leave_router = 1;
  cfg.conditions.loss = 0.10;
  cfg.conditions.duplicate = 0.05;
  cfg.deadline_ms = 60'000.0;
  MeshResult r = run_mesh(cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.lookups_completed, cfg.lookups);
  EXPECT_EQ(r.lookups_hit, cfg.lookups);
  EXPECT_TRUE(r.leave_completed);
  EXPECT_TRUE(r.audit.ok()) << (r.audit.errors.empty()
                                    ? "population mismatch"
                                    : r.audit.errors.front());
}

TEST(Mesh, TransportCountersSurfaceInMergedRegistry) {
  // Satellite contract: dedup drops, ring overflows, and throttle waits are
  // first-class net.* counters, sampled live every step -- a duplicated
  // impaired run must show dedup activity in the merged registry.
  MeshConfig cfg;
  cfg.backend = MeshBackend::kUdp;
  cfg.routers = 2;
  cfg.hosts = 30;
  cfg.fingers = 8;
  cfg.seed = 41;
  cfg.conditions.duplicate = 0.30;
  cfg.deadline_ms = 60'000.0;
  MeshResult r = run_mesh(cfg);
  ASSERT_TRUE(r.converged);
  obs::Registry& m = r.metrics;
  EXPECT_GT(m.counter_value(m.counter("net.rx.dedup_dropped")), 0u);
  EXPECT_GT(m.counter_value(m.counter("net.tx.frames")), 0u);
  EXPECT_GT(m.counter_value(m.counter("net.rx.frames")), 0u);
  EXPECT_EQ(m.counter_value(m.counter("net.rx.ring_dropped")), 0u);
}

TEST(Mesh, AuditDetectsDefects) {
  // Hand-build a broken ring: two nodes whose successor pointers are fine
  // but one predecessor is wrong, plus a population shortfall.
  const auto ids = make_identities(3, 3);
  std::vector<std::pair<NodeId, RouterId>> expected;
  for (std::uint32_t h = 0; h < 3; ++h) expected.emplace_back(ids[h].id(), 0);
  std::sort(expected.begin(), expected.end());

  std::vector<std::pair<RouterId, Vnode>> collected;
  for (std::size_t i = 0; i < 2; ++i) {  // third node missing
    Vnode v;
    v.id = expected[i].first;
    v.succ = expected[(i + 1) % 3].first;
    v.succ_owner = 0;
    v.pred = v.id;  // wrong on purpose
    v.pred_owner = 0;
    collected.emplace_back(0, v);
  }
  const MeshAuditReport rep = audit_ring(collected, expected);
  EXPECT_FALSE(rep.ok());
  EXPECT_GT(rep.error_count, 0u);
  EXPECT_EQ(rep.population, 2u);
  EXPECT_EQ(rep.expected, 3u);
}

}  // namespace
}  // namespace rofl::net
