// ablation_design -- quantifies the design choices DESIGN.md calls out,
// beyond what the paper's figures show directly:
//
//   A1. successor-group depth k: join cost vs resilience to simultaneous
//       adjacent failures (section 2.2 motivates successor-groups but never
//       sizes them);
//   A2. control-path caching on/off: the entire stretch benefit of figure 6a
//       comes from it;
//   A3. redundant-lookup elimination on/off: the section-6.3 optimization
//       that keeps multihomed joins near single-homed cost;
//   A4. finger digit width b: table geometry vs stretch at a fixed finger
//       budget.
#include <iostream>

#include "bench_common.hpp"
#include "interdomain/inter_network.hpp"
#include "rofl/network.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rofl {
namespace {

graph::IspTopology isp(Rng& rng) {
  graph::IspParams p;
  p.name = "ablation";
  p.router_count = 120;
  p.pop_count = 12;
  return graph::make_isp_topology(p, rng);
}

void ablation_successor_group(std::ostream& os) {
  print_banner(os, "A1: successor-group depth k -- join cost vs resilience");
  Table t({"k", "mean join [packets]", "ring ok after 3-deep cut",
           "repair msgs after cut"});
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    Rng trng(bench::kSeed);
    const graph::IspTopology topo = isp(trng);
    intra::Config cfg;
    cfg.successor_group = k;
    intra::Network net(&topo, cfg, bench::kSeed + k);
    SampleSet join_cost;
    std::vector<NodeId> ids;
    for (int i = 0; i < 400; ++i) {
      Identity ident = Identity::generate(net.rng());
      const auto gw = static_cast<graph::NodeIndex>(
          net.rng().index(net.router_count()));
      const auto js = net.join_host(ident, gw);
      if (!js.ok) continue;
      join_cost.add(static_cast<double>(js.messages));
      ids.push_back(ident.id());
    }
    std::sort(ids.begin(), ids.end());
    // Kill three consecutive ring members without intermediate repair.
    for (int i = 100; i < 103; ++i) {
      (void)net.fail_host(ids[static_cast<std::size_t>(i)]);
    }
    const bool ok = net.verify_rings();
    const intra::RepairStats rs = net.repair_partitions();
    t.add_row({static_cast<std::int64_t>(k), join_cost.mean(),
               std::string(ok ? "yes" : "no"),
               static_cast<std::int64_t>(rs.messages)});
  }
  t.print(os);
  os << "Deeper groups pay per-join for teardown-free survival of deeper "
        "simultaneous cuts.\n";
}

void ablation_control_path_caching(std::ostream& os) {
  print_banner(os, "A2: control-path caching on/off -- stretch impact");
  Table t({"caching", "mean stretch", "mean cache entries/router"});
  for (const bool on : {true, false}) {
    Rng trng(bench::kSeed);
    const graph::IspTopology topo = isp(trng);
    intra::Config cfg;
    cfg.cache_capacity = on ? 2048 : 0;
    cfg.cache_control_paths = on;
    intra::Network net(&topo, cfg, bench::kSeed + 17);
    std::vector<NodeId> ids;
    for (int i = 0; i < 800; ++i) {
      Identity ident = Identity::generate(net.rng());
      const auto gw = static_cast<graph::NodeIndex>(
          net.rng().index(net.router_count()));
      if (net.join_host(ident, gw).ok) ids.push_back(ident.id());
    }
    SampleSet stretch;
    for (int i = 0; i < 600; ++i) {
      const NodeId dest = ids[net.rng().index(ids.size())];
      const auto src = static_cast<graph::NodeIndex>(
          net.rng().index(net.router_count()));
      const auto rs = net.route(src, dest);
      if (rs.delivered && rs.shortest_hops > 0) stretch.add(rs.stretch());
    }
    double cache_entries = 0.0;
    for (graph::NodeIndex r = 0; r < net.router_count(); ++r) {
      cache_entries += static_cast<double>(net.router(r).cache().size());
    }
    cache_entries /= static_cast<double>(net.router_count());
    t.add_row({std::string(on ? "on" : "off"), stretch.mean(), cache_entries});
  }
  t.print(os);
}

void ablation_redundant_lookups(std::ostream& os) {
  print_banner(os,
               "A3: redundant-lookup elimination -- multihomed join cost");
  Rng trng(bench::kSeed);
  const graph::AsTopology topo = bench::make_inter_topology(trng);
  Table t({"optimization", "mean multihomed join [packets]"});
  for (const bool on : {true, false}) {
    inter::InterConfig cfg;
    cfg.prune_redundant_lookups = on;
    inter::InterNetwork net(&topo, cfg, bench::kSeed + 23);
    SampleSet cost;
    for (int i = 0; i < 600; ++i) {
      const auto js =
          net.join_random_host(inter::JoinStrategy::kRecursiveMultihomed);
      if (js.ok && i > 100) cost.add(static_cast<double>(js.messages));
    }
    t.add_row({std::string(on ? "on" : "off"), cost.mean()});
  }
  t.print(os);
  os << "Paper (6.3): although up-hierarchies have 75-100 ASes, unique "
        "successors are few; eliminating redundant lookups keeps multihomed "
        "joins near single-homed cost.\n";
}

void ablation_finger_digits(std::ostream& os) {
  print_banner(os, "A4: finger digit width b at a 96-finger budget");
  Rng trng(bench::kSeed);
  const graph::AsTopology topo = bench::make_inter_topology(trng);
  Table t({"b [bits]", "fingers acquired/id", "mean stretch"});
  for (const unsigned b : {1u, 2u, 4u}) {
    inter::InterConfig cfg;
    cfg.fingers_per_id = 96;
    cfg.finger_digit_bits = b;
    inter::InterNetwork net(&topo, cfg, bench::kSeed + 31);
    for (int i = 0; i < 1200; ++i) {
      (void)net.join_random_host(inter::JoinStrategy::kRecursiveMultihomed);
    }
    std::vector<NodeId> ids;
    for (const auto& [id, home] : net.directory()) ids.push_back(id);
    SampleSet stretch;
    for (int i = 0; i < 800; ++i) {
      const NodeId dest = ids[net.rng().index(ids.size())];
      const auto src = net.home_of(ids[net.rng().index(ids.size())]);
      if (!src.has_value() || net.home_of(dest) == *src) continue;
      const auto rs = net.route(*src, dest);
      if (rs.delivered && rs.bgp_hops > 0) stretch.add(rs.stretch());
    }
    const double per_id = static_cast<double>(net.total_finger_count()) /
                          static_cast<double>(ids.size());
    t.add_row({static_cast<std::int64_t>(b), per_id, stretch.mean()});
  }
  t.print(os);
  os << "Wider digits pack more entries per row (denser short-prefix "
        "coverage) but exhaust matching candidates sooner at small "
        "populations.\n";
}

void ablation_data_snooping(std::ostream& os) {
  print_banner(os,
               "A5: data-packet snooping into caches (the paper leaves it "
               "off)");
  Table t({"snooping", "cold-pass stretch", "warm-pass stretch"});
  for (const bool on : {false, true}) {
    Rng trng(bench::kSeed);
    const graph::IspTopology topo = isp(trng);
    intra::Config cfg;
    cfg.cache_capacity = 2048;
    cfg.cache_data_paths = on;
    intra::Network net(&topo, cfg, bench::kSeed + 41);
    std::vector<NodeId> ids;
    for (int i = 0; i < 800; ++i) {
      Identity ident = Identity::generate(net.rng());
      const auto gw = static_cast<graph::NodeIndex>(
          net.rng().index(net.router_count()));
      if (net.join_host(ident, gw).ok) ids.push_back(ident.id());
    }
    // Zipf-popular destinations; measure the first and second sweep.
    const ZipfSampler pop(ids.size(), 1.0);
    double pass_stretch[2] = {0.0, 0.0};
    for (int pass = 0; pass < 2; ++pass) {
      SampleSet stretch;
      Rng traffic(bench::kSeed + 43);  // same traffic both passes
      for (int i = 0; i < 500; ++i) {
        const NodeId dest = ids[pop.sample(traffic)];
        const auto src = static_cast<graph::NodeIndex>(
            traffic.index(net.router_count()));
        const auto rs = net.route(src, dest);
        if (rs.delivered && rs.shortest_hops > 0) stretch.add(rs.stretch());
      }
      pass_stretch[pass] = stretch.mean();
    }
    t.add_row({std::string(on ? "on" : "off (paper)"), pass_stretch[0],
               pass_stretch[1]});
  }
  t.print(os);
  os << "Snooping warms caches from data traffic, cutting repeat-traffic "
        "stretch at the price of cache pollution under churn.\n";
}

}  // namespace
}  // namespace rofl

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  ablation_successor_group(std::cout);
  ablation_control_path_caching(std::cout);
  ablation_redundant_lookups(std::cout);
  ablation_finger_digits(std::cout);
  ablation_data_snooping(std::cout);
  return 0;
}
