// churn.hpp -- deterministic seeded churn workload for the invariant auditor.
//
// The paper's central robustness claim is that ROFL keeps routing under
// continuous arrivals and departures (sections 3.2, 6.2).  This module turns
// that into a repeatable stress harness: a seeded generator materializes a
// join/leave/crash/route event schedule *upfront* (every event carries its
// own identity and selector draws, so dropping an event never re-rolls the
// others -- the property the ddmin shrinker in shrink.hpp relies on), the
// runner executes the schedule on the simulator clock with the Auditor
// sampling invariants every K simulated milliseconds, and the whole run is
// reproducible bit-for-bit from (seed, schedule): two same-seed runs produce
// identical audit digests and metrics snapshots.
//
// Router- and link-level faults are not generated here: compose a
// sim::FaultPlan (message loss, link flaps, crash windows) via
// ChurnRunParams::faults and the runner schedules it alongside the host
// churn, exactly as PR 3's fault machinery does.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "audit/auditor.hpp"
#include "sim/faults.hpp"
#include "util/identity.hpp"

namespace rofl::audit {

enum class ChurnOp : std::uint8_t {
  kJoinStable,     // stable host joins at a seeded gateway
  kJoinEphemeral,  // ephemeral host joins (backpointer at its predecessor)
  kLeave,          // graceful leave of a seeded live host
  kCrash,          // ungraceful host death (session-timeout path)
  kRoute,          // data packet from a seeded router to a seeded live host
};

[[nodiscard]] std::string_view to_string(ChurnOp op);

/// One scheduled churn event.  All randomness is drawn at generation time:
/// `ident` is the joining identity (join ops only) and `pick` seeds the
/// runtime selection of gateway/victim/source against the then-current
/// state.  Events are immutable once generated, which is what makes
/// subset-replay (shrinking) deterministic.
struct ChurnEvent {
  double t_ms = 0.0;
  ChurnOp op = ChurnOp::kJoinStable;
  std::optional<Identity> ident;
  std::uint64_t pick = 0;
};

struct ChurnConfig {
  std::size_t events = 200;
  double start_ms = 10.0;
  double end_ms = 400.0;
  // Relative op mix (weights, not probabilities).
  unsigned join_weight = 3;
  unsigned join_ephemeral_weight = 1;
  unsigned leave_weight = 2;
  unsigned crash_weight = 1;
  unsigned route_weight = 3;
};

/// Materializes the full event schedule from one sequential RNG stream,
/// sorted by timestamp.  Same (cfg, seed) -> identical schedule.
[[nodiscard]] std::vector<ChurnEvent> make_churn_schedule(
    const ChurnConfig& cfg, std::uint64_t seed);

struct ChurnRunParams {
  std::size_t router_count = 60;
  std::size_t pop_count = 8;
  intra::Config net_cfg;
  /// Message/link/crash faults to run the churn under (schedule_fault_plan +
  /// FaultInjector).  Ignored unless `use_faults`.
  sim::FaultPlan faults;
  bool use_faults = false;
  double audit_interval_ms = 25.0;
  /// Quiet time after the last scheduled event (and after every fault
  /// window closes) before the final repair + strict verification.
  double settle_ms = 300.0;
  /// Hosts joined before the clock starts, from a schedule-independent RNG
  /// stream -- shrinking the schedule never changes the starting state.
  std::size_t initial_hosts = 64;
  std::uint64_t seed = 1;
  /// Timeline sampling window on the sim clock; 0 disables the timeline.
  /// The sampler attaches after the initial population, so the series cover
  /// the churn phase itself, not the setup burst.  Wall-clock histograms
  /// (recompute_ms) are excluded from the export, mirroring metrics_json.
  double timeline_window_ms = 0.0;
  std::size_t timeline_capacity = 4096;
};

struct ChurnRunResult {
  /// Strict ring verification after the post-run quiescence repair.
  bool converged = false;
  std::string err;
  // Executed-op counts (events can no-op when the roster is empty).
  std::uint64_t joins = 0;
  std::uint64_t joins_failed = 0;
  std::uint64_t leaves = 0;
  std::uint64_t crashes = 0;
  std::uint64_t routes = 0;
  std::uint64_t delivered = 0;
  /// Simulator events dispatched over the whole run (run-summary reporting).
  std::uint64_t events_dispatched = 0;
  // Audit outcome: every scheduled audit plus one final post-repair audit.
  std::uint64_t audits = 0;
  std::uint64_t hard = 0;
  std::uint64_t soft = 0;
  std::string digest;  // Auditor::reports_digest() over all audits
  /// FNV digest over every executed route's RouteStats (delivered flag,
  /// physical/ring/shortest hops, latency bits), in schedule order.  This is
  /// the labels-on vs labels-off equivalence gate: the label fast path must
  /// change per-hop cost, never route outcomes, so the digest is
  /// byte-identical across the two modes for the same (params minus
  /// enable_labels, schedule).  The audit digest is NOT comparable across
  /// modes -- label checks change the check counts.
  std::string routes_digest;
  std::vector<AuditReport> reports;
  /// Registry snapshot taken before the faults-off repair, with wall-clock
  /// histogram lines scrubbed (they measure host CPU, not simulated
  /// behavior) so two same-seed runs compare byte-for-byte.
  std::string metrics_json;
  /// Timeline export (one JSON object per window; empty when the timeline
  /// was disabled).  Deterministic: contains no wall-clock fields.
  std::string timeline_jsonl;
  double timeline_window_ms = 0.0;
  /// Per-window delta series of the convergence-relevant counters
  /// (sim.events, msgs.join, msgs.repair, msgs.teardown, msgs.data), for
  /// embedding in BENCH_churn.json.
  std::vector<std::pair<std::string, std::vector<std::uint64_t>>>
      timeline_series;
};

/// Executes `schedule` (plus params.faults) over a fresh seeded network with
/// periodic audits.  Deterministic: byte-identical results for identical
/// inputs.
[[nodiscard]] ChurnRunResult run_churn(const ChurnRunParams& params,
                                       const std::vector<ChurnEvent>& schedule);

}  // namespace rofl::audit
