// label_table.hpp -- per-router label-switched forwarding state (DESIGN.md
// section 15).
//
// ROADMAP item 2: once a route over a pointer path stabilizes, the network
// installs short per-hop labels along it so steady-state forwarding is one
// dense-array index instead of the Eytzinger best-match descent plus the
// pointer-cache binary search.  The table is deliberately dumb: a slab of
// {dest, out-pointer, next-hop label} entries indexed by the u32 label
// carried in the packet, with a free list so retired labels are reused
// deterministically.  All lifecycle policy (when to install, when to tear
// down, equivalence with greedy routing) lives in Network; the auditor
// cross-checks every entry against live ring/pointer state.
#pragma once

#include <cstdint>
#include <vector>

#include "rofl/types.hpp"

namespace rofl::intra {

/// Sentinel "no label": the terminal hop of a chain emits this downstream.
inline constexpr std::uint32_t kNoLabel = 0xFFFFFFFFu;

struct LabelEntry {
  NodeId dest;                          ///< flow destination the chain serves
  NodeIndex out = graph::kInvalidNode;  ///< next router; kInvalidNode = deliver
  std::uint32_t next_label = kNoLabel;  ///< label the next router switches on
  bool in_use = false;
};

class LabelTable {
 public:
  /// Allocates a label slot and fills it.  Labels are reused LIFO off the
  /// free list, so a same-seed run allocates an identical label sequence.
  std::uint32_t install(const NodeId& dest, NodeIndex out,
                        std::uint32_t next_label) {
    std::uint32_t label;
    if (!free_.empty()) {
      label = free_.back();
      free_.pop_back();
    } else {
      label = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[label] = LabelEntry{dest, out, next_label, /*in_use=*/true};
    ++live_;
    return label;
  }

  /// The steady-state datapath: one bounds check and one array index.
  [[nodiscard]] const LabelEntry* lookup(std::uint32_t label) const {
    if (label >= slots_.size() || !slots_[label].in_use) return nullptr;
    return &slots_[label];
  }

  void remove(std::uint32_t label) {
    if (label >= slots_.size() || !slots_[label].in_use) return;
    slots_[label].in_use = false;
    free_.push_back(label);
    --live_;
  }

  void clear() {
    slots_.clear();
    free_.clear();
    live_ = 0;
  }

  [[nodiscard]] std::size_t live() const { return live_; }
  [[nodiscard]] std::size_t slots() const { return slots_.size(); }

  /// Calls fn(label, const LabelEntry&) for every live entry in label order
  /// (audit walks).
  template <typename F>
  void for_each(F&& fn) const {
    for (std::uint32_t l = 0; l < slots_.size(); ++l) {
      if (slots_[l].in_use) fn(l, slots_[l]);
    }
  }

 private:
  std::vector<LabelEntry> slots_;       // slab indexed by label
  std::vector<std::uint32_t> free_;     // retired labels, reused LIFO
  std::size_t live_ = 0;
};

}  // namespace rofl::intra
