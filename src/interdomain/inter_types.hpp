// inter_types.hpp -- vocabulary of the interdomain ROFL protocol (sections
// 2.3 and 4).
//
// Following the paper's own simulation methodology, each AS is modeled as a
// single node: hosted IDs live "in an AS" and pointers carry AS-level source
// routes.  The routing state per hosted ID mirrors figure 3 -- an internal
// successor plus one external successor per level of the up-hierarchy, with
// redundant levels pruned -- plus optional proximity fingers (section 4.1).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "graph/as_topology.hpp"
#include "sim/faults.hpp"
#include "util/identity.hpp"
#include "util/node_id.hpp"

namespace rofl::inter {

using graph::AsIndex;

/// An AS-level source route: the sequence of ASes a pointer's traffic
/// traverses, climbing provider links to the anchor and descending customer
/// links to the target (valley-free by construction).  Virtual peering ASes
/// may appear inside; they are transparent (a hop through one is the peering
/// link itself).
using AsRoute = std::vector<AsIndex>;

/// One successor pointer at a given level of the hierarchy (figure 3).
struct LevelPointer {
  AsIndex anchor = graph::kInvalidAs;  // subtree root this level merges under
  unsigned level = 0;                  // anchor's level in the owner's G_X
  NodeId target;                       // the successor ID at this level
  AsIndex target_home = graph::kInvalidAs;
  AsRoute route;                       // owner's AS .. anchor .. target's AS
};

/// A proximity finger-table entry (prefix-based, section 4.1): `target`
/// matches the owner on `prefix_len` bits and differs in the next digit;
/// among all such IDs it is reachable with the fewest up-links.
struct Finger {
  unsigned prefix_len = 0;
  std::uint64_t digit = 0;
  NodeId target;
  AsIndex target_home = graph::kInvalidAs;
  AsIndex anchor = graph::kInvalidAs;  // route peak (lowest common ancestor)
  unsigned up_links = 0;  // levels climbed to reach it (proximity metric)
  AsRoute route;
};

/// Joining strategies compared in figure 8a.
enum class JoinStrategy : std::uint8_t {
  kEphemeral,            // global successor only
  kSingleHomed,          // one path toward the core
  kRecursiveMultihomed,  // all ASes in the up-hierarchy
  kPeering,              // multihomed + joins across peering links
};

/// Peering design options of section 4.2.
enum class PeeringMode : std::uint8_t {
  kVirtualAs,  // conversion rule of figure 4a
  kBloom,      // peer-subtree bloom filters with backtracking
};

/// Routing state for one ID hosted in an AS.
struct InterVNode {
  NodeId id;
  AsIndex home = graph::kInvalidAs;
  JoinStrategy strategy = JoinStrategy::kRecursiveMultihomed;
  /// For single-homed joins: the forced first-hop provider (multi-address
  /// multihoming / TE suffixes, sections 4.2 and 5.1).  Unset = default
  /// deterministic choice.
  std::optional<AsIndex> via_provider;
  /// Set while a provider hosts this ID as a virtual server for a customer
  /// outage (section 4.1): names the customer AS the ID belongs to.  The
  /// anchor set stays pinned to the customer's hierarchy so the rings never
  /// churn through the outage.
  std::optional<AsIndex> virtual_server_for;
  /// The anchor set this ID joined, ascending by level (home AS first for
  /// non-ephemeral strategies).
  std::vector<std::pair<AsIndex, unsigned>> anchors;
  /// Internal + external successors, ordered by ascending level; redundant
  /// levels (same target as a lower level) are pruned per Algorithm 3.
  std::vector<LevelPointer> successors;
  std::vector<Finger> fingers;
  /// "For correctness purposes, each ID also maintains a list of IDs that
  /// are pointing to it" (section 4.1): the finger owners to notify when
  /// this ID departs, so no stale finger survives a teardown.
  std::set<NodeId> finger_back_refs;
};

struct InterJoinStats {
  bool ok = false;
  std::uint64_t messages = 0;  // AS-level packets, as figure 8a counts them
  std::uint64_t bytes = 0;     // wire bytes of those packets (encoder-sized)
};

struct InterRouteStats {
  bool delivered = false;
  std::uint32_t as_hops = 0;       // physical AS-level hops traversed
  std::uint32_t segments = 0;      // pointer hops taken
  std::uint32_t bgp_hops = 0;      // valley-free BGP baseline for the pair
  bool isolation_held = true;      // stayed within subtree(LCA(src,dst))
  std::uint32_t peer_links_used = 0;
  std::uint32_t backtracks = 0;    // bloom false-positive reversals
  /// Flight-recorder id (0 when no recorder installed); when the caller
  /// passes the id from an intradomain RouteStats the whole flight shares
  /// one trace.
  std::uint64_t trace_id = 0;

  [[nodiscard]] double stretch() const {
    if (!delivered || bgp_hops == 0) return 0.0;
    return static_cast<double>(as_hops) / static_cast<double>(bgp_hops);
  }
};

struct InterRepairStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;  // wire bytes of those messages (encoder-sized)
  std::uint32_t pointers_torn = 0;
  std::uint32_t ids_lost = 0;
};

struct InterConfig {
  /// Proximity-finger budget per hosted ID (figure 8b sweeps 60/160/280;
  /// 0 disables fingers).
  std::size_t fingers_per_id = 0;
  /// Digit width of the prefix finger table (b of section 4.1).
  unsigned finger_digit_bits = 2;
  PeeringMode peering_mode = PeeringMode::kVirtualAs;
  /// Bloom geometry for peering mode kBloom and for subtree summaries.
  std::size_t bloom_bits = 1u << 18;
  unsigned bloom_hashes = 4;
  /// Per-AS pointer-cache capacity in entries (figure 8c; 0 = off, the
  /// paper's default outside that experiment).
  std::size_t cache_capacity_per_as = 0;
  /// Eliminate redundant per-level lookups that resolve to the same
  /// successor (the optimization called out in section 6.3).
  bool prune_redundant_lookups = true;
  /// Forwarding loop guard.
  std::uint32_t max_segments = 4096;
  /// Retransmission policy for control-plane exchanges (ring-merge join
  /// levels, re-anchor registrations) when a fault injector is installed.
  sim::RetryPolicy retry;
};

}  // namespace rofl::inter
