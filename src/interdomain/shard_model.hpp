// shard_model.hpp -- the Internet-scale workload for the sharded simulator.
//
// The paper's headline evaluation (section 6.3) is interdomain: millions of
// hosts homed across thousands of ASes, joining, leaving, and resolving flat
// labels through the Canon-merged ring hierarchy.  The full InterNetwork
// engine models that faithfully but single-threaded; this module is the
// scale companion: every AS becomes one ShardedSimulator *entity* whose
// handler replays the protocol's macroscopic behavior --
//
//   * join:   register the new host's label at every anchor on the home
//     AS's primary-provider chain (the level-0..k merged rings of
//     section 4.1), one RingMerge frame per provider hop;
//   * leave:  the matching deregistration cascade;
//   * lookup: climb the source's anchor chain until some merged ring holds
//     the target label, crossing the tier-1 clique in deterministic index
//     order when the top is reached without a hit, then answer the source
//     directly (hops and hit/miss are the observables, mirroring fig. 7).
//
// Labels are synthetic but self-consistent: slot s of AS t always maps to
// id_for(seed, t, s), so a lookup drawn by any AS races real registration
// state -- hits and misses are decided by the deterministic event order,
// never by out-of-band knowledge.  Per-AS op rates are proportional to the
// Zipf host counts, which is also what makes the weighted partition
// (balanced_shard_map) meaningful.
//
// Determinism contract (DESIGN.md section 13): handlers draw only from
// ctx.rng() (the *destination* entity's stream), histogram samples are
// integral, flight-recorder trace ids are entity-derived
// ((src+1) << 32 | counter), and all cross-AS latencies are integer
// multiples of the lookahead.  Under that discipline the merged metrics,
// flight digest, and audit report are bit-identical for every shard count.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "graph/as_topology.hpp"
#include "obs/metrics.hpp"
#include "sim/sharded.hpp"
#include "util/node_id.hpp"

namespace rofl::inter {

struct ScaleParams {
  /// AS mix; `total_hosts` is overridden by `hosts` below.
  graph::AsGenParams topo{};
  std::uint64_t hosts = 100'000;
  double duration_ms = 2'000.0;
  /// Per-AS driver tick interval (self-events; exempt from the lookahead).
  double tick_ms = 50.0;
  /// Expected operations per host per simulated second.
  double op_rate_per_host_hz = 1.0;
  /// Op mix; lookup takes the remainder.
  double join_frac = 0.3;
  double leave_frac = 0.2;
  /// Label slots per AS: joins/leaves/lookups address id_for(seed, as, slot).
  std::uint32_t slots_per_as = 64;
  /// Conservative bound; every cross-AS latency is a 1-4x multiple of it.
  double lookahead_ms = 1.0;
  std::uint32_t shards = 1;
  std::uint64_t seed = 1;
  std::size_t channel_capacity = 1 << 12;
  std::size_t recorder_capacity = 1 << 14;
  /// Trace every Nth lookup per source AS through the flight recorder
  /// (0 disables tracing).
  std::uint32_t trace_sample = 64;
  /// Timeline sampling window on the sim clock; 0 disables the timeline.
  /// The merged timeline is shard-count independent (DESIGN.md section 14).
  double timeline_window_ms = 0.0;
  std::size_t timeline_capacity = 4096;
  /// Wall-clock engine self-profile (busy/stall/idle per shard); the profile
  /// is reporting-only and never enters determinism-gated artifacts.
  bool profile = false;
};

class ShardScaleModel {
 public:
  explicit ShardScaleModel(const ScaleParams& params);
  ~ShardScaleModel();

  ShardScaleModel(const ShardScaleModel&) = delete;
  ShardScaleModel& operator=(const ShardScaleModel&) = delete;

  /// Seeds the per-AS driver ticks and runs the engine to quiescence.
  sim::ShardedSimulator::RunStats run();

  [[nodiscard]] const ScaleParams& params() const { return params_; }
  [[nodiscard]] const graph::AsTopology& topology() const { return topo_; }
  [[nodiscard]] const sim::ShardedSimulator& engine() const { return *engine_; }
  [[nodiscard]] const std::vector<std::uint32_t>& shard_map() const {
    return shard_map_;
  }

  [[nodiscard]] obs::Registry merged_metrics() const {
    return engine_->merged_metrics();
  }
  [[nodiscard]] std::uint64_t flight_digest() const {
    return engine_->flight_digest();
  }
  /// Merged per-shard timelines; requires timeline_window_ms > 0 and run().
  [[nodiscard]] obs::Timeline merged_timeline() const {
    return engine_->merged_timeline();
  }
  /// The engine self-profile, or nullptr when params.profile is false.
  [[nodiscard]] const sim::EngineProfiler* profiler() const {
    return profiler_.get();
  }

  /// The deterministic label of slot `slot` homed at AS `as`.
  [[nodiscard]] static NodeId id_for(std::uint64_t seed, graph::AsIndex as,
                                     std::uint32_t slot);

  // -- audit surface (post-run) ----------------------------------------------
  /// Anchor chain of `a`: a itself, then primary providers up to a tier-1.
  [[nodiscard]] const std::vector<graph::AsIndex>& chain(
      graph::AsIndex a) const {
    return chain_[a];
  }
  /// Home-AS ground truth: is slot `slot` of AS `a` currently joined?
  [[nodiscard]] bool slot_live(graph::AsIndex a, std::uint32_t slot) const;
  /// The merged ring an anchor holds: label -> home AS.
  [[nodiscard]] const std::map<NodeId, graph::AsIndex>& ring(
      graph::AsIndex a) const;

 private:
  struct alignas(64) AsState {
    std::vector<std::uint8_t> live;            // per-slot join state (truth)
    std::map<NodeId, graph::AsIndex> ring;     // merged ring at this anchor
    double op_accumulator = 0.0;
    std::uint64_t lookup_counter = 0;
  };

  struct MetricIds {
    obs::MetricId ticks, ops_join, ops_leave, ops_lookup, leave_noop;
    obs::MetricId lookup_hit, lookup_miss;
    obs::MetricId msgs_register, msgs_unregister, msgs_lookup, msgs_resp;
    obs::MetricId bytes_wire;
    obs::MetricId ring_max;
    obs::MetricId hops_hist, ring_size_hist;
  };

  static void register_metrics(obs::Registry& reg, MetricIds* out = nullptr);

  void handle(sim::ShardContext& ctx, const sim::ShardEvent& ev);
  void do_tick(sim::ShardContext& ctx, const sim::ShardEvent& ev);
  void do_join(sim::ShardContext& ctx, graph::AsIndex a);
  void do_leave(sim::ShardContext& ctx, graph::AsIndex a);
  void do_lookup(sim::ShardContext& ctx, graph::AsIndex a);
  void ring_insert(sim::ShardContext& ctx, graph::AsIndex anchor, NodeId id,
                   graph::AsIndex home);
  /// Picks the next anchor for a lookup that missed at `b` and forwards (or
  /// answers the source with a miss when the hierarchy is exhausted).
  void continue_lookup(sim::ShardContext& ctx, graph::AsIndex b,
                       const std::uint8_t* payload);
  /// Deterministic per-ordered-pair link delay (1-4x lookahead).  Constant
  /// per link so the (when, src, seq) tie-break preserves send order: links
  /// are FIFO and register/unregister cascades apply in order.
  [[nodiscard]] double latency(graph::AsIndex from, graph::AsIndex to) const;
  [[nodiscard]] graph::AsIndex pick_target(Rng& rng) const;

  ScaleParams params_;
  graph::AsTopology topo_;
  std::vector<std::vector<graph::AsIndex>> chain_;  // per-AS anchor chain
  std::vector<graph::AsIndex> provider_;            // primary provider or inv.
  std::vector<graph::AsIndex> tier1_;               // ascending index order
  std::vector<double> target_cdf_;                  // host-weighted pick
  std::vector<AsState> state_;
  std::vector<std::uint32_t> shard_map_;
  std::unique_ptr<sim::EngineProfiler> profiler_;
  std::unique_ptr<sim::ShardedSimulator> engine_;
  MetricIds ids_{};
  std::size_t frame_bytes_ = 0;  // RingMerge wire size (all kinds share it)
};

}  // namespace rofl::inter
