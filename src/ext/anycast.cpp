#include "ext/anycast.hpp"

#include <algorithm>

namespace rofl::ext {

intra::JoinStats anycast_join(intra::Network& net, const GroupId& g,
                              std::uint32_t suffix,
                              graph::NodeIndex gateway) {
  // Prove group-key ownership against a fresh nonce, then join the member
  // ID through the regular (G,x) hook.
  const std::uint64_t nonce = net.rng().next_u64();
  const OwnershipProof proof = g.identity().prove(nonce);
  if (!verify_ownership(g.identity().id(), g.identity().public_key(), nonce,
                        proof, g.identity().private_key())) {
    return {};
  }
  return net.join_group_id(g.with_suffix(suffix), g.identity().public_key(),
                           gateway);
}

AnycastResult anycast_route(intra::Network& net, graph::NodeIndex src,
                            const GroupId& g,
                            std::optional<std::uint32_t> preferred_suffix,
                            bool absorb_en_route) {
  AnycastResult res;
  if (src >= net.router_count() || !net.topology().graph.node_up(src)) {
    return res;
  }
  const NodeId steer =
      preferred_suffix.has_value() ? g.with_suffix(*preferred_suffix) : g.high();

  graph::NodeIndex cur = src;
  res.path.push_back(cur);
  NodeId committed = NodeId{}.minus(NodeId::from_u64(1));
  std::optional<intra::Candidate> chasing;

  const std::uint32_t guard = net.config().max_forwarding_hops;
  for (std::uint32_t step = 0; step < guard; ++step) {
    intra::Router& r = net.router(cur);
    // Delivery rule: the first router hosting any member of G absorbs the
    // packet ("the first server in G for which the packet encounters a
    // route").  In ownership mode, only the member owning the steering
    // suffix (the greedy target itself) may absorb.
    if (absorb_en_route) {
      for (const auto& [vid, vn] : r.vnodes()) {
        if (g.contains(vid)) {
          res.delivered = true;
          res.member = vid;
          return res;
        }
      }
    }
    // Greedy toward (G, r): routers treat all suffixes of G equally, so a
    // candidate inside the group counts as an exact hit to chase.
    std::vector<intra::Candidate> cands;
    if (auto c = r.vn_best_match(steer)) cands.push_back(*c);
    if (const intra::CacheEntry* e = r.cache().best_match(steer)) {
      if (net.map().route_valid(e->path)) {
        cands.push_back(intra::Candidate{e->id, e->host, false});
      }
    }
    std::sort(cands.begin(), cands.end(),
              [&](const intra::Candidate& a, const intra::Candidate& b) {
                return NodeId::closer_to(steer, a.id, b.id);
              });
    bool switched = false;
    for (const intra::Candidate& c : cands) {
      const NodeId d = NodeId::distance_cw(c.id, steer);
      if (d < committed) {
        chasing = c;
        committed = d;
        switched = true;
        break;
      }
    }
    if (!chasing.has_value()) return res;
    // Ownership mode: deliver as soon as the chased target is a group
    // member hosted right here (covers both arrival and the case where the
    // owner is resident at the current router).
    if (!absorb_en_route && g.contains(chasing->id) &&
        r.hosts(chasing->id)) {
      res.delivered = true;
      res.member = chasing->id;
      return res;
    }
    if (!switched && cur == chasing->host) {
      if (r.hosts(chasing->id)) {
        // In ownership mode the chased member absorbs on arrival; in absorb
        // mode arriving here with a non-member means the group is empty
        // around the steering point: a miss.
        if (!absorb_en_route && g.contains(chasing->id)) {
          res.delivered = true;
          res.member = chasing->id;
        }
        return res;
      }
      r.cache().erase(chasing->id);
      chasing.reset();
      committed = NodeId{}.minus(NodeId::from_u64(1));
      continue;
    }
    const auto next = net.map().next_hop(cur, chasing->host);
    if (!next.has_value() || *next == cur) {
      r.cache().erase(chasing->id);
      chasing.reset();
      continue;
    }
    cur = *next;
    res.path.push_back(cur);
    ++res.physical_hops;
    net.simulator().counters().add(sim::MsgCategory::kData, 1);
  }
  return res;
}

}  // namespace rofl::ext
