#!/usr/bin/env bash
# Full verification: release build + tests, ASan+UBSan build + tests, a TSan
# pass over the threaded suites, and a bench smoke run that emits
# BENCH_datapath.json.  Set ROFL_CHECK_FULL=1 to also run every figure bench
# at full length (slow).
set -euo pipefail
cd "$(dirname "$0")/.."

# Use whatever generator the existing build trees were configured with;
# default to the CMake default on fresh checkouts.
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer"
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j

# Datapath bench smoke: short run, but long enough for stable ns/op, and it
# exercises the JSON trajectory plumbing end to end.
python3 scripts/bench_trajectory.py run --min-time 0.05

# Observability smoke: a small sim with the trace sink + flight recorder on
# must emit a trace that chrome://tracing / Perfetto would accept, and with
# --timeline the trace must also carry live "ph":"C" counter tracks (the
# intra model is synchronous, so gate on msgs.join rather than sim.events).
build/tools/roflsim intra --hosts 200 --routes 100 --seed 7 \
  --trace build/trace_smoke.json --timeline build/timeline_smoke.jsonl \
  --traceroute --metrics > /dev/null
python3 scripts/validate_trace.py build/trace_smoke.json --min-events 50 \
  --require-counter msgs.join
build/tools/roflsim timeline --file build/timeline_smoke.jsonl \
  --metric msgs > /dev/null

# Fault-matrix smoke: churn under 5% loss with link flaps must converge to
# canonical rings (roflsim exits nonzero otherwise), and two same-seed runs
# must produce byte-identical metrics -- the determinism contract that makes
# faulty runs debuggable.
build/tools/roflsim faults --hosts 120 --churn 40 --loss 0.05 --flaps 3 \
  --seed 11 --metrics-json build/faults_run1.json > /dev/null
build/tools/roflsim faults --hosts 120 --churn 40 --loss 0.05 --flaps 3 \
  --seed 11 --metrics-json build/faults_run2.json > /dev/null
cmp build/faults_run1.json build/faults_run2.json
grep -q '"faults.dropped"' build/faults_run1.json

# Corruption smoke: the same contract with byte corruption in the loss mix.
# Every corrupted frame must be CRC-rejected (counted under
# "faults.corrupted"), the run must still converge, and two same-seed runs
# must stay byte-identical.
build/tools/roflsim faults --hosts 120 --churn 40 --loss 0.02 --corrupt 0.01 \
  --seed 13 --metrics-json build/corrupt_run1.json > /dev/null
build/tools/roflsim faults --hosts 120 --churn 40 --loss 0.02 --corrupt 0.01 \
  --seed 13 --metrics-json build/corrupt_run2.json > /dev/null
cmp build/corrupt_run1.json build/corrupt_run2.json
grep -q '"faults.corrupted"' build/corrupt_run1.json
grep -q '"bytes.join"' build/corrupt_run1.json

# Invariant-auditor smoke: a churn run with periodic audits must finish with
# zero hard violations and converge (roflsim exits nonzero otherwise), both
# fault-free and under loss; two same-seed runs must produce byte-identical
# metrics snapshots -- the digest printed on stdout covers the audit reports
# violation-by-violation.
build/tools/roflsim audit --events 120 --initial-hosts 32 --seed 11 \
  --metrics-json build/audit_run1.json > build/audit_out1.txt
build/tools/roflsim audit --events 120 --initial-hosts 32 --seed 11 \
  --metrics-json build/audit_run2.json > build/audit_out2.txt
cmp build/audit_run1.json build/audit_run2.json
cmp <(grep 'audit digest' build/audit_out1.txt) \
    <(grep 'audit digest' build/audit_out2.txt)
build/tools/roflsim audit --events 120 --initial-hosts 32 --seed 11 \
  --loss 0.05 > /dev/null
grep -q '"audit.runs"' build/audit_run1.json

# Label-equivalence smoke: the label-switched fast path may change per-hop
# cost and byte counters, never route outcomes (DESIGN.md section 15).  A
# labels-on run under loss+duplication must converge with zero hard
# violations (the intra.label.* auditor checks are active), its "routes
# digest" must be byte-identical to the labels-off run of the same seed and
# schedule, and a same-seed labels-on double run must produce byte-identical
# metrics snapshots.
build/tools/roflsim audit --events 120 --initial-hosts 32 --seed 11 \
  --loss 0.05 --dup 0.02 --labels --metrics-json build/labels_run1.json \
  > build/labels_out1.txt
build/tools/roflsim audit --events 120 --initial-hosts 32 --seed 11 \
  --loss 0.05 --dup 0.02 --labels --metrics-json build/labels_run2.json \
  > build/labels_out2.txt
build/tools/roflsim audit --events 120 --initial-hosts 32 --seed 11 \
  --loss 0.05 --dup 0.02 --metrics-json build/labels_off.json \
  > build/labels_off.txt
cmp build/labels_run1.json build/labels_run2.json
cmp <(grep 'routes digest' build/labels_out1.txt) \
    <(grep 'routes digest' build/labels_out2.txt)
cmp <(grep 'routes digest' build/labels_out1.txt) \
    <(grep 'routes digest' build/labels_off.txt)
grep -q '"labels.installed"' build/labels_run1.json
grep -q '"labels.hits"' build/labels_run1.json

# Shard-determinism smoke: the same seeded scale scenario at 1 and 4 shards
# must produce byte-identical merged metrics and identical flight-recorder /
# shard-audit digests (the shard count may change performance, never
# results), and the shard audit must be clean (roflsim exits nonzero
# otherwise).
build/tools/roflsim shard --shards 1 --hosts 20000 --ases 400 \
  --duration 500 --seed 11 --metrics-json build/shard_run1.json \
  > build/shard_out1.txt
build/tools/roflsim shard --shards 4 --hosts 20000 --ases 400 \
  --duration 500 --seed 11 --metrics-json build/shard_run4.json \
  > build/shard_out4.txt
cmp build/shard_run1.json build/shard_run4.json
cmp <(grep -E 'flight digest|shard audit' build/shard_out1.txt) \
    <(grep -E 'flight digest|shard audit' build/shard_out4.txt)
grep -q '"scale.ops.lookup"' build/shard_run1.json

# Timeline-determinism smoke: the merged timeline (per-window counter deltas,
# gauges, histogram percentiles) must also be shard-count independent.  The
# JSONL trailer carries wall-clock provenance ({"run": ...}), which varies by
# construction, so scrub it before the byte-compare (DESIGN.md section 14).
build/tools/roflsim shard --shards 1 --hosts 20000 --ases 400 \
  --duration 500 --seed 11 --timeline build/shard_tl1.jsonl > /dev/null
build/tools/roflsim shard --shards 4 --hosts 20000 --ases 400 \
  --duration 500 --seed 11 --timeline build/shard_tl4.jsonl > /dev/null
cmp <(grep -v '"run"' build/shard_tl1.jsonl) \
    <(grep -v '"run"' build/shard_tl4.jsonl)
grep -q '"sim.events"' build/shard_tl1.jsonl
grep -q '"run"' build/shard_tl1.jsonl
build/tools/roflsim timeline --file build/shard_tl1.jsonl \
  --metric sim.events > /dev/null

# Net smoke: the control plane over actual sockets (DESIGN.md section 16).
# An 8-router live UDP mesh must converge its join storm with a clean ring
# audit (roflsim exits nonzero otherwise), also under loss + duplication;
# the deterministic loopback backend must hit the section 6.3 byte-parity
# gate (1638 bytes per 256-finger JoinRequest, enforced by the run itself);
# and spawn mode -- one real process per router -- must do the same over a
# fixed port range.  Hard timeouts: a wedged mesh fails, never hangs CI.
timeout 120 build/tools/roflsim net --routers 8 --hosts 400 --fingers 8 \
  --seed 11 > /dev/null
timeout 120 build/tools/roflsim net --routers 8 --hosts 300 --fingers 8 \
  --seed 11 --loss 0.02 --dup 0.01 > /dev/null
timeout 120 build/tools/roflsim net --backend loopback --routers 4 \
  --hosts 200 --fingers 256 --seed 11 > build/net_loopback.txt
grep -q 'byte parity (6.3).*exact' build/net_loopback.txt
timeout 120 build/tools/roflsim net --spawn --routers 6 --hosts 240 \
  --fingers 8 --seed 11 --base-port 47500 > build/net_spawn.txt
grep -q 'audit=clean' build/net_spawn.txt

# Lookup + leave smoke: data-plane lookups over the converged live mesh (all
# probes must hit) followed by a clean departure whose post-leave ring audit
# stays exact (roflsim exits nonzero on either failing); the deterministic
# loopback run must reproduce byte-identical metrics across two same-seed
# runs with both phases on.
timeout 120 build/tools/roflsim net --routers 4 --hosts 200 --fingers 8 \
  --seed 11 --lookups 50 --leave 2 > build/net_lookup_leave.txt
grep -q 'lookups hit/served  *50/50' build/net_lookup_leave.txt
grep -q 'departure  *clean' build/net_lookup_leave.txt
timeout 120 build/tools/roflsim net --backend loopback --routers 4 \
  --hosts 200 --fingers 8 --seed 11 --lookups 50 --leave 2 \
  --metrics-json build/net_ll_run1.json > /dev/null
timeout 120 build/tools/roflsim net --backend loopback --routers 4 \
  --hosts 200 --fingers 8 --seed 11 --lookups 50 --leave 2 \
  --metrics-json build/net_ll_run2.json > /dev/null
cmp build/net_ll_run1.json build/net_ll_run2.json
grep -q '"net.lookups.hit"' build/net_ll_run1.json
grep -q '"net.leave.relinks"' build/net_ll_run1.json

# TSan leg: the suites that actually spin threads -- the UDP transport pump
# and meshes (test_net) and the sharded engine's workers (test_sharded) --
# must run clean under ThreadSanitizer.
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
cmake --build build-tsan --target rofl_tests -j
TSAN_OPTIONS=halt_on_error=1 build-tsan/tests/rofl_tests \
  --gtest_filter='PumpHeader.*:DedupWindow.*:Loopback.*:Udp.*:Mesh.*:SpscQueue.*:BalancedShardMap.*:ShardedSimulator.*:ShardScaleModel.*'

if [ "${ROFL_CHECK_FULL:-0}" = "1" ]; then
  for b in build/bench/*; do
    if [ -x "$b" ] && [ "$(basename "$b")" != "micro_datapath" ]; then
      "$b"
    fi
  done
  # Perf gate: diff the fresh datapath snapshot against a pinned baseline
  # (checkout-relative path in ROFL_BENCH_BASELINE).  Per-benchmark headroom
  # comes from scripts/bench_thresholds.json; exits 1 on regression.
  if [ -n "${ROFL_BENCH_BASELINE:-}" ] && [ -f "${ROFL_BENCH_BASELINE}" ]; then
    python3 scripts/bench_trajectory.py compare "${ROFL_BENCH_BASELINE}" \
      BENCH_datapath.json --thresholds scripts/bench_thresholds.json
  else
    echo "check.sh: no bench baseline (set ROFL_BENCH_BASELINE to a" \
         "BENCH_datapath.json from a prior run); skipping perf compare"
  fi
fi
