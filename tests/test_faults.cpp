// Tests for the fault-injection layer (sim/faults) and its wiring into the
// intradomain engine: deterministic decision streams, faults.* accounting,
// retry-with-backoff on the control plane, data-plane drops, and the
// idempotence of fail_link/restore_link under redundant flap events.
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include "audit/churn.hpp"
#include "obs/flight_recorder.hpp"
#include "rofl/network.hpp"

namespace rofl {
namespace {

using intra::Config;
using intra::Network;

sim::FaultPlan lossy_plan(double loss, double dup = 0.0, double jitter = 0.0) {
  sim::FaultPlan plan;
  plan.defaults.loss = loss;
  plan.defaults.duplicate = dup;
  plan.defaults.jitter_ms = jitter;
  return plan;
}

TEST(FaultPlan, MessageFaultsPossible) {
  sim::FaultPlan plan;
  EXPECT_FALSE(plan.message_faults_possible());
  plan.link_flaps.push_back(sim::LinkFlap{0, 1, 10.0, 20.0});
  plan.crash_windows.push_back(sim::CrashWindow{2, 10.0, 20.0});
  // Schedules alone need no per-transmission branch.
  EXPECT_FALSE(plan.message_faults_possible());
  plan.link_overrides.push_back(
      sim::LinkConditions{3, 4, {.loss = 0.5, .duplicate = 0.0, .jitter_ms = 0.0}});
  EXPECT_TRUE(plan.message_faults_possible());
  sim::FaultPlan plan2;
  plan2.defaults.jitter_ms = 1.0;
  EXPECT_TRUE(plan2.message_faults_possible());
}

TEST(FaultInjector, SameSeedReproducesEveryDecision) {
  obs::Registry reg_a;
  obs::Registry reg_b;
  sim::FaultInjector a(lossy_plan(0.2, 0.1, 2.0), 99, &reg_a);
  sim::FaultInjector b(lossy_plan(0.2, 0.1, 2.0), 99, &reg_b);
  for (int i = 0; i < 2000; ++i) {
    const sim::FaultDecision da = a.on_link(i % 7, (i + 1) % 7);
    const sim::FaultDecision db = b.on_link(i % 7, (i + 1) % 7);
    ASSERT_EQ(da.dropped, db.dropped) << i;
    ASSERT_EQ(da.copies, db.copies) << i;
    ASSERT_DOUBLE_EQ(da.extra_latency_ms, db.extra_latency_ms) << i;
  }
  EXPECT_EQ(a.dropped(), b.dropped());
  EXPECT_EQ(a.duplicated(), b.duplicated());
  EXPECT_EQ(a.delayed(), b.delayed());
  EXPECT_GT(a.dropped(), 0u);
  EXPECT_GT(a.duplicated(), 0u);
  EXPECT_GT(a.delayed(), 0u);
}

TEST(FaultInjector, ExtremeKnobsBehaveAsSpecified) {
  obs::Registry reg;
  sim::FaultInjector always_drop(lossy_plan(1.0), 1, &reg);
  for (int i = 0; i < 10; ++i) {
    const sim::FaultDecision d = always_drop.on_link(0, 1);
    EXPECT_TRUE(d.dropped);
    EXPECT_EQ(d.copies, 1u);  // the lost copy was still transmitted once
  }
  obs::Registry reg2;
  sim::FaultInjector always_dup(lossy_plan(0.0, 1.0), 1, &reg2);
  for (int i = 0; i < 10; ++i) {
    const sim::FaultDecision d = always_dup.on_link(0, 1);
    EXPECT_FALSE(d.dropped);
    EXPECT_EQ(d.copies, 2u);
  }
}

TEST(FaultInjector, LinkOverridesAreUndirected) {
  sim::FaultPlan plan;  // defaults reliable; one poisoned link
  plan.link_overrides.push_back(
      sim::LinkConditions{2, 3, {.loss = 1.0, .duplicate = 0.0, .jitter_ms = 0.0}});
  obs::Registry reg;
  sim::FaultInjector inj(plan, 7, &reg);
  EXPECT_TRUE(inj.on_link(2, 3).dropped);
  EXPECT_TRUE(inj.on_link(3, 2).dropped);  // normalized (min, max) key
  EXPECT_FALSE(inj.on_link(0, 1).dropped);
  EXPECT_FALSE(inj.on_link(3, 4).dropped);
}

TEST(FaultInjector, OnPathStopsAtFirstDrop) {
  obs::Registry reg;
  sim::FaultInjector inj(lossy_plan(1.0), 5, &reg);
  const sim::PathDecision p = inj.on_path(10);
  EXPECT_TRUE(p.dropped);
  EXPECT_EQ(p.transmissions, 1u);  // legs past the drop are never sent
  obs::Registry reg2;
  sim::FaultInjector reliable(lossy_plan(0.0, 0.0, 0.5), 5, &reg2);
  const sim::PathDecision q = reliable.on_path(10);
  EXPECT_FALSE(q.dropped);
  EXPECT_EQ(q.transmissions, 10u);
  EXPECT_GT(q.extra_latency_ms, 0.0);
}

// -- intradomain wiring ------------------------------------------------------

struct Fix {
  graph::IspTopology topo;
  std::unique_ptr<Network> net;

  explicit Fix(std::uint64_t seed = 17, Config cfg = {}) {
    Rng trng(seed);
    graph::IspParams p;
    p.router_count = 24;
    p.pop_count = 4;
    topo = graph::make_isp_topology(p, trng);
    net = std::make_unique<Network>(&topo, cfg, seed + 1);
  }

  // A real backbone edge to flap.
  [[nodiscard]] std::pair<graph::NodeIndex, graph::NodeIndex> some_edge()
      const {
    for (graph::NodeIndex u = 0; u < topo.graph.node_count(); ++u) {
      for (const graph::Edge& e : topo.graph.neighbors(u)) {
        if (e.to > u) return {u, e.to};
      }
    }
    return {0, 1};
  }
};

TEST(NetworkFaults, InertInjectorIsZeroCost) {
  // An installed injector whose plan has no message faults must leave the
  // run byte-identical to a run with no injector at all (acceptance
  // criterion: one branch on the send path when off).
  Fix plain(21);
  Fix inert(21);
  obs::Registry side_reg;  // NOT the simulator registry: ids must not shift
  sim::FaultInjector inj(sim::FaultPlan{}, 5, &side_reg);
  ASSERT_FALSE(inj.message_faults_enabled());
  inert.net->set_fault_injector(&inj);

  for (int i = 0; i < 25; ++i) {
    (void)plain.net->join_random_host();
    (void)inert.net->join_random_host();
  }
  for (graph::NodeIndex r = 0; r < 24; ++r) {
    for (const auto& [id, host] : plain.net->directory()) {
      EXPECT_EQ(plain.net->route(r, id).delivered,
                inert.net->route(r, id).delivered);
      break;
    }
  }
  EXPECT_EQ(plain.net->simulator().counters().total(),
            inert.net->simulator().counters().total());
  EXPECT_EQ(plain.net->simulator().metrics().to_json(),
            inert.net->simulator().metrics().to_json());
}

TEST(NetworkFaults, LossyControlPlaneRetriesAndConverges) {
  Fix f(31);
  sim::FaultInjector inj(lossy_plan(0.15), 404,
                         &f.net->simulator().metrics());
  f.net->set_fault_injector(&inj);
  int ok = 0;
  for (int i = 0; i < 30; ++i) ok += f.net->join_random_host().ok ? 1 : 0;
  // Retransmission made most joins land despite 15% per-hop loss.
  EXPECT_GT(ok, 20);
  EXPECT_GT(inj.dropped(), 0u);
  EXPECT_GT(inj.retries(), 0u);
  // A retry costs messages and latency: joins are strictly pricier than the
  // fault-free baseline of the same seed.
  Fix base(31);
  EXPECT_GT(f.net->simulator().counters().total(),
            [&] {
              for (int i = 0; i < 30; ++i) (void)base.net->join_random_host();
              return base.net->simulator().counters().total();
            }());
  // Once the loss clears, one repair pass restores the strict ring
  // invariants regardless of what the losses mangled.
  f.net->set_fault_injector(nullptr);
  (void)f.net->repair_partitions();
  std::string err;
  EXPECT_TRUE(f.net->verify_rings(&err, /*strict=*/true)) << err;
}

TEST(NetworkFaults, DataPlaneDropsAreChargedAndRecorded) {
  Fix f(41);
  for (int i = 0; i < 20; ++i) (void)f.net->join_random_host();
  obs::FlightRecorder rec(1 << 12);
  f.net->set_flight_recorder(&rec);
  sim::FaultInjector inj(lossy_plan(0.3), 777, &f.net->simulator().metrics());
  f.net->set_fault_injector(&inj);

  int delivered = 0;
  int attempts = 0;
  for (const auto& [id, host] : f.net->directory()) {
    for (graph::NodeIndex r = 0; r < 24; r += 3) {
      ++attempts;
      delivered += f.net->route(r, id).delivered ? 1 : 0;
    }
  }
  // 30% per-hop loss must lose some packets and deliver others.
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, attempts);
  EXPECT_GT(inj.dropped(), 0u);
  bool saw_fault_drop = false;
  for (const obs::HopRecord& h : rec.all()) {
    if (h.kind == obs::HopKind::kFaultDrop) saw_fault_drop = true;
  }
  EXPECT_TRUE(saw_fault_drop);
}

TEST(NetworkFaults, RedundantLinkFailAndRestoreAreNoOps) {
  // Regression: a scheduled flap and a manual call (or overlapping flap
  // windows) failing the same link twice used to re-flood the LSA and
  // re-invalidate every pointer cache; the second call must now be free.
  Fix f(51);
  for (int i = 0; i < 10; ++i) (void)f.net->join_random_host();
  const auto [u, v] = f.some_edge();

  (void)f.net->fail_link(u, v);
  const std::uint64_t after_first =
      f.net->simulator().counters().get(sim::MsgCategory::kLinkState);
  const auto redundant = f.net->fail_link(u, v);
  EXPECT_EQ(redundant.messages, 0u);
  EXPECT_EQ(redundant.pointers_torn, 0u);
  EXPECT_EQ(f.net->simulator().counters().get(sim::MsgCategory::kLinkState),
            after_first);

  (void)f.net->restore_link(u, v);
  const std::uint64_t after_restore =
      f.net->simulator().counters().get(sim::MsgCategory::kLinkState);
  const auto redundant_up = f.net->restore_link(u, v);
  EXPECT_EQ(redundant_up.messages, 0u);
  EXPECT_EQ(f.net->simulator().counters().get(sim::MsgCategory::kLinkState),
            after_restore);

  std::string err;
  EXPECT_TRUE(f.net->verify_rings(&err, /*strict=*/true)) << err;
}

TEST(NetworkFaults, ScheduledFlapsFireOnceAndHeal) {
  Fix f(61);
  for (int i = 0; i < 15; ++i) (void)f.net->join_random_host();
  const auto [u, v] = f.some_edge();

  sim::FaultPlan plan;  // schedule only; no message faults
  plan.link_flaps.push_back(sim::LinkFlap{u, v, 10.0, 50.0});
  // A second overlapping window for the same link: its down event finds the
  // link already down and must do nothing.
  plan.link_flaps.push_back(sim::LinkFlap{u, v, 20.0, 50.0});
  sim::FaultInjector inj(plan, 9, &f.net->simulator().metrics());
  f.net->set_fault_injector(&inj);
  f.net->schedule_fault_plan(plan);

  f.net->simulator().run_until(30.0);
  EXPECT_FALSE(f.topo.graph.link_up(u, v));
  EXPECT_EQ(inj.flaps(), 1u);  // the overlapping window was a no-op
  f.net->simulator().run_until(100.0);
  EXPECT_TRUE(f.topo.graph.link_up(u, v));

  std::string err;
  EXPECT_TRUE(f.net->verify_rings(&err, /*strict=*/true)) << err;
  for (const auto& [id, host] : f.net->directory()) {
    EXPECT_TRUE(f.net->route(u, id).delivered);
  }
}

TEST(NetworkFaults, CorruptionConvergesAndCountsRejections) {
  // Frame corruption behaves as loss: the CRC check rejects every mangled
  // frame, retry/backoff re-drives the exchange, and the ring converges once
  // faults clear.
  Fix f(83);
  sim::FaultPlan plan = lossy_plan(0.05);
  plan.defaults.corrupt = 0.02;
  sim::FaultInjector inj(plan, 607, &f.net->simulator().metrics());
  ASSERT_TRUE(inj.corruption_enabled());
  f.net->set_fault_injector(&inj);
  int ok = 0;
  for (int i = 0; i < 40; ++i) ok += f.net->join_random_host().ok ? 1 : 0;
  EXPECT_GT(ok, 25);
  EXPECT_GT(inj.corrupted(), 0u);
  f.net->set_fault_injector(nullptr);
  (void)f.net->repair_partitions();
  std::string err;
  EXPECT_TRUE(f.net->verify_rings(&err, /*strict=*/true)) << err;
}

TEST(NetworkFaults, ChurnUnderCorruptionIsDeterministicAndConverges) {
  // The acceptance gate for the wire-first refactor: 5% loss plus 1e-3
  // frame corruption, full churn schedule, and two same-seed runs must
  // produce byte-identical digests and metrics snapshots.
  audit::ChurnConfig cc;
  cc.events = 120;
  cc.end_ms = 240.0;
  audit::ChurnRunParams params;
  params.router_count = 40;
  params.pop_count = 6;
  params.initial_hosts = 32;
  params.seed = 11;
  params.use_faults = true;
  params.faults.defaults.loss = 0.05;
  params.faults.defaults.corrupt = 1e-3;
  const auto schedule = audit::make_churn_schedule(cc, params.seed);
  const audit::ChurnRunResult a = audit::run_churn(params, schedule);
  const audit::ChurnRunResult b = audit::run_churn(params, schedule);
  EXPECT_TRUE(a.converged) << a.err;
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.hard, 0u);
}

TEST(NetworkFaults, CrashWindowRunsFailAndRestore) {
  Fix f(71);
  for (int i = 0; i < 15; ++i) (void)f.net->join_random_host();

  sim::FaultPlan plan;
  plan.crash_windows.push_back(sim::CrashWindow{3, 5.0, 40.0});
  sim::FaultInjector inj(plan, 9, &f.net->simulator().metrics());
  f.net->set_fault_injector(&inj);
  f.net->schedule_fault_plan(plan);

  f.net->simulator().run_until(20.0);
  EXPECT_FALSE(f.topo.graph.node_up(3));
  EXPECT_EQ(inj.crashes(), 1u);
  f.net->simulator().run_until(60.0);
  EXPECT_TRUE(f.topo.graph.node_up(3));
  std::string err;
  EXPECT_TRUE(f.net->verify_rings(&err, /*strict=*/true)) << err;
}

}  // namespace
}  // namespace rofl
