#include "rofl/session.hpp"

namespace rofl::intra {

SessionManager::SessionManager(Network& net, SessionConfig cfg)
    : net_(&net), cfg_(cfg) {
  obs::Registry& m = net_->simulator().metrics();
  keepalives_id_ = m.counter("session.keepalives");
  timeouts_id_ = m.counter("session.timeouts");
}

void SessionManager::track(const NodeId& id, std::function<bool()> alive) {
  auto [it, inserted] =
      sessions_.insert_or_assign(id, Session{std::move(alive), 0, 0});
  if (!inserted) ++it->second.epoch;
  schedule_tick(id, it->second.epoch);
}

void SessionManager::untrack(const NodeId& id) { sessions_.erase(id); }

void SessionManager::schedule_tick(const NodeId& id, std::uint64_t epoch) {
  net_->simulator().schedule_in(
      cfg_.keepalive_interval_ms,
      [this, id, epoch] { tick(id, epoch); });
}

void SessionManager::tick(const NodeId& id, std::uint64_t epoch) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second.epoch != epoch) return;
  Session& s = it->second;
  if (s.alive()) {
    // The host emits a keepalive over its access link.
    wire::Packet ka;
    ka.type = wire::PacketType::kKeepalive;
    ka.source = id;
    ka.destination = id;  // to the gateway's session state for this ID
    net_->simulator().counters().add(sim::MsgCategory::kControl,
                                     ka.fragments());
    ++keepalives_;
    net_->simulator().metrics().add(keepalives_id_);
    s.missed = 0;
    schedule_tick(id, epoch);
    return;
  }
  if (++s.missed >= cfg_.miss_limit) {
    // Session timeout: the gateway runs the section-3.2 host-failure
    // machinery (teardowns + directed flood).
    ++timeouts_;
    net_->simulator().metrics().add(timeouts_id_);
    sessions_.erase(it);
    (void)net_->fail_host(id);
    return;
  }
  schedule_tick(id, epoch);
}

}  // namespace rofl::intra
