// ring.hpp -- pure ring-geometry decisions shared by every ROFL substrate.
//
// The paper's protocol is a handful of interval predicates over the flat
// label ring (sections 2.2 and 4): who is the predecessor of an id, whether
// a splice between two pointers is still valid, whether a notify may replace
// a predecessor pointer, what a departing node's neighbors must relink to.
// The discrete-event simulator (intra::Network), the sharded engine, and the
// live mesh (net::LiveRouter over proto::Core) all make these decisions --
// and they must make them *identically*, or the cross-substrate equivalence
// contract (same joins, same bytes, same ring) silently decays.
//
// Everything here is a pure function of NodeIds and caller-supplied state
// views: no I/O, no clocks, no RNG, no metrics.  Effects (frames, timers,
// state writes) belong to proto::Core and the drivers; decisions belong
// here.  DESIGN.md section 17 documents the layering.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/node_id.hpp"
#include "wire/messages.hpp"

namespace rofl::proto {

/// True when `pred` owns the arc ending at its successor `succ` that
/// contains `target`: target in (pred, succ] clockwise.  This single
/// predicate terminates the greedy locate walk on every substrate
/// (Algorithm 2's stopping rule) and validates a splice before it happens.
[[nodiscard]] inline bool is_predecessor_of(const NodeId& pred,
                                            const NodeId& target,
                                            const NodeId& succ) {
  return NodeId::in_interval_oc(pred, target, succ);
}

/// Chord-style notify rule: a candidate may replace `self`'s current
/// predecessor pointer only when it is strictly closer (cur_pred, candidate,
/// self) -- or when the pointer is still the fresh-seed self-loop, which
/// accepts anything.  Stale (reordered or delayed) installs therefore can
/// never regress a pointer.
[[nodiscard]] inline bool accept_notify(const NodeId& self,
                                        const NodeId& cur_pred,
                                        const NodeId& candidate) {
  return cur_pred == self || NodeId::in_interval_oo(cur_pred, candidate, self);
}

/// The locally best predecessor candidate for `target`: among [first, last),
/// the element whose projected id has the smallest nonzero clockwise
/// distance to target (an id is never its own predecessor).  Returns `last`
/// when the only id present is the target itself (or the range is empty).
/// Distance from a fixed target is injective, so the minimum -- and the
/// returned element -- is unique regardless of iteration order.
template <class It, class Proj>
[[nodiscard]] It closest_predecessor(It first, It last, const NodeId& target,
                                     Proj&& id_of) {
  It best = last;
  NodeId best_d;
  for (It it = first; it != last; ++it) {
    const NodeId& id = id_of(*it);
    if (id == target) continue;
    const NodeId d = NodeId::distance_cw(id, target);
    if (best == last || d < best_d) {
      best = it;
      best_d = d;
    }
  }
  return best;
}

/// One ring neighbor as every substrate names it: an id plus the router
/// (owner / hosting index) it lives at.
struct RingPtr {
  NodeId id;
  std::uint32_t owner = 0;
};

/// Builds the JoinReply a predecessor sends when admitting `joiner` between
/// itself and its successor group: the group minus the joiner itself, with
/// the singleton-ring fallback (the predecessor is then also the successor).
/// intra::Network::splice_in and proto::Core's join-request handler both
/// construct their replies here, so a gateway adopts the identical
/// neighborhood no matter which substrate spliced it in.
[[nodiscard]] inline wire::msg::JoinReply make_join_reply(
    const NodeId& pred_id, std::uint32_t pred_owner,
    std::span<const RingPtr> group, const NodeId& joiner) {
  wire::msg::JoinReply reply;
  reply.predecessor = pred_id;
  reply.predecessor_host = pred_owner;
  for (const RingPtr& s : group) {
    if (s.id != joiner) {
      reply.successors.push_back(wire::FingerField{s.id, s.owner});
    }
  }
  if (reply.successors.empty()) {
    reply.successors.push_back(wire::FingerField{pred_id, pred_owner});
  }
  return reply;
}

/// One surviving-boundary relink a clean departure must install: the
/// surviving successor's predecessor pointer and the surviving predecessor's
/// successor pointer both jump over the departing run.
struct LeaveRelink {
  RingPtr succ;  ///< first surviving id clockwise of the departing run
  RingPtr pred;  ///< last surviving id counter-clockwise of the run
};

/// Computes the relinks for a router departing with its whole resident id
/// set at once.  Consecutive resident ids collapse into one run: only the
/// boundaries where a pointer crosses into surviving territory produce a
/// relink.  Returns empty when no survivor exists (the departing router owns
/// the entire ring -- nothing left to repair).
///
/// `Map` is an associative NodeId -> vnode container whose mapped type
/// exposes `pred` / `pred_owner` / `succ` / `succ_owner` (proto::Vnode).
template <class Map>
[[nodiscard]] std::vector<LeaveRelink> compute_leave_relinks(const Map& vnodes) {
  std::vector<LeaveRelink> out;
  for (const auto& [id, v] : vnodes) {
    if (vnodes.contains(v.succ)) continue;  // interior of a departing run
    // `v` ends a run; walk the predecessor chain back through resident ids
    // to the run's other boundary.  Bounded by the resident count -- a fully
    // resident ring re-enters the contains() branch above and never gets
    // here.
    const auto* cur = &v;
    for (std::size_t guard = 0; guard <= vnodes.size(); ++guard) {
      const auto it = vnodes.find(cur->pred);
      if (it == vnodes.end()) break;
      cur = &it->second;
    }
    out.push_back(LeaveRelink{{v.succ, v.succ_owner}, {cur->pred, cur->pred_owner}});
  }
  return out;
}

}  // namespace rofl::proto
