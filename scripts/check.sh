#!/usr/bin/env bash
# Full verification: release build + tests, ASan+UBSan build + tests, and a
# bench smoke run that emits BENCH_datapath.json.  Set ROFL_CHECK_FULL=1 to
# also run every figure bench at full length (slow).
set -euo pipefail
cd "$(dirname "$0")/.."

# Use whatever generator the existing build trees were configured with;
# default to the CMake default on fresh checkouts.
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer"
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j

# Datapath bench smoke: short run, but long enough for stable ns/op, and it
# exercises the JSON trajectory plumbing end to end.
python3 scripts/bench_trajectory.py run --min-time 0.05

if [ "${ROFL_CHECK_FULL:-0}" = "1" ]; then
  for b in build/bench/*; do
    if [ -x "$b" ] && [ "$(basename "$b")" != "micro_datapath" ]; then
      "$b"
    fi
  done
fi
