#include "rofl/pointer_cache.hpp"

#include <gtest/gtest.h>

namespace rofl::intra {
namespace {

NodeId id(std::uint64_t v) { return NodeId::from_u64(v); }

TEST(PointerCache, InsertAndFind) {
  PointerCache pc(4);
  pc.insert(id(10), 1, {0, 1});
  const CacheEntry* e = pc.find(id(10));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->host, 1u);
  EXPECT_EQ(pc.size(), 1u);
}

TEST(PointerCache, ZeroCapacityDisablesCaching) {
  PointerCache pc(0);
  pc.insert(id(10), 1, {});
  EXPECT_EQ(pc.size(), 0u);
  EXPECT_EQ(pc.best_match(id(10)), nullptr);
}

TEST(PointerCache, BestMatchClosestWithoutOvershoot) {
  PointerCache pc(8);
  pc.insert(id(10), 1, {});
  pc.insert(id(50), 2, {});
  pc.insert(id(90), 3, {});
  // dest 60: closest not past it is 50.
  const CacheEntry* e = pc.best_match(id(60));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->id, id(50));
  // dest 95: 90 wins.
  EXPECT_EQ(pc.best_match(id(95))->id, id(90));
  // exact hit.
  EXPECT_EQ(pc.best_match(id(50))->id, id(50));
}

TEST(PointerCache, BestMatchWrapsRing) {
  PointerCache pc(8);
  pc.insert(id(100), 1, {});
  // dest 5 is "before" all entries; the wrap-around pick is the numerically
  // largest entry (closest clockwise predecessor of 5 on the ring).
  const CacheEntry* e = pc.best_match(id(5));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->id, id(100));
}

TEST(PointerCache, LruEvictionKeepsRecentlyUsed) {
  PointerCache pc(2);
  pc.insert(id(1), 1, {});
  pc.insert(id(2), 2, {});
  // Touch id(1) so id(2) is the LRU.
  (void)pc.best_match(id(1));
  pc.insert(id(3), 3, {});
  EXPECT_NE(pc.find(id(1)), nullptr);
  EXPECT_EQ(pc.find(id(2)), nullptr);
  EXPECT_NE(pc.find(id(3)), nullptr);
}

TEST(PointerCache, ReinsertRefreshesEntry) {
  PointerCache pc(4);
  pc.insert(id(1), 1, {0, 1});
  pc.insert(id(1), 2, {0, 2});
  EXPECT_EQ(pc.size(), 1u);
  EXPECT_EQ(pc.find(id(1))->host, 2u);
}

TEST(PointerCache, EraseRemoves) {
  PointerCache pc(4);
  pc.insert(id(1), 1, {});
  pc.erase(id(1));
  EXPECT_EQ(pc.size(), 0u);
  EXPECT_EQ(pc.find(id(1)), nullptr);
  pc.erase(id(1));  // idempotent
}

TEST(PointerCache, InvalidateThroughRouter) {
  PointerCache pc(8);
  pc.insert(id(1), 5, {0, 3, 5});
  pc.insert(id(2), 6, {0, 4, 6});
  pc.invalidate_through_router(3);
  EXPECT_EQ(pc.find(id(1)), nullptr);
  EXPECT_NE(pc.find(id(2)), nullptr);
}

TEST(PointerCache, InvalidateThroughLinkEitherDirection) {
  PointerCache pc(8);
  pc.insert(id(1), 5, {0, 3, 5});
  pc.insert(id(2), 6, {5, 3, 0});  // same link, reversed
  pc.insert(id(3), 7, {0, 4, 7});
  pc.invalidate_through_link(3, 5);
  EXPECT_EQ(pc.find(id(1)), nullptr);
  EXPECT_EQ(pc.find(id(2)), nullptr);
  EXPECT_NE(pc.find(id(3)), nullptr);
}

TEST(PointerCache, ShrinkCapacityEvicts) {
  PointerCache pc(4);
  for (std::uint64_t i = 0; i < 4; ++i) pc.insert(id(i), 1, {});
  pc.set_capacity(2);
  EXPECT_EQ(pc.size(), 2u);
  EXPECT_EQ(pc.capacity(), 2u);
}

TEST(PointerCache, HitMissAccounting) {
  PointerCache pc(4);
  EXPECT_EQ(pc.best_match(id(1)), nullptr);
  EXPECT_EQ(pc.misses(), 1u);
  pc.insert(id(1), 1, {});
  (void)pc.best_match(id(1));
  EXPECT_EQ(pc.hits(), 1u);
}

TEST(PointerCache, LruChainSurvivesInsertTouchEvictHammer) {
  // Regression for the old two-map (tick->id / id->tick) bookkeeping, whose
  // halves could desynchronize: hammer insert/touch/evict/erase cycles and
  // check the slab, sorted index, and intrusive LRU chain agree after every
  // mutation.
  PointerCache pc(16);
  std::uint64_t x = 42;
  const auto next = [&x] {  // xorshift; deterministic and seedless
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (int iter = 0; iter < 5000; ++iter) {
    const NodeId key = id(next() % 64);
    switch (next() % 4) {
      case 0:
        pc.insert(key, static_cast<NodeIndex>(next() % 8), {0, 1});
        break;
      case 1:
        (void)pc.best_match(key);  // touch
        break;
      case 2:
        pc.erase(key);
        break;
      case 3:
        (void)pc.find(key);  // must not disturb LRU state
        break;
    }
    ASSERT_TRUE(pc.invariants_ok()) << "iteration " << iter;
    ASSERT_LE(pc.size(), pc.capacity());
  }
  // Capacity churn exercises eviction from both full and shrunken states.
  pc.set_capacity(4);
  ASSERT_TRUE(pc.invariants_ok());
  ASSERT_LE(pc.size(), 4u);
  pc.set_capacity(16);
  for (std::uint64_t i = 0; i < 64; ++i) {
    pc.insert(id(1000 + i), 1, {0, 1});
    ASSERT_TRUE(pc.invariants_ok());
  }
  EXPECT_EQ(pc.size(), 16u);
}

TEST(PointerCache, EvictionOrderIsExactLru) {
  PointerCache pc(3);
  pc.insert(id(1), 1, {});
  pc.insert(id(2), 2, {});
  pc.insert(id(3), 3, {});
  // Recency now 3 > 2 > 1.  Touch 1 via exact best_match, then 2: 2 > 1 > 3.
  (void)pc.best_match(id(1));
  (void)pc.best_match(id(2));
  pc.insert(id(4), 4, {});  // evicts 3
  EXPECT_EQ(pc.find(id(3)), nullptr);
  pc.insert(id(5), 5, {});  // evicts 1 (oldest surviving)
  EXPECT_EQ(pc.find(id(1)), nullptr);
  EXPECT_NE(pc.find(id(2)), nullptr);
  EXPECT_NE(pc.find(id(4)), nullptr);
  EXPECT_NE(pc.find(id(5)), nullptr);
  EXPECT_TRUE(pc.invariants_ok());
}

TEST(PointerCache, RefreshDoesNotGrowOrLeakSlots) {
  PointerCache pc(4);
  for (int i = 0; i < 100; ++i) {
    pc.insert(id(7), static_cast<NodeIndex>(i), {0, 1});
    ASSERT_EQ(pc.size(), 1u);
    ASSERT_TRUE(pc.invariants_ok());
  }
  EXPECT_EQ(pc.find(id(7))->host, 99u);
}

TEST(PointerCache, ForEachVisitsAscendingIdOrder) {
  PointerCache pc(8);
  pc.insert(id(30), 1, {});
  pc.insert(id(10), 2, {});
  pc.insert(id(20), 3, {});
  std::vector<NodeId> seen;
  pc.for_each([&](const CacheEntry& e) { seen.push_back(e.id); });
  EXPECT_EQ(seen, (std::vector<NodeId>{id(10), id(20), id(30)}));
}

TEST(PointerCache, ClearEmptiesEverything) {
  PointerCache pc(4);
  pc.insert(id(1), 1, {});
  pc.insert(id(2), 2, {});
  pc.clear();
  EXPECT_EQ(pc.size(), 0u);
  pc.insert(id(3), 3, {});  // still usable
  EXPECT_EQ(pc.size(), 1u);
}

TEST(PointerCache, StaleDropsCountedSeparatelyFromEvictions) {
  // Regression for the accounting split: evictions() counts only LRU
  // capacity victims; every staleness removal (erase, the invalidate
  // sweeps, clear) lands in stale_drops() instead.
  PointerCache pc(2);
  pc.insert(id(1), 1, {0, 1});
  pc.insert(id(2), 2, {0, 2});
  pc.erase(id(1));
  EXPECT_EQ(pc.stale_drops(), 1u);
  EXPECT_EQ(pc.evictions(), 0u);
  pc.erase(id(99));  // absent: no count
  EXPECT_EQ(pc.stale_drops(), 1u);

  // Capacity pressure: pure eviction, no stale drop.
  pc.insert(id(3), 3, {0, 3});
  pc.insert(id(4), 4, {0, 4});
  EXPECT_EQ(pc.evictions(), 1u);
  EXPECT_EQ(pc.stale_drops(), 1u);

  // Invalidation sweeps route through erase and count as stale drops.
  pc.invalidate_through_router(3);  // kills id(3)'s route {0, 3}
  EXPECT_EQ(pc.stale_drops(), 2u);
  pc.invalidate_through_link(0, 4);  // kills id(4)'s route {0, 4}
  EXPECT_EQ(pc.stale_drops(), 3u);
  EXPECT_EQ(pc.evictions(), 1u);

  pc.insert(id(5), 5, {});
  pc.insert(id(6), 6, {});
  pc.clear();
  EXPECT_EQ(pc.stale_drops(), 5u);
  EXPECT_EQ(pc.evictions(), 1u);
  EXPECT_TRUE(pc.invariants_ok());
}

}  // namespace
}  // namespace rofl::intra
