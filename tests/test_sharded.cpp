#include "sim/sharded.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "audit/shard_audit.hpp"
#include "interdomain/shard_model.hpp"
#include "util/spsc_queue.hpp"

namespace rofl {
namespace {

TEST(SpscQueue, FifoAndBounds) {
  util::SpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  int out = 0;
  EXPECT_FALSE(q.pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_FALSE(q.push(99));  // full
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.pop(out));
  // Wraparound: the free-running indices must keep masking correctly.
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(q.push(round));
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, round);
  }
}

TEST(BalancedShardMap, CoversAndBalances) {
  const std::vector<std::uint64_t> weights = {100, 1, 1, 1, 50, 49, 1, 1};
  const auto map = sim::balanced_shard_map(weights, 2);
  ASSERT_EQ(map.size(), weights.size());
  std::vector<std::uint64_t> load(2, 0);
  for (std::size_t e = 0; e < map.size(); ++e) {
    ASSERT_LT(map[e], 2u);
    load[map[e]] += weights[e];
  }
  // Greedy largest-first keeps the heavy entity alone-ish: both shards get
  // close to half the total weight (204/2 = 102).
  EXPECT_LE(load[0] > load[1] ? load[0] - load[1] : load[1] - load[0], 10u);
  // Deterministic: same inputs, same map.
  EXPECT_EQ(sim::balanced_shard_map(weights, 2), map);
}

TEST(ShardedSimulator, MergedResultsIndependentOfShardCount) {
  // A toy model exercising the engine directly: every entity forwards a hop
  // counter to an rng-chosen peer until a TTL runs out, counting hops and
  // observing per-hop timestamps.  Any shard-count dependence in ordering or
  // rng-stream assignment shows up as diverging metrics.
  constexpr sim::EntityId kEntities = 17;
  struct Snapshot {
    std::string metrics;
    std::uint64_t processed = 0;
    std::uint64_t entity_msgs = 0;
  };
  const auto run_with = [&](std::uint32_t shards) {
    sim::ShardedSimulator::Config cfg;
    cfg.shards = shards;
    cfg.lookahead_ms = 0.5;
    cfg.seed = 42;
    std::vector<std::uint32_t> map(kEntities);
    for (sim::EntityId e = 0; e < kEntities; ++e) map[e] = e % shards;
    sim::ShardedSimulator eng(map, cfg);
    obs::MetricId hops{}, times{};
    eng.set_registry_init([&](obs::Registry& r) {
      hops = r.counter("toy.hops");
      times = r.histogram("toy.when",
                          obs::Histogram::linear_bounds(0.0, 4.0, 16));
    });
    eng.set_handler([&](sim::ShardContext& ctx, const sim::ShardEvent& ev) {
      std::uint32_t ttl = 0;
      std::memcpy(&ttl, ev.payload.data(), sizeof ttl);
      ctx.metrics().add(hops, 1);
      ctx.metrics().observe(times, ev.when);  // integral-ish sample: exact sum
      if (ttl == 0) return;
      const std::uint32_t next_ttl = ttl - 1;
      const auto dst = static_cast<sim::EntityId>(
          ctx.rng().below(kEntities));
      const double delay =
          0.5 * (1.0 + static_cast<double>(ctx.rng().below(4)));
      ctx.send(dst, delay, 1, &next_ttl, sizeof next_ttl);
    });
    for (sim::EntityId e = 0; e < kEntities; ++e) {
      const std::uint32_t ttl = 12;
      eng.seed_event(0.25 * e, e, 1, &ttl, sizeof ttl);
    }
    const auto stats = eng.run();
    return Snapshot{eng.merged_metrics().to_json(2), stats.processed,
                    stats.entity_msgs};
  };

  const Snapshot one = run_with(1);
  for (const std::uint32_t shards : {2u, 3u, 5u}) {
    const Snapshot s = run_with(shards);
    EXPECT_EQ(s.metrics, one.metrics) << "shards=" << shards;
    EXPECT_EQ(s.processed, one.processed) << "shards=" << shards;
    EXPECT_EQ(s.entity_msgs, one.entity_msgs) << "shards=" << shards;
  }
}

inter::ScaleParams small_params(std::uint32_t shards) {
  inter::ScaleParams p;
  p.topo.tier1_count = 4;
  p.topo.tier2_count = 10;
  p.topo.tier3_count = 30;
  p.topo.stub_count = 160;
  p.hosts = 2'000;
  p.duration_ms = 300.0;
  p.shards = shards;
  p.seed = 7;
  p.trace_sample = 4;  // small enough that traces actually fire
  return p;
}

// The acceptance gate from ISSUE 6, as a ctest: same seed at shard counts
// {1, 2, 3} must produce bit-identical merged metrics, flight-recorder
// digests, and shard-audit reports -- and the audit must be clean.
TEST(ShardScaleModel, ShardCountInvarianceAndCleanAudit) {
  struct Snapshot {
    std::string metrics;
    std::uint64_t flight = 0;
    std::string audit;
    bool clean = false;
    std::uint64_t events = 0;
  };
  const auto run_with = [](std::uint32_t shards) {
    inter::ShardScaleModel model(small_params(shards));
    const auto stats = model.run();
    const audit::ShardAuditReport rep = audit::audit_scale_run(model);
    return Snapshot{model.merged_metrics().to_json(2), model.flight_digest(),
                    rep.digest(), rep.clean(), stats.processed};
  };

  const Snapshot one = run_with(1);
  EXPECT_TRUE(one.clean) << "1-shard audit not clean";
  EXPECT_NE(one.flight, 0u) << "trace sampling never fired";
  EXPECT_GT(one.events, 1'000u);
  for (const std::uint32_t shards : {2u, 3u}) {
    const Snapshot s = run_with(shards);
    EXPECT_TRUE(s.clean) << "shards=" << shards;
    EXPECT_EQ(s.metrics, one.metrics) << "shards=" << shards;
    EXPECT_EQ(s.flight, one.flight) << "shards=" << shards;
    EXPECT_EQ(s.audit, one.audit) << "shards=" << shards;
    EXPECT_EQ(s.events, one.events) << "shards=" << shards;
  }
}

// Lookahead violations must be caught, not silently reordered: a cross-
// entity send below the conservative bound dies in debug builds and the
// run stats expose the observed minimum for the auditor in release.
TEST(ShardScaleModel, RunStatsExposeLookaheadBound) {
  inter::ShardScaleModel model(small_params(2));
  (void)model.run();
  const auto& stats = model.engine().stats();
  EXPECT_TRUE(stats.monotone);
  EXPECT_GE(stats.min_cross_delay_ms,
            model.params().lookahead_ms - 1e-9);
}

}  // namespace
}  // namespace rofl
