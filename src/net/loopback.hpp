// loopback.hpp -- in-process Transport backend.
//
// The in-sim delivery path: a LoopbackHub holds one datagram queue per
// router, and LoopbackTransport::raw_send appends to the destination's queue
// directly.  Everything runs on whichever thread drives the routers (the
// mesh driver single-threads a round-robin loop over them), time is a
// virtual millisecond clock the driver advances, and the token bucket
// "waits" by advancing that clock -- so a loopback run is exactly as
// deterministic as the discrete-event simulator, which is what lets the
// byte-accounting parity gate (section 6.3: 1638 bytes per 256-finger join)
// compare the two paths bit for bit.
//
// The hub still takes a mutex per queue: tests exercise transports from more
// than one thread, and the cost is irrelevant at loopback rates.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"

namespace rofl::net {

/// Shared mailbox set: one FIFO of raw datagrams per router id.
class LoopbackHub {
 public:
  void deliver(RouterId dst, std::vector<std::uint8_t> datagram) {
    Box& box = *box_for(dst);
    const std::lock_guard<std::mutex> lk(box.mu);
    box.q.push_back(std::move(datagram));
  }

  bool take(RouterId dst, std::vector<std::uint8_t>& out) {
    Box& box = *box_for(dst);
    const std::lock_guard<std::mutex> lk(box.mu);
    if (box.q.empty()) return false;
    out = std::move(box.q.front());
    box.q.pop_front();
    return true;
  }

 private:
  struct Box {
    std::mutex mu;
    std::deque<std::vector<std::uint8_t>> q;
  };

  Box* box_for(RouterId id) {
    const std::lock_guard<std::mutex> lk(mu_);
    std::unique_ptr<Box>& b = boxes_[id];
    if (b == nullptr) b = std::make_unique<Box>();
    return b.get();
  }

  std::mutex mu_;
  std::unordered_map<RouterId, std::unique_ptr<Box>> boxes_;
};

class LoopbackTransport final : public Transport {
 public:
  /// `hub` must outlive the transport.
  LoopbackTransport(RouterId self, LoopbackHub* hub)
      : Transport(self), hub_(hub) {}

  bool poll(RxFrame& out) override {
    std::vector<std::uint8_t> datagram;
    while (hub_->take(self(), datagram)) {
      if (ingest(datagram, out)) return true;
    }
    return false;
  }

 private:
  void raw_send(RouterId dst, std::vector<std::uint8_t> datagram) override {
    hub_->deliver(dst, std::move(datagram));
  }

  double throttle_wait(double now_ms, double wait_ms) override {
    // Virtual time: waiting is just pretending the clock advanced.
    return now_ms + wait_ms;
  }

  LoopbackHub* hub_;
};

}  // namespace rofl::net
