// network.hpp -- the intradomain ROFL protocol engine (sections 2.2 and 3).
//
// A Network owns one ISP's routers, the OSPF-like link-state substrate, and
// the discrete-event simulator, and executes the ROFL control plane over
// them:
//
//   * bootstrap       -- every router spawns a default virtual node holding
//                        its router-ID; the router-ID ring provides default
//                        routes and join bootstrapping (section 3.1);
//   * join_host       -- Algorithm 1: authenticate the self-certified ID,
//                        greedily locate the predecessor, splice the new
//                        virtual node into the ring, update the k-deep
//                        successor groups, and cache pointers along control
//                        paths;
//   * route           -- Algorithm 2: per-router greedy forwarding over
//                        resident virtual nodes and pointer caches;
//   * fail_host       -- session timeout; teardown messages to successors /
//                        predecessors plus the directed flood that clears
//                        cached state (section 3.2, "Host failure");
//   * fail_router     -- LSA-driven pointer invalidation, deterministic
//                        failover of resident IDs, ring repair (section 3.2,
//                        "Router failure");
//   * fail/restore_link and repair_partitions -- local successor shifting
//                        plus the zero-ID merge protocol (section 3.2,
//                        "Link failure, partition").
//
// Message accounting: every logical protocol message between routers A and B
// is charged one network-level packet per physical hop of the IGP path A->B,
// which is exactly how the paper's join/recovery overhead figures count
// packets.  Latencies sum link propagation delays; messages documented as
// parallel in the paper (the post-locate pointer installs) contribute their
// maximum rather than their sum to join latency.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/isp_topology.hpp"
#include "linkstate/link_state.hpp"
#include "obs/flight_recorder.hpp"
#include "rofl/router.hpp"
#include "rofl/types.hpp"
#include "rofl/zero_id.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "wire/messages.hpp"

namespace rofl::intra {

struct Config {
  /// Successor-group depth (section 2.2 "successor-groups").
  std::size_t successor_group = 4;
  /// Pointer-cache capacity per router, in entries (figure 6a sweeps this).
  std::size_t cache_capacity = 2048;
  /// Cache destination IDs carried by control messages at routers they
  /// traverse (section 3.1).  The paper's runs fill caches only from control
  /// packets.
  bool cache_control_paths = true;
  /// Also snoop data-packet headers into caches at traversed routers -- the
  /// knob the paper explicitly leaves OFF ("we do not snoop on data packet
  /// headers for filling caches", section 6.1); provided for the ablation.
  bool cache_data_paths = false;
  /// Charge the router-ID bootstrap flood to the counters (the paper treats
  /// router bring-up as infrastructure cost and excludes it).
  bool count_bootstrap = false;
  /// Sybil damage control (section 2.1): an AS-level audit cap on the number
  /// of IDs any one router may host.  0 = unlimited.  Joins beyond the cap
  /// are refused at the gateway.
  std::size_t max_resident_ids_per_router = 0;
  /// Label-switched fast path (DESIGN.md section 15): when a route over a
  /// pointer path completes without resets, install per-hop labels along it
  /// so later packets of the flow forward by array index instead of greedy
  /// best-match.  Labels change cost, never paths: labels-on and labels-off
  /// runs deliver byte-identical route outcomes.  Ignored (no installs) when
  /// cache_data_paths is on -- snooping mutates caches at delivery, which a
  /// labeled replay would skip.
  bool enable_labels = false;
  /// Forwarding loop guard.
  std::uint32_t max_forwarding_hops = 100'000;
  /// Worker threads for the all-routers SPF recomputation that follows a
  /// topology change (linkstate::LinkStateMap::recompute_all_spf).  The
  /// result is byte-identical for any value; nullopt picks a machine-sized
  /// default, 0 forces the serial reference path.
  std::optional<std::size_t> spf_threads;
  /// Retransmission policy for control-plane exchanges (join, pointer
  /// setup, teardown walks, repair) when a FaultInjector makes the network
  /// lossy.  With no injector installed the first attempt always succeeds
  /// and the policy is never consulted.
  sim::RetryPolicy retry;
};

class Network {
 public:
  /// Builds routers (with fresh self-certified identities) over `topo` and
  /// bootstraps the router-ID ring.  `topo` must outlive the network.
  Network(const graph::IspTopology* topo, Config cfg, std::uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] const graph::IspTopology& topology() const { return *topo_; }
  [[nodiscard]] std::size_t router_count() const { return routers_.size(); }
  [[nodiscard]] Router& router(NodeIndex i) { return *routers_[i]; }
  [[nodiscard]] const Router& router(NodeIndex i) const { return *routers_[i]; }
  [[nodiscard]] linkstate::LinkStateMap& map() { return *map_; }
  [[nodiscard]] const linkstate::LinkStateMap& map() const { return *map_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

  // -- host lifecycle -------------------------------------------------------
  /// Algorithm 1.  Authenticates `ident` against a fresh nonce, spawns the
  /// virtual node at `gateway` and splices it into the ring.  Ephemeral
  /// hosts only install a backpointer at their predecessor (section 2.2).
  JoinStats join_host(const Identity& ident, NodeIndex gateway,
                      HostClass host_class = HostClass::kStable);

  /// Generates a fresh identity and joins it at a uniformly random gateway.
  JoinStats join_random_host(HostClass host_class = HostClass::kStable);

  /// Joins an ID that is not derived from a per-host key pair -- the hook
  /// behind anycast and multicast, where "an ID can be held by multiple
  /// boxes" (section 2.1).  The caller is responsible for authenticating
  /// group membership (e.g. a shared group key; see ext/anycast).  Group
  /// IDs are not rejoined automatically on router failure.
  JoinStats join_group_id(const NodeId& id, const PublicKey& pub,
                          NodeIndex gateway,
                          HostClass host_class = HostClass::kStable);

  /// Ungraceful host death: session timeout at the gateway, teardowns to the
  /// ring neighbors, directed flood over the cached-state router set.
  RepairStats fail_host(const NodeId& id);

  /// Graceful leave: same ring splice-out; the departing host also issues
  /// the directed cache-purge flood over its control path, so no router is
  /// left holding a pointer to the departed ID.
  RepairStats leave_host(const NodeId& id);

  // -- failures -------------------------------------------------------------
  /// Router crash: floods the LSA, invalidates caches, relinks the ring
  /// around every ID the router hosted or pointed at, and rejoins the failed
  /// router's resident host IDs at their deterministic failover router
  /// (next live router in index order).
  RepairStats fail_router(NodeIndex r);

  /// Brings a crashed router back with a fresh default vnode.
  RepairStats restore_router(NodeIndex r);

  /// Link failure.  Without a partition only caches are touched; with a
  /// partition each side repairs into its own consistent ring.
  RepairStats fail_link(NodeIndex u, NodeIndex v);
  RepairStats restore_link(NodeIndex u, NodeIndex v);

  /// The zero-ID convergence pass (section 3.2): inspects current
  /// connectivity, tears down pointers that cross dead paths, repairs each
  /// component's ring locally, and -- where components have re-merged at the
  /// network layer -- merges their rings back into one.  Idempotent; returns
  /// the message cost.  fail_link/restore_link call this automatically.
  RepairStats repair_partitions();

  // -- data plane -----------------------------------------------------------
  /// Algorithm 2 forwarding from `src_router` toward flat label `dest`.
  /// With a flight recorder installed, every forwarding decision is recorded
  /// under `trace_id` (0 = allocate a fresh id); the id used lands in
  /// RouteStats::trace_id.
  RouteStats route(NodeIndex src_router, const NodeId& dest,
                   std::uint64_t trace_id = 0);

  // -- observability --------------------------------------------------------
  /// Installs (or removes, with nullptr) the per-packet hop recorder.  The
  /// recorder must outlive the network; it may be shared with other engines
  /// so trace ids stay globally unique.  Forwarding cost when absent is one
  /// null check per decision.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }
  [[nodiscard]] obs::FlightRecorder* flight_recorder() const {
    return recorder_;
  }

  // -- fault injection ------------------------------------------------------
  /// Installs (or removes, with nullptr) the unreliable-network model.  The
  /// injector must outlive its installation and should draw on the same
  /// metrics registry as the simulator so `faults.*` counters land in the
  /// run's snapshot.  With no injector installed every send path reduces to
  /// one null check and behaves exactly as before.
  void set_fault_injector(sim::FaultInjector* injector) { faults_ = injector; }
  [[nodiscard]] sim::FaultInjector* fault_injector() const { return faults_; }

  // -- sharded execution ----------------------------------------------------
  /// Declares which shard each router belongs to (sim::balanced_shard_map
  /// output; empty = unsharded).  Control exchanges whose endpoints live on
  /// different shards are then counted on "shards.cross_msgs" /
  /// "shards.cross_bytes" -- the wire volume that would cross SPSC channels
  /// when this topology runs under the sharded simulator, and the number the
  /// partition heuristic is judged by.
  void set_shard_map(std::vector<std::uint32_t> map);
  [[nodiscard]] const std::vector<std::uint32_t>& shard_map() const {
    return shard_map_;
  }

  /// Schedules the plan's link flaps and router crash/restart windows as
  /// simulator events driving fail_link/restore_link and
  /// fail_router/restore_router.  Call once after construction; events fire
  /// as the simulator clock passes their timestamps.  Message-level
  /// conditions (loss/dup/jitter) are NOT handled here -- install the
  /// injector for those.
  void schedule_fault_plan(const sim::FaultPlan& plan);

  /// Pointer-cache effectiveness summed over live routers.
  struct CacheTotals {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;     // capacity-pressure LRU victims
    std::uint64_t stale_drops = 0;   // teardown/invalidate/clear removals
    std::uint64_t entries = 0;
  };
  [[nodiscard]] CacheTotals cache_totals() const;

  // -- label-switched fast path (DESIGN.md section 15) ----------------------
  /// One installed flow: the physical path its labels ride and the greedy
  /// bookkeeping a labeled replay must reproduce bit-for-bit.
  struct LabelFlow {
    std::vector<NodeIndex> path;        ///< routers, ingress..terminal
    std::vector<std::uint32_t> labels;  ///< labels[i] switches at path[i]
    /// stats.ring_hops greedy had committed when leaving path[i] (reported
    /// when the injector drops the packet on link i).
    std::vector<std::uint32_t> ring_hops_when_leaving;
    std::uint32_t final_ring_hops = 0;  ///< ring_hops at delivery
  };
  using LabelFlowKey = std::pair<NodeIndex, NodeId>;
  [[nodiscard]] const std::map<LabelFlowKey, LabelFlow>& label_flows() const {
    return label_flows_;
  }
  /// Live label-table state summed over routers (benches / roflsim).
  struct LabelTotals {
    std::uint64_t flows = 0;
    std::uint64_t entries = 0;
  };
  [[nodiscard]] LabelTotals label_totals() const;

  // -- oracle & verification (test/bench support; not used by the protocol) -
  /// Live host/router IDs -> hosting router.
  [[nodiscard]] const std::map<NodeId, NodeIndex>& directory() const {
    return directory_;
  }
  [[nodiscard]] std::optional<NodeIndex> hosting_router(const NodeId& id) const;

  /// Checks ring invariant 1 of DESIGN.md: within every connected component,
  /// the stable vnodes form one correctly-ordered ring (successor0 of each
  /// vnode is the next live stable ID in its component).  With `strict`,
  /// additionally requires every successor group to hold exactly the next
  /// min(k, n-1) members in order and every predecessor pointer to name the
  /// previous member -- the fully canonical state joins and repair maintain.
  /// On failure, writes a diagnostic to `err`.
  [[nodiscard]] bool verify_rings(std::string* err = nullptr,
                                  bool strict = false) const;

  /// figure 6c: mean routing-state entries per live router.
  [[nodiscard]] double mean_state_entries() const;
  /// Resident-ID state in bits (128-bit IDs), the "hosting state" metric.
  [[nodiscard]] std::uint64_t resident_state_bits() const;

  void reset_traffic_counters();

 private:
  struct Transfer {
    bool ok = false;
    /// Distinguishes the two failure modes: `lost` means the message was
    /// dropped in flight by the fault injector (retransmission can help);
    /// !ok && !lost means no path existed at all (it cannot).
    bool lost = false;
    std::uint64_t messages = 0;
    double latency_ms = 0.0;
    std::vector<NodeIndex> path;  // inclusive endpoints
  };

  /// One control exchange's outcome: the transfer bookkeeping plus the
  /// message as the receiver decoded it off the wire.  State mutation at the
  /// receiving router reads the decoded copy, never the sender's struct --
  /// the wire format is load-bearing, not decorative.
  struct Exchange {
    Transfer t;
    std::optional<wire::msg::ControlMessage> received;
  };

  /// One transmission attempt of a logical protocol message A->B over the
  /// IGP path.  The message occupies `frame_bytes` on the wire and charges
  /// ceil(frame_bytes / kDefaultMtu) network packets per physical hop (the
  /// paper's multi-packet counts for >MTU messages) plus `frame_bytes` on the
  /// per-category byte counters.  With a fault injector installed the
  /// message may be dropped mid-path (ok=false, lost=true; the hops up to
  /// the drop point are still charged), duplicated (extra packets charged),
  /// or delayed (jitter added to latency).
  Transfer unicast(NodeIndex a, NodeIndex b, sim::MsgCategory cat,
                   std::size_t frame_bytes);

  /// The per-link walk of `unicast` under an active fault injector; `t.path`
  /// must already hold the IGP path.
  Transfer faulty_transfer(Transfer t, sim::MsgCategory cat,
                           std::size_t frame_bytes);

  /// One attempt of `frame` across the network: unicast charging, then -- if
  /// the frame arrived -- byte corruption by the injector and CRC-verified
  /// decode at the receiver.  A corrupted frame fails decode and comes back
  /// as lost (ok stays false), which is exactly how the retry loop sees a
  /// dropped packet.
  Exchange exchange_once(NodeIndex a, NodeIndex b, sim::MsgCategory cat,
                         const std::vector<std::uint8_t>& frame);

  /// Encodes `m` once and runs the retry-with-timeout-and-exponential-
  /// backoff state machine over exchange_once (Config::retry).  Control
  /// exchanges use this instead of assuming one-shot delivery: each lost (or
  /// corrupted) attempt costs its transmitted hops plus the current
  /// retransmission timeout in latency, then the timeout backs off.  Gives
  /// up after max_attempts (ok=false, lost=true) or immediately when no path
  /// exists (ok=false, lost=false) or the message cannot be encoded (counted
  /// on rofl.encode_failures; a zero-byte frame is never transmitted).  With
  /// no injector the first attempt always succeeds.
  Exchange reliable_exchange(NodeIndex a, NodeIndex b, sim::MsgCategory cat,
                             const wire::msg::ControlMessage& m);

  /// Propagation delay of the direct link u->v (0 when not adjacent).
  [[nodiscard]] double link_latency(NodeIndex u, NodeIndex v) const;

  /// Administrative up/down flag of edge (u,v), ignoring endpoint node
  /// state; the fail_link/restore_link idempotence guards key off this.
  [[nodiscard]] bool edge_flag_up(NodeIndex u, NodeIndex v) const;

  struct LocateResult {
    bool ok = false;
    NodeIndex pred_router = graph::kInvalidNode;
    NodeId pred_id;
    std::uint64_t messages = 0;
    double latency_ms = 0.0;
    std::vector<NodeIndex> control_path;  // routers the walk traversed
  };

  /// Greedy control-plane walk from `from` toward `target`, terminating at
  /// the router hosting target's current predecessor vnode.
  LocateResult locate_predecessor(NodeIndex from, const NodeId& target,
                                  sim::MsgCategory cat);

  /// Post-authentication join body shared by join_host and join_group_id.
  JoinStats join_id(const NodeId& id, const PublicKey& pub, NodeIndex gateway,
                    HostClass host_class);

  /// Splices `id` (stable) after predecessor vnode `pred`; returns pointer
  /// install cost.  Handles successor-group propagation to the k-1 deeper
  /// predecessors.
  Transfer splice_in(VirtualNode& vn, NodeIndex pred_router,
                     const NodeId& pred_id, sim::MsgCategory cat);

  /// Removes `id` from all ring neighbor state, relinking around it.
  RepairStats splice_out(const NodeId& id, bool directed_flood,
                         sim::MsgCategory cat);

  /// Tops a vnode's successor group back up to k by copying from its first
  /// successor; one unicast when a refresh was needed.  `exclude` filters an
  /// ID that is mid-teardown out of the copied entries.
  std::uint64_t refill_successors(VirtualNode& vn, sim::MsgCategory cat,
                                  const std::optional<NodeId>& exclude =
                                      std::nullopt);

  /// Drops every successor/predecessor pointer in the system that targets a
  /// host unreachable from the pointer owner; returns pointers torn.
  std::uint32_t tear_unreachable_pointers();

  // -- label-switched fast path internals -----------------------------------
  /// Tries to serve route(src, dest) off an installed label chain.  Returns
  /// true when the packet was handled (delivered or fault-dropped) with
  /// `stats` filled; false means fall back to greedy (flow missing or torn
  /// down here).  The replay makes exactly the per-link fault-injector draws
  /// greedy would make and charges the same packet counts, so labels-on and
  /// labels-off runs stay in RNG lockstep.
  bool route_labeled(NodeIndex src_router, const NodeId& dest,
                     RouteStats& stats,
                     const std::function<void(obs::HopKind, NodeIndex,
                                              const NodeId&)>& rec);

  /// Installs labels along `path` for (src, dest) and bulk-charges the
  /// install signaling (one LabelInstall frame per link of the path).
  void install_label_flow(NodeIndex src_router, const NodeId& dest,
                          const std::vector<NodeIndex>& path,
                          std::vector<std::uint32_t> ring_hops_when_leaving,
                          std::uint32_t final_ring_hops);

  /// Removes one flow's label entries and charges its teardown frames.
  void teardown_label_flow(const LabelFlowKey& key);

  /// Drops every installed flow.  Called on every ring/topology mutation
  /// (join, leave, crash, restore, link flap, repair): labels must die with
  /// their pointer path, and flushing keeps the network static between
  /// mutations -- the property the greedy-equivalence contract rests on.
  void flush_labels();

  void bootstrap_router_ring();
  [[nodiscard]] NodeIndex failover_router(NodeIndex failed) const;
  void cache_along_path(const std::vector<NodeIndex>& path, const NodeId& id,
                        NodeIndex host);

  const graph::IspTopology* topo_;
  Config cfg_;
  sim::Simulator sim_;
  obs::FlightRecorder* recorder_ = nullptr;
  sim::FaultInjector* faults_ = nullptr;
  // Protocol-level metric ids in sim_.metrics().
  obs::MetricId joins_id_ = 0;
  obs::MetricId routes_id_ = 0;
  obs::MetricId delivered_id_ = 0;
  obs::MetricId stale_ptrs_id_ = 0;
  obs::MetricId encode_failures_id_ = 0;
  obs::MetricId codec_rejected_id_ = 0;
  // Label fast-path accounting (labels.* / bytes.label_install).
  obs::MetricId labels_installed_id_ = 0;
  obs::MetricId labels_hits_id_ = 0;
  obs::MetricId labels_misses_id_ = 0;
  obs::MetricId labels_teardowns_id_ = 0;
  obs::MetricId labels_bytes_saved_id_ = 0;
  obs::MetricId label_install_bytes_id_ = 0;
  // Sharded-execution accounting (set_shard_map); empty when unsharded.
  std::vector<std::uint32_t> shard_map_;
  obs::MetricId shard_cross_msgs_id_ = 0;
  obs::MetricId shard_cross_bytes_id_ = 0;
  // Wire size of a bare data packet / teardown frame, measured from the
  // encoder once at construction; the forwarding hot loop charges bytes
  // without re-encoding per hop.
  std::size_t data_frame_bytes_ = 0;
  std::size_t teardown_frame_bytes_ = 0;
  // Labeled-datapath frame sizes, also measured from the encoder: a labeled
  // data packet swaps the two 16-byte flat labels for one u32 label, and the
  // install/teardown signaling frames are full control messages.
  std::size_t labeled_data_frame_bytes_ = 0;
  std::size_t label_install_frame_bytes_ = 0;
  std::size_t label_teardown_frame_bytes_ = 0;
  std::unique_ptr<linkstate::LinkStateMap> map_;
  Rng rng_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::map<NodeId, NodeIndex> directory_;
  // Host identities for rejoin-after-router-failure (keyed by ID).
  std::map<NodeId, Identity> host_identities_;
  std::map<NodeId, HostClass> host_class_;
  // Installed label flows, keyed by (ingress router, destination ID).
  std::map<LabelFlowKey, LabelFlow> label_flows_;
};

}  // namespace rofl::intra
