#include "sim/faults.hpp"

namespace rofl::sim {

bool FaultPlan::message_faults_possible() const {
  if (defaults.active()) return true;
  for (const LinkConditions& lc : link_overrides) {
    if (lc.conditions.active()) return true;
  }
  return false;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed,
                             obs::Registry* registry)
    : plan_(std::move(plan)),
      message_faults_(plan_.message_faults_possible()),
      rng_(seed),
      registry_(registry) {
  corruption_ = plan_.defaults.corrupt > 0.0;
  for (const LinkConditions& lc : plan_.link_overrides) {
    overrides_[std::minmax(lc.u, lc.v)] = lc.conditions;
    corruption_ = corruption_ || lc.conditions.corrupt > 0.0;
  }
  dropped_id_ = registry_->counter("faults.dropped");
  duplicated_id_ = registry_->counter("faults.duplicated");
  delayed_id_ = registry_->counter("faults.delayed");
  corrupted_id_ = registry_->counter("faults.corrupted");
  retries_id_ = registry_->counter("faults.retries");
  exhausted_id_ = registry_->counter("faults.retry_exhausted");
  flaps_id_ = registry_->counter("faults.link_flaps");
  crashes_id_ = registry_->counter("faults.crashes");
}

const NetworkConditions& FaultInjector::conditions_for(std::uint32_t u,
                                                       std::uint32_t v) const {
  if (!overrides_.empty()) {
    const auto it = overrides_.find(std::minmax(u, v));
    if (it != overrides_.end()) return it->second;
  }
  return plan_.defaults;
}

FaultDecision FaultInjector::decide(const NetworkConditions& c) {
  FaultDecision d;
  // Zero-valued knobs consume no randomness, so enabling e.g. loss alone
  // draws one uniform per transmission regardless of the other knobs.
  if (c.loss > 0.0 && rng_.chance(c.loss)) {
    d.dropped = true;
    registry_->add(dropped_id_);
    return d;  // the copy died on the wire; nothing else happens to it
  }
  if (c.duplicate > 0.0 && rng_.chance(c.duplicate)) {
    d.copies = 2;
    registry_->add(duplicated_id_);
  }
  if (c.jitter_ms > 0.0) {
    d.extra_latency_ms = rng_.uniform() * c.jitter_ms;
    registry_->add(delayed_id_);
  }
  return d;
}

FaultDecision FaultInjector::on_link(std::uint32_t u, std::uint32_t v) {
  return decide(conditions_for(u, v));
}

bool FaultInjector::maybe_corrupt_frame(std::vector<std::uint8_t>& frame) {
  const double p = plan_.defaults.corrupt;
  if (p <= 0.0 || frame.empty()) return false;
  if (!rng_.chance(p)) return false;
  // Flip a burst of 1-3 consecutive bits at a uniform position (wrapping).
  // A burst touches distinct bits, and CRC-32 detects every burst error up
  // to 32 bits, so a corrupted frame is guaranteed to fail decode -- never
  // to cancel itself out and slip through.
  const std::size_t flips = 1 + rng_.index(3);
  const std::size_t total_bits = frame.size() * 8;
  const std::size_t start = rng_.index(total_bits);
  for (std::size_t i = 0; i < flips; ++i) {
    const std::size_t bit = (start + i) % total_bits;
    frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  registry_->add(corrupted_id_);
  return true;
}

PathDecision FaultInjector::on_path(std::uint64_t transmissions) {
  PathDecision p;
  for (std::uint64_t i = 0; i < transmissions; ++i) {
    const FaultDecision d = decide(plan_.defaults);
    p.transmissions += d.copies;
    p.extra_latency_ms += d.extra_latency_ms;
    if (d.dropped) {
      p.dropped = true;
      break;  // downstream legs are never transmitted
    }
  }
  return p;
}

}  // namespace rofl::sim
