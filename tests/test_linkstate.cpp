#include "linkstate/link_state.hpp"

#include <gtest/gtest.h>

namespace rofl::linkstate {
namespace {

struct Fixture {
  graph::Graph g{4};
  sim::Simulator sim;
  Fixture() {
    // 0 - 1 - 2 - 3 with a backup edge 0-3.
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 2.0);
    g.add_edge(2, 3, 3.0);
    g.add_edge(0, 3, 10.0);
  }
};

TEST(LinkState, PathAndNextHop) {
  Fixture f;
  LinkStateMap m(&f.g, &f.sim);
  const auto p = m.path(0, 2);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(m.next_hop(0, 2), 1u);
  EXPECT_EQ(m.hop_distance(0, 2), 2u);
  EXPECT_DOUBLE_EQ(*m.latency_ms(0, 2), 3.0);
}

TEST(LinkState, NextHopToSelf) {
  Fixture f;
  LinkStateMap m(&f.g, &f.sim);
  EXPECT_EQ(m.next_hop(1, 1), 1u);
}

TEST(LinkState, ReroutesAroundFailedLink) {
  Fixture f;
  LinkStateMap m(&f.g, &f.sim);
  EXPECT_EQ(m.next_hop(0, 3), 3u);  // weight: direct edge is 1 hop weight 1
  m.fail_link(0, 3);
  EXPECT_EQ(m.next_hop(0, 3), 1u);  // now via the chain
  m.restore_link(0, 3);
  EXPECT_EQ(m.next_hop(0, 3), 3u);
}

TEST(LinkState, NodeFailureDisconnects) {
  Fixture f;
  LinkStateMap m(&f.g, &f.sim);
  m.fail_link(0, 3);
  m.fail_node(1);
  EXPECT_FALSE(m.reachable(0, 2));
  EXPECT_EQ(m.next_hop(0, 2), std::nullopt);
  m.restore_node(1);
  EXPECT_TRUE(m.reachable(0, 2));
}

TEST(LinkState, VersionBumpsOnEveryEvent) {
  Fixture f;
  LinkStateMap m(&f.g, &f.sim);
  const auto v0 = m.version();
  m.fail_link(0, 1);
  EXPECT_GT(m.version(), v0);
  m.restore_link(0, 1);
  EXPECT_GT(m.version(), v0 + 1);
}

TEST(LinkState, ListenersNotified) {
  Fixture f;
  LinkStateMap m(&f.g, &f.sim);
  std::vector<TopologyEvent::Kind> seen;
  m.subscribe([&](const TopologyEvent& ev) { seen.push_back(ev.kind); });
  m.fail_link(0, 1);
  m.fail_node(2);
  m.restore_node(2);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], TopologyEvent::Kind::kLinkDown);
  EXPECT_EQ(seen[1], TopologyEvent::Kind::kNodeDown);
  EXPECT_EQ(seen[2], TopologyEvent::Kind::kNodeUp);
}

TEST(LinkState, FloodingChargedToCounters) {
  Fixture f;
  LinkStateMap m(&f.g, &f.sim);
  EXPECT_EQ(f.sim.counters().get(sim::MsgCategory::kLinkState), 0u);
  m.fail_link(0, 1);
  // Remaining live directed adjacencies: (1-2, 2-3, 0-3) * 2 = 6.
  EXPECT_EQ(f.sim.counters().get(sim::MsgCategory::kLinkState), 6u);
}

TEST(LinkState, RouteValidTracksTopology) {
  Fixture f;
  LinkStateMap m(&f.g, &f.sim);
  const std::vector<graph::NodeIndex> route{0, 1, 2};
  EXPECT_TRUE(m.route_valid(route));
  m.fail_link(1, 2);
  EXPECT_FALSE(m.route_valid(route));
  m.restore_link(1, 2);
  m.fail_node(1);
  EXPECT_FALSE(m.route_valid(route));
}

// Random-ish connected graph, big enough to cross the parallel-recompute
// threshold in recompute_all_spf.
graph::Graph make_mesh(std::size_t n) {
  graph::Graph g(n);
  std::uint64_t x = 7;
  const auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (std::size_t i = 1; i < n; ++i) {
    g.add_edge(static_cast<graph::NodeIndex>(i),
               static_cast<graph::NodeIndex>(next() % i),
               1.0 + static_cast<double>(next() % 10),
               1.0 + static_cast<double>(next() % 5));
  }
  for (std::size_t e = 0; e < 2 * n; ++e) {
    const auto u = static_cast<graph::NodeIndex>(next() % n);
    const auto v = static_cast<graph::NodeIndex>(next() % n);
    if (u != v) g.add_edge(u, v, 1.0 + static_cast<double>(next() % 10));
  }
  return g;
}

TEST(LinkState, ParallelSpfMatchesSerialByteForByte) {
  // Determinism contract of recompute_all_spf: the full routing state --
  // dist, latency, parent, hops for every (src, dst) -- must be identical
  // between the serial path and any worker-pool width.
  graph::Graph g_serial = make_mesh(150);
  graph::Graph g_par = make_mesh(150);
  sim::Simulator sim;
  LinkStateMap serial(&g_serial, &sim);
  LinkStateMap parallel(&g_par, &sim);
  serial.set_spf_threads(0);
  parallel.set_spf_threads(4);

  const auto compare_all = [&] {
    serial.recompute_all_spf();
    parallel.recompute_all_spf();
    for (graph::NodeIndex u = 0; u < g_serial.node_count(); ++u) {
      for (graph::NodeIndex v = 0; v < g_serial.node_count(); ++v) {
        ASSERT_EQ(serial.next_hop(u, v), parallel.next_hop(u, v))
            << u << "->" << v;
        ASSERT_EQ(serial.path(u, v), parallel.path(u, v)) << u << "->" << v;
        ASSERT_EQ(serial.hop_distance(u, v), parallel.hop_distance(u, v));
        ASSERT_EQ(serial.latency_ms(u, v), parallel.latency_ms(u, v));
      }
    }
  };
  compare_all();
  // Identical topology mutations on both sides; tables must track.
  serial.fail_node(13);
  parallel.fail_node(13);
  serial.fail_link(2, g_serial.neighbors(2).front().to);
  parallel.fail_link(2, g_par.neighbors(2).front().to);
  compare_all();
}

TEST(LinkState, RecomputeAllWarmsTheOnDemandCache) {
  graph::Graph g = make_mesh(100);
  LinkStateMap m(&g, nullptr);
  m.set_spf_threads(2);
  m.recompute_all_spf();
  // Warmed slots answer immediately and consistently with a cold map.
  graph::Graph g2 = make_mesh(100);
  LinkStateMap cold(&g2, nullptr);
  cold.set_spf_threads(0);
  for (graph::NodeIndex u = 0; u < g.node_count(); u += 7) {
    for (graph::NodeIndex v = 0; v < g.node_count(); v += 11) {
      EXPECT_EQ(m.hop_distance(u, v), cold.hop_distance(u, v));
    }
  }
}

TEST(LinkState, NullSimAllowed) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  LinkStateMap m(&g, nullptr);
  m.fail_link(0, 1);  // must not crash on accounting
  EXPECT_FALSE(m.reachable(0, 1));
}

}  // namespace
}  // namespace rofl::linkstate
