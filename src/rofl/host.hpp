// host.hpp -- the endpoint-side facade of the intradomain API.
//
// A Host owns a self-certified identity for its whole lifetime and attaches
// to (or detaches from, or moves between) gateway routers; the identifier
// never changes across moves -- the architectural point of routing on flat
// labels.  This wrapper is sugar over Network's join/leave/route primitives
// for applications that think in terms of endpoints rather than routers.
#pragma once

#include <optional>

#include "rofl/network.hpp"

namespace rofl::intra {

class Host {
 public:
  /// Creates a detached host with a fresh identity.
  explicit Host(Network& net, HostClass host_class = HostClass::kStable);

  /// Creates a detached host from an existing identity (e.g. restored from
  /// stable storage after a reboot).
  Host(Network& net, Identity identity,
       HostClass host_class = HostClass::kStable);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;
  Host(Host&&) = default;

  [[nodiscard]] NodeId id() const { return identity_.id(); }
  [[nodiscard]] const Identity& identity() const { return identity_; }
  [[nodiscard]] bool attached() const { return gateway_.has_value(); }
  [[nodiscard]] std::optional<NodeIndex> gateway() const { return gateway_; }

  /// Attaches at `gateway` (DHCP/manual assignment in the paper's terms).
  /// No-op failure if already attached or the join is refused.
  JoinStats attach(NodeIndex gateway);

  /// Graceful detach (teardowns, no directed flood).
  RepairStats detach();

  /// Mobility: detach + attach at the new gateway, same identifier.
  JoinStats move_to(NodeIndex gateway);

  /// Abrupt death, as the network sees it (session timeout + teardown
  /// flood).  The Host object can attach() again afterwards -- that is a
  /// host rebooting.
  RepairStats crash();

  /// Sends one packet to `dest` from this host's gateway.
  [[nodiscard]] RouteStats send_to(const NodeId& dest) const;

 private:
  Network* net_;
  Identity identity_;
  HostClass host_class_;
  std::optional<NodeIndex> gateway_;
};

}  // namespace rofl::intra
