#include "rofl/zero_id.hpp"

#include <gtest/gtest.h>

#include "graph/isp_topology.hpp"
#include "util/identity.hpp"

namespace rofl::intra {
namespace {

NodeId id(std::uint64_t v) { return NodeId::from_u64(v); }

graph::Graph line(std::size_t n) {
  graph::Graph g(n);
  for (graph::NodeIndex i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

TEST(ZeroId, ConvergesOnLine) {
  const graph::Graph g = line(6);
  ZeroIdProtocol z(&g);
  z.set_local_min(0, id(50));
  z.set_local_min(3, id(10));
  z.set_local_min(5, id(99));
  const auto conv = z.run_to_convergence();
  EXPECT_TRUE(z.verify_consistent());
  for (graph::NodeIndex r = 0; r < 6; ++r) {
    EXPECT_EQ(z.belief(r), id(10)) << "router " << r;
  }
  // Convergence takes about the network radius in rounds (+1 to detect).
  EXPECT_LE(conv.rounds, 6u);
  EXPECT_GT(conv.messages, 0u);
}

TEST(ZeroId, PathLeadsToHost) {
  const graph::Graph g = line(5);
  ZeroIdProtocol z(&g);
  z.set_local_min(4, id(7));
  (void)z.run_to_convergence();
  const auto& path = z.belief_path(0);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 4u);
  EXPECT_EQ(path.size(), 5u);
}

TEST(ZeroId, PartitionGivesPerComponentMinima) {
  graph::Graph g = line(6);
  ZeroIdProtocol z(&g);
  z.set_local_min(0, id(20));
  z.set_local_min(5, id(30));
  (void)z.run_to_convergence();
  EXPECT_EQ(z.belief(5), id(20));  // one component: global min

  g.set_link_up(2, 3, false);
  const auto conv = z.run_to_convergence();
  (void)conv;
  EXPECT_TRUE(z.verify_consistent());
  EXPECT_EQ(z.belief(0), id(20));
  EXPECT_EQ(z.belief(2), id(20));
  EXPECT_EQ(z.belief(3), id(30));  // stale 20 flushed by the path vector
  EXPECT_EQ(z.belief(5), id(30));
}

TEST(ZeroId, HealReMergesBeliefs) {
  graph::Graph g = line(4);
  ZeroIdProtocol z(&g);
  z.set_local_min(0, id(5));
  z.set_local_min(3, id(9));
  g.set_link_up(1, 2, false);
  (void)z.run_to_convergence();
  EXPECT_EQ(z.belief(3), id(9));
  g.set_link_up(1, 2, true);
  (void)z.run_to_convergence();
  EXPECT_TRUE(z.verify_consistent());
  EXPECT_EQ(z.belief(3), id(5));
}

TEST(ZeroId, HostDepartureFlushesEverywhere) {
  const graph::Graph g = line(5);
  ZeroIdProtocol z(&g);
  z.set_local_min(2, id(1));
  z.set_local_min(4, id(8));
  (void)z.run_to_convergence();
  EXPECT_EQ(z.belief(0), id(1));
  // The minimum's host loses it (host failure): beliefs must flush to the
  // next minimum, not linger on the dead ID.
  z.set_local_min(2, std::nullopt);
  (void)z.run_to_convergence();
  EXPECT_TRUE(z.verify_consistent());
  for (graph::NodeIndex r = 0; r < 5; ++r) {
    EXPECT_EQ(z.belief(r), id(8)) << "router " << r;
  }
}

TEST(ZeroId, EmptyNetworkHasNoBelief) {
  const graph::Graph g = line(3);
  ZeroIdProtocol z(&g);
  (void)z.run_to_convergence();
  EXPECT_TRUE(z.verify_consistent());
  EXPECT_EQ(z.belief(1), std::nullopt);
}

TEST(ZeroId, DownRoutersExcluded) {
  graph::Graph g = line(4);
  ZeroIdProtocol z(&g);
  z.set_local_min(0, id(3));
  z.set_local_min(3, id(4));
  g.set_node_up(0, false);
  (void)z.run_to_convergence();
  EXPECT_TRUE(z.verify_consistent());
  EXPECT_EQ(z.belief(1), id(4));
  EXPECT_EQ(z.belief(0), std::nullopt);  // down: no belief
}

TEST(ZeroId, RealIspTopologyConverges) {
  Rng rng(3);
  const auto topo = graph::make_rocketfuel_like(graph::RocketfuelAs::kAs3257,
                                                rng);
  ZeroIdProtocol z(&topo.graph);
  Rng ids(4);
  for (graph::NodeIndex r = 0; r < topo.router_count(); r += 3) {
    z.set_local_min(r, NodeId(ids.next_u64(), ids.next_u64()));
  }
  const auto conv = z.run_to_convergence();
  EXPECT_TRUE(z.verify_consistent());
  // Rounds bounded by diameter + 2 (one to detect stability).
  EXPECT_LE(conv.rounds, topo.graph.diameter_hops(64) + 3u);
}

}  // namespace
}  // namespace rofl::intra
