#include "net/router.hpp"

namespace rofl::net {

LiveRouter::LiveRouter(LiveRouterConfig cfg, Transport* transport)
    : cfg_(cfg), transport_(transport) {
  // Registration order is the merge contract: every router registers the
  // same names in the same order, so dense MetricIds line up across
  // registries and timelines (obs::Registry::merge_from discipline).
  // Transport counters first, then the core's protocol counters, then the
  // fault injector's faults.* block.
  tx_frames_ = registry_.counter("net.tx.frames");
  tx_bytes_ = registry_.counter("net.tx.bytes");
  rx_frames_ = registry_.counter("net.rx.frames");
  rx_bytes_ = registry_.counter("net.rx.bytes");
  dedup_dropped_ = registry_.counter("net.rx.dedup_dropped");
  ring_dropped_ = registry_.counter("net.rx.ring_dropped");
  malformed_ = registry_.counter("net.rx.malformed");
  throttle_waits_ = registry_.counter("net.tx.throttle_waits");

  proto::CoreConfig cc;
  cc.self = cfg_.self;
  cc.bootstrap = cfg_.bootstrap;
  cc.fingers = cfg_.fingers;
  cc.max_outstanding = cfg_.max_outstanding;
  cc.retry = cfg_.retry;
  core_.emplace(cc, static_cast<proto::Env&>(*this));

  // Always constructed (registration order again); a no-fault plan makes
  // message_faults_enabled() false and the transport takes its fast path.
  sim::FaultPlan plan;
  plan.defaults = cfg_.conditions;
  injector_ = std::make_unique<sim::FaultInjector>(plan, cfg_.fault_seed,
                                                   &registry_);
  transport_->set_fault_injector(injector_.get());

  if (cfg_.timeline_window_ms > 0.0) {
    obs::Timeline::Config tc;
    tc.window_ms = cfg_.timeline_window_ms;
    timeline_ = std::make_unique<obs::Timeline>(&registry_, tc);
  }
}

bool LiveRouter::poll_harness(RxFrame& out) {
  if (harness_rx_.empty()) return false;
  out = std::move(harness_rx_.front());
  harness_rx_.pop_front();
  return true;
}

void LiveRouter::sample_transport_stats() {
  const TransportStats& s = transport_->stats();
  registry_.set_counter(tx_frames_, s.tx_frames);
  registry_.set_counter(tx_bytes_, s.tx_bytes);
  registry_.set_counter(rx_frames_, s.rx_frames);
  registry_.set_counter(rx_bytes_, s.rx_bytes);
  registry_.set_counter(dedup_dropped_, s.dedup_dropped);
  registry_.set_counter(ring_dropped_, transport_->ring_dropped());
  registry_.set_counter(malformed_, s.malformed);
  registry_.set_counter(throttle_waits_, s.throttle_waits);
}

void LiveRouter::step(double now_ms) {
  // Sample before the timeline advances so each window sees the pump
  // counters as of its own close, not the end of the run.
  sample_transport_stats();
  if (timeline_ != nullptr) timeline_->advance_to(now_ms);
  transport_->pump(now_ms);

  RxFrame rx;
  while (transport_->poll(rx)) {
    if (rx.op != PumpOp::kData) {
      harness_rx_.push_back(std::move(rx));
      continue;
    }
    core_->on_frame(rx.frame, now_ms);
  }

  core_->tick(now_ms);
}

void LiveRouter::finish(double now_ms) {
  sample_transport_stats();
  if (timeline_ != nullptr) timeline_->flush(now_ms);
}

}  // namespace rofl::net
