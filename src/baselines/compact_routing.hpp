// compact_routing.hpp -- Thorup-Zwick stretch-3 compact routing baseline.
//
// ROFL's introduction positions the design against compact routing: "our
// quest is related to the work on compact routing ... While ROFL falls far
// short of the static compact routing performance described in [24, 25], it
// seems far better suited for a distributed dynamic implementation."  To
// make that comparison concrete, this module implements the classic
// Thorup-Zwick universal stretch-3 scheme the cited work analyzes:
//
//   * sample ~sqrt(n log n) routers as landmarks;
//   * every router stores routes to all landmarks plus to its "cluster"
//     (the nodes strictly closer to it than to their nearest landmark);
//   * a packet to v is routed directly when v is in the table, else via
//     v's nearest landmark; worst-case stretch 3, average far lower.
//
// The scheme is static and name-dependent (labels embed the landmark),
// which is exactly the contrast the paper draws: better stretch/state, but
// no dynamic distributed construction and no flat labels.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace rofl::baselines {

class CompactRouting {
 public:
  /// Builds the scheme over `g` (must outlive this object).  `landmarks` =
  /// 0 picks ceil(sqrt(n * log2 n)) automatically.
  CompactRouting(const graph::Graph* g, Rng& rng, std::size_t landmarks = 0);

  struct RouteResult {
    bool delivered = false;
    std::uint32_t hops = 0;          // path actually taken
    std::uint32_t shortest = 0;      // true shortest path
    bool via_landmark = false;

    [[nodiscard]] double stretch() const {
      return (!delivered || shortest == 0)
                 ? 0.0
                 : static_cast<double>(hops) / static_cast<double>(shortest);
    }
  };

  /// Routes u -> v using only table state (direct if v is in u's cluster
  /// table or a landmark; otherwise to v's home landmark, then down).
  [[nodiscard]] RouteResult route(graph::NodeIndex u, graph::NodeIndex v) const;

  [[nodiscard]] std::size_t landmark_count() const { return landmarks_.size(); }
  /// Routing-table entries at `u` (landmark routes + cluster routes).
  [[nodiscard]] std::size_t table_size(graph::NodeIndex u) const;
  [[nodiscard]] double mean_table_size() const;
  /// The landmark embedded in v's (name-dependent!) label.
  [[nodiscard]] graph::NodeIndex home_landmark(graph::NodeIndex v) const {
    return home_landmark_[v];
  }

 private:
  const graph::Graph* graph_;
  std::vector<graph::NodeIndex> landmarks_;
  std::vector<graph::NodeIndex> home_landmark_;   // nearest landmark per node
  std::vector<std::uint32_t> landmark_dist_;      // hops to home landmark
  // cluster_[u] = nodes v with d(u,v) < d(v, home_landmark(v)); stored as
  // v -> hops.
  std::vector<std::unordered_map<graph::NodeIndex, std::uint32_t>> cluster_;
  // Hop distances from every landmark (for routing via landmarks).
  std::unordered_map<graph::NodeIndex, std::vector<std::uint32_t>> from_landmark_;
};

}  // namespace rofl::baselines
