#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace rofl::graph {
namespace {

Graph line(std::size_t n) {
  Graph g(n);
  for (NodeIndex i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

TEST(Graph, AddNodesAndEdges) {
  Graph g;
  const NodeIndex a = g.add_node();
  const NodeIndex b = g.add_node();
  EXPECT_TRUE(g.add_edge(a, b, 2.0, 3.0));
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_TRUE(g.has_edge(b, a));
}

TEST(Graph, RejectsSelfLoopsAndParallelEdges) {
  Graph g(2);
  EXPECT_FALSE(g.add_edge(0, 0));
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, DijkstraOnLine) {
  const Graph g = line(5);
  const auto sp = g.dijkstra(0);
  EXPECT_EQ(sp.hops[4], 4u);
  EXPECT_DOUBLE_EQ(sp.dist[4], 4.0);
  const auto path = Graph::extract_path(sp, 0, 4);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 4u);
}

TEST(Graph, DijkstraPrefersLowWeight) {
  Graph g(4);
  g.add_edge(0, 1, 1.0, 10.0);  // heavy direct
  g.add_edge(0, 2, 1.0, 1.0);
  g.add_edge(2, 3, 1.0, 1.0);
  g.add_edge(3, 1, 1.0, 1.0);
  const auto sp = g.dijkstra(0);
  EXPECT_DOUBLE_EQ(sp.dist[1], 3.0);
  EXPECT_EQ(sp.hops[1], 3u);
}

TEST(Graph, LatencyAccumulatesAlongChosenPath) {
  Graph g(3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 7.0);
  const auto sp = g.dijkstra(0);
  EXPECT_DOUBLE_EQ(sp.latency_ms[2], 12.0);
}

TEST(Graph, FailedLinkExcludedFromPaths) {
  Graph g = line(3);
  g.set_link_up(0, 1, false);
  const auto sp = g.dijkstra(0);
  EXPECT_FALSE(sp.reachable(2));
  g.set_link_up(0, 1, true);
  EXPECT_TRUE(g.dijkstra(0).reachable(2));
}

TEST(Graph, FailedNodeExcluded) {
  Graph g = line(3);
  g.set_node_up(1, false);
  EXPECT_FALSE(g.dijkstra(0).reachable(2));
  EXPECT_EQ(g.live_degree(0), 0u);
  EXPECT_FALSE(g.link_up(0, 1));
}

TEST(Graph, BfsHops) {
  const Graph g = line(4);
  const auto d = g.bfs_hops(0);
  EXPECT_EQ(d[3], 3u);
}

TEST(Graph, ConnectivityAndComponents) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
  const auto comp = g.components();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, ComponentsSkipDownNodes) {
  Graph g = line(3);
  g.set_node_up(1, false);
  const auto comp = g.components();
  EXPECT_EQ(comp[1], kInvalidNode);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(Graph, DiameterOfLine) {
  const Graph g = line(10);
  EXPECT_EQ(g.diameter_hops(10), 9u);
}

TEST(Graph, UnreachableExtractPathEmpty) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto sp = g.dijkstra(0);
  EXPECT_TRUE(Graph::extract_path(sp, 0, 2).empty());
}

}  // namespace
}  // namespace rofl::graph
