#include "util/bloom.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace rofl {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

BloomFilter::BloomFilter(std::size_t bits, unsigned hashes)
    : bits_(bits), hashes_(hashes), words_((bits + 63) / 64, 0) {
  assert(bits > 0 && hashes > 0);
}

BloomFilter BloomFilter::for_capacity(std::size_t expected_items,
                                      double false_positive_rate) {
  assert(expected_items > 0);
  assert(false_positive_rate > 0.0 && false_positive_rate < 1.0);
  const double ln2 = std::log(2.0);
  const double m = -static_cast<double>(expected_items) *
                   std::log(false_positive_rate) / (ln2 * ln2);
  const double k = m / static_cast<double>(expected_items) * ln2;
  return BloomFilter(std::max<std::size_t>(64, static_cast<std::size_t>(m) + 1),
                     std::max(1u, static_cast<unsigned>(std::lround(k))));
}

std::size_t BloomFilter::index(const NodeId& id, unsigned k) const {
  const std::uint64_t h1 = mix(id.hi() ^ 0x243F6A8885A308D3ull);
  const std::uint64_t h2 = mix(id.lo() ^ 0x13198A2E03707344ull) | 1ull;
  return static_cast<std::size_t>((h1 + k * h2) % bits_);
}

void BloomFilter::insert(const NodeId& id) {
  for (unsigned k = 0; k < hashes_; ++k) {
    const std::size_t i = index(id, k);
    words_[i / 64] |= (1ull << (i % 64));
  }
  ++inserted_;
}

bool BloomFilter::may_contain(const NodeId& id) const {
  for (unsigned k = 0; k < hashes_; ++k) {
    const std::size_t i = index(id, k);
    if ((words_[i / 64] & (1ull << (i % 64))) == 0) return false;
  }
  return true;
}

bool BloomFilter::merge(const BloomFilter& other) {
  if (other.bits_ != bits_ || other.hashes_ != hashes_) return false;
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  inserted_ += other.inserted_;
  return true;
}

void BloomFilter::clear() {
  std::fill(words_.begin(), words_.end(), 0);
  inserted_ = 0;
}

double BloomFilter::fill_ratio() const {
  std::size_t set = 0;
  for (std::uint64_t w : words_) set += static_cast<std::size_t>(std::popcount(w));
  return static_cast<double>(set) / static_cast<double>(bits_);
}

double BloomFilter::estimated_fp_rate() const {
  return std::pow(fill_ratio(), static_cast<double>(hashes_));
}

}  // namespace rofl
