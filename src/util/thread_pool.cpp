#include "util/thread_pool.hpp"

#include <algorithm>

namespace rofl::util {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) return 0;  // single core: inline execution is strictly better
  return std::min<std::size_t>(hw - 1, 8);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_size_ = n;
    next_index_ = 0;
    in_flight_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  // The calling thread chips in rather than idling.
  for (;;) {
    std::size_t i;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_index_ >= job_size_) break;
      i = next_index_++;
      ++in_flight_;
    }
    fn(i);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    return next_index_ >= job_size_ && in_flight_ == 0;
  });
  job_ = nullptr;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::size_t i;
    const std::function<void(std::size_t)>* fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ ||
               (job_ != nullptr && generation_ != seen_generation) ||
               (job_ != nullptr && next_index_ < job_size_);
      });
      if (stop_) return;
      seen_generation = generation_;
      if (next_index_ >= job_size_) continue;
      i = next_index_++;
      ++in_flight_;
      fn = job_;
    }
    (*fn)(i);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (next_index_ >= job_size_ && in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace rofl::util
