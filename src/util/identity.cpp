#include "util/identity.hpp"

#include <cstring>

namespace rofl {
namespace {

NodeId id_from_digest(const Sha256::Digest& d) {
  std::array<std::uint8_t, 16> head{};
  std::memcpy(head.data(), d.data(), head.size());
  return NodeId::from_bytes(head);
}

OwnershipProof compute_proof(const PrivateKey& priv, std::uint64_t nonce) {
  Sha256 h;
  h.update(std::span<const std::uint8_t>(priv.data(), priv.size()));
  std::array<std::uint8_t, 8> nonce_bytes{};
  for (int i = 0; i < 8; ++i) {
    nonce_bytes[static_cast<size_t>(i)] =
        static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
  }
  h.update(std::span<const std::uint8_t>(nonce_bytes.data(), 8));
  return h.finish();
}

}  // namespace

Identity Identity::generate(Rng& rng) {
  PrivateKey priv{};
  for (std::size_t i = 0; i < priv.size(); i += 8) {
    const std::uint64_t w = rng.next_u64();
    for (std::size_t j = 0; j < 8; ++j) {
      priv[i + j] = static_cast<std::uint8_t>(w >> (8 * j));
    }
  }
  return from_private_key(priv);
}

Identity Identity::from_private_key(const PrivateKey& priv) {
  Identity out;
  out.priv_ = priv;
  out.pub_ = Sha256::hash(std::span<const std::uint8_t>(priv.data(), priv.size()));
  out.id_ = derive_id(out.pub_);
  return out;
}

OwnershipProof Identity::prove(std::uint64_t nonce) const {
  return compute_proof(priv_, nonce);
}

NodeId derive_id(const PublicKey& pub) {
  return id_from_digest(
      Sha256::hash(std::span<const std::uint8_t>(pub.data(), pub.size())));
}

bool verify_ownership(const NodeId& claimed, const PublicKey& pub,
                      std::uint64_t nonce, const OwnershipProof& proof,
                      const PrivateKey& revealed_priv) {
  // The claimed ID must be self-certified by the public key.
  if (derive_id(pub) != claimed) return false;
  // The public key must be derived from the revealed private key.
  if (Sha256::hash(std::span<const std::uint8_t>(revealed_priv.data(),
                                                 revealed_priv.size())) != pub) {
    return false;
  }
  // The proof must bind the private key to the verifier's nonce.
  return compute_proof(revealed_priv, nonce) == proof;
}

}  // namespace rofl
