// session.hpp -- host-gateway sessions with keepalive-driven failure
// detection.
//
// Section 3.2 detects host failure "through a session timeout".  This module
// makes that concrete and event-driven: each attached host keeps a session
// with its gateway; the host schedules keepalives on the simulator clock and
// the gateway declares the host dead -- triggering Network::fail_host and
// its teardown machinery -- when `miss_limit` intervals elapse without one.
// Keepalives ride the wire format (kKeepalive packets), so their cost and
// size are real.
//
// Failure detection is loss-tolerant and crash-aware: a keepalive eaten by a
// lossy access link (sim::FaultInjector) counts as a single miss, never an
// immediate teardown, and a session whose gateway crashed follows the ID to
// its failover router (or retires silently when the ID is gone) instead of
// firing a spurious host-failure teardown from a stale timer.
#pragma once

#include <functional>
#include <map>

#include "rofl/network.hpp"
#include "wire/packet.hpp"

namespace rofl::audit {
class Auditor;
}

namespace rofl::intra {

struct SessionConfig {
  double keepalive_interval_ms = 1'000.0;
  unsigned miss_limit = 3;
};

class SessionManager {
 public:
  /// `net` must outlive the manager; events are scheduled on net's
  /// simulator.
  SessionManager(Network& net, SessionConfig cfg);

  /// Starts supervising an attached host.  The host object is modeled by a
  /// liveness callback: it returns false once the host has silently died
  /// (no more keepalives are produced).
  void track(const NodeId& id, std::function<bool()> alive);

  /// Graceful stop (host detached cleanly; no timeout fires).
  void untrack(const NodeId& id);

  [[nodiscard]] std::size_t tracked_count() const { return sessions_.size(); }
  [[nodiscard]] bool tracking(const NodeId& id) const {
    return sessions_.contains(id);
  }
  /// Hosts declared dead so far (and therefore failed out of the ring).
  [[nodiscard]] std::uint64_t timeouts_fired() const { return timeouts_; }
  /// Total keepalive packets sent.
  [[nodiscard]] std::uint64_t keepalives_sent() const { return keepalives_; }
  /// Keepalives eaten in flight by the fault injector (each one miss).
  [[nodiscard]] std::uint64_t keepalives_lost() const {
    return keepalives_lost_;
  }
  /// Sessions that followed their ID to a failover gateway after a crash.
  [[nodiscard]] std::uint64_t sessions_rehomed() const { return rehomed_; }
  /// Sessions retired because their ID left the ring underneath them.
  [[nodiscard]] std::uint64_t sessions_orphaned() const { return orphaned_; }

 private:
  /// The invariant auditor reads the session table to assert every tracked
  /// session references a live gateway.
  friend class rofl::audit::Auditor;

  struct Session {
    std::function<bool()> alive;
    unsigned missed = 0;
    std::uint64_t epoch = 0;  // invalidates stale timer callbacks
    // The router hosting the ID when the session last ticked; a change means
    // the host was rehomed by the failover machinery.
    NodeIndex gateway = graph::kInvalidNode;
  };

  void schedule_tick(const NodeId& id, std::uint64_t epoch);
  void tick(const NodeId& id, std::uint64_t epoch);

  Network* net_;
  SessionConfig cfg_;
  std::map<NodeId, Session> sessions_;
  std::uint64_t timeouts_ = 0;
  std::uint64_t keepalives_ = 0;
  std::uint64_t keepalives_lost_ = 0;
  std::uint64_t rehomed_ = 0;
  std::uint64_t orphaned_ = 0;
  // Mirrors of the counts above in the simulator's metrics registry.
  obs::MetricId keepalives_id_ = 0;
  obs::MetricId timeouts_id_ = 0;
  obs::MetricId keepalives_lost_id_ = 0;
  obs::MetricId rehomed_id_ = 0;
  obs::MetricId orphaned_id_ = 0;
};

}  // namespace rofl::intra
