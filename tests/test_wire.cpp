#include "wire/packet.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace rofl::wire {
namespace {

TEST(ByteBuffer, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ull);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xABu);
  EXPECT_EQ(r.u16(), 0x1234u);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ull);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBuffer, BigEndianOnWire) {
  ByteWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[1], 0x02);
}

TEST(ByteBuffer, TruncatedReadsFailCleanly) {
  const std::vector<std::uint8_t> short_buf{0x01, 0x02, 0x03};
  ByteReader r(short_buf);
  EXPECT_TRUE(r.u16().has_value());
  EXPECT_FALSE(r.u16().has_value());  // only 1 byte left
  ByteReader r2(short_buf);
  EXPECT_FALSE(r2.u32().has_value());
  EXPECT_FALSE(r2.u64().has_value());
  ByteReader r3(short_buf);
  EXPECT_FALSE(r3.bytes(4).has_value());
}

TEST(ByteBuffer, LengthPrefixedBytes) {
  ByteWriter w;
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  EXPECT_TRUE(w.lp_bytes(data));
  ByteReader r(w.data());
  const auto back = r.lp_bytes();
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(std::equal(back->begin(), back->end(), data.begin(), data.end()));
}

TEST(ByteBuffer, LpBytesTruncatedLengthFails) {
  ByteWriter w;
  w.u16(100);  // claims 100 bytes, provides none
  ByteReader r(w.data());
  EXPECT_FALSE(r.lp_bytes().has_value());
}

TEST(ByteBuffer, OversizedLpBytesIsAnExplicitFailureNotTruncation) {
  // 0x10000 bytes does not fit a u16 length prefix.  The old behavior
  // clamped to 0xFFFF and wrote a corrupted field; now the write is refused
  // outright: nothing lands in the buffer and the writer reports failure.
  const std::vector<std::uint8_t> big(0x10000, 0xAB);
  ByteWriter w;
  EXPECT_TRUE(w.ok());
  EXPECT_FALSE(w.lp_bytes(big));
  EXPECT_FALSE(w.ok());
  EXPECT_EQ(w.size(), 0u);
}

TEST(ByteBuffer, MaxSizeLpBytesRoundTripsIntact) {
  // Exactly 0xFFFF bytes is the largest representable field and must
  // round-trip byte-for-byte.
  const std::vector<std::uint8_t> max_field(0xFFFF, 0xCD);
  ByteWriter w;
  EXPECT_TRUE(w.lp_bytes(max_field));
  EXPECT_TRUE(w.ok());
  ByteReader r(w.data());
  const auto back = r.lp_bytes();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), max_field.size());
  EXPECT_TRUE(std::equal(back->begin(), back->end(), max_field.begin(),
                         max_field.end()));
  EXPECT_TRUE(r.exhausted());
}

Packet sample_packet() {
  Packet p;
  p.type = PacketType::kData;
  p.ttl = 17;
  p.crossed_peering = true;
  p.destination = NodeId(0x1111, 0x2222);
  p.source = NodeId(0x3333, 0x4444);
  p.as_path = {7, 42, 99};
  p.payload = {0xde, 0xad};
  return p;
}

TEST(Packet, EncodeDecodeRoundTrip) {
  const Packet p = sample_packet();
  const auto bytes = p.encode();
  EXPECT_EQ(bytes.size(), p.wire_size());
  const auto q = Packet::decode(bytes);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, p);
}

TEST(Packet, RoundTripWithCapability) {
  Packet p = sample_packet();
  CapabilityField cap;
  cap.source = NodeId(5, 6);
  cap.expiry_ms = 1234.5;
  cap.token.fill(0x5A);
  p.capability = cap;
  const auto q = Packet::decode(p.encode());
  ASSERT_TRUE(q.has_value());
  ASSERT_TRUE(q->capability.has_value());
  EXPECT_EQ(*q, p);
}

TEST(Packet, RoundTripWithFingers) {
  Packet p = sample_packet();
  p.type = PacketType::kJoinRequest;
  for (std::uint32_t i = 0; i < 50; ++i) {
    p.fingers.push_back(FingerField{NodeId(i, i * 7), i});
  }
  const auto q = Packet::decode(p.encode());
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, p);
}

TEST(Packet, OversizedFieldsRefuseToEncode) {
  // Payload past the u16 limit: encode must fail loudly (empty result), not
  // emit a clamped packet whose payload was silently cut at 64 KiB.
  Packet p = sample_packet();
  p.payload.assign(0x10000, 0x77);
  EXPECT_TRUE(p.encode().empty());

  // The largest representable payload still round-trips intact.
  p.payload.assign(0xFFFF, 0x77);
  const auto bytes = p.encode();
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes.size(), p.wire_size());
  const auto q = Packet::decode(bytes);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->payload.size(), 0xFFFFu);
  EXPECT_EQ(*q, p);

  // The same guard covers the other u16-counted fields.
  Packet long_path = sample_packet();
  long_path.as_path.assign(0x10000, 42);
  EXPECT_TRUE(long_path.encode().empty());
  Packet many_fingers = sample_packet();
  many_fingers.fingers.assign(0x10000, FingerField{NodeId(1, 2), 3});
  EXPECT_TRUE(many_fingers.encode().empty());
}

TEST(Packet, DecodeRejectsBadVersionAndType) {
  Packet p = sample_packet();
  auto bytes = p.encode();
  bytes[0] = 99;  // version
  EXPECT_FALSE(Packet::decode(bytes).has_value());
  bytes = p.encode();
  bytes[1] = 0;  // type below range
  EXPECT_FALSE(Packet::decode(bytes).has_value());
  bytes[1] = 200;  // type above range
  EXPECT_FALSE(Packet::decode(bytes).has_value());
}

TEST(Packet, DecodeRejectsTruncation) {
  const Packet p = sample_packet();
  const auto bytes = p.encode();
  // Every strict prefix must fail to decode, never crash.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(Packet::decode({bytes.data(), cut}).has_value())
        << "prefix " << cut;
  }
}

TEST(Packet, DecodeRejectsTrailingGarbage) {
  auto bytes = sample_packet().encode();
  bytes.push_back(0x00);
  EXPECT_FALSE(Packet::decode(bytes).has_value());
}

TEST(Packet, DecodeRandomBytesNeverCrashes) {
  Rng rng(404);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(rng.index(128));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    (void)Packet::decode(junk);  // must not crash / UB (ASAN-clean)
  }
}

Packet random_packet(Rng& rng) {
  Packet p;
  p.type = static_cast<PacketType>(1 + rng.index(7));
  p.ttl = static_cast<std::uint8_t>(rng.below(256));
  p.crossed_peering = rng.chance(0.5);
  p.destination = NodeId(rng.next_u64(), rng.next_u64());
  p.source = NodeId(rng.next_u64(), rng.next_u64());
  p.trace_id = rng.next_u64();
  const std::size_t hops = rng.index(6);
  for (std::size_t i = 0; i < hops; ++i) {
    p.as_path.push_back(static_cast<std::uint32_t>(rng.below(70000)));
  }
  if (rng.chance(0.3)) {
    CapabilityField cap;
    cap.source = NodeId(rng.next_u64(), rng.next_u64());
    cap.expiry_ms = static_cast<double>(rng.below(1 << 20));
    for (auto& b : cap.token) b = static_cast<std::uint8_t>(rng.below(256));
    p.capability = cap;
  }
  const std::size_t nfingers = rng.index(9);
  for (std::size_t i = 0; i < nfingers; ++i) {
    p.fingers.push_back(FingerField{NodeId(rng.next_u64(), rng.next_u64()),
                                    static_cast<std::uint32_t>(rng.below(1 << 16))});
  }
  std::vector<std::uint8_t> payload(rng.index(64));
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));
  p.payload = std::move(payload);
  return p;
}

TEST(Packet, RoundTripFuzz) {
  Rng rng(20260806);
  for (int trial = 0; trial < 300; ++trial) {
    const Packet p = random_packet(rng);
    const auto bytes = p.encode();
    ASSERT_FALSE(bytes.empty());
    EXPECT_EQ(bytes.size(), p.wire_size());
    const auto q = Packet::decode(bytes);
    ASSERT_TRUE(q.has_value()) << "trial " << trial;
    EXPECT_EQ(*q, p) << "trial " << trial;
  }
}

TEST(Packet, TruncationFuzzNeverCrashesOrDecodes) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const auto bytes = random_packet(rng).encode();
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_FALSE(Packet::decode({bytes.data(), cut}).has_value())
          << "trial " << trial << " prefix " << cut;
    }
  }
}

TEST(Packet, SingleBitFlipAlwaysRejected) {
  // The CRC-32 trailer detects every single-bit error, so a flipped buffer
  // must fail to decode -- never come back as a silently different packet.
  Rng rng(31337);
  for (int trial = 0; trial < 40; ++trial) {
    const Packet p = random_packet(rng);
    const auto bytes = p.encode();
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
      auto flipped = bytes;
      flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      EXPECT_FALSE(Packet::decode(flipped).has_value())
          << "trial " << trial << " bit " << bit;
    }
  }
}

TEST(Packet, MultiBitCorruptionNeverYieldsDifferentPacket) {
  // Random burst corruption: decode may (very rarely) succeed only if the
  // result is byte-identical to the original -- silent field corruption is
  // the failure mode under test.
  Rng rng(909);
  for (int trial = 0; trial < 500; ++trial) {
    const Packet p = random_packet(rng);
    auto bytes = p.encode();
    const std::size_t flips = 1 + rng.index(8);
    for (std::size_t i = 0; i < flips; ++i) {
      const std::size_t bit = rng.index(bytes.size() * 8);
      bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    const auto q = Packet::decode(bytes);
    if (q.has_value()) {
      EXPECT_EQ(*q, p) << "trial " << trial;
    }
  }
}

TEST(Packet, FragmentsAgainstMtu) {
  Packet p;
  EXPECT_EQ(p.fragments(1500), 1u);
  // The paper's data point: a join carrying a large finger table spans
  // multiple MTU-sized packets.
  for (std::uint32_t i = 0; i < 256; ++i) {
    p.fingers.push_back(FingerField{NodeId(i, i), i});
  }
  EXPECT_GT(p.wire_size(), 1500u);
  EXPECT_EQ(p.fragments(1500), (p.wire_size() + 1499) / 1500);
  EXPECT_GE(p.fragments(1500), 4u);
}

TEST(Packet, FragmentsRejectsMtuBelowFramingOverhead) {
  // Regression: an MTU at or below the fixed per-fragment framing overhead
  // (54 bytes: header, addresses, trace id, counts, length, CRC) can carry
  // zero payload bytes, so no finite fragment count exists.  fragments()
  // reports 0 ("cannot be framed") instead of a bogus huge count.
  Packet p;
  EXPECT_EQ(p.fragments(0), 0u);
  EXPECT_EQ(p.fragments(1), 0u);
  EXPECT_EQ(p.fragments(kFrameOverhead), 0u);
  // First usable MTU: one payload byte per fragment, plain ceiling above.
  EXPECT_EQ(p.fragments(kFrameOverhead + 1),
            (p.wire_size() + kFrameOverhead) / (kFrameOverhead + 1));
  EXPECT_GT(p.fragments(kFrameOverhead + 1), 0u);
}

TEST(Packet, NodeIdSerialization) {
  ByteWriter w;
  const NodeId id(0xFFEEDDCCBBAA9988ull, 0x7766554433221100ull);
  write_node_id(w, id);
  EXPECT_EQ(w.size(), 16u);
  ByteReader r(w.data());
  EXPECT_EQ(read_node_id(r), id);
}

}  // namespace
}  // namespace rofl::wire
