#!/usr/bin/env bash
# Full verification: release build + tests, sanitizer build + tests, benches.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

cmake -B build-asan -G Ninja \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer"
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure

for b in build/bench/*; do
  [ -x "$b" ] && "$b"
done
