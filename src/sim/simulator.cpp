#include "sim/simulator.hpp"

#include <cassert>
#include <numeric>

namespace rofl::sim {

std::string_view to_string(MsgCategory c) {
  switch (c) {
    case MsgCategory::kJoin: return "join";
    case MsgCategory::kTeardown: return "teardown";
    case MsgCategory::kRepair: return "repair";
    case MsgCategory::kLinkState: return "linkstate";
    case MsgCategory::kData: return "data";
    case MsgCategory::kControl: return "control";
  }
  return "?";
}

std::uint64_t Counters::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

void Simulator::schedule_in(double delay_ms, Action action) {
  assert(delay_ms >= 0.0);
  schedule_at(now_ms_ + delay_ms, std::move(action));
}

void Simulator::schedule_at(double when_ms, Action action) {
  assert(when_ms >= now_ms_);
  queue_.push(Item{when_ms, next_seq_++, std::move(action)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the action must be moved out before
  // pop, so copy the metadata and move the closure via const_cast -- the
  // item is popped immediately after.
  auto& top = const_cast<Item&>(queue_.top());
  now_ms_ = top.when;
  Action action = std::move(top.action);
  queue_.pop();
  action();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t Simulator::run_until(double t_ms) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().when <= t_ms && step()) ++n;
  now_ms_ = std::max(now_ms_, t_ms);
  return n;
}

}  // namespace rofl::sim
