// trace_export.hpp -- Chrome trace-event (Perfetto-loadable) exporter.
//
// Collects timeline events -- simulator dispatches, SPF recomputations,
// join/repair phases, route flights -- and writes them in the Trace Event
// JSON format that chrome://tracing and https://ui.perfetto.dev open
// directly.  Timestamps are the simulator's virtual clock in microseconds,
// clamped non-decreasing (a requirement of the format; several protocol
// phases run analytically at one instant of virtual time).
//
// A Tracer is installed on a Simulator as a raw-pointer sink; every
// recording site guards with one null check, so an uninstrumented run pays a
// single predictable branch per site and nothing else.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace rofl::obs {

/// One "name": value argument attached to a trace event.
struct TraceArg {
  std::string name;
  std::variant<double, std::uint64_t, std::string> value;
};

class Tracer {
 public:
  /// A complete ("X") event: a named span of `dur_us` starting at `ts_us`.
  /// Track 0 is the simulator; protocol layers use their own tracks so
  /// Perfetto lays them out as separate rows.
  void complete(std::string_view name, std::string_view cat, double ts_us,
                double dur_us, std::uint32_t track = 0,
                std::vector<TraceArg> args = {});

  /// An instant ("i") event.
  void instant(std::string_view name, std::string_view cat, double ts_us,
               std::uint32_t track = 0, std::vector<TraceArg> args = {});

  /// A counter ("C") sample: Perfetto renders each distinct name as its own
  /// graph track.  obs::Timeline emits these live at every window close (one
  /// sample per nonzero counter delta), so the series stay in trace order.
  void counter(std::string_view name, double ts_us, double value,
               std::uint32_t track = 0);

  /// Names a track in the viewer (thread_name metadata record).
  void name_track(std::uint32_t track, std::string_view name);

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }

  /// The whole trace as a JSON object {"traceEvents": [...]}.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`; false if the file could not be opened.
  bool write(const std::string& path) const;

  void clear();

 private:
  struct Event {
    std::string name;
    std::string cat;
    char ph;  // 'X', 'i', 'C' (counter), or 'M' (metadata)
    double ts_us;
    double dur_us;
    std::uint32_t track;
    std::vector<TraceArg> args;
  };

  void push(Event ev);

  std::vector<Event> events_;
  double last_ts_us_ = 0.0;
};

}  // namespace rofl::obs
