// micro_datapath -- google-benchmark microbenchmarks for the hot paths that
// gate a software ROFL forwarder: ring arithmetic, SHA-256 identity
// derivation, bloom probes, pointer-cache and virtual-node best-match
// lookups (the per-packet operations of Algorithm 2), and end-to-end greedy
// forwarding on a warm intradomain network.
//
// The *Baseline benches reimplement the pre-flattening datapath (std::map
// ring state, tick->id / id->tick LRU double-map, std::priority_queue of
// std::function events) so the speedup of the flat structures is measured
// in-tree rather than asserted.  Results are also written to
// BENCH_datapath.json (see bench/emit_json.hpp and
// scripts/bench_trajectory.py).
#include <benchmark/benchmark.h>

#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "bench/emit_json.hpp"
#include "graph/isp_topology.hpp"
#include "rofl/label_table.hpp"
#include "rofl/network.hpp"
#include "sim/simulator.hpp"
#include "util/bloom.hpp"
#include "util/identity.hpp"
#include "util/sha256.hpp"
#include "wire/messages.hpp"

namespace rofl {
namespace {

// A small cycling destination set defeats branch-predictor lock-in on a
// single key without bringing RNG cost into the timed loop.
std::vector<NodeId> make_dests(std::uint64_t seed, std::size_t n = 256) {
  Rng rng(seed);
  std::vector<NodeId> dests;
  dests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    dests.emplace_back(rng.next_u64(), rng.next_u64());
  }
  return dests;
}

void BM_NodeIdDistance(benchmark::State& state) {
  Rng rng(1);
  const NodeId a(rng.next_u64(), rng.next_u64());
  const NodeId b(rng.next_u64(), rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(NodeId::distance_cw(a, b));
  }
}
BENCHMARK(BM_NodeIdDistance);

void BM_NodeIdInterval(benchmark::State& state) {
  Rng rng(2);
  const NodeId a(rng.next_u64(), rng.next_u64());
  const NodeId x(rng.next_u64(), rng.next_u64());
  const NodeId b(rng.next_u64(), rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(NodeId::in_interval_oc(a, x, b));
  }
}
BENCHMARK(BM_NodeIdInterval);

void BM_Sha256Identity(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Identity::generate(rng));
  }
}
BENCHMARK(BM_Sha256Identity);

void BM_Sha256Throughput(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256Throughput)->Arg(64)->Arg(1500)->Arg(65536);

void BM_BloomProbe(benchmark::State& state) {
  BloomFilter bf(static_cast<std::size_t>(state.range(0)), 4);
  Rng rng(4);
  for (int i = 0; i < state.range(0) / 16; ++i) {
    bf.insert(NodeId(rng.next_u64(), rng.next_u64()));
  }
  const NodeId probe(rng.next_u64(), rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.may_contain(probe));
  }
}
BENCHMARK(BM_BloomProbe)->Arg(1 << 12)->Arg(1 << 20);

// -- pointer cache: flat slab+LRU vs the seed's map/double-tick-map ---------

void BM_PointerCacheBestMatch(benchmark::State& state) {
  intra::PointerCache pc(static_cast<std::size_t>(state.range(0)));
  Rng rng(5);
  for (int i = 0; i < state.range(0); ++i) {
    pc.insert(NodeId(rng.next_u64(), rng.next_u64()), 1, {0, 1});
  }
  const std::vector<NodeId> dests = make_dests(50);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pc.best_match(dests[i++ % dests.size()]));
  }
}
BENCHMARK(BM_PointerCacheBestMatch)->Arg(1024)->Arg(65536);

// Faithful replica of the seed PointerCache: ordered map of entries plus a
// tick->id / id->tick double-map for LRU bookkeeping.
class MapPointerCacheBaseline {
 public:
  explicit MapPointerCacheBaseline(std::size_t capacity)
      : capacity_(capacity) {}

  void insert(const NodeId& id, graph::NodeIndex host,
              intra::SourceRoute path) {
    if (capacity_ == 0) return;
    auto [it, inserted] = entries_.insert_or_assign(
        id, intra::CacheEntry{id, host, std::move(path)});
    (void)it;
    if (inserted && entries_.size() > capacity_) evict_lru();
    touch(id);
  }

  const intra::CacheEntry* best_match(const NodeId& dest) {
    if (entries_.empty()) return nullptr;
    auto it = entries_.upper_bound(dest);
    if (it == entries_.begin()) it = entries_.end();
    --it;
    touch(it->first);
    return &it->second;
  }

 private:
  void touch(const NodeId& id) {
    const auto tick_it = tick_of_.find(id);
    if (tick_it != tick_of_.end()) by_tick_.erase(tick_it->second);
    by_tick_[next_tick_] = id;
    tick_of_[id] = next_tick_;
    ++next_tick_;
  }

  void evict_lru() {
    const auto oldest = by_tick_.begin();
    entries_.erase(oldest->second);
    tick_of_.erase(oldest->second);
    by_tick_.erase(oldest);
  }

  std::size_t capacity_;
  std::map<NodeId, intra::CacheEntry> entries_;
  std::map<std::uint64_t, NodeId> by_tick_;
  std::map<NodeId, std::uint64_t> tick_of_;
  std::uint64_t next_tick_ = 0;
};

void BM_PointerCacheBestMatchMapBaseline(benchmark::State& state) {
  MapPointerCacheBaseline pc(static_cast<std::size_t>(state.range(0)));
  Rng rng(5);  // same fill sequence as the flat bench
  for (int i = 0; i < state.range(0); ++i) {
    pc.insert(NodeId(rng.next_u64(), rng.next_u64()), 1, {0, 1});
  }
  const std::vector<NodeId> dests = make_dests(50);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pc.best_match(dests[i++ % dests.size()]));
  }
}
BENCHMARK(BM_PointerCacheBestMatchMapBaseline)->Arg(1024)->Arg(65536);

void BM_PointerCacheInsertEvict(benchmark::State& state) {
  intra::PointerCache pc(static_cast<std::size_t>(state.range(0)));
  Rng rng(51);
  const std::vector<NodeId> keys = make_dests(52, 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    pc.insert(keys[i++ % keys.size()], 1, {0, 1});
  }
  (void)rng;
}
BENCHMARK(BM_PointerCacheInsertEvict)->Arg(1024);

void BM_PointerCacheInsertEvictMapBaseline(benchmark::State& state) {
  MapPointerCacheBaseline pc(static_cast<std::size_t>(state.range(0)));
  const std::vector<NodeId> keys = make_dests(52, 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    pc.insert(keys[i++ % keys.size()], 1, {0, 1});
  }
}
BENCHMARK(BM_PointerCacheInsertEvictMapBaseline)->Arg(1024);

// -- warm network fixture ---------------------------------------------------

struct WarmNetwork {
  graph::IspTopology topo;
  std::unique_ptr<intra::Network> net;
  std::vector<NodeId> ids;

  WarmNetwork() {
    Rng trng(6);
    topo = graph::make_rocketfuel_like(graph::RocketfuelAs::kAs3967, trng);
    intra::Config cfg;
    cfg.cache_capacity = 4096;
    net = std::make_unique<intra::Network>(&topo, cfg, 7);
    for (int i = 0; i < 2000; ++i) {
      const Identity ident = Identity::generate(net->rng());
      const auto gw = static_cast<graph::NodeIndex>(
          net->rng().index(net->router_count()));
      if (net->join_host(ident, gw).ok) ids.push_back(ident.id());
    }
  }
};

WarmNetwork& warm() {
  static WarmNetwork w;
  return w;
}

// -- vnode best-match: flat SoA index vs the seed's std::map ----------------

// Replica of the seed greedy-index value type.
struct MapCandidate {
  graph::NodeIndex host = 0;
  bool resident = false;
  int refs = 0;
};

// Seed lookup: ordered map with the old upper_bound-and-step-back wrap.
const MapCandidate& map_best_match(const std::map<NodeId, MapCandidate>& known,
                                   const NodeId& dest) {
  auto it = known.upper_bound(dest);
  if (it == known.begin()) it = known.end();
  --it;
  return it->second;
}

void BM_VnBestMatch(benchmark::State& state) {
  WarmNetwork& w = warm();
  const auto& router = w.net->router(0);
  const std::vector<NodeId> dests = make_dests(8, 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.vn_best_match(dests[i++ % dests.size()]));
  }
}
BENCHMARK(BM_VnBestMatch);

void BM_VnBestMatchMapBaseline(benchmark::State& state) {
  // The same pointer set router 0 holds (resident vnodes + their successor
  // groups), but in the seed's ordered map.
  WarmNetwork& w = warm();
  std::map<NodeId, MapCandidate> known;
  const auto& router = w.net->router(0);
  for (const auto& [vid, vn] : router.vnodes()) {
    if (vn.host_class == intra::HostClass::kEphemeral) continue;
    known.insert_or_assign(vid, MapCandidate{router.index(), true, 1});
    for (const intra::NeighborPtr& s : vn.successors) {
      auto [it, inserted] = known.try_emplace(
          s.id, MapCandidate{s.host, false, 0});
      ++it->second.refs;
    }
  }
  const std::vector<NodeId> dests = make_dests(8, 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map_best_match(known, dests[i++ % dests.size()]));
  }
}
BENCHMARK(BM_VnBestMatchMapBaseline);

// Size-parameterized variant: a router loaded with N resident vnodes (the
// dense-deployment end of figure 6c) and the identical ID set in the seed's
// map, so the structures -- not the population -- are the variable.
struct SizedIndexFixture {
  std::unique_ptr<intra::Router> router;
  std::map<NodeId, MapCandidate> known;
};

const SizedIndexFixture& sized_index(std::size_t n) {
  static std::map<std::size_t, SizedIndexFixture> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  SizedIndexFixture& f = cache[n];
  Rng rng(60 + static_cast<std::uint64_t>(n));
  f.router = std::make_unique<intra::Router>(0, Identity::generate(rng), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id(rng.next_u64(), rng.next_u64());
    intra::VirtualNode vn;
    vn.id = id;
    if (f.router->add_vnode(std::move(vn)) != nullptr) {
      f.known.insert_or_assign(id, MapCandidate{0, true, 1});
    }
  }
  return f;
}

void BM_VnBestMatchSized(benchmark::State& state) {
  const SizedIndexFixture& f = sized_index(static_cast<std::size_t>(state.range(0)));
  const std::vector<NodeId> dests = make_dests(8, 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.router->vn_best_match(dests[i++ % dests.size()]));
  }
}
BENCHMARK(BM_VnBestMatchSized)->Arg(1024)->Arg(65536);

void BM_VnBestMatchSizedMapBaseline(benchmark::State& state) {
  const SizedIndexFixture& f = sized_index(static_cast<std::size_t>(state.range(0)));
  const std::vector<NodeId> dests = make_dests(8, 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map_best_match(f.known, dests[i++ % dests.size()]));
  }
}
BENCHMARK(BM_VnBestMatchSizedMapBaseline)->Arg(1024)->Arg(65536);

// -- label-switched fast path: per-hop decision A/B (DESIGN.md section 15) --

void BM_HopDecisionGreedy(benchmark::State& state) {
  // What a greedy data packet pays at every router it crosses: the
  // Eytzinger vn best-match descent plus the pointer-cache best-match
  // consult (the two per-hop lookups of Algorithm 2), on the warm fixture's
  // populated router 0.
  WarmNetwork& w = warm();
  intra::Router& router = w.net->router(0);
  const std::vector<NodeId> dests = make_dests(8, 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    const NodeId& dest = dests[i++ % dests.size()];
    benchmark::DoNotOptimize(router.vn_best_match(dest));
    benchmark::DoNotOptimize(router.cache().best_match(dest));
  }
}
BENCHMARK(BM_HopDecisionGreedy);

void BM_HopDecisionLabeled(benchmark::State& state) {
  // The same decision once the flow's labels are installed: one bounds
  // check and one dense-array index in the router's LabelTable.  The label
  // set cycles so the branch predictor cannot lock onto a single slot.
  intra::LabelTable table;
  Rng rng(12);
  std::vector<std::uint32_t> labels;
  labels.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    labels.push_back(table.install(NodeId(rng.next_u64(), rng.next_u64()),
                                   static_cast<graph::NodeIndex>(i % 64),
                                   intra::kNoLabel));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(labels[i++ % labels.size()]));
  }
}
BENCHMARK(BM_HopDecisionLabeled);

// -- event loop: slab/SBO/4-ary-heap simulator vs priority_queue+function ---

constexpr int kEventBatch = 512;

// Protocol events capture a handful of IDs/indices; 40 bytes is typical of
// the unicast/teardown closures in network.cpp.  That fits the Simulator
// Action's 48-byte SBO buffer but exceeds std::function's (16 bytes in
// libstdc++), so the baseline pays one heap allocation per event exactly as
// the seed loop did.
struct EventPayload {
  std::uint64_t vals[4] = {1, 2, 3, 4};
};

void BM_EventLoopSimulator(benchmark::State& state) {
  // Schedules and drains a batch of interleaved-deadline events per
  // iteration; captures stay inside the Action SBO buffer, so the whole
  // batch runs without touching the heap.
  std::uint64_t sink = 0;
  const EventPayload payload;
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < kEventBatch; ++i) {
      const double when = static_cast<double>((i * 37) % 97);
      s.schedule_in(when, [&sink, payload, i] {
        sink += payload.vals[i & 3] + static_cast<unsigned>(i);
      });
    }
    benchmark::DoNotOptimize(s.run());
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kEventBatch);
}
BENCHMARK(BM_EventLoopSimulator);

void BM_EventLoopPriorityQueueBaseline(benchmark::State& state) {
  // The seed event loop: std::function payloads in a binary
  // std::priority_queue.
  struct Item {
    double when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::uint64_t sink = 0;
  const EventPayload payload;
  for (auto _ : state) {
    std::priority_queue<Item, std::vector<Item>, Later> q;
    std::uint64_t seq = 0;
    for (int i = 0; i < kEventBatch; ++i) {
      const double when = static_cast<double>((i * 37) % 97);
      q.push(Item{when, seq++, [&sink, payload, i] {
                    sink += payload.vals[i & 3] + static_cast<unsigned>(i);
                  }});
    }
    std::uint64_t ran = 0;
    while (!q.empty()) {
      // The const_cast move mirrors what the seed Simulator::step did to get
      // the callable out of priority_queue's const top().
      Item item = std::move(const_cast<Item&>(q.top()));
      q.pop();
      item.fn();
      ++ran;
    }
    benchmark::DoNotOptimize(ran);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kEventBatch);
}
BENCHMARK(BM_EventLoopPriorityQueueBaseline);

// -- end-to-end -------------------------------------------------------------

void BM_IntraGreedyRoute(benchmark::State& state) {
  WarmNetwork& w = warm();
  Rng rng(9);
  std::size_t i = 0;
  for (auto _ : state) {
    const NodeId dest = w.ids[i++ % w.ids.size()];
    const auto src =
        static_cast<graph::NodeIndex>(rng.index(w.net->router_count()));
    benchmark::DoNotOptimize(w.net->route(src, dest));
  }
}
BENCHMARK(BM_IntraGreedyRoute);

// Same topology/population as WarmNetwork but with the label fast path on
// and a fixed flow set pre-routed once, so the timed loop measures routes
// served off installed label chains (labels.hits, not installs).
struct WarmLabeledNetwork {
  graph::IspTopology topo;
  std::unique_ptr<intra::Network> net;
  std::vector<std::pair<graph::NodeIndex, NodeId>> flows;

  WarmLabeledNetwork() {
    Rng trng(6);
    topo = graph::make_rocketfuel_like(graph::RocketfuelAs::kAs3967, trng);
    intra::Config cfg;
    cfg.cache_capacity = 4096;
    cfg.enable_labels = true;
    net = std::make_unique<intra::Network>(&topo, cfg, 7);
    std::vector<NodeId> ids;
    for (int i = 0; i < 2000; ++i) {
      const Identity ident = Identity::generate(net->rng());
      const auto gw = static_cast<graph::NodeIndex>(
          net->rng().index(net->router_count()));
      if (net->join_host(ident, gw).ok) ids.push_back(ident.id());
    }
    Rng frng(9);
    for (int i = 0; i < 256; ++i) {
      const NodeId dest = ids[frng.index(ids.size())];
      const auto src =
          static_cast<graph::NodeIndex>(frng.index(net->router_count()));
      (void)net->route(src, dest);  // greedy walk; installs the chain
      flows.emplace_back(src, dest);
    }
  }
};

WarmLabeledNetwork& warm_labeled() {
  static WarmLabeledNetwork w;
  return w;
}

void BM_IntraLabeledRoute(benchmark::State& state) {
  // End-to-end counterpart of BM_IntraGreedyRoute: every route replays an
  // installed label chain, so the delta against the greedy bench is the
  // whole-route payoff of the per-hop A/B above.
  WarmLabeledNetwork& w = warm_labeled();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [src, dest] = w.flows[i++ % w.flows.size()];
    benchmark::DoNotOptimize(w.net->route(src, dest));
  }
}
BENCHMARK(BM_IntraLabeledRoute);

void BM_IntraJoin(benchmark::State& state) {
  WarmNetwork& w = warm();
  for (auto _ : state) {
    const Identity ident = Identity::generate(w.net->rng());
    const auto gw = static_cast<graph::NodeIndex>(
        w.net->rng().index(w.net->router_count()));
    benchmark::DoNotOptimize(w.net->join_host(ident, gw));
  }
}
BENCHMARK(BM_IntraJoin);

void BM_AllRoutersSpf(benchmark::State& state) {
  // The repair-time SPF recompute over every live source, serial vs pooled.
  WarmNetwork& w = warm();
  w.net->map().set_spf_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    w.net->map().fail_link(0, w.topo.graph.neighbors(0).front().to);
    w.net->map().restore_link(0, w.topo.graph.neighbors(0).front().to);
    state.ResumeTiming();
    w.net->map().recompute_all_spf();
  }
}
BENCHMARK(BM_AllRoutersSpf)->Arg(0)->Arg(2)->Arg(4);

// Control-plane codec cost on the two ends of the size spectrum: a 37-byte
// PointerInstall payload (the most common maintenance message) and the
// section-6.3 256-finger JoinRequest whose frame fragments at the MTU.
wire::msg::ControlMessage make_codec_message(std::int64_t fingers) {
  if (fingers == 0) {
    wire::msg::PointerInstall pi;
    pi.subject = NodeId(0x1234, 0x5678);
    pi.neighbor = NodeId(0x9abc, 0xdef0);
    pi.neighbor_host = 7;
    pi.op = 1;
    return pi;
  }
  Rng rng(41);
  wire::msg::JoinRequest jr;
  jr.nonce = rng.next_u64();
  jr.gateway = 3;
  jr.fingers.reserve(static_cast<std::size_t>(fingers));
  for (std::int64_t i = 0; i < fingers; ++i) {
    jr.fingers.push_back({static_cast<std::uint32_t>(rng.next_u64()),
                          static_cast<std::uint16_t>(rng.next_u64())});
  }
  return jr;
}

void BM_ControlEncode(benchmark::State& state) {
  const wire::msg::ControlMessage m = make_codec_message(state.range(0));
  const NodeId src(1, 2), dst(3, 4);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const auto frame = wire::msg::encode_control(m, src, dst);
    bytes += frame.size();
    benchmark::DoNotOptimize(frame.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ControlEncode)->Arg(0)->Arg(256);

void BM_ControlDecode(benchmark::State& state) {
  const wire::msg::ControlMessage m = make_codec_message(state.range(0));
  const auto frame = wire::msg::encode_control(m, NodeId(1, 2), NodeId(3, 4));
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto decoded = wire::msg::decode_control(frame);
    bytes += frame.size();
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ControlDecode)->Arg(0)->Arg(256);

// Snapshot of the warm fixture's metrics registry for the JSON emitter.
// The pointer-cache totals (hit/miss/eviction over every router) are folded
// in as registry counters first, so BENCH_datapath.json records cache
// effectiveness for the workload that produced the timings.
std::string warm_metrics_snapshot() {
  WarmNetwork& w = warm();
  const intra::Network::CacheTotals totals = w.net->cache_totals();
  obs::Registry& m = w.net->simulator().metrics();
  m.set_counter(m.counter("rofl.cache.hits"), totals.hits);
  m.set_counter(m.counter("rofl.cache.misses"), totals.misses);
  m.set_counter(m.counter("rofl.cache.evictions"), totals.evictions);
  m.set_counter(m.counter("rofl.cache.stale_drops"), totals.stale_drops);
  m.set_counter(m.counter("rofl.cache.entries"), totals.entries);
  // Label fast-path effectiveness from the labeled fixture, re-namespaced
  // into the snapshot registry so one JSON records both fixtures.
  WarmLabeledNetwork& lw = warm_labeled();
  obs::Registry& lm = lw.net->simulator().metrics();
  const intra::Network::LabelTotals lt = lw.net->label_totals();
  m.set_counter(m.counter("rofl.labels.flows"), lt.flows);
  m.set_counter(m.counter("rofl.labels.entries"), lt.entries);
  for (const char* name :
       {"labels.installed", "labels.hits", "labels.misses",
        "labels.teardowns", "labels.bytes_saved"}) {
    m.set_counter(m.counter(std::string("rofl.") + name),
                  lm.counter_value(lm.counter(name)));
  }
  return m.to_json(2);
}

}  // namespace
}  // namespace rofl

int main(int argc, char** argv) {
  return rofl::bench::run_with_json(argc, argv, "BENCH_datapath.json",
                                    rofl::warm_metrics_snapshot);
}
