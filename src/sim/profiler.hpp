// profiler.hpp -- wall-clock self-profile of the simulation engines.
//
// The sharded engine (DESIGN.md section 13) can lose time three ways: doing
// work (busy), spinning on the conservative horizon while events are queued
// but not yet safe (stall -- the lookahead tax), or having genuinely nothing
// to do (idle).  End-of-run wall seconds cannot distinguish them; this
// profiler can, and also attributes busy time per event kind and records the
// high-water mark of each shard's inbound SPSC channel, so "why is 8 shards
// not 8x" has a measured answer instead of a guess.
//
// Every field here is WALL time measured with std::chrono::steady_clock.
// None of it may ever enter a determinism digest, a byte-compared metrics
// file, or a timeline window record -- it varies run to run by construction.
// The engines only read the wall clock when a profiler is installed, so
// unprofiled runs pay one predictable branch per loop iteration.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rofl::sim {

class EngineProfiler {
 public:
  /// Busy-time attribution for one event kind (ShardEvent::kind; the
  /// single-threaded Simulator has no kinds and uses kind 0).
  struct KindStats {
    std::uint64_t events = 0;
    double busy_s = 0.0;
  };

  struct ShardProfile {
    double busy_s = 0.0;   // loop iterations that executed >= 1 event
    double stall_s = 0.0;  // events queued but none below the horizon
    double idle_s = 0.0;   // local queue empty
    std::uint64_t events = 0;
    // Max occupancy seen across this shard's INBOUND channels, sampled by
    // the consumer (drain) side only -- SpscQueue::size_approx is undefined
    // from a third thread (see util/spsc_queue.hpp).
    std::uint64_t spsc_hwm = 0;
    std::vector<KindStats> kinds;  // indexed by event kind

    void add_event(std::uint32_t kind, double dt_s) {
      if (kind >= kinds.size()) kinds.resize(kind + 1);
      ++kinds[kind].events;
      kinds[kind].busy_s += dt_s;
      ++events;
    }
    [[nodiscard]] double total_s() const { return busy_s + stall_s + idle_s; }
    [[nodiscard]] double busy_frac() const {
      return total_s() > 0.0 ? busy_s / total_s() : 0.0;
    }
    [[nodiscard]] double stall_frac() const {
      return total_s() > 0.0 ? stall_s / total_s() : 0.0;
    }
    [[nodiscard]] double idle_frac() const {
      return total_s() > 0.0 ? idle_s / total_s() : 0.0;
    }
  };

  explicit EngineProfiler(std::uint32_t shards) : shards_(shards) {}

  [[nodiscard]] ShardProfile& shard(std::uint32_t s) { return shards_[s]; }
  [[nodiscard]] const std::vector<ShardProfile>& shards() const {
    return shards_;
  }

  /// Optional display names for event kinds (index == kind); pretty-prints
  /// tables and JSON.  Unnamed kinds print as their number.
  void set_kind_names(std::vector<std::string> names) {
    kind_names_ = std::move(names);
  }

  /// {"shards": [{"shard", "busy_s", "stall_s", "idle_s", "busy_frac",
  /// "stall_frac", "idle_frac", "events", "spsc_hwm", "kinds": [...]}]}.
  /// Wall-time provenance only: embed in BENCH_*.json "profile" fields or
  /// stdout, never in determinism-gated artifacts.
  [[nodiscard]] std::string to_json(int indent = 0) const;

  /// One row per shard: busy/stall/idle percentages, events, channel hwm.
  void print_table(std::ostream& os) const;

 private:
  std::vector<ShardProfile> shards_;
  std::vector<std::string> kind_names_;
};

}  // namespace rofl::sim
