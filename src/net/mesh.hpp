// mesh.hpp -- drive a live mesh of LiveRouters through a join storm.
//
// A mesh run is the experiment the simulator's scenario commands script, but
// executed by real routers over a real (or in-process) transport: generate
// `hosts` self-certifying identities from the seed, home host h on gateway
// router h % routers, seed host 0's identity at the bootstrap router, and let
// every gateway join its hosts concurrently.  The run converges when every
// gateway's queue is drained and every pointer install is acked; the audit
// then collects all virtual nodes and checks the assembled ring against the
// globally sorted id order -- successor/predecessor pointers AND owner
// routers must all be exact.
//
// Three execution modes:
//   * loopback  -- all routers on one thread, virtual clock, in-process hub.
//     Deterministic; the byte-parity gate runs here.
//   * udp       -- one thread + one real UDP socket per router, wall clock.
//     Best-effort timing; convergence and audit exactness still hold.
//   * spawn     -- one *process* per router over UDP on a fixed port range;
//     the driver forks workers, collects their vnode tables through the
//     pump's harness ops (kDone/kStop/kStateChunk/kStateAck), audits, and
//     reaps.  Workers rebuild the identical identity assignment from the
//     shared seed, so nothing but the port base needs distributing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/router.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/faults.hpp"
#include "util/identity.hpp"

namespace rofl::net {

enum class MeshBackend { kLoopback, kUdp };

struct MeshConfig {
  std::uint32_t routers = 8;
  std::uint32_t hosts = 400;
  std::uint32_t fingers = 256;  ///< section 6.3 sizing: 256 -> 1638-byte joins
  std::uint64_t seed = 1;
  MeshBackend backend = MeshBackend::kUdp;
  double rate_pps = 0.0;  ///< per-router token-bucket send cap (0 = off)
  sim::NetworkConditions conditions;  ///< socket-boundary impairment
  /// Convergence deadline: wall ms for udp/spawn, virtual ms for loopback.
  double deadline_ms = 60'000.0;
  double timeline_window_ms = 0.0;  ///< 0 disables per-router timelines
  std::uint32_t max_outstanding = 8;
  std::uint16_t base_port = 47100;  ///< spawn mode: worker k binds base+k
  /// Data-plane lookups served over the converged mesh: after the join storm
  /// settles, each gateway (round-robin) probes ids drawn from the joined
  /// set with purpose-2 Locates.  0 disables the phase.
  std::uint32_t lookups = 0;
  /// Router to depart cleanly after convergence (and after the lookup
  /// phase); -1 disables.  Must not be the bootstrap router 0.
  std::int32_t leave_router = -1;
};

struct MeshAuditReport {
  std::uint64_t population = 0;
  std::uint64_t expected = 0;
  std::vector<std::string> errors;  // capped; first few defects verbatim
  std::uint64_t error_count = 0;    // total defects, including capped ones

  [[nodiscard]] bool ok() const {
    return error_count == 0 && population == expected;
  }
};

struct MeshResult {
  bool converged = false;
  MeshAuditReport audit;
  std::uint64_t joins_completed = 0;
  std::uint64_t lookups_completed = 0;
  std::uint64_t lookups_hit = 0;
  /// True when no departure was requested, or the departing router drained
  /// every relink ack and dropped its vnodes.
  bool leave_completed = true;
  double elapsed_ms = 0.0;  ///< virtual (loopback) or wall (udp)
  obs::Registry metrics;    ///< all routers merged
  std::unique_ptr<obs::Timeline> timeline;  ///< merged; null when disabled
};

/// Deterministic identity set shared by driver and workers: identity h is
/// the h-th draw from Rng(seed); its gateway is router h % routers.
std::vector<Identity> make_identities(std::uint64_t seed, std::uint32_t hosts);

/// Ring exactness check over the collected (owner, vnode) pairs.
/// `expected` maps every id to its owning router (sorted by id inside).
MeshAuditReport audit_ring(
    const std::vector<std::pair<RouterId, Vnode>>& collected,
    std::vector<std::pair<NodeId, RouterId>> expected);

/// Runs a loopback or in-process-UDP mesh to convergence (or the deadline).
MeshResult run_mesh(const MeshConfig& cfg);

/// Spawn mode driver: forks `cfg.routers` worker processes of `exe` (each
/// re-invoked as `roflsim net --worker k ...`), waits for the storm, collects
/// and audits state, reaps children.  Prints a report to `out`; returns a
/// process exit code (0 = converged + clean audit).
int run_mesh_spawn(const MeshConfig& cfg, const std::string& exe,
                   std::ostream& out);

/// Spawn mode worker body for router `self`; returns a process exit code.
int run_mesh_worker(const MeshConfig& cfg, RouterId self);

}  // namespace rofl::net
