#include "rofl/router.hpp"

#include <cassert>

namespace rofl::intra {

Router::Router(NodeIndex index, Identity identity, std::size_t cache_capacity)
    : index_(index), identity_(std::move(identity)), cache_(cache_capacity) {}

VirtualNode* Router::add_vnode(VirtualNode vn) {
  vn.home = index_;
  const NodeId id = vn.id;
  auto [it, inserted] = vnodes_.emplace(id, std::move(vn));
  if (!inserted) return nullptr;
  // Ephemeral hosts never serve as anyone's successor or predecessor
  // (section 2.2), so they stay out of the greedy index entirely; packets
  // for them stop at the predecessor's backpointer.
  if (it->second.host_class != HostClass::kEphemeral) {
    index_ptr(id, index_, /*resident=*/true);
    for (const NeighborPtr& s : it->second.successors) {
      index_ptr(s.id, s.host, /*resident=*/false);
    }
  }
  return &it->second;
}

void Router::remove_vnode(const NodeId& id) {
  const auto it = vnodes_.find(id);
  if (it == vnodes_.end()) return;
  vnodes_.erase(it);
  // Full rebuild keeps the resident flag exact even when the removed ID was
  // also some co-resident vnode's successor.
  reindex_vnode(id);
}

VirtualNode* Router::find_vnode(const NodeId& id) {
  const auto it = vnodes_.find(id);
  return it == vnodes_.end() ? nullptr : &it->second;
}

const VirtualNode* Router::find_vnode(const NodeId& id) const {
  const auto it = vnodes_.find(id);
  return it == vnodes_.end() ? nullptr : &it->second;
}

void Router::reindex_vnode(const NodeId& id) {
  // Successor sets are small (successor-group size), so rebuild the whole
  // index contribution of this vnode: drop all non-resident refs we can't
  // attribute, which requires a full rebuild of known_.  Cheaper: rebuild
  // from scratch over all vnodes -- still O(resident * group) and only done
  // on ring maintenance, not on forwarding.
  known_.clear();
  for (const auto& [vid, vn] : vnodes_) {
    if (vn.host_class == HostClass::kEphemeral) continue;
    index_ptr(vid, index_, /*resident=*/true);
    for (const NeighborPtr& s : vn.successors) {
      index_ptr(s.id, s.host, /*resident=*/false);
    }
  }
  (void)id;
}

void Router::add_ephemeral_backpointer(const NodeId& id, NodeIndex gateway) {
  ephemerals_[id] = gateway;
}

void Router::remove_ephemeral_backpointer(const NodeId& id) {
  ephemerals_.erase(id);
}

std::optional<NodeIndex> Router::ephemeral_gateway(const NodeId& id) const {
  const auto it = ephemerals_.find(id);
  if (it == ephemerals_.end()) return std::nullopt;
  return it->second;
}

std::optional<Candidate> Router::vn_best_match(const NodeId& dest) const {
  if (known_.empty()) return std::nullopt;
  auto it = known_.upper_bound(dest);
  if (it == known_.begin()) it = known_.end();
  --it;
  return Candidate{it->first, it->second.host, it->second.resident};
}

bool Router::hosts(const NodeId& dest) const {
  return vnodes_.contains(dest);
}

VirtualNode* Router::predecessor_vnode_of(const NodeId& id) {
  for (auto& [vid, vn] : vnodes_) {
    if (vn.host_class == HostClass::kEphemeral) continue;
    const NeighborPtr* succ = vn.first_successor();
    if (succ == nullptr) continue;
    if (NodeId::in_interval_oc(vid, id, succ->id)) return &vn;
  }
  return nullptr;
}

std::size_t Router::state_entries() const {
  std::size_t n = cache_.size();
  for (const auto& [id, vn] : vnodes_) {
    n += 1 + vn.successors.size() + (vn.predecessor.has_value() ? 1 : 0);
  }
  n += ephemerals_.size();
  return n;
}

void Router::index_ptr(const NodeId& id, NodeIndex host, bool resident) {
  auto [it, inserted] = known_.try_emplace(id, IndexedPtr{host, resident, 1});
  if (!inserted) {
    ++it->second.refs;
    if (resident) {
      it->second.resident = true;
      it->second.host = host;
    }
  }
}

}  // namespace rofl::intra
