// event_queue.hpp -- 4-ary min-heap specialized for simulator events.
//
// Replaces std::priority_queue<Item> (binary heap) on the event hot path.
// A 4-ary heap halves the tree depth, so a sift-down touches ~half as many
// cache lines; with events stored by value in one contiguous slab (their
// payloads inline thanks to the small-buffer callable) the queue performs no
// per-event allocation beyond the amortized slab growth.  pop() moves the
// minimum out instead of the const_cast dance std::priority_queue::top
// forces on move-only elements.
//
// Ordering contract (identical to the old comparator): earliest `when`
// first, ties broken by ascending insertion sequence, so event execution
// order -- and therefore every seeded run -- is fully deterministic.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rofl::sim {

template <typename Event>
class EventQueue {
 public:
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  void reserve(std::size_t n) { items_.reserve(n); }

  [[nodiscard]] const Event& top() const { return items_.front(); }

  void push(Event e) {
    items_.push_back(std::move(e));
    sift_up(items_.size() - 1);
  }

  /// Removes and returns the minimum event.
  Event pop() {
    Event out = std::move(items_.front());
    Event last = std::move(items_.back());
    items_.pop_back();
    if (!items_.empty()) {
      items_.front() = std::move(last);
      sift_down(0);
    }
    return out;
  }

 private:
  [[nodiscard]] static bool before(const Event& a, const Event& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(items_[i], items_[parent])) break;
      std::swap(items_[i], items_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = items_.size();
    for (;;) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + 4, n);
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (before(items_[c], items_[best])) best = c;
      }
      if (!before(items_[best], items_[i])) break;
      std::swap(items_[i], items_[best]);
      i = best;
    }
  }

  std::vector<Event> items_;
};

}  // namespace rofl::sim
