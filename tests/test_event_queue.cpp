#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace rofl::sim {
namespace {

struct Item {
  double when = 0.0;
  std::uint64_t seq = 0;
};

std::vector<Item> drain(EventQueue<Item>& q) {
  std::vector<Item> out;
  while (!q.empty()) out.push_back(q.pop());
  return out;
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<Item> q;
  q.push({5.0, 0});
  q.push({1.0, 1});
  q.push({3.0, 2});
  const auto out = drain(q);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].when, 1.0);
  EXPECT_DOUBLE_EQ(out[1].when, 3.0);
  EXPECT_DOUBLE_EQ(out[2].when, 5.0);
}

TEST(EventQueue, SameTimestampPopsInInsertionOrder) {
  EventQueue<Item> q;
  for (std::uint64_t s = 0; s < 64; ++s) q.push({7.0, s});
  const auto out = drain(q);
  ASSERT_EQ(out.size(), 64u);
  for (std::uint64_t s = 0; s < 64; ++s) EXPECT_EQ(out[s].seq, s);
}

// The property the sharded merge depends on (DESIGN.md section 13): the pop
// sequence of any pushed set equals its stable sort by (when, seq), and ties
// stay FIFO even when pops interleave with pushes.  Timestamps come from a
// tiny set so the tie-break carries most of the ordering; `seq` is assigned
// in push order, exactly as both simulators do.
TEST(EventQueue, PropertyMatchesStableSortUnderTies) {
  Rng rng(0xE1E17u);
  for (int round = 0; round < 50; ++round) {
    EventQueue<Item> q;
    std::vector<Item> pushed;
    std::vector<Item> popped;
    std::uint64_t next_seq = 0;
    const std::size_t ops = 200 + rng.below(300);
    for (std::size_t i = 0; i < ops; ++i) {
      if (q.empty() || rng.below(3) != 0) {  // 2:1 push:pop mix
        const Item it{static_cast<double>(rng.below(8)), next_seq++};
        pushed.push_back(it);
        q.push(it);
      } else {
        popped.push_back(q.pop());
      }
    }
    while (!q.empty()) popped.push_back(q.pop());
    ASSERT_EQ(popped.size(), pushed.size());

    // Interleaved case: within every timestamp, seqs must pop in strictly
    // increasing (insertion) order -- the FIFO-among-ties guarantee the
    // cross-shard tie-break (when, src, seq) relies on.
    std::vector<std::uint64_t> last_seq_at(8, 0);
    std::vector<bool> seen_at(8, false);
    for (const Item& it : popped) {
      const auto bucket = static_cast<std::size_t>(it.when);
      if (seen_at[bucket]) {
        EXPECT_GT(it.seq, last_seq_at[bucket])
            << "ties at when=" << it.when << " popped out of insertion order";
      }
      seen_at[bucket] = true;
      last_seq_at[bucket] = it.seq;
    }

    // Drain-only case: pushing the same set fresh and draining to empty must
    // reproduce the stable sort exactly.
    std::vector<Item> reference = pushed;
    std::stable_sort(reference.begin(), reference.end(),
                     [](const Item& a, const Item& b) {
                       if (a.when != b.when) return a.when < b.when;
                       return a.seq < b.seq;
                     });
    EventQueue<Item> q2;
    for (const Item& it : pushed) q2.push(it);
    const auto drained = drain(q2);
    ASSERT_EQ(drained.size(), reference.size());
    for (std::size_t i = 0; i < drained.size(); ++i) {
      EXPECT_DOUBLE_EQ(drained[i].when, reference[i].when);
      EXPECT_EQ(drained[i].seq, reference[i].seq);
    }
  }
}

}  // namespace
}  // namespace rofl::sim
