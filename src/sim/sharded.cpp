#include "sim/sharded.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "sim/profiler.hpp"

namespace rofl::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// splitmix64: the recommended seeder for per-stream PRNGs -- statistically
/// independent streams from adjacent entity ids.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t pack_key(EntityId src, std::uint64_t seq) {
  // Per-source sequences stay well below 2^32 (asserted at send); packing
  // them under the source id makes one u64 whose ordering equals the
  // lexicographic (src, seq) tie-break EventQueue applies after `when`.
  assert(seq < (1ull << 32));
  return (static_cast<std::uint64_t>(src) << 32) | seq;
}

}  // namespace

std::vector<std::uint32_t> balanced_shard_map(
    const std::vector<std::uint64_t>& weights, std::uint32_t shards) {
  assert(shards > 0);
  std::vector<std::uint32_t> order(weights.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return weights[a] > weights[b];
                   });
  std::vector<std::uint64_t> load(shards, 0);
  std::vector<std::uint32_t> map(weights.size(), 0);
  for (const std::uint32_t e : order) {
    std::uint32_t best = 0;
    for (std::uint32_t s = 1; s < shards; ++s) {
      if (load[s] < load[best]) best = s;
    }
    map[e] = best;
    load[best] += weights[e] + 1;  // +1 so zero-weight entities spread too
  }
  return map;
}

Rng& ShardContext::rng(EntityId e) {
  assert(engine_->shard_of(e) == shard_ &&
         "entities may only draw from their owning shard");
  return engine_->entity_rng_[e];
}

obs::Registry& ShardContext::metrics() {
  return engine_->shards_[shard_]->registry;
}

obs::FlightRecorder& ShardContext::recorder() {
  return engine_->shards_[shard_]->recorder;
}

void ShardContext::send(EntityId dst, double delay_ms, std::uint32_t kind,
                        const void* payload, std::size_t size) {
  assert(dst < engine_->entity_count());
  assert(size <= kShardEventPayloadBytes);
  assert(delay_ms >= 0.0);
  ShardedSimulator& eng = *engine_;
  ShardedSimulator::Shard& sh = *eng.shards_[shard_];
  ShardEvent ev;
  ev.when = now_ms_ + delay_ms;
  ev.src = self_;
  ev.dst = dst;
  ev.kind = kind;
  ev.size = static_cast<std::uint16_t>(size);
  if (size > 0) std::memcpy(ev.payload.data(), payload, size);
  ev.seq = eng.sent_by_entity_[self_]++;
  const std::uint32_t target = eng.shard_of_[dst];
  if (dst != self_) {
    // Cross-entity: the conservative bound.  Every simulated link latency
    // must be >= lookahead for the horizon rule to be sound for ANY
    // partition (which is exactly what shard-count independence needs).
    assert(delay_ms + 1e-9 >= eng.cfg_.lookahead_ms &&
           "cross-entity delay below the lookahead bound");
    sh.min_cross_delay = std::min(sh.min_cross_delay, delay_ms);
  }
  if (target == shard_) {
    eng.enqueue_local(sh, ev);
    return;
  }
  sh.cross_sent++;
  // sent-count before the channel push: an event is "in flight" from the
  // moment it is counted until the receiver counts it, so the quiescence
  // check can never observe the gap as completion.
  eng.cross_sent_total_.fetch_add(1, std::memory_order_seq_cst);
  util::SpscQueue<ShardEvent>& chan =
      *eng.channels_[shard_ * eng.shard_count() + target];
  while (!chan.push(ev)) {
    // Receiver drains unconditionally on every loop iteration, so a full
    // ring is transient back-pressure, never deadlock.
    std::this_thread::yield();
  }
}

ShardedSimulator::ShardedSimulator(std::vector<std::uint32_t> map, Config cfg)
    : cfg_(cfg), shard_of_(std::move(map)) {
  assert(cfg_.shards > 0);
  assert(cfg_.shards == 1 || cfg_.lookahead_ms > 0.0);
  shards_.reserve(cfg_.shards);
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(cfg_));
    shards_.back()->processed_by_src.assign(shard_of_.size(), 0);
  }
  for (const std::uint32_t s : shard_of_) {
    assert(s < cfg_.shards);
    (void)s;
  }
  channels_.resize(static_cast<std::size_t>(cfg_.shards) * cfg_.shards);
  for (std::uint32_t a = 0; a < cfg_.shards; ++a) {
    for (std::uint32_t b = 0; b < cfg_.shards; ++b) {
      if (a != b) {
        channels_[a * cfg_.shards + b] =
            std::make_unique<util::SpscQueue<ShardEvent>>(
                cfg_.channel_capacity);
      }
    }
  }
  entity_rng_.reserve(shard_of_.size());
  for (EntityId e = 0; e < shard_of_.size(); ++e) {
    entity_rng_.emplace_back(splitmix64(cfg_.seed ^ e));
  }
  sent_by_entity_.assign(shard_of_.size(), 0);
}

ShardedSimulator::~ShardedSimulator() = default;

void ShardedSimulator::set_registry_init(RegistryInit init) {
  registry_init_ = std::move(init);
  if (registry_init_) {
    for (auto& sh : shards_) registry_init_(sh->registry);
  }
}

void ShardedSimulator::enable_timeline(obs::Timeline::Config cfg) {
  assert(!ran_);
  timeline_enabled_ = true;
  timeline_cfg_ = cfg;
  for (auto& sh : shards_) {
    sh->timeline = std::make_unique<obs::Timeline>(&sh->registry, cfg);
  }
}

void ShardedSimulator::enqueue_local(Shard& sh, const ShardEvent& ev) {
  std::uint32_t slot;
  if (!sh.free_slots.empty()) {
    slot = sh.free_slots.back();
    sh.free_slots.pop_back();
    sh.slab[slot] = ev;
  } else {
    slot = static_cast<std::uint32_t>(sh.slab.size());
    sh.slab.push_back(ev);
  }
  sh.queue.push(HeapItem{ev.when, pack_key(ev.src, ev.seq), slot});
}

void ShardedSimulator::seed_event(double when_ms, EntityId dst,
                                  std::uint32_t kind, const void* payload,
                                  std::size_t size) {
  assert(!ran_);
  assert(dst < entity_count());
  assert(size <= kShardEventPayloadBytes);
  ShardEvent ev;
  ev.when = when_ms;
  ev.src = kEngineEntity;
  ev.dst = dst;
  ev.seq = seed_seq_++;
  ev.kind = kind;
  ev.size = static_cast<std::uint16_t>(size);
  if (size > 0) std::memcpy(ev.payload.data(), payload, size);
  enqueue_local(*shards_[shard_of_[dst]], ev);
}

bool ShardedSimulator::drain_inbound(std::uint32_t s) {
  Shard& sh = *shards_[s];
  bool any = false;
  for (std::uint32_t src = 0; src < shard_count(); ++src) {
    if (src == s) continue;
    util::SpscQueue<ShardEvent>& chan = *channels_[src * shard_count() + s];
    if (profiler_ != nullptr) {
      // Consumer-side occupancy sample before the drain: the high-water mark
      // of this shard's inbound channels (wall-state only).  SpscQueue's
      // size_approx is only meaningful from the producer or consumer thread
      // (a third observer can read the indices torn against each other); the
      // drain loop is the consumer, so this is the one legitimate place to
      // watch channel depth.
      EngineProfiler::ShardProfile& p = profiler_->shard(s);
      p.spsc_hwm = std::max(p.spsc_hwm,
                            static_cast<std::uint64_t>(chan.size_approx()));
    }
    ShardEvent ev;
    while (chan.pop(ev)) {
      if (!any) {
        // ACTIVE before the receive count: between these two stores the
        // event is still accounted as in flight, so the quiescence check
        // sees either an unbalanced counter or a non-idle shard.
        sh.state.store(1, std::memory_order_seq_cst);
        any = true;
      }
      cross_recv_total_.fetch_add(1, std::memory_order_seq_cst);
      sh.cross_received++;
      enqueue_local(sh, ev);
    }
  }
  return any;
}

bool ShardedSimulator::all_idle() const {
  for (const auto& sh : shards_) {
    if (sh->state.load(std::memory_order_seq_cst) != 0) return false;
  }
  return true;
}

void ShardedSimulator::try_finish() {
  // Double-collect quiescence: counters balanced, every shard idle, counters
  // unchanged, every shard still idle.  Any concurrent activity flips a
  // state to ACTIVE before its receive count or bumps the send count first,
  // so a stale-idle view cannot slip through all four checks (see the
  // ordering comments in send/drain_inbound).
  const std::uint64_t s1 = cross_sent_total_.load(std::memory_order_seq_cst);
  const std::uint64_t r1 = cross_recv_total_.load(std::memory_order_seq_cst);
  if (s1 != r1) return;
  if (!all_idle()) return;
  const std::uint64_t s2 = cross_sent_total_.load(std::memory_order_seq_cst);
  if (s2 != s1) return;
  if (!all_idle()) return;
  done_.store(true, std::memory_order_seq_cst);
}

void ShardedSimulator::shard_loop(std::uint32_t s) {
  Shard& sh = *shards_[s];
  const double lookahead = cfg_.lookahead_ms;
  const std::uint32_t n = shard_count();
  ShardContext ctx(this, s);
  // Wall-clock self-profile: each loop iteration is attributed whole to
  // busy (executed >= 1 event), stall (queued work blocked by the horizon),
  // or idle (empty queue).  Individual handler invocations are additionally
  // timed per event kind.  All of it is wall state; none of it feeds back
  // into scheduling, so profiled runs stay bit-identical to unprofiled ones.
  EngineProfiler::ShardProfile* prof =
      profiler_ != nullptr ? &profiler_->shard(s) : nullptr;
  auto mark = std::chrono::steady_clock::now();
  while (!done_.load(std::memory_order_acquire)) {
    // 1. Horizon from the other shards' promises (INF when single-shard).
    double horizon = kInf;
    for (std::uint32_t o = 0; o < n; ++o) {
      if (o == s) continue;
      horizon = std::min(horizon,
                         shards_[o]->published.load(std::memory_order_seq_cst));
    }
    if (horizon != kInf) horizon += lookahead;
    // 2. Drain AFTER reading promises: any event still in flight from a
    //    shard whose promise we just read is timestamped >= horizon, and
    //    anything below horizon is already in some channel and lands in the
    //    local queue here, before processing.
    const bool drained = drain_inbound(s);
    // 3. Publish the promise.  min(local top, horizon) is a valid forever-
    //    bound on our future sends, and it is monotone, so other shards may
    //    cache it.
    const double top = sh.queue.empty() ? kInf : sh.queue.top().when;
    sh.published.store(std::min(top, horizon), std::memory_order_seq_cst);
    // 4. Execute the safe window.
    std::uint64_t batch = 0;
    while (!sh.queue.empty() && sh.queue.top().when < horizon) {
      const HeapItem item = sh.queue.pop();
      if (item.when < sh.now_ms) sh.monotone = false;
      sh.now_ms = item.when;
      const ShardEvent ev = sh.slab[item.slot];
      sh.free_slots.push_back(item.slot);
      if (ev.src == kEngineEntity) {
        sh.seeds_processed++;
      } else {
        sh.processed_by_src[ev.src]++;
      }
      sh.processed++;
      // Close elapsed windows BEFORE any registry writes for this event
      // (same order as Simulator::step): the event-count increment must land
      // in the window containing item.when, or the boundary attribution
      // would depend on how events split across shards.
      if (sh.timeline != nullptr) sh.timeline->advance_to(item.when);
      sh.registry.add(sh.events_id);
      ctx.self_ = ev.dst;
      ctx.now_ms_ = ev.when;
      if (prof != nullptr) {
        const auto t0 = std::chrono::steady_clock::now();
        handler_(ctx, ev);
        const auto t1 = std::chrono::steady_clock::now();
        prof->add_event(ev.kind,
                        std::chrono::duration<double>(t1 - t0).count());
      } else {
        handler_(ctx, ev);
      }
      ++batch;
    }
    if (prof != nullptr) {
      const auto now = std::chrono::steady_clock::now();
      const double dt = std::chrono::duration<double>(now - mark).count();
      mark = now;
      if (batch > 0) {
        prof->busy_s += dt;
      } else if (!sh.queue.empty()) {
        prof->stall_s += dt;  // lookahead wait: work queued, horizon too low
      } else {
        prof->idle_s += dt;
      }
    }
    if (batch > 0) {
      sh.batches++;
      continue;
    }
    if (!drained && sh.queue.empty()) {
      // Idle: volunteer for the quiescence check (shard 0 arbitrates).
      sh.state.store(0, std::memory_order_seq_cst);
      if (s == 0) try_finish();
      sh.idle_spins++;
      std::this_thread::yield();
    } else {
      sh.idle_spins++;
      std::this_thread::yield();
    }
  }
}

ShardedSimulator::RunStats ShardedSimulator::run() {
  assert(!ran_);
  assert(handler_ && "set_handler before run");
  ran_ = true;
  // Register the dispatch counter last -- after any registry_init -- so user
  // metric ids keep starting at 0 (models capture ids from a scratch registry
  // that knows nothing of engine-internal metrics).  Same name as the
  // single-threaded engine's counter, so the merged timeline exposes one
  // canonical events/sec series either way.
  for (auto& sh : shards_) {
    sh->events_id = sh->registry.counter("sim.events");
  }
  const auto wall_start = std::chrono::steady_clock::now();
  if (shard_count() == 1) {
    shard_loop(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(shard_count());
    for (std::uint32_t s = 0; s < shard_count(); ++s) {
      workers.emplace_back([this, s] { shard_loop(s); });
    }
    for (std::thread& t : workers) t.join();
  }
  stats_ = RunStats{};
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  for (const auto& sh : shards_) {
    stats_.processed += sh->processed;
    stats_.cross_shard_msgs += sh->cross_sent;
    stats_.cross_shard_received += sh->cross_received;
    stats_.batches += sh->batches;
    stats_.idle_spins += sh->idle_spins;
    stats_.end_time_ms = std::max(stats_.end_time_ms, sh->now_ms);
    stats_.min_cross_delay_ms =
        std::min(stats_.min_cross_delay_ms, sh->min_cross_delay);
    stats_.monotone = stats_.monotone && sh->monotone;
  }
  for (const std::uint64_t sent : sent_by_entity_) stats_.entity_msgs += sent;
  if (timeline_enabled_) {
    // Flush every shard to the GLOBAL end time (not its own last event):
    // all shards then hold windows [0, floor(end/W)], which is what makes
    // the merged timeline independent of the shard count -- a shard that
    // went quiet early still contributes its final gauge values (and zero
    // deltas) to the trailing windows.
    for (auto& sh : shards_) sh->timeline->flush(stats_.end_time_ms);
  }
  return stats_;
}

obs::Registry ShardedSimulator::merged_metrics() const {
  obs::Registry merged;
  if (registry_init_) registry_init_(merged);
  for (const auto& sh : shards_) merged.merge_from(sh->registry);
  return merged;
}

obs::Timeline ShardedSimulator::merged_timeline() const {
  assert(timeline_enabled_ && "enable_timeline before run");
  obs::Timeline merged(timeline_cfg_);
  for (const auto& sh : shards_) merged.merge_from(*sh->timeline);
  return merged;
}

std::uint64_t ShardedSimulator::flight_digest() const {
  std::uint64_t d = 0;
  for (const auto& sh : shards_) d += sh->recorder.content_digest();
  return d;
}

std::vector<std::uint64_t> ShardedSimulator::processed_by_source() const {
  std::vector<std::uint64_t> out(shard_of_.size(), 0);
  for (const auto& sh : shards_) {
    for (std::size_t e = 0; e < out.size(); ++e) {
      out[e] += sh->processed_by_src[e];
    }
  }
  return out;
}

std::uint64_t ShardedSimulator::seeds_processed() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->seeds_processed;
  return n;
}

}  // namespace rofl::sim
