#include "ext/weighted_anycast.hpp"

#include <cassert>
#include <cmath>

namespace rofl::ext {

void WeightedAnycast::add_replica(graph::NodeIndex gateway, double weight) {
  assert(weight > 0.0);
  assert(!deployed_);
  replicas_.push_back(Replica{gateway, weight, 0, NodeId{}});
}

bool WeightedAnycast::deploy(intra::Network& net) {
  if (replicas_.empty() || deployed_) return false;
  double total = 0.0;
  for (const Replica& r : replicas_) total += r.weight;
  // Assign each replica the TOP suffix of its range: greedy routing to a
  // uniform (G, r) stops at the smallest member suffix >= ...; with
  // closest-without-overshoot semantics, (G, r) is absorbed by the member
  // whose suffix is the largest <= r -- so place members at range *bottoms*
  // shifted by one: the owner of [bottom, next_bottom) is the member at
  // `bottom`.  Range widths are proportional to weight.
  const double span = 4294967296.0;  // 2^32 suffixes
  double acc = 0.0;
  for (Replica& r : replicas_) {
    r.suffix = static_cast<std::uint32_t>(std::floor(acc / total * span));
    r.member_id = group_.with_suffix(r.suffix);
    acc += r.weight;
  }
  for (Replica& r : replicas_) {
    const auto js = anycast_join(net, group_, r.suffix, r.gateway);
    if (!js.ok) return false;
  }
  deployed_ = true;
  return true;
}

AnycastResult WeightedAnycast::send(intra::Network& net, graph::NodeIndex src,
                                    Rng& rng) const {
  const auto r = static_cast<std::uint32_t>(rng.below(1ull << 32));
  // Ownership-exact delivery: load must follow the suffix split, not the
  // placement luck of whichever replica sits on more shortest paths.
  return anycast_route(net, src, group_, r, /*absorb_en_route=*/false);
}

const WeightedAnycast::Replica* WeightedAnycast::owner_of(
    std::uint32_t suffix) const {
  if (replicas_.empty()) return nullptr;
  const Replica* best = &replicas_.back();  // wrap: below first range
  for (const Replica& r : replicas_) {
    if (r.suffix <= suffix) best = &r;
  }
  return best;
}

}  // namespace rofl::ext
