// test_proto.cpp -- the sans-I/O protocol layer in isolation.
//
// Two levels.  First the pure ring decisions in proto/ring.hpp -- interval
// predicates, predecessor selection, join-reply construction, departure
// relinks -- exercised as plain functions, including the wraparound and
// degenerate-ring corners that are hard to hit reliably through a full mesh.
// Second, proto::Core driven by a test Env over an in-memory frame bus: two
// cores exchanging encoded frames on a virtual clock, with no transport, no
// threads, and no LiveRouter -- the proof that the state machine alone
// carries joins, lookups, and clean departure.

#include <gtest/gtest.h>

#include <cstdint>
#include <algorithm>
#include <initializer_list>
#include <map>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "proto/core.hpp"
#include "proto/env.hpp"
#include "proto/ring.hpp"
#include "util/identity.hpp"
#include "util/rng.hpp"

namespace rofl::proto {
namespace {

NodeId id64(std::uint64_t v) { return NodeId::from_u64(v); }

// ---------------------------------------------------------------- ring.hpp

TEST(Ring, IsPredecessorOf) {
  // target in (pred, succ], clockwise.
  EXPECT_TRUE(is_predecessor_of(id64(10), id64(15), id64(20)));
  EXPECT_TRUE(is_predecessor_of(id64(10), id64(20), id64(20)));  // closed top
  EXPECT_FALSE(is_predecessor_of(id64(10), id64(10), id64(20)));  // open bottom
  EXPECT_FALSE(is_predecessor_of(id64(10), id64(25), id64(20)));
  // Wraparound arc.
  EXPECT_TRUE(is_predecessor_of(id64(900), id64(5), id64(10)));
  EXPECT_FALSE(is_predecessor_of(id64(900), id64(500), id64(10)));
  // Self-loop (a, a]: the one-node ring owns the whole circle.
  EXPECT_TRUE(is_predecessor_of(id64(7), id64(123), id64(7)));
}

TEST(Ring, AcceptNotify) {
  // Fresh seed self-loop accepts any candidate.
  EXPECT_TRUE(accept_notify(id64(50), id64(50), id64(10)));
  // Strictly closer in (cur_pred, self) wins...
  EXPECT_TRUE(accept_notify(id64(50), id64(10), id64(40)));
  // ...equal or farther does not: stale installs can never regress.
  EXPECT_FALSE(accept_notify(id64(50), id64(40), id64(40)));
  EXPECT_FALSE(accept_notify(id64(50), id64(40), id64(10)));
  // The candidate may not be self.
  EXPECT_FALSE(accept_notify(id64(50), id64(40), id64(50)));
}

TEST(Ring, ClosestPredecessor) {
  const std::vector<NodeId> ids = {id64(10), id64(30), id64(70)};
  const auto proj = [](const NodeId& id) -> const NodeId& { return id; };
  // Largest id at-or-below the target wins (smallest nonzero cw distance).
  auto it = closest_predecessor(ids.begin(), ids.end(), id64(50), proj);
  ASSERT_NE(it, ids.end());
  EXPECT_EQ(*it, id64(30));
  // A resident target is never its own predecessor.
  it = closest_predecessor(ids.begin(), ids.end(), id64(30), proj);
  ASSERT_NE(it, ids.end());
  EXPECT_EQ(*it, id64(10));
  // Wraparound: below the smallest id, the largest is the predecessor.
  it = closest_predecessor(ids.begin(), ids.end(), id64(5), proj);
  ASSERT_NE(it, ids.end());
  EXPECT_EQ(*it, id64(70));
  // Empty range and only-the-target both return last.
  const std::vector<NodeId> none;
  EXPECT_EQ(closest_predecessor(none.begin(), none.end(), id64(1), proj),
            none.end());
  const std::vector<NodeId> self_only = {id64(5)};
  EXPECT_EQ(closest_predecessor(self_only.begin(), self_only.end(), id64(5),
                                proj),
            self_only.end());
}

TEST(Ring, MakeJoinReplyFiltersJoinerWithSingletonFallback) {
  const std::vector<RingPtr> group = {{id64(20), 2}, {id64(30), 3}};
  wire::msg::JoinReply r =
      make_join_reply(id64(10), 1, std::span(group.data(), group.size()),
                      id64(20));
  EXPECT_EQ(r.predecessor, id64(10));
  EXPECT_EQ(r.predecessor_host, 1u);
  ASSERT_EQ(r.successors.size(), 1u);
  EXPECT_EQ(r.successors[0].target, id64(30));
  EXPECT_EQ(r.successors[0].home_as, 3u);

  // Whole group filtered away -> the predecessor doubles as successor.
  const std::vector<RingPtr> only_joiner = {{id64(20), 2}};
  r = make_join_reply(id64(10), 1,
                      std::span(only_joiner.data(), only_joiner.size()),
                      id64(20));
  ASSERT_EQ(r.successors.size(), 1u);
  EXPECT_EQ(r.successors[0].target, id64(10));
  EXPECT_EQ(r.successors[0].home_as, 1u);
}

std::map<NodeId, Vnode> make_vnodes(
    std::initializer_list<std::tuple<std::uint64_t, std::uint64_t,
                                     std::uint32_t, std::uint64_t,
                                     std::uint32_t>>
        rows) {
  // (id, succ, succ_owner, pred, pred_owner)
  std::map<NodeId, Vnode> m;
  for (const auto& [id, s, so, p, po] : rows) {
    Vnode v;
    v.id = id64(id);
    v.succ = id64(s);
    v.succ_owner = so;
    v.pred = id64(p);
    v.pred_owner = po;
    m[v.id] = v;
  }
  return m;
}

TEST(Ring, LeaveRelinksCollapseResidentRuns) {
  // Ring 10 20 30 40 50; departing router owns the run {20, 30} and the
  // singleton {50}; ids 10 and 40 survive on router 1.
  const auto vnodes = make_vnodes({{20, 30, 9, 10, 1},
                                   {30, 40, 1, 20, 9},
                                   {50, 10, 1, 40, 1}});
  const std::vector<LeaveRelink> relinks = compute_leave_relinks(vnodes);
  ASSERT_EQ(relinks.size(), 2u);
  // One relink per run: {20,30} bridges 10 -> 40, {50} bridges 40 -> 10.
  // Map order puts the run ending at 30 first.
  EXPECT_EQ(relinks[0].succ.id, id64(40));
  EXPECT_EQ(relinks[0].succ.owner, 1u);
  EXPECT_EQ(relinks[0].pred.id, id64(10));
  EXPECT_EQ(relinks[0].pred.owner, 1u);
  EXPECT_EQ(relinks[1].succ.id, id64(10));
  EXPECT_EQ(relinks[1].pred.id, id64(40));
}

TEST(Ring, LeaveRelinksEmptyWhenWholeRingResident) {
  const auto vnodes = make_vnodes({{10, 20, 9, 20, 9}, {20, 10, 9, 10, 9}});
  EXPECT_TRUE(compute_leave_relinks(vnodes).empty());
  EXPECT_TRUE(compute_leave_relinks(std::map<NodeId, Vnode>{}).empty());
}

// --------------------------------------------------------- proto::Core bus

struct BusFrame {
  RouterId dst;
  std::vector<std::uint8_t> bytes;
};

/// The narrowest possible driver: frames go onto a shared vector, retries
/// are tallied, metrics live in a per-core registry.  No clock, no sockets.
class TestEnv final : public Env {
 public:
  explicit TestEnv(std::vector<BusFrame>* bus) : bus_(bus) {}
  void send(RouterId dst, std::vector<std::uint8_t> frame,
            double /*now_ms*/) override {
    bus_->push_back(BusFrame{dst, std::move(frame)});
  }
  obs::Registry& metrics() override { return reg_; }
  void note_retry() override { ++retries; }
  void note_retry_exhausted() override { ++exhausted; }

  obs::Registry reg_;
  std::uint64_t retries = 0;
  std::uint64_t exhausted = 0;

 private:
  std::vector<BusFrame>* bus_;
};

struct MiniMesh {
  explicit MiniMesh(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      envs.push_back(std::make_unique<TestEnv>(&bus));
      CoreConfig cc;
      cc.self = i;
      cc.bootstrap = 0;
      cc.fingers = 0;
      cores.push_back(std::make_unique<Core>(cc, *envs[i]));
    }
  }

  [[nodiscard]] bool all_quiescent() const {
    for (const auto& c : cores) {
      if (!c->quiescent()) return false;
    }
    return true;
  }

  /// Lossless instant delivery on a 0.25 ms virtual clock; returns true on
  /// quiescence before `limit_ms`.
  bool run(double limit_ms = 10'000.0) {
    while (now < limit_ms) {
      std::vector<BusFrame> pending;
      pending.swap(bus);
      for (BusFrame& f : pending) {
        cores[f.dst]->on_frame(f.bytes, now);
      }
      for (auto& c : cores) c->tick(now);
      if (bus.empty() && all_quiescent()) return true;
      now += 0.25;
    }
    return false;
  }

  /// Exact-ring audit over every resident vnode: sorted ids must chain
  /// succ/pred pointers and owners perfectly.
  void expect_exact_ring() const {
    std::vector<std::pair<NodeId, RouterId>> all;
    for (RouterId r = 0; r < cores.size(); ++r) {
      for (const auto& [id, v] : cores[r]->vnodes()) all.emplace_back(id, r);
    }
    std::sort(all.begin(), all.end());
    ASSERT_FALSE(all.empty());
    const std::size_t n = all.size();
    for (std::size_t i = 0; i < n; ++i) {
      const auto& [id, owner] = all[i];
      const Vnode& v = cores[owner]->vnodes().at(id);
      const auto& [sid, sowner] = all[(i + 1) % n];
      const auto& [pid, powner] = all[(i + n - 1) % n];
      EXPECT_EQ(v.succ, sid) << "succ of " << id.to_string();
      EXPECT_EQ(v.succ_owner, sowner) << "succ owner of " << id.to_string();
      EXPECT_EQ(v.pred, pid) << "pred of " << id.to_string();
      EXPECT_EQ(v.pred_owner, powner) << "pred owner of " << id.to_string();
    }
  }

  std::vector<BusFrame> bus;
  std::vector<std::unique_ptr<TestEnv>> envs;
  std::vector<std::unique_ptr<Core>> cores;
  double now = 0.0;
};

TEST(ProtoCore, JoinStormOverFrameBus) {
  MiniMesh mesh(2);
  Rng rng(17);
  mesh.cores[0]->seed(Identity::generate(rng));
  std::vector<NodeId> joined;
  for (int i = 0; i < 12; ++i) {
    Identity ident = Identity::generate(rng);
    joined.push_back(ident.id());
    mesh.cores[i % 2]->enqueue_join(std::move(ident));
  }
  ASSERT_TRUE(mesh.run());
  EXPECT_EQ(mesh.cores[0]->joins_completed() +
                mesh.cores[1]->joins_completed(),
            12u);
  mesh.expect_exact_ring();
  // Lossless bus: no retries, no exhaustion.
  EXPECT_EQ(mesh.envs[0]->retries + mesh.envs[1]->retries, 0u);
  EXPECT_EQ(mesh.envs[0]->exhausted + mesh.envs[1]->exhausted, 0u);
}

TEST(ProtoCore, LookupsResolveEveryJoinedId) {
  MiniMesh mesh(2);
  Rng rng(18);
  const Identity seed_ident = Identity::generate(rng);
  std::vector<NodeId> all_ids = {seed_ident.id()};
  mesh.cores[0]->seed(seed_ident);
  for (int i = 0; i < 8; ++i) {
    Identity ident = Identity::generate(rng);
    all_ids.push_back(ident.id());
    mesh.cores[i % 2]->enqueue_join(std::move(ident));
  }
  ASSERT_TRUE(mesh.run());
  for (std::size_t i = 0; i < all_ids.size(); ++i) {
    mesh.cores[i % 2]->enqueue_lookup(all_ids[i]);
  }
  ASSERT_TRUE(mesh.run(mesh.now + 10'000.0));
  const std::uint64_t completed = mesh.cores[0]->lookups_completed() +
                                  mesh.cores[1]->lookups_completed();
  const std::uint64_t hit =
      mesh.cores[0]->lookups_hit() + mesh.cores[1]->lookups_hit();
  EXPECT_EQ(completed, all_ids.size());
  EXPECT_EQ(hit, completed);
}

TEST(ProtoCore, CleanLeaveRepairsSurvivingRing) {
  MiniMesh mesh(3);
  Rng rng(19);
  mesh.cores[0]->seed(Identity::generate(rng));
  for (int i = 0; i < 12; ++i) {
    mesh.cores[i % 3]->enqueue_join(Identity::generate(rng));
  }
  ASSERT_TRUE(mesh.run());
  const std::size_t departing = mesh.cores[2]->vnodes().size();
  ASSERT_GT(departing, 0u);

  mesh.cores[2]->begin_leave(mesh.now);
  ASSERT_TRUE(mesh.run(mesh.now + 10'000.0));
  EXPECT_TRUE(mesh.cores[2]->departed());
  EXPECT_TRUE(mesh.cores[2]->vnodes().empty());
  // Survivors re-chain into an exact smaller ring.
  mesh.expect_exact_ring();
}

TEST(ProtoCore, LeaveWithNoResidentsDepartsImmediately) {
  MiniMesh mesh(1);
  mesh.cores[0]->begin_leave(0.0);
  EXPECT_TRUE(mesh.cores[0]->departed());
  EXPECT_TRUE(mesh.cores[0]->quiescent());
}

}  // namespace
}  // namespace rofl::proto
