// Randomized scenario fuzzing: apply long random sequences of protocol
// operations and check the system invariants (DESIGN.md section 5) after
// every step.  Each seed is an independent deterministic scenario; failures
// reproduce exactly.
#include <gtest/gtest.h>

#include <set>

#include "interdomain/inter_network.hpp"
#include "obs/flight_recorder.hpp"
#include "rofl/network.hpp"
#include "sim/faults.hpp"

namespace rofl {
namespace {

// ---------------------------------------------------------------------------
// intradomain fuzz

class IntraFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntraFuzz, InvariantsHoldUnderRandomOperations) {
  const std::uint64_t seed = GetParam();
  Rng trng(seed);
  graph::IspParams params;
  params.router_count = 30 + trng.below(30);
  params.pop_count = 4 + trng.below(6);
  graph::IspTopology topo = graph::make_isp_topology(params, trng);
  intra::Config cfg;
  cfg.successor_group = 2 + trng.below(4);
  cfg.cache_capacity = trng.below(2) == 0 ? 0 : 512;
  intra::Network net(&topo, cfg, seed * 3 + 1);

  Rng op_rng(seed * 7 + 5);
  std::vector<Identity> live;
  std::set<graph::NodeIndex> downed_routers;
  std::vector<std::pair<graph::NodeIndex, graph::NodeIndex>> downed_links;

  const int ops = 160;
  for (int op = 0; op < ops; ++op) {
    const std::uint64_t pick = op_rng.below(100);
    if (pick < 40 || live.size() < 5) {
      // join (stable or ephemeral)
      Identity ident = Identity::generate(net.rng());
      const auto gw = static_cast<graph::NodeIndex>(
          op_rng.index(net.router_count()));
      const auto cls = op_rng.chance(0.2) ? intra::HostClass::kEphemeral
                                          : intra::HostClass::kStable;
      if (net.join_host(ident, gw, cls).ok) live.push_back(ident);
    } else if (pick < 60 && !live.empty()) {
      // host failure or graceful leave
      const std::size_t v = op_rng.index(live.size());
      if (op_rng.chance(0.5)) {
        (void)net.fail_host(live[v].id());
      } else {
        (void)net.leave_host(live[v].id());
      }
      live.erase(live.begin() + static_cast<long>(v));
    } else if (pick < 72) {
      // router failure (connectivity-preserving), sometimes restore later
      const auto r = static_cast<graph::NodeIndex>(
          op_rng.index(net.router_count()));
      if (downed_routers.contains(r)) {
        (void)net.restore_router(r);
        downed_routers.erase(r);
      } else if (topo.graph.node_up(r)) {
        topo.graph.set_node_up(r, false);
        const bool still = topo.graph.connected();
        topo.graph.set_node_up(r, true);
        if (still) {
          (void)net.fail_router(r);
          downed_routers.insert(r);
          // Hosts whose gateway died were rehomed by the protocol; our
          // mirror just keeps identities (directory is the truth).
        }
      }
    } else if (pick < 86) {
      // link flap (may partition; repair_partitions runs inside)
      const auto u = static_cast<graph::NodeIndex>(
          op_rng.index(net.router_count()));
      if (topo.graph.neighbors(u).empty()) continue;
      const auto& e = topo.graph.neighbors(
          u)[op_rng.index(topo.graph.neighbors(u).size())];
      if (topo.graph.link_up(u, e.to)) {
        (void)net.fail_link(u, e.to);
        downed_links.emplace_back(u, e.to);
      }
    } else if (!downed_links.empty()) {
      const auto [u, v] = downed_links.back();
      downed_links.pop_back();
      (void)net.restore_link(u, v);
    }

    // --- invariants after every operation ---
    std::string err;
    ASSERT_TRUE(net.verify_rings(&err))
        << "seed " << seed << " op " << op << ": " << err;
  }

  // End state: restore everything and require full reachability
  // (invariant (a): a path exists => ROFL delivers).
  for (const auto& [u, v] : downed_links) (void)net.restore_link(u, v);
  for (const auto r : downed_routers) (void)net.restore_router(r);
  (void)net.repair_partitions();
  std::string err;
  // After a full repair pass the state must be exactly canonical: complete
  // successor groups and predecessors, not just succ0.
  ASSERT_TRUE(net.verify_rings(&err, /*strict=*/true))
      << "seed " << seed << " final: " << err;
  graph::NodeIndex probe = 0;
  for (const auto& [id, home] : net.directory()) {
    EXPECT_TRUE(net.route(probe, id).delivered)
        << "seed " << seed << " cannot reach " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntraFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233,
                                           377, 610, 987));

// ---------------------------------------------------------------------------
// interdomain fuzz

class InterFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InterFuzz, InvariantsHoldUnderRandomOperations) {
  const std::uint64_t seed = GetParam();
  Rng trng(seed + 1000);
  graph::AsGenParams gp;
  gp.tier1_count = 3;
  gp.tier2_count = 6 + trng.below(6);
  gp.tier3_count = 12 + trng.below(10);
  gp.stub_count = 30 + trng.below(30);
  gp.total_hosts = 5000;
  const graph::AsTopology topo = graph::AsTopology::make_internet_like(gp, trng);

  inter::InterConfig cfg;
  cfg.peering_mode = (seed % 2 == 0) ? inter::PeeringMode::kVirtualAs
                                     : inter::PeeringMode::kBloom;
  cfg.fingers_per_id = (seed % 3 == 0) ? 24 : 0;
  inter::InterNetwork net(&topo, cfg, seed * 11 + 3);

  Rng op_rng(seed * 13 + 7);
  std::vector<NodeId> live;
  std::set<graph::AsIndex> downed;

  const inter::JoinStrategy strategies[] = {
      inter::JoinStrategy::kEphemeral, inter::JoinStrategy::kSingleHomed,
      inter::JoinStrategy::kRecursiveMultihomed,
      inter::JoinStrategy::kPeering};

  const int ops = 90;
  for (int op = 0; op < ops; ++op) {
    const std::uint64_t pick = op_rng.below(100);
    if (pick < 55 || live.size() < 5) {
      const auto js = net.join_random_host(
          strategies[op_rng.index(4)]);
      if (js.ok) live.push_back(net.directory().rbegin()->first);
    } else if (pick < 75 && !live.empty()) {
      const std::size_t v = op_rng.index(live.size());
      (void)net.leave_host(live[v]);
      live.erase(live.begin() + static_cast<long>(v));
    } else if (pick < 90) {
      // stub AS flap
      const auto a = static_cast<graph::AsIndex>(
          op_rng.index(topo.as_count()));
      if (downed.contains(a)) {
        (void)net.restore_as(a);
        downed.erase(a);
      } else if (net.base_topology().is_stub(a) &&
                 net.base_topology().as_up(a)) {
        (void)net.fail_as(a);
        downed.insert(a);
      }
    } else if (!downed.empty()) {
      const auto a = *downed.begin();
      (void)net.restore_as(a);
      downed.erase(a);
    }
  }
  for (const auto a : downed) (void)net.restore_as(a);

  std::string err;
  ASSERT_TRUE(net.verify_rings(&err)) << "seed " << seed << ": " << err;
  // Full reachability from a live transit AS.
  graph::AsIndex probe = 0;
  std::size_t delivered = 0, total = 0;
  for (const auto& [id, home] : net.directory()) {
    ++total;
    if (net.route(probe, id).delivered) ++delivered;
  }
  EXPECT_EQ(delivered, total) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

// ---------------------------------------------------------------------------
// faulty fuzz: churn under message loss / duplication / jitter plus scheduled
// link flaps.  Two properties per seed:
//   (a) eventual consistency -- once the faults stop, one repair pass brings
//       the rings back to canonical state and every surviving ID is
//       reachable;
//   (b) bit-identical determinism -- two runs with the same seed produce the
//       same metrics snapshot and the same flight-recorder hop sequence,
//       drop-for-drop.

struct FaultyRunResult {
  bool converged = false;
  std::string err;
  std::string metrics_json;
  std::vector<obs::HopRecord> hops;
  std::uint64_t dropped = 0;
  std::uint64_t retries = 0;
};

// Drops wall-clock lines (SPF recompute timings) from a metrics snapshot:
// they measure host CPU time, not simulated behavior, so they legitimately
// differ between two otherwise bit-identical runs.
std::string scrub_wall_clock(const std::string& json) {
  std::string out;
  std::size_t pos = 0;
  while (pos < json.size()) {
    std::size_t eol = json.find('\n', pos);
    if (eol == std::string::npos) eol = json.size();
    const std::string_view line(json.data() + pos, eol - pos);
    if (line.find("recompute_ms") == std::string_view::npos) {
      out.append(line);
      out.push_back('\n');
    }
    pos = eol + 1;
  }
  return out;
}

FaultyRunResult run_faulty_intra(std::uint64_t seed) {
  FaultyRunResult out;
  Rng trng(seed);
  graph::IspParams params;
  params.router_count = 24 + trng.below(12);
  params.pop_count = 4;
  graph::IspTopology topo = graph::make_isp_topology(params, trng);
  intra::Config cfg;
  cfg.successor_group = 3;
  intra::Network net(&topo, cfg, seed * 3 + 1);
  obs::FlightRecorder rec(1 << 14);
  net.set_flight_recorder(&rec);

  // Collect the physical edges so the flap schedule hits real links.
  std::vector<std::pair<graph::NodeIndex, graph::NodeIndex>> edges;
  for (graph::NodeIndex u = 0; u < topo.graph.node_count(); ++u) {
    for (const auto& e : topo.graph.neighbors(u)) {
      if (e.to > u) edges.emplace_back(u, e.to);
    }
  }

  sim::FaultPlan plan;
  plan.defaults.loss = 0.05;
  plan.defaults.duplicate = 0.02;
  plan.defaults.jitter_ms = 0.4;
  Rng flap_rng(seed * 17 + 3);
  const auto [fu1, fv1] = edges[flap_rng.index(edges.size())];
  const auto [fu2, fv2] = edges[flap_rng.index(edges.size())];
  plan.link_flaps.push_back({fu1, fv1, /*down_at_ms=*/8.0, /*up_at_ms=*/30.0});
  plan.link_flaps.push_back({fu2, fv2, /*down_at_ms=*/20.0, /*up_at_ms=*/44.0});

  sim::FaultInjector inj(plan, seed ^ 0xF417C0DEull,
                         &net.simulator().metrics());
  net.set_fault_injector(&inj);
  net.schedule_fault_plan(plan);

  Rng op_rng(seed * 7 + 5);
  std::vector<Identity> live;
  double t = 0.0;
  for (int op = 0; op < 60; ++op) {
    t += 1.0;
    net.simulator().run_until(t);  // let scheduled flap events interleave
    const std::uint64_t pick = op_rng.below(100);
    if (pick < 50 || live.size() < 4) {
      Identity ident = Identity::generate(net.rng());
      const auto gw = static_cast<graph::NodeIndex>(
          op_rng.index(net.router_count()));
      if (net.join_host(ident, gw).ok) live.push_back(ident);
    } else if (pick < 70 && !live.empty()) {
      const std::size_t v = op_rng.index(live.size());
      if (op_rng.chance(0.5)) {
        (void)net.fail_host(live[v].id());
      } else {
        (void)net.leave_host(live[v].id());
      }
      live.erase(live.begin() + static_cast<long>(v));
    } else if (!live.empty()) {
      // data-plane traffic through the lossy network
      const auto src = static_cast<graph::NodeIndex>(
          op_rng.index(net.router_count()));
      (void)net.route(src, live[op_rng.index(live.size())].id());
    }
  }
  net.simulator().run_until(100.0);  // both flap windows closed and healed

  out.dropped = inj.dropped();
  out.retries = inj.retries();
  out.metrics_json = scrub_wall_clock(net.simulator().metrics().to_json());
  out.hops = rec.all();

  // Faults off: the surviving state must heal to canonical rings and full
  // reachability.  (Mid-join drops can leave dangling pointers; the repair
  // pass is exactly the machinery that must absorb them.)
  net.set_fault_injector(nullptr);
  (void)net.repair_partitions();
  std::string err;
  if (!net.verify_rings(&err, /*strict=*/true)) {
    out.err = err;
    return out;
  }
  for (const auto& [id, home] : net.directory()) {
    if (!net.route(0, id).delivered) {
      out.err = "unreachable id after repair";
      return out;
    }
  }
  out.converged = true;
  return out;
}

class FaultyIntraFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultyIntraFuzz, ConvergesAndReproducesBitIdentically) {
  const std::uint64_t seed = GetParam();
  const FaultyRunResult a = run_faulty_intra(seed);
  const FaultyRunResult b = run_faulty_intra(seed);
  ASSERT_TRUE(a.converged) << "seed " << seed << " run A: " << a.err;
  ASSERT_TRUE(b.converged) << "seed " << seed << " run B: " << b.err;
  // The plan actually bit: messages were dropped and the retry machinery ran.
  EXPECT_GT(a.dropped, 0u) << "seed " << seed;
  // Bit-identical reproduction: every counter and every recorded hop
  // (including each fault-drop annotation) matches across same-seed runs.
  EXPECT_EQ(a.metrics_json, b.metrics_json) << "seed " << seed;
  ASSERT_EQ(a.hops.size(), b.hops.size()) << "seed " << seed;
  EXPECT_TRUE(a.hops == b.hops) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultyIntraFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Interdomain variant: joins run their level registrations through the
// retry/backoff exchange; levels whose retries exhaust are left for repair().
FaultyRunResult run_faulty_inter(std::uint64_t seed) {
  FaultyRunResult out;
  Rng trng(seed + 1000);
  graph::AsGenParams gp;
  gp.tier1_count = 3;
  gp.tier2_count = 6;
  gp.tier3_count = 12;
  gp.stub_count = 30;
  gp.total_hosts = 4000;
  const graph::AsTopology topo = graph::AsTopology::make_internet_like(gp, trng);

  inter::InterConfig cfg;
  inter::InterNetwork net(&topo, cfg, seed * 11 + 3);

  sim::FaultPlan plan;
  plan.defaults.loss = 0.05;
  sim::FaultInjector inj(plan, seed ^ 0xF417C0DEull,
                         &net.simulator().metrics());
  net.set_fault_injector(&inj);

  Rng op_rng(seed * 13 + 7);
  std::vector<NodeId> live;
  const inter::JoinStrategy strategies[] = {
      inter::JoinStrategy::kEphemeral, inter::JoinStrategy::kSingleHomed,
      inter::JoinStrategy::kRecursiveMultihomed,
      inter::JoinStrategy::kPeering};
  for (int op = 0; op < 50; ++op) {
    const std::uint64_t pick = op_rng.below(100);
    if (pick < 60 || live.size() < 5) {
      const auto js = net.join_random_host(strategies[op_rng.index(4)]);
      if (js.ok) live.push_back(net.directory().rbegin()->first);
    } else if (pick < 80 && !live.empty()) {
      const std::size_t v = op_rng.index(live.size());
      (void)net.leave_host(live[v]);
      live.erase(live.begin() + static_cast<long>(v));
    } else if (!live.empty()) {
      (void)net.route(static_cast<graph::AsIndex>(
                          op_rng.index(topo.as_count())),
                      live[op_rng.index(live.size())]);
    }
  }

  out.dropped = inj.dropped();
  out.retries = inj.retries();
  out.metrics_json = scrub_wall_clock(net.simulator().metrics().to_json());

  // Faults off: maintenance passes must converge (no work left) and restore
  // every registration that loss prevented.
  net.set_fault_injector(nullptr);
  bool settled = false;
  for (int pass = 0; pass < 8 && !settled; ++pass) {
    settled = net.repair().messages == 0;
  }
  if (!settled) {
    out.err = "repair did not converge";
    return out;
  }
  std::string err;
  if (!net.verify_rings(&err)) {
    out.err = err;
    return out;
  }
  for (const auto& [id, home] : net.directory()) {
    if (!net.route(0, id).delivered) {
      out.err = "unreachable id after repair";
      return out;
    }
  }
  out.converged = true;
  return out;
}

class FaultyInterFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultyInterFuzz, ConvergesAndReproducesBitIdentically) {
  const std::uint64_t seed = GetParam();
  const FaultyRunResult a = run_faulty_inter(seed);
  const FaultyRunResult b = run_faulty_inter(seed);
  ASSERT_TRUE(a.converged) << "seed " << seed << " run A: " << a.err;
  ASSERT_TRUE(b.converged) << "seed " << seed << " run B: " << b.err;
  EXPECT_GT(a.dropped, 0u) << "seed " << seed;
  EXPECT_EQ(a.metrics_json, b.metrics_json) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultyInterFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------------
// Targeted join/leave race under heavy loss (regression for the splice-in
// rollback bug).  With 30% loss and a nearly-exhausted retry budget, many
// joins abort partway through the pointer-installation exchange.  An aborted
// join must leave NO trace: historically a failed join could leave the new
// ID already spliced into its neighbors' successor groups ("phantom
// successor") while never landing in the directory, and the next leave or
// repair pass would then chase a pointer to a host that does not exist.

class LossyJoinLeaveRace : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossyJoinLeaveRace, FailedJoinsLeaveNoTrace) {
  const std::uint64_t seed = GetParam();
  Rng trng(seed);
  graph::IspParams params;
  params.router_count = 24;
  params.pop_count = 4;
  graph::IspTopology topo = graph::make_isp_topology(params, trng);

  intra::Config cfg;
  cfg.successor_group = 3;
  cfg.retry.max_attempts = 2;  // loss frequently exhausts the budget
  intra::Network net(&topo, cfg, seed * 3 + 1);

  sim::FaultPlan plan;
  plan.defaults.loss = 0.30;
  sim::FaultInjector inj(plan, seed ^ 0xF417C0DEull,
                         &net.simulator().metrics());
  net.set_fault_injector(&inj);

  // Any appearance of `id` in ring state, caches, or backpointers counts.
  const auto traces_of = [&](const NodeId& id) -> std::string {
    if (net.directory().contains(id)) return "directory";
    for (graph::NodeIndex i = 0; i < net.router_count(); ++i) {
      const intra::Router& r = net.router(i);
      if (r.find_vnode(id) != nullptr) return "vnode@" + std::to_string(i);
      for (const auto& [vid, vn] : r.vnodes()) {
        for (const intra::NeighborPtr& s : vn.successors) {
          if (s.id == id) return "successor@" + std::to_string(i);
        }
        if (vn.predecessor.has_value() && vn.predecessor->id == id) {
          return "predecessor@" + std::to_string(i);
        }
      }
      if (r.cache().find(id) != nullptr) return "cache@" + std::to_string(i);
      if (r.ephemeral_gateway(id).has_value()) {
        return "backpointer@" + std::to_string(i);
      }
    }
    return "";
  };

  Rng op_rng(seed * 7 + 5);
  std::vector<Identity> live;
  std::size_t failed_joins = 0;
  for (int op = 0; op < 120; ++op) {
    if (op_rng.chance(0.6) || live.size() < 4) {
      Identity ident = Identity::generate(net.rng());
      const auto gw = static_cast<graph::NodeIndex>(
          op_rng.index(net.router_count()));
      const auto js = net.join_host(ident, gw);
      if (js.ok) {
        live.push_back(ident);
      } else {
        ++failed_joins;
        // The rollback contract: a failed join is a no-op.
        const std::string trace = traces_of(ident.id());
        ASSERT_EQ(trace, "") << "seed " << seed << " op " << op
                             << ": aborted join left a " << trace;
      }
    } else {
      const std::size_t v = op_rng.index(live.size());
      (void)net.leave_host(live[v].id());
      live.erase(live.begin() + static_cast<long>(v));
    }
  }
  // The scenario only bites if the retry budget actually ran out sometimes.
  EXPECT_GT(failed_joins, 0u) << "seed " << seed;

  // Once the loss stops, the survivors repair to a canonical ring.
  net.set_fault_injector(nullptr);
  (void)net.repair_partitions();
  std::string err;
  ASSERT_TRUE(net.verify_rings(&err, /*strict=*/true))
      << "seed " << seed << ": " << err;
  for (const auto& [id, home] : net.directory()) {
    EXPECT_TRUE(net.route(0, id).delivered) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossyJoinLeaveRace,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace rofl
