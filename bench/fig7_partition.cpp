// fig7_partition -- regenerates Figure 7: overhead to recover from a
// partition, as a function of the number of IDs per PoP.
//
// Method as in the paper: join hosts so each PoP carries the target ID
// count, pick a random PoP, cut all of its external links (partitioning the
// ring), then reconnect, measuring the total repair traffic.  The paper
// found repair "did not trigger any massive spikes in overhead, which was
// roughly on the same order of magnitude of rejoining all the hosts in the
// PoP", and that every run reconverged to a correct ring -- both properties
// are checked here.
#include <iostream>
#include <set>

#include "bench_common.hpp"
#include "rofl/network.hpp"
#include "util/table.hpp"

namespace rofl {
namespace {

struct PartitionResult {
  std::uint64_t repair_messages = 0;
  std::uint64_t rejoin_equivalent = 0;  // cost of freshly rejoining the PoP
  bool reconverged = false;
};

PartitionResult run_partition(graph::RocketfuelAs which,
                              std::size_t ids_per_pop) {
  Rng trng(bench::kSeed);
  const graph::IspTopology topo = graph::make_rocketfuel_like(which, trng);
  intra::Network net(&topo, intra::Config{}, bench::kSeed + 5);

  // Populate every PoP to the target count (hosts pick gateways inside
  // their PoP).
  double mean_join_cost = 0.0;
  std::size_t joins = 0;
  for (std::size_t p = 0; p < topo.pop_count(); ++p) {
    for (std::size_t i = 0; i < ids_per_pop; ++i) {
      const auto& members = topo.pops[p];
      const auto gw = members[net.rng().index(members.size())];
      const Identity ident = Identity::generate(net.rng());
      const auto js = net.join_host(ident, gw);
      if (js.ok) {
        mean_join_cost += static_cast<double>(js.messages);
        ++joins;
      }
    }
  }
  if (joins > 0) mean_join_cost /= static_cast<double>(joins);

  // Cut a mid-list PoP off the network.
  const std::size_t victim = topo.pop_count() / 2;
  const std::set<graph::NodeIndex> pop_set(topo.pops[victim].begin(),
                                           topo.pops[victim].end());
  std::vector<std::pair<graph::NodeIndex, graph::NodeIndex>> cut;
  for (const graph::NodeIndex r : topo.pops[victim]) {
    for (const auto& e : topo.graph.neighbors(r)) {
      if (!pop_set.contains(e.to)) cut.emplace_back(r, e.to);
    }
  }

  PartitionResult res;
  for (const auto& [u, v] : cut) net.map().fail_link(u, v);
  const intra::RepairStats split = net.repair_partitions();
  for (const auto& [u, v] : cut) net.map().restore_link(u, v);
  const intra::RepairStats heal = net.repair_partitions();

  res.repair_messages = split.messages + heal.messages;
  res.rejoin_equivalent = static_cast<std::uint64_t>(
      mean_join_cost * static_cast<double>(ids_per_pop));
  res.reconverged = net.verify_rings();
  return res;
}

}  // namespace
}  // namespace rofl

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  const std::vector<std::size_t> per_pop =
      bench::full_scale() ? std::vector<std::size_t>{1, 10, 100, 1'000}
                          : std::vector<std::size_t>{1, 10, 100, 300};

  print_banner(std::cout,
               "Figure 7: partition repair overhead vs IDs per PoP");
  Table t({"ISP", "IDs/PoP", "repair packets", "~rejoin-PoP packets",
           "reconverged"});
  bool all_ok = true;
  for (const auto which : graph::all_rocketfuel_ases()) {
    for (const std::size_t n : per_pop) {
      const PartitionResult r = run_partition(which, n);
      all_ok &= r.reconverged;
      t.add_row({graph::rocketfuel_params(which).name,
                 static_cast<std::int64_t>(n),
                 static_cast<std::int64_t>(r.repair_messages),
                 static_cast<std::int64_t>(r.rejoin_equivalent),
                 std::string(r.reconverged ? "yes" : "NO")});
    }
  }
  t.print(std::cout);
  std::cout << "\nall runs reconverged: " << (all_ok ? "yes" : "NO") << "\n";
  std::cout << "Paper reference: repair overhead grows with IDs per PoP and "
               "stays on the same order of magnitude as rejoining the PoP's "
               "hosts; every run (10M partitions there) reconverged "
               "correctly.\n";
  return all_ok ? 0 : 1;
}
