#include "rofl/network.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

#include "proto/ring.hpp"

namespace rofl::intra {

Network::Network(const graph::IspTopology* topo, Config cfg, std::uint64_t seed)
    : topo_(topo), cfg_(cfg), rng_(seed) {
  assert(topo != nullptr);
  // The graph is owned by the topology; LinkStateMap mutates its up/down
  // flags through this pointer.
  map_ = std::make_unique<linkstate::LinkStateMap>(
      const_cast<graph::Graph*>(&topo_->graph), &sim_);
  if (cfg_.spf_threads.has_value()) map_->set_spf_threads(*cfg_.spf_threads);

  joins_id_ = sim_.metrics().counter("rofl.joins");
  routes_id_ = sim_.metrics().counter("rofl.routes");
  delivered_id_ = sim_.metrics().counter("rofl.routes.delivered");
  stale_ptrs_id_ = sim_.metrics().counter("rofl.stale_pointers");
  encode_failures_id_ = sim_.metrics().counter("rofl.encode_failures");
  codec_rejected_id_ = sim_.metrics().counter("rofl.codec_rejected");
  labels_installed_id_ = sim_.metrics().counter("labels.installed");
  labels_hits_id_ = sim_.metrics().counter("labels.hits");
  labels_misses_id_ = sim_.metrics().counter("labels.misses");
  labels_teardowns_id_ = sim_.metrics().counter("labels.teardowns");
  labels_bytes_saved_id_ = sim_.metrics().counter("labels.bytes_saved");
  label_install_bytes_id_ = sim_.metrics().counter("bytes.label_install");
  // Frame sizes the hot paths charge come from the encoder, not constants:
  // a bare data packet and a minimal teardown, measured once here.
  data_frame_bytes_ = wire::Packet{}.wire_size();
  teardown_frame_bytes_ =
      wire::msg::control_wire_size(wire::msg::Teardown{});
  // A labeled data packet carries one u32 label where the flat header
  // carries two 16-byte NodeIds (destination + source): 28 bytes saved per
  // hop, the header-size win the stretch/overhead figure reports.
  labeled_data_frame_bytes_ = data_frame_bytes_ - 32 + 4;
  label_install_frame_bytes_ =
      wire::msg::control_wire_size(wire::msg::LabelInstall{});
  label_teardown_frame_bytes_ =
      wire::msg::control_wire_size(wire::msg::LabelTeardown{});

  routers_.reserve(topo_->router_count());
  for (NodeIndex i = 0; i < topo_->router_count(); ++i) {
    routers_.push_back(
        std::make_unique<Router>(i, Identity::generate(rng_), cfg_.cache_capacity));
  }

  // Failure notifications from the link-state substrate: caches drop entries
  // whose source routes die (section 2.2 "Recovering" / 3.2 link failure).
  map_->subscribe([this](const linkstate::TopologyEvent& ev) {
    using Kind = linkstate::TopologyEvent::Kind;
    if (ev.kind == Kind::kNodeDown) {
      for (auto& r : routers_) r->cache().invalidate_through_router(ev.a);
    } else if (ev.kind == Kind::kLinkDown) {
      for (auto& r : routers_) r->cache().invalidate_through_link(ev.a, ev.b);
    }
  });

  bootstrap_router_ring();
}

void Network::bootstrap_router_ring() {
  // Section 3.1: each router starts a default virtual node holding the
  // router-ID; the default vnode joins by flooding, so after bring-up the
  // router-ID ring is complete.  We materialise the steady state directly
  // and (optionally) charge one network flood per router for it.
  std::vector<std::pair<NodeId, NodeIndex>> order;
  order.reserve(routers_.size());
  for (const auto& r : routers_) order.emplace_back(r->router_id(), r->index());
  std::sort(order.begin(), order.end());

  const std::size_t n = order.size();
  for (std::size_t i = 0; i < n; ++i) {
    VirtualNode vn;
    vn.id = order[i].first;
    vn.pub = routers_[order[i].second]->identity().public_key();
    vn.is_default = true;
    if (n == 1) {
      // Degenerate one-router ring: the lone default vnode is its own
      // successor and predecessor, same as proto::Core::seed() on the live
      // side -- the ring rules then make it everything's predecessor.
      vn.successors.push_back(NeighborPtr{vn.id, order[i].second});
      vn.predecessor = NeighborPtr{vn.id, order[i].second};
    } else {
      for (std::size_t s = 1; s <= cfg_.successor_group && s < n; ++s) {
        const auto& [sid, shost] = order[(i + s) % n];
        vn.successors.push_back(NeighborPtr{sid, shost});
      }
      const auto& [pid, phost] = order[(i + n - 1) % n];
      vn.predecessor = NeighborPtr{pid, phost};
    }
    routers_[order[i].second]->add_vnode(std::move(vn));
    directory_[order[i].first] = order[i].second;
    if (cfg_.count_bootstrap) map_->account_flood(sim::MsgCategory::kJoin);
  }
}

Network::Transfer Network::unicast(NodeIndex a, NodeIndex b,
                                   sim::MsgCategory cat,
                                   std::size_t frame_bytes) {
  Transfer t;
  if (a == b) {
    t.ok = true;
    t.path = {a};
    return t;
  }
  t.path = map_->path(a, b);
  if (t.path.empty()) return t;
  if (faults_ != nullptr && faults_->message_faults_enabled()) {
    return faulty_transfer(std::move(t), cat, frame_bytes);
  }
  // A logical message larger than the MTU crosses each link as several
  // network packets (the paper's 256-finger join charges 2 per hop); byte
  // counters see the frame size itself.
  const std::uint64_t frags =
      std::max<std::size_t>(1, (frame_bytes + wire::kDefaultMtu - 1) /
                                   wire::kDefaultMtu);
  const std::uint64_t hops = t.path.size() - 1;
  t.ok = true;
  t.messages = hops * frags;
  t.latency_ms = map_->latency_ms(a, b).value_or(0.0);
  sim_.counters().add(cat, t.messages);
  sim_.counters().add_bytes(cat, hops * frame_bytes);
  return t;
}

Network::Transfer Network::faulty_transfer(Transfer t, sim::MsgCategory cat,
                                           std::size_t frame_bytes) {
  // Per-link walk under an active fault injector.  Each leg may drop the
  // message (the hops transmitted up to the drop point are still charged),
  // duplicate it (the copy is charged but dies at the next router), or delay
  // it (jitter on top of propagation latency).  The fault draw covers the
  // logical message (one decision per link regardless of fragment count), so
  // enabling byte accounting does not shift the injector's RNG stream.
  const std::uint64_t frags =
      std::max<std::size_t>(1, (frame_bytes + wire::kDefaultMtu - 1) /
                                   wire::kDefaultMtu);
  for (std::size_t i = 0; i + 1 < t.path.size(); ++i) {
    const NodeIndex u = t.path[i];
    const NodeIndex v = t.path[i + 1];
    const sim::FaultDecision d = faults_->on_link(u, v);
    t.messages += d.copies * frags;
    sim_.counters().add(cat, d.copies * frags);
    sim_.counters().add_bytes(cat, d.copies * frame_bytes);
    if (d.dropped) {
      t.lost = true;
      if (recorder_ != nullptr) {
        recorder_->record(obs::HopRecord{
            .trace_id = 0,
            .t_ms = sim_.now_ms() + t.latency_ms,
            .domain = obs::HopDomain::kIntra,
            .node = u,
            .category = static_cast<std::uint8_t>(cat),
            .kind = obs::HopKind::kFaultDrop,
            .frame_bytes = static_cast<std::uint32_t>(frame_bytes),
            .chased = NodeId{}});
      }
      return t;
    }
    t.latency_ms += link_latency(u, v) + d.extra_latency_ms;
  }
  t.ok = true;
  return t;
}

void Network::set_shard_map(std::vector<std::uint32_t> map) {
  assert(map.empty() || map.size() == routers_.size());
  shard_map_ = std::move(map);
  if (!shard_map_.empty()) {
    shard_cross_msgs_id_ = sim_.metrics().counter("shards.cross_msgs");
    shard_cross_bytes_id_ = sim_.metrics().counter("shards.cross_bytes");
  }
}

Network::Exchange Network::exchange_once(
    NodeIndex a, NodeIndex b, sim::MsgCategory cat,
    const std::vector<std::uint8_t>& frame) {
  Exchange ex;
  ex.t = unicast(a, b, cat, frame.size());
  if (!ex.t.ok) return ex;
  if (!shard_map_.empty() && a != b && shard_map_[a] != shard_map_[b]) {
    sim_.metrics().add(shard_cross_msgs_id_);
    sim_.metrics().add(shard_cross_bytes_id_, frame.size());
  }
  // The frame reached b; the injector may still have garbled bits on the
  // way.  The receiver decodes CRC-verified before touching any state, so a
  // corrupted frame is indistinguishable from a lost one.
  if (faults_ != nullptr && faults_->corruption_enabled() && a != b) {
    std::vector<std::uint8_t> delivered = frame;
    if (faults_->maybe_corrupt_frame(delivered)) {
      ex.received = wire::msg::decode_control(delivered);
      // CRC-32 detects every <=32-bit burst the injector produces; a
      // corrupted frame that decoded anyway would be silent state
      // corruption, the exact failure mode the wire format exists to stop.
      assert(!ex.received.has_value());
      if (ex.received.has_value()) {
        // Defense in depth for release builds: discard it anyway.
        ex.received.reset();
      }
      sim_.metrics().add(codec_rejected_id_);
      ex.t.ok = false;
      ex.t.lost = true;
      return ex;
    }
  }
  ex.received = wire::msg::decode_control(frame);
  assert(ex.received.has_value());  // encode->decode must round-trip
  if (!ex.received.has_value()) {
    sim_.metrics().add(codec_rejected_id_);
    ex.t.ok = false;
    ex.t.lost = true;
  }
  return ex;
}

Network::Exchange Network::reliable_exchange(NodeIndex a, NodeIndex b,
                                             sim::MsgCategory cat,
                                             const wire::msg::ControlMessage& m) {
  Exchange ex;
  const NodeId src =
      a < routers_.size() ? routers_[a]->router_id() : NodeId{};
  const NodeId dst =
      b < routers_.size() ? routers_[b]->router_id() : NodeId{};
  const std::vector<std::uint8_t> frame =
      wire::msg::encode_control(m, src, dst);
  if (frame.empty()) {
    // Oversized message: explicit encode failure.  A zero-byte frame is
    // never transmitted; retransmission cannot help (!ok, !lost).
    sim_.metrics().add(encode_failures_id_);
    return ex;
  }
  if (faults_ == nullptr || !faults_->message_faults_enabled()) {
    return exchange_once(a, b, cat, frame);
  }
  const sim::RetryPolicy& rp = cfg_.retry;
  const unsigned attempts = std::max(1u, rp.max_attempts);
  Transfer total;
  double timeout = rp.timeout_ms;
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) faults_->note_retry();
    Exchange once = exchange_once(a, b, cat, frame);
    total.messages += once.t.messages;
    if (once.t.ok) {
      total.ok = true;
      total.lost = false;
      total.latency_ms += once.t.latency_ms;
      total.path = std::move(once.t.path);
      ex.t = std::move(total);
      ex.received = std::move(once.received);
      return ex;
    }
    if (!once.t.lost) {
      // No path at all: retransmission cannot help.
      ex.t = std::move(total);
      return ex;
    }
    total.lost = true;
    // The sender only learns of the loss (or of the receiver discarding a
    // corrupted frame) when its retransmission timer fires; each lost
    // attempt costs the current timeout, which then backs off exponentially
    // (capped).
    total.latency_ms += timeout;
    timeout = rp.next_timeout(timeout);
  }
  faults_->note_retry_exhausted();
  ex.t = std::move(total);
  return ex;
}

double Network::link_latency(NodeIndex u, NodeIndex v) const {
  for (const graph::Edge& e : topo_->graph.neighbors(u)) {
    if (e.to == v) return e.latency_ms;
  }
  return 0.0;
}

void Network::schedule_fault_plan(const sim::FaultPlan& plan) {
  // Scheduled flaps and crash windows replay through the same public
  // fail/restore entry points an operator would use; the idempotence guards
  // there make overlapping windows and manual intervention safe.
  for (const sim::LinkFlap& f : plan.link_flaps) {
    const NodeIndex u = f.u;
    const NodeIndex v = f.v;
    sim_.schedule_at(f.down_at_ms, [this, u, v] {
      if (!edge_flag_up(u, v)) return;
      if (faults_ != nullptr) faults_->note_flap();
      fail_link(u, v);
    });
    sim_.schedule_at(f.up_at_ms, [this, u, v] {
      if (edge_flag_up(u, v)) return;
      restore_link(u, v);
    });
  }
  for (const sim::CrashWindow& c : plan.crash_windows) {
    const NodeIndex node = c.node;
    sim_.schedule_at(c.down_at_ms, [this, node] {
      if (!topo_->graph.node_up(node)) return;
      if (faults_ != nullptr) faults_->note_crash();
      fail_router(node);
    });
    sim_.schedule_at(c.up_at_ms, [this, node] {
      if (topo_->graph.node_up(node)) return;
      restore_router(node);
    });
  }
}

void Network::cache_along_path(const std::vector<NodeIndex>& path,
                               const NodeId& id, NodeIndex host) {
  if (!cfg_.cache_control_paths) return;
  // Every router the control message traverses may cache a pointer to the
  // destination ID (section 3.1); the stored source route is the path
  // remainder toward the hosting router.
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (path[i] == host) continue;
    SourceRoute suffix(path.begin() + static_cast<long>(i), path.end());
    if (suffix.back() != host) continue;  // only forward-pointing prefixes
    routers_[path[i]]->cache().insert(id, host, std::move(suffix));
  }
}

Network::LocateResult Network::locate_predecessor(NodeIndex from,
                                                  const NodeId& target,
                                                  sim::MsgCategory cat) {
  LocateResult res;
  if (!topo_->graph.node_up(from)) return res;
  NodeIndex cur = from;
  res.control_path.push_back(from);
  // Strictly decreasing clockwise distance of the chased pointer guarantees
  // termination (greedy progress, section 2.2 "Routing").
  NodeId best_dist = NodeId{}.minus(NodeId::from_u64(1));  // max distance
  std::optional<NodeId> last_chased;
  // IDs this walk has already found dead: re-chasing them out of another
  // router's cache would loop the cleanup (the walk still tears each one
  // down exactly once).
  std::set<NodeId> dead_this_walk;
  for (std::uint32_t step = 0; step < cfg_.max_forwarding_hops; ++step) {
    Router& r = *routers_[cur];
    if (VirtualNode* pred = r.predecessor_vnode_of(target); pred != nullptr) {
      res.ok = true;
      res.pred_router = cur;
      res.pred_id = pred->id;
      return res;
    }
    // Gather candidates: Algorithm 2 over VN state and the pointer cache.
    std::vector<Candidate> cands;
    if (auto c = r.vn_best_match(target)) cands.push_back(*c);
    if (const CacheEntry* e = r.cache().best_match(target)) {
      cands.push_back(Candidate{e->id, e->host, false});
    }
    std::sort(cands.begin(), cands.end(), [&](const Candidate& a, const Candidate& b) {
      return NodeId::closer_to(target, a.id, b.id);
    });
    bool moved = false;
    for (const Candidate& c : cands) {
      const NodeId d = NodeId::distance_cw(c.id, target);
      if (!(d < best_dist)) continue;  // no progress via this candidate
      if (c.host == cur) continue;     // resident but not predecessor-owner
      if (dead_this_walk.contains(c.id)) {
        r.cache().erase(c.id);  // clean the copy here too, then skip it
        continue;
      }
      // One locate step rides the wire as a typed message; the next router
      // acts on the decoded target, not on shared memory.
      const std::uint8_t purpose =
          cat == sim::MsgCategory::kJoin
              ? 0
              : (cat == sim::MsgCategory::kRepair ? 1 : 2);
      const Exchange step =
          reliable_exchange(cur, c.host, cat, wire::msg::Locate{target, purpose});
      const Transfer& hop = step.t;
      if (!hop.ok) {
        // Pointer target unreachable (or retries exhausted under loss); a
        // cached pointer is simply dropped.
        r.cache().erase(c.id);
        continue;
      }
      assert(std::get<wire::msg::Locate>(*step.received).target == target);
      res.messages += hop.messages;
      res.latency_ms += hop.latency_ms;
      res.control_path.insert(res.control_path.end(), hop.path.begin() + 1,
                              hop.path.end());
      best_dist = d;
      cur = c.host;
      last_chased = c.id;
      moved = true;
      break;
    }
    if (!moved) {
      // Stale-pointer recovery, mirroring route(): if the previous hop
      // chased a cached ID that is no longer hosted here, tear the stale
      // entry down and restart greedy progress from ring state.  Every reset
      // erases an entry, so this terminates.
      if (last_chased.has_value() && !r.hosts(*last_chased)) {
        r.cache().erase(*last_chased);
        dead_this_walk.insert(*last_chased);
        last_chased.reset();
        best_dist = NodeId{}.minus(NodeId::from_u64(1));
        continue;
      }
      return res;  // stuck: broken ring or partition
    }
  }
  return res;
}

Network::Transfer Network::splice_in(VirtualNode& vn, NodeIndex pred_router,
                                     const NodeId& pred_id,
                                     sim::MsgCategory cat) {
  Transfer total;
  total.ok = true;

  Router& pred_r = *routers_[pred_router];
  VirtualNode* pred = pred_r.find_vnode(pred_id);
  assert(pred != nullptr);

  // The join reply carries the predecessor's successor view as a typed wire
  // message: everything in pred's group is still a successor of vn (vn sits
  // between pred and pred's old succ0).  vn adopts what the gateway decodes
  // off the wire below, not what this scope can see directly.  The reply is
  // built by the shared ring layer -- the same constructor proto::Core's
  // join-request handler uses on the live mesh -- so a gateway adopts the
  // identical neighborhood on either substrate.
  std::vector<proto::RingPtr> pred_group;
  pred_group.reserve(pred->successors.size());
  for (const NeighborPtr& s : pred->successors) {
    pred_group.push_back(proto::RingPtr{s.id, s.host});
  }
  wire::msg::JoinReply reply_msg =
      proto::make_join_reply(pred->id, pred_router, pred_group, vn.id);

  const NeighborPtr self{vn.id, vn.home};
  const NodeId succ0_id = reply_msg.successors.front().target;
  const auto succ0_host =
      static_cast<NodeIndex>(reply_msg.successors.front().home_as);

  // Predecessor adopts vn as its new first successor.  Keep the prior group
  // around: if the join reply below is lost, the adoption must roll back
  // exactly (insertion at capacity k evicts the deepest member, which a
  // plain removal would not restore).
  const std::vector<NeighborPtr> pred_group_before = pred->successors;
  insert_sorted_successor(*pred, self, cfg_.successor_group);
  pred_r.reindex_vnode(pred->id);

  // Ephemeral backpointers that now fall past vn migrate from pred to vn
  // (piggybacked on the join reply, no extra messages).
  for (const auto& [eid, gw] : pred_r.ephemeral_backpointers()) {
    if (proto::is_predecessor_of(vn.id, eid, succ0_id)) {
      reply_msg.migrated_ephemerals.push_back(eid);
    }
  }

  // Join reply: predecessor -> joining host's gateway, carrying the
  // successor list.  Routers along the way cache the new ID.
  const Exchange reply_ex =
      reliable_exchange(pred_router, vn.home, cat, reply_msg);
  const Transfer& reply = reply_ex.t;
  if (!reply.ok) {
    // The joining host never learned it was admitted, so the predecessor
    // must roll back the adoption (its reply timer expires).  Leaving vn in
    // pred's group would create a phantom successor: a ring member whose
    // vnode is never installed anywhere.
    pred->successors = pred_group_before;
    pred_r.reindex_vnode(pred->id);
    total.ok = false;
    return total;
  }
  total.messages += reply.messages;
  // The joining gateway's view of its ring neighborhood is whatever arrived
  // on the wire (CRC-verified and decoded by reliable_exchange).
  const auto& reply_rx = std::get<wire::msg::JoinReply>(*reply_ex.received);
  vn.successors.clear();
  for (const wire::FingerField& s : reply_rx.successors) {
    vn.successors.push_back(
        NeighborPtr{s.target, static_cast<NodeIndex>(s.home_as)});
  }
  vn.predecessor = NeighborPtr{
      reply_rx.predecessor, static_cast<NodeIndex>(reply_rx.predecessor_host)};
  // Routers on the reply path may cache the new ID, so they belong to the
  // directed-flood set cleared on host failure (section 3.2).
  vn.control_path.insert(vn.control_path.end(), reply.path.begin(),
                         reply.path.end());
  {
    // Cache vn.id (lives at vn.home) along the reply path, seen from each
    // traversed router toward vn.home.
    cache_along_path(reply.path, vn.id, vn.home);
    // And the predecessor in the reverse direction.
    std::vector<NodeIndex> rev(reply.path.rbegin(), reply.path.rend());
    cache_along_path(rev, pred->id, pred_router);
  }

  Router& home_r = *routers_[vn.home];
  for (const NodeId& eid : reply_rx.migrated_ephemerals) {
    const auto gw = pred_r.ephemeral_gateway(eid);
    if (gw.has_value()) {
      home_r.add_ephemeral_backpointer(eid, *gw);
      // The ephemeral's ring predecessor is now vn; keep its own pointer in
      // step, or a later teardown would look for the backpointer at the old
      // anchor and leak the migrated one.
      if (*gw < routers_.size()) {
        if (VirtualNode* evn = routers_[*gw]->find_vnode(eid)) {
          evn->predecessor = self;
        }
      }
    }
    pred_r.remove_ephemeral_backpointer(eid);
  }

  // Successor learns its new predecessor (sent from the gateway once the
  // reply arrives; parallel with the deeper-predecessor updates below).  The
  // install is applied from the decoded message at the receiving router.
  double branch_a = reply.latency_ms;
  {
    const Exchange notify_ex = reliable_exchange(
        vn.home, succ0_host, cat,
        wire::msg::PointerInstall{.subject = succ0_id,
                                  .neighbor = vn.id,
                                  .neighbor_host = vn.home,
                                  .op = 1});
    if (notify_ex.t.ok) {
      total.messages += notify_ex.t.messages;
      branch_a += notify_ex.t.latency_ms;
      const auto& install =
          std::get<wire::msg::PointerInstall>(*notify_ex.received);
      if (VirtualNode* succ =
              routers_[succ0_host]->find_vnode(install.subject)) {
        succ->predecessor = NeighborPtr{
            install.neighbor, static_cast<NodeIndex>(install.neighbor_host)};
      }
    }
  }

  // The k-1 deeper predecessors add vn to their successor groups so the
  // group invariant (each vnode knows its next k ring members) holds.
  double branch_b = 0.0;
  NeighborPtr walk = *vn.predecessor;
  NodeIndex walk_from = pred_router;
  for (std::size_t depth = 1; depth < cfg_.successor_group; ++depth) {
    VirtualNode* cur = routers_[walk.host]->find_vnode(walk.id);
    if (cur == nullptr || !cur->predecessor.has_value()) break;
    const NeighborPtr next = *cur->predecessor;
    const Exchange hop_ex = reliable_exchange(
        walk_from, next.host, cat,
        wire::msg::PointerInstall{.subject = next.id,
                                  .neighbor = vn.id,
                                  .neighbor_host = vn.home,
                                  .op = 0});
    if (!hop_ex.t.ok) break;
    total.messages += hop_ex.t.messages;
    branch_b += hop_ex.t.latency_ms;
    const auto& install =
        std::get<wire::msg::PointerInstall>(*hop_ex.received);
    VirtualNode* deeper = routers_[next.host]->find_vnode(install.subject);
    if (deeper == nullptr) break;
    insert_sorted_successor(
        *deeper,
        NeighborPtr{install.neighbor,
                    static_cast<NodeIndex>(install.neighbor_host)},
        cfg_.successor_group);
    routers_[next.host]->reindex_vnode(deeper->id);
    walk_from = next.host;
    walk = next;
  }

  total.latency_ms = std::max(branch_a, branch_b);
  return total;
}

JoinStats Network::join_host(const Identity& ident, NodeIndex gateway,
                             HostClass host_class) {
  JoinStats stats;
  const NodeId id = ident.id();
  if (gateway >= routers_.size() || !topo_->graph.node_up(gateway)) return stats;
  if (directory_.contains(id)) return stats;

  // Algorithm 1 line 1: authenticate(id).  The gateway challenges the host
  // with a nonce; the host proves private-key ownership of its
  // self-certified ID.  One packet over the host access link.
  const std::uint64_t nonce = rng_.next_u64();
  const OwnershipProof proof = ident.prove(nonce);
  if (!verify_ownership(id, ident.public_key(), nonce, proof,
                        ident.private_key())) {
    return stats;
  }
  stats = join_id(id, ident.public_key(), gateway, host_class);
  if (stats.ok) host_identities_.emplace(id, ident);
  return stats;
}

JoinStats Network::join_group_id(const NodeId& id, const PublicKey& pub,
                                 NodeIndex gateway, HostClass host_class) {
  if (gateway >= routers_.size() || !topo_->graph.node_up(gateway)) return {};
  if (directory_.contains(id)) return {};
  return join_id(id, pub, gateway, host_class);
}

JoinStats Network::join_id(const NodeId& id, const PublicKey& pub,
                           NodeIndex gateway, HostClass host_class) {
  JoinStats stats;
  // Ring membership is about to change (and the locate walk below may erase
  // cache entries); every installed label path is suspect from here on.
  flush_labels();
  // Sybil audit (section 2.1): the AS limits how many IDs a router may
  // host, bounding the footprint a compromised router can concoct.
  if (cfg_.max_resident_ids_per_router > 0 &&
      routers_[gateway]->resident_count() >
          cfg_.max_resident_ids_per_router) {
    return stats;
  }
  // Host -> gateway join request over the access link, as an encoded frame.
  // A join carrying a large finger table exceeds the MTU and charges the
  // paper's multi-packet counts (section 6.3); the common fingerless join is
  // one packet, as before.
  {
    wire::msg::JoinRequest req;
    // Derived, not drawn: consuming a protocol RNG draw here would shift
    // every later seeded decision and break run-for-run comparability with
    // pre-wire traces.  (The authentication nonce proper is drawn by
    // join_host before this runs.)
    req.nonce = id.lo() ^ id.hi();
    req.gateway = gateway;
    req.host_class = static_cast<std::uint8_t>(host_class);
    req.public_key = pub;
    const std::vector<std::uint8_t> frame = wire::msg::encode_control(
        wire::msg::ControlMessage{req}, id, routers_[gateway]->router_id());
    if (frame.empty()) {
      sim_.metrics().add(encode_failures_id_);
      return stats;  // never transmit a zero-byte frame
    }
    const auto decoded = wire::msg::decode_control(frame);
    assert(decoded.has_value() &&
           std::get<wire::msg::JoinRequest>(*decoded).gateway == gateway);
    if (!decoded.has_value()) {
      sim_.metrics().add(codec_rejected_id_);
      return stats;
    }
    const std::uint64_t frags =
        std::max<std::size_t>(1, (frame.size() + wire::kDefaultMtu - 1) /
                                     wire::kDefaultMtu);
    stats.messages += frags;
    sim_.counters().add(sim::MsgCategory::kJoin, frags);
    sim_.counters().add_bytes(sim::MsgCategory::kJoin, frame.size());
  }

  const LocateResult loc =
      locate_predecessor(gateway, id, sim::MsgCategory::kJoin);
  if (!loc.ok) return stats;
  stats.messages += loc.messages;

  if (host_class == HostClass::kEphemeral) {
    // Section 2.2, "Ephemeral hosts": no ring membership; the predecessor
    // keeps a source route to the host's gateway.  (The predecessor here is
    // the vnode, hence the backpointer lives at its hosting router.)
    VirtualNode vn;
    vn.id = id;
    vn.pub = pub;
    vn.host_class = HostClass::kEphemeral;
    const VirtualNode* pred =
        routers_[loc.pred_router]->find_vnode(loc.pred_id);
    assert(pred != nullptr);
    // add_vnode below may grow the same router's vnode map when the gateway
    // hosts the predecessor, invalidating `pred` -- copy what we need first.
    const NodeId pred_id = pred->id;
    vn.successors.push_back(NeighborPtr{pred_id, loc.pred_router});
    vn.predecessor = NeighborPtr{pred_id, loc.pred_router};
    vn.control_path = loc.control_path;
    routers_[gateway]->add_vnode(std::move(vn));
    routers_[loc.pred_router]->add_ephemeral_backpointer(id, gateway);
    wire::msg::JoinReply eph_reply;
    eph_reply.predecessor = pred_id;
    eph_reply.predecessor_host = loc.pred_router;
    eph_reply.successors.push_back(
        wire::FingerField{pred_id, loc.pred_router});
    const Exchange reply_ex = reliable_exchange(
        loc.pred_router, gateway, sim::MsgCategory::kJoin, eph_reply);
    stats.messages += reply_ex.t.messages;
    stats.latency_ms = loc.latency_ms + reply_ex.t.latency_ms;
  } else {
    VirtualNode vn;
    vn.id = id;
    vn.pub = pub;
    vn.home = gateway;
    vn.control_path = loc.control_path;
    const Transfer install = [&] {
      VirtualNode local = vn;  // splice computes pointers, then we register
      Transfer t = splice_in(local, loc.pred_router, loc.pred_id,
                             sim::MsgCategory::kJoin);
      if (t.ok) routers_[gateway]->add_vnode(std::move(local));
      return t;
    }();
    if (!install.ok) return stats;
    stats.messages += install.messages;
    stats.latency_ms = loc.latency_ms + install.latency_ms;
    // Top the group up to k so every stable vnode knows its next k ring
    // members (keeps successor-group state canonical network-wide).
    if (VirtualNode* reg = routers_[gateway]->find_vnode(id)) {
      stats.messages += refill_successors(*reg, sim::MsgCategory::kJoin);
    }
  }

  directory_[id] = gateway;
  host_class_[id] = host_class;
  stats.ok = true;
  sim_.metrics().add(joins_id_);
  if (obs::Tracer* t = sim_.tracer()) {
    t->complete("join", "rofl", sim_.now_ms() * 1000.0,
                stats.latency_ms * 1000.0, /*track=*/2,
                {obs::TraceArg{"gateway", std::uint64_t{gateway}},
                 obs::TraceArg{"messages", stats.messages}});
  }
  return stats;
}

JoinStats Network::join_random_host(HostClass host_class) {
  const Identity ident = Identity::generate(rng_);
  // Pick a live gateway uniformly.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto gw = static_cast<NodeIndex>(rng_.index(routers_.size()));
    if (topo_->graph.node_up(gw)) return join_host(ident, gw, host_class);
  }
  return {};
}

std::uint64_t Network::refill_successors(VirtualNode& vn, sim::MsgCategory cat,
                                         const std::optional<NodeId>& exclude) {
  if (vn.successors.size() >= cfg_.successor_group || vn.successors.empty()) {
    return 0;
  }
  // Ask the first live successor for its group and append what we miss
  // (section 3.2: "asking each of its successors ... to fill the gap").
  // `exclude` guards against copying back an ID that is mid-teardown and
  // may still linger in the peer's not-yet-cleaned list.
  const NeighborPtr head = vn.successors.front();
  const Exchange ex = reliable_exchange(
      vn.home, head.host, cat,
      wire::msg::PointerInstall{.subject = vn.id,
                                .neighbor = head.id,
                                .neighbor_host = head.host,
                                .op = 2});
  const Transfer& t = ex.t;
  if (!t.ok) return 0;
  const VirtualNode* succ = routers_[head.host]->find_vnode(head.id);
  if (succ != nullptr) {
    for (const NeighborPtr& s : succ->successors) {
      if (s.id == vn.id) continue;
      if (exclude.has_value() && s.id == *exclude) continue;
      insert_sorted_successor(vn, s, cfg_.successor_group);
    }
    routers_[vn.home]->reindex_vnode(vn.id);
  }
  return t.messages;
}

RepairStats Network::splice_out(const NodeId& id, bool directed_flood,
                                sim::MsgCategory cat) {
  RepairStats stats;
  const auto dir_it = directory_.find(id);
  if (dir_it == directory_.end()) return stats;
  const NodeIndex gw = dir_it->second;
  Router& gw_r = *routers_[gw];
  VirtualNode* vn = gw_r.find_vnode(id);
  if (vn == nullptr) return stats;
  // Labels must die with their pointer path (section 3.2 analogue): the
  // departure mutates ring pointers and caches, so drop every flow.
  flush_labels();

  if (vn->host_class == HostClass::kEphemeral) {
    // Teardown to the predecessor that holds the backpointer.
    if (vn->predecessor.has_value()) {
      const Exchange ex =
          reliable_exchange(gw, vn->predecessor->host, cat,
                            wire::msg::Teardown{.id = id, .reason = 3});
      stats.messages += ex.t.messages;
      const NodeId torn =
          ex.t.ok ? std::get<wire::msg::Teardown>(*ex.received).id : id;
      routers_[vn->predecessor->host]->remove_ephemeral_backpointer(torn);
      ++stats.pointers_torn;
    }
    gw_r.remove_vnode(id);
    directory_.erase(dir_it);
    return stats;
  }

  const std::optional<NeighborPtr> pred_ptr = vn->predecessor;
  const std::optional<NeighborPtr> succ_ptr =
      vn->successors.empty() ? std::nullopt
                             : std::optional<NeighborPtr>(vn->successors.front());
  const std::vector<NodeIndex> control_path = vn->control_path;
  // The departing vnode's ephemeral backpointers migrate to its predecessor.
  std::vector<std::pair<NodeId, NodeIndex>> orphans(
      gw_r.ephemeral_backpointers().begin(),
      gw_r.ephemeral_backpointers().end());

  gw_r.remove_vnode(id);
  directory_.erase(dir_it);

  // Teardown to the first successor: it loses its predecessor pointer and
  // relinks to the departing node's predecessor.
  if (succ_ptr.has_value()) {
    const Exchange ex =
        reliable_exchange(gw, succ_ptr->host, cat,
                          wire::msg::Teardown{.id = id, .reason = 0});
    stats.messages += ex.t.messages;
    if (ex.t.ok) {
      const NodeId torn = std::get<wire::msg::Teardown>(*ex.received).id;
      if (VirtualNode* succ = routers_[succ_ptr->host]->find_vnode(succ_ptr->id)) {
        if (succ->predecessor.has_value() && succ->predecessor->id == torn) {
          succ->predecessor = pred_ptr;
          ++stats.pointers_torn;
        }
      }
    }
  }

  // Teardowns walk the predecessor chain: every vnode holding `id` in its
  // successor group drops it.  Refills run in a second phase once every
  // holder has been cleaned -- otherwise a refill could copy the departing
  // ID right back out of a not-yet-cleaned neighbor (visible in small
  // rings, where everyone holds everyone).
  if (pred_ptr.has_value()) {
    std::vector<NeighborPtr> cleaned;
    NeighborPtr walk = *pred_ptr;
    NodeIndex from = gw;
    for (std::size_t depth = 0; depth < cfg_.successor_group; ++depth) {
      const Exchange ex =
          reliable_exchange(from, walk.host, cat,
                            wire::msg::Teardown{.id = id, .reason = 0});
      if (!ex.t.ok) break;
      stats.messages += ex.t.messages;
      const NodeId torn = std::get<wire::msg::Teardown>(*ex.received).id;
      VirtualNode* p = routers_[walk.host]->find_vnode(walk.id);
      if (p == nullptr) break;
      const bool had =
          std::any_of(p->successors.begin(), p->successors.end(),
                      [&](const NeighborPtr& s) { return s.id == torn; });
      if (had) {
        remove_successor(*p, torn);
        ++stats.pointers_torn;
        routers_[walk.host]->reindex_vnode(p->id);
        cleaned.push_back(walk);
      }
      // The nearest predecessor inherits orphaned ephemeral backpointers.
      if (depth == 0) {
        for (const auto& [eid, egw] : orphans) {
          routers_[walk.host]->add_ephemeral_backpointer(eid, egw);
          // Re-point each orphan's own predecessor at the inheriting vnode,
          // so its eventual teardown finds the backpointer where it now
          // lives instead of at the departed anchor.
          if (egw < routers_.size()) {
            if (VirtualNode* evn = routers_[egw]->find_vnode(eid)) {
              evn->predecessor = walk;
            }
          }
        }
      }
      if (!p->predecessor.has_value()) break;
      from = walk.host;
      walk = *p->predecessor;
    }
    for (const NeighborPtr& w : cleaned) {
      VirtualNode* p = routers_[w.host]->find_vnode(w.id);
      if (p == nullptr) continue;
      stats.messages += refill_successors(*p, cat, id);
    }
  }

  // Directed flood (section 3.2, "Host failure"): a source-routed flood over
  // the constrained router set -- the routers that carried this ID's control
  // messages -- clearing their cached pointers.
  if (directed_flood && !control_path.empty()) {
    for (const NodeIndex r : control_path) {
      if (r < routers_.size()) routers_[r]->cache().erase(id);
    }
    const std::uint64_t flood_msgs = control_path.size() > 0
                                         ? control_path.size() - 1
                                         : 0;
    stats.messages += flood_msgs;
    sim_.counters().add(cat, flood_msgs);
    // Each leg of the flood carries the same encoded teardown frame.
    sim_.counters().add_bytes(cat, flood_msgs * teardown_frame_bytes_);
  }
  return stats;
}

RepairStats Network::fail_host(const NodeId& id) {
  RepairStats stats = splice_out(id, /*directed_flood=*/true,
                                 sim::MsgCategory::kTeardown);
  host_identities_.erase(id);
  host_class_.erase(id);
  return stats;
}

RepairStats Network::leave_host(const NodeId& id) {
  // A graceful departure issues the same directed teardown flood as a crash
  // (section 3.2): the departing host knows its control path and purges the
  // cached pointers that still name it.  Without the flood those entries
  // linger until a data packet trips stale-pointer recovery -- a coherence
  // hole the invariant auditor flags.
  RepairStats stats = splice_out(id, /*directed_flood=*/true,
                                 sim::MsgCategory::kTeardown);
  host_identities_.erase(id);
  host_class_.erase(id);
  return stats;
}

NodeIndex Network::failover_router(NodeIndex failed) const {
  // Routers agree in advance on a deterministic failover order (section
  // 3.2): the next live router in index order.
  for (std::size_t k = 1; k < routers_.size(); ++k) {
    const auto cand =
        static_cast<NodeIndex>((failed + k) % routers_.size());
    if (topo_->graph.node_up(cand)) return cand;
  }
  return graph::kInvalidNode;
}

std::uint32_t Network::tear_unreachable_pointers() {
  std::uint32_t torn = 0;
  for (auto& r : routers_) {
    if (!topo_->graph.node_up(r->index())) continue;
    std::vector<NodeId> dirty;
    for (const auto& [vid, vn_const] : r->vnodes()) {
      VirtualNode* vn = r->find_vnode(vid);
      const std::size_t before = vn->successors.size();
      std::erase_if(vn->successors, [&](const NeighborPtr& s) {
        if (!map_->reachable(r->index(), s.host)) return true;
        return routers_[s.host]->find_vnode(s.id) == nullptr;
      });
      if (vn->predecessor.has_value()) {
        const NeighborPtr p = *vn->predecessor;
        if (!map_->reachable(r->index(), p.host) ||
            routers_[p.host]->find_vnode(p.id) == nullptr) {
          vn->predecessor.reset();
          ++torn;
        }
      }
      if (vn->successors.size() != before) {
        torn += static_cast<std::uint32_t>(before - vn->successors.size());
        dirty.push_back(vid);
      }
    }
    for (const NodeId& vid : dirty) r->reindex_vnode(vid);
  }
  return torn;
}

RepairStats Network::repair_partitions() {
  RepairStats stats;
  flush_labels();
  // The repair pass below queries reachability/paths from essentially every
  // live router; recompute the whole SPF set up front (parallel across the
  // worker pool, deterministic merge) instead of filling the cache one
  // serial Dijkstra at a time.
  map_->recompute_all_spf();
  stats.pointers_torn = tear_unreachable_pointers();

  // Zero-ID convergence (section 3.2): routers distribute the smallest ID
  // they know of (piggybacked on link-state advertisements) until every
  // component agrees on its minimum; only then do rings merge.  The
  // protocol runs explicitly here and its advertisement traffic is charged.
  {
    ZeroIdProtocol zero(&topo_->graph);
    for (const auto& r : routers_) {
      if (!topo_->graph.node_up(r->index())) continue;
      std::optional<NodeId> smallest;
      for (const auto& [vid, vn] : r->vnodes()) {
        if (vn.host_class == HostClass::kEphemeral) continue;
        smallest = vid;  // vnodes_ is sorted: first stable id is smallest
        break;
      }
      zero.set_local_min(r->index(), smallest);
    }
    const auto conv = zero.run_to_convergence();
    // "In practice, the zero node advertisements are piggybacked on
    // link-state advertisements": they consume LSA bytes, not extra
    // packets, so they are accounted on the link-state channel and do not
    // inflate the repair packet counts of figure 7.
    sim_.counters().add(sim::MsgCategory::kLinkState, conv.messages);
    sim_.counters().add_bytes(
        sim::MsgCategory::kLinkState,
        conv.messages * wire::msg::control_wire_size(wire::msg::Lsa{}));
    assert(zero.verify_consistent());
  }

  // Gather live stable vnodes per connected component.
  const auto comp = topo_->graph.components();
  std::map<NodeIndex, std::vector<std::pair<NodeId, NodeIndex>>> rings;
  for (const auto& [id, host] : directory_) {
    if (!topo_->graph.node_up(host)) continue;
    const auto cls = host_class_.find(id);
    if (cls != host_class_.end() && cls->second == HostClass::kEphemeral) continue;
    rings[comp[host]].emplace_back(id, host);
  }

  for (auto& [component, members] : rings) {
    std::sort(members.begin(), members.end());
    const std::size_t n = members.size();
    for (std::size_t i = 0; i < n; ++i) {
      const auto& [vid, vhost] = members[i];
      VirtualNode* vn = routers_[vhost]->find_vnode(vid);
      if (vn == nullptr) continue;

      // Desired successor group within this component.
      std::vector<NeighborPtr> want;
      for (std::size_t s = 1; s <= cfg_.successor_group && s < n; ++s) {
        const auto& [sid, shost] = members[(i + s) % n];
        want.push_back(NeighborPtr{sid, shost});
      }
      std::optional<NeighborPtr> want_pred;
      if (n > 1) {
        const auto& [pid, phost] = members[(i + n - 1) % n];
        want_pred = NeighborPtr{pid, phost};
      }

      // Charge repair messages only for pointers that actually change:
      // unaffected vnodes cost nothing, matching the paper's finding that
      // repair overhead tracks the number of affected identifiers.
      bool changed = false;
      if (vn->successors != want) {
        for (const NeighborPtr& w : want) {
          const bool had = std::any_of(
              vn->successors.begin(), vn->successors.end(),
              [&](const NeighborPtr& s) { return s.id == w.id && s.host == w.host; });
          if (!had) {
            const Exchange ex = reliable_exchange(
                vhost, w.host, sim::MsgCategory::kRepair,
                wire::msg::Repair{.subject = vid,
                                  .neighbor = w.id,
                                  .neighbor_host = w.host,
                                  .op = 0});
            stats.messages += ex.t.messages;
          }
        }
        vn->successors = want;
        changed = true;
      }
      if (vn->predecessor != want_pred) {
        if (want_pred.has_value()) {
          const Exchange ex = reliable_exchange(
              vhost, want_pred->host, sim::MsgCategory::kRepair,
              wire::msg::Repair{.subject = vid,
                                .neighbor = want_pred->id,
                                .neighbor_host = want_pred->host,
                                .op = 1});
          stats.messages += ex.t.messages;
        }
        vn->predecessor = want_pred;
        changed = true;
      }
      if (changed) {
        routers_[vhost]->reindex_vnode(vid);
        ++stats.ids_rejoined;
      }
    }
  }

  // Re-anchor ephemeral backpointers whose predecessor moved or became
  // unreachable.
  for (const auto& [id, gw] : directory_) {
    const auto cls = host_class_.find(id);
    if (cls == host_class_.end() || cls->second != HostClass::kEphemeral) continue;
    if (!topo_->graph.node_up(gw)) continue;
    const LocateResult loc =
        locate_predecessor(gw, id, sim::MsgCategory::kRepair);
    if (!loc.ok) continue;
    stats.messages += loc.messages;
    Router& pred_r = *routers_[loc.pred_router];
    // Canonicalize: exactly one anchor for this id, at the current
    // predecessor.  Backpointers left behind at former predecessors (ring
    // membership changed, router restored with pre-crash state) would
    // otherwise accumulate and misdirect delivery to routers the vnode has
    // left.
    for (auto& rr : routers_) {
      if (rr->index() != loc.pred_router &&
          rr->ephemeral_gateway(id).has_value()) {
        rr->remove_ephemeral_backpointer(id);
      }
    }
    if (pred_r.ephemeral_gateway(id) != gw) {
      pred_r.add_ephemeral_backpointer(id, gw);
      VirtualNode* evn = routers_[gw]->find_vnode(id);
      if (evn != nullptr) {
        evn->predecessor = NeighborPtr{loc.pred_id, loc.pred_router};
      }
    }
  }
  if (obs::Tracer* t = sim_.tracer()) {
    t->instant("repair", "rofl", sim_.now_ms() * 1000.0, /*track=*/2,
               {obs::TraceArg{"messages", stats.messages},
                obs::TraceArg{"ids_rejoined", std::uint64_t{stats.ids_rejoined}},
                obs::TraceArg{"pointers_torn",
                              std::uint64_t{stats.pointers_torn}}});
  }
  return stats;
}

RepairStats Network::fail_router(NodeIndex r) {
  RepairStats stats;
  if (r >= routers_.size() || !topo_->graph.node_up(r)) return stats;
  flush_labels();

  // Snapshot the resident IDs before the crash erases them.
  struct Lost {
    Identity ident;
    HostClass cls;
  };
  std::vector<Lost> lost_hosts;
  std::vector<NodeId> lost_ids;
  for (const auto& [id, vn] : routers_[r]->vnodes()) {
    lost_ids.push_back(id);
    if (vn.is_default) continue;
    const auto it = host_identities_.find(id);
    if (it != host_identities_.end()) {
      // Group-held IDs (anycast/multicast) have no per-host identity and are
      // not auto-rejoined; their members re-register themselves.
      lost_hosts.push_back(Lost{it->second, host_class_.at(id)});
    }
  }

  // The crash: LSA flood + cache invalidation via the subscription.
  map_->fail_node(r);
  for (const NodeId& id : lost_ids) directory_.erase(id);

  // Ring repair around everything the router hosted or was pointed at by.
  const RepairStats ring = repair_partitions();
  stats.messages += ring.messages;
  stats.pointers_torn += ring.pointers_torn;

  // Each disconnected host rejoins via its deterministic failover router
  // (section 3.2, "Router failure").
  const NodeIndex fo = failover_router(r);
  if (fo != graph::kInvalidNode) {
    for (const Lost& h : lost_hosts) {
      host_identities_.erase(h.ident.id());
      host_class_.erase(h.ident.id());
      const JoinStats j = join_host(h.ident, fo, h.cls);
      if (j.ok) {
        stats.messages += j.messages;
        ++stats.ids_rejoined;
      }
    }
  }
  return stats;
}

RepairStats Network::restore_router(NodeIndex r) {
  RepairStats stats;
  if (r >= routers_.size() || topo_->graph.node_up(r)) return stats;
  flush_labels();
  // Clear any stale state from before the crash, then come back up.
  std::vector<NodeId> stale;
  for (const auto& [id, vn] : routers_[r]->vnodes()) stale.push_back(id);
  for (const NodeId& id : stale) routers_[r]->remove_vnode(id);
  routers_[r]->cache().clear();
  // Ephemeral backpointers recorded before the crash are stale too: the
  // vnodes they anchor were rehomed (or torn down) while this router was
  // dark, and their current predecessors hold the live anchors.
  std::vector<NodeId> stale_eph;
  for (const auto& [eid, egw] : routers_[r]->ephemeral_backpointers()) {
    (void)egw;
    stale_eph.push_back(eid);
  }
  for (const NodeId& eid : stale_eph) {
    routers_[r]->remove_ephemeral_backpointer(eid);
  }
  map_->restore_node(r);

  // The router's default vnode rejoins the ring.
  VirtualNode vn;
  vn.id = routers_[r]->router_id();
  vn.pub = routers_[r]->identity().public_key();
  vn.is_default = true;
  vn.home = r;
  routers_[r]->add_vnode(std::move(vn));
  directory_[routers_[r]->router_id()] = r;
  const RepairStats fix = repair_partitions();
  stats.messages += fix.messages;
  stats.ids_rejoined = fix.ids_rejoined;
  return stats;
}

bool Network::edge_flag_up(NodeIndex u, NodeIndex v) const {
  // The raw administrative state of the edge, independent of whether its
  // endpoint routers happen to be up (Graph::link_up conflates the two).
  for (const graph::Edge& e : topo_->graph.neighbors(u)) {
    if (e.to == v) return e.up;
  }
  return false;
}

RepairStats Network::fail_link(NodeIndex u, NodeIndex v) {
  // Idempotence guard: when a scheduled flap and a manual call (or two
  // overlapping flap windows) both fail the same link, the second call must
  // be a no-op.  The link-state substrate floods unconditionally, so without
  // the guard a redundant fail re-charges an LSA flood and re-invalidates
  // every pointer cache that routes over the (already dead) link.
  if (!edge_flag_up(u, v)) return {};
  flush_labels();
  map_->fail_link(u, v);
  return repair_partitions();
}

RepairStats Network::restore_link(NodeIndex u, NodeIndex v) {
  if (edge_flag_up(u, v)) return {};
  flush_labels();
  map_->restore_link(u, v);
  return repair_partitions();
}

RouteStats Network::route(NodeIndex src_router, const NodeId& dest,
                          std::uint64_t trace_id) {
  RouteStats stats;
  if (src_router >= routers_.size() || !topo_->graph.node_up(src_router)) {
    return stats;
  }
  sim_.metrics().add(routes_id_);
  // Hot path stays one null check when no recorder is installed; with one,
  // every forwarding decision becomes a ring write keyed by the trace id.
  if (recorder_ != nullptr) {
    stats.trace_id = trace_id != 0 ? trace_id : recorder_->new_trace();
  }
  const auto rec = [&](obs::HopKind kind, NodeIndex node, const NodeId& chased) {
    if (recorder_ == nullptr) return;
    recorder_->record(obs::HopRecord{
        .trace_id = stats.trace_id,
        .t_ms = sim_.now_ms() + stats.latency_ms,
        .domain = obs::HopDomain::kIntra,
        .node = node,
        .category = static_cast<std::uint8_t>(sim::MsgCategory::kData),
        .kind = kind,
        .frame_bytes = static_cast<std::uint32_t>(data_frame_bytes_),
        .chased = chased});
  };
  rec(obs::HopKind::kStart, src_router, dest);
  // Oracle: the IGP distance to the destination's hosting router, for the
  // stretch metric.  Not consulted by forwarding.
  if (const auto host = hosting_router(dest)) {
    stats.shortest_hops = map_->hop_distance(src_router, *host).value_or(0);
  }

  // Label-switched fast path (DESIGN.md section 15): an installed flow is
  // served off per-hop labels; a miss or torn-down flow falls back to the
  // greedy walk below with the fault-injector RNG stream untouched.
  if (cfg_.enable_labels && route_labeled(src_router, dest, stats, rec)) {
    return stats;
  }

  NodeIndex cur = src_router;
  routers_[cur]->count_traversal();
  std::vector<NodeIndex> traversed{cur};
  // Label-install bookkeeping: the walk qualifies only when it completes
  // without resets (no stale pointers, no ephemeral leg, no dead chases) --
  // then the path is a stable pointer path and a later greedy run would
  // reproduce it exactly, which is what makes the labeled replay safe.
  bool clean_walk = true;
  std::vector<std::uint32_t> ring_hops_when_leaving;
  std::optional<Candidate> chasing;
  // When the chased pointer came from a cache, remember whose cache, so the
  // teardown on stale discovery reaches the pointer holder (invariant (b)).
  NodeIndex chasing_origin = graph::kInvalidNode;
  NodeId committed_dist = NodeId{}.minus(NodeId::from_u64(1));
  std::set<NodeId> dead_this_walk;

  for (std::uint32_t step = 0; step < cfg_.max_forwarding_hops; ++step) {
    Router& r = *routers_[cur];
    // Delivery checks: resident vnode, or ephemeral backpointer here.
    if (r.hosts(dest)) {
      stats.delivered = true;
      sim_.metrics().add(delivered_id_);
      rec(obs::HopKind::kDeliver, cur, dest);
      // Optional data-plane snooping: traversed routers cache the
      // destination now that its location is confirmed.
      if (cfg_.cache_data_paths) {
        cache_along_path(traversed, dest, cur);
      }
      // A reset-free walk over a pointer path is stable: label it so the
      // flow's next packets forward by array index.  (Not under data-path
      // snooping -- the insert above mutates caches at every delivery, which
      // a labeled replay would skip.)
      if (cfg_.enable_labels && !cfg_.cache_data_paths && clean_walk &&
          traversed.size() >= 2 &&
          !label_flows_.contains({src_router, dest})) {
        install_label_flow(src_router, dest, traversed,
                           std::move(ring_hops_when_leaving),
                           stats.ring_hops);
      }
      return stats;
    }
    // An ephemeral backpointer names a gateway, not a residency proof:
    // after a rehoming (partition repair, router restore) a stale entry can
    // point at a router the vnode has left.  Delivering there would be a
    // false delivery, so verify residency; on a miss tear the dead pointer
    // down and fall through to greedy forwarding.
    const auto live_egw = [&]() -> std::optional<NodeIndex> {
      const auto g = r.ephemeral_gateway(dest);
      if (!g.has_value()) return std::nullopt;
      if (*g < routers_.size() && routers_[*g]->hosts(dest)) return g;
      r.remove_ephemeral_backpointer(dest);
      rec(obs::HopKind::kStalePointer, cur, dest);
      clean_walk = false;
      return std::nullopt;
    };
    if (const auto egw = live_egw()) {
      rec(obs::HopKind::kEphemeralGateway, cur, dest);
      const auto path = map_->path(cur, *egw);
      if (!path.empty()) {
        if (faults_ != nullptr && faults_->message_faults_enabled()) {
          // The final leg to the ephemeral gateway is ordinary data-plane
          // traffic: walk it link by link so each hop can drop the packet.
          for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            const sim::FaultDecision fd =
                faults_->on_link(path[i], path[i + 1]);
            sim_.counters().add(sim::MsgCategory::kData, fd.copies);
            sim_.counters().add_bytes(sim::MsgCategory::kData,
                                      fd.copies * data_frame_bytes_);
            ++stats.physical_hops;
            stats.latency_ms += link_latency(path[i], path[i + 1]);
            if (fd.dropped) {
              rec(obs::HopKind::kFaultDrop, path[i], dest);
              return stats;
            }
            stats.latency_ms += fd.extra_latency_ms;
            routers_[path[i + 1]]->count_traversal();
          }
          stats.delivered = true;
          sim_.metrics().add(delivered_id_);
          rec(obs::HopKind::kDeliver, *egw, dest);
          return stats;
        }
        for (std::size_t i = 1; i < path.size(); ++i) {
          routers_[path[i]]->count_traversal();
        }
        const auto hops = static_cast<std::uint32_t>(path.size() - 1);
        stats.physical_hops += hops;
        stats.latency_ms += map_->latency_ms(cur, *egw).value_or(0.0);
        sim_.counters().add(sim::MsgCategory::kData, hops);
        sim_.counters().add_bytes(sim::MsgCategory::kData,
                                  hops * data_frame_bytes_);
        stats.delivered = true;
        sim_.metrics().add(delivered_id_);
        rec(obs::HopKind::kDeliver, *egw, dest);
        return stats;
      }
      rec(obs::HopKind::kDrop, cur, dest);
      return stats;
    }

    // Algorithm 2: best resident/successor candidate vs best cached pointer.
    std::vector<std::pair<Candidate, bool>> cands;  // candidate, from-cache
    if (auto c = r.vn_best_match(dest)) cands.emplace_back(*c, false);
    if (const CacheEntry* e = r.cache().best_match(dest)) {
      if (map_->route_valid(e->path)) {
        cands.emplace_back(Candidate{e->id, e->host, false}, true);
      }
    }
    std::sort(cands.begin(), cands.end(),
              [&](const auto& a, const auto& b) {
                return NodeId::closer_to(dest, a.first.id, b.first.id);
              });

    bool switched = false;
    for (const auto& [c, from_cache] : cands) {
      if (dead_this_walk.contains(c.id)) {
        r.cache().erase(c.id);
        continue;
      }
      const NodeId d = NodeId::distance_cw(c.id, dest);
      if (d < committed_dist) {
        chasing = c;
        chasing_origin = from_cache ? cur : graph::kInvalidNode;
        committed_dist = d;
        ++stats.ring_hops;
        switched = true;
        rec(from_cache ? obs::HopKind::kCachePointer
                       : obs::HopKind::kRingPointer,
            cur, c.id);
        break;
      }
    }
    if (!chasing.has_value()) {
      rec(obs::HopKind::kDrop, cur, dest);
      return stats;  // no way to make progress
    }
    if (!switched && cur == chasing->host) {
      if (r.hosts(chasing->id)) {
        // The chased ID is alive here and offers no further progress: the
        // destination genuinely does not exist in this component.
        return stats;
      }
      // Stale pointer: the chased ID left this router without this cache
      // entry being flooded away.  Discovering the stale route tears it down
      // at the discovery point AND -- via a teardown message back along the
      // path -- at the router whose cache supplied it (invariant (b) of
      // section 3.2).  Forwarding restarts from ring state; each reset
      // removes stale entries, so this terminates.
      sim_.metrics().add(stale_ptrs_id_);
      rec(obs::HopKind::kStalePointer, cur, chasing->id);
      clean_walk = false;
      r.cache().erase(chasing->id);
      dead_this_walk.insert(chasing->id);
      if (chasing_origin != graph::kInvalidNode && chasing_origin != cur) {
        // One-shot (unreliable) teardown back to the cache that supplied the
        // stale pointer; the holder erases the ID it decodes off the wire.
        const std::vector<std::uint8_t> frame = wire::msg::encode_control(
            wire::msg::Teardown{.id = chasing->id, .reason = 2},
            routers_[cur]->router_id(), routers_[chasing_origin]->router_id());
        if (!frame.empty()) {
          const Exchange back =
              exchange_once(cur, chasing_origin,
                            sim::MsgCategory::kTeardown, frame);
          const NodeId stale_id =
              back.t.ok ? std::get<wire::msg::Teardown>(*back.received).id
                        : chasing->id;
          routers_[chasing_origin]->cache().erase(stale_id);
        } else {
          sim_.metrics().add(encode_failures_id_);
          routers_[chasing_origin]->cache().erase(chasing->id);
        }
      }
      chasing.reset();
      chasing_origin = graph::kInvalidNode;
      committed_dist = NodeId{}.minus(NodeId::from_u64(1));
      continue;
    }

    const auto next = map_->next_hop(cur, chasing->host);
    if (!next.has_value() || *next == cur) {
      // Path to the chased pointer died; drop it (and any matching cache
      // entry) and re-evaluate from scratch at this router.
      r.cache().erase(chasing->id);
      chasing.reset();
      clean_walk = false;
      continue;
    }
    // Per-hop latency of the link about to be crossed.
    for (const graph::Edge& e : topo_->graph.neighbors(cur)) {
      if (e.to == *next) {
        stats.latency_ms += e.latency_ms;
        break;
      }
    }
    if (faults_ != nullptr && faults_->message_faults_enabled()) {
      const sim::FaultDecision fd = faults_->on_link(cur, *next);
      if (fd.copies > 1) {
        // The duplicate is transmitted (and charged) but dies at the next
        // router's dedup check.
        sim_.counters().add(sim::MsgCategory::kData, fd.copies - 1);
        sim_.counters().add_bytes(sim::MsgCategory::kData,
                                  (fd.copies - 1) * data_frame_bytes_);
      }
      if (fd.dropped) {
        // Data packets have no retransmission (best-effort forwarding): the
        // hop onto the link is charged, then the packet is gone.
        ++stats.physical_hops;
        sim_.counters().add(sim::MsgCategory::kData, 1);
        sim_.counters().add_bytes(sim::MsgCategory::kData, data_frame_bytes_);
        rec(obs::HopKind::kFaultDrop, cur, chasing->id);
        return stats;
      }
      stats.latency_ms += fd.extra_latency_ms;
    }
    ring_hops_when_leaving.push_back(stats.ring_hops);
    cur = *next;
    traversed.push_back(cur);
    routers_[cur]->count_traversal();
    ++stats.physical_hops;
    sim_.counters().add(sim::MsgCategory::kData, 1);
    sim_.counters().add_bytes(sim::MsgCategory::kData, data_frame_bytes_);
    rec(obs::HopKind::kForward, cur, chasing->id);
  }
  rec(obs::HopKind::kDrop, cur, dest);
  return stats;
}

Network::CacheTotals Network::cache_totals() const {
  CacheTotals t;
  for (const auto& r : routers_) {
    const PointerCache& c = r->cache();
    t.hits += c.hits();
    t.misses += c.misses();
    t.evictions += c.evictions();
    t.stale_drops += c.stale_drops();
    t.entries += c.size();
  }
  return t;
}

// -- label-switched fast path (DESIGN.md section 15) --------------------------

bool Network::route_labeled(
    NodeIndex src_router, const NodeId& dest, RouteStats& stats,
    const std::function<void(obs::HopKind, NodeIndex, const NodeId&)>& rec) {
  const auto it = label_flows_.find(LabelFlowKey{src_router, dest});
  if (it == label_flows_.end()) {
    sim_.metrics().add(labels_misses_id_);
    return false;
  }
  // Defensive revalidation: flush_labels() runs on every topology or ring
  // mutation, so a live flow should always check out -- but a labeled hop
  // must never forward into state a greedy walk would not have produced.
  const LabelFlow& flow = it->second;
  if (!routers_[flow.path.back()]->hosts(dest) ||
      !map_->route_valid(flow.path)) {
    teardown_label_flow(it->first);
    sim_.metrics().add(labels_misses_id_);
    return false;
  }
  sim_.metrics().add(labels_hits_id_);
  // Labeled frames swap the two 16-byte flat IDs for one 4-byte label.
  const std::size_t saved = data_frame_bytes_ - labeled_data_frame_bytes_;
  NodeIndex cur = src_router;
  routers_[cur]->count_traversal();
  std::uint32_t label = flow.labels.front();
  for (std::size_t i = 0; i + 1 < flow.path.size(); ++i) {
    // Steady-state forwarding is this one array index; the install-run path
    // is only the fallback against a half-torn-down table.
    const LabelEntry* e = routers_[cur]->labels().lookup(label);
    const NodeIndex next = e != nullptr ? e->out : flow.path[i + 1];
    for (const graph::Edge& edge : topo_->graph.neighbors(cur)) {
      if (edge.to == next) {
        stats.latency_ms += edge.latency_ms;
        break;
      }
    }
    // Mirror the greedy walk's per-link fault handling exactly (same
    // on_link draw per link crossed) so the injector's RNG stream stays in
    // lockstep whether or not this flow is labeled.
    if (faults_ != nullptr && faults_->message_faults_enabled()) {
      const sim::FaultDecision fd = faults_->on_link(cur, next);
      if (fd.copies > 1) {
        sim_.counters().add(sim::MsgCategory::kData, fd.copies - 1);
        sim_.counters().add_bytes(sim::MsgCategory::kData,
                                  (fd.copies - 1) * labeled_data_frame_bytes_);
        sim_.metrics().add(labels_bytes_saved_id_, (fd.copies - 1) * saved);
      }
      if (fd.dropped) {
        ++stats.physical_hops;
        sim_.counters().add(sim::MsgCategory::kData, 1);
        sim_.counters().add_bytes(sim::MsgCategory::kData,
                                  labeled_data_frame_bytes_);
        sim_.metrics().add(labels_bytes_saved_id_, saved);
        // ring_hops a greedy walk would have accumulated by this link.
        stats.ring_hops = flow.ring_hops_when_leaving[i];
        rec(obs::HopKind::kFaultDrop, cur, dest);
        return true;
      }
      stats.latency_ms += fd.extra_latency_ms;
    }
    label = e != nullptr ? e->next_label : flow.labels[i + 1];
    cur = next;
    routers_[cur]->count_traversal();
    ++stats.physical_hops;
    sim_.counters().add(sim::MsgCategory::kData, 1);
    sim_.counters().add_bytes(sim::MsgCategory::kData,
                              labeled_data_frame_bytes_);
    sim_.metrics().add(labels_bytes_saved_id_, saved);
    rec(obs::HopKind::kLabelSwitch, cur, dest);
  }
  stats.ring_hops = flow.final_ring_hops;
  stats.delivered = true;
  sim_.metrics().add(delivered_id_);
  rec(obs::HopKind::kDeliver, cur, dest);
  return true;
}

void Network::install_label_flow(
    NodeIndex src_router, const NodeId& dest,
    const std::vector<NodeIndex>& path,
    std::vector<std::uint32_t> ring_hops_when_leaving,
    std::uint32_t final_ring_hops) {
  LabelFlow flow;
  flow.path = path;
  flow.ring_hops_when_leaving = std::move(ring_hops_when_leaving);
  flow.final_ring_hops = final_ring_hops;
  flow.labels.resize(path.size());
  // Allocate terminal-first so each hop's entry can name its successor's
  // freshly assigned label; the terminal entry has no out-pointer.
  std::uint32_t next_label = kNoLabel;
  for (std::size_t i = path.size(); i-- > 0;) {
    const NodeIndex out =
        i + 1 < path.size() ? path[i + 1] : graph::kInvalidNode;
    flow.labels[i] = routers_[path[i]]->labels().install(dest, out, next_label);
    next_label = flow.labels[i];
  }
  sim_.metrics().add(labels_installed_id_, flow.path.size());
  // Install signaling walks the reverse path as control traffic, charged in
  // bulk (one LabelInstall frame per label hop).  Deliberately no per-link
  // fault-injector draws: a draw here would shift the injector's RNG stream
  // relative to a labels-off run and break route equivalence.
  const std::size_t frames = path.size() - 1;
  sim_.counters().add(sim::MsgCategory::kControl, frames);
  sim_.counters().add_bytes(sim::MsgCategory::kControl,
                            frames * label_install_frame_bytes_);
  sim_.metrics().add(label_install_bytes_id_,
                     frames * label_install_frame_bytes_);
  label_flows_.emplace(LabelFlowKey{src_router, dest}, std::move(flow));
}

void Network::teardown_label_flow(const LabelFlowKey& key) {
  const auto it = label_flows_.find(key);
  if (it == label_flows_.end()) return;
  const LabelFlow& flow = it->second;
  for (std::size_t i = 0; i < flow.path.size(); ++i) {
    const NodeIndex n = flow.path[i];
    if (n < routers_.size()) routers_[n]->labels().remove(flow.labels[i]);
  }
  sim_.metrics().add(labels_teardowns_id_, flow.path.size());
  // One LabelTeardown frame per label hop, bulk-charged on the teardown
  // category for the same RNG-neutrality reason as installs.
  const std::size_t frames = flow.path.size() - 1;
  if (frames > 0) {
    sim_.counters().add(sim::MsgCategory::kTeardown, frames);
    sim_.counters().add_bytes(sim::MsgCategory::kTeardown,
                              frames * label_teardown_frame_bytes_);
  }
  label_flows_.erase(it);
}

void Network::flush_labels() {
  // Labels die with their pointer path: any ring or topology mutation
  // invalidates every flow wholesale.  Coarse but what makes the labeled
  // and greedy data planes provably route-identical between mutations.
  while (!label_flows_.empty()) {
    teardown_label_flow(label_flows_.begin()->first);
  }
}

Network::LabelTotals Network::label_totals() const {
  LabelTotals t;
  t.flows = label_flows_.size();
  for (const auto& r : routers_) t.entries += r->labels().live();
  return t;
}

std::optional<NodeIndex> Network::hosting_router(const NodeId& id) const {
  const auto it = directory_.find(id);
  if (it == directory_.end()) return std::nullopt;
  return it->second;
}

bool Network::verify_rings(std::string* err, bool strict) const {
  const auto comp = topo_->graph.components();
  // Collect live stable vnodes per component.
  std::map<NodeIndex, std::vector<std::pair<NodeId, NodeIndex>>> rings;
  for (const auto& [id, host] : directory_) {
    if (!topo_->graph.node_up(host)) continue;
    const auto cls = host_class_.find(id);
    if (cls != host_class_.end() && cls->second == HostClass::kEphemeral) continue;
    rings[comp[host]].emplace_back(id, host);
  }
  for (const auto& [component, members_const] : rings) {
    auto members = members_const;
    std::sort(members.begin(), members.end());
    const std::size_t n = members.size();
    for (std::size_t i = 0; i < n; ++i) {
      const auto& [vid, vhost] = members[i];
      const VirtualNode* vn = routers_[vhost]->find_vnode(vid);
      if (vn == nullptr) {
        if (err != nullptr) {
          std::ostringstream os;
          os << "directory lists " << vid << " at router " << vhost
             << " but no vnode exists";
          *err = os.str();
        }
        return false;
      }
      if (n == 1) continue;
      const auto& [expect_id, expect_host] = members[(i + 1) % n];
      const NeighborPtr* succ = vn->first_successor();
      if (succ == nullptr || succ->id != expect_id || succ->host != expect_host) {
        if (err != nullptr) {
          std::ostringstream os;
          os << "vnode " << vid << " at router " << vhost
             << " successor mismatch: expected " << expect_id << "@"
             << expect_host;
          if (succ != nullptr) os << " got " << succ->id << "@" << succ->host;
          *err = os.str();
        }
        return false;
      }
      if (strict) {
        const std::size_t want = std::min(cfg_.successor_group, n - 1);
        if (vn->successors.size() != want) {
          if (err != nullptr) {
            std::ostringstream os;
            os << "vnode " << vid << " group size " << vn->successors.size()
               << " != " << want;
            *err = os.str();
          }
          return false;
        }
        for (std::size_t s = 0; s < want; ++s) {
          const auto& [sid, shost] = members[(i + s + 1) % n];
          if (vn->successors[s].id != sid || vn->successors[s].host != shost) {
            if (err != nullptr) {
              std::ostringstream os;
              os << "vnode " << vid << " successor[" << s << "] mismatch";
              *err = os.str();
            }
            return false;
          }
        }
        const auto& [pid, phost] = members[(i + n - 1) % n];
        if (!vn->predecessor.has_value() || vn->predecessor->id != pid ||
            vn->predecessor->host != phost) {
          if (err != nullptr) {
            std::ostringstream os;
            os << "vnode " << vid << " predecessor mismatch";
            *err = os.str();
          }
          return false;
        }
      }
    }
  }
  return true;
}

double Network::mean_state_entries() const {
  std::uint64_t total = 0;
  std::size_t live = 0;
  for (const auto& r : routers_) {
    if (!topo_->graph.node_up(r->index())) continue;
    total += r->state_entries();
    ++live;
  }
  return live == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(live);
}

std::uint64_t Network::resident_state_bits() const {
  std::uint64_t ids = 0;
  for (const auto& r : routers_) {
    if (!topo_->graph.node_up(r->index())) continue;
    ids += r->resident_count();
  }
  return ids * 128;
}

void Network::reset_traffic_counters() {
  for (auto& r : routers_) r->reset_traversals();
}

}  // namespace rofl::intra
