#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace rofl::obs {

std::string_view to_string(HopKind k) {
  switch (k) {
    case HopKind::kStart: return "start";
    case HopKind::kRingPointer: return "ring-pointer";
    case HopKind::kCachePointer: return "cache-pointer";
    case HopKind::kEphemeralGateway: return "ephemeral-gw";
    case HopKind::kForward: return "forward";
    case HopKind::kLabelSwitch: return "label-switch";
    case HopKind::kStalePointer: return "stale-pointer";
    case HopKind::kLevelEscalate: return "level-escalate";
    case HopKind::kPeeringCross: return "peering-cross";
    case HopKind::kBootstrap: return "bootstrap";
    case HopKind::kDeliver: return "deliver";
    case HopKind::kDrop: return "drop";
    case HopKind::kFaultDrop: return "fault-drop";
    case HopKind::kAuditViolation: return "audit-violation";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity) {
  assert(capacity > 0);
  ring_.resize(capacity);
}

namespace {

std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

void FlightRecorder::record(HopRecord r) {
  r.seq = next_seq_++;
  // Digest everything except seq (a recorder-global counter that depends on
  // interleaving) so identical hop sets digest identically however the
  // records were spread across recorders.
  std::uint64_t h = 0xCBF29CE484222325ull;
  h = fnv1a_bytes(h, &r.trace_id, sizeof(r.trace_id));
  h = fnv1a_bytes(h, &r.t_ms, sizeof(r.t_ms));
  h = fnv1a_bytes(h, &r.domain, sizeof(r.domain));
  h = fnv1a_bytes(h, &r.node, sizeof(r.node));
  h = fnv1a_bytes(h, &r.category, sizeof(r.category));
  h = fnv1a_bytes(h, &r.kind, sizeof(r.kind));
  h = fnv1a_bytes(h, &r.frame_bytes, sizeof(r.frame_bytes));
  const std::uint64_t chased_hi = r.chased.hi();
  const std::uint64_t chased_lo = r.chased.lo();
  h = fnv1a_bytes(h, &chased_hi, sizeof(chased_hi));
  h = fnv1a_bytes(h, &chased_lo, sizeof(chased_lo));
  content_digest_ += h;  // wrapping add: order-independent combination
  ring_[head_] = std::move(r);
  if (++head_ == ring_.size()) {
    head_ = 0;
    full_ = true;
  }
}

std::vector<HopRecord> FlightRecorder::all() const {
  std::vector<HopRecord> out;
  out.reserve(size());
  if (full_) {
    out.insert(out.end(), ring_.begin() + static_cast<long>(head_), ring_.end());
  }
  out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<long>(head_));
  return out;
}

std::vector<HopRecord> FlightRecorder::trace(std::uint64_t trace_id) const {
  std::vector<HopRecord> out;
  for (const HopRecord& r : all()) {
    if (r.trace_id == trace_id) out.push_back(r);
  }
  return out;
}

std::string FlightRecorder::format_trace(std::uint64_t trace_id) const {
  const std::vector<HopRecord> hops = trace(trace_id);
  std::ostringstream os;
  os << "trace " << trace_id << " (" << hops.size() << " hops):\n";
  std::size_t i = 0;
  for (const HopRecord& h : hops) {
    os << "  " << std::setw(3) << i++ << "  "
       << (h.domain == HopDomain::kIntra ? "[intra]  router " : "[inter]  AS ")
       << std::setw(5) << h.node << "  " << std::left << std::setw(14)
       << to_string(h.kind) << std::right << " " << std::setw(9)
       << category_name(h.category) << "  t=" << h.t_ms << "ms";
    switch (h.kind) {
      case HopKind::kStart:
      case HopKind::kDeliver:
      case HopKind::kDrop:
      case HopKind::kFaultDrop:
      case HopKind::kAuditViolation:
        os << "  dest=" << h.chased;
        break;
      default:
        os << "  via=" << h.chased;
        break;
    }
    if (h.frame_bytes > 0) os << "  frame=" << h.frame_bytes << "B";
    os << "\n";
  }
  return os.str();
}

void FlightRecorder::clear() {
  head_ = 0;
  full_ = false;
}

}  // namespace rofl::obs
