// border.hpp -- border routers and EGP/IGP integration (section 4.1,
// "Integrating EGP and IGP routing").
//
// "Packets contain a list of ISPs that can be used to reach the final
// destination.  Hence a router containing a packet needs to know how to
// reach the next-hop AS in the list.  To solve this problem, we have border
// routers flood their existence internally. ... even the largest ISPs
// typically only have a few hundred border routers."
//
// This module binds an interdomain network to router-level ISP maps: every
// AS adjacency is pinned to a border router inside each AS, border routers
// flood their existence over the ISP's link-state channel (cost accounted),
// and AS-level source routes expand into router-level paths -- giving the
// two-level (EGP over IGP) view of an end-to-end ROFL packet trip.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "interdomain/inter_network.hpp"
#include "rofl/network.hpp"

namespace rofl::inter {

/// Router-level realization of the interdomain fabric for a subset of ASes.
/// ASes without an attached ISP map are modeled as single virtual routers
/// (the paper's own AS-as-node simplification).
class BorderFabric {
 public:
  /// `net` must outlive the fabric.
  explicit BorderFabric(const InterNetwork* net);

  /// Attaches a router-level map to an AS.  Border routers are assigned per
  /// AS adjacency (deterministically from `seed`, drawn from the ISP's
  /// backbone routers) and their existence is flooded internally over the
  /// ISP's link-state channel -- the iBGP-analog redistribution the paper
  /// describes.  Returns the number of border routers assigned.
  std::size_t attach_isp(AsIndex as, intra::Network* isp, std::uint64_t seed);

  [[nodiscard]] bool attached(AsIndex as) const {
    return isps_.contains(as);
  }

  /// The border router of `as` facing `neighbor` (nullopt if `as` has no
  /// attached map or no such adjacency).
  [[nodiscard]] std::optional<graph::NodeIndex> border_router(
      AsIndex as, AsIndex neighbor) const;

  /// Packets accounted for flooding border-router existence inside `as`.
  [[nodiscard]] std::uint64_t flood_cost(AsIndex as) const;

  struct Expansion {
    bool ok = false;
    /// Router-level hops: intra-ISP segments between border routers plus
    /// one hop per inter-AS link; single-node ASes count one hop across.
    std::uint32_t router_hops = 0;
    /// Intra-ISP hops only (the EGP-over-IGP overhead the AS-level view
    /// hides).
    std::uint32_t internal_hops = 0;
  };

  /// Expands an AS-level route (as produced by InterNetwork routing, virtual
  /// peering ASes included) into router-level hops: inside each attached
  /// ISP, the packet travels ingress-border -> egress-border over IGP
  /// shortest paths.
  [[nodiscard]] Expansion expand(const AsRoute& as_route) const;

 private:
  const InterNetwork* net_;
  struct IspBinding {
    intra::Network* isp = nullptr;
    // neighbor AS -> border router index inside this ISP
    std::map<AsIndex, graph::NodeIndex> borders;
    std::uint64_t flood_packets = 0;
  };
  std::map<AsIndex, IspBinding> isps_;
};

}  // namespace rofl::inter
