// identity.hpp -- self-certifying identities (section 2.1 / 2.2).
//
// A host's or router's identity is tied to a public/private key pair and its
// flat label is a hash of the public key.  When a host asks a router to make
// its ID resident, it "must prove to the router cryptographically that it
// holds the appropriate private key" (section 2.1).  The paper does not fix a
// signature scheme, so we model the minimum machinery that exercises the same
// code path (documented in DESIGN.md):
//
//   private key  = 32 random bytes
//   public key   = SHA-256(private key)
//   identifier   = first 128 bits of SHA-256(public key)
//   proof(nonce) = SHA-256(private key || nonce)
//
// A verifier holding the public key and a fresh nonce checks the proof by
// asking the prover for the private key preimage of the proof -- we keep this
// honest by having `verify_ownership` recompute the proof from the claimed
// private key and check both the key linkage and the ID derivation.  Spoofing
// an ID therefore requires inverting SHA-256, which is the property ROFL
// relies on.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "util/node_id.hpp"
#include "util/rng.hpp"
#include "util/sha256.hpp"

namespace rofl {

using PrivateKey = std::array<std::uint8_t, 32>;
using PublicKey = Sha256::Digest;
using OwnershipProof = Sha256::Digest;

/// A key pair plus its derived flat label.
class Identity {
 public:
  /// Generates a fresh identity from the given RNG (deterministic under a
  /// fixed seed -- all simulations are reproducible).
  static Identity generate(Rng& rng);

  /// Reconstructs an identity from a known private key.
  static Identity from_private_key(const PrivateKey& priv);

  [[nodiscard]] const PrivateKey& private_key() const { return priv_; }
  [[nodiscard]] const PublicKey& public_key() const { return pub_; }
  [[nodiscard]] NodeId id() const { return id_; }

  /// Produces the ownership proof for a verifier-supplied nonce.
  [[nodiscard]] OwnershipProof prove(std::uint64_t nonce) const;

 private:
  Identity() = default;
  PrivateKey priv_{};
  PublicKey pub_{};
  NodeId id_;
};

/// Derives the flat label for a public key (first 128 bits of its digest).
[[nodiscard]] NodeId derive_id(const PublicKey& pub);

/// Verifier side of the join handshake (join_internal line 1,
/// "authenticate(id)"): checks that `proof` was produced for `nonce` by the
/// holder of the private key behind `pub`, and that `claimed` is the ID that
/// `pub` self-certifies.  Returns false on any mismatch.
[[nodiscard]] bool verify_ownership(const NodeId& claimed, const PublicKey& pub,
                                    std::uint64_t nonce,
                                    const OwnershipProof& proof,
                                    const PrivateKey& revealed_priv);

}  // namespace rofl
