// enterprise_mobility -- ephemeral hosts, churn, and partition healing.
//
// The workload the paper's introduction motivates: laptops and home PCs
// that attach, move, and vanish ("ephemeral hosts"), running alongside
// stable servers on one ISP.  Shows:
//   * ephemeral joins are cheap and never perturb the ring,
//   * identifiers stay stable across mobility events,
//   * a PoP getting cut off heals back into one consistent ring
//     (the zero-ID protocol of section 3.2).
//
//   $ ./build/examples/enterprise_mobility
#include <iostream>
#include <set>

#include "rofl/network.hpp"
#include "util/stats.hpp"

int main() {
  using namespace rofl;

  Rng topo_rng(5);
  graph::IspParams params;
  params.name = "enterprise";
  params.router_count = 48;
  params.pop_count = 8;
  const graph::IspTopology topo = graph::make_isp_topology(params, topo_rng);
  intra::Network net(&topo, intra::Config{}, /*seed=*/99);

  // Stable servers.
  std::vector<NodeId> servers;
  for (int i = 0; i < 40; ++i) {
    Identity ident = Identity::generate(net.rng());
    if (net.join_host(ident, static_cast<graph::NodeIndex>(
                                 net.rng().index(net.router_count())))
            .ok) {
      servers.push_back(ident.id());
    }
  }

  // Ephemeral laptops: joins cost less and add no ring state at other
  // nodes -- only a backpointer at the predecessor.
  SampleSet stable_cost, ephemeral_cost;
  std::vector<Identity> laptops;
  for (int i = 0; i < 20; ++i) {
    Identity ident = Identity::generate(net.rng());
    const auto gw =
        static_cast<graph::NodeIndex>(net.rng().index(net.router_count()));
    const auto js = net.join_host(ident, gw, intra::HostClass::kEphemeral);
    if (js.ok) {
      laptops.push_back(ident);
      ephemeral_cost.add(static_cast<double>(js.messages));
    }
    Identity probe = Identity::generate(net.rng());
    const auto js2 = net.join_host(probe, gw);
    if (js2.ok) stable_cost.add(static_cast<double>(js2.messages));
  }
  std::cout << "mean join cost: stable " << stable_cost.mean()
            << " packets vs ephemeral " << ephemeral_cost.mean()
            << " packets\n";

  // Mobility: a laptop hops gateways five times; its identifier never
  // changes and stays reachable after every move.
  const Identity& roamer = laptops.front();
  std::cout << "\nroaming laptop " << roamer.id() << ":\n";
  for (int hop = 0; hop < 5; ++hop) {
    (void)net.fail_host(roamer.id());  // abrupt detach (session timeout)
    const auto gw =
        static_cast<graph::NodeIndex>(net.rng().index(net.router_count()));
    (void)net.join_host(roamer, gw, intra::HostClass::kEphemeral);
    const auto rs = net.route(0, roamer.id());
    std::cout << "  now at router " << gw << ": "
              << (rs.delivered ? "reachable" : "UNREACHABLE") << " ("
              << rs.physical_hops << " hops)\n";
  }

  // Partition: cut PoP 3 off, verify both sides keep working, heal, verify
  // global consistency returns.
  const auto& pop = topo.pops[3];
  const std::set<graph::NodeIndex> pop_set(pop.begin(), pop.end());
  std::vector<std::pair<graph::NodeIndex, graph::NodeIndex>> cut;
  for (const auto r : pop) {
    for (const auto& e : topo.graph.neighbors(r)) {
      if (!pop_set.contains(e.to)) cut.emplace_back(r, e.to);
    }
  }
  std::cout << "\ncutting PoP 3 (" << pop.size() << " routers, "
            << cut.size() << " links)...\n";
  for (const auto& [u, v] : cut) net.map().fail_link(u, v);
  const auto split = net.repair_partitions();
  std::string err;
  std::cout << "both sides re-formed consistent rings: "
            << (net.verify_rings(&err) ? "yes" : err) << " ("
            << split.messages << " repair packets)\n";

  for (const auto& [u, v] : cut) net.map().restore_link(u, v);
  const auto heal = net.repair_partitions();
  std::cout << "healed back into one ring: "
            << (net.verify_rings(&err) ? "yes" : err) << " (" << heal.messages
            << " repair packets)\n";

  std::size_t reachable = 0;
  for (const NodeId& s : servers) {
    if (net.route(0, s).delivered) ++reachable;
  }
  std::cout << "servers reachable after heal: " << reachable << "/"
            << servers.size() << "\n";
  return 0;
}
