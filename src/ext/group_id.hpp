// group_id.hpp -- (G, x) group identifiers for anycast and multicast
// (section 5.2).
//
// "Servers belonging to group G join with ID (G, x)": the identifier space
// is split into a group prefix G (derived from the group's shared key, so
// the group identity stays self-certifying) and a variable suffix x.  Hosts
// then route to (G, r) for arbitrary r; intermediate routers treat all
// suffixes of G equally.
#pragma once

#include <cstdint>

#include "util/identity.hpp"
#include "util/node_id.hpp"

namespace rofl::ext {

/// Number of ID bits that form the group prefix G; the remaining bits are
/// the per-member / per-packet suffix x.
inline constexpr unsigned kGroupPrefixBits = 96;

class GroupId {
 public:
  /// Derives the group from its shared identity (all members hold the
  /// group's key pair, which is how membership is authenticated).
  explicit GroupId(const Identity& group_identity);

  [[nodiscard]] const Identity& identity() const { return identity_; }

  /// The lowest ID of the group's range: (G, 0).
  [[nodiscard]] NodeId base() const { return base_; }
  /// The highest ID of the group's range: (G, 2^32-1).
  [[nodiscard]] NodeId high() const { return high_; }

  /// The member/packet ID (G, suffix).
  [[nodiscard]] NodeId with_suffix(std::uint32_t suffix) const;

  /// True iff `id` carries this group's prefix.
  [[nodiscard]] bool contains(const NodeId& id) const;

 private:
  Identity identity_;
  NodeId base_;
  NodeId high_;
};

}  // namespace rofl::ext
