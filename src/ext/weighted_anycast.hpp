// weighted_anycast.hpp -- i3-style anycast load balancing (section 5.2).
//
// "This style of anycast can be extended to perform more advanced functions
// (e.g. load balancing) by modifying X, Y and the size of G in a manner
// similar to the approach taken in i3."
//
// The suffix space of a group (G, x) is carved into contiguous ranges whose
// widths are proportional to replica capacities.  Each replica joins at the
// TOP of its range; clients steer packets to (G, r) for uniformly random r,
// and greedy forwarding's closest-without-overshoot rule delivers to the
// owner of the range r falls into -- so load follows capacity with no
// coordination and no extra state.
#pragma once

#include <vector>

#include "ext/anycast.hpp"
#include "ext/group_id.hpp"

namespace rofl::ext {

class WeightedAnycast {
 public:
  explicit WeightedAnycast(GroupId group) : group_(std::move(group)) {}

  struct Replica {
    graph::NodeIndex gateway;
    double weight;        // relative capacity
    std::uint32_t suffix;  // top of the assigned range (assigned by plan())
    NodeId member_id;
  };

  /// Declares a replica with a relative capacity weight (> 0).
  void add_replica(graph::NodeIndex gateway, double weight);

  /// Carves the suffix space proportionally and joins every replica.
  /// Returns false if any join failed.
  bool deploy(intra::Network& net);

  [[nodiscard]] const std::vector<Replica>& replicas() const {
    return replicas_;
  }

  /// Client-side send: picks r uniformly at random and routes to (G, r).
  AnycastResult send(intra::Network& net, graph::NodeIndex src, Rng& rng) const;

  /// The replica whose range contains `suffix` (the analytical owner; what
  /// greedy delivery converges to).
  [[nodiscard]] const Replica* owner_of(std::uint32_t suffix) const;

 private:
  GroupId group_;
  std::vector<Replica> replicas_;
  bool deployed_ = false;
};

}  // namespace rofl::ext
