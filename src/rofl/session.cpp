#include "rofl/session.hpp"

#include <cassert>

namespace rofl::intra {

SessionManager::SessionManager(Network& net, SessionConfig cfg)
    : net_(&net), cfg_(cfg) {
  obs::Registry& m = net_->simulator().metrics();
  keepalives_id_ = m.counter("session.keepalives");
  timeouts_id_ = m.counter("session.timeouts");
  keepalives_lost_id_ = m.counter("session.keepalives_lost");
  rehomed_id_ = m.counter("session.rehomed");
  orphaned_id_ = m.counter("session.orphaned");
}

void SessionManager::track(const NodeId& id, std::function<bool()> alive) {
  // A retrack must advance the epoch past every timer ever scheduled for
  // this ID.  (insert_or_assign with a fresh Session would reset the stored
  // epoch to 0 before the increment, so the third track of the same ID would
  // reuse epoch 1 while a timer from the second track's epoch 1 could still
  // be pending.)
  const auto prev = sessions_.find(id);
  const std::uint64_t epoch =
      prev == sessions_.end() ? 0 : prev->second.epoch + 1;
  Session s;
  s.alive = std::move(alive);
  s.epoch = epoch;
  s.gateway = net_->hosting_router(id).value_or(graph::kInvalidNode);
  sessions_.insert_or_assign(id, std::move(s));
  schedule_tick(id, epoch);
}

void SessionManager::untrack(const NodeId& id) { sessions_.erase(id); }

void SessionManager::schedule_tick(const NodeId& id, std::uint64_t epoch) {
  net_->simulator().schedule_in(
      cfg_.keepalive_interval_ms,
      [this, id, epoch] { tick(id, epoch); });
}

void SessionManager::tick(const NodeId& id, std::uint64_t epoch) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second.epoch != epoch) return;
  Session& s = it->second;

  // Where does the ID live now?  A gateway crash between two ticks either
  // erased the ID (no auto-rejoin) or moved it to a failover router; both
  // used to be indistinguishable from a silent host, so a timer surviving
  // the crash could fire a spurious host-failure teardown against ring
  // state the repair machinery had already rebuilt.
  const auto home = net_->hosting_router(id);
  if (!home.has_value()) {
    // Orphaned: the ID left the ring underneath the session.  There is
    // nothing left to tear down; the session simply retires.
    ++orphaned_;
    net_->simulator().metrics().add(orphaned_id_);
    sessions_.erase(it);
    return;
  }
  if (*home != s.gateway) {
    // Rehomed by failover: the session migrates to the new gateway and the
    // miss count restarts -- misses charged against the dead gateway say
    // nothing about the host.
    s.gateway = *home;
    s.missed = 0;
    ++rehomed_;
    net_->simulator().metrics().add(rehomed_id_);
  }

  bool missed = true;
  if (s.alive()) {
    // The host emits a keepalive over its access link as an encoded frame.
    // encode_control fails loudly (empty vector) on oversized fields; a
    // keepalive cannot overflow, but the contract is checked anyway -- a
    // zero-byte frame must never be counted as sent.
    std::vector<std::uint8_t> frame = wire::msg::encode_control(
        wire::msg::Keepalive{.seq = s.missed + 1}, id, id);
    if (!frame.empty()) {
      net_->simulator().counters().add(
          sim::MsgCategory::kControl,
          std::max<std::size_t>(
              1, (frame.size() + wire::kDefaultMtu - 1) / wire::kDefaultMtu));
      net_->simulator().counters().add_bytes(sim::MsgCategory::kControl,
                                             frame.size());
      ++keepalives_;
      net_->simulator().metrics().add(keepalives_id_);
      // A lossy access link can eat the keepalive -- or corrupt it, which
      // the gateway's CRC check turns into the same thing.  The gateway
      // cannot tell either from a dead host, so both count as one miss;
      // only miss_limit consecutive losses look like a failure.
      sim::FaultInjector* inj = net_->fault_injector();
      bool delivered = true;
      if (inj != nullptr && inj->message_faults_enabled()) {
        if (inj->on_access_link().dropped) delivered = false;
        if (delivered && inj->corruption_enabled() &&
            inj->maybe_corrupt_frame(frame)) {
          delivered = wire::msg::decode_control(frame).has_value();
          assert(!delivered);  // CRC must reject the corrupted frame
        } else if (delivered) {
          delivered = wire::msg::decode_control(frame).has_value();
          assert(delivered);  // clean frame must round-trip
        }
      }
      if (!delivered) {
        ++keepalives_lost_;
        net_->simulator().metrics().add(keepalives_lost_id_);
      } else {
        s.missed = 0;
        missed = false;
      }
    }
  }
  if (missed && ++s.missed >= cfg_.miss_limit) {
    // Session timeout: the gateway runs the section-3.2 host-failure
    // machinery (teardowns + directed flood).
    ++timeouts_;
    net_->simulator().metrics().add(timeouts_id_);
    sessions_.erase(it);
    (void)net_->fail_host(id);
    return;
  }
  schedule_tick(id, epoch);
}

}  // namespace rofl::intra
