#include "rofl/host.hpp"

namespace rofl::intra {

Host::Host(Network& net, HostClass host_class)
    : net_(&net),
      identity_(Identity::generate(net.rng())),
      host_class_(host_class) {}

Host::Host(Network& net, Identity identity, HostClass host_class)
    : net_(&net), identity_(std::move(identity)), host_class_(host_class) {}

JoinStats Host::attach(NodeIndex gateway) {
  if (gateway_.has_value()) return {};
  const JoinStats js = net_->join_host(identity_, gateway, host_class_);
  if (js.ok) gateway_ = gateway;
  return js;
}

RepairStats Host::detach() {
  if (!gateway_.has_value()) return {};
  const RepairStats rs = net_->leave_host(identity_.id());
  gateway_.reset();
  return rs;
}

JoinStats Host::move_to(NodeIndex gateway) {
  (void)detach();
  return attach(gateway);
}

RepairStats Host::crash() {
  if (!gateway_.has_value()) return {};
  const RepairStats rs = net_->fail_host(identity_.id());
  gateway_.reset();
  return rs;
}

RouteStats Host::send_to(const NodeId& dest) const {
  if (!gateway_.has_value()) return {};
  // The gateway may have rehomed the ID after a router failure; route from
  // wherever the network currently hosts it.
  const auto home = net_->hosting_router(identity_.id());
  return net_->route(home.value_or(*gateway_), dest);
}

}  // namespace rofl::intra
