// router.hpp -- a ROFL hosting router (sections 2.2, 3).
//
// Each router owns: its self-certified identity (held by a "default" virtual
// node whose successors double as default routes), a virtual node per
// resident host ID, backpointer state for ephemeral hosts, and a bounded
// pointer cache.  The router keeps a sorted index of every ID it can make
// greedy progress toward (resident IDs plus all their successors); Algorithm
// 2's VN.best_match is a lookup in that index.
//
// All per-router tables are flat sorted vectors (util::FlatMap and a
// struct-of-arrays greedy index) rather than red-black trees: the
// per-packet operations -- hosts(), vn_best_match(), ephemeral_gateway() --
// are binary searches over contiguous keys, while the O(n) insertion
// memmove only runs on ring maintenance.  Mutating the vnode table
// (add/remove_vnode) invalidates VirtualNode pointers previously returned
// by find_vnode/add_vnode, like any vector.
#pragma once

#include <optional>

#include "rofl/label_table.hpp"
#include "rofl/pointer_cache.hpp"
#include "rofl/types.hpp"
#include "util/flat_map.hpp"

namespace rofl::intra {

/// A candidate next pointer for greedy forwarding.
struct Candidate {
  NodeId id;                          // the ID we'd be making progress toward
  NodeIndex host = graph::kInvalidNode;  // router currently hosting it
  bool resident = false;              // true if hosted here
};

class Router {
 public:
  using VnodeTable = util::FlatMap<NodeId, VirtualNode>;
  using EphemeralTable = util::FlatMap<NodeId, NodeIndex>;

  Router(NodeIndex index, Identity identity, std::size_t cache_capacity);

  [[nodiscard]] NodeIndex index() const { return index_; }
  [[nodiscard]] NodeId router_id() const { return identity_.id(); }
  [[nodiscard]] const Identity& identity() const { return identity_; }

  // -- virtual nodes --------------------------------------------------------
  /// Registers a vnode (Algorithm 1, register_virtual_node).  Returns the
  /// stored node.  Fails (nullptr) if the ID is already resident.
  VirtualNode* add_vnode(VirtualNode vn);
  void remove_vnode(const NodeId& id);
  [[nodiscard]] VirtualNode* find_vnode(const NodeId& id);
  [[nodiscard]] const VirtualNode* find_vnode(const NodeId& id) const;
  [[nodiscard]] const VnodeTable& vnodes() const { return vnodes_; }
  [[nodiscard]] std::size_t resident_count() const { return vnodes_.size(); }

  /// Re-indexes a vnode's successor set after the caller mutated it.
  void reindex_vnode(const NodeId& id);

  // -- ephemeral backpointers (section 2.2, "Ephemeral hosts") --------------
  /// Called on the *predecessor's* router: remembers that ephemeral `id`
  /// currently hangs off `gateway`.
  void add_ephemeral_backpointer(const NodeId& id, NodeIndex gateway);
  void remove_ephemeral_backpointer(const NodeId& id);
  [[nodiscard]] std::optional<NodeIndex> ephemeral_gateway(const NodeId& id) const;
  [[nodiscard]] const EphemeralTable& ephemeral_backpointers() const {
    return ephemerals_;
  }

  // -- Algorithm 2 ----------------------------------------------------------
  /// VN.best_match: the closest ID to `dest` (clockwise, not past it) among
  /// resident IDs and their successors.  nullopt when the router has no
  /// vnode state at all.
  [[nodiscard]] std::optional<Candidate> vn_best_match(const NodeId& dest) const;

  /// True if `dest` is a resident (non-default) ID or the router's own ID.
  [[nodiscard]] bool hosts(const NodeId& dest) const;

  /// Finds the resident vnode that is `id`'s predecessor, i.e. a vnode v
  /// with id in (v.id, v.successor0.id].  Used to terminate join routing.
  [[nodiscard]] VirtualNode* predecessor_vnode_of(const NodeId& id);

  PointerCache& cache() { return cache_; }
  const PointerCache& cache() const { return cache_; }

  /// Label-switched fast path state (DESIGN.md section 15): dense label ->
  /// {out-pointer, next label} entries consulted before any greedy work.
  LabelTable& labels() { return labels_; }
  const LabelTable& labels() const { return labels_; }

  /// Total routing-table entries held (resident vnode pointers + cache):
  /// the figure 6c memory metric.
  [[nodiscard]] std::size_t state_entries() const;

  // -- load accounting (figure 6b) ------------------------------------------
  void count_traversal() { ++traversals_; }
  [[nodiscard]] std::uint64_t traversals() const { return traversals_; }
  void reset_traversals() { traversals_ = 0; }

 private:
  void index_ptr(const NodeId& id, NodeIndex host, bool resident);

  NodeIndex index_;
  Identity identity_;
  VnodeTable vnodes_;
  EphemeralTable ephemerals_;
  PointerCache cache_;
  LabelTable labels_;
  std::uint64_t traversals_ = 0;

  // Greedy index over {resident IDs} U {their successors}, kept sorted by
  // ID.  Struct-of-arrays: vn_best_match searches the contiguous key vector
  // (the per-packet hot loop) and only dereferences the value lane once, at
  // the final position.  Values carry a refcount because several vnodes can
  // share a successor ID.
  struct IndexedPtr {
    NodeIndex host;
    bool resident;
    int refs;
  };
  std::vector<NodeId> known_ids_;
  std::vector<IndexedPtr> known_ptrs_;

  // Eytzinger (BFS-order) mirror of known_ids_, rebuilt lazily on the first
  // lookup after a mutation: node k's children sit at 2k/2k+1, so each probe
  // level shares cache lines and the next level can be prefetched while the
  // current compare retires.  eytz_pos_[k] maps back to the sorted position.
  // Lazy rebuild mutates these under a const lookup; Router lookups are not
  // thread-safe (routers are per-simulation objects, never shared).
  void rebuild_eytzinger() const;
  void eytz_fill(std::size_t& next_sorted, std::size_t k) const;
  mutable std::vector<NodeId> eytz_ids_;        // 1-indexed; [0] unused
  mutable std::vector<std::uint32_t> eytz_pos_;
  mutable bool eytz_dirty_ = false;
};

}  // namespace rofl::intra
