// Integration tests for interdomain ROFL (sections 2.3, 4): Canon-style
// per-level ring merging, join strategies, policy routing, isolation,
// fingers, bloom peering, and failure recovery.
#include "interdomain/inter_network.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/stats.hpp"

namespace rofl::inter {
namespace {

using graph::AsRel;
using graph::AsTopology;

// Small hand-built hierarchy (same shape as the policy tests, with host
// weight on the leaves):
//        0 ~~~~ 1        (tier-1 peering)
//       / \      \ .
//      2   3      4
//     /|   |
//    5 6   7
AsTopology diamond() {
  AsTopology t = AsTopology::from_links(
      8, {{2, 0, AsRel::kProvider},
          {3, 0, AsRel::kProvider},
          {4, 1, AsRel::kProvider},
          {5, 2, AsRel::kProvider},
          {6, 2, AsRel::kProvider},
          {7, 3, AsRel::kProvider},
          {0, 1, AsRel::kPeer}});
  for (graph::AsIndex a : {5, 6, 7, 4}) t.set_host_count(a, 100);
  return t;
}

struct Fixture {
  AsTopology topo;
  std::unique_ptr<InterNetwork> net;

  explicit Fixture(InterConfig cfg = {}, std::uint64_t seed = 99)
      : topo(diamond()) {
    net = std::make_unique<InterNetwork>(&topo, cfg, seed);
  }

  NodeId join(graph::AsIndex home,
              JoinStrategy s = JoinStrategy::kRecursiveMultihomed) {
    Identity ident = Identity::generate(net->rng());
    const InterJoinStats js = net->join_host(ident, home, s);
    EXPECT_TRUE(js.ok) << "join at AS " << home;
    return ident.id();
  }

  std::vector<NodeId> populate(std::size_t per_leaf,
                               JoinStrategy s = JoinStrategy::kRecursiveMultihomed) {
    std::vector<NodeId> ids;
    for (graph::AsIndex leaf : {5u, 6u, 7u, 4u}) {
      for (std::size_t i = 0; i < per_leaf; ++i) ids.push_back(join(leaf, s));
    }
    return ids;
  }
};

TEST(InterJoin, SingleHostOk) {
  Fixture f;
  const NodeId id = f.join(5);
  EXPECT_EQ(f.net->home_of(id), 5u);
  const InterVNode* vn = f.net->find_vnode(id);
  ASSERT_NE(vn, nullptr);
  // Multihomed join at AS 5: anchors = {5, 2, 0, T1-virtual}.
  EXPECT_GE(vn->anchors.size(), 3u);
}

TEST(InterJoin, RingsVerifyAfterManyJoins) {
  Fixture f;
  f.populate(6);
  std::string err;
  EXPECT_TRUE(f.net->verify_rings(&err)) << err;
}

TEST(InterJoin, DuplicateRejected) {
  Fixture f;
  Identity ident = Identity::generate(f.net->rng());
  EXPECT_TRUE(f.net->join_host(ident, 5, JoinStrategy::kRecursiveMultihomed).ok);
  EXPECT_FALSE(f.net->join_host(ident, 6, JoinStrategy::kRecursiveMultihomed).ok);
}

TEST(InterJoin, PointersArePrunedPerAlgorithm3) {
  // With few hosts, higher levels usually repeat the lower-level successor;
  // pruned pointer lists must never exceed the anchor count and gaps must
  // not break verification.
  Fixture f;
  f.populate(3);
  for (const auto& [id, home] : f.net->directory()) {
    const InterVNode* vn = f.net->find_vnode(id);
    ASSERT_NE(vn, nullptr);
    EXPECT_LE(vn->successors.size(), vn->anchors.size());
    // Pruning: no two consecutive pointers share a target.
    for (std::size_t i = 1; i < vn->successors.size(); ++i) {
      EXPECT_NE(vn->successors[i].target, vn->successors[i - 1].target);
    }
  }
}

TEST(InterJoin, EphemeralJoinsOnlyTopRing) {
  Fixture f;
  f.populate(2);
  const NodeId id = f.join(5, JoinStrategy::kEphemeral);
  const InterVNode* vn = f.net->find_vnode(id);
  ASSERT_NE(vn, nullptr);
  EXPECT_EQ(vn->anchors.size(), 1u);
  // Its single anchor roots the global ring (a virtual AS here).
  EXPECT_TRUE(f.net->work_topology().is_virtual(vn->anchors[0].first));
}

TEST(InterJoin, StrategyOverheadOrdering) {
  // Figure 8a: ephemeral < single-homed < multihomed <= peering.
  auto mean_overhead = [&](JoinStrategy s) {
    Fixture f({}, 7);
    f.populate(30);  // dense rings so per-level successors differ
    SampleSet msgs;
    for (int i = 0; i < 20; ++i) {
      Identity ident = Identity::generate(f.net->rng());
      const auto js = f.net->join_host(ident, 5, s);
      EXPECT_TRUE(js.ok);
      msgs.add(static_cast<double>(js.messages));
    }
    return msgs.mean();
  };
  // On this tiny topology the ephemeral/single ordering is noisy (the
  // global-ring walk can cost as much as the short chain); the robust
  // orderings are against the multihomed and peering strategies.  The
  // internet-scale ordering is exercised by bench/fig8_join_strategies.
  const double eph = mean_overhead(JoinStrategy::kEphemeral);
  const double single = mean_overhead(JoinStrategy::kSingleHomed);
  const double multi = mean_overhead(JoinStrategy::kRecursiveMultihomed);
  const double peering = mean_overhead(JoinStrategy::kPeering);
  EXPECT_LE(eph, multi + 1e-9);
  EXPECT_LE(single, multi + 1e-9);
  EXPECT_LE(multi, peering + 1e-9);
}

TEST(InterRoute, DeliversEverywhere) {
  Fixture f;
  const auto ids = f.populate(5);
  for (graph::AsIndex src : {5u, 6u, 7u, 4u}) {
    for (const NodeId& dest : ids) {
      const InterRouteStats rs = f.net->route(src, dest);
      EXPECT_TRUE(rs.delivered) << "from " << src << " to " << dest;
    }
  }
}

TEST(InterRoute, IntraAsTrafficStaysInternal) {
  // Corollary of the isolation property: same-AS traffic uses no external
  // hops.
  Fixture f;
  const auto ids = f.populate(6);
  for (const NodeId& dest : ids) {
    const auto home = f.net->home_of(dest);
    ASSERT_TRUE(home.has_value());
    std::vector<graph::AsIndex> trace;
    const InterRouteStats rs = f.net->route(*home, dest, &trace);
    ASSERT_TRUE(rs.delivered);
    EXPECT_EQ(rs.as_hops, 0u) << "intra-AS packet left AS " << *home;
  }
}

TEST(InterRoute, IsolationPropertyHolds) {
  Fixture f;
  const auto ids = f.populate(6);
  // 5 -> 6 share the parent 2: packets must stay under 2's subtree, i.e.
  // never touch 0, 1, 3, 4, 7.
  for (const NodeId& dest : ids) {
    if (f.net->home_of(dest) != 6u) continue;
    std::vector<graph::AsIndex> trace;
    const InterRouteStats rs = f.net->route(5, dest, &trace);
    ASSERT_TRUE(rs.delivered);
    EXPECT_TRUE(rs.isolation_held);
    for (const graph::AsIndex a : trace) {
      if (f.net->work_topology().is_virtual(a)) continue;
      EXPECT_TRUE(a == 5 || a == 2 || a == 6) << "leaked to AS " << a;
    }
  }
}

TEST(InterRoute, CrossTier1UsesPeering) {
  Fixture f;
  const auto ids = f.populate(4);
  // 5 -> 4 requires crossing the 0~1 peering (via the virtual AS).
  for (const NodeId& dest : ids) {
    if (f.net->home_of(dest) != 4u) continue;
    std::vector<graph::AsIndex> trace;
    const InterRouteStats rs = f.net->route(5, dest, &trace);
    EXPECT_TRUE(rs.delivered);
    EXPECT_TRUE(rs.isolation_held);
  }
}

TEST(InterRoute, StretchBoundedAndAboveOne) {
  Fixture f;
  const auto ids = f.populate(6);
  SampleSet stretch;
  for (const NodeId& dest : ids) {
    for (graph::AsIndex src : {5u, 7u}) {
      if (f.net->home_of(dest) == src) continue;
      const InterRouteStats rs = f.net->route(src, dest);
      ASSERT_TRUE(rs.delivered);
      if (rs.bgp_hops > 0) stretch.add(rs.stretch());
    }
  }
  EXPECT_GE(stretch.min(), 1.0);
  EXPECT_LT(stretch.mean(), 6.0);
}

TEST(InterRoute, NonexistentIdUndelivered) {
  Fixture f;
  f.populate(3);
  Rng other(4242);
  const Identity ghost = Identity::generate(other);
  EXPECT_FALSE(f.net->route(5, ghost.id()).delivered);
}

TEST(InterFingers, FingersReduceSegmentsOrHops) {
  InterConfig no_fingers;
  InterConfig with_fingers;
  with_fingers.fingers_per_id = 32;
  Fixture f0(no_fingers, 11);
  Fixture f1(with_fingers, 11);
  const auto ids0 = f0.populate(8);
  const auto ids1 = f1.populate(8);
  auto total_hops = [](Fixture& f, const std::vector<NodeId>& ids) {
    std::uint64_t hops = 0;
    for (const NodeId& dest : ids) {
      const auto rs = f.net->route(5, dest);
      EXPECT_TRUE(rs.delivered);
      hops += rs.as_hops;
    }
    return hops;
  };
  EXPECT_LE(total_hops(f1, ids1), total_hops(f0, ids0));
  EXPECT_GT(f1.net->total_finger_count(), 0u);
}

TEST(InterBloom, PeeringViaBloomDelivers) {
  InterConfig cfg;
  cfg.peering_mode = PeeringMode::kBloom;
  Fixture f(cfg, 23);
  const auto ids = f.populate(5);
  // Cross-tier1 traffic (5 -> 4) must flow over the peering link using the
  // bloom rule.
  bool used_peer = false;
  for (const NodeId& dest : ids) {
    if (f.net->home_of(dest) != 4u) continue;
    const InterRouteStats rs = f.net->route(5, dest);
    EXPECT_TRUE(rs.delivered) << dest;
    used_peer |= rs.peer_links_used > 0;
  }
  EXPECT_TRUE(used_peer);
}

TEST(InterBloom, PeeringJoinCostsSameAsMultihomedUnderBloom) {
  InterConfig cfg;
  cfg.peering_mode = PeeringMode::kBloom;
  Fixture f(cfg, 31);
  f.populate(4);
  Identity a = Identity::generate(f.net->rng());
  Identity b = Identity::generate(f.net->rng());
  const auto multi = f.net->join_host(a, 5, JoinStrategy::kRecursiveMultihomed);
  const auto peering = f.net->join_host(b, 5, JoinStrategy::kPeering);
  ASSERT_TRUE(multi.ok);
  ASSERT_TRUE(peering.ok);
  // The optimization the paper reports: bloom filters eliminate joins
  // across peering links.
  EXPECT_NEAR(static_cast<double>(peering.messages),
              static_cast<double>(multi.messages), 4.0);
}

TEST(InterCache, CachesCutHopsOnRepeatedTraffic) {
  InterConfig cold;
  InterConfig warm;
  warm.cache_capacity_per_as = 1024;
  Fixture f0(cold, 13);
  Fixture f1(warm, 13);
  const auto ids0 = f0.populate(8);
  const auto ids1 = f1.populate(8);
  auto second_pass_hops = [](Fixture& f, const std::vector<NodeId>& ids) {
    std::uint64_t hops = 0;
    for (const NodeId& dest : ids) (void)f.net->route(5, dest);  // warm pass
    for (const NodeId& dest : ids) hops += f.net->route(5, dest).as_hops;
    return hops;
  };
  EXPECT_LE(second_pass_hops(f1, ids1), second_pass_hops(f0, ids0));
}

TEST(InterFail, LeaveSplicesRings) {
  Fixture f;
  auto ids = f.populate(5);
  const NodeId victim = ids[3];
  const InterRepairStats rs = f.net->leave_host(victim);
  EXPECT_GT(rs.messages, 0u);
  std::string err;
  EXPECT_TRUE(f.net->verify_rings(&err)) << err;
  EXPECT_FALSE(f.net->route(5, victim).delivered);
  for (const NodeId& id : ids) {
    if (id == victim) continue;
    EXPECT_TRUE(f.net->route(5, id).delivered);
  }
}

TEST(InterFail, StubAsFailureRepairsAndIsolates) {
  Fixture f;
  const auto ids = f.populate(6);
  const InterRepairStats rs = f.net->fail_as(7);
  EXPECT_GT(rs.ids_lost, 0u);
  std::string err;
  EXPECT_TRUE(f.net->verify_rings(&err)) << err;
  for (const NodeId& id : ids) {
    const auto home = f.net->home_of(id);
    if (!home.has_value()) continue;  // died with AS 7
    EXPECT_TRUE(f.net->route(5, id).delivered) << id;
  }
}

TEST(InterFail, RestoreAsRejoins) {
  Fixture f;
  const auto ids = f.populate(4);
  std::set<NodeId> at7;
  for (const NodeId& id : ids) {
    if (f.net->home_of(id) == 7u) at7.insert(id);
  }
  ASSERT_FALSE(at7.empty());
  (void)f.net->fail_as(7);
  (void)f.net->restore_as(7);
  std::string err;
  EXPECT_TRUE(f.net->verify_rings(&err)) << err;
  for (const NodeId& id : at7) {
    EXPECT_EQ(f.net->home_of(id), 7u);
    EXPECT_TRUE(f.net->route(5, id).delivered);
  }
}

TEST(InterFail, MultihomedSurvivesPrimaryLinkFailure) {
  // A multihomed AS keeps global reachability when one access link dies
  // (section 2.3, "Recovering").
  AsTopology t = AsTopology::from_links(
      6, {{2, 0, AsRel::kProvider},
          {3, 0, AsRel::kProvider},
          {4, 2, AsRel::kProvider},   // 4 is multihomed: providers 2 and 3
          {4, 3, AsRel::kProvider},
          {5, 2, AsRel::kProvider}});
  for (graph::AsIndex a : {4u, 5u}) t.set_host_count(a, 10);
  InterNetwork net(&t, {}, 5);
  std::vector<NodeId> ids;
  for (int i = 0; i < 6; ++i) {
    Identity ident = Identity::generate(net.rng());
    ASSERT_TRUE(net.join_host(ident, 4, JoinStrategy::kRecursiveMultihomed).ok);
    ids.push_back(ident.id());
  }
  Identity probe = Identity::generate(net.rng());
  ASSERT_TRUE(net.join_host(probe, 5, JoinStrategy::kRecursiveMultihomed).ok);

  (void)net.fail_link(4, 2);  // primary access link dies
  for (const NodeId& id : ids) {
    EXPECT_TRUE(net.route(5, id).delivered) << id;
  }
  EXPECT_TRUE(net.route(4, probe.id()).delivered);
}

TEST(InterFail, LinkRestoreReconverges) {
  Fixture f;
  const auto ids = f.populate(4);
  (void)f.net->fail_link(7, 3);
  (void)f.net->restore_link(7, 3);
  std::string err;
  EXPECT_TRUE(f.net->verify_rings(&err)) << err;
  for (const NodeId& id : ids) {
    EXPECT_TRUE(f.net->route(5, id).delivered);
  }
}

TEST(InterState, PointerCountGrowsLogarithmically) {
  // Canon: expected total pointers (internal + external) is O(log n) per ID.
  Fixture f;
  const auto ids = f.populate(10);
  const double per_id = static_cast<double>(f.net->total_pointer_count()) /
                        static_cast<double>(ids.size());
  EXPECT_LT(per_id, 6.0);  // far below the anchor count once pruned
  EXPECT_GT(per_id, 0.5);
  EXPECT_GT(f.net->mean_state_bits_per_as(), 0.0);
}

// Property sweep over larger generated topologies and all strategies.
struct SweepParam {
  JoinStrategy strategy;
  PeeringMode mode;
};

class InterSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(InterSweep, EveryPairDeliversOnGeneratedTopology) {
  const SweepParam param = GetParam();
  Rng trng(77);
  graph::AsGenParams gp;
  gp.tier1_count = 3;
  gp.tier2_count = 6;
  gp.tier3_count = 12;
  gp.stub_count = 30;
  gp.total_hosts = 5000;
  const AsTopology topo = AsTopology::make_internet_like(gp, trng);
  InterConfig cfg;
  cfg.peering_mode = param.mode;
  InterNetwork net(&topo, cfg, 101);
  std::vector<NodeId> ids;
  for (int i = 0; i < 60; ++i) {
    Identity ident = Identity::generate(net.rng());
    graph::AsIndex home =
        static_cast<graph::AsIndex>(3 + 6 + 12 + net.rng().index(30));
    if (net.join_host(ident, home, param.strategy).ok) {
      ids.push_back(ident.id());
    }
  }
  ASSERT_GT(ids.size(), 50u);
  std::string err;
  EXPECT_TRUE(net.verify_rings(&err)) << err;
  int isolation_violations = 0;
  for (int i = 0; i < 120; ++i) {
    const NodeId dest = ids[net.rng().index(ids.size())];
    const NodeId src_id = ids[net.rng().index(ids.size())];
    const auto src = net.home_of(src_id);
    ASSERT_TRUE(src.has_value());
    const InterRouteStats rs = net.route(*src, dest);
    EXPECT_TRUE(rs.delivered) << "to " << dest;
    if (!rs.isolation_held) ++isolation_violations;
  }
  // The paper observed zero isolation violations; allow none here either
  // for the strategies that join every level.
  if (param.strategy == JoinStrategy::kRecursiveMultihomed ||
      param.strategy == JoinStrategy::kPeering) {
    EXPECT_EQ(isolation_violations, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategyByMode, InterSweep,
    ::testing::Values(
        SweepParam{JoinStrategy::kSingleHomed, PeeringMode::kVirtualAs},
        SweepParam{JoinStrategy::kRecursiveMultihomed, PeeringMode::kVirtualAs},
        SweepParam{JoinStrategy::kPeering, PeeringMode::kVirtualAs},
        SweepParam{JoinStrategy::kRecursiveMultihomed, PeeringMode::kBloom},
        SweepParam{JoinStrategy::kPeering, PeeringMode::kBloom}));

}  // namespace
}  // namespace rofl::inter
