// flight_recorder.hpp -- a bounded ring buffer of per-packet hop records.
//
// Answers "why did this packet take 14 hops": every forwarding decision the
// routing layers make (chase a ring pointer, hit the pointer cache, cross a
// peering link, discover a stale entry, deliver) appends one HopRecord keyed
// by a trace id.  The trace id is allocated when a packet enters the system
// and carried across layers -- including the intradomain -> interdomain
// handoff -- so one id names the packet's whole flight.  Recording is a ring
// write (no allocation after construction); when the ring wraps, the oldest
// hops are overwritten, flight-recorder style.
//
// The recorder is deliberately shared: one instance can serve several
// Network / InterNetwork engines (the hybrid two-level setup), which is what
// makes cross-layer trace ids globally unique.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/node_id.hpp"

namespace rofl::obs {

/// What the router decided at this hop.
enum class HopKind : std::uint8_t {
  kStart,             // packet enters the system at this node
  kRingPointer,       // committed to a resident-vnode/successor pointer
  kCachePointer,      // committed to a pointer-cache entry
  kEphemeralGateway,  // followed an ephemeral backpointer to its gateway
  kForward,           // one physical hop toward the committed pointer
  kLabelSwitch,       // one physical hop via the label-switched fast path
  kStalePointer,      // chased pointer found dead; torn down and restarted
  kLevelEscalate,     // interdomain: escalated to a higher-level ring
  kPeeringCross,      // interdomain: crossed a peering link (section 4.2)
  kBootstrap,         // interdomain: handed to the ring's zero node
  kDeliver,           // destination reached
  kDrop,              // no way to make progress
  kFaultDrop,         // lost in flight by the fault injector (sim::FaultPlan)
  kAuditViolation,    // invariant auditor flagged broken state at this node
};

[[nodiscard]] std::string_view to_string(HopKind k);

/// Which layer recorded the hop; `node` is a router index for kIntra and an
/// AS index for kInter.
enum class HopDomain : std::uint8_t { kIntra = 0, kInter = 1 };

/// Message categories mirror sim::MsgCategory (obs sits below sim in the
/// dependency order, so the numeric values travel as-is; simulator.cpp
/// static_asserts the correspondence).
[[nodiscard]] constexpr std::string_view category_name(std::uint8_t category) {
  constexpr std::string_view kNames[] = {"join",      "teardown", "repair",
                                         "linkstate", "data",     "control"};
  if (category < 6) return kNames[category];
  return "?";
}

struct HopRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t seq = 0;     // recorder-global monotonic order
  double t_ms = 0.0;         // virtual time at the hop
  HopDomain domain = HopDomain::kIntra;
  std::uint32_t node = 0;    // router or AS index
  std::uint8_t category = 0; // sim::MsgCategory value
  HopKind kind = HopKind::kStart;
  std::uint32_t frame_bytes = 0;  // encoded wire-frame size (0 = not framed)
  NodeId chased;             // pointer target driving the decision (or dest)

  friend bool operator==(const HopRecord&, const HopRecord&) = default;
};

class FlightRecorder {
 public:
  /// `capacity` > 0: the number of hop records retained.
  explicit FlightRecorder(std::size_t capacity);

  /// Allocates the next trace id (monotonic from 1; 0 means "untraced").
  [[nodiscard]] std::uint64_t new_trace() { return next_trace_id_++; }

  /// Appends a record (seq is assigned here), overwriting the oldest when
  /// the ring is full.
  void record(HopRecord r);

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::size_t size() const { return full_ ? ring_.size() : head_; }
  [[nodiscard]] bool wrapped() const { return full_; }
  [[nodiscard]] std::uint64_t records_seen() const { return next_seq_; }

  /// Commutative digest over every record ever written (not just the ones
  /// still retained): per-record FNV-style hashes combined by wrapping
  /// addition, excluding the recorder-assigned seq.  Because the combination
  /// is order-independent, the digests of N per-shard recorders sum to the
  /// digest one recorder would have produced for the same records in any
  /// interleaving -- the property the sharded determinism gate compares.
  [[nodiscard]] std::uint64_t content_digest() const { return content_digest_; }

  /// All retained records, oldest first.
  [[nodiscard]] std::vector<HopRecord> all() const;

  /// Retained records for one trace id, in hop order.
  [[nodiscard]] std::vector<HopRecord> trace(std::uint64_t trace_id) const;

  /// Traceroute-style dump of one flight:
  ///
  ///   trace 17 (6 hops):
  ///     0  [intra]  router 12  start          dest=3f9a..
  ///     1  [intra]  router 12  ring-pointer   via=4a11..
  ///     ...
  [[nodiscard]] std::string format_trace(std::uint64_t trace_id) const;

  /// Empties the ring; trace-id and seq allocation keep counting.
  void clear();

 private:
  std::vector<HopRecord> ring_;
  std::size_t head_ = 0;  // next write position
  bool full_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_trace_id_ = 1;
  std::uint64_t content_digest_ = 0;
};

}  // namespace rofl::obs
