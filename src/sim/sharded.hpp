// sharded.hpp -- parallel discrete-event engine: one event loop per shard,
// synchronized by conservative lookahead.
//
// The single-core sim::Simulator caps every experiment well below the
// paper's Internet-scale claims.  This engine partitions the simulated
// world into *entities* (per-AS is the natural cut -- interdomain traffic
// already crosses an explicit wire boundary), assigns entities to shards,
// and runs one event loop per shard on its own worker thread.  Cross-shard
// events travel as timestamped frames through bounded SPSC channels
// (util::SpscQueue); shards synchronize with the classic
// Chandy-Misra-Bryant conservative rule:
//
//   * every cross-entity send must be delayed by at least `lookahead_ms`
//     (the minimum inter-shard link latency);
//   * each shard publishes a promise P = min(next local event time,
//     min over other shards' promises + lookahead): no event it will ever
//     emit can be timestamped below P + lookahead;
//   * a shard may execute events strictly below
//     horizon = min over other shards' promises + lookahead.
//
// Determinism is the design center, not an afterthought.  A 1-shard and an
// 8-shard run of the same seed must produce bit-identical merged metrics,
// flight-recorder digests, and auditor reports, which forces three rules:
//
//   1. Event order is a total order on (when, source entity, per-source
//      sequence number) -- never on shard-local state, so the order is
//      independent of how entities map to shards.
//   2. RNG streams are split per *entity* from the master seed (per-shard
//      streams would couple results to the partition).  An entity's stream
//      advances only while its own events execute, which rule 1 makes
//      deterministic.
//   3. Shared output follows the PR-1 write-one-slot-per-worker discipline:
//      each shard owns a private obs::Registry and obs::FlightRecorder;
//      snapshots are produced by deterministic merge (Registry::merge_from,
//      FlightRecorder::content_digest), which is order-independent as long
//      as histogram samples are integral (see DESIGN.md section 13).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "util/spsc_queue.hpp"

namespace rofl::sim {

class EngineProfiler;

/// A simulated actor (for the interdomain scale model: one AS).  Entities
/// are dense indices; each is owned by exactly one shard.
using EntityId = std::uint32_t;

/// Source id of engine-seeded (pre-run) events; sorts after all real
/// entities at equal timestamps, identically for every shard count.
inline constexpr EntityId kEngineEntity = 0xFFFFFFFFu;

/// Payload bytes carried inline by a shard event (a decoded wire frame; see
/// inter::ShardScaleModel for the byte-accounting contract).
inline constexpr std::size_t kShardEventPayloadBytes = 56;

/// One timestamped frame.  POD by design: events cross shard boundaries by
/// value through SPSC rings, no ownership, no allocation.
struct ShardEvent {
  double when = 0.0;     // virtual delivery time [ms]
  EntityId src = kEngineEntity;
  EntityId dst = 0;
  std::uint64_t seq = 0;  // per-source sequence number (tie-break key)
  std::uint32_t kind = 0; // application opcode
  std::uint16_t size = 0; // payload bytes in use
  std::array<std::uint8_t, kShardEventPayloadBytes> payload{};
};

/// Deterministic entity->shard assignment balancing per-entity weights:
/// entities sorted by descending weight (ties by index) go to the currently
/// lightest shard (ties by shard index).  Weights are workload estimates
/// (e.g. hosts homed at or registering through an AS); the partition affects
/// performance only, never results.
[[nodiscard]] std::vector<std::uint32_t> balanced_shard_map(
    const std::vector<std::uint64_t>& weights, std::uint32_t shards);

class ShardedSimulator;

/// The execution context handed to the entity handler.  Valid only for the
/// duration of the handler call, on the shard that owns the event's dst.
class ShardContext {
 public:
  [[nodiscard]] double now_ms() const { return now_ms_; }
  [[nodiscard]] EntityId self() const { return self_; }
  [[nodiscard]] std::uint32_t shard() const { return shard_; }

  /// The per-entity RNG stream (split from the master seed; independent of
  /// the shard map).  Only entities owned by the current shard may be drawn
  /// from -- anything else would race and break determinism.
  [[nodiscard]] Rng& rng(EntityId e);
  [[nodiscard]] Rng& rng() { return rng(self_); }

  /// This shard's private registry / recorder (write-one-slot discipline).
  [[nodiscard]] obs::Registry& metrics();
  [[nodiscard]] obs::FlightRecorder& recorder();

  /// Sends a frame to `dst` after `delay_ms`.  Self-sends (dst == self)
  /// accept any delay >= 0; cross-entity sends require
  /// delay >= lookahead_ms -- the conservative bound every simulated link
  /// latency must respect.
  void send(EntityId dst, double delay_ms, std::uint32_t kind,
            const void* payload = nullptr, std::size_t size = 0);

 private:
  friend class ShardedSimulator;
  ShardContext(ShardedSimulator* engine, std::uint32_t shard)
      : engine_(engine), shard_(shard) {}

  ShardedSimulator* engine_;
  std::uint32_t shard_;
  EntityId self_ = 0;
  double now_ms_ = 0.0;
};

class ShardedSimulator {
 public:
  struct Config {
    std::uint32_t shards = 1;
    /// Minimum cross-entity link latency [ms]; must be > 0 when shards > 1.
    double lookahead_ms = 1.0;
    /// Per-channel SPSC capacity (rounded up to a power of two).
    std::size_t channel_capacity = 4096;
    /// Master seed; entity stream e is seeded with splitmix64(seed ^ e).
    std::uint64_t seed = 1;
    /// Per-shard flight-recorder ring capacity.
    std::size_t recorder_capacity = 1 << 14;
  };

  using Handler = std::function<void(ShardContext&, const ShardEvent&)>;
  /// Runs once per shard registry at construction; every shard must perform
  /// identical registrations so merged ids line up.
  using RegistryInit = std::function<void(obs::Registry&)>;

  struct RunStats {
    std::uint64_t processed = 0;     // events dispatched (all shards)
    std::uint64_t entity_msgs = 0;   // cross-entity sends (shard-independent)
    std::uint64_t cross_shard_msgs = 0;  // sends that used an SPSC channel
    std::uint64_t cross_shard_received = 0;
    std::uint64_t batches = 0;       // horizon windows with >= 1 event
    std::uint64_t idle_spins = 0;    // loop iterations that did nothing
    double end_time_ms = 0.0;        // max executed timestamp
    double min_cross_delay_ms = std::numeric_limits<double>::infinity();
    bool monotone = true;            // per-shard timestamps never regressed
    double wall_seconds = 0.0;
  };

  /// `map[e]` = owning shard for entity e; every value must be < cfg.shards.
  ShardedSimulator(std::vector<std::uint32_t> map, Config cfg);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  void set_handler(Handler h) { handler_ = std::move(h); }
  void set_registry_init(RegistryInit init);

  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] EntityId entity_count() const {
    return static_cast<EntityId>(shard_of_.size());
  }
  [[nodiscard]] std::uint32_t shard_of(EntityId e) const {
    return shard_of_[e];
  }
  [[nodiscard]] double lookahead_ms() const { return cfg_.lookahead_ms; }

  /// Schedules a pre-run event (src = kEngineEntity).  Must not be called
  /// after run().
  void seed_event(double when_ms, EntityId dst, std::uint32_t kind,
                  const void* payload = nullptr, std::size_t size = 0);

  /// Enables per-shard timeline sampling (one obs::Timeline over each
  /// shard's private registry, advanced on the sim clock before every
  /// dispatch).  Call before run().  At quiescence every shard's timeline is
  /// flushed to the *global* end time, so all shards close the identical
  /// window range -- the property merged_timeline() needs for bit-identical
  /// output at any shard count.
  void enable_timeline(obs::Timeline::Config cfg);
  [[nodiscard]] bool timeline_enabled() const { return timeline_enabled_; }

  /// Installs a wall-clock self-profiler (must have shard_count() shards).
  /// Wall time only -- never merged into metrics, timelines, or digests.
  void set_profiler(EngineProfiler* profiler) { profiler_ = profiler; }

  /// Spawns one worker per shard, runs to global quiescence, joins, and
  /// returns the run statistics.  Callable once.
  RunStats run();

  // -- post-run, deterministic across shard counts --------------------------
  /// Fresh registry initialized by the registry-init hook with every shard's
  /// registry folded in (shard-index order; order-independent by the
  /// integral-sample discipline).
  [[nodiscard]] obs::Registry merged_metrics() const;
  /// Wrapping sum of the per-shard recorder content digests.
  [[nodiscard]] std::uint64_t flight_digest() const;
  /// Per-shard timelines folded by absolute window index (commutative, like
  /// merged_metrics); requires enable_timeline() before run().
  [[nodiscard]] obs::Timeline merged_timeline() const;

  // -- audit surface (sharding-independent unless noted) --------------------
  /// Events each entity has sent (== its final sequence number).
  [[nodiscard]] const std::vector<std::uint64_t>& sent_by_entity() const {
    return sent_by_entity_;
  }
  /// Events processed whose source was entity e, summed over shards.
  [[nodiscard]] std::vector<std::uint64_t> processed_by_source() const;
  [[nodiscard]] std::uint64_t seed_count() const { return seed_seq_; }
  [[nodiscard]] std::uint64_t seeds_processed() const;
  [[nodiscard]] const RunStats& stats() const { return stats_; }

 private:
  friend class ShardContext;

  struct HeapItem {
    double when;
    std::uint64_t seq;   // (src << 32) | per-src sequence: the tie-break key
    std::uint32_t slot;
  };

  struct alignas(64) Shard {
    explicit Shard(const Config& cfg)
        : registry(), recorder(cfg.recorder_capacity) {}

    EventQueue<HeapItem> queue;
    std::vector<ShardEvent> slab;
    std::vector<std::uint32_t> free_slots;
    obs::Registry registry;
    obs::FlightRecorder recorder;
    /// "sim.events" in this shard's registry: events dispatched here.  The
    /// per-window deltas of the merged counter are the events/sec series.
    obs::MetricId events_id = 0;
    std::unique_ptr<obs::Timeline> timeline;
    double now_ms = 0.0;
    // Per-source processed counts (audit: sequence conservation).
    std::vector<std::uint64_t> processed_by_src;
    std::uint64_t seeds_processed = 0;
    std::uint64_t processed = 0;
    std::uint64_t batches = 0;
    std::uint64_t idle_spins = 0;
    std::uint64_t cross_sent = 0;
    std::uint64_t cross_received = 0;
    double min_cross_delay = std::numeric_limits<double>::infinity();
    bool monotone = true;
    /// The conservative promise: no event this shard will emit from now on
    /// is timestamped below published + lookahead.  Monotone by
    /// construction.
    std::atomic<double> published{0.0};
    /// kActive while the shard may still produce work; kIdle only when its
    /// queue is empty.  Stored ACTIVE *before* the receive counter of any
    /// drained event so the quiescence check cannot miss queued work.
    std::atomic<std::uint8_t> state{1};  // 1 = active, 0 = idle
  };

  void enqueue_local(Shard& sh, const ShardEvent& ev);
  bool drain_inbound(std::uint32_t s);
  void shard_loop(std::uint32_t s);
  void try_finish();
  [[nodiscard]] bool all_idle() const;

  Config cfg_;
  std::vector<std::uint32_t> shard_of_;
  Handler handler_;
  RegistryInit registry_init_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // channels_[src * shards + dst]; null on the diagonal.
  std::vector<std::unique_ptr<util::SpscQueue<ShardEvent>>> channels_;
  std::vector<Rng> entity_rng_;
  std::vector<std::uint64_t> sent_by_entity_;
  std::uint64_t seed_seq_ = 0;
  bool ran_ = false;
  bool timeline_enabled_ = false;
  obs::Timeline::Config timeline_cfg_;
  EngineProfiler* profiler_ = nullptr;
  RunStats stats_;

  std::atomic<std::uint64_t> cross_sent_total_{0};
  std::atomic<std::uint64_t> cross_recv_total_{0};
  std::atomic<bool> done_{false};
};

}  // namespace rofl::sim
