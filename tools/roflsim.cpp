// roflsim -- command-line driver for the ROFL library.
//
// Runs self-contained experiments from the shell without writing C++:
//
//   roflsim topology  [--isp NAME | --internet] [--seed S]
//   roflsim intra     [--isp NAME] [--hosts N] [--routes N] [--cache N]
//                     [--seed S]
//   roflsim inter     [--ids N] [--strategy eph|single|multi|peering]
//                     [--fingers N] [--bloom] [--routes N] [--seed S]
//   roflsim partition [--isp NAME] [--ids-per-pop N] [--seed S]
//
// Observability flags (intra / inter / partition / faults / audit / shard):
//   --trace FILE      write a Chrome trace-event timeline (open in
//                     https://ui.perfetto.dev or chrome://tracing); with
//                     --timeline also carries "ph":"C" counter tracks
//   --traceroute      record per-packet hops and print the traceroute-style
//                     dump of the last delivered route
//   --metrics         print the full metrics registry after the run
//   --timeline FILE   write windowed metric deltas as JSONL (one JSON object
//                     per sim-clock window; wall-time only in the trailer)
//   --timeline-window MS   sampling window width (default 25, shard: 50)
//
// `roflsim timeline --file F` renders a timeline JSONL file as an ASCII
// sparkline/table report.
//
// Every run prints its seed; identical invocations reproduce exactly.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "audit/churn.hpp"
#include "audit/shard_audit.hpp"
#include "audit/shrink.hpp"
#include "baselines/cmu_ethernet.hpp"
#include "interdomain/inter_network.hpp"
#include "interdomain/shard_model.hpp"
#include "net/mesh.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_export.hpp"
#include "rofl/network.hpp"
#include "sim/profiler.hpp"
#include "util/rusage.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace rofl;

void usage();

struct Args {
  std::map<std::string, std::string> kv;
  bool flag(const std::string& k) const { return kv.contains(k); }
  std::string str(const std::string& k, const std::string& dflt) const {
    const auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
  std::uint64_t num(const std::string& k, std::uint64_t dflt) const {
    const auto it = kv.find(k);
    return it == kv.end() ? dflt : std::stoull(it->second);
  }
  double dbl(const std::string& k, double dflt) const {
    const auto it = kv.find(k);
    return it == kv.end() ? dflt : std::stod(it->second);
  }
};

Args parse(int argc, char** argv, int from) {
  Args a;
  for (int i = from; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      a.kv[key] = argv[++i];
    } else {
      a.kv[key] = "";
    }
  }
  return a;
}

/// Validated --timeline-window: obs::Timeline silently repairs a degenerate
/// width back to its default, so the CLI rejects one loudly instead of
/// letting "--timeline-window 0" sample at a width the user never asked for.
double timeline_window_arg(const Args& a, double dflt) {
  const double w = a.dbl("timeline-window", dflt);
  if (!std::isfinite(w) || w <= 0.0) {
    std::cerr << "--timeline-window must be a positive width in ms (got "
              << a.str("timeline-window", "") << ")\n";
    std::exit(2);
  }
  return w;
}

/// Numeric option that must be a strictly positive integer.  Args::num
/// funnels through stoull, which silently wraps "-2" to a huge value, so the
/// raw string is inspected: "--shards 0" or "--shards -2" exits 2 with usage
/// instead of running a configuration the engine cannot mean.
std::uint64_t positive_num_arg(const Args& a, const std::string& key,
                               std::uint64_t dflt) {
  const auto it = a.kv.find(key);
  if (it == a.kv.end()) return dflt;
  const std::uint64_t v =
      it->second.find('-') == std::string::npos ? a.num(key, dflt) : 0;
  if (v == 0) {
    std::cerr << "--" << key << " must be a positive integer (got '"
              << it->second << "')\n\n";
    usage();
    std::exit(2);
  }
  return v;
}

/// Non-negative numeric option (durations, rates-per-second): a negative or
/// non-finite value exits 2 with usage rather than reaching an engine that
/// would misbehave quietly (a negative lookahead, say, deadlocks the
/// conservative sync protocol instead of erroring).
double nonneg_dbl_arg(const Args& a, const std::string& key, double dflt) {
  const double v = a.dbl(key, dflt);
  if (!std::isfinite(v) || v < 0.0) {
    std::cerr << "--" << key << " must be a non-negative number (got '"
              << a.str(key, "") << "')\n\n";
    usage();
    std::exit(2);
  }
  return v;
}

/// Probability option: negative exits 2; above 1.0 clamps to 1.0 with a
/// warning (the user almost certainly meant "always", so run -- but say so,
/// because the fault injector would otherwise accept 1.2 and behave as 1.0
/// without comment).
double rate_arg(const Args& a, const std::string& key, double dflt) {
  double v = nonneg_dbl_arg(a, key, dflt);
  if (v > 1.0) {
    std::cerr << "warning: --" << key << " " << v
              << " clamped to 1.0 (probabilities cap at 1)\n";
    v = 1.0;
  }
  return v;
}

/// The one-line run summary every command prints at exit.  Wall time and RSS
/// are host-side observations, so the line goes to stdout only -- never into
/// --metrics-json files, which the determinism gates byte-compare.
struct RunSummary {
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();

  void print(std::uint64_t events) const {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double eps =
        wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
    std::cout << "run-summary: events=" << events << " wall=" << std::fixed
              << std::setprecision(3) << wall << "s events/sec="
              << static_cast<std::uint64_t>(eps)
              << " peak-rss=" << util::peak_rss_kb() / 1024 << "MB\n"
              << std::defaultfloat;
  }
};

graph::IspTopology isp_from_args(const Args& a, Rng& rng) {
  const std::string name = a.str("isp", "as3967");
  for (const auto which : graph::all_rocketfuel_ases()) {
    const auto params = graph::rocketfuel_params(which);
    std::string lower = params.name;
    for (auto& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == name || params.name == name) {
      return graph::make_rocketfuel_like(which, rng);
    }
  }
  std::cerr << "unknown --isp '" << name
            << "' (expected as1221|as1239|as3257|as3967); using a generic "
               "60-router ISP\n";
  graph::IspParams p;
  p.router_count = 60;
  p.pop_count = 8;
  return graph::make_isp_topology(p, rng);
}

/// Writes a timeline JSONL file: the deterministic window lines followed by
/// one "run" trailer carrying wall-clock provenance.  Determinism gates
/// byte-compare these files after dropping the trailer (grep -v '"run"').
bool write_timeline_jsonl(const std::string& path, const std::string& jsonl,
                          double wall_seconds) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write timeline to " << path << "\n";
    return false;
  }
  out << jsonl;
  out << "{\"run\": {\"wall_seconds\": " << wall_seconds
      << ", \"peak_rss_kb\": " << util::peak_rss_kb() << "}}\n";
  std::cout << "timeline written to " << path << "\n";
  return true;
}

// Observability hooks shared by the experiment commands: a timeline tracer
// (--trace FILE), a per-packet flight recorder (--traceroute), a metrics
// dump (--metrics), and a windowed metric sampler (--timeline FILE).
// Declare before the Network so it outlives installation.
struct ObsSession {
  obs::Tracer tracer;
  obs::FlightRecorder recorder{1 << 16};
  std::unique_ptr<obs::Timeline> timeline;
  std::string trace_path;
  std::string timeline_path;
  double timeline_window_ms;
  bool want_trace;
  bool want_route_dump;
  bool want_metrics;
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();

  explicit ObsSession(const Args& a)
      : trace_path(a.str("trace", "")),
        timeline_path(a.str("timeline", "")),
        timeline_window_ms(timeline_window_arg(a, 25.0)),
        want_trace(!a.str("trace", "").empty()),
        want_route_dump(a.flag("traceroute")),
        want_metrics(a.flag("metrics")) {}

  void install(sim::Simulator& sim) {
    if (want_trace) {
      tracer.name_track(0, "simulator");
      tracer.name_track(1, "linkstate");
      tracer.name_track(2, "rofl-intra");
      tracer.name_track(3, "interdomain");
      sim.set_tracer(&tracer);
    }
    if (!timeline_path.empty()) {
      // SPF recompute histograms measure host CPU; exclude them so two
      // same-seed timeline files byte-compare (same rule as --metrics-json).
      timeline = std::make_unique<obs::Timeline>(
          &sim.metrics(),
          obs::Timeline::Config{timeline_window_ms, 1 << 16,
                                {"recompute_ms"}});
      sim.set_timeline(timeline.get());
      // Live counter tracks: every window close lands "ph":"C" samples in
      // the trace, in sim-clock order, so Perfetto graphs them as series.
      if (want_trace) timeline->set_trace_sink(&tracer, 0);
    }
  }

  /// `last_trace` is the flight to pretty-print (0 = none delivered).
  void finish(sim::Simulator& sim, std::uint64_t last_trace) {
    if (timeline != nullptr) timeline->flush(sim.now_ms());
    if (want_route_dump) {
      if (last_trace != 0) {
        std::cout << "\n" << recorder.format_trace(last_trace);
      } else {
        std::cout << "\n(no delivered route to trace)\n";
      }
    }
    if (want_metrics) {
      std::cout << "\n-- metrics --\n";
      sim.metrics().print_table(std::cout);
    }
    if (want_trace) {
      if (tracer.write(trace_path)) {
        std::cout << "trace written to " << trace_path << " ("
                  << tracer.event_count() << " events)\n";
      } else {
        std::cerr << "cannot write trace to " << trace_path << "\n";
      }
    }
    if (timeline != nullptr) {
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      (void)write_timeline_jsonl(timeline_path, timeline->to_jsonl(), wall);
    }
  }
};

int cmd_topology(const Args& a) {
  Rng rng(a.num("seed", 1));
  if (a.flag("internet")) {
    graph::AsGenParams p;
    const auto topo = graph::AsTopology::make_internet_like(p, rng);
    std::size_t stubs = 0, peerings = 0, backups = 0;
    for (graph::AsIndex x = 0; x < topo.as_count(); ++x) {
      if (topo.is_stub(x)) ++stubs;
      peerings += topo.peers(x).size();
      for (const auto& adj : topo.adjacencies(x)) {
        if (adj.rel == graph::AsRel::kBackupProvider) ++backups;
      }
    }
    Table t({"metric", "value"});
    t.add_row({std::string("ASes"), static_cast<std::int64_t>(topo.as_count())});
    t.add_row({std::string("stubs"), static_cast<std::int64_t>(stubs)});
    t.add_row({std::string("peering links"),
               static_cast<std::int64_t>(peerings / 2)});
    t.add_row({std::string("backup provider links"),
               static_cast<std::int64_t>(backups)});
    t.add_row({std::string("total hosts (model)"),
               static_cast<std::int64_t>(topo.total_hosts())});
    t.print(std::cout);
    return 0;
  }
  const auto topo = isp_from_args(a, rng);
  Table t({"metric", "value"});
  t.add_row({std::string("name"), topo.name});
  t.add_row({std::string("routers"),
             static_cast<std::int64_t>(topo.router_count())});
  t.add_row({std::string("links"),
             static_cast<std::int64_t>(topo.graph.edge_count())});
  t.add_row({std::string("PoPs"), static_cast<std::int64_t>(topo.pop_count())});
  t.add_row({std::string("diameter [hops]"),
             static_cast<std::int64_t>(topo.graph.diameter_hops(64))});
  t.add_row({std::string("host population (model)"),
             static_cast<std::int64_t>(topo.host_count)});
  t.print(std::cout);
  return 0;
}

int cmd_intra(const Args& a) {
  const RunSummary summary;
  const std::uint64_t seed = a.num("seed", 1);
  Rng rng(seed);
  const auto topo = isp_from_args(a, rng);
  intra::Config cfg;
  cfg.cache_capacity = a.num("cache", 2048);
  cfg.enable_labels = a.flag("labels");
  ObsSession watch(a);
  intra::Network net(&topo, cfg, seed + 1);
  watch.install(net.simulator());
  if (watch.want_route_dump) net.set_flight_recorder(&watch.recorder);

  const std::size_t hosts = a.num("hosts", 1000);
  const std::size_t routes = a.num("routes", 500);
  SampleSet join_msgs, join_lat;
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < hosts; ++i) {
    Identity ident = Identity::generate(net.rng());
    const auto gw = static_cast<graph::NodeIndex>(
        net.rng().index(net.router_count()));
    const auto js = net.join_host(ident, gw);
    if (!js.ok) continue;
    ids.push_back(ident.id());
    join_msgs.add(static_cast<double>(js.messages));
    join_lat.add(js.latency_ms);
  }
  SampleSet stretch;
  std::size_t delivered = 0;
  std::uint64_t last_trace = 0;
  for (std::size_t i = 0; i < routes && !ids.empty(); ++i) {
    const NodeId dest = ids[net.rng().index(ids.size())];
    const auto src = static_cast<graph::NodeIndex>(
        net.rng().index(net.router_count()));
    const auto rs = net.route(src, dest);
    if (rs.delivered) {
      ++delivered;
      if (rs.trace_id != 0) last_trace = rs.trace_id;
      if (rs.shortest_hops > 0) stretch.add(rs.stretch());
    }
  }
  std::string err;
  const bool rings_ok = net.verify_rings(&err);

  std::cout << "[seed " << seed << "] " << topo.name << ", " << ids.size()
            << " hosts joined\n";
  Table t({"metric", "value"});
  t.add_row({std::string("join overhead p50/p99 [packets]"),
             std::to_string(static_cast<int>(join_msgs.percentile(0.5))) + " / " +
                 std::to_string(static_cast<int>(join_msgs.percentile(0.99)))});
  t.add_row({std::string("join latency p50/p99 [ms]"),
             std::to_string(join_lat.percentile(0.5)) + " / " +
                 std::to_string(join_lat.percentile(0.99))});
  t.add_row({std::string("delivery"), std::to_string(delivered) + "/" +
                                          std::to_string(routes)});
  t.add_row({std::string("mean stretch"),
             stretch.empty() ? 0.0 : stretch.mean()});
  t.add_row({std::string("mean state entries/router"),
             net.mean_state_entries()});
  if (cfg.enable_labels) {
    const auto lt = net.label_totals();
    obs::Registry& m = net.simulator().metrics();
    t.add_row({std::string("label flows / entries"),
               std::to_string(lt.flows) + " / " + std::to_string(lt.entries)});
    t.add_row(
        {std::string("label hits / misses"),
         std::to_string(m.counter_value(m.counter("labels.hits"))) + " / " +
             std::to_string(m.counter_value(m.counter("labels.misses")))});
  }
  t.add_row({std::string("ring verified"), std::string(rings_ok ? "yes" : err)});
  t.print(std::cout);
  watch.finish(net.simulator(), last_trace);
  summary.print(net.simulator().events_dispatched());
  return rings_ok ? 0 : 1;
}

int cmd_inter(const Args& a) {
  const RunSummary summary;
  const std::uint64_t seed = a.num("seed", 1);
  Rng rng(seed);
  graph::AsGenParams gp;
  const auto topo = graph::AsTopology::make_internet_like(gp, rng);

  inter::InterConfig cfg;
  cfg.fingers_per_id = a.num("fingers", 0);
  if (a.flag("bloom")) cfg.peering_mode = inter::PeeringMode::kBloom;

  const std::string sname = a.str("strategy", "multi");
  inter::JoinStrategy strategy = inter::JoinStrategy::kRecursiveMultihomed;
  if (sname == "eph") strategy = inter::JoinStrategy::kEphemeral;
  else if (sname == "single") strategy = inter::JoinStrategy::kSingleHomed;
  else if (sname == "peering") strategy = inter::JoinStrategy::kPeering;
  else if (sname != "multi") {
    std::cerr << "unknown --strategy '" << sname
              << "' (eph|single|multi|peering); using multi\n";
  }

  ObsSession watch(a);
  inter::InterNetwork net(&topo, cfg, seed + 1);
  watch.install(net.simulator());
  if (watch.want_route_dump) net.set_flight_recorder(&watch.recorder);
  const std::size_t ids = a.num("ids", 1000);
  const std::size_t routes = a.num("routes", 500);
  SampleSet join_msgs;
  for (std::size_t i = 0; i < ids; ++i) {
    const auto js = net.join_random_host(strategy);
    if (js.ok) join_msgs.add(static_cast<double>(js.messages));
  }
  std::vector<NodeId> joined;
  for (const auto& [id, home] : net.directory()) joined.push_back(id);

  SampleSet stretch;
  std::size_t delivered = 0, violations = 0;
  std::uint64_t last_trace = 0;
  for (std::size_t i = 0; i < routes && !joined.empty(); ++i) {
    const NodeId dest = joined[net.rng().index(joined.size())];
    const auto src = net.home_of(joined[net.rng().index(joined.size())]);
    if (!src.has_value()) continue;
    const auto rs = net.route(*src, dest);
    if (rs.delivered) {
      ++delivered;
      if (rs.trace_id != 0) last_trace = rs.trace_id;
      if (!rs.isolation_held) ++violations;
      if (rs.bgp_hops > 0) stretch.add(rs.stretch());
    }
  }
  std::string err;
  const bool rings_ok = net.verify_rings(&err);

  std::cout << "[seed " << seed << "] " << topo.as_count() << " ASes, "
            << joined.size() << " IDs (" << sname << ", "
            << (a.flag("bloom") ? "bloom" : "virtual-AS") << " peering)\n";
  Table t({"metric", "value"});
  t.add_row({std::string("join overhead mean [packets]"), join_msgs.mean()});
  t.add_row({std::string("delivery"), std::to_string(delivered) + "/" +
                                          std::to_string(routes)});
  t.add_row({std::string("mean stretch vs BGP"),
             stretch.empty() ? 0.0 : stretch.mean()});
  t.add_row({std::string("isolation violations"),
             static_cast<std::int64_t>(violations)});
  t.add_row({std::string("fingers/id"),
             joined.empty() ? 0.0
                            : static_cast<double>(net.total_finger_count()) /
                                  static_cast<double>(joined.size())});
  t.add_row({std::string("rings verified"), std::string(rings_ok ? "yes" : err)});
  t.print(std::cout);
  watch.finish(net.simulator(), last_trace);
  summary.print(net.simulator().events_dispatched());
  return rings_ok ? 0 : 1;
}

int cmd_partition(const Args& a) {
  const RunSummary summary;
  const std::uint64_t seed = a.num("seed", 1);
  Rng rng(seed);
  graph::IspTopology topo = isp_from_args(a, rng);
  ObsSession watch(a);
  intra::Network net(&topo, intra::Config{}, seed + 1);
  watch.install(net.simulator());
  const std::size_t per_pop = a.num("ids-per-pop", 50);
  for (std::size_t p = 0; p < topo.pop_count(); ++p) {
    for (std::size_t i = 0; i < per_pop; ++i) {
      const auto& members = topo.pops[p];
      Identity ident = Identity::generate(net.rng());
      (void)net.join_host(ident, members[net.rng().index(members.size())]);
    }
  }
  const std::size_t victim = topo.pop_count() / 2;
  std::vector<std::pair<graph::NodeIndex, graph::NodeIndex>> cut;
  for (const auto r : topo.pops[victim]) {
    for (const auto& e : topo.graph.neighbors(r)) {
      bool internal = false;
      for (const auto m : topo.pops[victim]) internal |= (m == e.to);
      if (!internal) cut.emplace_back(r, e.to);
    }
  }
  for (const auto& [u, v] : cut) net.map().fail_link(u, v);
  const auto split = net.repair_partitions();
  for (const auto& [u, v] : cut) net.map().restore_link(u, v);
  const auto heal = net.repair_partitions();
  std::string err;
  const bool ok = net.verify_rings(&err);
  std::cout << "[seed " << seed << "] " << topo.name << ": cut PoP " << victim
            << " (" << topo.pops[victim].size() << " routers, " << cut.size()
            << " links, " << per_pop << " IDs/PoP)\n";
  Table t({"phase", "repair packets"});
  t.add_row({std::string("disconnect"),
             static_cast<std::int64_t>(split.messages)});
  t.add_row({std::string("reconnect"),
             static_cast<std::int64_t>(heal.messages)});
  t.print(std::cout);
  std::cout << "reconverged: " << (ok ? "yes" : err) << "\n";
  watch.finish(net.simulator(), 0);
  summary.print(net.simulator().events_dispatched());
  return ok ? 0 : 1;
}

int cmd_faults(const Args& a) {
  const RunSummary summary;
  const std::uint64_t seed = a.num("seed", 1);
  Rng rng(seed);
  graph::IspTopology topo = isp_from_args(a, rng);
  ObsSession watch(a);
  intra::Config fcfg;
  fcfg.enable_labels = a.flag("labels");
  intra::Network net(&topo, fcfg, seed + 1);
  watch.install(net.simulator());
  if (watch.want_route_dump) net.set_flight_recorder(&watch.recorder);

  sim::FaultPlan plan;
  plan.defaults.loss = rate_arg(a, "loss", 0.05);
  plan.defaults.duplicate = rate_arg(a, "dup", 0.0);
  plan.defaults.jitter_ms = nonneg_dbl_arg(a, "jitter", 0.0);
  plan.defaults.corrupt = rate_arg(a, "corrupt", 0.0);
  const std::uint64_t flap_count = a.num("flaps", 0);
  std::vector<std::pair<graph::NodeIndex, graph::NodeIndex>> edges;
  for (graph::NodeIndex u = 0; u < topo.graph.node_count(); ++u) {
    for (const auto& e : topo.graph.neighbors(u)) {
      if (e.to > u) edges.emplace_back(u, e.to);
    }
  }
  Rng frng(seed * 5 + 1);
  for (std::uint64_t i = 0; i < flap_count; ++i) {
    const auto [u, v] = edges[frng.index(edges.size())];
    const double down = 10.0 + 15.0 * static_cast<double>(i);
    plan.link_flaps.push_back({u, v, down, down + 12.0});
  }
  sim::FaultInjector inj(plan, seed ^ 0xF417C0DEull,
                         &net.simulator().metrics());
  net.set_fault_injector(&inj);
  net.schedule_fault_plan(plan);

  // Workload: joins, then churn with data traffic, all under the plan.
  const std::size_t hosts = a.num("hosts", 200);
  const std::size_t churn = a.num("churn", 50);
  Rng wrng(seed * 9 + 7);
  std::vector<Identity> live;
  std::uint64_t joins_ok = 0, joins_failed = 0;
  double t = 0.0;
  for (std::size_t i = 0; i < hosts; ++i) {
    t += 0.5;
    net.simulator().run_until(t);
    Identity ident = Identity::generate(net.rng());
    const auto gw =
        static_cast<graph::NodeIndex>(wrng.index(net.router_count()));
    if (net.join_host(ident, gw).ok) {
      ++joins_ok;
      live.push_back(ident);
    } else {
      ++joins_failed;
    }
  }
  std::size_t attempted = 0, delivered = 0;
  std::uint64_t last_trace = 0;
  for (std::size_t op = 0; op < churn; ++op) {
    t += 1.0;
    net.simulator().run_until(t);
    const std::uint64_t pick = wrng.below(100);
    if (pick < 30 && !live.empty()) {
      const std::size_t v = wrng.index(live.size());
      (void)net.fail_host(live[v].id());
      live.erase(live.begin() + static_cast<long>(v));
    } else if (pick < 55) {
      Identity ident = Identity::generate(net.rng());
      if (net.join_host(ident, static_cast<graph::NodeIndex>(
                                   wrng.index(net.router_count())))
              .ok) {
        live.push_back(ident);
      }
    } else if (!live.empty()) {
      const auto src =
          static_cast<graph::NodeIndex>(wrng.index(net.router_count()));
      ++attempted;
      const auto rs = net.route(src, live[wrng.index(live.size())].id());
      if (rs.delivered) {
        ++delivered;
        if (rs.trace_id != 0) last_trace = rs.trace_id;
      }
    }
  }
  net.simulator().run_until(t + 200.0);  // every scheduled window closed

  // Snapshot before the faults-off repair so two same-seed runs compare the
  // faulty phase, not whatever repair did afterwards.  Wall-clock histograms
  // (SPF recompute times) are excluded: they measure host CPU, not simulated
  // behavior, and would break byte-for-byte comparison.
  const std::string metrics_path = a.str("metrics-json", "");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "cannot write " << metrics_path << "\n";
      return 1;
    }
    std::istringstream in(net.simulator().metrics().to_json(2));
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("recompute_ms") == std::string::npos) out << line << "\n";
    }
    std::cout << "metrics written to " << metrics_path << "\n";
  }

  net.set_fault_injector(nullptr);
  const auto rs = net.repair_partitions();
  std::string err;
  const bool rings_ok = net.verify_rings(&err, /*strict=*/true);

  std::cout << "[seed " << seed << "] " << topo.name << ", loss="
            << plan.defaults.loss << " dup=" << plan.defaults.duplicate
            << " corrupt=" << plan.defaults.corrupt
            << " jitter=" << plan.defaults.jitter_ms << "ms flaps="
            << flap_count << "\n";
  Table t2({"metric", "value"});
  t2.add_row({std::string("joins ok/failed"),
              std::to_string(joins_ok) + "/" + std::to_string(joins_failed)});
  t2.add_row({std::string("delivery during churn"),
              std::to_string(delivered) + "/" + std::to_string(attempted)});
  t2.add_row({std::string("messages dropped"),
              static_cast<std::int64_t>(inj.dropped())});
  t2.add_row({std::string("messages duplicated"),
              static_cast<std::int64_t>(inj.duplicated())});
  t2.add_row({std::string("frames corrupted"),
              static_cast<std::int64_t>(inj.corrupted())});
  t2.add_row({std::string("retries"),
              static_cast<std::int64_t>(inj.retries())});
  t2.add_row({std::string("retries exhausted"),
              static_cast<std::int64_t>(inj.retries_exhausted())});
  t2.add_row({std::string("link flaps"),
              static_cast<std::int64_t>(inj.flaps())});
  t2.add_row({std::string("repair packets (faults off)"),
              static_cast<std::int64_t>(rs.messages)});
  t2.add_row({std::string("rings canonical after repair"),
              std::string(rings_ok ? "yes" : err)});
  t2.print(std::cout);
  watch.finish(net.simulator(), last_trace);
  summary.print(net.simulator().events_dispatched());
  return rings_ok ? 0 : 1;
}

int cmd_audit(const Args& a) {
  const RunSummary summary;
  const std::uint64_t seed = a.num("seed", 1);

  audit::ChurnConfig cc;
  cc.events = a.num("events", 200);
  cc.end_ms = a.dbl("end", 400.0);

  audit::ChurnRunParams params;
  params.router_count = a.num("routers", 60);
  params.pop_count = a.num("pops", 8);
  params.initial_hosts = a.num("initial-hosts", 64);
  params.audit_interval_ms = a.dbl("audit-interval", 25.0);
  params.settle_ms = a.dbl("settle", 300.0);
  params.seed = seed;
  if (!a.str("timeline", "").empty()) {
    params.timeline_window_ms = timeline_window_arg(a, 25.0);
  }
  params.net_cfg.enable_labels = a.flag("labels");
  const double loss = rate_arg(a, "loss", 0.0);
  const double dup = rate_arg(a, "dup", 0.0);
  const double corrupt = rate_arg(a, "corrupt", 0.0);
  if (loss > 0.0 || dup > 0.0 || corrupt > 0.0) {
    params.use_faults = true;
    params.faults.defaults.loss = loss;
    params.faults.defaults.duplicate = dup;
    params.faults.defaults.corrupt = corrupt;
  }

  const auto schedule = audit::make_churn_schedule(cc, seed);
  const audit::ChurnRunResult res = audit::run_churn(params, schedule);

  std::cout << "[seed " << seed << "] churn: " << schedule.size()
            << " events over " << cc.end_ms << "ms, audit every "
            << params.audit_interval_ms << "ms"
            << (params.use_faults
                    ? " (loss=" + std::to_string(loss) + " corrupt=" +
                          std::to_string(corrupt) + ")"
                    : "")
            << "\n";
  Table t({"metric", "value"});
  t.add_row({std::string("joins ok/failed"),
             std::to_string(res.joins) + "/" + std::to_string(res.joins_failed)});
  t.add_row({std::string("leaves / crashes"),
             std::to_string(res.leaves) + " / " + std::to_string(res.crashes)});
  t.add_row({std::string("delivery during churn"),
             std::to_string(res.delivered) + "/" + std::to_string(res.routes)});
  t.add_row({std::string("audits run"), static_cast<std::int64_t>(res.audits)});
  t.add_row({std::string("hard violations"),
             static_cast<std::int64_t>(res.hard)});
  t.add_row({std::string("soft (stale, self-healing)"),
             static_cast<std::int64_t>(res.soft)});
  t.add_row({std::string("converged after repair"),
             std::string(res.converged ? "yes" : res.err)});
  t.add_row({std::string("audit digest"), res.digest});
  t.add_row({std::string("routes digest"), res.routes_digest});
  t.print(std::cout);

  if (a.flag("report")) {
    for (const audit::AuditReport& rep : res.reports) {
      if (!rep.clean()) std::cout << "\n" << rep.to_string();
    }
  }

  const std::string metrics_path = a.str("metrics-json", "");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "cannot write " << metrics_path << "\n";
      return 1;
    }
    out << res.metrics_json;
    std::cout << "metrics written to " << metrics_path << "\n";
  }

  const std::string timeline_path = a.str("timeline", "");
  if (!timeline_path.empty()) {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      summary.start)
            .count();
    if (!write_timeline_jsonl(timeline_path, res.timeline_jsonl, wall)) {
      return 1;
    }
  }

  const bool failed = res.hard > 0 || !res.converged;
  if (failed && a.flag("shrink")) {
    std::cout << "\nshrinking the failing schedule (ddmin)...\n";
    const auto still_fails = [&](const std::vector<audit::ChurnEvent>& sub) {
      const audit::ChurnRunResult r = audit::run_churn(params, sub);
      return r.hard > 0 || !r.converged;
    };
    const audit::ShrinkResult sr = audit::shrink_schedule(
        schedule, still_fails, a.num("shrink-probes", 2000));
    std::cout << "minimal schedule: " << sr.events.size() << "/"
              << schedule.size() << " events (" << sr.probes << " probes, "
              << (sr.minimal ? "1-minimal" : "budget exhausted") << ")\n";
    for (const audit::ChurnEvent& e : sr.events) {
      std::cout << "  t=" << e.t_ms << "ms " << audit::to_string(e.op);
      if (e.ident.has_value()) std::cout << " id=" << e.ident->id().to_string();
      std::cout << " pick=" << e.pick << "\n";
    }
  }
  summary.print(res.events_dispatched);
  return failed ? 1 : 0;
}

// -- `roflsim net` live-mesh mode -------------------------------------------

/// Builds the MeshConfig shared by driver, in-process runs, and spawn-mode
/// workers; every numeric knob is validated here so a worker re-invoked with
/// driver-generated flags takes the same path as a hand-typed run.
net::MeshConfig mesh_config_from_args(const Args& a) {
  net::MeshConfig cfg;
  cfg.routers = static_cast<std::uint32_t>(positive_num_arg(a, "routers", 8));
  cfg.hosts = static_cast<std::uint32_t>(positive_num_arg(a, "hosts", 400));
  cfg.fingers = static_cast<std::uint32_t>(positive_num_arg(a, "fingers", 256));
  cfg.seed = a.num("seed", 1);
  cfg.conditions.loss = rate_arg(a, "loss", 0.0);
  cfg.conditions.duplicate = rate_arg(a, "dup", 0.0);
  cfg.conditions.corrupt = rate_arg(a, "corrupt", 0.0);
  cfg.conditions.jitter_ms = nonneg_dbl_arg(a, "jitter", 0.0);
  cfg.rate_pps = nonneg_dbl_arg(a, "rate", 0.0);
  cfg.deadline_ms =
      static_cast<double>(positive_num_arg(a, "deadline-ms", 60'000));
  cfg.max_outstanding =
      static_cast<std::uint32_t>(positive_num_arg(a, "outstanding", 8));
  cfg.base_port =
      static_cast<std::uint16_t>(positive_num_arg(a, "base-port", 47'100));
  if (!a.str("timeline", "").empty()) {
    cfg.timeline_window_ms = timeline_window_arg(a, 25.0);
  }
  const std::string backend = a.str("backend", "udp");
  if (backend == "loopback") {
    cfg.backend = net::MeshBackend::kLoopback;
  } else if (backend == "udp") {
    cfg.backend = net::MeshBackend::kUdp;
  } else {
    std::cerr << "unknown --backend '" << backend << "' (udp|loopback)\n";
    std::exit(2);
  }
  cfg.lookups = static_cast<std::uint32_t>(a.num("lookups", 0));
  cfg.leave_router = static_cast<std::int32_t>(a.num("leave", -1));
  if (cfg.leave_router >= 0 &&
      (cfg.leave_router == 0 ||
       static_cast<std::uint32_t>(cfg.leave_router) >= cfg.routers)) {
    std::cerr << "--leave must name a non-bootstrap router in [1, "
              << cfg.routers - 1 << "]\n";
    std::exit(2);
  }
  return cfg;
}

int cmd_net(const Args& a, const char* argv0) {
  const RunSummary summary;
  const net::MeshConfig cfg = mesh_config_from_args(a);
  const bool loopback = cfg.backend == net::MeshBackend::kLoopback;

  // The lookup and leave phases are driven in-process (the driver must touch
  // router state between phases); spawn mode runs the join storm only.
  if ((a.flag("spawn") || a.kv.contains("worker")) &&
      (cfg.lookups > 0 || cfg.leave_router >= 0)) {
    std::cerr << "--lookups/--leave are not supported with --spawn\n";
    return 2;
  }

  // Spawn-mode worker: the driver re-invoked this binary.  Run the storm and
  // exit; all reporting happens driver-side.
  if (a.kv.contains("worker")) {
    return net::run_mesh_worker(
        cfg, static_cast<net::RouterId>(a.num("worker", 0)));
  }

  // Spawn-mode driver: fork one process per router over real UDP ports.
  if (a.flag("spawn")) {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    const std::string exe = n > 0 ? std::string(buf, static_cast<std::size_t>(n))
                                  : std::string(argv0);
    return net::run_mesh_spawn(cfg, exe, std::cout);
  }

  net::MeshResult r = net::run_mesh(cfg);
  obs::Registry& m = r.metrics;
  const auto counter = [&m](const char* name) {
    return m.counter_value(m.counter(name));
  };
  const std::uint64_t tx = counter("net.tx.frames");
  const std::uint64_t rx = counter("net.rx.frames");
  const double secs = r.elapsed_ms / 1000.0;
  const double pps_per_router =
      secs > 0.0 ? static_cast<double>(tx) / secs / cfg.routers : 0.0;
  const obs::Histogram& lat = m.histogram_at(m.histogram(
      "net.join.latency_ms", obs::Histogram::exponential_bounds(1.0, 2.0, 16)));

  std::cout << "[seed " << cfg.seed << "] live mesh: " << cfg.routers
            << " router(s), " << cfg.hosts << " hosts, "
            << (loopback ? "loopback" : "udp") << " backend, " << cfg.fingers
            << " fingers\n";
  Table t({"metric", "value"});
  t.add_row({std::string("converged"),
             std::string(r.converged ? "yes" : "NO (deadline)")});
  t.add_row({std::string("joins completed"),
             std::to_string(r.joins_completed) + "/" +
                 std::to_string(cfg.hosts - 1)});
  t.add_row({std::string(loopback ? "elapsed [virtual ms]"
                                  : "elapsed [wall ms]"),
             r.elapsed_ms});
  t.add_row({std::string("frames tx / rx"),
             std::to_string(tx) + " / " + std::to_string(rx)});
  t.add_row({std::string("sustained pps/router"), pps_per_router});
  t.add_row({std::string("join latency p50/p99 [ms]"),
             std::to_string(lat.percentile(0.5)) + " / " +
                 std::to_string(lat.percentile(0.99))});
  if (cfg.lookups > 0) {
    const obs::Histogram& llat = m.histogram_at(
        m.histogram("net.lookup.latency_ms",
                    obs::Histogram::exponential_bounds(0.25, 2.0, 16)));
    t.add_row({std::string("lookups hit/served"),
               std::to_string(r.lookups_hit) + "/" +
                   std::to_string(r.lookups_completed)});
    t.add_row({std::string("lookup latency p50/p99 [ms]"),
               std::to_string(llat.percentile(0.5)) + " / " +
                   std::to_string(llat.percentile(0.99))});
  }
  if (cfg.leave_router >= 0) {
    t.add_row({std::string("router " + std::to_string(cfg.leave_router) +
                           " departure"),
               std::string(r.leave_completed ? "clean" : "INCOMPLETE")});
  }
  t.add_row({std::string("retransmissions"),
             static_cast<std::int64_t>(counter("net.retrans"))});
  t.add_row({std::string("locate redirects"),
             static_cast<std::int64_t>(counter("net.redirects"))});
  t.add_row({std::string("frames dropped (impairment)"),
             static_cast<std::int64_t>(counter("faults.dropped"))});
  t.add_row({std::string("dedup / ring drops"),
             std::to_string(counter("net.rx.dedup_dropped")) + " / " +
                 std::to_string(counter("net.rx.ring_dropped"))});
  t.add_row({std::string("audit"),
             r.audit.ok() ? std::string("clean (") +
                                std::to_string(r.audit.population) +
                                " vnodes exact)"
                          : std::to_string(r.audit.error_count) +
                                " defect(s)"});
  t.print(std::cout);
  for (const std::string& e : r.audit.errors) std::cout << "  " << e << "\n";

  // Section 6.3 byte-parity gate: on a lossless transport every 256-finger
  // JoinRequest must cost exactly 1638 bytes on the wire -- the simulator's
  // (and the paper's) figure, now measured on real frames.  Any deviation is
  // an encoding or accounting bug, so it fails the run loudly.
  bool parity_ok = true;
  const bool lossless = cfg.conditions.loss == 0.0 &&
                        cfg.conditions.duplicate == 0.0 &&
                        cfg.conditions.corrupt == 0.0;
  if (cfg.fingers == 256 && lossless) {
    wire::msg::JoinRequest jr;
    jr.fingers.resize(256);
    const std::uint64_t expect = wire::msg::control_wire_size(jr);
    const std::uint64_t msgs = counter("net.msgs.join_request");
    const std::uint64_t bytes = counter("net.bytes.join_request");
    parity_ok = msgs > 0 && bytes == msgs * expect;
    std::cout << "byte parity (6.3): " << msgs << " JoinRequests, " << bytes
              << " bytes, " << expect << "/msg -> "
              << (parity_ok ? "exact" : "MISMATCH") << "\n";
  }

  if (a.flag("metrics")) {
    std::cout << "\n-- merged metrics --\n";
    m.print_table(std::cout);
  }
  const std::string metrics_path = a.str("metrics-json", "");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "cannot write " << metrics_path << "\n";
      return 1;
    }
    out << m.to_json(0, /*with_buckets=*/true) << "\n";
    std::cout << "metrics written to " << metrics_path << "\n";
  }
  const std::string timeline_path = a.str("timeline", "");
  if (!timeline_path.empty() && r.timeline != nullptr) {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      summary.start)
            .count();
    if (!write_timeline_jsonl(timeline_path, r.timeline->to_jsonl(), wall)) {
      return 1;
    }
  }
  // Every lookup targets a joined id, so a correct mesh serves them all as
  // hits; the departure must have drained every relink ack.
  const bool lookups_ok =
      cfg.lookups == 0 || (r.lookups_completed == cfg.lookups &&
                           r.lookups_hit == r.lookups_completed);
  summary.print(rx);
  return (r.converged && r.audit.ok() && parity_ok && lookups_ok &&
          r.leave_completed)
             ? 0
             : 1;
}

int cmd_shard(const Args& a) {
  const RunSummary summary;
  inter::ScaleParams p;
  p.seed = a.num("seed", 1);
  p.shards = static_cast<std::uint32_t>(positive_num_arg(a, "shards", 1));
  p.hosts = a.num("hosts", 100'000);
  p.duration_ms = a.dbl("duration", 2000.0);
  p.tick_ms = a.dbl("tick", 50.0);
  p.op_rate_per_host_hz = nonneg_dbl_arg(a, "rate", 1.0);
  p.lookahead_ms = nonneg_dbl_arg(a, "lookahead", 1.0);
  p.slots_per_as = static_cast<std::uint32_t>(a.num("slots", 64));
  // --ases scales the default AS mix proportionally (default 1518 total).
  const double scale = a.dbl("ases", 0.0) > 0.0
                           ? a.dbl("ases", 0.0) / 1518.0
                           : 1.0;
  p.topo.tier2_count = static_cast<std::size_t>(60.0 * scale);
  p.topo.tier3_count = static_cast<std::size_t>(250.0 * scale);
  p.topo.stub_count = static_cast<std::size_t>(1200.0 * scale);
  const std::string timeline_path = a.str("timeline", "");
  if (!timeline_path.empty()) {
    p.timeline_window_ms = timeline_window_arg(a, 50.0);
    p.timeline_capacity = 1 << 16;
  }
  p.profile = a.flag("profile");

  inter::ShardScaleModel model(p);
  const auto stats = model.run();
  const audit::ShardAuditReport rep = audit::audit_scale_run(model);

  std::cout << "[seed " << p.seed << "] " << model.topology().as_count()
            << " ASes, " << p.hosts << " hosts, " << p.shards
            << " shard(s), lookahead " << p.lookahead_ms << "ms\n";
  Table t({"metric", "value"});
  t.add_row({std::string("events processed"),
             static_cast<std::int64_t>(stats.processed)});
  t.add_row({std::string("cross-entity msgs"),
             static_cast<std::int64_t>(stats.entity_msgs)});
  t.add_row({std::string("cross-shard msgs"),
             static_cast<std::int64_t>(stats.cross_shard_msgs)});
  t.add_row({std::string("sync batches"),
             static_cast<std::int64_t>(stats.batches)});
  t.add_row({std::string("end time [ms]"), stats.end_time_ms});
  t.print(std::cout);

  const obs::Registry merged = model.merged_metrics();
  if (a.flag("metrics")) {
    std::cout << "\n-- merged metrics --\n";
    merged.print_table(std::cout);
  }
  std::ostringstream digest;
  digest << "0x" << std::hex << std::setfill('0') << std::setw(16)
         << model.flight_digest();
  std::cout << "flight digest: " << digest.str() << "\n";
  std::cout << "shard audit: " << rep.digest() << "\n";
  if (!rep.clean() || a.flag("report")) std::cout << rep.to_string();

  if (model.profiler() != nullptr) {
    std::cout << "\n-- engine profile (wall clock; reporting only) --\n";
    model.profiler()->print_table(std::cout);
  }

  const std::string metrics_path = a.str("metrics-json", "");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "cannot write " << metrics_path << "\n";
      return 1;
    }
    out << merged.to_json(0, /*with_buckets=*/true) << "\n";
    std::cout << "metrics written to " << metrics_path << "\n";
  }

  if (!timeline_path.empty()) {
    const obs::Timeline merged_tl = model.merged_timeline();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      summary.start)
            .count();
    if (!write_timeline_jsonl(timeline_path, merged_tl.to_jsonl(), wall)) {
      return 1;
    }
  }

  summary.print(stats.processed);
  return rep.clean() ? 0 : 1;
}

// -- `roflsim timeline` report mode -----------------------------------------

/// Parses the `"counters": {"name": V, ...}` object out of one timeline
/// window line.  The exporter emits flat one-line JSON with no nesting
/// inside the counters object, so a linear scan is sufficient (and keeps the
/// report tool dependency-free).
void parse_window_counters(
    const std::string& line,
    std::map<std::string, std::vector<std::uint64_t>>* series,
    std::size_t window_ordinal) {
  const std::size_t key = line.find("\"counters\":");
  if (key == std::string::npos) return;
  const std::size_t open = line.find('{', key);
  const std::size_t close = line.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return;
  std::size_t pos = open + 1;
  while (pos < close) {
    const std::size_t q1 = line.find('"', pos);
    if (q1 == std::string::npos || q1 >= close) break;
    const std::size_t q2 = line.find('"', q1 + 1);
    if (q2 == std::string::npos || q2 >= close) break;
    const std::string name = line.substr(q1 + 1, q2 - q1 - 1);
    const std::size_t colon = line.find(':', q2);
    if (colon == std::string::npos || colon >= close) break;
    const std::uint64_t value = std::strtoull(line.c_str() + colon + 1,
                                              nullptr, 10);
    auto& vec = (*series)[name];
    // Counters appear only in windows where their delta is nonzero; pad the
    // gap with zeros so every series is aligned on the window axis.
    if (vec.size() < window_ordinal) vec.resize(window_ordinal, 0);
    vec.push_back(value);
    pos = line.find(',', colon);
    if (pos == std::string::npos || pos >= close) break;
    ++pos;
  }
}

/// Renders `values` as a fixed-width ASCII sparkline, rebinned by summation
/// when there are more windows than columns.  Scale is per-series (peak bin
/// maps to the densest glyph).
std::string sparkline(const std::vector<std::uint64_t>& values,
                      std::size_t width) {
  static const char kRamp[] = " .:-=+*#%@";
  constexpr std::size_t kLevels = sizeof(kRamp) - 2;  // index of densest
  if (values.empty() || width == 0) return "";
  const std::size_t bins = std::min(width, values.size());
  std::vector<std::uint64_t> binned(bins, 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    binned[i * bins / values.size()] += values[i];
  }
  std::uint64_t peak = 0;
  for (const std::uint64_t v : binned) peak = std::max(peak, v);
  std::string out;
  out.reserve(bins);
  for (const std::uint64_t v : binned) {
    const std::size_t level =
        peak == 0 ? 0 : (v * kLevels + peak - 1) / peak;  // ceil; 0 stays 0
    out.push_back(kRamp[level]);
  }
  return out;
}

int cmd_timeline(const Args& a) {
  const std::string path = a.str("file", "");
  if (path.empty()) {
    std::cerr << "roflsim timeline --file FILE [--metric SUBSTR] [--width N]\n";
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 1;
  }
  const std::string filter = a.str("metric", "");
  const std::size_t width = a.num("width", 56);

  std::map<std::string, std::vector<std::uint64_t>> series;
  std::size_t windows = 0;
  double window_ms = 0.0, first_t = 0.0, last_t = 0.0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("{\"window\"", 0) != 0) continue;
    const std::size_t tkey = line.find("\"t_ms\":");
    const double t = tkey == std::string::npos
                         ? 0.0
                         : std::strtod(line.c_str() + tkey + 7, nullptr);
    if (windows == 0) first_t = t;
    last_t = t;
    parse_window_counters(line, &series, windows);
    ++windows;
  }
  if (windows == 0) {
    std::cerr << path << ": no timeline windows found\n";
    return 1;
  }
  if (windows > 1) window_ms = (last_t - first_t) / double(windows - 1);

  std::cout << path << ": " << windows << " windows";
  if (window_ms > 0.0) std::cout << " x " << window_ms << "ms";
  std::cout << ", sim time " << (first_t - window_ms < 0 ? 0.0
                                                         : first_t - window_ms)
            << ".." << last_t << "ms\n";

  Table t({"metric", "total", "peak/win", "sparkline"});
  std::size_t shown = 0;
  for (auto& [name, values] : series) {
    if (!filter.empty() && name.find(filter) == std::string::npos) continue;
    values.resize(windows, 0);  // trailing all-zero windows
    std::uint64_t total = 0, peak = 0;
    for (const std::uint64_t v : values) {
      total += v;
      peak = std::max(peak, v);
    }
    t.add_row({name, static_cast<std::int64_t>(total),
               static_cast<std::int64_t>(peak), sparkline(values, width)});
    ++shown;
  }
  if (shown == 0) {
    std::cerr << "no counter matches --metric '" << filter << "'\n";
    return 1;
  }
  t.print(std::cout);
  return 0;
}

void usage() {
  std::cout <<
      "roflsim -- ROFL (Routing on Flat Labels) experiment driver\n\n"
      "  roflsim topology  [--isp as1221|as1239|as3257|as3967 | --internet]\n"
      "  roflsim intra     [--isp NAME] [--hosts N] [--routes N] [--cache N]\n"
      "                    [--labels]\n"
      "  roflsim inter     [--ids N] [--strategy eph|single|multi|peering]\n"
      "                    [--fingers N] [--bloom] [--routes N]\n"
      "  roflsim partition [--isp NAME] [--ids-per-pop N]\n"
      "  roflsim faults    [--isp NAME] [--hosts N] [--churn N] [--loss P]\n"
      "                    [--dup P] [--corrupt P] [--jitter MS] [--flaps N]\n"
      "                    [--labels] [--metrics-json FILE]\n"
      "  roflsim audit     [--routers N] [--pops N] [--events N] [--loss P]\n"
      "                    [--dup P] [--corrupt P] [--audit-interval MS]\n"
      "                    [--settle MS]\n"
      "                    [--initial-hosts N] [--report] [--shrink]\n"
      "                    [--shrink-probes N]\n"
      "                    [--labels] [--metrics-json FILE]\n"
      "  roflsim shard     [--shards N] [--hosts N] [--ases N] [--duration MS]\n"
      "                    [--tick MS] [--rate OPS_PER_HOST_HZ] [--slots N]\n"
      "                    [--lookahead MS] [--report] [--metrics] [--profile]\n"
      "                    [--metrics-json FILE]\n"
      "  roflsim net       [--routers N] [--hosts N] [--fingers N]\n"
      "                    [--backend udp|loopback] [--spawn] [--rate PPS]\n"
      "                    [--loss P] [--dup P] [--corrupt P] [--jitter MS]\n"
      "                    [--deadline-ms MS] [--base-port P]\n"
      "                    [--outstanding N] [--metrics] [--metrics-json F]\n"
      "  roflsim timeline  --file FILE [--metric SUBSTR] [--width N]\n\n"
      "All commands accept --seed S (default 1); runs are reproducible.\n"
      "`net` runs the control plane over actual sockets: a live mesh of\n"
      "router event loops (threads, or processes with --spawn) exchanging\n"
      "wire frames over localhost UDP, converging a join storm and auditing\n"
      "the assembled ring for exactness.  --backend loopback runs the same\n"
      "mesh single-threaded on a virtual clock (deterministic); with 256\n"
      "fingers and no impairment the run enforces the section 6.3 parity\n"
      "gate: every JoinRequest costs exactly 1638 bytes on the wire.\n"
      "`shard` runs the per-AS scale model on the sharded parallel simulator;\n"
      "its metrics, flight digest, audit digest, and --timeline file are\n"
      "bit-identical for every --shards value of the same seed (--profile\n"
      "prints the wall-clock busy/stall/idle engine profile per shard).\n"
      "`timeline` renders a --timeline JSONL file as sparkline series.\n"
      "Observability (intra/inter/partition/faults/audit/shard):\n"
      "  --trace FILE        write a Perfetto/chrome://tracing timeline;\n"
      "                      with --timeline it also carries counter tracks\n"
      "  --traceroute        print the hop dump of the last delivered route\n"
      "  --metrics           print the metrics registry after the run\n"
      "  --timeline FILE     write windowed metric deltas as JSONL\n"
      "  --timeline-window MS  window width (default 25; shard 50; must be a\n"
      "                      positive number -- 0 is rejected, not defaulted)\n"
      "  --labels            label-switched fast path for established flows\n"
      "                      (intra/faults/audit).  Route outcomes are\n"
      "                      byte-identical with and without it: `audit`\n"
      "                      prints a mode-independent \"routes digest\".\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv, 2);
  if (cmd == "topology") return cmd_topology(args);
  if (cmd == "intra") return cmd_intra(args);
  if (cmd == "inter") return cmd_inter(args);
  if (cmd == "partition") return cmd_partition(args);
  if (cmd == "faults") return cmd_faults(args);
  if (cmd == "audit") return cmd_audit(args);
  if (cmd == "net") return cmd_net(args, argv[0]);
  if (cmd == "shard") return cmd_shard(args);
  if (cmd == "timeline") return cmd_timeline(args);
  usage();
  return 2;
}
