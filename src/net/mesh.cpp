#include "net/mesh.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <map>
#include <ostream>
#include <thread>

#include "net/loopback.hpp"
#include "net/udp.hpp"
#include "util/rng.hpp"

namespace rofl::net {

namespace {

LiveRouterConfig router_config(const MeshConfig& cfg, RouterId self) {
  LiveRouterConfig rc;
  rc.self = self;
  rc.bootstrap = 0;
  rc.fingers = cfg.fingers;
  rc.max_outstanding = cfg.max_outstanding;
  rc.conditions = cfg.conditions;
  // Independent fault stream per router, derived from the mesh seed.
  rc.fault_seed = cfg.seed * 1'000'003ull + self + 1;
  rc.timeline_window_ms = cfg.timeline_window_ms;
  return rc;
}

/// Distributes identities: seeds host 0 at the bootstrap router, queues the
/// rest on their gateways.
void assign_hosts(const MeshConfig& cfg, std::vector<Identity> ids,
                  const std::vector<LiveRouter*>& routers) {
  for (std::uint32_t h = 0; h < ids.size(); ++h) {
    const RouterId gw = h % cfg.routers;
    // Entries for routers another process owns are null (spawn-mode workers
    // only instantiate their own router).
    if (h == 0) {
      if (routers[0] != nullptr) routers[0]->seed(ids[h]);
    } else if (routers[gw] != nullptr) {
      routers[gw]->enqueue_join(std::move(ids[h]));
    }
  }
}

void merge_router(MeshResult& result, LiveRouter& r) {
  result.metrics.merge_from(r.registry());
  result.joins_completed += r.joins_completed();
  if (result.timeline != nullptr && r.timeline() != nullptr) {
    result.timeline->merge_from(*r.timeline());
  }
}

MeshResult make_result(const MeshConfig& cfg) {
  MeshResult result;
  if (cfg.timeline_window_ms > 0.0) {
    obs::Timeline::Config tc;
    tc.window_ms = cfg.timeline_window_ms;
    result.timeline = std::make_unique<obs::Timeline>(tc);
  }
  return result;
}

/// On a missed deadline with ROFL_NET_DEBUG=1, dump what kept each router
/// busy -- the fastest way to see *which* exchange is wedged.
void maybe_debug_dump(bool converged, const std::vector<LiveRouter*>& raw) {
  if (converged || std::getenv("ROFL_NET_DEBUG") == nullptr) return;
  for (LiveRouter* r : raw) {
    if (r != nullptr) r->debug_dump(std::cerr);
  }
}

std::vector<std::pair<NodeId, RouterId>> expected_owners(
    const MeshConfig& cfg, const std::vector<Identity>& ids) {
  std::vector<std::pair<NodeId, RouterId>> expected;
  expected.reserve(ids.size());
  for (std::uint32_t h = 0; h < ids.size(); ++h) {
    const RouterId gw = h % cfg.routers;
    // A departed router took its resident ids with it; the audit checks the
    // ring the survivors stitched together.
    if (cfg.leave_router >= 0 &&
        gw == static_cast<RouterId>(cfg.leave_router)) {
      continue;
    }
    expected.emplace_back(ids[h].id(), gw);
  }
  return expected;
}

/// Lookup targets: draws over the joined identity set, deterministic in the
/// mesh seed but independent of the identity stream itself.  Every target is
/// a joined id, so a correct mesh resolves all of them as hits.
std::vector<NodeId> make_lookup_targets(const MeshConfig& cfg,
                                        const std::vector<Identity>& ids) {
  Rng rng(cfg.seed ^ 0x9E3779B97F4A7C15ull);
  std::vector<NodeId> targets;
  targets.reserve(cfg.lookups);
  for (std::uint32_t i = 0; i < cfg.lookups; ++i) {
    targets.push_back(ids[rng.below(ids.size())].id());
  }
  return targets;
}

/// Distributes the lookup probes round-robin across the gateways.
void assign_lookups(const MeshConfig& cfg, const std::vector<NodeId>& targets,
                    const std::vector<LiveRouter*>& routers) {
  for (std::uint32_t i = 0; i < targets.size(); ++i) {
    LiveRouter* r = routers[i % cfg.routers];
    if (r != nullptr) r->enqueue_lookup(targets[i]);
  }
}

/// True when `cfg` requests a departure; validated by the CLI (never the
/// bootstrap, in range).
bool wants_leave(const MeshConfig& cfg) {
  return cfg.leave_router >= 1 &&
         static_cast<std::uint32_t>(cfg.leave_router) < cfg.routers;
}

MeshResult run_mesh_loopback(const MeshConfig& cfg) {
  LoopbackHub hub;
  std::vector<std::unique_ptr<LoopbackTransport>> transports;
  std::vector<std::unique_ptr<LiveRouter>> routers;
  std::vector<LiveRouter*> raw;
  for (RouterId r = 0; r < cfg.routers; ++r) {
    transports.push_back(std::make_unique<LoopbackTransport>(r, &hub));
    if (cfg.rate_pps > 0.0) transports.back()->set_rate_limit(cfg.rate_pps);
    routers.push_back(
        std::make_unique<LiveRouter>(router_config(cfg, r), transports[r].get()));
    raw.push_back(routers.back().get());
  }
  const std::vector<Identity> ids = make_identities(cfg.seed, cfg.hosts);
  assign_hosts(cfg, ids, raw);

  // Virtual clock: every router steps at the same instant, one round per
  // tick.  Deterministic end to end -- same seed, same byte counts.
  constexpr double kTickMs = 0.25;
  double now = 0.0;
  const auto run_phase = [&](double deadline) {
    while (now < deadline) {
      for (auto& r : routers) r->step(now);
      const bool quiet =
          std::all_of(routers.begin(), routers.end(),
                      [](const auto& r) { return r->quiescent(); });
      if (quiet) return true;
      now += kTickMs;
    }
    return false;
  };

  // Phase 1: the join storm.
  bool converged = run_phase(cfg.deadline_ms);
  // Phase 2: data-plane lookups over the converged ring.
  if (converged && cfg.lookups > 0) {
    assign_lookups(cfg, make_lookup_targets(cfg, ids), raw);
    converged = run_phase(now + cfg.deadline_ms);
  }
  // Phase 3: one router departs cleanly.
  bool leave_completed = true;
  if (wants_leave(cfg)) {
    leave_completed = false;
    if (converged) {
      routers[static_cast<RouterId>(cfg.leave_router)]->begin_leave(now);
      converged = run_phase(now + cfg.deadline_ms);
      leave_completed =
          routers[static_cast<RouterId>(cfg.leave_router)]->departed();
    }
  }

  MeshResult result = make_result(cfg);
  result.converged = converged;
  result.leave_completed = leave_completed;
  result.elapsed_ms = now;
  maybe_debug_dump(converged, raw);
  std::vector<std::pair<RouterId, Vnode>> collected;
  for (RouterId r = 0; r < cfg.routers; ++r) {
    routers[r]->finish(now);
    merge_router(result, *routers[r]);
    result.lookups_completed += routers[r]->lookups_completed();
    result.lookups_hit += routers[r]->lookups_hit();
    for (const auto& [id, v] : routers[r]->vnodes()) {
      collected.emplace_back(r, v);
    }
  }
  result.audit = audit_ring(collected, expected_owners(cfg, ids));
  return result;
}

MeshResult run_mesh_udp(const MeshConfig& cfg) {
  std::vector<std::unique_ptr<UdpTransport>> transports;
  std::vector<std::unique_ptr<LiveRouter>> routers;
  std::vector<LiveRouter*> raw;
  for (RouterId r = 0; r < cfg.routers; ++r) {
    transports.push_back(std::make_unique<UdpTransport>(r, /*port=*/0));
    if (cfg.rate_pps > 0.0) transports.back()->set_rate_limit(cfg.rate_pps);
    routers.push_back(
        std::make_unique<LiveRouter>(router_config(cfg, r), transports[r].get()));
    raw.push_back(routers.back().get());
  }
  for (RouterId a = 0; a < cfg.routers; ++a) {
    for (RouterId b = 0; b < cfg.routers; ++b) {
      transports[a]->set_peer(b, transports[b]->port());
    }
  }
  const std::vector<Identity> ids = make_identities(cfg.seed, cfg.hosts);
  assign_hosts(cfg, ids, raw);

  // One event-loop thread per router, started fresh for each phase: between
  // phases no router thread runs, so the driver can enqueue lookups or start
  // the departure without racing router internals (which stay
  // single-threaded).  The driver only reads the per-router atomics while
  // threads are live.
  const auto run_phase = [&](double deadline_ms) {
    std::atomic<bool> stop{false};
    std::vector<std::unique_ptr<std::atomic<bool>>> quiet;
    for (RouterId r = 0; r < cfg.routers; ++r) {
      quiet.push_back(std::make_unique<std::atomic<bool>>(false));
    }
    std::vector<std::thread> threads;
    threads.reserve(cfg.routers);
    for (RouterId r = 0; r < cfg.routers; ++r) {
      threads.emplace_back([&, r] {
        LiveRouter& router = *raw[r];
        while (!stop.load(std::memory_order_acquire)) {
          router.step(UdpTransport::wall_ms());
          quiet[r]->store(router.quiescent(), std::memory_order_release);
          std::this_thread::sleep_for(std::chrono::microseconds(
              router.quiescent() ? 500 : 50));
        }
      });
    }
    const double start = UdpTransport::wall_ms();
    bool phase_converged = false;
    while (UdpTransport::wall_ms() - start < deadline_ms) {
      phase_converged =
          std::all_of(quiet.begin(), quiet.end(), [](const auto& q) {
            return q->load(std::memory_order_acquire);
          });
      if (phase_converged) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    stop.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
    return phase_converged;
  };

  const double start = UdpTransport::wall_ms();
  // Phase 1: the join storm.
  bool converged = run_phase(cfg.deadline_ms);
  // Phase 2: data-plane lookups over the converged ring.
  if (converged && cfg.lookups > 0) {
    assign_lookups(cfg, make_lookup_targets(cfg, ids), raw);
    converged = run_phase(cfg.deadline_ms);
  }
  // Phase 3: one router departs cleanly.
  bool leave_completed = true;
  if (wants_leave(cfg)) {
    leave_completed = false;
    if (converged) {
      LiveRouter& leaver = *raw[static_cast<RouterId>(cfg.leave_router)];
      leaver.begin_leave(UdpTransport::wall_ms());
      converged = run_phase(cfg.deadline_ms);
      leave_completed = leaver.departed();
    }
  }
  const double elapsed = UdpTransport::wall_ms() - start;
  for (auto& t : transports) t->stop();

  MeshResult result = make_result(cfg);
  result.converged = converged;
  result.leave_completed = leave_completed;
  result.elapsed_ms = elapsed;
  maybe_debug_dump(converged, raw);
  std::vector<std::pair<RouterId, Vnode>> collected;
  const double end_ms = UdpTransport::wall_ms();
  for (RouterId r = 0; r < cfg.routers; ++r) {
    routers[r]->finish(end_ms);
    merge_router(result, *routers[r]);
    result.lookups_completed += routers[r]->lookups_completed();
    result.lookups_hit += routers[r]->lookups_hit();
    for (const auto& [id, v] : routers[r]->vnodes()) {
      collected.emplace_back(r, v);
    }
  }
  result.audit = audit_ring(collected, expected_owners(cfg, ids));
  return result;
}

// -- spawn mode serialization -------------------------------------------------

constexpr std::size_t kVnodeWire = 56;  // 3x16-byte id + 2x u32 owner

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

void serialize_vnode(std::vector<std::uint8_t>& out, const Vnode& v) {
  put_u64(out, v.id.hi());
  put_u64(out, v.id.lo());
  put_u64(out, v.succ.hi());
  put_u64(out, v.succ.lo());
  put_u64(out, static_cast<std::uint64_t>(v.succ_owner) << 32 |
                   v.pred_owner);  // both owners packed in one word
  put_u64(out, v.pred.hi());
  put_u64(out, v.pred.lo());
}

Vnode deserialize_vnode(const std::uint8_t* p) {
  Vnode v;
  v.id = NodeId{get_u64(p), get_u64(p + 8)};
  v.succ = NodeId{get_u64(p + 16), get_u64(p + 24)};
  const std::uint64_t owners = get_u64(p + 32);
  v.succ_owner = static_cast<RouterId>(owners >> 32);
  v.pred_owner = static_cast<RouterId>(owners & 0xFFFFFFFFu);
  v.pred = NodeId{get_u64(p + 40), get_u64(p + 48)};
  return v;
}

constexpr std::size_t kVnodesPerChunk =
    (kMaxDatagram - kPumpHeaderBytes) / kVnodeWire;

}  // namespace

std::vector<Identity> make_identities(std::uint64_t seed,
                                      std::uint32_t hosts) {
  Rng rng(seed);
  std::vector<Identity> ids;
  ids.reserve(hosts);
  for (std::uint32_t h = 0; h < hosts; ++h) {
    ids.push_back(Identity::generate(rng));
  }
  return ids;
}

MeshAuditReport audit_ring(
    const std::vector<std::pair<RouterId, Vnode>>& collected,
    std::vector<std::pair<NodeId, RouterId>> expected) {
  MeshAuditReport rep;
  rep.population = collected.size();
  rep.expected = expected.size();
  const auto defect = [&rep](const std::string& what) {
    ++rep.error_count;
    if (rep.errors.size() < 10) rep.errors.push_back(what);
  };

  std::sort(expected.begin(), expected.end());
  std::map<NodeId, std::pair<RouterId, Vnode>> by_id;
  for (const auto& [owner, v] : collected) {
    if (!by_id.emplace(v.id, std::make_pair(owner, v)).second) {
      defect("duplicate id " + v.id.to_string());
    }
  }
  if (rep.population != rep.expected) {
    defect("population " + std::to_string(rep.population) + " != expected " +
           std::to_string(rep.expected));
  }

  const std::size_t n = expected.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& [id, want_owner] = expected[i];
    const auto it = by_id.find(id);
    if (it == by_id.end()) {
      defect("missing id " + id.to_string());
      continue;
    }
    const auto& [owner, v] = it->second;
    if (owner != want_owner) {
      defect("id " + id.to_string() + " homed on router " +
             std::to_string(owner) + ", expected " +
             std::to_string(want_owner));
    }
    const auto& [next_id, next_owner] = expected[(i + 1) % n];
    const auto& [prev_id, prev_owner] = expected[(i + n - 1) % n];
    if (v.succ != next_id || v.succ_owner != next_owner) {
      defect("id " + id.to_string() + " succ " + v.succ.to_string() + "@" +
             std::to_string(v.succ_owner) + ", expected " +
             next_id.to_string() + "@" + std::to_string(next_owner));
    }
    if (v.pred != prev_id || v.pred_owner != prev_owner) {
      defect("id " + id.to_string() + " pred " + v.pred.to_string() + "@" +
             std::to_string(v.pred_owner) + ", expected " +
             prev_id.to_string() + "@" + std::to_string(prev_owner));
    }
  }
  return rep;
}

MeshResult run_mesh(const MeshConfig& cfg) {
  return cfg.backend == MeshBackend::kLoopback ? run_mesh_loopback(cfg)
                                               : run_mesh_udp(cfg);
}

// -- spawn mode ---------------------------------------------------------------

int run_mesh_worker(const MeshConfig& cfg, RouterId self) {
  const RouterId driver = cfg.routers;  // the driver sits past the routers
  UdpTransport transport(self,
                         static_cast<std::uint16_t>(cfg.base_port + self));
  for (RouterId r = 0; r <= cfg.routers; ++r) {
    transport.set_peer(r, static_cast<std::uint16_t>(cfg.base_port + r));
  }
  if (cfg.rate_pps > 0.0) transport.set_rate_limit(cfg.rate_pps);
  LiveRouter router(router_config(cfg, self), &transport);
  assign_hosts(cfg, make_identities(cfg.seed, cfg.hosts),
               [&] {
                 std::vector<LiveRouter*> raw(cfg.routers, nullptr);
                 raw[self] = &router;
                 return raw;
               }());

  // Pre-serialized state chunks are built lazily once kStop arrives.
  std::vector<std::vector<std::uint8_t>> chunks;
  bool stopping = false;
  double next_signal_ms = 0.0;
  const double start = UdpTransport::wall_ms();
  while (true) {
    const double now = UdpTransport::wall_ms();
    if (now - start > cfg.deadline_ms + 10'000.0) return 3;  // orphaned
    router.step(now);

    RxFrame h;
    while (router.poll_harness(h)) {
      if (h.op == PumpOp::kStop && !stopping) {
        stopping = true;
        next_signal_ms = 0.0;
        std::vector<std::uint8_t> buf;
        for (const auto& [id, v] : router.vnodes()) {
          serialize_vnode(buf, v);
          if (buf.size() >= kVnodesPerChunk * kVnodeWire) {
            chunks.push_back(std::move(buf));
            buf.clear();
          }
        }
        if (!buf.empty() || chunks.empty()) chunks.push_back(std::move(buf));
      } else if (h.op == PumpOp::kStateAck) {
        return 0;
      }
    }

    if (now >= next_signal_ms) {
      next_signal_ms = now + 300.0;
      if (stopping) {
        // Retransmit the whole table until the driver acks; it dedups by
        // chunk index, so repeats are harmless.
        for (std::size_t i = 0; i < chunks.size(); ++i) {
          const std::uint32_t arg = static_cast<std::uint32_t>(i) << 16 |
                                    static_cast<std::uint32_t>(chunks.size());
          transport.send(driver, PumpOp::kStateChunk, arg, chunks[i], now);
        }
      } else if (router.quiescent()) {
        transport.send(driver, PumpOp::kDone,
                       static_cast<std::uint32_t>(router.joins_completed()),
                       {}, now);
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(
        router.quiescent() ? 500 : 50));
  }
}

int run_mesh_spawn(const MeshConfig& cfg, const std::string& exe,
                   std::ostream& out) {
  const RouterId driver_id = cfg.routers;
  UdpTransport transport(
      driver_id, static_cast<std::uint16_t>(cfg.base_port + driver_id));
  for (RouterId r = 0; r < cfg.routers; ++r) {
    transport.set_peer(r, static_cast<std::uint16_t>(cfg.base_port + r));
  }

  std::vector<pid_t> pids;
  const auto arg = [](auto v) { return std::to_string(v); };
  for (RouterId r = 0; r < cfg.routers; ++r) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      std::vector<std::string> argv_s = {
          exe, "net", "--worker", arg(r), "--routers", arg(cfg.routers),
          "--hosts", arg(cfg.hosts), "--fingers", arg(cfg.fingers),
          "--seed", arg(cfg.seed), "--base-port", arg(cfg.base_port),
          "--deadline-ms", arg(cfg.deadline_ms),
          "--loss", arg(cfg.conditions.loss),
          "--dup", arg(cfg.conditions.duplicate),
          "--jitter", arg(cfg.conditions.jitter_ms),
          "--corrupt", arg(cfg.conditions.corrupt),
          "--rate", arg(cfg.rate_pps)};
      std::vector<char*> argv;
      argv.reserve(argv_s.size() + 1);
      for (auto& s : argv_s) argv.push_back(s.data());
      argv.push_back(nullptr);
      ::execv(exe.c_str(), argv.data());
      ::_exit(127);  // exec failed
    }
    if (pid < 0) {
      out << "net: fork failed for worker " << r << "\n";
      for (const pid_t p : pids) ::kill(p, SIGKILL);
      for (const pid_t p : pids) ::waitpid(p, nullptr, 0);
      return 1;
    }
    pids.push_back(pid);
  }

  std::vector<bool> done(cfg.routers, false);
  std::vector<std::uint64_t> done_joins(cfg.routers, 0);
  // chunks[worker][index]; sized on the first chunk that reveals the total.
  std::vector<std::vector<std::vector<std::uint8_t>>> chunks(cfg.routers);
  std::vector<bool> state_complete(cfg.routers, false);
  bool stop_sent = false;
  double next_signal_ms = 0.0;
  const double start = UdpTransport::wall_ms();
  bool ok = true;

  while (true) {
    const double now = UdpTransport::wall_ms();
    if (now - start > cfg.deadline_ms) {
      out << "net: deadline after " << (now - start) / 1000.0
          << "s; killing workers\n";
      ok = false;
      break;
    }
    RxFrame rx;
    while (transport.poll(rx)) {
      if (rx.src >= cfg.routers) continue;
      if (rx.op == PumpOp::kDone) {
        done[rx.src] = true;
        done_joins[rx.src] = rx.arg;
      } else if (rx.op == PumpOp::kStateChunk) {
        const std::uint32_t index = rx.arg >> 16;
        const std::uint32_t total = rx.arg & 0xFFFF;
        auto& w = chunks[rx.src];
        if (w.size() != total) w.assign(total, {});
        if (index < total && w[index].empty()) {
          w[index] = std::move(rx.frame);
          // Empty chunks exist (a worker can own zero vnodes); mark with a
          // sentinel byte so "received" is distinguishable.
          if (w[index].empty()) w[index] = {0xFF};
        }
        state_complete[rx.src] =
            !w.empty() && std::all_of(w.begin(), w.end(), [](const auto& c) {
              return !c.empty();
            });
      }
    }

    const bool all_done =
        std::all_of(done.begin(), done.end(), [](bool d) { return d; });
    const bool all_state = std::all_of(state_complete.begin(),
                                       state_complete.end(),
                                       [](bool s) { return s; });
    if (all_state) break;
    if (all_done) stop_sent = true;
    if (now >= next_signal_ms) {
      next_signal_ms = now + 200.0;
      for (RouterId r = 0; r < cfg.routers; ++r) {
        if (stop_sent && !state_complete[r]) {
          transport.send(r, PumpOp::kStop, 0, {}, now);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Ack state so workers exit, then reap (escalating to SIGKILL on timeout).
  const double ack_until = UdpTransport::wall_ms() + 5'000.0;
  for (RouterId r = 0; r < cfg.routers; ++r) {
    transport.send(r, PumpOp::kStateAck, 0, {}, UdpTransport::wall_ms());
  }
  std::vector<bool> reaped(cfg.routers, false);
  while (UdpTransport::wall_ms() < ack_until) {
    bool all = true;
    for (RouterId r = 0; r < cfg.routers; ++r) {
      if (reaped[r]) continue;
      if (::waitpid(pids[r], nullptr, WNOHANG) == pids[r]) {
        reaped[r] = true;
      } else {
        all = false;
        transport.send(r, PumpOp::kStateAck, 0, {}, UdpTransport::wall_ms());
      }
    }
    if (all) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  for (RouterId r = 0; r < cfg.routers; ++r) {
    if (!reaped[r]) {
      ::kill(pids[r], SIGKILL);
      ::waitpid(pids[r], nullptr, 0);
    }
  }
  transport.stop();
  if (!ok) return 1;

  std::vector<std::pair<RouterId, Vnode>> collected;
  for (RouterId r = 0; r < cfg.routers; ++r) {
    for (const auto& c : chunks[r]) {
      if (c.size() == 1 && c[0] == 0xFF) continue;  // empty-table sentinel
      for (std::size_t off = 0; off + kVnodeWire <= c.size();
           off += kVnodeWire) {
        collected.emplace_back(r, deserialize_vnode(c.data() + off));
      }
    }
  }
  const std::vector<Identity> ids = make_identities(cfg.seed, cfg.hosts);
  const MeshAuditReport audit = audit_ring(collected, expected_owners(cfg, ids));
  std::uint64_t joins = 0;
  for (const std::uint64_t j : done_joins) joins += j;

  out << "net: spawn mesh routers=" << cfg.routers << " hosts=" << cfg.hosts
      << " joins=" << joins << " population=" << audit.population << "/"
      << audit.expected << " audit=" << (audit.ok() ? "clean" : "DEFECTS")
      << "\n";
  for (const auto& e : audit.errors) out << "net:   defect: " << e << "\n";
  return audit.ok() ? 0 : 1;
}

}  // namespace rofl::net
