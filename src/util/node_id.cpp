#include "util/node_id.hpp"

#include <cassert>
#include <ostream>
#include <sstream>

namespace rofl {

NodeId NodeId::from_bytes(const std::array<std::uint8_t, 16>& bytes) {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 8; ++i) hi = (hi << 8) | bytes[static_cast<size_t>(i)];
  for (int i = 8; i < 16; ++i) lo = (lo << 8) | bytes[static_cast<size_t>(i)];
  return NodeId{hi, lo};
}

std::uint64_t NodeId::digit(unsigned i, unsigned b) const {
  assert(b >= 1 && b <= 64 && i + b <= 128);
  std::uint64_t out = 0;
  for (unsigned k = 0; k < b; ++k) out = (out << 1) | bit(i + k);
  return out;
}

unsigned NodeId::common_prefix_len(const NodeId& other) const {
  for (unsigned i = 0; i < 128; ++i) {
    if (bit(i) != other.bit(i)) return i;
  }
  return 128;
}

namespace {

// 128-bit shift-left of (hi, lo) by s in [0, 128].
constexpr std::pair<std::uint64_t, std::uint64_t> shl128(std::uint64_t hi,
                                                         std::uint64_t lo,
                                                         unsigned s) {
  if (s == 0) return {hi, lo};
  if (s >= 128) return {0, 0};
  if (s >= 64) return {lo << (s - 64), 0};
  return {(hi << s) | (lo >> (64 - s)), lo << s};
}

// 128-bit logical shift-right.
constexpr std::pair<std::uint64_t, std::uint64_t> shr128(std::uint64_t hi,
                                                         std::uint64_t lo,
                                                         unsigned s) {
  if (s == 0) return {hi, lo};
  if (s >= 128) return {0, 0};
  if (s >= 64) return {0, hi >> (s - 64)};
  return {hi >> s, (lo >> s) | (hi << (64 - s))};
}

}  // namespace

NodeId NodeId::compose(const NodeId& prefix_src, unsigned prefix_bits,
                       std::uint64_t digit, unsigned digit_bits,
                       bool fill_ones) {
  assert(prefix_bits + digit_bits <= 128 && digit_bits <= 64);
  // Keep the top prefix_bits of prefix_src.
  auto [mh, ml] = shl128(0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull,
                         128 - prefix_bits);
  if (prefix_bits == 0) mh = ml = 0;
  std::uint64_t hi = prefix_src.hi() & mh;
  std::uint64_t lo = prefix_src.lo() & ml;
  // Place the digit right below the prefix.
  if (digit_bits > 0) {
    auto [dh, dl] = shl128(0, digit, 128 - prefix_bits - digit_bits);
    hi |= dh;
    lo |= dl;
  }
  // Fill the remainder.
  if (fill_ones && prefix_bits + digit_bits < 128) {
    auto [fh, fl] = shr128(0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull,
                           prefix_bits + digit_bits);
    hi |= fh;
    lo |= fl;
  }
  return NodeId{hi, lo};
}

std::string NodeId::to_string() const {
  std::ostringstream os;
  os << std::hex << hi_ << ':' << lo_;
  return os.str();
}

std::optional<NodeId> NodeId::from_string(std::string_view s) {
  const auto colon = s.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  auto parse_word = [](std::string_view w) -> std::optional<std::uint64_t> {
    if (w.empty() || w.size() > 16) return std::nullopt;
    std::uint64_t v = 0;
    for (const char c : w) {
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint64_t>(c - 'A' + 10);
      else return std::nullopt;
    }
    return v;
  };
  const auto hi = parse_word(s.substr(0, colon));
  const auto lo = parse_word(s.substr(colon + 1));
  if (!hi.has_value() || !lo.has_value()) return std::nullopt;
  return NodeId{*hi, *lo};
}

std::ostream& operator<<(std::ostream& os, const NodeId& id) {
  return os << id.to_string();
}

}  // namespace rofl
