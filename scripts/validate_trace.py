#!/usr/bin/env python3
"""Validate a Chrome trace-event file emitted by rofl::obs::Tracer.

Usage: validate_trace.py trace.json [--min-events N]
                                    [--require-counter NAME]...

Checks (exit 1 with a message on the first failure):
  * the file is well-formed JSON with a non-empty "traceEvents" list
  * every event has the required keys for its phase
    ("name", "cat", "ph", "ts", "pid", "tid"; complete events also "dur";
    instant events also "s")
  * phases are ones the exporter emits ('X', 'i', 'C', 'M')
  * timestamps are finite, non-negative, and non-decreasing in file order
    across non-metadata events (the exporter clamps, so a violation means
    the clamp regressed)
  * durations are finite and non-negative
  * counter events ('C', the Timeline's live counter tracks) carry a
    non-empty "args" object whose values are all finite numbers -- Perfetto
    silently drops malformed counter samples, so we fail loudly instead
  * every --require-counter NAME (repeatable) names a counter track that
    actually appears in the file

This is the per-PR smoke gate scripts/check.sh runs against a small
simulation; it is intentionally strict about the invariants Perfetto and
chrome://tracing rely on and silent about everything else.
"""
from __future__ import annotations

import argparse
import json
import math
import sys

REQUIRED_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")
KNOWN_PHASES = {"X", "i", "C", "M"}


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="path to trace.json")
    ap.add_argument("--min-events", type=int, default=1,
                    help="require at least this many non-metadata events")
    ap.add_argument("--require-counter", action="append", default=[],
                    metavar="NAME",
                    help="fail unless a 'C' track with this name exists "
                         "(repeatable)")
    args = ap.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail('"traceEvents" missing, not a list, or empty')

    last_ts = -math.inf
    real_events = 0
    counter_events = 0
    counter_tracks: set[str] = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        for key in REQUIRED_KEYS:
            if key not in ev:
                fail(f"event {i} ({ev.get('name', '?')!r}) missing {key!r}")
        ph = ev["ph"]
        if ph not in KNOWN_PHASES:
            fail(f"event {i} has unknown phase {ph!r}")
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
            fail(f"event {i} has bad ts {ts!r}")
        if ph == "M":
            continue
        real_events += 1
        if ts < last_ts:
            fail(f"event {i} ts {ts} < previous {last_ts} (non-monotonic)")
        last_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            if (not isinstance(dur, (int, float)) or not math.isfinite(dur)
                    or dur < 0):
                fail(f"complete event {i} has bad dur {dur!r}")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            fail(f"instant event {i} has bad scope {ev.get('s')!r}")
        if ph == "C":
            counter_events += 1
            counter_tracks.add(ev["name"])
            cargs = ev.get("args")
            if not isinstance(cargs, dict) or not cargs:
                fail(f"counter event {i} ({ev['name']!r}) has no args object")
            for key, value in cargs.items():
                if (not isinstance(value, (int, float))
                        or isinstance(value, bool)
                        or not math.isfinite(value)):
                    fail(f"counter event {i} ({ev['name']!r}) arg {key!r} "
                         f"is not a finite number: {value!r}")

    for name in args.require_counter:
        if name not in counter_tracks:
            known = ", ".join(sorted(counter_tracks)) or "(none)"
            fail(f"required counter track {name!r} not found "
                 f"(tracks present: {known})")

    if real_events < args.min_events:
        fail(f"only {real_events} non-metadata events "
             f"(need >= {args.min_events})")

    print(f"validate_trace: OK: {args.trace}: {real_events} events "
          f"({counter_events} counter samples on {len(counter_tracks)} "
          f"tracks), {len(events) - real_events} metadata records, "
          f"ts spans [0, {last_ts}] us")


if __name__ == "__main__":
    main()
