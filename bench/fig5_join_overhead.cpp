// fig5_join_overhead -- regenerates Figure 5 (intradomain joining).
//
//   5a: cumulative join overhead (packets) vs number of IDs joined, for the
//       four Rocketfuel-like ISPs, plus the CMU-ETHERNET baseline on the
//       same topologies (the paper reports CMU-ETHERNET needs 37-181x more
//       messages).
//   5b: CDF of per-host join overhead (packets).
//   5c: CDF of join latency (ms) -- "typically on the order of the network
//       diameter", under 40 ms in the paper.
#include <iostream>

#include "baselines/cmu_ethernet.hpp"
#include "bench_common.hpp"
#include "rofl/network.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rofl {
namespace {

struct IspRun {
  std::string name;
  std::vector<std::pair<std::size_t, std::uint64_t>> cumulative;  // n, packets
  std::vector<std::pair<std::size_t, std::uint64_t>> cumulative_bytes;
  std::vector<std::pair<std::size_t, std::uint64_t>> cumulative_cmu;
  SampleSet per_join;
  SampleSet per_join_bytes;
  SampleSet latency_ms;
  double cmu_ratio = 0.0;
  std::uint32_t diameter = 0;
};

IspRun run_isp(graph::RocketfuelAs which, std::size_t max_ids) {
  Rng trng(bench::kSeed);
  const graph::IspTopology topo = graph::make_rocketfuel_like(which, trng);
  intra::Network net(&topo, intra::Config{}, bench::kSeed + 1);
  baselines::CmuEthernet cmu(&topo);

  IspRun run;
  run.name = topo.name;
  run.diameter = topo.graph.diameter_hops(64);

  std::uint64_t total = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_cmu = 0;
  std::size_t next_report = 1;
  for (std::size_t n = 1; n <= max_ids; ++n) {
    const auto gw =
        static_cast<graph::NodeIndex>(net.rng().index(net.router_count()));
    const Identity ident = Identity::generate(net.rng());
    const std::uint64_t bytes_before =
        net.simulator().counters().bytes(sim::MsgCategory::kJoin);
    const intra::JoinStats js = net.join_host(ident, gw);
    if (!js.ok) continue;
    const std::uint64_t join_bytes =
        net.simulator().counters().bytes(sim::MsgCategory::kJoin) -
        bytes_before;
    total += js.messages;
    total_bytes += join_bytes;
    run.per_join.add(static_cast<double>(js.messages));
    run.per_join_bytes.add(static_cast<double>(join_bytes));
    run.latency_ms.add(js.latency_ms);
    const auto cj = cmu.join_host(Identity::generate(net.rng()).id(), gw);
    total_cmu += cj.messages;
    if (n == next_report || n == max_ids) {
      run.cumulative.emplace_back(n, total);
      run.cumulative_bytes.emplace_back(n, total_bytes);
      run.cumulative_cmu.emplace_back(n, total_cmu);
      next_report *= 10;
    }
  }
  run.cmu_ratio =
      total > 0 ? static_cast<double>(total_cmu) / static_cast<double>(total)
                : 0.0;
  return run;
}

}  // namespace
}  // namespace rofl

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  const std::size_t max_ids = bench::full_scale() ? 30'000 : 5'000;

  std::vector<IspRun> runs;
  for (const auto which : graph::all_rocketfuel_ases()) {
    runs.push_back(run_isp(which, max_ids));
  }

  print_banner(std::cout, "Figure 5a: cumulative join overhead vs IDs joined");
  {
    Table t({"ISP", "IDs", "ROFL packets", "ROFL bytes", "CMU-ETHERNET packets"});
    for (const auto& run : runs) {
      for (std::size_t i = 0; i < run.cumulative.size(); ++i) {
        t.add_row({run.name,
                   static_cast<std::int64_t>(run.cumulative[i].first),
                   static_cast<std::int64_t>(run.cumulative[i].second),
                   static_cast<std::int64_t>(run.cumulative_bytes[i].second),
                   static_cast<std::int64_t>(run.cumulative_cmu[i].second)});
      }
    }
    t.print(std::cout);
  }
  std::cout << "\nPaper reference: both scale linearly in IDs; CMU-ETHERNET "
               "needs 37-181x more messages.\nMeasured ratios:";
  for (const auto& run : runs) {
    std::cout << "  " << run.name << "=" << static_cast<int>(run.cmu_ratio)
              << "x";
  }
  std::cout << "\n";

  print_banner(std::cout, "Figure 5b: CDF of per-join overhead [packets]");
  {
    Table t({"ISP", "p10", "p50", "p90", "p99", "mean", "4*diameter"});
    for (const auto& run : runs) {
      t.add_row({run.name, run.per_join.percentile(0.10),
                 run.per_join.percentile(0.50), run.per_join.percentile(0.90),
                 run.per_join.percentile(0.99), run.per_join.mean(),
                 static_cast<std::int64_t>(4 * run.diameter)});
    }
    t.print(std::cout);
    std::cout << "Paper reference: join overhead is roughly four messages "
                 "times the network diameter; <45 packets per join.\n";
  }

  print_banner(std::cout, "Figure 5b': CDF of per-join overhead [wire bytes]");
  {
    Table t({"ISP", "p10", "p50", "p90", "p99", "mean"});
    for (const auto& run : runs) {
      t.add_row({run.name, run.per_join_bytes.percentile(0.10),
                 run.per_join_bytes.percentile(0.50),
                 run.per_join_bytes.percentile(0.90),
                 run.per_join_bytes.percentile(0.99),
                 run.per_join_bytes.mean()});
    }
    t.print(std::cout);
    std::cout << "Bytes are encoder-sized wire frames (54-byte control "
                 "framing + typed payload, CRC-32 included).\n";
  }

  print_banner(std::cout, "Figure 5c: CDF of join latency [ms]");
  {
    Table t({"ISP", "p10", "p50", "p90", "p99", "mean"});
    for (const auto& run : runs) {
      t.add_row({run.name, run.latency_ms.percentile(0.10),
                 run.latency_ms.percentile(0.50),
                 run.latency_ms.percentile(0.90),
                 run.latency_ms.percentile(0.99), run.latency_ms.mean()});
    }
    t.print(std::cout);
    std::cout << "Paper reference: joins typically complete in <40 ms, on "
                 "the order of the network diameter.\n";
  }
  return 0;
}
