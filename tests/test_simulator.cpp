#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rofl::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_in(5.0, [&] { order.push_back(2); });
  s.schedule_in(1.0, [&] { order.push_back(1); });
  s.schedule_in(9.0, [&] { order.push_back(3); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now_ms(), 9.0);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_in(1.0, [&] { order.push_back(1); });
  s.schedule_in(1.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int fired = 0;
  s.schedule_in(1.0, [&] {
    ++fired;
    s.schedule_in(1.0, [&] { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now_ms(), 2.0);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule_in(1.0, [&] { ++fired; });
  s.schedule_in(10.0, [&] { ++fired; });
  EXPECT_EQ(s.run_until(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now_ms(), 5.0);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
}

TEST(Simulator, MaxEventsBoundsRun) {
  Simulator s;
  // Self-perpetuating event chain.
  std::function<void()> loop = [&] { s.schedule_in(1.0, loop); };
  s.schedule_in(0.0, loop);
  EXPECT_EQ(s.run(100), 100u);
}

TEST(Counters, PerCategoryAccounting) {
  Counters c;
  c.add(MsgCategory::kJoin, 3);
  c.add(MsgCategory::kData);
  EXPECT_EQ(c.get(MsgCategory::kJoin), 3u);
  EXPECT_EQ(c.get(MsgCategory::kData), 1u);
  EXPECT_EQ(c.get(MsgCategory::kTeardown), 0u);
  EXPECT_EQ(c.total(), 4u);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(Counters, CategoryNames) {
  EXPECT_EQ(to_string(MsgCategory::kJoin), "join");
  EXPECT_EQ(to_string(MsgCategory::kRepair), "repair");
}

}  // namespace
}  // namespace rofl::sim
