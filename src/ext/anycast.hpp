// anycast.hpp -- anycast over ROFL (section 5.2).
//
// "Anycast is an extension of ROFL's multihoming design.  Servers belonging
// to group G join with ID (G, x).  A host may then route to (G, y), where y
// is set arbitrarily.  Intermediate routers forward the packet towards G,
// treating all suffixes equally.  This results in the packet reaching the
// first server in G for which the packet encounters a route."
//
// Join-side: each server registers (G, x_k) through the normal join path
// (Network::join_group_id) after proving it holds the group key.  Data-side:
// anycast_route() runs Algorithm-2 greedy forwarding toward the top of G's
// suffix range, but delivers at the first router that knows any route to a
// member of G -- no state or message overhead beyond joining (the property
// the paper highlights).
#pragma once

#include <optional>
#include <vector>

#include "ext/group_id.hpp"
#include "rofl/network.hpp"

namespace rofl::ext {

/// Registers a server for group `g` at `gateway`.  `suffix` distinguishes
/// members; load-balancing policies pick suffixes (and group size) as in i3.
/// Membership is authenticated with the group key before joining.
intra::JoinStats anycast_join(intra::Network& net, const GroupId& g,
                              std::uint32_t suffix,
                              graph::NodeIndex gateway);

struct AnycastResult {
  bool delivered = false;
  NodeId member;                      // the member ID that absorbed the packet
  std::uint32_t physical_hops = 0;
  std::vector<graph::NodeIndex> path;  // routers traversed (incl. endpoints)
};

/// Routes an anycast packet from `src` toward group `g`.  `preferred_suffix`
/// biases the greedy walk ((G, r) with caller-chosen r).
///
/// With `absorb_en_route` (the paper's default rule) delivery happens at the
/// first router hosting any member of G the packet touches -- cheap, but a
/// topologically central replica absorbs disproportionate traffic.  With it
/// off, the packet continues to the member that *owns* the chosen suffix
/// (the ring predecessor of (G, r)), which is the i3-style behavior the
/// weighted load balancer relies on.
AnycastResult anycast_route(intra::Network& net, graph::NodeIndex src,
                            const GroupId& g,
                            std::optional<std::uint32_t> preferred_suffix =
                                std::nullopt,
                            bool absorb_en_route = true);

}  // namespace rofl::ext
