// fig_net -- live-mesh throughput and join-storm convergence (BENCH_net.json).
//
// Everything else in bench/ measures the simulator; this bench measures the
// real-packet path (DESIGN.md section 16): LiveRouter event loops exchanging
// wire frames through the transport pump, over the in-process loopback hub
// and over actual localhost UDP sockets.  Cells:
//
//   loopback/256f   deterministic parity cell -- every JoinRequest must cost
//                   exactly the section 6.3 figure (1638 bytes) on the wire;
//   udp/clean       an 8-router mesh on real sockets, no impairment:
//                   sustained pps per router, join latency percentiles, and
//                   200 data-plane lookups served over the converged mesh
//                   (per-lookup latency percentiles; every probe must hit);
//   udp/impaired    the same mesh under 2% loss + 1% duplication, showing
//                   the retry/dedup machinery converging anyway;
//   udp/storm       (ROFL_BENCH_FULL=1 only) the acceptance-scale cell: a
//                   100-router mesh converging a 10k-host join storm.
//
// Gates deciding the exit code: every cell converges with a clean ring
// audit, and the loopback cell's byte accounting is exact.
//
// Output: a console table plus BENCH_net.json (override the path with
// ROFL_NET_JSON; empty string suppresses emission).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "net/mesh.hpp"
#include "util/table.hpp"
#include "wire/messages.hpp"

namespace rofl {
namespace {

struct NetCell {
  std::string name;
  net::MeshConfig cfg;
  bool converged = false;
  bool clean = false;
  std::uint64_t joins = 0;
  double elapsed_ms = 0.0;
  double pps_per_router = 0.0;
  double lat_p50 = 0.0;
  double lat_p99 = 0.0;
  std::uint64_t lookups = 0;
  std::uint64_t lookup_hits = 0;
  double lookup_p50 = 0.0;
  double lookup_p99 = 0.0;
  double bytes_per_join = 0.0;
  std::uint64_t retrans = 0;
  std::uint64_t dropped = 0;   // impairment-layer drops
  bool parity_applies = false;
  bool parity_exact = false;
  long rss_kb = 0;
};

NetCell run_cell(std::string name, const net::MeshConfig& cfg) {
  NetCell cell;
  cell.name = std::move(name);
  cell.cfg = cfg;

  net::MeshResult r = net::run_mesh(cfg);
  obs::Registry& m = r.metrics;
  const auto counter = [&m](const char* n) {
    return m.counter_value(m.counter(n));
  };
  cell.converged = r.converged;
  cell.clean = r.audit.ok();
  cell.joins = r.joins_completed;
  cell.elapsed_ms = r.elapsed_ms;
  const double secs = r.elapsed_ms / 1000.0;
  const std::uint64_t tx = counter("net.tx.frames");
  cell.pps_per_router =
      secs > 0.0 ? static_cast<double>(tx) / secs / cfg.routers : 0.0;
  const obs::Histogram& lat = m.histogram_at(m.histogram(
      "net.join.latency_ms", obs::Histogram::exponential_bounds(1.0, 2.0, 16)));
  cell.lat_p50 = lat.percentile(0.5);
  cell.lat_p99 = lat.percentile(0.99);
  if (cfg.lookups > 0) {
    cell.lookups = r.lookups_completed;
    cell.lookup_hits = r.lookups_hit;
    const obs::Histogram& llat = m.histogram_at(
        m.histogram("net.lookup.latency_ms",
                    obs::Histogram::exponential_bounds(0.25, 2.0, 16)));
    cell.lookup_p50 = llat.percentile(0.5);
    cell.lookup_p99 = llat.percentile(0.99);
  }
  cell.bytes_per_join =
      r.joins_completed > 0
          ? static_cast<double>(counter("net.tx.bytes")) /
                static_cast<double>(r.joins_completed)
          : 0.0;
  cell.retrans = counter("net.retrans");
  cell.dropped = counter("faults.dropped");
  cell.rss_kb = bench::peak_rss_kb();

  // Section 6.3 parity: only meaningful where nothing resends or vanishes.
  cell.parity_applies = cfg.fingers == 256 && cfg.conditions.loss == 0.0 &&
                        cfg.conditions.duplicate == 0.0 &&
                        cfg.conditions.corrupt == 0.0 &&
                        cfg.backend == net::MeshBackend::kLoopback;
  if (cell.parity_applies) {
    wire::msg::JoinRequest jr;
    jr.fingers.resize(256);
    const std::uint64_t expect = wire::msg::control_wire_size(jr);
    const std::uint64_t msgs = counter("net.msgs.join_request");
    const std::uint64_t bytes = counter("net.bytes.join_request");
    cell.parity_exact = msgs > 0 && bytes == msgs * expect;
  }
  if (!cell.converged || !cell.clean) {
    std::cerr << cell.name << ": converged=" << cell.converged
              << " audit_errors=" << r.audit.error_count << "\n";
    for (const std::string& e : r.audit.errors) std::cerr << "  " << e << "\n";
  }
  return cell;
}

void write_json(const std::vector<NetCell>& cells, double total_wall) {
  std::string path = "BENCH_net.json";
  if (const char* env = std::getenv("ROFL_NET_JSON")) path = env;
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "fig_net: cannot open " << path << "\n";
    return;
  }
  out << "{\n  \"schema\": \"rofl-bench-net-v1\",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    out << "    {\"name\": \"" << c.name << "\", \"backend\": \""
        << (c.cfg.backend == net::MeshBackend::kLoopback ? "loopback" : "udp")
        << "\", \"routers\": " << c.cfg.routers
        << ", \"hosts\": " << c.cfg.hosts
        << ", \"fingers\": " << c.cfg.fingers
        << ", \"loss\": " << c.cfg.conditions.loss
        << ", \"dup\": " << c.cfg.conditions.duplicate
        << ", \"converged\": " << (c.converged ? "true" : "false")
        << ", \"audit_clean\": " << (c.clean ? "true" : "false")
        << ", \"joins\": " << c.joins
        << ", \"elapsed_ms\": " << c.elapsed_ms
        << ", \"pps_per_router\": " << c.pps_per_router
        << ", \"join_latency_p50_ms\": " << c.lat_p50
        << ", \"join_latency_p99_ms\": " << c.lat_p99
        << ", \"bytes_per_join\": " << c.bytes_per_join
        << ", \"lookups\": " << c.lookups
        << ", \"lookup_hits\": " << c.lookup_hits
        << ", \"lookup_latency_p50_ms\": " << c.lookup_p50
        << ", \"lookup_latency_p99_ms\": " << c.lookup_p99
        << ", \"retransmissions\": " << c.retrans
        << ", \"impairment_drops\": " << c.dropped
        << ", \"peak_rss_kb\": " << c.rss_kb;
    if (c.parity_applies) {
      out << ", \"byte_parity_63\": " << (c.parity_exact ? "true" : "false");
    }
    out << "}" << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"run\": " << bench::run_info_json(total_wall) << "\n}\n";
  std::cout << "JSON written to " << path << "\n";
}

}  // namespace
}  // namespace rofl

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  print_banner(std::cout,
               "Live mesh: sustained pps/router and join-storm convergence");

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<NetCell> cells;

  {
    net::MeshConfig cfg;
    cfg.backend = net::MeshBackend::kLoopback;
    cfg.routers = 4;
    cfg.hosts = 600;
    cfg.fingers = 256;
    cfg.seed = bench::kSeed;
    cells.push_back(run_cell("loopback/256f", cfg));
  }
  {
    net::MeshConfig cfg;
    cfg.backend = net::MeshBackend::kUdp;
    cfg.routers = 8;
    cfg.hosts = 1500;
    cfg.fingers = 8;
    cfg.seed = bench::kSeed;
    cfg.deadline_ms = 120'000.0;
    cfg.lookups = 200;  // data-plane probes served over the converged mesh
    cells.push_back(run_cell("udp/clean", cfg));
  }
  {
    net::MeshConfig cfg;
    cfg.backend = net::MeshBackend::kUdp;
    cfg.routers = 8;
    cfg.hosts = 800;
    cfg.fingers = 8;
    cfg.seed = bench::kSeed;
    cfg.conditions.loss = 0.02;
    cfg.conditions.duplicate = 0.01;
    cfg.deadline_ms = 120'000.0;
    cells.push_back(run_cell("udp/impaired", cfg));
  }
  if (bench::full_scale()) {
    net::MeshConfig cfg;
    cfg.backend = net::MeshBackend::kUdp;
    cfg.routers = 100;
    cfg.hosts = 10'000;
    cfg.fingers = 8;
    cfg.seed = bench::kSeed;
    cfg.deadline_ms = 300'000.0;
    cfg.lookups = 1'000;
    cells.push_back(run_cell("udp/storm", cfg));
  }

  Table t({"cell", "routers", "hosts", "conv", "audit", "elapsed ms",
           "pps/router", "p50 ms", "p99 ms", "bytes/join", "lkup p99 ms"});
  for (const auto& c : cells) {
    t.add_row({c.name, static_cast<std::int64_t>(c.cfg.routers),
               static_cast<std::int64_t>(c.cfg.hosts),
               std::string(c.converged ? "yes" : "NO"),
               std::string(c.clean ? "clean" : "DEFECTS"), c.elapsed_ms,
               c.pps_per_router, c.lat_p50, c.lat_p99, c.bytes_per_join,
               c.lookup_p99});
  }
  t.print(std::cout);

  bool ok = true;
  for (const auto& c : cells) {
    ok = ok && c.converged && c.clean;
    if (c.cfg.lookups > 0) {
      ok = ok && c.lookups == c.cfg.lookups && c.lookup_hits == c.lookups;
    }
    if (c.parity_applies) {
      std::cout << "byte parity (6.3) on " << c.name << ": "
                << (c.parity_exact ? "exact" : "MISMATCH") << "\n";
      ok = ok && c.parity_exact;
    }
  }
  const double total_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  write_json(cells, total_wall);
  std::cout << (ok ? "\nall cells converged, audits clean\n"
                   : "\nFAILURE: see cells above\n");
  return ok ? 0 : 1;
}
