// buffer.hpp -- bounds-checked byte-order-safe serialization primitives.
//
// The wire module gives ROFL concrete packet formats (headers the paper
// reasons about when it counts join-message bytes against the MTU, section
// 6.3).  Writers append big-endian fields to a growable buffer; readers
// consume them with explicit failure on truncation -- no exceptions, no
// undefined behavior on malformed input.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace rofl::wire {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    for (int i = 3; i >= 0; --i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 7; i >= 0; --i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  /// Length-prefixed (u16) byte string.  A field longer than 0xFFFF cannot
  /// be represented: nothing is written, the writer is marked failed, and
  /// false is returned -- a silently truncated (i.e. corrupted) field can
  /// never reach the wire.
  [[nodiscard]] bool lp_bytes(std::span<const std::uint8_t> data) {
    if (data.size() > 0xFFFF) {
      failed_ = true;
      return false;
    }
    u16(static_cast<std::uint16_t>(data.size()));
    bytes(data);
    return true;
  }

  /// False once any write was refused; the buffer contents are then
  /// incomplete and must not be transmitted.
  [[nodiscard]] bool ok() const { return !failed_; }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
  bool failed_ = false;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> u8() {
    if (pos_ + 1 > data_.size()) return std::nullopt;
    return data_[pos_++];
  }
  [[nodiscard]] std::optional<std::uint16_t> u16() {
    if (pos_ + 2 > data_.size()) return std::nullopt;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v = static_cast<std::uint16_t>((v << 8) | data_[pos_++]);
    return v;
  }
  [[nodiscard]] std::optional<std::uint32_t> u32() {
    if (pos_ + 4 > data_.size()) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_++];
    return v;
  }
  [[nodiscard]] std::optional<std::uint64_t> u64() {
    if (pos_ + 8 > data_.size()) return std::nullopt;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_++];
    return v;
  }
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> bytes(
      std::size_t n) {
    if (pos_ + n > data_.size()) return std::nullopt;
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> lp_bytes() {
    const auto n = u16();
    if (!n.has_value()) return std::nullopt;
    return bytes(*n);
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace rofl::wire
