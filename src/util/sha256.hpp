// sha256.hpp -- from-scratch SHA-256 (FIPS 180-4).
//
// ROFL identifiers are self-certifying: an endpoint's ID is a hash of its
// public key (section 2.1).  We implement SHA-256 ourselves so the library
// has no external crypto dependency; identity.hpp builds keypairs and IDs on
// top of this digest.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace rofl {

class Sha256 {
 public:
  using Digest = std::array<std::uint8_t, 32>;

  Sha256();

  /// Absorbs `data` into the hash state.  May be called repeatedly.
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);

  /// Finalises and returns the digest.  The object must not be reused
  /// afterwards without calling reset().
  [[nodiscard]] Digest finish();

  void reset();

  /// One-shot helpers.
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data);
  [[nodiscard]] static Digest hash(std::string_view data);

  /// Lowercase hex rendering of a digest.
  [[nodiscard]] static std::string to_hex(const Digest& d);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace rofl
