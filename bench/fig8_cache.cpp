// fig8_cache -- regenerates Figure 8c: interdomain stretch as a function of
// per-AS pointer-cache size, plus the bloom-peering data point.
//
// Paper reference: caching at border routers cuts stretch from ~2 to 1.33
// at an average of 20M entries per AS (the x-axis is cache memory per AS);
// the bloom-filter peering option lands at stretch 3.29 with 18 Mbit
// filters, improvable to ~2.5 with bigger filters or more fingers.
#include <iostream>

#include "bench_common.hpp"
#include "interdomain/inter_network.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rofl {
namespace {

struct CacheResult {
  double stretch = 0.0;
  double cache_mbits_per_as = 0.0;
  double bloom_mbits_per_as = 0.0;
};

CacheResult run_cache(const graph::AsTopology& topo,
                      std::size_t cache_entries_per_as,
                      inter::PeeringMode mode, std::size_t ids,
                      std::size_t packets,
                      std::size_t bloom_bits = 1u << 18) {
  inter::InterConfig cfg;
  cfg.cache_capacity_per_as = cache_entries_per_as;
  cfg.peering_mode = mode;
  cfg.bloom_bits = bloom_bits;
  cfg.fingers_per_id = 16;  // modest finger table, as the caching runs use
  inter::InterNetwork net(&topo, cfg, bench::kSeed + 17);
  for (std::size_t i = 0; i < ids; ++i) {
    (void)net.join_random_host(inter::JoinStrategy::kRecursiveMultihomed);
  }
  std::vector<NodeId> joined;
  for (const auto& [id, home] : net.directory()) joined.push_back(id);

  // Zipf-skewed destination popularity: caches shine on reference locality
  // (section 4.1, "Exploiting reference locality").
  const ZipfSampler popularity(joined.size(), 0.9);
  // Warm pass fills the caches; measured pass reports stretch.
  SampleSet stretch;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < packets; ++i) {
      const NodeId dest = joined[popularity.sample(net.rng())];
      const NodeId src_id = joined[net.rng().index(joined.size())];
      const auto src = net.home_of(src_id);
      if (!src.has_value() || net.home_of(dest) == *src) continue;
      const auto rs = net.route(*src, dest);
      if (pass == 1 && rs.delivered && rs.bgp_hops > 0) {
        stretch.add(rs.stretch());
      }
    }
  }
  CacheResult res;
  res.stretch = stretch.empty() ? 0.0 : stretch.mean();
  // 160 bits per cache entry (ID + AS), matching mean_state accounting.
  res.cache_mbits_per_as =
      static_cast<double>(cache_entries_per_as) * 160.0 / 1e6;
  res.bloom_mbits_per_as = net.mean_bloom_bits_per_as() / 1e6;
  return res;
}

double measure_backtracks(const graph::AsTopology& topo, std::size_t bloom_bits,
                          std::size_t ids, std::size_t packets, double* stretch,
                          double* mbits) {
  inter::InterConfig cfg;
  cfg.peering_mode = inter::PeeringMode::kBloom;
  cfg.bloom_bits = bloom_bits;
  inter::InterNetwork net(&topo, cfg, bench::kSeed + 41);
  for (std::size_t i = 0; i < ids; ++i) {
    (void)net.join_random_host(inter::JoinStrategy::kRecursiveMultihomed);
  }
  std::vector<NodeId> joined;
  for (const auto& [id, home] : net.directory()) joined.push_back(id);
  SampleSet st;
  std::uint64_t backtracks = 0;
  std::size_t routed = 0;
  for (std::size_t i = 0; i < packets; ++i) {
    const NodeId dest = joined[net.rng().index(joined.size())];
    const auto src = net.home_of(joined[net.rng().index(joined.size())]);
    if (!src.has_value() || net.home_of(dest) == *src) continue;
    const auto rs = net.route(*src, dest);
    if (!rs.delivered) continue;
    ++routed;
    backtracks += rs.backtracks;
    if (rs.bgp_hops > 0) st.add(rs.stretch());
  }
  *stretch = st.empty() ? 0.0 : st.mean();
  *mbits = net.mean_bloom_bits_per_as() / 1e6;
  return routed > 0 ? static_cast<double>(backtracks) /
                          static_cast<double>(routed)
                    : 0.0;
}

}  // namespace
}  // namespace rofl

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  const std::size_t ids = bench::full_scale() ? 6'000 : 1'500;
  const std::size_t packets = bench::full_scale() ? 4'000 : 1'200;

  Rng trng(bench::kSeed);
  const graph::AsTopology topo = bench::make_inter_topology(trng);

  print_banner(std::cout,
               "Figure 8c: stretch vs per-AS pointer-cache size");
  Table t({"cache entries/AS", "cache Mbit/AS", "mean stretch"});
  for (const std::size_t cap : {0u, 16u, 128u, 1024u, 8192u}) {
    const CacheResult r = run_cache(topo, cap, inter::PeeringMode::kVirtualAs,
                                    ids, packets);
    t.add_row({static_cast<std::int64_t>(cap), r.cache_mbits_per_as,
               r.stretch});
  }
  t.print(std::cout);

  print_banner(std::cout,
               "Bloom-filter peering: filter size vs stretch (false "
               "positives force backtracking)");
  {
    Table b({"bloom bits/filter", "bloom Mbit/AS", "backtracks/pkt",
             "mean stretch"});
    for (const std::size_t bits : {1u << 18, 1u << 12, 1u << 9, 1u << 7}) {
      double stretch = 0.0;
      double mbits = 0.0;
      const double bt = measure_backtracks(topo, bits, ids, packets / 2,
                                           &stretch, &mbits);
      b.add_row({static_cast<std::int64_t>(bits), mbits, bt, stretch});
    }
    b.print(std::cout);
  }
  std::cout << "\nPaper reference: pointer caches cut stretch from ~2 toward "
               "1.33 as per-AS cache memory grows; bloom peering trades "
               "stretch for join cost -- 3.29 at 18 Mbit/AS filters "
               "(600M hosts, i.e. a meaningful false-positive rate), "
               "improving with larger filters or more fingers.  The "
               "backtracks column shows the same mechanism here: shrinking "
               "the filters raises false positives and stretch.\n";
  return 0;
}
