#include "sim/profiler.hpp"

#include <ostream>
#include <sstream>

#include "util/table.hpp"

namespace rofl::sim {

std::string EngineProfiler::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream os;
  os << "{\n" << pad << "  \"shards\": [\n";
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardProfile& p = shards_[s];
    os << pad << "    {\"shard\": " << s << ", \"busy_s\": " << p.busy_s
       << ", \"stall_s\": " << p.stall_s << ", \"idle_s\": " << p.idle_s
       << ", \"busy_frac\": " << p.busy_frac()
       << ", \"stall_frac\": " << p.stall_frac()
       << ", \"idle_frac\": " << p.idle_frac()
       << ", \"events\": " << p.events << ", \"spsc_hwm\": " << p.spsc_hwm
       << ", \"kinds\": [";
    bool first = true;
    for (std::size_t k = 0; k < p.kinds.size(); ++k) {
      if (p.kinds[k].events == 0) continue;
      os << (first ? "" : ", ") << "{\"kind\": \"";
      if (k < kind_names_.size() && !kind_names_[k].empty()) {
        os << kind_names_[k];
      } else {
        os << k;
      }
      os << "\", \"events\": " << p.kinds[k].events
         << ", \"busy_s\": " << p.kinds[k].busy_s << "}";
      first = false;
    }
    os << "]}" << (s + 1 < shards_.size() ? ",\n" : "\n");
  }
  os << pad << "  ]\n" << pad << "}";
  return os.str();
}

void EngineProfiler::print_table(std::ostream& os) const {
  Table t({"shard", "busy%", "stall%", "idle%", "events", "spsc hwm",
           "top kind"});
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardProfile& p = shards_[s];
    std::size_t top = p.kinds.size();
    for (std::size_t k = 0; k < p.kinds.size(); ++k) {
      if (top == p.kinds.size() || p.kinds[k].busy_s > p.kinds[top].busy_s) {
        top = k;
      }
    }
    std::string top_name = "-";
    if (top < p.kinds.size() && p.kinds[top].events > 0) {
      top_name = top < kind_names_.size() && !kind_names_[top].empty()
                     ? kind_names_[top]
                     : std::to_string(top);
    }
    t.add_row({static_cast<std::int64_t>(s), p.busy_frac() * 100.0,
               p.stall_frac() * 100.0, p.idle_frac() * 100.0,
               static_cast<std::int64_t>(p.events),
               static_cast<std::int64_t>(p.spsc_hwm), top_name});
  }
  t.print(os);
}

}  // namespace rofl::sim
