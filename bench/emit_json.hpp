// emit_json.hpp -- a drop-in benchmark reporter that, in addition to the
// normal console table, accumulates every iteration-level run and writes a
// compact JSON summary for scripts/bench_trajectory.py.
//
// The file (default BENCH_datapath.json next to the working directory,
// overridable via the ROFL_BENCH_JSON environment variable; set it to the
// empty string to suppress emission) maps each benchmark name to its
// per-iteration real time in nanoseconds:
//
//   {
//     "schema": "rofl-bench-v1",
//     "benchmarks": {
//       "BM_VnBestMatch": {"ns_per_op": 41.2, "ops_per_sec": 2.4e7,
//                          "iterations": 16384000},
//       ...
//     },
//     "run": {"wall_seconds": ..., "peak_rss_kb": ..., "hw_threads": ...},
//     "metrics": { ... }   // optional obs::Registry snapshot (see below)
//   }
//
// A bench binary may pass run_with_json a snapshot callback; whatever JSON
// object it returns (typically obs::Registry::to_json) is embedded under
// "metrics", so every BENCH_*.json carries the protocol counters of the run
// that produced it alongside the timings.
//
// Aggregate rows (mean/median/stddev from --benchmark_repetitions) and
// errored runs are skipped so the trajectory comparison always sees one
// representative number per benchmark instance.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"

namespace rofl::bench {

class JsonTrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  bool ReportContext(const Context& context) override {
    return benchmark::ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& report) override {
    benchmark::ConsoleReporter::ReportRuns(report);
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double ns = run.GetAdjustedRealTime() *
                        to_nanoseconds_factor(run.time_unit);
      results_.emplace_back(run.benchmark_name(),
                            Entry{ns, static_cast<double>(run.iterations)});
    }
  }

  /// Writes the accumulated results.  `metrics_json`, when non-empty, must
  /// be a JSON object and is embedded verbatim under "metrics".  Returns the
  /// path written, or an empty string when emission was suppressed or the
  /// file could not be opened.
  std::string write_json(const std::string& default_path,
                         const std::string& metrics_json = {}) const {
    std::string path = default_path;
    if (const char* env = std::getenv("ROFL_BENCH_JSON")) path = env;
    if (path.empty()) return {};
    std::ofstream out(path);
    if (!out) {
      std::cerr << "emit_json: cannot open " << path << "\n";
      return {};
    }
    out << "{\n  \"schema\": \"rofl-bench-v1\",\n  \"benchmarks\": {\n";
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const Entry& e = results_[i].second;
      out << "    \"" << escape(results_[i].first)
          << "\": {\"ns_per_op\": " << e.ns_per_op << ", \"ops_per_sec\": "
          << (e.ns_per_op > 0.0 ? 1e9 / e.ns_per_op : 0.0)
          << ", \"iterations\": " << e.iterations << "}";
      out << (i + 1 < results_.size() ? ",\n" : "\n");
    }
    out << "  },\n  \"run\": "
        << run_info_json(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count());
    if (!metrics_json.empty()) out << ",\n  \"metrics\": " << metrics_json;
    out << "\n}\n";
    return path;
  }

 private:
  struct Entry {
    double ns_per_op = 0.0;
    double iterations = 0.0;
  };

  static double to_nanoseconds_factor(benchmark::TimeUnit unit) {
    switch (unit) {
      case benchmark::kNanosecond:
        return 1.0;
      case benchmark::kMicrosecond:
        return 1e3;
      case benchmark::kMillisecond:
        return 1e6;
      case benchmark::kSecond:
        return 1e9;
    }
    return 1.0;
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::vector<std::pair<std::string, Entry>> results_;
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
};

/// The custom main body shared by bench binaries that emit trajectories:
/// run everything through a JsonTrajectoryReporter and drop the JSON file.
/// `metrics_snapshot`, when set, runs after the benchmarks and its JSON
/// object lands under "metrics" (e.g. the fixture registry's to_json).
inline int run_with_json(int argc, char** argv, const std::string& default_path,
                         const std::function<std::string()>& metrics_snapshot =
                             {}) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const std::string written = reporter.write_json(
      default_path, metrics_snapshot ? metrics_snapshot() : std::string{});
  if (!written.empty()) {
    std::cout << "JSON trajectory written to " << written << "\n";
  }
  return 0;
}

}  // namespace rofl::bench
