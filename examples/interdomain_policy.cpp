// interdomain_policy -- Internet-scale ROFL with BGP-like policies.
//
// Builds a small Internet (tiered AS graph with customer/provider, peering,
// multihoming and backup relationships), merges the per-AS rings Canon-style
// (section 4), and demonstrates:
//   * policy-compliant greedy routing with AS-level source routes,
//   * the isolation property (regional traffic stays regional),
//   * multihoming failover when a primary access link dies,
//   * endpoint path negotiation (section 5.1).
//
//   $ ./build/examples/interdomain_policy
#include <iostream>

#include "ext/traffic_control.hpp"
#include "interdomain/inter_network.hpp"

int main() {
  using namespace rofl;
  using graph::AsRel;

  // A hand-drawn Internet:
  //        T1a ~~~~~ T1b          (tier-1 peering clique)
  //       /   \        \ .
  //   mid1     mid2     mid3      (regional transits)
  //    / \      |        |  \ .
  //  stubA stubB stubC  stubD stubE
  // stubB is multihomed (mid1 primary, mid2 backup).
  enum : graph::AsIndex {
    T1a, T1b, mid1, mid2, mid3, stubA, stubB, stubC, stubD, stubE, kCount
  };
  auto topo = graph::AsTopology::from_links(
      kCount, {{mid1, T1a, AsRel::kProvider},
               {mid2, T1a, AsRel::kProvider},
               {mid3, T1b, AsRel::kProvider},
               {stubA, mid1, AsRel::kProvider},
               {stubB, mid1, AsRel::kProvider},
               {stubB, mid2, AsRel::kProvider},  // multihomed
               {stubC, mid2, AsRel::kProvider},
               {stubD, mid3, AsRel::kProvider},
               {stubE, mid3, AsRel::kProvider},
               {T1a, T1b, AsRel::kPeer}});
  for (graph::AsIndex a : {stubA, stubB, stubC, stubD, stubE}) {
    topo.set_host_count(a, 1000);
  }

  inter::InterConfig cfg;
  cfg.fingers_per_id = 32;
  inter::InterNetwork net(&topo, cfg, /*seed=*/2006);

  // Populate each stub; recursively multihomed joins merge every ring up
  // the hierarchy (Algorithm 3).
  std::vector<NodeId> ids;
  for (graph::AsIndex stub : {stubA, stubB, stubC, stubD, stubE}) {
    for (int i = 0; i < 8; ++i) {
      Identity ident = Identity::generate(net.rng());
      if (net.join_host(ident, stub,
                        inter::JoinStrategy::kRecursiveMultihomed)
              .ok) {
        ids.push_back(ident.id());
      }
    }
  }
  std::string err;
  std::cout << "per-level rings verified: "
            << (net.verify_rings(&err) ? "yes" : err) << "\n";

  // Regional traffic stays regional: stubA -> stubB shares mid1, so the
  // trace must never climb to a tier-1.
  for (const NodeId& id : ids) {
    if (net.home_of(id) != stubB) continue;
    std::vector<graph::AsIndex> trace;
    const auto rs = net.route(stubA, id, &trace);
    std::cout << "stubA -> stubB host: "
              << (rs.delivered ? "delivered" : "LOST") << ", " << rs.as_hops
              << " AS hops (BGP " << rs.bgp_hops << "), isolation "
              << (rs.isolation_held ? "held" : "VIOLATED") << ", path:";
    for (const auto a : trace) std::cout << " " << a;
    std::cout << "\n";
    break;
  }

  // Cross-core traffic uses the tier-1 peering.
  for (const NodeId& id : ids) {
    if (net.home_of(id) != stubD) continue;
    const auto rs = net.route(stubA, id);
    std::cout << "stubA -> stubD host (crosses T1a~T1b peering): "
              << (rs.delivered ? "delivered" : "LOST") << ", stretch "
              << rs.stretch() << "\n";
    break;
  }

  // Multihoming failover: cut stubB's primary access link; its identifiers
  // re-anchor over the surviving provider and stay reachable (section 2.3).
  std::cout << "\ncutting stubB's primary access link (mid1)...\n";
  (void)net.fail_link(stubB, mid1);
  std::size_t reachable = 0, total = 0;
  for (const NodeId& id : ids) {
    if (net.home_of(id) != stubB) continue;
    ++total;
    if (net.route(stubA, id).delivered) ++reachable;
  }
  std::cout << "stubB hosts reachable after failover: " << reachable << "/"
            << total << "\n";
  (void)net.restore_link(stubB, mid1);

  // Endpoint negotiation (section 5.1): the endpoints agree on the transit
  // set; here stubA and stubC negotiate their common up-hierarchy.
  const auto allowed = ext::negotiable_ases(net, stubA, stubC);
  std::cout << "\nnegotiable transit set for stubA<->stubC:";
  for (const auto a : allowed) std::cout << " " << a;
  std::cout << "\n";
  for (const NodeId& id : ids) {
    if (net.home_of(id) != stubC) continue;
    const auto r = ext::route_negotiated(net, stubA, id, allowed);
    std::cout << "negotiated route stubA -> stubC host: "
              << (r.stats.delivered ? "delivered" : "LOST") << ", compliant: "
              << (r.compliant ? "yes" : "no") << "\n";
    break;
  }
  return 0;
}
