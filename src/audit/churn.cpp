#include "audit/churn.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "graph/isp_topology.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/timeline.hpp"

namespace rofl::audit {

namespace {

/// First live router at or after pick (mod router count); kInvalidNode when
/// every router is dark.
graph::NodeIndex live_router(const intra::Network& net, std::uint64_t pick) {
  const std::size_t n = net.router_count();
  for (std::size_t attempt = 0; attempt < n; ++attempt) {
    const auto r = static_cast<graph::NodeIndex>((pick + attempt) % n);
    if (net.topology().graph.node_up(r)) return r;
  }
  return graph::kInvalidNode;
}

/// FNV-1a 64 over a route outcome's raw fields; trace_id is excluded so the
/// digest is identical whether or not a flight recorder is installed.
std::uint64_t fnv_route(std::uint64_t h, const intra::RouteStats& rs) {
  const auto mix = [&h](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001B3ull;
    }
  };
  const std::uint8_t delivered = rs.delivered ? 1 : 0;
  mix(&delivered, sizeof(delivered));
  mix(&rs.physical_hops, sizeof(rs.physical_hops));
  mix(&rs.ring_hops, sizeof(rs.ring_hops));
  mix(&rs.shortest_hops, sizeof(rs.shortest_hops));
  mix(&rs.latency_ms, sizeof(rs.latency_ms));
  return h;
}

std::string hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) out[i] = kDigits[v & 0xF];
  return out;
}

/// Registry snapshot with wall-clock histogram lines removed.
std::string scrubbed_metrics(sim::Simulator& sim) {
  std::istringstream in(sim.metrics().to_json(2));
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("recompute_ms") != std::string::npos) continue;
    out += line;
    out += "\n";
  }
  return out;
}

/// Mutable run state shared by the scheduled event closures.  Closures
/// capture {pointer, index} (16 bytes), well inside the simulator's inline
/// action buffer.
struct ChurnRunner {
  intra::Network* net = nullptr;
  const std::vector<ChurnEvent>* schedule = nullptr;
  ChurnRunResult* res = nullptr;
  std::vector<NodeId> roster;  // hosts joined by this run and still live
  std::uint64_t routes_fnv = 0xCBF29CE484222325ull;

  void exec(std::size_t i) {
    const ChurnEvent& e = (*schedule)[i];
    switch (e.op) {
      case ChurnOp::kJoinStable:
      case ChurnOp::kJoinEphemeral: {
        const graph::NodeIndex gw = live_router(*net, e.pick);
        if (gw == graph::kInvalidNode || !e.ident.has_value()) {
          ++res->joins_failed;
          return;
        }
        const auto cls = e.op == ChurnOp::kJoinEphemeral
                             ? intra::HostClass::kEphemeral
                             : intra::HostClass::kStable;
        if (net->join_host(*e.ident, gw, cls).ok) {
          roster.push_back(e.ident->id());
          ++res->joins;
        } else {
          ++res->joins_failed;
        }
        return;
      }
      case ChurnOp::kLeave: {
        if (roster.empty()) return;
        const std::size_t v = static_cast<std::size_t>(e.pick % roster.size());
        (void)net->leave_host(roster[v]);
        roster.erase(roster.begin() + static_cast<std::ptrdiff_t>(v));
        ++res->leaves;
        return;
      }
      case ChurnOp::kCrash: {
        if (roster.empty()) return;
        const std::size_t v = static_cast<std::size_t>(e.pick % roster.size());
        (void)net->fail_host(roster[v]);
        roster.erase(roster.begin() + static_cast<std::ptrdiff_t>(v));
        ++res->crashes;
        return;
      }
      case ChurnOp::kRoute: {
        if (roster.empty()) return;
        // Decorrelate the source pick from the destination pick without a
        // second stored draw.
        const graph::NodeIndex src =
            live_router(*net, e.pick * 0x9E3779B97F4A7C15ull + 1);
        if (src == graph::kInvalidNode) return;
        const NodeId dest = roster[static_cast<std::size_t>(
            e.pick % roster.size())];
        // Two packets per flow: the first greedy walk installs a label chain
        // when labels are enabled, the second is served off it.  Folding
        // both outcomes into the routes digest makes the labels-on/off
        // equivalence gate cover the label replay path, not just installs.
        for (int pkt = 0; pkt < 2; ++pkt) {
          ++res->routes;
          const intra::RouteStats rs = net->route(src, dest);
          if (rs.delivered) ++res->delivered;
          routes_fnv = fnv_route(routes_fnv, rs);
        }
        return;
      }
    }
  }
};

}  // namespace

std::string_view to_string(ChurnOp op) {
  switch (op) {
    case ChurnOp::kJoinStable: return "join";
    case ChurnOp::kJoinEphemeral: return "join-ephemeral";
    case ChurnOp::kLeave: return "leave";
    case ChurnOp::kCrash: return "crash";
    case ChurnOp::kRoute: return "route";
  }
  return "?";
}

std::vector<ChurnEvent> make_churn_schedule(const ChurnConfig& cfg,
                                            std::uint64_t seed) {
  Rng rng(seed * 7919 + 17);
  const std::uint64_t total_weight =
      std::uint64_t{cfg.join_weight} + cfg.join_ephemeral_weight +
      cfg.leave_weight + cfg.crash_weight + cfg.route_weight;
  std::vector<ChurnEvent> events;
  events.reserve(cfg.events);
  for (std::size_t i = 0; i < cfg.events; ++i) {
    ChurnEvent e;
    e.t_ms = cfg.start_ms + (cfg.end_ms - cfg.start_ms) * rng.uniform();
    std::uint64_t w = total_weight == 0 ? 0 : rng.below(total_weight);
    if (w < cfg.join_weight) {
      e.op = ChurnOp::kJoinStable;
    } else if ((w -= cfg.join_weight) < cfg.join_ephemeral_weight) {
      e.op = ChurnOp::kJoinEphemeral;
    } else if ((w -= cfg.join_ephemeral_weight) < cfg.leave_weight) {
      e.op = ChurnOp::kLeave;
    } else if ((w -= cfg.leave_weight) < cfg.crash_weight) {
      e.op = ChurnOp::kCrash;
    } else {
      e.op = ChurnOp::kRoute;
    }
    if (e.op == ChurnOp::kJoinStable || e.op == ChurnOp::kJoinEphemeral) {
      e.ident = Identity::generate(rng);
    }
    e.pick = rng.next_u64();
    events.push_back(std::move(e));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.t_ms < b.t_ms;
                   });
  return events;
}

ChurnRunResult run_churn(const ChurnRunParams& params,
                         const std::vector<ChurnEvent>& schedule) {
  ChurnRunResult res;

  Rng trng(params.seed);
  graph::IspParams ip;
  ip.name = "churn";
  ip.router_count = params.router_count;
  ip.pop_count = params.pop_count;
  const graph::IspTopology topo = graph::make_isp_topology(ip, trng);

  intra::Network net(&topo, params.net_cfg, params.seed + 1);
  obs::FlightRecorder recorder(1 << 14);
  net.set_flight_recorder(&recorder);

  std::optional<sim::FaultInjector> injector;
  if (params.use_faults) {
    injector.emplace(params.faults, params.seed ^ 0xF417C0DEull,
                     &net.simulator().metrics());
    net.set_fault_injector(&*injector);
    net.schedule_fault_plan(params.faults);
  }

  ChurnRunner runner;
  runner.net = &net;
  runner.schedule = &schedule;
  runner.res = &res;

  // Initial population from a stream independent of the event schedule.
  Rng irng(params.seed * 9 + 7);
  for (std::size_t i = 0; i < params.initial_hosts; ++i) {
    const Identity ident = Identity::generate(irng);
    const graph::NodeIndex gw = live_router(net, irng.next_u64());
    if (gw != graph::kInvalidNode && net.join_host(ident, gw).ok) {
      runner.roster.push_back(ident.id());
      ++res.joins;
    } else {
      ++res.joins_failed;
    }
  }

  // Timeline attaches after the initial population: the setup burst is the
  // baseline snapshot, so the windowed series show the churn phase alone.
  std::optional<obs::Timeline> timeline;
  if (params.timeline_window_ms > 0.0) {
    timeline.emplace(&net.simulator().metrics(),
                     obs::Timeline::Config{params.timeline_window_ms,
                                           params.timeline_capacity,
                                           {"recompute_ms"}});
    net.simulator().set_timeline(&*timeline);
  }

  // The run ends only after the last churn event AND every fault window.
  double last = 0.0;
  for (const ChurnEvent& e : schedule) last = std::max(last, e.t_ms);
  if (params.use_faults) {
    for (const sim::LinkFlap& f : params.faults.link_flaps) {
      last = std::max(last, f.up_at_ms);
    }
    for (const sim::CrashWindow& w : params.faults.crash_windows) {
      last = std::max(last, w.up_at_ms);
    }
  }
  const double horizon = last + params.settle_ms;

  for (std::size_t i = 0; i < schedule.size(); ++i) {
    ChurnRunner* r = &runner;
    net.simulator().schedule_at(schedule[i].t_ms, [r, i] { r->exec(i); });
  }

  Auditor auditor(&net);
  auditor.schedule_every(params.audit_interval_ms, horizon);

  net.simulator().run_until(horizon);

  // Snapshot before the faults-off repair so two same-seed runs compare the
  // churn phase itself.
  res.metrics_json = scrubbed_metrics(net.simulator());
  if (timeline.has_value()) {
    timeline->flush(net.simulator().now_ms());
    res.timeline_jsonl = timeline->to_jsonl();
    res.timeline_window_ms = params.timeline_window_ms;
    for (const char* name : {"sim.events", "msgs.join", "msgs.repair",
                             "msgs.teardown", "msgs.data"}) {
      res.timeline_series.emplace_back(name, timeline->counter_series(name));
    }
    net.simulator().set_timeline(nullptr);
  }

  net.set_fault_injector(nullptr);
  (void)net.repair_partitions();
  std::string err;
  res.converged = net.verify_rings(&err, /*strict=*/true);
  res.err = err;

  // One final fault-free audit after repair; lands in the digest too.
  (void)auditor.run();

  res.audits = auditor.audits_run();
  res.hard = auditor.total_hard();
  res.soft = auditor.total_soft();
  res.digest = auditor.reports_digest();
  res.routes_digest = "n=" + std::to_string(res.routes) + ";delivered=" +
                      std::to_string(res.delivered) + ";fnv=" +
                      hex64(runner.routes_fnv);
  res.reports = auditor.reports();
  res.events_dispatched = net.simulator().events_dispatched();
  return res;
}

}  // namespace rofl::audit
