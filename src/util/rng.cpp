#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rofl {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfSampler::pmf(std::size_t k) const {
  assert(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace rofl
