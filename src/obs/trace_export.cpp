#include "obs/trace_export.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace rofl::obs {

namespace {

void json_escape_into(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

void Tracer::push(Event ev) {
  // The trace-event format wants non-decreasing timestamps; the protocol
  // layers legitimately emit many events at one instant of virtual time
  // (analytic phases), so clamp rather than assert.
  if (ev.ph != 'M') {
    ev.ts_us = std::max(ev.ts_us, last_ts_us_);
    last_ts_us_ = ev.ts_us;
  }
  events_.push_back(std::move(ev));
}

void Tracer::complete(std::string_view name, std::string_view cat,
                      double ts_us, double dur_us, std::uint32_t track,
                      std::vector<TraceArg> args) {
  push(Event{std::string(name), std::string(cat), 'X', ts_us,
             std::max(dur_us, 0.0), track, std::move(args)});
}

void Tracer::instant(std::string_view name, std::string_view cat, double ts_us,
                     std::uint32_t track, std::vector<TraceArg> args) {
  push(Event{std::string(name), std::string(cat), 'i', ts_us, 0.0, track,
             std::move(args)});
}

void Tracer::counter(std::string_view name, double ts_us, double value,
                     std::uint32_t track) {
  push(Event{std::string(name), "counter", 'C', ts_us, 0.0, track,
             {TraceArg{"value", value}}});
}

void Tracer::name_track(std::uint32_t track, std::string_view name) {
  push(Event{"thread_name", "__metadata", 'M', 0.0, 0.0, track,
             {TraceArg{"name", std::string(name)}}});
}

std::string Tracer::to_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    os << "  {\"name\": \"";
    json_escape_into(os, e.name);
    os << "\", \"cat\": \"";
    json_escape_into(os, e.cat);
    os << "\", \"ph\": \"" << e.ph << "\", \"ts\": " << e.ts_us;
    if (e.ph == 'X') os << ", \"dur\": " << e.dur_us;
    if (e.ph == 'i') os << ", \"s\": \"t\"";
    os << ", \"pid\": 1, \"tid\": " << e.track;
    if (!e.args.empty()) {
      os << ", \"args\": {";
      for (std::size_t a = 0; a < e.args.size(); ++a) {
        if (a > 0) os << ", ";
        os << "\"";
        json_escape_into(os, e.args[a].name);
        os << "\": ";
        if (const auto* d = std::get_if<double>(&e.args[a].value)) {
          os << *d;
        } else if (const auto* u = std::get_if<std::uint64_t>(&e.args[a].value)) {
          os << *u;
        } else {
          os << "\"";
          json_escape_into(os, std::get<std::string>(e.args[a].value));
          os << "\"";
        }
      }
      os << "}";
    }
    os << "}" << (i + 1 < events_.size() ? ",\n" : "\n");
  }
  os << "], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

bool Tracer::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  return out.good();
}

void Tracer::clear() {
  events_.clear();
  last_ts_us_ = 0.0;
}

}  // namespace rofl::obs
