// micro_datapath -- google-benchmark microbenchmarks for the hot paths that
// gate a software ROFL forwarder: ring arithmetic, SHA-256 identity
// derivation, bloom probes, pointer-cache and virtual-node best-match
// lookups (the per-packet operations of Algorithm 2), and end-to-end greedy
// forwarding on a warm intradomain network.
#include <benchmark/benchmark.h>

#include "graph/isp_topology.hpp"
#include "rofl/network.hpp"
#include "util/bloom.hpp"
#include "util/identity.hpp"
#include "util/sha256.hpp"

namespace rofl {
namespace {

void BM_NodeIdDistance(benchmark::State& state) {
  Rng rng(1);
  const NodeId a(rng.next_u64(), rng.next_u64());
  const NodeId b(rng.next_u64(), rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(NodeId::distance_cw(a, b));
  }
}
BENCHMARK(BM_NodeIdDistance);

void BM_NodeIdInterval(benchmark::State& state) {
  Rng rng(2);
  const NodeId a(rng.next_u64(), rng.next_u64());
  const NodeId x(rng.next_u64(), rng.next_u64());
  const NodeId b(rng.next_u64(), rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(NodeId::in_interval_oc(a, x, b));
  }
}
BENCHMARK(BM_NodeIdInterval);

void BM_Sha256Identity(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Identity::generate(rng));
  }
}
BENCHMARK(BM_Sha256Identity);

void BM_Sha256Throughput(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256Throughput)->Arg(64)->Arg(1500)->Arg(65536);

void BM_BloomProbe(benchmark::State& state) {
  BloomFilter bf(static_cast<std::size_t>(state.range(0)), 4);
  Rng rng(4);
  for (int i = 0; i < state.range(0) / 16; ++i) {
    bf.insert(NodeId(rng.next_u64(), rng.next_u64()));
  }
  const NodeId probe(rng.next_u64(), rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.may_contain(probe));
  }
}
BENCHMARK(BM_BloomProbe)->Arg(1 << 12)->Arg(1 << 20);

void BM_PointerCacheBestMatch(benchmark::State& state) {
  intra::PointerCache pc(static_cast<std::size_t>(state.range(0)));
  Rng rng(5);
  for (int i = 0; i < state.range(0); ++i) {
    pc.insert(NodeId(rng.next_u64(), rng.next_u64()), 1, {0, 1});
  }
  const NodeId dest(rng.next_u64(), rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pc.best_match(dest));
  }
}
BENCHMARK(BM_PointerCacheBestMatch)->Arg(1024)->Arg(65536);

struct WarmNetwork {
  graph::IspTopology topo;
  std::unique_ptr<intra::Network> net;
  std::vector<NodeId> ids;

  WarmNetwork() {
    Rng trng(6);
    topo = graph::make_rocketfuel_like(graph::RocketfuelAs::kAs3967, trng);
    intra::Config cfg;
    cfg.cache_capacity = 4096;
    net = std::make_unique<intra::Network>(&topo, cfg, 7);
    for (int i = 0; i < 2000; ++i) {
      const Identity ident = Identity::generate(net->rng());
      const auto gw = static_cast<graph::NodeIndex>(
          net->rng().index(net->router_count()));
      if (net->join_host(ident, gw).ok) ids.push_back(ident.id());
    }
  }
};

WarmNetwork& warm() {
  static WarmNetwork w;
  return w;
}

void BM_VnBestMatch(benchmark::State& state) {
  WarmNetwork& w = warm();
  Rng rng(8);
  const NodeId dest(rng.next_u64(), rng.next_u64());
  const auto& router = w.net->router(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.vn_best_match(dest));
  }
}
BENCHMARK(BM_VnBestMatch);

void BM_IntraGreedyRoute(benchmark::State& state) {
  WarmNetwork& w = warm();
  Rng rng(9);
  std::size_t i = 0;
  for (auto _ : state) {
    const NodeId dest = w.ids[i++ % w.ids.size()];
    const auto src =
        static_cast<graph::NodeIndex>(rng.index(w.net->router_count()));
    benchmark::DoNotOptimize(w.net->route(src, dest));
  }
}
BENCHMARK(BM_IntraGreedyRoute);

void BM_IntraJoin(benchmark::State& state) {
  WarmNetwork& w = warm();
  for (auto _ : state) {
    const Identity ident = Identity::generate(w.net->rng());
    const auto gw = static_cast<graph::NodeIndex>(
        w.net->rng().index(w.net->router_count()));
    benchmark::DoNotOptimize(w.net->join_host(ident, gw));
  }
}
BENCHMARK(BM_IntraJoin);

}  // namespace
}  // namespace rofl

BENCHMARK_MAIN();
