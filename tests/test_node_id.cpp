#include "util/node_id.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace rofl {
namespace {

TEST(NodeId, DefaultIsZero) {
  const NodeId id;
  EXPECT_EQ(id.hi(), 0u);
  EXPECT_EQ(id.lo(), 0u);
  EXPECT_EQ(id, kZeroId);
}

TEST(NodeId, OrderingIsUnsigned128) {
  EXPECT_LT(NodeId::from_u64(1), NodeId::from_u64(2));
  EXPECT_LT(NodeId::from_u64(0xFFFFFFFFFFFFFFFFull), NodeId(1, 0));
  EXPECT_LT(NodeId(1, 5), NodeId(2, 0));
  EXPECT_EQ(NodeId(3, 4), NodeId(3, 4));
}

TEST(NodeId, PlusWrapsAtLowWordBoundary) {
  const NodeId a(0, 0xFFFFFFFFFFFFFFFFull);
  const NodeId b = a.plus(NodeId::from_u64(1));
  EXPECT_EQ(b, NodeId(1, 0));
}

TEST(NodeId, PlusWrapsAroundRing) {
  const NodeId max(0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(max.plus(NodeId::from_u64(1)), kZeroId);
}

TEST(NodeId, MinusBorrowsAcrossWords) {
  const NodeId a(1, 0);
  EXPECT_EQ(a.minus(NodeId::from_u64(1)), NodeId(0, 0xFFFFFFFFFFFFFFFFull));
}

TEST(NodeId, MinusWrapsBelowZero) {
  EXPECT_EQ(kZeroId.minus(NodeId::from_u64(1)),
            NodeId(0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull));
}

TEST(NodeId, DistanceCwIsDirectional) {
  const NodeId a = NodeId::from_u64(10);
  const NodeId b = NodeId::from_u64(30);
  EXPECT_EQ(NodeId::distance_cw(a, b), NodeId::from_u64(20));
  // Going the other way wraps the whole ring.
  EXPECT_EQ(NodeId::distance_cw(b, a),
            NodeId(0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFECull));
}

TEST(NodeId, IntervalOpenClosedBasic) {
  const NodeId a = NodeId::from_u64(10);
  const NodeId b = NodeId::from_u64(20);
  EXPECT_TRUE(NodeId::in_interval_oc(a, NodeId::from_u64(15), b));
  EXPECT_TRUE(NodeId::in_interval_oc(a, b, b));   // closed at b
  EXPECT_FALSE(NodeId::in_interval_oc(a, a, b));  // open at a
  EXPECT_FALSE(NodeId::in_interval_oc(a, NodeId::from_u64(25), b));
}

TEST(NodeId, IntervalWrapsAroundZero) {
  const NodeId a = NodeId::from_u64(0xF0);
  const NodeId b = NodeId::from_u64(0x10);
  EXPECT_TRUE(NodeId::in_interval_oc(a, NodeId::from_u64(0xFF), b));
  EXPECT_TRUE(NodeId::in_interval_oc(a, NodeId::from_u64(0x05), b));
  EXPECT_FALSE(NodeId::in_interval_oc(a, NodeId::from_u64(0x80), b));
}

TEST(NodeId, FullRingConventionWhenEndpointsEqual) {
  const NodeId a = NodeId::from_u64(7);
  // (a, a] denotes the full ring.
  EXPECT_TRUE(NodeId::in_interval_oc(a, NodeId::from_u64(100), a));
  EXPECT_TRUE(NodeId::in_interval_oc(a, a.plus(NodeId::from_u64(1)), a));
  // x == a is the closed endpoint b of the full ring, so it is inside.  (A
  // single-member ring owns every id including its own; the old EXPECT_FALSE
  // here encoded the bug where a sole successor rejected its own id.)
  EXPECT_TRUE(NodeId::in_interval_oc(a, a, a));
  // Open-open variant excludes the endpoint itself.
  EXPECT_TRUE(NodeId::in_interval_oo(a, NodeId::from_u64(100), a));
  EXPECT_FALSE(NodeId::in_interval_oo(a, a, a));
}

TEST(NodeId, CloserToPrefersSmallerClockwiseDistance) {
  const NodeId dest = NodeId::from_u64(100);
  // 90 is 10 before dest; 101 is just past dest (wraps nearly full ring).
  EXPECT_TRUE(NodeId::closer_to(dest, NodeId::from_u64(90),
                                NodeId::from_u64(101)));
  EXPECT_TRUE(NodeId::closer_to(dest, NodeId::from_u64(99),
                                NodeId::from_u64(90)));
  EXPECT_FALSE(NodeId::closer_to(dest, NodeId::from_u64(90),
                                 NodeId::from_u64(90)));
  // Exact hit is the closest possible.
  EXPECT_TRUE(NodeId::closer_to(dest, dest, NodeId::from_u64(99)));
}

TEST(NodeId, BitExtractionMsbFirst) {
  const NodeId id(0x8000000000000000ull, 0x1ull);
  EXPECT_EQ(id.bit(0), 1u);
  EXPECT_EQ(id.bit(1), 0u);
  EXPECT_EQ(id.bit(127), 1u);
  EXPECT_EQ(id.bit(126), 0u);
}

TEST(NodeId, DigitExtraction) {
  // hi = 0b1011... at the top.
  const NodeId id(0xB000000000000000ull, 0);
  EXPECT_EQ(id.digit(0, 4), 0xBu);
  EXPECT_EQ(id.digit(1, 3), 0x3u);
  EXPECT_EQ(id.digit(4, 4), 0x0u);
}

TEST(NodeId, DigitSpansWordBoundary) {
  const NodeId id(0x1ull, 0x8000000000000000ull);
  // Bits 60..67 are 0b0001'1000 = 0x18.
  EXPECT_EQ(id.digit(60, 8), 0x18u);
}

TEST(NodeId, CommonPrefixLen) {
  EXPECT_EQ(NodeId(0, 0).common_prefix_len(NodeId(0, 0)), 128u);
  EXPECT_EQ(NodeId(0x8000000000000000ull, 0).common_prefix_len(NodeId(0, 0)),
            0u);
  EXPECT_EQ(NodeId(0, 1).common_prefix_len(NodeId(0, 0)), 127u);
}

TEST(NodeId, FromBytesBigEndian) {
  std::array<std::uint8_t, 16> bytes{};
  bytes[0] = 0xAB;
  bytes[15] = 0x01;
  const NodeId id = NodeId::from_bytes(bytes);
  EXPECT_EQ(id.hi(), 0xAB00000000000000ull);
  EXPECT_EQ(id.lo(), 0x1ull);
}

TEST(NodeId, ToStringFromStringRoundTrip) {
  for (const NodeId id : {NodeId{}, NodeId::from_u64(42),
                          NodeId(0xDEADBEEF01020304ull, 0xFFFFFFFFFFFFFFFFull)}) {
    const auto back = NodeId::from_string(id.to_string());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, id);
  }
}

TEST(NodeId, FromStringRejectsMalformed) {
  EXPECT_FALSE(NodeId::from_string("").has_value());
  EXPECT_FALSE(NodeId::from_string("1234").has_value());       // no colon
  EXPECT_FALSE(NodeId::from_string(":12").has_value());        // empty word
  EXPECT_FALSE(NodeId::from_string("12:").has_value());
  EXPECT_FALSE(NodeId::from_string("xyz:12").has_value());     // non-hex
  EXPECT_FALSE(
      NodeId::from_string("11111111111111111:0").has_value());  // >64 bits
  EXPECT_TRUE(NodeId::from_string("AB:cd").has_value());        // mixed case
}

TEST(NodeId, ComposePrefixDigitFill) {
  const NodeId base(0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull);
  // 8-bit prefix of base, digit 0b0101 (4 bits), zero fill.
  const NodeId lo = NodeId::compose(base, 8, 0x5, 4, false);
  EXPECT_EQ(lo.hi(), 0xFF50000000000000ull);
  EXPECT_EQ(lo.lo(), 0u);
  // Same with ones fill.
  const NodeId hi = NodeId::compose(base, 8, 0x5, 4, true);
  EXPECT_EQ(hi.hi(), 0xFF5FFFFFFFFFFFFFull);
  EXPECT_EQ(hi.lo(), 0xFFFFFFFFFFFFFFFFull);
  // Zero-length prefix.
  const NodeId all = NodeId::compose(base, 0, 0, 0, true);
  EXPECT_EQ(all, base);
  // Prefix spanning into the low word.
  const NodeId deep = NodeId::compose(base, 96, 0x3, 2, false);
  EXPECT_EQ(deep.hi(), base.hi());
  EXPECT_EQ(deep.lo(), 0xFFFFFFFFC0000000ull);
}

TEST(NodeId, ComposeBoundsBracketMatchingIds) {
  // Any id sharing the prefix+digit lies within [lo, hi].
  Rng rng_state(99);
  const NodeId owner(0xABCD000000000000ull, 0x1234ull);
  const unsigned i = 12, b = 4;
  const std::uint64_t digit = 0x7;
  const NodeId lo = NodeId::compose(owner, i, digit, b, false);
  const NodeId hi = NodeId::compose(owner, i, digit, b, true);
  EXPECT_LE(lo, hi);
  // lo itself matches the pattern.
  EXPECT_GE(lo.common_prefix_len(owner), i);
  EXPECT_EQ(lo.digit(i, b), digit);
  EXPECT_EQ(hi.digit(i, b), digit);
}

TEST(NodeId, HashIsUsableAndSpreads) {
  std::hash<NodeId> h;
  EXPECT_NE(h(NodeId::from_u64(1)), h(NodeId::from_u64(2)));
}

// Property sweep: in_interval_oc(a, x, b) agrees with the distance-based
// definition on a dense small ring.
class NodeIdIntervalProperty : public ::testing::TestWithParam<int> {};

TEST_P(NodeIdIntervalProperty, IntervalMatchesWalkDefinition) {
  const int span = GetParam();
  const NodeId a = NodeId::from_u64(200);
  const NodeId b = a.plus(NodeId::from_u64(static_cast<std::uint64_t>(span)));
  // Walk clockwise from a+1 to b; everything on the walk must be inside,
  // the next step outside.
  NodeId x = a;
  for (int i = 1; i <= span; ++i) {
    x = x.plus(NodeId::from_u64(1));
    EXPECT_TRUE(NodeId::in_interval_oc(a, x, b)) << "offset " << i;
  }
  EXPECT_FALSE(NodeId::in_interval_oc(a, b.plus(NodeId::from_u64(1)), b));
}

INSTANTIATE_TEST_SUITE_P(Spans, NodeIdIntervalProperty,
                         ::testing::Values(1, 2, 3, 10, 100, 1000));

// Exhaustive check of the ring predicates on a 6-bit ring embedded in the
// 128-bit id space.  Each small value v maps to v * 2^122, so the 64 sample
// points are evenly spaced around the full ring and mod-64 arithmetic in the
// reference model corresponds exactly to mod-2^128 arithmetic in NodeId --
// including wrap past zero.  Every (a, x, b) triple is covered, which pins
// down all the degenerate cases (a == b, x == a, x == b) that sampling-based
// tests kept missing.
namespace ring6 {

constexpr unsigned kRing = 64;

NodeId embed(unsigned v) { return NodeId(std::uint64_t{v} << 58, 0); }

// (a, b] membership by literally walking clockwise; (a, a] is the full ring.
bool ref_oc(unsigned a, unsigned x, unsigned b) {
  unsigned steps = (b + kRing - a) % kRing;
  if (steps == 0) steps = kRing;
  for (unsigned k = 1; k <= steps; ++k) {
    if ((a + k) % kRing == x) return true;
  }
  return false;
}

bool ref_oo(unsigned a, unsigned x, unsigned b) {
  return ref_oc(a, x, b) && x != b;
}

unsigned dist_cw(unsigned from, unsigned to) {
  return (to + kRing - from) % kRing;
}

}  // namespace ring6

TEST(NodeId, IntervalPredicatesExhaustiveOn6BitRing) {
  using namespace ring6;
  for (unsigned a = 0; a < kRing; ++a) {
    for (unsigned b = 0; b < kRing; ++b) {
      for (unsigned x = 0; x < kRing; ++x) {
        const bool oc = NodeId::in_interval_oc(embed(a), embed(x), embed(b));
        const bool oo = NodeId::in_interval_oo(embed(a), embed(x), embed(b));
        ASSERT_EQ(oc, ref_oc(a, x, b)) << "oc a=" << a << " x=" << x
                                       << " b=" << b;
        ASSERT_EQ(oo, ref_oo(a, x, b)) << "oo a=" << a << " x=" << x
                                       << " b=" << b;
      }
    }
  }
}

TEST(NodeId, CloserToExhaustiveOn6BitRing) {
  using namespace ring6;
  for (unsigned dest = 0; dest < kRing; ++dest) {
    for (unsigned x = 0; x < kRing; ++x) {
      for (unsigned y = 0; y < kRing; ++y) {
        const bool got = NodeId::closer_to(embed(dest), embed(x), embed(y));
        const bool want = dist_cw(x, dest) < dist_cw(y, dest);
        ASSERT_EQ(got, want) << "dest=" << dest << " x=" << x << " y=" << y;
      }
    }
  }
}

}  // namespace
}  // namespace rofl
