#include "baselines/cmu_ethernet.hpp"

namespace rofl::baselines {

CmuEthernet::CmuEthernet(const graph::IspTopology* topo)
    : topo_(topo),
      map_(const_cast<graph::Graph*>(&topo->graph), nullptr) {}

std::uint64_t CmuEthernet::flood_cost() const {
  std::uint64_t directed_edges = 0;
  for (graph::NodeIndex u = 0; u < topo_->graph.node_count(); ++u) {
    directed_edges += topo_->graph.live_degree(u);
  }
  return directed_edges;
}

CmuEthernet::JoinStats CmuEthernet::join_host(const NodeId& id,
                                              graph::NodeIndex gateway) {
  JoinStats stats;
  if (gateway >= topo_->graph.node_count() || !topo_->graph.node_up(gateway)) {
    return stats;
  }
  if (bindings_.contains(id)) return stats;
  bindings_[id] = gateway;
  stats.messages = 1 + flood_cost();  // attach + network-wide flood
  total_join_messages_ += stats.messages;
  stats.ok = true;
  return stats;
}

CmuEthernet::JoinStats CmuEthernet::leave_host(const NodeId& id) {
  JoinStats stats;
  const auto it = bindings_.find(id);
  if (it == bindings_.end()) return stats;
  bindings_.erase(it);
  stats.messages = flood_cost();
  stats.ok = true;
  return stats;
}

CmuEthernet::RouteStats CmuEthernet::route(graph::NodeIndex src,
                                           const NodeId& dest) const {
  RouteStats stats;
  const auto it = bindings_.find(dest);
  if (it == bindings_.end()) return stats;
  const auto hops = map_.hop_distance(src, it->second);
  if (!hops.has_value()) return stats;
  stats.delivered = true;
  stats.physical_hops = *hops;
  stats.stretch = 1.0;
  return stats;
}

}  // namespace rofl::baselines
