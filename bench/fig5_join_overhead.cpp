// fig5_join_overhead -- regenerates Figure 5 (intradomain joining).
//
//   5a: cumulative join overhead (packets) vs number of IDs joined, for the
//       four Rocketfuel-like ISPs, plus the CMU-ETHERNET baseline on the
//       same topologies (the paper reports CMU-ETHERNET needs 37-181x more
//       messages).
//   5b: CDF of per-host join overhead (packets).
//   5c: CDF of join latency (ms) -- "typically on the order of the network
//       diameter", under 40 ms in the paper.
//
// Execution: the four ISPs run as four entities on sim::ShardedSimulator,
// one intra::Network per entity, joins chunked across self-rescheduled
// events.  Entities never exchange messages, so the workload is embarrassingly
// parallel -- and exactly because of that it doubles as a determinism probe:
// the bench runs the identical workload at 1 shard and at 4 and gates on the
// merged per-ISP metrics being byte-identical (the engine's shard-count
// invariance contract, DESIGN.md section 13).
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/cmu_ethernet.hpp"
#include "bench_common.hpp"
#include "rofl/network.hpp"
#include "sim/sharded.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rofl {
namespace {

constexpr std::size_t kJoinsPerEvent = 250;

struct IspRun {
  std::string name;
  std::vector<std::pair<std::size_t, std::uint64_t>> cumulative;  // n, packets
  std::vector<std::pair<std::size_t, std::uint64_t>> cumulative_bytes;
  std::vector<std::pair<std::size_t, std::uint64_t>> cumulative_cmu;
  SampleSet per_join;
  SampleSet per_join_bytes;
  SampleSet latency_ms;
  double cmu_ratio = 0.0;
  std::uint32_t diameter = 0;
};

/// One ISP homed on one entity: its topology, network, baseline, and the
/// accumulators the tables below print.  Only the owning shard's events touch
/// it during run(); the driver reads it after the workers have joined.
struct IspEntity {
  explicit IspEntity(graph::RocketfuelAs which) {
    Rng trng(bench::kSeed);
    topo = graph::make_rocketfuel_like(which, trng);
    net = std::make_unique<intra::Network>(&topo, intra::Config{},
                                           bench::kSeed + 1);
    cmu = std::make_unique<baselines::CmuEthernet>(&topo);
    run.name = topo.name;
    run.diameter = topo.graph.diameter_hops(64);
  }

  graph::IspTopology topo;
  std::unique_ptr<intra::Network> net;
  std::unique_ptr<baselines::CmuEthernet> cmu;
  IspRun run;
  std::size_t joined = 0;
  std::uint64_t total = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_cmu = 0;
  std::size_t next_report = 1;
};

struct Fig5Result {
  std::vector<IspRun> runs;
  std::string metrics_json;
};

/// Runs all ISPs to `max_ids` joins each on `shards` shards.  Every number
/// below is shard-count independent: the join streams draw only from each
/// network's own RNG, and per-ISP metrics live under per-ISP names so each
/// metric has exactly one writing entity.
Fig5Result run_all(std::uint32_t shards, std::size_t max_ids) {
  std::vector<std::unique_ptr<IspEntity>> isps;
  for (const auto which : graph::all_rocketfuel_ases()) {
    isps.push_back(std::make_unique<IspEntity>(which));
  }
  const auto n_isps = static_cast<sim::EntityId>(isps.size());

  std::vector<std::string> prefix(n_isps);
  for (sim::EntityId e = 0; e < n_isps; ++e) {
    prefix[e] = "fig5." + isps[e]->run.name;
  }

  sim::ShardedSimulator::Config cfg;
  cfg.shards = shards;
  cfg.lookahead_ms = 1.0;
  cfg.seed = bench::kSeed;
  sim::ShardedSimulator engine(
      sim::balanced_shard_map(
          std::vector<std::uint64_t>(n_isps, max_ids), shards),
      cfg);
  engine.set_registry_init([&prefix](obs::Registry& reg) {
    for (const std::string& p : prefix) {
      (void)reg.counter(p + ".joins");
      (void)reg.counter(p + ".messages");
      (void)reg.counter(p + ".bytes");
      (void)reg.counter(p + ".cmu_messages");
      (void)reg.histogram(p + ".per_join_msgs",
                          obs::Histogram::exponential_bounds(1.0, 2.0, 16));
      (void)reg.histogram(p + ".latency_ms",
                          obs::Histogram::exponential_bounds(1.0, 2.0, 16));
    }
  });

  engine.set_handler([&](sim::ShardContext& ctx, const sim::ShardEvent&) {
    IspEntity& st = *isps[ctx.self()];
    obs::Registry& reg = ctx.metrics();
    const std::string& p = prefix[ctx.self()];
    intra::Network& net = *st.net;
    for (std::size_t i = 0; i < kJoinsPerEvent && st.joined < max_ids; ++i) {
      const std::size_t n = ++st.joined;
      const auto gw = static_cast<graph::NodeIndex>(
          net.rng().index(net.router_count()));
      const Identity ident = Identity::generate(net.rng());
      const std::uint64_t bytes_before =
          net.simulator().counters().bytes(sim::MsgCategory::kJoin);
      const intra::JoinStats js = net.join_host(ident, gw);
      const auto cj = st.cmu->join_host(Identity::generate(net.rng()).id(), gw);
      st.total_cmu += cj.messages;
      reg.add(reg.counter(p + ".cmu_messages"), cj.messages);
      if (js.ok) {
        const std::uint64_t join_bytes =
            net.simulator().counters().bytes(sim::MsgCategory::kJoin) -
            bytes_before;
        st.total += js.messages;
        st.total_bytes += join_bytes;
        st.run.per_join.add(static_cast<double>(js.messages));
        st.run.per_join_bytes.add(static_cast<double>(join_bytes));
        st.run.latency_ms.add(js.latency_ms);
        reg.add(reg.counter(p + ".joins"));
        reg.add(reg.counter(p + ".messages"), js.messages);
        reg.add(reg.counter(p + ".bytes"), join_bytes);
        reg.observe(reg.histogram(
                        p + ".per_join_msgs",
                        obs::Histogram::exponential_bounds(1.0, 2.0, 16)),
                    static_cast<double>(js.messages));
        reg.observe(reg.histogram(
                        p + ".latency_ms",
                        obs::Histogram::exponential_bounds(1.0, 2.0, 16)),
                    js.latency_ms);
      }
      if (n == st.next_report || n == max_ids) {
        st.run.cumulative.emplace_back(n, st.total);
        st.run.cumulative_bytes.emplace_back(n, st.total_bytes);
        st.run.cumulative_cmu.emplace_back(n, st.total_cmu);
        st.next_report *= 10;
      }
    }
    if (st.joined < max_ids) ctx.send(ctx.self(), 0.0, /*kind=*/0);
  });

  for (sim::EntityId e = 0; e < n_isps; ++e) {
    engine.seed_event(0.0, e, /*kind=*/0);
  }
  (void)engine.run();

  Fig5Result result;
  result.metrics_json = engine.merged_metrics().to_json(0, /*buckets=*/true);
  for (auto& st : isps) {
    st->run.cmu_ratio =
        st->total > 0
            ? static_cast<double>(st->total_cmu) / static_cast<double>(st->total)
            : 0.0;
    result.runs.push_back(std::move(st->run));
  }
  return result;
}

}  // namespace
}  // namespace rofl

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  const std::size_t max_ids = bench::full_scale() ? 30'000 : 5'000;

  // The determinism gate: the identical workload at 1 shard and at 4 must
  // merge to byte-identical per-ISP metrics.
  const Fig5Result single = run_all(/*shards=*/1, max_ids);
  const Fig5Result sharded = run_all(/*shards=*/4, max_ids);
  const bool deterministic = single.metrics_json == sharded.metrics_json;
  const std::vector<IspRun>& runs = sharded.runs;

  print_banner(std::cout, "Figure 5a: cumulative join overhead vs IDs joined");
  {
    Table t({"ISP", "IDs", "ROFL packets", "ROFL bytes", "CMU-ETHERNET packets"});
    for (const auto& run : runs) {
      for (std::size_t i = 0; i < run.cumulative.size(); ++i) {
        t.add_row({run.name,
                   static_cast<std::int64_t>(run.cumulative[i].first),
                   static_cast<std::int64_t>(run.cumulative[i].second),
                   static_cast<std::int64_t>(run.cumulative_bytes[i].second),
                   static_cast<std::int64_t>(run.cumulative_cmu[i].second)});
      }
    }
    t.print(std::cout);
  }
  std::cout << "\nPaper reference: both scale linearly in IDs; CMU-ETHERNET "
               "needs 37-181x more messages.\nMeasured ratios:";
  for (const auto& run : runs) {
    std::cout << "  " << run.name << "=" << static_cast<int>(run.cmu_ratio)
              << "x";
  }
  std::cout << "\n";

  print_banner(std::cout, "Figure 5b: CDF of per-join overhead [packets]");
  {
    Table t({"ISP", "p10", "p50", "p90", "p99", "mean", "4*diameter"});
    for (const auto& run : runs) {
      t.add_row({run.name, run.per_join.percentile(0.10),
                 run.per_join.percentile(0.50), run.per_join.percentile(0.90),
                 run.per_join.percentile(0.99), run.per_join.mean(),
                 static_cast<std::int64_t>(4 * run.diameter)});
    }
    t.print(std::cout);
    std::cout << "Paper reference: join overhead is roughly four messages "
                 "times the network diameter; <45 packets per join.\n";
  }

  print_banner(std::cout, "Figure 5b': CDF of per-join overhead [wire bytes]");
  {
    Table t({"ISP", "p10", "p50", "p90", "p99", "mean"});
    for (const auto& run : runs) {
      t.add_row({run.name, run.per_join_bytes.percentile(0.10),
                 run.per_join_bytes.percentile(0.50),
                 run.per_join_bytes.percentile(0.90),
                 run.per_join_bytes.percentile(0.99),
                 run.per_join_bytes.mean()});
    }
    t.print(std::cout);
    std::cout << "Bytes are encoder-sized wire frames (54-byte control "
                 "framing + typed payload, CRC-32 included).\n";
  }

  print_banner(std::cout, "Figure 5c: CDF of join latency [ms]");
  {
    Table t({"ISP", "p10", "p50", "p90", "p99", "mean"});
    for (const auto& run : runs) {
      t.add_row({run.name, run.latency_ms.percentile(0.10),
                 run.latency_ms.percentile(0.50),
                 run.latency_ms.percentile(0.90),
                 run.latency_ms.percentile(0.99), run.latency_ms.mean()});
    }
    t.print(std::cout);
    std::cout << "Paper reference: joins typically complete in <40 ms, on "
                 "the order of the network diameter.\n";
  }

  std::cout << "\ndeterminism gate: shards=1 vs shards=4 merged metrics -> "
            << (deterministic ? "identical" : "MISMATCH") << "\n";
  return deterministic ? 0 : 1;
}
