#include "util/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rofl {
namespace {

// FIPS 180-4 / NIST reference vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(Sha256::to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::to_hex(Sha256::hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(Sha256::to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update("hello ");
  h.update("world");
  EXPECT_EQ(h.finish(), Sha256::hash("hello world"));
}

TEST(Sha256, IncrementalAcrossBlockBoundary) {
  const std::string msg(130, 'x');
  Sha256 h;
  h.update(msg.substr(0, 63));
  h.update(msg.substr(63, 2));  // straddles the 64-byte boundary
  h.update(msg.substr(65));
  EXPECT_EQ(h.finish(), Sha256::hash(msg));
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update("abc");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(Sha256::to_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, ExactBlockLengths) {
  // 55, 56, 64 bytes hit the padding edge cases.
  for (const std::size_t len : {55u, 56u, 63u, 64u, 65u}) {
    const std::string msg(len, 'q');
    Sha256 h;
    for (char c : msg) {
      h.update(std::string_view(&c, 1));
    }
    EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "len=" << len;
  }
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::hash("a"), Sha256::hash("b"));
  EXPECT_NE(Sha256::hash("a"), Sha256::hash("aa"));
}

}  // namespace
}  // namespace rofl
