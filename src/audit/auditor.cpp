#include "audit/auditor.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace rofl::audit {

namespace {

sim::Simulator& driver_sim(intra::Network* net, inter::InterNetwork* inter) {
  return net != nullptr ? net->simulator() : inter->simulator();
}

// FNV-1a 64, rendered as hex; good enough for a run-to-run equality gate.
std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) out[i] = kDigits[v & 0xF];
  return out;
}

}  // namespace

std::string_view to_string(Severity s) {
  return s == Severity::kHard ? "hard" : "soft";
}

std::size_t AuditReport::hard_count() const {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(), [](const Violation& v) {
        return v.severity == Severity::kHard;
      }));
}

std::size_t AuditReport::soft_count() const {
  return violations.size() - hard_count();
}

std::string AuditReport::to_string() const {
  std::string out = "audit #" + std::to_string(audit_index) + " @ " +
                    std::to_string(t_ms) + "ms: " + std::to_string(checks) +
                    " checks, ";
  if (clean()) {
    out += "clean\n";
    return out;
  }
  out += std::to_string(violations.size()) + " violations (" +
         std::to_string(hard_count()) + " hard, " +
         std::to_string(soft_count()) + " soft)\n";
  for (const Violation& v : violations) {
    out += "  [";
    out += audit::to_string(v.severity);
    out += "] " + v.check + ": " + v.detail;
    if (v.trace_id != 0) out += " (trace " + std::to_string(v.trace_id) + ")";
    out += "\n";
  }
  return out;
}

Auditor::Auditor(intra::Network* net, inter::InterNetwork* inter,
                 intra::SessionManager* sessions)
    : net_(net), inter_(inter), sessions_(sessions) {
  assert(net_ != nullptr || inter_ != nullptr);
  obs::Registry& reg = driver_sim(net_, inter_).metrics();
  runs_id_ = reg.counter("audit.runs");
  hard_id_ = reg.counter("audit.hard");
  soft_id_ = reg.counter("audit.soft");
}

bool Auditor::lossy() const {
  const auto active = [](const sim::FaultInjector* f) {
    return f != nullptr && f->message_faults_enabled();
  };
  return (net_ != nullptr && active(net_->fault_injector())) ||
         (inter_ != nullptr && active(inter_->fault_injector()));
}

void Auditor::add(AuditReport& report, Severity severity, std::string check,
                  std::string detail, obs::HopDomain domain, std::uint32_t node,
                  const NodeId& subject) {
  std::uint64_t tid = 0;
  // Prefer the recorder of the engine the violation belongs to; fall back to
  // any installed recorder (they are usually shared anyway).
  obs::FlightRecorder* rec = nullptr;
  if (domain == obs::HopDomain::kInter && inter_ != nullptr) {
    rec = inter_->flight_recorder();
  }
  if (rec == nullptr && net_ != nullptr) rec = net_->flight_recorder();
  if (rec == nullptr && inter_ != nullptr) rec = inter_->flight_recorder();
  if (rec != nullptr) {
    tid = rec->new_trace();
    obs::HopRecord hr;
    hr.trace_id = tid;
    hr.t_ms = driver_sim(net_, inter_).now_ms();
    hr.domain = domain;
    hr.node = node;
    hr.category = static_cast<std::uint8_t>(sim::MsgCategory::kControl);
    hr.kind = obs::HopKind::kAuditViolation;
    hr.chased = subject;
    rec->record(hr);
  }
  report.violations.push_back(
      Violation{severity, std::move(check), std::move(detail), tid});
}

AuditReport Auditor::run() {
  AuditReport rep;
  rep.t_ms = driver_sim(net_, inter_).now_ms();
  rep.audit_index = audits_run_;
  if (net_ != nullptr) check_intra(rep);
  if (sessions_ != nullptr) check_sessions(rep);
  if (inter_ != nullptr) check_inter(rep);
  ++audits_run_;
  const std::size_t hard = rep.hard_count();
  const std::size_t soft = rep.soft_count();
  total_hard_ += hard;
  total_soft_ += soft;
  obs::Registry& reg = driver_sim(net_, inter_).metrics();
  reg.add(runs_id_, 1);
  if (hard != 0) reg.add(hard_id_, hard);
  if (soft != 0) reg.add(soft_id_, soft);
  reports_.push_back(rep);
  return rep;
}

void Auditor::schedule_every(double interval_ms, double until_ms) {
  sim::Simulator& sim = driver_sim(net_, inter_);
  for (std::uint64_t k = 1;; ++k) {
    const double t = interval_ms * static_cast<double>(k);
    if (t > until_ms) break;
    sim.schedule_at(t, [this] { (void)run(); });
  }
}

std::string Auditor::reports_digest() const {
  std::uint64_t h = 0xCBF29CE484222325ull;
  std::uint64_t hard = 0;
  std::uint64_t soft = 0;
  for (const AuditReport& rep : reports_) {
    h = fnv1a(h, "audit#" + std::to_string(rep.audit_index) + "@" +
                     std::to_string(rep.t_ms) +
                     ":checks=" + std::to_string(rep.checks));
    for (const Violation& v : rep.violations) {
      // trace_id deliberately excluded: the digest must be identical whether
      // or not a flight recorder happens to be installed.
      h = fnv1a(h, std::string(";") + std::string(audit::to_string(v.severity)) +
                       " " + v.check + " " + v.detail);
    }
    hard += rep.hard_count();
    soft += rep.soft_count();
  }
  return "n=" + std::to_string(reports_.size()) + ";hard=" +
         std::to_string(hard) + ";soft=" + std::to_string(soft) + ";fnv=" +
         hex64(h);
}

// ---------------------------------------------------------------------------
// intradomain

void Auditor::check_intra(AuditReport& rep) {
  std::string err;
  ++rep.checks;
  if (!net_->verify_rings(&err)) {
    add(rep, lossy() ? Severity::kSoft : Severity::kHard, "intra.ring.order",
        err, obs::HopDomain::kIntra, 0, kZeroId);
  }
  check_intra_ring(rep);
  check_intra_directory(rep);
  check_intra_caches(rep);
  check_intra_ephemerals(rep);
  check_intra_labels(rep);
}

void Auditor::check_intra_ring(AuditReport& rep) {
  const Severity racy = lossy() ? Severity::kSoft : Severity::kHard;
  const auto& dir = net_->directory();
  const graph::Graph& g = net_->topology().graph;
  for (graph::NodeIndex i = 0; i < net_->router_count(); ++i) {
    if (!g.node_up(i)) continue;  // a dark router's state is inert until
                                  // restore_router scrubs it
    const intra::Router& r = net_->router(i);
    for (const auto& [id, vn] : r.vnodes()) {
      if (vn.host_class == intra::HostClass::kEphemeral) continue;
      for (std::size_t s = 0; s < vn.successors.size(); ++s) {
        const intra::NeighborPtr& p = vn.successors[s];
        ++rep.checks;
        const auto it = dir.find(p.id);
        if (it == dir.end()) {
          add(rep, racy, "intra.ring.dangling",
              "router " + std::to_string(i) + " vnode " + id.to_string() +
                  " successor[" + std::to_string(s) + "] names departed ID " +
                  p.id.to_string(),
              obs::HopDomain::kIntra, i, p.id);
          continue;
        }
        if (it->second != p.host) {
          // The first successor drives forwarding and teardown; deeper group
          // members are refreshed lazily from the head, so only succ0 is
          // load-bearing at every instant.
          add(rep, s == 0 ? racy : Severity::kSoft, "intra.ring.host-hint",
              "router " + std::to_string(i) + " vnode " + id.to_string() +
                  " successor[" + std::to_string(s) + "] " + p.id.to_string() +
                  " points at router " + std::to_string(p.host) +
                  " but the ID lives at " + std::to_string(it->second),
              obs::HopDomain::kIntra, i, p.id);
        }
      }
      // Bidirectional agreement on the ring edge: succ0's predecessor must
      // name this vnode (checked only when the two routers can currently
      // talk; cross-partition pointers are torn, not stale).
      if (const intra::NeighborPtr* s0 = vn.first_successor()) {
        const auto it = dir.find(s0->id);
        if (it != dir.end() && it->second == s0->host && g.node_up(s0->host) &&
            net_->map().reachable(i, s0->host)) {
          ++rep.checks;
          const intra::VirtualNode* sv =
              net_->router(s0->host).find_vnode(s0->id);
          if (sv != nullptr) {
            if (!sv->predecessor.has_value()) {
              add(rep, racy, "intra.ring.pred-agreement",
                  "vnode " + s0->id.to_string() + " at router " +
                      std::to_string(s0->host) +
                      " has no predecessor but is successor0 of " +
                      id.to_string() + " at router " + std::to_string(i),
                  obs::HopDomain::kIntra, static_cast<std::uint32_t>(s0->host),
                  s0->id);
            } else if (sv->predecessor->id != id) {
              add(rep, racy, "intra.ring.pred-agreement",
                  "vnode " + s0->id.to_string() + " at router " +
                      std::to_string(s0->host) + " names predecessor " +
                      sv->predecessor->id.to_string() + " but is successor0 of " +
                      id.to_string() + " at router " + std::to_string(i),
                  obs::HopDomain::kIntra, static_cast<std::uint32_t>(s0->host),
                  s0->id);
            }
          }
        }
      }
      if (vn.predecessor.has_value()) {
        ++rep.checks;
        if (!dir.contains(vn.predecessor->id)) {
          add(rep, racy, "intra.ring.pred-dangling",
              "router " + std::to_string(i) + " vnode " + id.to_string() +
                  " predecessor names departed ID " +
                  vn.predecessor->id.to_string(),
              obs::HopDomain::kIntra, i, vn.predecessor->id);
        }
      }
    }
  }
}

void Auditor::check_intra_directory(AuditReport& rep) {
  const auto& dir = net_->directory();
  const graph::Graph& g = net_->topology().graph;
  // Directory entries are maintained synchronously by join/leave/fail paths
  // (no message can be lost between the state change and the bookkeeping),
  // so residency stays hard even under an active fault injector.
  for (const auto& [id, host] : dir) {
    ++rep.checks;
    if (host >= net_->router_count() || !g.node_up(host)) {
      add(rep, Severity::kHard, "intra.dir.down-host",
          "directory maps " + id.to_string() + " to dark router " +
              std::to_string(host),
          obs::HopDomain::kIntra, static_cast<std::uint32_t>(host), id);
      continue;
    }
    if (net_->router(host).find_vnode(id) == nullptr) {
      add(rep, Severity::kHard, "intra.dir.no-vnode",
          "directory maps " + id.to_string() + " to router " +
              std::to_string(host) + " but no vnode is resident there",
          obs::HopDomain::kIntra, static_cast<std::uint32_t>(host), id);
    }
  }
  for (graph::NodeIndex i = 0; i < net_->router_count(); ++i) {
    if (!g.node_up(i)) continue;
    for (const auto& [id, vn] : net_->router(i).vnodes()) {
      ++rep.checks;
      const auto it = dir.find(id);
      if (it == dir.end() || it->second != i) {
        add(rep, Severity::kHard, "intra.dir.unregistered",
            "router " + std::to_string(i) + " hosts vnode " + id.to_string() +
                (it == dir.end() ? " absent from the directory"
                                 : " which the directory maps to router " +
                                       std::to_string(it->second)),
            obs::HopDomain::kIntra, i, id);
      }
    }
  }
}

void Auditor::check_intra_caches(AuditReport& rep) {
  const auto& dir = net_->directory();
  const graph::Graph& g = net_->topology().graph;
  for (graph::NodeIndex i = 0; i < net_->router_count(); ++i) {
    if (!g.node_up(i)) continue;
    const intra::PointerCache& c = net_->router(i).cache();
    ++rep.checks;
    if (!c.invariants_ok()) {
      add(rep, Severity::kHard, "intra.cache.struct",
          "pointer cache at router " + std::to_string(i) +
              " failed its structural self-check",
          obs::HopDomain::kIntra, i, kZeroId);
    }
    c.for_each([&](const intra::CacheEntry& e) {
      ++rep.checks;
      // Shape is pinned by cache_along_path: the cached route is the IGP-path
      // suffix from the caching router to the host.
      if (e.path.empty() || e.path.front() != i || e.path.back() != e.host) {
        add(rep, Severity::kHard, "intra.cache.route-shape",
            "cache entry " + e.id.to_string() + " at router " +
                std::to_string(i) + " has a malformed source route (" +
                std::to_string(e.path.size()) + " hops, host " +
                std::to_string(e.host) + ")",
            obs::HopDomain::kIntra, i, e.id);
        return;
      }
      // LSA-driven purges are synchronous, so no entry may traverse a dead
      // link or router at any instant -- hard even under message loss.
      if (!net_->map().route_valid(e.path)) {
        add(rep, Severity::kHard, "intra.cache.route-dead",
            "cache entry " + e.id.to_string() + " at router " +
                std::to_string(i) + " rides a source route crossing dead " +
                "links (LSA purge missed it)",
            obs::HopDomain::kIntra, i, e.id);
        return;
      }
      // Staleness toward a departed/rehomed ID is expected (reverse-path
      // caching cannot be purged globally); it is torn down on first use.
      const auto it = dir.find(e.id);
      if (it == dir.end()) {
        add(rep, Severity::kSoft, "intra.cache.stale-id",
            "cache entry at router " + std::to_string(i) +
                " points at departed ID " + e.id.to_string(),
            obs::HopDomain::kIntra, i, e.id);
        return;
      }
      if (it->second != e.host) {
        add(rep, Severity::kSoft, "intra.cache.stale-host",
            "cache entry " + e.id.to_string() + " at router " +
                std::to_string(i) + " names router " + std::to_string(e.host) +
                " but the ID lives at " + std::to_string(it->second),
            obs::HopDomain::kIntra, i, e.id);
      }
    });
  }
}

void Auditor::check_intra_ephemerals(AuditReport& rep) {
  const auto& dir = net_->directory();
  const graph::Graph& g = net_->topology().graph;
  std::map<NodeId, std::vector<graph::NodeIndex>> anchors;
  for (graph::NodeIndex i = 0; i < net_->router_count(); ++i) {
    if (!g.node_up(i)) continue;
    for (const auto& [eid, egw] : net_->router(i).ephemeral_backpointers()) {
      anchors[eid].push_back(i);
      ++rep.checks;
      bool live = egw < net_->router_count() && g.node_up(egw);
      if (live) {
        const intra::VirtualNode* evn = net_->router(egw).find_vnode(eid);
        live = evn != nullptr &&
               evn->host_class == intra::HostClass::kEphemeral;
      }
      // A stale backpointer is lazily repaired: the forwarder tears it down
      // on first use and falls back to greedy routing.
      if (!live) {
        add(rep, Severity::kSoft, "intra.ephemeral.stale",
            "router " + std::to_string(i) + " anchors ephemeral " +
                eid.to_string() + " at router " + std::to_string(egw) +
                " which no longer hosts it",
            obs::HopDomain::kIntra, i, eid);
      }
    }
  }
  for (const auto& [eid, where] : anchors) {
    ++rep.checks;
    if (where.size() > 1) {
      std::string routers;
      for (const graph::NodeIndex w : where) {
        if (!routers.empty()) routers += ",";
        routers += std::to_string(w);
      }
      add(rep, Severity::kSoft, "intra.ephemeral.duplicate-anchor",
          "ephemeral " + eid.to_string() + " is anchored at routers " + routers,
          obs::HopDomain::kIntra, static_cast<std::uint32_t>(where.front()),
          eid);
    }
  }
  for (graph::NodeIndex i = 0; i < net_->router_count(); ++i) {
    if (!g.node_up(i)) continue;
    for (const auto& [id, vn] : net_->router(i).vnodes()) {
      if (vn.host_class != intra::HostClass::kEphemeral) continue;
      if (!dir.contains(id)) continue;  // flagged by the directory converse
      ++rep.checks;
      if (!anchors.contains(id)) {
        add(rep, Severity::kSoft, "intra.ephemeral.unanchored",
            "ephemeral " + id.to_string() + " at router " + std::to_string(i) +
                " has no backpointer anywhere (unreachable until repair)",
            obs::HopDomain::kIntra, i, id);
      }
    }
  }
}

void Auditor::check_intra_labels(AuditReport& rep) {
  // Label-switched fast-path bookkeeping is synchronous with the mutations
  // that invalidate it (flush_labels runs before any topology or ring state
  // changes), so every check here stays hard even under an active fault
  // injector: there is no message whose loss could legitimately leave a
  // label behind.
  const auto& flows = net_->label_flows();
  // Every (router, label) pair an installed flow claims, for the orphan scan.
  std::map<std::pair<graph::NodeIndex, std::uint32_t>, NodeId> claimed;
  for (const auto& [key, flow] : flows) {
    const auto& [src, dest] = key;
    ++rep.checks;
    if (flow.path.size() < 2 || flow.labels.size() != flow.path.size() ||
        flow.path.front() != src) {
      add(rep, Severity::kHard, "intra.label.flow-shape",
          "label flow " + dest.to_string() + " from router " +
              std::to_string(src) + " is malformed (" +
              std::to_string(flow.path.size()) + " hops, " +
              std::to_string(flow.labels.size()) + " labels)",
          obs::HopDomain::kIntra, static_cast<std::uint32_t>(src), dest);
      continue;
    }
    // Labels die with their pointer path: the terminal must still host the
    // destination and every link of the path must be up.
    ++rep.checks;
    if (!net_->router(flow.path.back()).hosts(dest)) {
      add(rep, Severity::kHard, "intra.label.dest-gone",
          "label flow from router " + std::to_string(src) + " terminates at " +
              "router " + std::to_string(flow.path.back()) +
              " which no longer hosts " + dest.to_string(),
          obs::HopDomain::kIntra,
          static_cast<std::uint32_t>(flow.path.back()), dest);
    }
    ++rep.checks;
    if (!net_->map().route_valid(flow.path)) {
      add(rep, Severity::kHard, "intra.label.route-dead",
          "label flow " + dest.to_string() + " from router " +
              std::to_string(src) + " rides a path crossing dead links " +
              "(flush_labels missed a mutation)",
          obs::HopDomain::kIntra, static_cast<std::uint32_t>(src), dest);
    }
    for (std::size_t i = 0; i < flow.path.size(); ++i) {
      const graph::NodeIndex n = flow.path[i];
      claimed.emplace(std::make_pair(n, flow.labels[i]), dest);
      ++rep.checks;
      const intra::LabelEntry* e =
          n < net_->router_count() ? net_->router(n).labels().lookup(
                                         flow.labels[i])
                                   : nullptr;
      if (e == nullptr) {
        add(rep, Severity::kHard, "intra.label.missing-entry",
            "router " + std::to_string(n) + " holds no entry for label " +
                std::to_string(flow.labels[i]) + " of flow " +
                dest.to_string(),
            obs::HopDomain::kIntra, static_cast<std::uint32_t>(n), dest);
        continue;
      }
      // Per-hop chain consistency: each entry forwards to the next path
      // router and names the label that router will consume.
      const bool terminal = i + 1 == flow.path.size();
      const graph::NodeIndex want_out =
          terminal ? graph::kInvalidNode : flow.path[i + 1];
      const std::uint32_t want_next =
          terminal ? intra::kNoLabel : flow.labels[i + 1];
      if (e->dest != dest || e->out != want_out ||
          e->next_label != want_next) {
        add(rep, Severity::kHard, "intra.label.chain",
            "label " + std::to_string(flow.labels[i]) + " at router " +
                std::to_string(n) + " disagrees with flow " +
                dest.to_string() + " (out " + std::to_string(e->out) +
                " want " + std::to_string(want_out) + ")",
            obs::HopDomain::kIntra, static_cast<std::uint32_t>(n), dest);
      }
    }
  }
  // Orphan scan: every live label entry must be backed by an installed flow;
  // an unclaimed entry would forward packets along a path nobody audits.
  for (graph::NodeIndex i = 0; i < net_->router_count(); ++i) {
    net_->router(i).labels().for_each(
        [&](std::uint32_t label, const intra::LabelEntry& e) {
          ++rep.checks;
          if (!claimed.contains({i, label})) {
            add(rep, Severity::kHard, "intra.label.orphan",
                "router " + std::to_string(i) + " holds label " +
                    std::to_string(label) + " for " + e.dest.to_string() +
                    " that no installed flow claims",
                obs::HopDomain::kIntra, i, e.dest);
          }
        });
  }
}

void Auditor::check_sessions(AuditReport& rep) {
  if (net_ == nullptr) return;
  const auto& dir = net_->directory();
  for (const auto& [id, s] : sessions_->sessions_) {
    if (s.gateway == graph::kInvalidNode) continue;  // not yet ticked
    ++rep.checks;
    const auto it = dir.find(id);
    // Both shapes self-heal on the session's next keepalive tick (retire /
    // rehome), so they are staleness, not corruption.
    if (it == dir.end()) {
      add(rep, Severity::kSoft, "session.orphan",
          "session tracks " + id.to_string() +
              " which has left the ring (retires on next tick)",
          obs::HopDomain::kIntra, static_cast<std::uint32_t>(s.gateway), id);
    } else if (it->second != s.gateway) {
      add(rep, Severity::kSoft, "session.stale-gateway",
          "session for " + id.to_string() + " last saw gateway " +
              std::to_string(s.gateway) + " but the ID now lives at " +
              std::to_string(it->second),
          obs::HopDomain::kIntra, static_cast<std::uint32_t>(s.gateway), id);
    }
  }
}

// ---------------------------------------------------------------------------
// interdomain

void Auditor::check_inter(AuditReport& rep) {
  const Severity racy = lossy() ? Severity::kSoft : Severity::kHard;
  std::string err;
  ++rep.checks;
  if (!inter_->verify_rings(&err)) {
    add(rep, racy, "inter.ring.order", err, obs::HopDomain::kInter, 0,
        kZeroId);
  }
  const auto& dir = inter_->directory_;
  const graph::AsTopology& work = inter_->work_;
  const std::size_t as_count = inter_->nodes_.size();

  for (const auto& [id, home] : dir) {
    ++rep.checks;
    if (static_cast<std::size_t>(home) >= as_count || !work.as_up(home)) {
      add(rep, Severity::kHard, "inter.dir.down-home",
          "directory maps " + id.to_string() + " to dark AS " +
              std::to_string(home),
          obs::HopDomain::kInter, static_cast<std::uint32_t>(home), id);
      continue;
    }
    if (!inter_->nodes_[home].hosted.contains(id)) {
      add(rep, Severity::kHard, "inter.dir.no-vnode",
          "directory maps " + id.to_string() + " to AS " +
              std::to_string(home) + " but no vnode is hosted there",
          obs::HopDomain::kInter, static_cast<std::uint32_t>(home), id);
    }
  }

  for (std::size_t ai = 0; ai < as_count; ++ai) {
    const auto a = static_cast<graph::AsIndex>(ai);
    if (!work.as_up(a)) continue;
    const auto& n = inter_->nodes_[ai];

    for (const auto& [id, vn] : n.hosted) {
      ++rep.checks;
      const auto it = dir.find(id);
      if (it == dir.end() || it->second != a) {
        add(rep, Severity::kHard, "inter.dir.unregistered",
            "AS " + std::to_string(a) + " hosts " + id.to_string() +
                (it == dir.end() ? " absent from the directory"
                                 : " which the directory maps to AS " +
                                       std::to_string(it->second)),
            obs::HopDomain::kInter, a, id);
      }
      // Every anchor the vnode claims must hold a matching ring
      // registration (a dropped registration message legitimately leaves
      // this dangling until repair() -- hence the lossy downgrade).
      for (const auto& [anchor, level] : vn.anchors) {
        ++rep.checks;
        if (static_cast<std::size_t>(anchor) >= as_count) continue;
        const auto& ring = inter_->nodes_[anchor].ring;
        const auto rit = ring.find(id);
        if (rit == ring.end()) {
          add(rep, racy, "inter.ring.missing",
              id.to_string() + " claims anchor AS " + std::to_string(anchor) +
                  " (level " + std::to_string(level) +
                  ") but is not in that ring registry",
              obs::HopDomain::kInter, static_cast<std::uint32_t>(anchor), id);
        } else if (rit->second != a) {
          add(rep, racy, "inter.ring.home",
              "ring at AS " + std::to_string(anchor) + " records " +
                  id.to_string() + " at AS " + std::to_string(rit->second) +
                  " but it is hosted at AS " + std::to_string(a),
              obs::HopDomain::kInter, static_cast<std::uint32_t>(anchor), id);
        }
      }
      for (const inter::LevelPointer& lp : vn.successors) {
        ++rep.checks;
        const auto t = dir.find(lp.target);
        if (t == dir.end()) {
          add(rep, racy, "inter.ptr.dangling",
              id.to_string() + " at AS " + std::to_string(a) +
                  " holds a level-" + std::to_string(lp.level) +
                  " pointer to departed ID " + lp.target.to_string(),
              obs::HopDomain::kInter, a, lp.target);
          continue;
        }
        if (t->second != lp.target_home) {
          add(rep, racy, "inter.ptr.home",
              id.to_string() + " at AS " + std::to_string(a) +
                  " points at " + lp.target.to_string() + " via AS " +
                  std::to_string(lp.target_home) + " but the ID lives at AS " +
                  std::to_string(t->second),
              obs::HopDomain::kInter, a, lp.target);
          continue;
        }
        if (!lp.route.empty() &&
            (lp.route.front() != a || lp.route.back() != lp.target_home)) {
          add(rep, racy, "inter.ptr.route",
              id.to_string() + " at AS " + std::to_string(a) +
                  " holds a source route that does not run owner->target (" +
                  std::to_string(lp.route.front()) + ".." +
                  std::to_string(lp.route.back()) + ")",
              obs::HopDomain::kInter, a, lp.target);
        }
      }
      for (const inter::Finger& f : vn.fingers) {
        ++rep.checks;
        const auto t = dir.find(f.target);
        // Finger back-refs make teardown notify finger owners, so a
        // dangling finger is real breakage fault-free.
        if (t == dir.end()) {
          add(rep, racy, "inter.finger.dangling",
              id.to_string() + " at AS " + std::to_string(a) +
                  " holds a finger to departed ID " + f.target.to_string(),
              obs::HopDomain::kInter, a, f.target);
        } else if (t->second != f.target_home) {
          add(rep, Severity::kSoft, "inter.finger.home",
              id.to_string() + " finger to " + f.target.to_string() +
                  " names AS " + std::to_string(f.target_home) +
                  " but the ID lives at AS " + std::to_string(t->second),
              obs::HopDomain::kInter, a, f.target);
        }
      }
    }

    for (const auto& [id, host] : n.ring) {
      ++rep.checks;
      const auto it = dir.find(id);
      if (it == dir.end()) {
        add(rep, racy, "inter.registry.dead-id",
            "ring registry at AS " + std::to_string(a) +
                " names departed ID " + id.to_string(),
            obs::HopDomain::kInter, a, id);
        continue;
      }
      if (it->second != host) {
        add(rep, racy, "inter.registry.home",
            "ring registry at AS " + std::to_string(a) + " records " +
                id.to_string() + " at AS " + std::to_string(host) +
                " but the directory says AS " + std::to_string(it->second),
            obs::HopDomain::kInter, a, id);
        continue;
      }
      if (static_cast<std::size_t>(host) >= as_count) continue;
      const auto hv = inter_->nodes_[host].hosted.find(id);
      if (hv == inter_->nodes_[host].hosted.end()) continue;  // dir.no-vnode
      ++rep.checks;
      const bool anchored = std::any_of(
          hv->second.anchors.begin(), hv->second.anchors.end(),
          [&](const std::pair<graph::AsIndex, unsigned>& p) {
            return p.first == a;
          });
      if (!anchored) {
        add(rep, racy, "inter.registry.unanchored",
            "ring registry at AS " + std::to_string(a) + " holds " +
                id.to_string() + " but the vnode does not list that anchor",
            obs::HopDomain::kInter, a, id);
      }
    }

    for (const auto& [id, home] : n.cache) {
      ++rep.checks;
      const auto it = dir.find(id);
      if (it == dir.end() || it->second != home) {
        add(rep, Severity::kSoft, "inter.cache.stale",
            "AS " + std::to_string(a) + " caches " + id.to_string() +
                " at AS " + std::to_string(home) +
                (it == dir.end() ? " (departed)" : " (rehomed)"),
            obs::HopDomain::kInter, a, id);
      }
    }
  }

  // Bloom soundness: a false negative breaks the peering shortcut silently
  // (the packet skips a subtree that does hold the ID), and no protocol rule
  // ever permits one -- hard even under loss.
  for (std::size_t hi = 0; hi < as_count; ++hi) {
    const auto home = static_cast<graph::AsIndex>(hi);
    if (!work.as_up(home)) continue;
    const auto& hosted = inter_->nodes_[hi].hosted;
    if (hosted.empty()) continue;
    const graph::UpHierarchy up = work.up_hierarchy(home, false);
    for (const graph::AsIndex a : up.nodes) {
      if (static_cast<std::size_t>(a) >= as_count) continue;
      if (inter_->nodes_[a].subtree_bloom == nullptr || !work.as_up(a)) {
        continue;
      }
      for (const auto& [id, vn] : hosted) {
        // Virtual-server IDs are pinned to the (dark) customer's hierarchy,
        // not the provider's, so the provider's ancestors owe them nothing.
        if (vn.virtual_server_for.has_value()) continue;
        ++rep.checks;
        if (!inter_->nodes_[a].subtree_bloom->may_contain(id)) {
          add(rep, Severity::kHard, "inter.bloom.negative",
              "subtree bloom at AS " + std::to_string(a) +
                  " reports false negative for " + id.to_string() +
                  " hosted in its subtree at AS " + std::to_string(home),
              obs::HopDomain::kInter, static_cast<std::uint32_t>(a), id);
        }
      }
    }
  }
}

}  // namespace rofl::audit
