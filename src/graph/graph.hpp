// graph.hpp -- generic undirected graph used by both topology models.
//
// Routers (intradomain) and ASes (interdomain) are vertices; links carry a
// propagation latency (milliseconds) and an IGP weight.  The structure
// supports the failure experiments: links and nodes can be marked down and
// later restored, and all path queries respect the up/down state.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

namespace rofl::graph {

using NodeIndex = std::uint32_t;
inline constexpr NodeIndex kInvalidNode =
    std::numeric_limits<NodeIndex>::max();

struct Edge {
  NodeIndex to = kInvalidNode;
  double latency_ms = 1.0;
  double weight = 1.0;
  bool up = true;
};

/// Result of a single-source shortest-path computation.
struct ShortestPaths {
  std::vector<double> dist;        // by IGP weight; +inf if unreachable
  std::vector<double> latency_ms;  // summed latency along chosen path
  std::vector<NodeIndex> parent;   // predecessor on the shortest-path tree
  std::vector<std::uint32_t> hops; // hop count along chosen path

  [[nodiscard]] bool reachable(NodeIndex v) const {
    return dist[v] != std::numeric_limits<double>::infinity();
  }
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t nodes) : adj_(nodes), node_up_(nodes, true) {}

  NodeIndex add_node();
  /// Adds an undirected edge; parallel edges are rejected (returns false).
  bool add_edge(NodeIndex u, NodeIndex v, double latency_ms = 1.0,
                double weight = 1.0);

  [[nodiscard]] std::size_t node_count() const { return adj_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  [[nodiscard]] const std::vector<Edge>& neighbors(NodeIndex u) const {
    return adj_[u];
  }
  [[nodiscard]] bool has_edge(NodeIndex u, NodeIndex v) const;

  /// Degree counting only live edges to live nodes.
  [[nodiscard]] std::size_t live_degree(NodeIndex u) const;

  // -- failure model -------------------------------------------------------
  void set_link_up(NodeIndex u, NodeIndex v, bool up);
  void set_node_up(NodeIndex u, bool up);
  [[nodiscard]] bool link_up(NodeIndex u, NodeIndex v) const;
  [[nodiscard]] bool node_up(NodeIndex u) const { return node_up_[u]; }

  // -- path queries (respect up/down state) --------------------------------
  [[nodiscard]] ShortestPaths dijkstra(NodeIndex src) const;
  /// Path src..dst along the shortest-path tree; empty if unreachable.
  [[nodiscard]] static std::vector<NodeIndex> extract_path(
      const ShortestPaths& sp, NodeIndex src, NodeIndex dst);

  /// Hop-count BFS distances from src (weight-agnostic).
  [[nodiscard]] std::vector<std::uint32_t> bfs_hops(NodeIndex src) const;

  /// True if all live nodes are mutually reachable over live links.
  [[nodiscard]] bool connected() const;

  /// Connected-component label per node (kInvalidNode marker => node down).
  [[nodiscard]] std::vector<NodeIndex> components() const;

  /// Longest shortest-path hop count over a sample of sources (exact when
  /// sample >= node_count).
  [[nodiscard]] std::uint32_t diameter_hops(std::size_t sample_sources = 32) const;

 private:
  std::vector<std::vector<Edge>> adj_;
  std::vector<bool> node_up_;
  std::size_t edge_count_ = 0;
};

}  // namespace rofl::graph
