// Advanced interdomain scenarios: registry hygiene under churn, forced
// bloom false positives, provider-forced joins under failure, finger-table
// properties, the redundant-lookup optimization, and Canon state bounds.
#include <gtest/gtest.h>

#include <set>

#include "interdomain/inter_network.hpp"
#include "util/stats.hpp"

namespace rofl::inter {
namespace {

using graph::AsRel;
using graph::AsTopology;

AsTopology three_tier() {
  //        0 ~ 1              tier-1 peering
  //       / \    \ .
  //      2   3    4           transits (3 also peers with 4)
  //     /|   |\    \ .
  //    5 6   7 8    9         stubs; 8 is multihomed under 3 and 4
  AsTopology t = AsTopology::from_links(
      10, {{2, 0, AsRel::kProvider}, {3, 0, AsRel::kProvider},
           {4, 1, AsRel::kProvider}, {5, 2, AsRel::kProvider},
           {6, 2, AsRel::kProvider}, {7, 3, AsRel::kProvider},
           {8, 3, AsRel::kProvider}, {8, 4, AsRel::kProvider},
           {9, 4, AsRel::kProvider}, {0, 1, AsRel::kPeer},
           {3, 4, AsRel::kPeer}});
  for (graph::AsIndex a : {5u, 6u, 7u, 8u, 9u}) t.set_host_count(a, 50);
  return t;
}

struct Net {
  AsTopology topo;
  std::unique_ptr<InterNetwork> net;

  explicit Net(InterConfig cfg = {}, std::uint64_t seed = 808)
      : topo(three_tier()) {
    net = std::make_unique<InterNetwork>(&topo, cfg, seed);
  }

  std::vector<NodeId> populate(std::size_t per_stub,
                               JoinStrategy s = JoinStrategy::kRecursiveMultihomed) {
    std::vector<NodeId> ids;
    for (graph::AsIndex stub : {5u, 6u, 7u, 8u, 9u}) {
      for (std::size_t i = 0; i < per_stub; ++i) {
        Identity ident = Identity::generate(net->rng());
        if (net->join_host(ident, stub, s).ok) ids.push_back(ident.id());
      }
    }
    return ids;
  }
};

TEST(InterAdvanced, RegistriesCleanAfterChurn) {
  Net t;
  auto ids = t.populate(6);
  Rng chooser(4);
  // Half the ids leave.
  std::set<NodeId> gone;
  for (std::size_t i = 0; i < ids.size() / 2; ++i) {
    const NodeId victim = ids[chooser.index(ids.size())];
    if (gone.contains(victim)) continue;
    (void)t.net->leave_host(victim);
    gone.insert(victim);
  }
  // A departed ID must be gone from the directory and unroutable.
  for (const NodeId& victim : gone) {
    EXPECT_EQ(t.net->home_of(victim), std::nullopt);
    EXPECT_FALSE(t.net->route(5, victim).delivered);
  }
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
  for (const NodeId& id : ids) {
    if (gone.contains(id)) continue;
    EXPECT_TRUE(t.net->route(5, id).delivered);
  }
}

TEST(InterAdvanced, BloomFalsePositiveBacktracks) {
  InterConfig cfg;
  cfg.peering_mode = PeeringMode::kBloom;
  cfg.bloom_bits = 64;  // tiny filters saturate -> false positives guaranteed
  cfg.bloom_hashes = 2;
  Net t(cfg, 99);
  const auto ids = t.populate(6);
  std::uint64_t backtracks = 0;
  // Route from every stub; sources under AS 3 (which peers with AS 4) pass
  // a peering point whose saturated bloom lies about destinations homed
  // elsewhere.
  for (const graph::AsIndex src : {5u, 6u, 7u, 8u, 9u}) {
    for (const NodeId& id : ids) {
      const auto rs = t.net->route(src, id);
      EXPECT_TRUE(rs.delivered) << id;  // correctness despite lies
      backtracks += rs.backtracks;
    }
  }
  // Saturated filters claim everything; peering probes into the wrong
  // subtree must have happened and been recovered from.
  EXPECT_GT(backtracks, 0u);
}

TEST(InterAdvanced, DirectPeeringShortcutUnderBloom) {
  // 7 (under 3) -> 9 (under 4): with the 3~4 peering link and blooms, the
  // packet should cross directly at level 1 instead of climbing to the
  // tier-1s.
  InterConfig cfg;
  cfg.peering_mode = PeeringMode::kBloom;
  Net t(cfg, 77);
  const auto ids = t.populate(5);
  for (const NodeId& id : ids) {
    if (t.net->home_of(id) != 9u) continue;
    std::vector<graph::AsIndex> trace;
    const auto rs = t.net->route(7, id, &trace);
    ASSERT_TRUE(rs.delivered);
    EXPECT_GT(rs.peer_links_used, 0u);
    // Never climbed to tier-1.
    for (const auto a : trace) {
      EXPECT_NE(a, 0u);
      EXPECT_NE(a, 1u);
    }
  }
}

TEST(InterAdvanced, ViaProviderJoinSurvivesReanchor) {
  Net t;
  t.populate(4);
  // A TE-style ID at multihomed stub 8, forced via provider 4.
  Rng g(5);
  const Identity gid = Identity::generate(g);
  const NodeId id = gid.id();
  ASSERT_TRUE(t.net->join_group_id(id, 8, JoinStrategy::kSingleHomed, 4u).ok);
  // An unrelated link fails and recovers; the forced branch must persist.
  (void)t.net->fail_link(5, 2);
  (void)t.net->restore_link(5, 2);
  const InterVNode* vn = t.net->find_vnode(id);
  ASSERT_NE(vn, nullptr);
  EXPECT_EQ(vn->via_provider, 4u);
  // Anchors still follow the forced chain (4, then 1, ...).
  ASSERT_GE(vn->anchors.size(), 2u);
  EXPECT_EQ(vn->anchors[0].first, 8u);
  EXPECT_EQ(vn->anchors[1].first, 4u);
  EXPECT_TRUE(t.net->route(5, id).delivered);
}

TEST(InterAdvanced, ForcedProviderFailureReanchorsToSurvivor) {
  Net t;
  t.populate(4);
  Rng g(6);
  const Identity gid = Identity::generate(g);
  const NodeId id = gid.id();
  ASSERT_TRUE(t.net->join_group_id(id, 8, JoinStrategy::kSingleHomed, 4u).ok);
  // The forced access link dies: the ID re-anchors over the other provider
  // (3) and stays reachable.
  (void)t.net->fail_link(8, 4);
  const auto rs = t.net->route(5, id);
  EXPECT_TRUE(rs.delivered);
  const InterVNode* vn = t.net->find_vnode(id);
  ASSERT_NE(vn, nullptr);
  ASSERT_GE(vn->anchors.size(), 2u);
  EXPECT_EQ(vn->anchors[1].first, 3u);
}

TEST(InterAdvanced, FingerTableProperties) {
  InterConfig cfg;
  cfg.fingers_per_id = 48;
  Net t(cfg, 33);
  const auto ids = t.populate(8);
  for (const NodeId& id : ids) {
    const InterVNode* vn = t.net->find_vnode(id);
    ASSERT_NE(vn, nullptr);
    EXPECT_LE(vn->fingers.size(), 48u);
    for (const Finger& f : vn->fingers) {
      // Prefix property: target matches the owner's first prefix_len bits
      // and differs at the digit.
      EXPECT_GE(f.target.common_prefix_len(id), f.prefix_len);
      EXPECT_EQ(f.target.digit(f.prefix_len, t.net->config().finger_digit_bits),
                f.digit);
      EXPECT_NE(f.target, id);
      // Anchored at one of the owner's joined levels (isolation-safe) and
      // the target registered in that ring.
      const bool anchored = std::any_of(
          vn->anchors.begin(), vn->anchors.end(),
          [&](const auto& a) { return a.first == f.anchor; });
      EXPECT_TRUE(anchored);
      // Route starts at home, peaks at the anchor, ends at the target home.
      ASSERT_FALSE(f.route.empty());
      EXPECT_EQ(f.route.front(), vn->home);
      EXPECT_EQ(f.route.back(), f.target_home);
    }
  }
}

TEST(InterAdvanced, RedundantLookupOptimizationCutsJoinCost) {
  // Section 6.3: eliminating per-level lookups that resolve to the same
  // successor makes multihomed joins barely costlier than single-homed.
  InterConfig on;
  on.prune_redundant_lookups = true;
  InterConfig off;
  off.prune_redundant_lookups = false;
  Net t_on(on, 55);
  Net t_off(off, 55);
  t_on.populate(3);
  t_off.populate(3);
  SampleSet cost_on, cost_off;
  for (int i = 0; i < 20; ++i) {
    Identity a = Identity::generate(t_on.net->rng());
    Identity b = Identity::generate(t_off.net->rng());
    const auto ja =
        t_on.net->join_host(a, 8, JoinStrategy::kRecursiveMultihomed);
    const auto jb =
        t_off.net->join_host(b, 8, JoinStrategy::kRecursiveMultihomed);
    ASSERT_TRUE(ja.ok && jb.ok);
    cost_on.add(static_cast<double>(ja.messages));
    cost_off.add(static_cast<double>(jb.messages));
  }
  EXPECT_LT(cost_on.mean(), cost_off.mean());
}

TEST(InterAdvanced, PointerCountLogarithmicSweep) {
  // Canon's bound: expected pointers per ID is O(log n).  Check that the
  // per-ID pointer count grows far slower than n.
  double per_id_small = 0.0;
  double per_id_big = 0.0;
  {
    Net t({}, 21);
    const auto ids = t.populate(2);
    per_id_small = static_cast<double>(t.net->total_pointer_count()) /
                   static_cast<double>(ids.size());
  }
  {
    Net t({}, 22);
    const auto ids = t.populate(24);  // 12x the population
    per_id_big = static_cast<double>(t.net->total_pointer_count()) /
                 static_cast<double>(ids.size());
  }
  EXPECT_LT(per_id_big, per_id_small * 3.0);
}

TEST(InterAdvanced, EphemeralIdsRoutableFromEverywhere) {
  Net t;
  t.populate(5);
  std::vector<NodeId> ephemerals;
  for (graph::AsIndex stub : {5u, 7u, 9u}) {
    Identity ident = Identity::generate(t.net->rng());
    ASSERT_TRUE(t.net->join_host(ident, stub, JoinStrategy::kEphemeral).ok);
    ephemerals.push_back(ident.id());
  }
  for (const NodeId& id : ephemerals) {
    for (graph::AsIndex src : {5u, 6u, 7u, 8u, 9u}) {
      EXPECT_TRUE(t.net->route(src, id).delivered)
          << "eph " << id << " from " << src;
    }
  }
}

TEST(InterAdvanced, MixedStrategiesCoexist) {
  Net t;
  std::vector<NodeId> ids;
  const JoinStrategy strategies[] = {
      JoinStrategy::kEphemeral, JoinStrategy::kSingleHomed,
      JoinStrategy::kRecursiveMultihomed, JoinStrategy::kPeering};
  int k = 0;
  for (graph::AsIndex stub : {5u, 6u, 7u, 8u, 9u}) {
    for (int i = 0; i < 6; ++i) {
      Identity ident = Identity::generate(t.net->rng());
      if (t.net->join_host(ident, stub, strategies[k++ % 4]).ok) {
        ids.push_back(ident.id());
      }
    }
  }
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
  for (const NodeId& id : ids) {
    EXPECT_TRUE(t.net->route(6, id).delivered) << id;
  }
}

TEST(InterAdvanced, StateAccountingMonotone) {
  Net t;
  const double empty = t.net->mean_state_bits_per_as();
  t.populate(4);
  const double after = t.net->mean_state_bits_per_as();
  EXPECT_GT(after, empty);
  EXPECT_GT(t.net->total_pointer_count(), 0u);
}

TEST(InterAdvanced, WholeTransitFailureHealsOnRestore) {
  Net t;
  const auto ids = t.populate(5);
  // Transit AS 2 dies: stubs 5 and 6 lose their only provider and are cut
  // off; everyone else keeps working.
  (void)t.net->fail_as(2);
  for (const NodeId& id : ids) {
    const auto home = t.net->home_of(id);
    if (!home.has_value()) continue;
    if (*home == 5u || *home == 6u) continue;  // stranded island
    EXPECT_TRUE(t.net->route(7, id).delivered) << id;
  }
  (void)t.net->restore_as(2);
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
  for (const NodeId& id : ids) {
    if (!t.net->home_of(id).has_value()) continue;
    EXPECT_TRUE(t.net->route(7, id).delivered) << id;
  }
}

}  // namespace
}  // namespace rofl::inter
