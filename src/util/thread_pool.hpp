// thread_pool.hpp -- persistent worker pool for deterministic fan-out.
//
// Used by the link-state substrate to recompute all-routers SPF in parallel
// after a topology change.  The pool only offers a blocking parallel_for:
// workers pull indices from a shared atomic counter (dynamic scheduling),
// and the call returns once every index has been processed.  Determinism
// contract: callers must make iteration `i` write only to slot `i` of a
// pre-sized output -- then the result is bit-identical regardless of thread
// count or scheduling, and a fixed seed reproduces a run exactly.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rofl::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers.  0 is allowed: parallel_for then runs inline
  /// on the calling thread (the deterministic serial reference path).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(0) .. fn(n-1), each exactly once, across the workers plus the
  /// calling thread; blocks until all calls have returned.  Not reentrant.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// A sensible default worker count for background recomputation: leaves a
  /// core for the event loop, capped so wide machines don't oversubscribe
  /// the small SPF jobs.
  [[nodiscard]] static std::size_t default_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::size_t next_index_ = 0;
  std::size_t in_flight_ = 0;   // indices handed out but not yet completed
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace rofl::util
