// router.hpp -- the live driver over the sans-I/O protocol core.
//
// LiveRouter no longer contains protocol logic.  The greedy locate walk,
// join/splice with idempotent re-reply, retried pointer installs, data-plane
// lookups, and clean departure all live in proto::Core (src/proto/core.hpp),
// the same state machine every substrate drives.  What remains here is the
// driver's half of the proto::Env contract:
//
//   * own a Transport and a sim::FaultInjector, pump delayed sends, drain
//     received datagrams, and feed kData frames to Core::on_frame (harness
//     frames -- the multi-process mesh's lifecycle signaling -- are split
//     off for the mesh driver to consume);
//   * pass the clock in: the loopback mesh steps on virtual milliseconds,
//     the UDP mesh on wall milliseconds, and the core cannot tell the
//     difference;
//   * surface the transport pump's internals (dedup drops, RX-ring
//     overflow, token-bucket stalls...) as net.* counters in the registry,
//     sampled every step so live timelines and metrics dumps see them while
//     the run is still in flight, not only at finish();
//   * forward the core's retry telemetry to the fault injector so fault
//     accounting matches the simulator's.
//
// Threading is unchanged: a LiveRouter is single-threaded -- all calls from
// one driver thread, with step(now_ms) doing one pump/drain/tick pass.
// DESIGN.md section 17 documents the layering.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <ostream>

#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "proto/core.hpp"
#include "sim/faults.hpp"
#include "util/identity.hpp"
#include "util/node_id.hpp"

namespace rofl::net {

/// One ring-resident virtual node homed on this router (the core's own).
using Vnode = proto::Vnode;

struct LiveRouterConfig {
  RouterId self = 0;
  RouterId bootstrap = 0;          ///< where fresh locate walks start
  std::uint32_t fingers = 256;     ///< CompactFingers per JoinRequest (6.3)
  std::uint32_t max_outstanding = 8;  ///< concurrent joins per gateway
  sim::RetryPolicy retry{/*max_attempts=*/10, /*timeout_ms=*/40.0,
                         /*backoff=*/1.6, /*max_timeout_ms=*/500.0};
  /// Netem-style impairment applied at this router's socket boundary.
  sim::NetworkConditions conditions;
  std::uint64_t fault_seed = 1;
  /// Timeline window width in ms; 0 disables the timeline.
  double timeline_window_ms = 0.0;
};

class LiveRouter final : private proto::Env {
 public:
  /// `transport` must outlive the router; the router installs its own
  /// FaultInjector (built from cfg.conditions) on it.
  LiveRouter(LiveRouterConfig cfg, Transport* transport);

  /// Installs the bootstrap identity with self-looped pointers -- the one-node
  /// ring every walk can terminate against.  Call on exactly one router.
  void seed(const Identity& first) { core_->seed(first); }

  /// Queues one host identity this gateway will join into the ring.
  void enqueue_join(Identity ident) { core_->enqueue_join(std::move(ident)); }

  /// Queues one data-plane lookup: a Locate probe walked over the live ring.
  void enqueue_lookup(const NodeId& target) { core_->enqueue_lookup(target); }

  /// Starts a clean departure (see proto::Core::begin_leave).  Call only
  /// after the mesh has converged.
  void begin_leave(double now_ms) { core_->begin_leave(now_ms); }

  /// One event-loop pass: flush delayed sends, drain received frames, feed
  /// the core's tick (queued work + retry timers), sample transport stats.
  void step(double now_ms);

  /// True when no queued or in-flight protocol work remains.
  [[nodiscard]] bool quiescent() const { return core_->quiescent(); }

  /// True once begin_leave() finished: every relink acked, vnodes dropped.
  [[nodiscard]] bool departed() const { return core_->departed(); }

  [[nodiscard]] std::uint64_t joins_completed() const {
    return core_->joins_completed();
  }
  [[nodiscard]] std::uint64_t joins_queued_total() const {
    return core_->joins_queued_total();
  }
  [[nodiscard]] std::uint64_t lookups_completed() const {
    return core_->lookups_completed();
  }
  [[nodiscard]] std::uint64_t lookups_hit() const {
    return core_->lookups_hit();
  }

  /// Harness (non-kData) frames received, for the mesh driver to consume.
  bool poll_harness(RxFrame& out);

  [[nodiscard]] const std::map<NodeId, Vnode>& vnodes() const {
    return core_->vnodes();
  }
  [[nodiscard]] obs::Registry& registry() { return registry_; }
  [[nodiscard]] obs::Timeline* timeline() { return timeline_.get(); }
  [[nodiscard]] Transport& transport() { return *transport_; }

  /// End-of-run: final transport-stats fold and timeline flush.  Call once,
  /// after traffic has stopped.
  void finish(double now_ms);

  /// Diagnostic snapshot of everything that keeps quiescent() false.  The
  /// mesh drivers print this when a run misses its deadline and
  /// ROFL_NET_DEBUG=1 is set.
  void debug_dump(std::ostream& os) const { core_->debug_dump(os); }

 private:
  // proto::Env -- the driver's half of the sans-I/O seam.
  void send(RouterId dst, std::vector<std::uint8_t> frame,
            double now_ms) override {
    transport_->send(dst, PumpOp::kData, 0, frame, now_ms);
  }
  obs::Registry& metrics() override { return registry_; }
  void note_retry() override { injector_->note_retry(); }
  void note_retry_exhausted() override { injector_->note_retry_exhausted(); }

  /// Copies the transport pump's counters into the registry (live view).
  void sample_transport_stats();

  LiveRouterConfig cfg_;
  Transport* transport_;
  obs::Registry registry_;
  /// The protocol state machine; optional only because the transport
  /// counters must register before the core registers its own (registration
  /// order is the cross-router merge contract).
  std::optional<proto::Core> core_;
  std::unique_ptr<sim::FaultInjector> injector_;
  std::unique_ptr<obs::Timeline> timeline_;

  std::deque<RxFrame> harness_rx_;

  // Transport counters, registered ahead of the core's protocol counters.
  obs::MetricId tx_frames_ = 0, tx_bytes_ = 0, rx_frames_ = 0, rx_bytes_ = 0;
  obs::MetricId dedup_dropped_ = 0, ring_dropped_ = 0;
  obs::MetricId malformed_ = 0, throttle_waits_ = 0;
};

}  // namespace rofl::net
