// Tests for the section-5 extensions: anycast, multicast, capabilities /
// default-off, endpoint negotiation, and TE suffixes.
#include <gtest/gtest.h>

#include "ext/anycast.hpp"
#include "ext/capability.hpp"
#include "ext/group_id.hpp"
#include "ext/multicast.hpp"
#include "ext/traffic_control.hpp"

namespace rofl::ext {
namespace {

struct IntraFixture {
  graph::IspTopology topo;
  std::unique_ptr<intra::Network> net;

  explicit IntraFixture(std::uint64_t seed = 21) {
    Rng trng(seed);
    graph::IspParams p;
    p.router_count = 30;
    p.pop_count = 5;
    topo = graph::make_isp_topology(p, trng);
    net = std::make_unique<intra::Network>(&topo, intra::Config{}, seed + 1);
    for (int i = 0; i < 60; ++i) {
      EXPECT_TRUE(net->join_random_host().ok);
    }
  }
};

TEST(GroupId, SuffixLayout) {
  Rng rng(5);
  const GroupId g(Identity::generate(rng));
  EXPECT_TRUE(g.contains(g.base()));
  EXPECT_TRUE(g.contains(g.high()));
  EXPECT_TRUE(g.contains(g.with_suffix(12345)));
  EXPECT_LT(g.base(), g.with_suffix(1));
  EXPECT_LT(g.with_suffix(1), g.with_suffix(2));
  EXPECT_LE(g.with_suffix(0xFFFFFFFFu), g.high());
  // Prefix integrity: suffix never bleeds into the group bits.
  EXPECT_EQ(g.with_suffix(0xFFFFFFFFu).common_prefix_len(g.base()),
            kGroupPrefixBits);
}

TEST(GroupId, DistinctGroupsDisjoint) {
  Rng rng(6);
  const GroupId a(Identity::generate(rng));
  const GroupId b(Identity::generate(rng));
  EXPECT_FALSE(a.contains(b.base()));
  EXPECT_FALSE(b.contains(a.with_suffix(9)));
}

TEST(Anycast, ReachesSomeMember) {
  IntraFixture f;
  const GroupId g(Identity::generate(f.net->rng()));
  ASSERT_TRUE(anycast_join(*f.net, g, 10, 2).ok);
  ASSERT_TRUE(anycast_join(*f.net, g, 20, 17).ok);
  ASSERT_TRUE(anycast_join(*f.net, g, 30, 28).ok);
  for (graph::NodeIndex src = 0; src < f.net->router_count(); src += 3) {
    const AnycastResult r = anycast_route(*f.net, src, g);
    ASSERT_TRUE(r.delivered) << "from " << src;
    EXPECT_TRUE(g.contains(r.member));
  }
}

TEST(Anycast, MemberRouterAbsorbsLocally) {
  IntraFixture f;
  const GroupId g(Identity::generate(f.net->rng()));
  ASSERT_TRUE(anycast_join(*f.net, g, 1, 4).ok);
  const AnycastResult r = anycast_route(*f.net, 4, g);
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.physical_hops, 0u);
}

TEST(Anycast, NoMembersNoDelivery) {
  IntraFixture f;
  const GroupId g(Identity::generate(f.net->rng()));
  EXPECT_FALSE(anycast_route(*f.net, 0, g).delivered);
}

TEST(Anycast, JoinRequiresGroupKey) {
  IntraFixture f;
  const GroupId g(Identity::generate(f.net->rng()));
  // A forged group (different key, same suffix space) cannot take over g's
  // IDs: its joins land in its own prefix range.
  const GroupId forged(Identity::generate(f.net->rng()));
  ASSERT_TRUE(anycast_join(*f.net, forged, 1, 3).ok);
  EXPECT_FALSE(anycast_route(*f.net, 0, g).delivered);
}

TEST(Multicast, TreeCoversMembersAndVerifies) {
  IntraFixture f;
  const GroupId g(Identity::generate(f.net->rng()));
  MulticastGroup mc(g);
  ASSERT_TRUE(mc.join(*f.net, 3, 1).ok);
  ASSERT_TRUE(mc.join(*f.net, 15, 2).ok);
  ASSERT_TRUE(mc.join(*f.net, 27, 3).ok);
  ASSERT_TRUE(mc.join(*f.net, 9, 4).ok);
  EXPECT_TRUE(mc.verify_tree());
  EXPECT_EQ(mc.member_routers().size(), 4u);

  const auto stats = mc.send(*f.net, 3);
  EXPECT_EQ(stats.members_reached, 4u);
  EXPECT_GE(stats.copies, 3u);  // at least tree-spanning copies
  // Copies bounded by tree size (each tree link carries at most one copy).
  EXPECT_LT(stats.copies, 2 * f.net->router_count());
}

TEST(Multicast, SendFromEveryMember) {
  IntraFixture f;
  const GroupId g(Identity::generate(f.net->rng()));
  MulticastGroup mc(g);
  for (graph::NodeIndex gw : {1u, 8u, 22u}) {
    ASSERT_TRUE(mc.join(*f.net, gw, gw).ok);
  }
  for (graph::NodeIndex gw : {1u, 8u, 22u}) {
    EXPECT_EQ(mc.send(*f.net, gw).members_reached, 3u);
  }
}

TEST(Multicast, NonMemberCannotSend) {
  IntraFixture f;
  const GroupId g(Identity::generate(f.net->rng()));
  MulticastGroup mc(g);
  ASSERT_TRUE(mc.join(*f.net, 2, 1).ok);
  EXPECT_EQ(mc.send(*f.net, 5).members_reached, 0u);
}

TEST(Multicast, LeavePrunesBranches) {
  IntraFixture f;
  const GroupId g(Identity::generate(f.net->rng()));
  MulticastGroup mc(g);
  ASSERT_TRUE(mc.join(*f.net, 3, 1).ok);
  ASSERT_TRUE(mc.join(*f.net, 15, 2).ok);
  ASSERT_TRUE(mc.join(*f.net, 27, 3).ok);
  mc.leave(*f.net, 15);
  EXPECT_TRUE(mc.verify_tree());
  EXPECT_EQ(mc.send(*f.net, 3).members_reached, 2u);
}

TEST(Capability, IssueAndValidate) {
  Rng rng(31);
  const Identity host = Identity::generate(rng);
  const Identity client = Identity::generate(rng);
  CapabilityIssuer issuer(host);
  const Capability cap = issuer.issue(client.id(), /*now=*/100.0,
                                      /*lifetime=*/50.0);
  EXPECT_TRUE(issuer.validate(cap, client.id(), 120.0));
  EXPECT_FALSE(issuer.validate(cap, client.id(), 151.0));  // expired
  Rng rng2(32);
  const Identity other = Identity::generate(rng2);
  EXPECT_FALSE(issuer.validate(cap, other.id(), 120.0));  // wrong source
}

TEST(Capability, TamperedTokenRejected) {
  Rng rng(33);
  const Identity host = Identity::generate(rng);
  const Identity client = Identity::generate(rng);
  CapabilityIssuer issuer(host);
  Capability cap = issuer.issue(client.id(), 0.0, 1000.0);
  cap.expiry_ms += 1000.0;  // extend lifetime without re-minting
  EXPECT_FALSE(issuer.validate(cap, client.id(), 500.0));
  Capability cap2 = issuer.issue(client.id(), 0.0, 1000.0);
  cap2.token[0] ^= 0xFF;
  EXPECT_FALSE(issuer.validate(cap2, client.id(), 500.0));
}

TEST(Capability, DefaultOffDropsUnregisteredAndUncapable) {
  IntraFixture f;
  const Identity server = Identity::generate(f.net->rng());
  const Identity client = Identity::generate(f.net->rng());
  ASSERT_TRUE(f.net->join_host(server, 7).ok);
  CapabilityIssuer issuer(server);
  DefaultOffFilter filter;

  // Unregistered destination: dropped.
  EXPECT_FALSE(filter
                   .guarded_route(*f.net, 0, client.id(), server.id(), nullptr)
                   .delivered);
  filter.register_host(server.id());
  // Registered, no protection: flows.
  EXPECT_TRUE(filter
                  .guarded_route(*f.net, 0, client.id(), server.id(), nullptr)
                  .delivered);
  // Default-off: requires a valid capability.
  filter.protect(server.id(), &issuer);
  EXPECT_FALSE(filter
                   .guarded_route(*f.net, 0, client.id(), server.id(), nullptr)
                   .delivered);
  const Capability cap =
      issuer.issue(client.id(), f.net->simulator().now_ms(), 1e6);
  EXPECT_TRUE(filter
                  .guarded_route(*f.net, 0, client.id(), server.id(), &cap)
                  .delivered);
}

TEST(Capability, PathComplianceChecksAses) {
  PathCapability cap;
  cap.allowed_ases = {1, 2, 3};
  EXPECT_TRUE(path_compliant(cap, {1, 3}));
  EXPECT_FALSE(path_compliant(cap, {1, 4}));
  EXPECT_TRUE(path_compliant(cap, {}));
}

// -- interdomain traffic control ---------------------------------------------

struct InterFixture {
  graph::AsTopology topo;
  std::unique_ptr<inter::InterNetwork> net;
  std::vector<NodeId> ids;

  InterFixture() {
    using graph::AsRel;
    topo = graph::AsTopology::from_links(
        8, {{2, 0, AsRel::kProvider},
            {3, 0, AsRel::kProvider},
            {4, 1, AsRel::kProvider},
            {5, 2, AsRel::kProvider},
            {6, 2, AsRel::kProvider},
            {7, 3, AsRel::kProvider},
            {0, 1, AsRel::kPeer}});
    net = std::make_unique<inter::InterNetwork>(&topo, inter::InterConfig{}, 77);
    for (graph::AsIndex leaf : {5u, 6u, 7u, 4u}) {
      for (int i = 0; i < 5; ++i) {
        Identity ident = Identity::generate(net->rng());
        EXPECT_TRUE(net->join_host(ident, leaf,
                                   inter::JoinStrategy::kRecursiveMultihomed)
                        .ok);
        ids.push_back(ident.id());
      }
    }
  }
};

TEST(TrafficControl, NegotiableSetIsUpHierarchyIntersection) {
  InterFixture f;
  const auto set57 = negotiable_ases(*f.net, 5, 7);
  // Common ancestors of 5 and 7: AS 0 plus the tier-1 virtual AS.
  EXPECT_TRUE(std::find(set57.begin(), set57.end(), 0u) != set57.end());
  const auto set56 = negotiable_ases(*f.net, 5, 6);
  EXPECT_TRUE(std::find(set56.begin(), set56.end(), 2u) != set56.end());
}

TEST(TrafficControl, NegotiatedRouteCompliance) {
  InterFixture f;
  for (const NodeId& dest : f.ids) {
    if (f.net->home_of(dest) != 6u) continue;
    // Negotiate the full candidate set: always compliant.
    const auto allowed = negotiable_ases(*f.net, 5, 6);
    const auto r = route_negotiated(*f.net, 5, dest, allowed);
    ASSERT_TRUE(r.stats.delivered);
    EXPECT_TRUE(r.compliant);
    // Empty negotiated set: non-compliant unless the packet never transits.
    const auto r2 = route_negotiated(*f.net, 5, dest, {});
    ASSERT_TRUE(r2.stats.delivered);
    EXPECT_FALSE(r2.compliant);
  }
}

TEST(TrafficControl, TeSuffixesJoinPerProvider) {
  using graph::AsRel;
  // Multihomed stub 4 with providers 2 and 3.
  auto topo = graph::AsTopology::from_links(
      6, {{2, 0, AsRel::kProvider},
          {3, 0, AsRel::kProvider},
          {4, 2, AsRel::kProvider},
          {4, 3, AsRel::kProvider},
          {5, 2, AsRel::kProvider}});
  inter::InterNetwork net(&topo, {}, 13);
  for (int i = 0; i < 5; ++i) {
    Identity ident = Identity::generate(net.rng());
    ASSERT_TRUE(
        net.join_host(ident, 5, inter::JoinStrategy::kRecursiveMultihomed).ok);
  }
  const GroupId host_group(Identity::generate(net.rng()));
  const TeBinding binding = te_multihomed_join(net, host_group, 4);
  ASSERT_EQ(binding.providers.size(), 2u);
  ASSERT_EQ(binding.ids.size(), 2u);
  EXPECT_GT(binding.join_messages, 0u);

  // All TE ids are reachable.  With several suffixes live, steering is "some
  // degree of control" (section 4.2): a packet may be absorbed at the home
  // AS after following an adjacent suffix's pointer, so per-suffix entry
  // links are only asserted in the isolated check below.
  for (std::size_t k = 0; k < binding.ids.size(); ++k) {
    if (binding.ids[k] == NodeId{}) continue;
    std::vector<graph::AsIndex> trace;
    const auto rs = net.route(5, binding.ids[k], &trace);
    ASSERT_TRUE(rs.delivered) << "suffix " << k;
  }
}

TEST(TrafficControl, SingleTeSuffixSteersItsAccessLink) {
  using graph::AsRel;
  auto topo = graph::AsTopology::from_links(
      6, {{2, 0, AsRel::kProvider},
          {3, 0, AsRel::kProvider},
          {4, 2, AsRel::kProvider},
          {4, 3, AsRel::kProvider},
          {5, 2, AsRel::kProvider}});
  // One network per forced provider: with a single live suffix, incoming
  // traffic must descend the designated access link.
  for (const graph::AsIndex via : {2u, 3u}) {
    inter::InterNetwork net(&topo, {}, 51);
    for (int i = 0; i < 5; ++i) {
      Identity ident = Identity::generate(net.rng());
      ASSERT_TRUE(
          net.join_host(ident, 5, inter::JoinStrategy::kRecursiveMultihomed)
              .ok);
    }
    const GroupId host_group(Identity::generate(net.rng()));
    const NodeId id = host_group.with_suffix(7);
    ASSERT_TRUE(
        net.join_group_id(id, 4, inter::JoinStrategy::kSingleHomed, via).ok);
    std::vector<graph::AsIndex> trace;
    const auto rs = net.route(5, id, &trace);
    ASSERT_TRUE(rs.delivered) << "via " << via;
    // The hop into AS 4 must come from `via`.
    bool entered_via = false;
    for (std::size_t i = 1; i < trace.size(); ++i) {
      if (trace[i] == 4u && trace[i - 1] == via) entered_via = true;
    }
    EXPECT_TRUE(entered_via) << "entered AS 4 around provider " << via;
  }
}

}  // namespace
}  // namespace rofl::ext
