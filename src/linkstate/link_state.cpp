#include "linkstate/link_state.hpp"

#include <cassert>
#include <chrono>

#include "wire/messages.hpp"

namespace rofl::linkstate {

LinkStateMap::LinkStateMap(graph::Graph* g, sim::Simulator* sim)
    : graph_(g), sim_(sim),
      spf_threads_(util::ThreadPool::default_threads()) {
  assert(g != nullptr);
  spf_cache_.resize(g->node_count());
  if (sim_ != nullptr) {
    obs::Registry& m = sim_->metrics();
    spf_runs_id_ = m.counter("linkstate.spf.runs");
    spf_recompute_ms_id_ = m.histogram(
        "linkstate.spf.recompute_ms",
        obs::Histogram::exponential_bounds(0.01, 2.0, 16));
    flood_fanout_id_ = m.histogram(
        "linkstate.flood.fanout",
        obs::Histogram::exponential_bounds(4.0, 2.0, 14));
    floods_id_ = m.counter("linkstate.floods");
    topo_events_id_ = m.counter("linkstate.topology_events");
  }
}

void LinkStateMap::refresh_cache_epoch() const {
  if (spf_cache_version_ != version_) {
    for (auto& entry : spf_cache_) entry.reset();
    spf_cache_.resize(graph_->node_count());
    spf_cache_version_ = version_;
  }
}

const graph::ShortestPaths& LinkStateMap::spf(NodeIndex src) const {
  refresh_cache_epoch();
  if (!spf_cache_[src].has_value()) {
    spf_cache_[src] = graph_->dijkstra(src);
    if (sim_ != nullptr) sim_->metrics().add(spf_runs_id_);
  }
  return *spf_cache_[src];
}

void LinkStateMap::set_spf_threads(std::size_t threads) {
  if (threads == spf_threads_) return;
  spf_threads_ = threads;
  pool_.reset();  // rebuilt at the new width on next recompute
}

void LinkStateMap::recompute_all_spf() const {
  // SPF duration is real computation, not virtual time: the wall-clock cost
  // lands in the "linkstate.spf.recompute_ms" histogram and, when a tracer
  // is installed, as a span at the current virtual timestamp.
  const auto wall_start = std::chrono::steady_clock::now();
  refresh_cache_epoch();
  const std::size_t n = graph_->node_count();
  std::size_t stale = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!spf_cache_[i].has_value()) ++stale;
  }
  const auto finish = [&] {
    if (sim_ == nullptr) return;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    sim_->metrics().add(spf_runs_id_, stale);
    sim_->metrics().observe(spf_recompute_ms_id_, wall_ms);
    if (obs::Tracer* t = sim_->tracer()) {
      t->complete("spf.recompute_all", "linkstate", sim_->now_ms() * 1000.0,
                  wall_ms * 1000.0, /*track=*/1,
                  {obs::TraceArg{"sources", std::uint64_t{stale}},
                   obs::TraceArg{"wall_ms", wall_ms}});
    }
  };
  // Deterministic merge: worker i writes only slot i, so the filled cache
  // is independent of scheduling.  Tiny topologies skip the pool -- the
  // fan-out overhead would dominate the Dijkstra runs themselves.
  if (spf_threads_ == 0 || n < 64) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!spf_cache_[i].has_value()) {
        spf_cache_[i] = graph_->dijkstra(static_cast<NodeIndex>(i));
      }
    }
    finish();
    return;
  }
  if (pool_ == nullptr || pool_->thread_count() != spf_threads_) {
    pool_ = std::make_unique<util::ThreadPool>(spf_threads_);
  }
  pool_->parallel_for(n, [this](std::size_t i) {
    if (!spf_cache_[i].has_value()) {
      spf_cache_[i] = graph_->dijkstra(static_cast<NodeIndex>(i));
    }
  });
  finish();
}

std::optional<NodeIndex> LinkStateMap::next_hop(NodeIndex u, NodeIndex v) const {
  if (u == v) return u;
  const auto p = path(u, v);
  if (p.size() < 2) return std::nullopt;
  return p[1];
}

std::vector<NodeIndex> LinkStateMap::path(NodeIndex u, NodeIndex v) const {
  return graph::Graph::extract_path(spf(u), u, v);
}

bool LinkStateMap::reachable(NodeIndex u, NodeIndex v) const {
  return spf(u).reachable(v);
}

std::optional<std::uint32_t> LinkStateMap::hop_distance(NodeIndex u,
                                                        NodeIndex v) const {
  const auto& sp = spf(u);
  if (!sp.reachable(v)) return std::nullopt;
  return sp.hops[v];
}

std::optional<double> LinkStateMap::latency_ms(NodeIndex u, NodeIndex v) const {
  const auto& sp = spf(u);
  if (!sp.reachable(v)) return std::nullopt;
  return sp.latency_ms[v];
}

bool LinkStateMap::route_valid(const std::vector<NodeIndex>& route) const {
  if (route.empty()) return false;
  if (!graph_->node_up(route.front())) return false;
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    if (!graph_->link_up(route[i], route[i + 1])) return false;
  }
  return true;
}

void LinkStateMap::fail_link(NodeIndex u, NodeIndex v) {
  graph_->set_link_up(u, v, false);
  bump_version_and_notify(
      TopologyEvent{TopologyEvent::Kind::kLinkDown, u, v});
}

void LinkStateMap::restore_link(NodeIndex u, NodeIndex v) {
  graph_->set_link_up(u, v, true);
  bump_version_and_notify(TopologyEvent{TopologyEvent::Kind::kLinkUp, u, v});
}

void LinkStateMap::fail_node(NodeIndex u) {
  graph_->set_node_up(u, false);
  bump_version_and_notify(
      TopologyEvent{TopologyEvent::Kind::kNodeDown, u, graph::kInvalidNode});
}

void LinkStateMap::restore_node(NodeIndex u) {
  graph_->set_node_up(u, true);
  bump_version_and_notify(
      TopologyEvent{TopologyEvent::Kind::kNodeUp, u, graph::kInvalidNode});
}

void LinkStateMap::account_flood(sim::MsgCategory category,
                                 std::size_t frame_bytes) {
  if (sim_ == nullptr) return;
  if (frame_bytes == 0) {
    // A bare LSA frame, sized by the encoder once (not a magic constant).
    static const std::size_t kLsaFrameBytes =
        wire::msg::control_wire_size(wire::msg::Lsa{});
    frame_bytes = kLsaFrameBytes;
  }
  // OSPF reliable flooding sends each LSA once over every live adjacency in
  // each direction.
  std::uint64_t live_directed_edges = 0;
  for (NodeIndex u = 0; u < graph_->node_count(); ++u) {
    live_directed_edges += graph_->live_degree(u);
  }
  sim_->counters().add(category, live_directed_edges);
  sim_->counters().add_bytes(category, live_directed_edges * frame_bytes);
  sim_->metrics().add(floods_id_);
  sim_->metrics().observe(flood_fanout_id_,
                          static_cast<double>(live_directed_edges));
}

void LinkStateMap::bump_version_and_notify(const TopologyEvent& ev) {
  ++version_;
  if (sim_ != nullptr) {
    sim_->metrics().add(topo_events_id_);
    if (obs::Tracer* t = sim_->tracer()) {
      t->instant("topology.change", "linkstate", sim_->now_ms() * 1000.0,
                 /*track=*/1,
                 {obs::TraceArg{"version", version_},
                  obs::TraceArg{"a", std::uint64_t{ev.a}},
                  obs::TraceArg{"b", std::uint64_t{ev.b}}});
    }
  }
  // The advertisement itself rides the wire as a typed frame; the flood
  // charges its encoded size on every live directed edge.  The round trip
  // through the codec is asserted before any listener reacts to the event.
  const wire::msg::Lsa lsa{.origin = ev.a,
                           .version = version_,
                           .event = static_cast<std::uint8_t>(ev.kind),
                           .a = ev.a,
                           .b = ev.b};
  const std::vector<std::uint8_t> frame =
      wire::msg::encode_control(lsa, NodeId{}, NodeId{});
  assert(!frame.empty());
  assert([&] {
    const auto rt = wire::msg::decode_control(frame);
    return rt.has_value() && std::get<wire::msg::Lsa>(*rt) == lsa;
  }());
  account_flood(sim::MsgCategory::kLinkState, frame.size());
  for (const auto& listener : listeners_) listener(ev);
}

void LinkStateMap::subscribe(Listener listener) {
  listeners_.push_back(std::move(listener));
}

}  // namespace rofl::linkstate
