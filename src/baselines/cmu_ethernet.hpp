// cmu_ethernet.hpp -- the CMU-ETHERNET baseline (Myers, Ng, Zhang, HotNets'04).
//
// The paper's intradomain evaluation (section 6.2) uses "CMU-ETHERNET" --
// "Rethinking the service model: scaling Ethernet to a million nodes" -- as
// its comparison point: a flat-routing design where a host's binding is
// flooded to every router, so every router keeps forwarding state for every
// host.  ROFL is reported to need 37-181x fewer join messages and 34-1200x
// less memory.  This model reproduces those two cost dimensions faithfully:
//
//   * join: the new binding is reliably flooded over every live adjacency
//     (one packet per directed edge, like an LSA), plus the host's own
//     attachment message;
//   * state: every router stores one entry per live host;
//   * forwarding: source-routed over the IGP shortest path (stretch 1 -- the
//     design trades state for optimal paths, which is exactly the trade-off
//     figure 6 illustrates).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "graph/isp_topology.hpp"
#include "linkstate/link_state.hpp"
#include "util/identity.hpp"
#include "util/node_id.hpp"

namespace rofl::baselines {

class CmuEthernet {
 public:
  /// `topo` must outlive this object.
  explicit CmuEthernet(const graph::IspTopology* topo);

  struct JoinStats {
    bool ok = false;
    std::uint64_t messages = 0;
  };
  JoinStats join_host(const NodeId& id, graph::NodeIndex gateway);
  /// Host removal floods an invalidation the same way.
  JoinStats leave_host(const NodeId& id);

  struct RouteStats {
    bool delivered = false;
    std::uint32_t physical_hops = 0;
    double stretch = 0.0;  // always 1.0 when delivered between distinct routers
  };
  RouteStats route(graph::NodeIndex src, const NodeId& dest) const;

  /// Forwarding entries per router == number of live hosts (every router
  /// stores every binding).
  [[nodiscard]] std::uint64_t entries_per_router() const {
    return bindings_.size();
  }
  [[nodiscard]] std::uint64_t total_join_messages() const {
    return total_join_messages_;
  }
  [[nodiscard]] std::size_t host_count() const { return bindings_.size(); }

 private:
  [[nodiscard]] std::uint64_t flood_cost() const;

  const graph::IspTopology* topo_;
  linkstate::LinkStateMap map_;
  std::map<NodeId, graph::NodeIndex> bindings_;
  std::uint64_t total_join_messages_ = 0;
};

}  // namespace rofl::baselines
