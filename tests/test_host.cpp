#include "rofl/host.hpp"

#include <gtest/gtest.h>

namespace rofl::intra {
namespace {

struct Fix {
  graph::IspTopology topo;
  std::unique_ptr<Network> net;

  explicit Fix(Config cfg = {}, std::uint64_t seed = 61) {
    Rng trng(seed);
    graph::IspParams p;
    p.router_count = 24;
    p.pop_count = 4;
    topo = graph::make_isp_topology(p, trng);
    net = std::make_unique<Network>(&topo, cfg, seed + 1);
    for (int i = 0; i < 30; ++i) (void)net->join_random_host();
  }
};

TEST(Host, AttachDetachLifecycle) {
  Fix f;
  Host h(*f.net);
  EXPECT_FALSE(h.attached());
  EXPECT_FALSE(h.send_to(h.id()).delivered);  // detached hosts cannot send
  ASSERT_TRUE(h.attach(3).ok);
  EXPECT_TRUE(h.attached());
  EXPECT_EQ(h.gateway(), 3u);
  EXPECT_FALSE(h.attach(4).ok);  // already attached
  (void)h.detach();
  EXPECT_FALSE(h.attached());
  EXPECT_EQ(f.net->hosting_router(h.id()), std::nullopt);
}

TEST(Host, IdentityStableAcrossMoves) {
  Fix f;
  Host h(*f.net);
  ASSERT_TRUE(h.attach(1).ok);
  const NodeId id = h.id();
  for (const graph::NodeIndex gw : {5u, 9u, 14u, 20u}) {
    ASSERT_TRUE(h.move_to(gw).ok);
    EXPECT_EQ(h.id(), id);
    EXPECT_TRUE(f.net->route(0, id).delivered);
    EXPECT_EQ(f.net->hosting_router(id), gw);
  }
}

TEST(Host, TwoHostsExchangePackets) {
  Fix f;
  Host a(*f.net);
  Host b(*f.net);
  ASSERT_TRUE(a.attach(2).ok);
  ASSERT_TRUE(b.attach(19).ok);
  EXPECT_TRUE(a.send_to(b.id()).delivered);
  EXPECT_TRUE(b.send_to(a.id()).delivered);
}

TEST(Host, CrashAndRebootSameIdentity) {
  Fix f;
  Host h(*f.net);
  ASSERT_TRUE(h.attach(7).ok);
  (void)h.crash();
  EXPECT_FALSE(h.attached());
  EXPECT_FALSE(f.net->route(0, h.id()).delivered);
  ASSERT_TRUE(h.attach(12).ok);  // reboot elsewhere, same key pair
  EXPECT_TRUE(f.net->route(0, h.id()).delivered);
}

TEST(Host, RestoredFromStoredIdentity) {
  Fix f;
  Rng store(99);
  const Identity ident = Identity::generate(store);
  Host h(*f.net, ident);
  ASSERT_TRUE(h.attach(4).ok);
  EXPECT_EQ(h.id(), ident.id());
}

TEST(Host, SendSurvivesGatewayFailure) {
  Fix f;
  Host a(*f.net);
  Host b(*f.net);
  ASSERT_TRUE(a.attach(2).ok);
  ASSERT_TRUE(b.attach(10).ok);
  (void)f.net->fail_router(10);  // b's ID rehomes at the failover router
  EXPECT_TRUE(a.send_to(b.id()).delivered);
  EXPECT_TRUE(b.send_to(a.id()).delivered);  // b routes from its new home
}

TEST(Host, EphemeralHostFacade) {
  Fix f;
  Host laptop(*f.net, HostClass::kEphemeral);
  ASSERT_TRUE(laptop.attach(6).ok);
  EXPECT_TRUE(f.net->route(0, laptop.id()).delivered);
  std::string err;
  EXPECT_TRUE(f.net->verify_rings(&err)) << err;
}

TEST(Host, SybilQuotaBoundsResidency) {
  Config cfg;
  cfg.max_resident_ids_per_router = 5;
  Fix f(cfg, 71);
  // The fixture already spread 30 ids; now pile onto one router until the
  // audit refuses.
  int accepted = 0;
  for (int i = 0; i < 20; ++i) {
    Host h(*f.net);
    if (h.attach(0).ok) ++accepted;
  }
  EXPECT_LE(f.net->router(0).resident_count(), 5u + 1u);  // + default vnode
  EXPECT_LT(accepted, 20);
  // Other routers still accept.
  Host ok(*f.net);
  EXPECT_TRUE(ok.attach(1).ok);
}

}  // namespace
}  // namespace rofl::intra
