// pointer_cache.hpp -- bounded per-router cache of source-route pointers.
//
// "Whenever a source route is established, the routers along the path can
// cache the route. ... The pointer-cache of routers is limited in size, and
// precedence is given to pointers [from resident IDs]" (section 2.2).  The
// cache is the knob behind figure 6a: bigger caches shortcut greedy routing
// and cut stretch.  Eviction is LRU; ring pointers owned by virtual nodes
// never live here, so precedence is structural.
//
// Layout (flat datapath, DESIGN.md "Datapath performance"): entries live in
// a slab with stable slot numbers; recency is an intrusive doubly-linked
// list threaded through the slots (O(1) touch and O(1) unlink, replacing
// the old tick->id / id->tick double-map whose halves could desynchronize);
// and a sorted {id, slot} vector provides the binary-search best_match that
// per-packet forwarding runs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rofl/types.hpp"

namespace rofl::intra {

struct CacheEntry {
  NodeId id;
  NodeIndex host = graph::kInvalidNode;
  SourceRoute path;  // physical route from the caching router to `host`
};

class PointerCache {
 public:
  explicit PointerCache(std::size_t capacity) : capacity_(capacity) {}

  /// Inserts/refreshes an entry.  Evicts the least-recently-used entry when
  /// full.  A capacity of zero disables the cache entirely.
  void insert(const NodeId& id, NodeIndex host, SourceRoute path);

  /// The cached ID closest to `dest` without overshooting it (the entry
  /// minimising clockwise distance to dest), or nullptr if empty.  Marks the
  /// returned entry as used.
  [[nodiscard]] const CacheEntry* best_match(const NodeId& dest);

  /// Exact lookup without touching LRU state.
  [[nodiscard]] const CacheEntry* find(const NodeId& id) const;

  void erase(const NodeId& id);

  /// Drops every entry whose source route traverses `router` (router
  /// failure, section 2.2 "Recovering").
  void invalidate_through_router(NodeIndex router);

  /// Drops every entry whose source route uses link (u,v) in either
  /// direction (link failure, section 3.2).
  void invalidate_through_link(NodeIndex u, NodeIndex v);

  void clear();

  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t capacity);

  /// Calls fn(const CacheEntry&) for every entry in ascending ID order.
  template <typename F>
  void for_each(F&& fn) const {
    for (const IndexEntry& ie : index_) fn(slots_[ie.slot].entry);
  }

  // -- cache-effectiveness accounting (benches) -----------------------------
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  /// Capacity-pressure evictions only (LRU victims); entries dropped by
  /// erase/invalidate/clear are not counted.
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  /// Entries removed because their pointer went stale (erase, the
  /// invalidate_through_* sweeps, clear) -- the complement of evictions().
  [[nodiscard]] std::uint64_t stale_drops() const { return stale_drops_; }

  /// Structural self-check for tests: the sorted index, the slab, and the
  /// LRU list must describe the same entry set, the index must be sorted,
  /// and the LRU list must be a consistent doubly-linked chain.
  [[nodiscard]] bool invariants_ok() const;

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Slot {
    CacheEntry entry;
    std::uint32_t lru_prev = kNil;  // toward most-recently-used
    std::uint32_t lru_next = kNil;  // toward least-recently-used
  };
  struct IndexEntry {
    NodeId id;
    std::uint32_t slot;
  };

  /// Sorted position of `id` in index_ (first element with key >= id).
  [[nodiscard]] std::size_t index_lower_bound(const NodeId& id) const;
  /// index_ position holding exactly `id`, or index_.size().
  [[nodiscard]] std::size_t index_find(const NodeId& id) const;

  void lru_unlink(std::uint32_t slot);
  void lru_push_front(std::uint32_t slot);
  void touch(std::uint32_t slot);
  void evict_lru();
  void erase_at(std::size_t index_pos);

  std::size_t capacity_;
  std::vector<Slot> slots_;             // slab; slot numbers are stable
  std::vector<std::uint32_t> free_slots_;
  std::vector<IndexEntry> index_;       // sorted by id
  std::uint32_t lru_head_ = kNil;       // most recently used
  std::uint32_t lru_tail_ = kNil;       // eviction candidate
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t stale_drops_ = 0;
};

}  // namespace rofl::intra
