#include "ext/capability.hpp"

#include <algorithm>
#include <cstring>

namespace rofl::ext {
namespace {

void feed_id(Sha256& h, const NodeId& id) {
  std::array<std::uint8_t, 16> bytes{};
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<size_t>(i)] =
        static_cast<std::uint8_t>(id.hi() >> (56 - 8 * i));
    bytes[static_cast<size_t>(8 + i)] =
        static_cast<std::uint8_t>(id.lo() >> (56 - 8 * i));
  }
  h.update(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
}

}  // namespace

CapabilityIssuer::CapabilityIssuer(const Identity& host) : host_(host) {}

Sha256::Digest CapabilityIssuer::mint(const NodeId& source,
                                      double expiry_ms) const {
  Sha256 h;
  const PrivateKey& key = host_.private_key();
  h.update(std::span<const std::uint8_t>(key.data(), key.size()));
  feed_id(h, source);
  feed_id(h, host_.id());
  std::uint64_t expiry_bits = 0;
  static_assert(sizeof(expiry_bits) == sizeof(expiry_ms));
  std::memcpy(&expiry_bits, &expiry_ms, sizeof(expiry_bits));
  std::array<std::uint8_t, 8> eb{};
  for (int i = 0; i < 8; ++i) {
    eb[static_cast<size_t>(i)] =
        static_cast<std::uint8_t>(expiry_bits >> (56 - 8 * i));
  }
  h.update(std::span<const std::uint8_t>(eb.data(), eb.size()));
  return h.finish();
}

Capability CapabilityIssuer::issue(const NodeId& source, double now_ms,
                                   double lifetime_ms) const {
  Capability cap;
  cap.source = source;
  cap.destination = host_.id();
  cap.expiry_ms = now_ms + lifetime_ms;
  cap.token = mint(source, cap.expiry_ms);
  return cap;
}

bool CapabilityIssuer::validate(const Capability& cap, const NodeId& source,
                                double now_ms) const {
  if (cap.destination != host_.id()) return false;
  if (cap.source != source) return false;
  if (now_ms > cap.expiry_ms) return false;
  return cap.token == mint(cap.source, cap.expiry_ms);
}

void DefaultOffFilter::register_host(const NodeId& host) {
  registered_.insert(host);
}

void DefaultOffFilter::protect(const NodeId& host,
                               const CapabilityIssuer* issuer) {
  issuers_[host] = issuer;
}

bool DefaultOffFilter::registered(const NodeId& host) const {
  return registered_.contains(host);
}

bool DefaultOffFilter::protected_host(const NodeId& host) const {
  return issuers_.contains(host);
}

intra::RouteStats DefaultOffFilter::guarded_route(intra::Network& net,
                                                  graph::NodeIndex src_router,
                                                  const NodeId& source,
                                                  const NodeId& dest,
                                                  const Capability* cap) const {
  // "We require that hosts explicitly register with their providers and
  // traffic to a host not registered with its provider be dropped."
  if (!registered_.contains(dest)) return {};
  const auto it = issuers_.find(dest);
  if (it != issuers_.end()) {
    const double now = net.simulator().now_ms();
    if (cap == nullptr || !it->second->validate(*cap, source, now)) {
      return {};  // dropped before consuming data-plane resources
    }
  }
  return net.route(src_router, dest);
}

bool path_compliant(const PathCapability& cap,
                    const std::vector<graph::AsIndex>& traversed) {
  return std::all_of(traversed.begin(), traversed.end(), [&](graph::AsIndex a) {
    return std::find(cap.allowed_ases.begin(), cap.allowed_ases.end(), a) !=
           cap.allowed_ases.end();
  });
}

}  // namespace rofl::ext
