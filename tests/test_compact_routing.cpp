#include "baselines/compact_routing.hpp"

#include <gtest/gtest.h>

#include "graph/isp_topology.hpp"

namespace rofl::baselines {
namespace {

TEST(CompactRouting, DeliversEverywhereWithStretchAtMostThree) {
  Rng trng(5);
  graph::IspParams p;
  p.router_count = 60;
  p.pop_count = 8;
  const auto topo = graph::make_isp_topology(p, trng);
  Rng rng(6);
  const CompactRouting cr(&topo.graph, rng);
  for (graph::NodeIndex u = 0; u < topo.router_count(); u += 3) {
    for (graph::NodeIndex v = 0; v < topo.router_count(); v += 5) {
      const auto r = cr.route(u, v);
      ASSERT_TRUE(r.delivered) << u << "->" << v;
      if (r.shortest > 0) {
        EXPECT_LE(r.stretch(), 3.0 + 1e-9) << u << "->" << v;
        EXPECT_GE(r.stretch(), 1.0);
      }
    }
  }
}

TEST(CompactRouting, SelfRouteIsZero) {
  Rng trng(7);
  graph::IspParams p;
  p.router_count = 20;
  p.pop_count = 4;
  const auto topo = graph::make_isp_topology(p, trng);
  Rng rng(8);
  const CompactRouting cr(&topo.graph, rng);
  const auto r = cr.route(3, 3);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.hops, 0u);
}

TEST(CompactRouting, TableSizesSublinear) {
  Rng trng(9);
  graph::IspParams p;
  p.router_count = 200;
  p.pop_count = 20;
  const auto topo = graph::make_isp_topology(p, trng);
  Rng rng(10);
  const CompactRouting cr(&topo.graph, rng);
  // sqrt(n log n) landmarks; mean table far below n.
  EXPECT_LT(cr.landmark_count(), 80u);
  EXPECT_GT(cr.landmark_count(), 10u);
  EXPECT_LT(cr.mean_table_size(), 200.0 * 0.7);
}

TEST(CompactRouting, ExplicitLandmarkCount) {
  Rng trng(11);
  graph::IspParams p;
  p.router_count = 40;
  p.pop_count = 5;
  const auto topo = graph::make_isp_topology(p, trng);
  Rng rng(12);
  const CompactRouting cr(&topo.graph, rng, 5);
  EXPECT_EQ(cr.landmark_count(), 5u);
  for (graph::NodeIndex v = 0; v < topo.router_count(); ++v) {
    EXPECT_NE(cr.home_landmark(v), graph::kInvalidNode);
  }
}

TEST(CompactRouting, LandmarkRoutesAreDirect) {
  Rng trng(13);
  graph::IspParams p;
  p.router_count = 40;
  p.pop_count = 5;
  const auto topo = graph::make_isp_topology(p, trng);
  Rng rng(14);
  const CompactRouting cr(&topo.graph, rng, 6);
  // Routing TO a landmark is always shortest-path (it is in every table).
  for (graph::NodeIndex u = 0; u < topo.router_count(); u += 7) {
    const auto l = cr.home_landmark(u);
    const auto r = cr.route(u, l);
    ASSERT_TRUE(r.delivered);
    EXPECT_EQ(r.hops, r.shortest);
    EXPECT_FALSE(r.via_landmark);
  }
}

}  // namespace
}  // namespace rofl::baselines
