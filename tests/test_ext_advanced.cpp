// Tests for the advanced section-5 machinery: i3-style weighted anycast,
// single-source multicast trees, interdomain virtual servers, and group
// behavior under churn.
#include <gtest/gtest.h>

#include <map>

#include "ext/multicast.hpp"
#include "ext/weighted_anycast.hpp"
#include "interdomain/inter_network.hpp"

namespace rofl::ext {
namespace {

struct IntraFixture {
  graph::IspTopology topo;
  std::unique_ptr<intra::Network> net;

  explicit IntraFixture(std::uint64_t seed = 404) {
    Rng trng(seed);
    graph::IspParams p;
    p.router_count = 40;
    p.pop_count = 6;
    topo = graph::make_isp_topology(p, trng);
    net = std::make_unique<intra::Network>(&topo, intra::Config{}, seed + 1);
    for (int i = 0; i < 60; ++i) (void)net->join_random_host();
  }
};

TEST(WeightedAnycast, LoadFollowsCapacity) {
  IntraFixture f;
  const GroupId g(Identity::generate(f.net->rng()));
  WeightedAnycast wa(g);
  wa.add_replica(3, 1.0);
  wa.add_replica(17, 3.0);  // 3x the capacity of replica 0
  ASSERT_TRUE(wa.deploy(*f.net));

  Rng client(7);
  std::map<NodeId, int> hits;
  const int sends = 600;
  for (int i = 0; i < sends; ++i) {
    const auto src = static_cast<graph::NodeIndex>(
        client.index(f.net->router_count()));
    const AnycastResult r = wa.send(*f.net, src, client);
    ASSERT_TRUE(r.delivered);
    ++hits[r.member];
  }
  const int small = hits[wa.replicas()[0].member_id];
  const int big = hits[wa.replicas()[1].member_id];
  EXPECT_EQ(small + big, sends);
  // 1:3 capacity split; allow generous sampling noise.
  EXPECT_GT(big, 2 * small);
  EXPECT_GT(small, sends / 12);
}

TEST(WeightedAnycast, OwnerMatchesDelivery) {
  IntraFixture f;
  const GroupId g(Identity::generate(f.net->rng()));
  WeightedAnycast wa(g);
  wa.add_replica(5, 2.0);
  wa.add_replica(11, 1.0);
  wa.add_replica(23, 1.0);
  ASSERT_TRUE(wa.deploy(*f.net));
  // Route with explicit suffixes and compare against the analytic owner.
  for (const std::uint32_t probe :
       {0u, 1u << 30, 1u << 31, 3u << 30, 0xFFFFFFFFu}) {
    const AnycastResult r = anycast_route(*f.net, 0, g, probe);
    ASSERT_TRUE(r.delivered) << probe;
    const auto* owner = wa.owner_of(probe);
    ASSERT_NE(owner, nullptr);
    EXPECT_EQ(r.member, owner->member_id) << "suffix " << probe;
  }
}

TEST(WeightedAnycast, SingleReplicaTakesAll) {
  IntraFixture f;
  const GroupId g(Identity::generate(f.net->rng()));
  WeightedAnycast wa(g);
  wa.add_replica(9, 5.0);
  ASSERT_TRUE(wa.deploy(*f.net));
  Rng client(8);
  for (int i = 0; i < 40; ++i) {
    const AnycastResult r = wa.send(*f.net, 0, client);
    ASSERT_TRUE(r.delivered);
    EXPECT_EQ(r.member, wa.replicas()[0].member_id);
  }
}

TEST(SingleSourceMulticast, TreeCheaperOrEqualForSourceTraffic) {
  IntraFixture f_shared(501);
  IntraFixture f_source(501);
  const GroupId g1(Identity::generate(f_shared.net->rng()));
  const GroupId g2(Identity::generate(f_source.net->rng()));

  MulticastGroup shared(g1);
  MulticastGroup source(g2);
  const graph::NodeIndex src_router = 2;
  source.set_single_source(src_router);

  const std::vector<graph::NodeIndex> subscribers{2, 9, 15, 24, 33, 38};
  std::uint32_t suffix = 1;
  for (const auto gw : subscribers) {
    ASSERT_TRUE(shared.join(*f_shared.net, gw, suffix).ok);
    ASSERT_TRUE(source.join(*f_source.net, gw, suffix).ok);
    ++suffix;
  }
  ASSERT_TRUE(shared.verify_tree());
  ASSERT_TRUE(source.verify_tree());
  const auto shared_send = shared.send(*f_shared.net, src_router);
  const auto source_send = source.send(*f_source.net, src_router);
  EXPECT_EQ(shared_send.members_reached, subscribers.size());
  EXPECT_EQ(source_send.members_reached, subscribers.size());
  // The source-rooted tree is shortest-path from the source, so sending
  // from the source costs no more copies than the shared tree.
  EXPECT_LE(source_send.copies, shared_send.copies);
}

TEST(SingleSourceMulticast, ChurnKeepsTreeValid) {
  IntraFixture f;
  const GroupId g(Identity::generate(f.net->rng()));
  MulticastGroup mc(g);
  mc.set_single_source(4);
  std::uint32_t suffix = 1;
  ASSERT_TRUE(mc.join(*f.net, 4, suffix++).ok);
  for (const auto gw : {8u, 13u, 21u, 29u, 35u}) {
    ASSERT_TRUE(mc.join(*f.net, gw, suffix++).ok);
  }
  mc.leave(*f.net, 13);
  mc.leave(*f.net, 29);
  EXPECT_TRUE(mc.verify_tree());
  EXPECT_EQ(mc.send(*f.net, 4).members_reached, 4u);
}

// -- virtual servers ---------------------------------------------------------

TEST(VirtualServers, OutageWithoutChurn) {
  using graph::AsRel;
  auto topo = graph::AsTopology::from_links(
      5, {{1, 0, AsRel::kProvider},
          {2, 0, AsRel::kProvider},
          {3, 1, AsRel::kProvider},
          {4, 2, AsRel::kProvider}});
  for (graph::AsIndex a : {3u, 4u}) topo.set_host_count(a, 10);
  inter::InterNetwork net(&topo, inter::InterConfig{}, 33);

  std::vector<NodeId> at3, at4;
  for (int i = 0; i < 6; ++i) {
    Identity ident = Identity::generate(net.rng());
    ASSERT_TRUE(
        net.join_host(ident, 3, inter::JoinStrategy::kRecursiveMultihomed).ok);
    at3.push_back(ident.id());
    Identity other = Identity::generate(net.rng());
    ASSERT_TRUE(
        net.join_host(other, 4, inter::JoinStrategy::kRecursiveMultihomed).ok);
    at4.push_back(other.id());
  }

  // AS 3 goes dark but its provider (1) keeps virtual servers.
  const auto vs = net.fail_as_with_virtual_servers(3, 1);
  EXPECT_EQ(vs.ids_lost, 0u);
  std::string err;
  EXPECT_TRUE(net.verify_rings(&err)) << err;
  // The IDs stay reachable -- now terminating at the provider.
  for (const NodeId& id : at3) {
    EXPECT_EQ(net.home_of(id), 1u);
    EXPECT_TRUE(net.route(4, id).delivered) << id;
  }

  // Return is a cheap re-point, far below a mass rejoin.
  const auto back = net.restore_as(3);
  EXPECT_TRUE(net.verify_rings(&err)) << err;
  for (const NodeId& id : at3) {
    EXPECT_EQ(net.home_of(id), 3u);
    EXPECT_TRUE(net.route(4, id).delivered) << id;
  }
  // Compare against the plain outage cost on an identical network.
  inter::InterNetwork plain(&topo, inter::InterConfig{}, 33);
  for (int i = 0; i < 6; ++i) {
    Identity ident = Identity::generate(plain.rng());
    ASSERT_TRUE(
        plain.join_host(ident, 3, inter::JoinStrategy::kRecursiveMultihomed).ok);
    Identity other = Identity::generate(plain.rng());
    ASSERT_TRUE(
        plain.join_host(other, 4, inter::JoinStrategy::kRecursiveMultihomed).ok);
  }
  const auto hard = plain.fail_as(3);
  const auto rejoin = plain.restore_as(3);
  EXPECT_GT(hard.ids_lost, 0u);
  EXPECT_LT(vs.messages + back.messages, hard.messages + rejoin.messages);
}

TEST(VirtualServers, RequiresDirectProvider) {
  using graph::AsRel;
  auto topo = graph::AsTopology::from_links(
      3, {{1, 0, AsRel::kProvider}, {2, 1, AsRel::kProvider}});
  topo.set_host_count(2, 5);
  inter::InterNetwork net(&topo, inter::InterConfig{}, 3);
  Identity ident = Identity::generate(net.rng());
  ASSERT_TRUE(
      net.join_host(ident, 2, inter::JoinStrategy::kRecursiveMultihomed).ok);
  // AS 0 is the grandparent, not a direct provider of 2: refused.
  const auto rs = net.fail_as_with_virtual_servers(2, 0);
  EXPECT_EQ(rs.messages, 0u);
  EXPECT_TRUE(net.base_topology().as_up(2));
}

}  // namespace
}  // namespace rofl::ext
