// zero_id.hpp -- the zero-ID distribution protocol (section 3.2).
//
// "To prevent [ring partitions], routers continuously distribute the
// smallest ID they know about (the zero-ID ...) to all its neighbors.  The
// zero-ID a router propagates is set equal to the minimum of the smallest ID
// it is hosting and the smallest ID it receives from its neighbors (the path
// is also distributed ...).  The end result is that all routers become aware
// of the smallest ID in the network."
//
// This module runs that distance-vector-style computation explicitly over a
// router graph: per-round neighbor exchange with path vectors (so stale
// circular dependencies flush), convergence detection, and per-component
// results.  Network::repair_partitions uses convergence of this protocol as
// the merge trigger; tests validate it standalone.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "util/node_id.hpp"

namespace rofl::intra {

class ZeroIdProtocol {
 public:
  /// `g` must outlive the protocol object.
  explicit ZeroIdProtocol(const graph::Graph* g);

  /// Declares the smallest ID hosted locally at `router` (nullopt = hosts
  /// nothing).  Resets convergence.
  void set_local_min(graph::NodeIndex router,
                     const std::optional<NodeId>& smallest);

  /// One advertisement round: every router offers min(local, received) to
  /// each live neighbor, with the originating path attached; offers whose
  /// path contains the receiver are rejected (flushes circular stale state).
  /// Returns the number of belief changes (0 = converged).
  std::size_t step();

  /// Runs rounds until convergence; returns (rounds, messages) where
  /// messages counts one advertisement per live directed edge per round
  /// (piggybacked on LSAs in practice, as the paper notes).
  struct Convergence {
    std::size_t rounds = 0;
    std::uint64_t messages = 0;
  };
  Convergence run_to_convergence(std::size_t max_rounds = 1'000);

  /// The zero-ID `router` currently believes in.
  [[nodiscard]] std::optional<NodeId> belief(graph::NodeIndex router) const;

  /// The path (router indices) to the believed zero-ID's host.
  [[nodiscard]] const std::vector<graph::NodeIndex>& belief_path(
      graph::NodeIndex router) const;

  /// True iff, in every connected component, all routers agree on the
  /// component's true minimum hosted ID.
  [[nodiscard]] bool verify_consistent() const;

 private:
  struct Belief {
    std::optional<NodeId> id;
    std::vector<graph::NodeIndex> path;  // to the host, starting here
  };

  const graph::Graph* graph_;
  std::vector<std::optional<NodeId>> local_;
  std::vector<Belief> beliefs_;
};

}  // namespace rofl::intra
