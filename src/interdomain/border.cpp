#include "interdomain/border.hpp"

#include <cassert>
#include <set>

namespace rofl::inter {

BorderFabric::BorderFabric(const InterNetwork* net) : net_(net) {
  assert(net != nullptr);
}

std::size_t BorderFabric::attach_isp(AsIndex as, intra::Network* isp,
                                     std::uint64_t seed) {
  assert(isp != nullptr);
  IspBinding binding;
  binding.isp = isp;

  // Candidate border routers: the ISP's backbone.
  const auto& topo = isp->topology();
  std::vector<graph::NodeIndex> backbone;
  for (graph::NodeIndex r = 0; r < topo.router_count(); ++r) {
    if (topo.is_backbone[r]) backbone.push_back(r);
  }
  if (backbone.empty()) {
    for (graph::NodeIndex r = 0; r < topo.router_count(); ++r) {
      backbone.push_back(r);
    }
  }

  Rng rng(seed ^ (static_cast<std::uint64_t>(as) << 17));
  const auto& work = net_->work_topology();
  for (const auto& adj : work.adjacencies(as)) {
    binding.borders[adj.neighbor] = backbone[rng.index(backbone.size())];
  }

  // "Border routers flood their existence internally": one network-wide
  // flood per border router over the ISP's link-state channel.
  std::uint64_t directed_edges = 0;
  for (graph::NodeIndex r = 0; r < topo.router_count(); ++r) {
    directed_edges += topo.graph.live_degree(r);
  }
  std::set<graph::NodeIndex> distinct;
  for (const auto& [nbr, br] : binding.borders) distinct.insert(br);
  binding.flood_packets = directed_edges * distinct.size();
  isp->simulator().counters().add(sim::MsgCategory::kControl,
                                  binding.flood_packets);

  const std::size_t count = distinct.size();
  isps_[as] = std::move(binding);
  return count;
}

std::optional<graph::NodeIndex> BorderFabric::border_router(
    AsIndex as, AsIndex neighbor) const {
  const auto it = isps_.find(as);
  if (it == isps_.end()) return std::nullopt;
  const auto br = it->second.borders.find(neighbor);
  if (br == it->second.borders.end()) return std::nullopt;
  return br->second;
}

std::uint64_t BorderFabric::flood_cost(AsIndex as) const {
  const auto it = isps_.find(as);
  return it == isps_.end() ? 0 : it->second.flood_packets;
}

BorderFabric::Expansion BorderFabric::expand(const AsRoute& as_route) const {
  Expansion ex;
  if (as_route.empty()) return ex;
  const auto& work = net_->work_topology();
  ex.ok = true;
  for (std::size_t i = 0; i < as_route.size(); ++i) {
    const AsIndex as = as_route[i];
    if (work.is_virtual(as)) continue;  // peering-clique construct: free
    const auto it = isps_.find(as);
    // Previous/next real AS for ingress/egress determination.
    auto real_neighbor = [&](std::size_t from, int dir) -> std::optional<AsIndex> {
      for (long j = static_cast<long>(from) + dir;
           j >= 0 && j < static_cast<long>(as_route.size()); j += dir) {
        if (!work.is_virtual(as_route[static_cast<std::size_t>(j)])) {
          return as_route[static_cast<std::size_t>(j)];
        }
      }
      return std::nullopt;
    };
    const auto prev = real_neighbor(i, -1);
    const auto next = real_neighbor(i, +1);
    if (next.has_value()) ++ex.router_hops;  // the inter-AS link itself
    if (it == isps_.end()) continue;          // single-node AS: no interior
    // Interior segment: ingress border (facing prev) to egress border
    // (facing next).  Endpoints of the whole route enter/exit at an
    // arbitrary interior point; we use the border facing the single
    // adjacent AS on the route.
    std::optional<graph::NodeIndex> ingress =
        prev.has_value() ? border_router(as, *prev) : std::nullopt;
    std::optional<graph::NodeIndex> egress =
        next.has_value() ? border_router(as, *next) : std::nullopt;
    // A virtual AS between real ones maps the adjacency to the peer beyond
    // it; fall back to any border when the exact adjacency is unknown.
    if (!ingress.has_value() && !it->second.borders.empty()) {
      ingress = it->second.borders.begin()->second;
    }
    if (!egress.has_value() && !it->second.borders.empty()) {
      egress = it->second.borders.begin()->second;
    }
    if (ingress.has_value() && egress.has_value() && *ingress != *egress) {
      const auto hops = it->second.isp->map().hop_distance(*ingress, *egress);
      if (!hops.has_value()) {
        ex.ok = false;
        return ex;
      }
      ex.router_hops += *hops;
      ex.internal_hops += *hops;
    }
  }
  return ex;
}

}  // namespace rofl::inter
