// bench_common.hpp -- shared workload helpers for the figure benches.
//
// Every binary in bench/ regenerates one figure or table from the paper's
// evaluation (section 6).  Absolute numbers come from our simulator, not the
// authors' testbed, so the point of comparison is the *shape*: who wins, by
// what rough factor, where the curves bend.  Each bench prints the series it
// measured plus the paper's reported reference values where applicable.
//
// Scale: the paper simulates up to millions of intradomain hosts and ~30k
// interdomain IDs.  Default scales here finish in seconds; set
// ROFL_BENCH_FULL=1 for runs closer to the paper's (minutes).
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "graph/as_topology.hpp"
#include "graph/isp_topology.hpp"
#include "util/rng.hpp"
#include "util/rusage.hpp"

namespace rofl::bench {

inline bool full_scale() {
  const char* v = std::getenv("ROFL_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

inline constexpr std::uint64_t kSeed = 20060911;  // SIGCOMM'06 started Sep 11

/// The paper's interdomain topology stand-in (Routeviews-like, DESIGN.md):
/// ~1500 ASes by default, ~3000 at full scale.
inline graph::AsTopology make_inter_topology(Rng& rng) {
  graph::AsGenParams p;
  if (full_scale()) {
    p.tier1_count = 10;
    p.tier2_count = 120;
    p.tier3_count = 500;
    p.stub_count = 2400;
  } else {
    p.tier1_count = 8;
    p.tier2_count = 60;
    p.tier3_count = 250;
    p.stub_count = 1200;
  }
  p.total_hosts = 10'000'000;
  return graph::AsTopology::make_internet_like(p, rng);
}

/// Peak resident set size in KiB; the ru_maxrss unit guard (bytes on
/// macOS/BSD, KiB on Linux) lives in util/rusage.hpp.
using util::peak_rss_kb;

/// Run-level provenance embedded in every BENCH_*.json: wall time, peak
/// memory, and the hardware parallelism the numbers were measured on.
inline std::string run_info_json(double wall_seconds) {
  std::ostringstream os;
  os << "{\"wall_seconds\": " << wall_seconds
     << ", \"peak_rss_kb\": " << peak_rss_kb()
     << ", \"hw_threads\": " << std::thread::hardware_concurrency() << "}";
  return os.str();
}

inline void print_scale_note(std::ostream& os) {
  os << (full_scale()
             ? "[scale: FULL (ROFL_BENCH_FULL=1); closer to the paper's run "
               "sizes]\n"
             : "[scale: default (seconds); set ROFL_BENCH_FULL=1 for "
               "paper-scale runs]\n");
  os << "[seed: " << kSeed << "]\n";
}

}  // namespace rofl::bench
