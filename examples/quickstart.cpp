// quickstart -- the smallest useful ROFL program.
//
// Builds a little ISP, attaches a handful of hosts with self-certifying
// flat identifiers, and routes packets between them by label alone: no
// addresses, no resolution step, no location information in the header.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "graph/isp_topology.hpp"
#include "rofl/network.hpp"

int main() {
  using namespace rofl;

  // 1. A 20-router ISP with 4 PoPs (any connected graph works).
  Rng topo_rng(7);
  graph::IspParams params;
  params.name = "quickstart-isp";
  params.router_count = 20;
  params.pop_count = 4;
  const graph::IspTopology topo = graph::make_isp_topology(params, topo_rng);
  std::cout << "topology: " << topo.router_count() << " routers, "
            << topo.graph.edge_count() << " links, diameter "
            << topo.graph.diameter_hops(topo.router_count()) << " hops\n";

  // 2. Bring up ROFL over it.  Every router gets a self-certified identity
  //    and the router-ID ring bootstraps automatically.
  intra::Network net(&topo, intra::Config{}, /*seed=*/42);

  // 3. Attach hosts.  A host is just a key pair; its flat label is the hash
  //    of its public key.  join_host runs Algorithm 1: authenticate, locate
  //    the ring predecessor, splice in.
  const Identity alice = Identity::generate(net.rng());
  const Identity bob = Identity::generate(net.rng());
  const intra::JoinStats ja = net.join_host(alice, /*gateway=*/3);
  const intra::JoinStats jb = net.join_host(bob, /*gateway=*/17);
  std::cout << "alice " << alice.id() << " joined at router 3 ("
            << ja.messages << " packets, " << ja.latency_ms << " ms)\n";
  std::cout << "bob   " << bob.id() << " joined at router 17 ("
            << jb.messages << " packets, " << jb.latency_ms << " ms)\n";

  // A few more hosts so the ring has some density.
  for (int i = 0; i < 30; ++i) {
    (void)net.join_random_host();
  }
  std::string err;
  std::cout << "ring verified: " << (net.verify_rings(&err) ? "yes" : err)
            << "\n";

  // 4. Route on the flat label itself (Algorithm 2: greedy over ring
  //    pointers and caches).  Stretch compares against the IGP shortest
  //    path to the destination's gateway.
  const intra::RouteStats rs = net.route(/*src_router=*/3, bob.id());
  std::cout << "packet 3 -> bob: "
            << (rs.delivered ? "delivered" : "LOST") << " in "
            << rs.physical_hops << " hops (shortest " << rs.shortest_hops
            << ", stretch " << rs.stretch() << ")\n";

  // 5. Mobility is a non-event: bob detaches and rejoins elsewhere with the
  //    SAME identifier; senders never learn about locations, so nothing at
  //    alice changes.
  (void)net.leave_host(bob.id());
  (void)net.join_host(bob, /*gateway=*/9);
  const intra::RouteStats rs2 = net.route(3, bob.id());
  std::cout << "bob moved to router 9; packet 3 -> bob: "
            << (rs2.delivered ? "delivered" : "LOST") << " in "
            << rs2.physical_hops << " hops\n";

  // 6. Failure handling: kill bob's gateway; ROFL rehomes his ID at the
  //    deterministic failover router and the ring stays consistent.
  (void)net.fail_router(9);
  const intra::RouteStats rs3 = net.route(3, bob.id());
  std::cout << "router 9 crashed; packet 3 -> bob: "
            << (rs3.delivered ? "delivered" : "LOST") << " via failover "
            << "gateway " << *net.hosting_router(bob.id()) << "\n";
  std::cout << "ring verified: " << (net.verify_rings(&err) ? "yes" : err)
            << "\n";
  return 0;
}
