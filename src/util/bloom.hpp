// bloom.hpp -- Bloom filters for ROFL's peering and subtree summaries.
//
// Interdomain ROFL uses Bloom filters in two places (sections 4.1/4.2):
//   * border routers may summarise "the set of hosts in the subtree rooted
//     at the AS", letting pointer caches shortcut without violating the
//     isolation property;
//   * the bloom-filter peering rule checks a peer's filter before using the
//     peering link, with backtracking on false positives.
//
// The filter stores NodeIds.  k index functions are derived from the two
// 64-bit words of the ID via double hashing (Kirsch-Mitzenmacher), which is
// adequate because the IDs themselves are cryptographic-hash outputs.
#pragma once

#include <cstdint>
#include <vector>

#include "util/node_id.hpp"

namespace rofl {

class BloomFilter {
 public:
  /// Builds a filter with `bits` bits and `hashes` index functions.
  /// Requires bits > 0 and hashes > 0.
  BloomFilter(std::size_t bits, unsigned hashes);

  /// Sizes a filter for `expected_items` at the given false-positive target
  /// (standard m = -n ln p / ln^2 2, k = m/n ln 2 formulas).
  static BloomFilter for_capacity(std::size_t expected_items,
                                  double false_positive_rate);

  void insert(const NodeId& id);

  /// True if `id` may be present (false positives possible, false negatives
  /// impossible for inserted items).
  [[nodiscard]] bool may_contain(const NodeId& id) const;

  /// Merges another filter of identical geometry (bitwise OR); used when an
  /// AS aggregates its customers' subtree summaries.  Returns false (and
  /// leaves this filter unchanged) if geometries differ.
  bool merge(const BloomFilter& other);

  void clear();

  [[nodiscard]] std::size_t bit_count() const { return bits_; }
  [[nodiscard]] unsigned hash_count() const { return hashes_; }
  [[nodiscard]] std::size_t inserted_count() const { return inserted_; }

  /// Fraction of set bits; the theoretical false-positive rate is
  /// fill_ratio()^k.
  [[nodiscard]] double fill_ratio() const;
  [[nodiscard]] double estimated_fp_rate() const;

 private:
  [[nodiscard]] std::size_t index(const NodeId& id, unsigned k) const;

  std::size_t bits_;
  unsigned hashes_;
  std::size_t inserted_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rofl
