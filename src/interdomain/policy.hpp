// policy.hpp -- AS-level path construction and BGP-like policy checks
// (sections 4.1, 4.2).
//
// Every interdomain pointer carries an AS-level source route that climbs
// provider links from the owner to an anchor AS and descends customer links
// to the target -- a valley-free "up then down" segment.  This module builds
// those routes, validates them against the live topology, and measures their
// physical length (virtual peering ASes are transparent: traversing one is
// the peering link itself, a single hop).
#pragma once

#include <optional>

#include "interdomain/inter_types.hpp"

namespace rofl::inter {

/// Builds the AS route from `from` up to `anchor` and down to `to`,
/// following live provider links only (plus backup providers when
/// `use_backup`).  Returns nullopt if either climb fails (anchor not in a
/// live up-hierarchy).  The route includes both endpoints and the anchor.
[[nodiscard]] std::optional<AsRoute> build_route(const graph::AsTopology& topo,
                                                 AsIndex from, AsIndex anchor,
                                                 AsIndex to,
                                                 bool use_backup = false);

/// Number of physical AS-level hops of a route: edges between real ASes
/// count 1; an edge pair through a virtual peering AS counts 1 in total.
[[nodiscard]] std::uint32_t physical_hops(const graph::AsTopology& topo,
                                          const AsRoute& route);

/// True if every adjacent pair in the route is a live link and every AS is
/// up.
[[nodiscard]] bool route_live(const graph::AsTopology& topo,
                              const AsRoute& route);

/// True if the route is valley-free: a (possibly empty) ascent over
/// provider/backup-provider links, at most one peering step, then a
/// (possibly empty) descent over customer links.  This is the BGP-like
/// export/import check applied before a pointer is installed or used
/// (section 2.3, "Routing").
[[nodiscard]] bool valley_free(const graph::AsTopology& topo,
                               const AsRoute& route);

/// Shortest valley-free path length (in physical AS hops) between two ASes
/// under Gao-Rexford policies: up through providers, at most one peering
/// link, down through customers.  This is the "BGP-policy" baseline of
/// figure 8b.  Returns nullopt if no policy-compliant path exists.
[[nodiscard]] std::optional<std::uint32_t> bgp_policy_hops(
    const graph::AsTopology& topo, AsIndex src, AsIndex dst);

}  // namespace rofl::inter
