// wire_codec -- per-type control-plane codec benchmarks (BENCH_wire.json).
//
// One encode and one decode benchmark per ControlMessage alternative, so
// the trajectory comparison can catch a regression in any single codec.
// The metrics snapshot records the exact wire size of each benchmarked
// frame, pinning the section-6.3 byte accounting (1638-byte single-homed
// JoinRequest at 256 fingers) into the emitted JSON.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench/emit_json.hpp"
#include "obs/metrics.hpp"
#include "util/identity.hpp"
#include "wire/messages.hpp"

namespace rofl {
namespace {

NodeId id_from(std::uint64_t hi, std::uint64_t lo) { return NodeId(hi, lo); }

wire::msg::JoinRequest make_join_request(std::size_t fingers) {
  Rng rng(61);
  wire::msg::JoinRequest jr;
  jr.nonce = rng.next_u64();
  jr.gateway = 12;
  jr.host_class = 1;
  jr.strategy = 0;
  jr.fingers.reserve(fingers);
  for (std::size_t i = 0; i < fingers; ++i) {
    jr.fingers.push_back({static_cast<std::uint32_t>(rng.next_u64()),
                          static_cast<std::uint16_t>(rng.next_u64())});
  }
  return jr;
}

wire::msg::JoinReply make_join_reply() {
  Rng rng(67);
  wire::msg::JoinReply jr;
  jr.predecessor = id_from(rng.next_u64(), rng.next_u64());
  jr.predecessor_host = 5;
  for (int i = 0; i < 8; ++i) {
    wire::FingerField f;
    f.target = id_from(rng.next_u64(), rng.next_u64());
    jr.successors.push_back(f);
  }
  jr.migrated_ephemerals.push_back(id_from(rng.next_u64(), rng.next_u64()));
  return jr;
}

/// The benchmarked message mix, indexed by benchmark Arg.  Index 0 is the
/// section-6.3 JoinRequest (256 fingers, 1638-byte frame).
std::vector<std::pair<std::string, wire::msg::ControlMessage>> message_mix() {
  Rng rng(71);
  const NodeId a = id_from(rng.next_u64(), rng.next_u64());
  const NodeId b = id_from(rng.next_u64(), rng.next_u64());
  std::vector<std::pair<std::string, wire::msg::ControlMessage>> mix;
  mix.emplace_back("join_request_256f", make_join_request(256));
  mix.emplace_back("join_reply", make_join_reply());
  mix.emplace_back("locate", wire::msg::Locate{a, 0});
  mix.emplace_back("pointer_install", wire::msg::PointerInstall{a, b, 3, 0});
  mix.emplace_back("teardown", wire::msg::Teardown{a, 1});
  mix.emplace_back("repair", wire::msg::Repair{a, b, 4, 2});
  mix.emplace_back("keepalive", wire::msg::Keepalive{42});
  mix.emplace_back("lsa", wire::msg::Lsa{9, 17, 0, 9, 11});
  mix.emplace_back("ring_merge", wire::msg::RingMerge{a, 2, 6, 1, 0});
  return mix;
}

const std::pair<std::string, wire::msg::ControlMessage>& mix_entry(
    std::int64_t i) {
  static const auto mix = message_mix();
  return mix[static_cast<std::size_t>(i)];
}

void type_label(benchmark::State& state) {
  state.SetLabel(mix_entry(state.range(0)).first);
}

void BM_WireEncode(benchmark::State& state) {
  const auto& [name, m] = mix_entry(state.range(0));
  const NodeId src(1, 2), dst(3, 4);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const auto frame = wire::msg::encode_control(m, src, dst);
    bytes += frame.size();
    benchmark::DoNotOptimize(frame.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  type_label(state);
}
BENCHMARK(BM_WireEncode)->DenseRange(0, 8);

void BM_WireDecode(benchmark::State& state) {
  const auto& [name, m] = mix_entry(state.range(0));
  const auto frame = wire::msg::encode_control(m, NodeId(1, 2), NodeId(3, 4));
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto decoded = wire::msg::decode_control(frame);
    bytes += frame.size();
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  type_label(state);
}
BENCHMARK(BM_WireDecode)->DenseRange(0, 8);

/// Embeds the exact wire size of every benchmarked frame under "metrics",
/// so BENCH_wire.json is also a regression pin for the byte accounting.
std::string wire_size_snapshot() {
  obs::Registry m;
  const auto mix = message_mix();
  for (const auto& [name, msg] : mix) {
    const auto frame = wire::msg::encode_control(msg, NodeId(1, 2), NodeId(3, 4));
    const auto pkt = wire::Packet::decode(frame);
    m.set_counter(m.counter("wire.size." + name), frame.size());
    m.set_counter(m.counter("wire.fragments." + name),
                  pkt ? pkt->fragments() : 0);
  }
  return m.to_json(2);
}

}  // namespace
}  // namespace rofl

int main(int argc, char** argv) {
  return rofl::bench::run_with_json(argc, argv, "BENCH_wire.json",
                                    rofl::wire_size_snapshot);
}
