#include "interdomain/policy.hpp"

#include <gtest/gtest.h>

namespace rofl::inter {
namespace {

using graph::AsRel;
using graph::AsTopology;

// Topology:          0 (tier1)      1 (tier1)   0--1 peer
//                   /  \              |
//                  2    3             4
//                 /|    |
//                5 6    7
AsTopology diamond() {
  return AsTopology::from_links(
      8, {{2, 0, AsRel::kProvider},
          {3, 0, AsRel::kProvider},
          {4, 1, AsRel::kProvider},
          {5, 2, AsRel::kProvider},
          {6, 2, AsRel::kProvider},
          {7, 3, AsRel::kProvider},
          {0, 1, AsRel::kPeer}});
}

TEST(Policy, BuildRouteUpDown) {
  const AsTopology t = diamond();
  const auto r = build_route(t, 5, 0, 7);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, (AsRoute{5, 2, 0, 3, 7}));
  EXPECT_EQ(physical_hops(t, *r), 4u);
}

TEST(Policy, BuildRouteDegenerateCases) {
  const AsTopology t = diamond();
  // Anchor == endpoint.
  const auto r1 = build_route(t, 5, 5, 5);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->size(), 1u);
  EXPECT_EQ(physical_hops(t, *r1), 0u);
  // Destination below the source's own anchor.
  const auto r2 = build_route(t, 5, 2, 6);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(*r2, (AsRoute{5, 2, 6}));
}

TEST(Policy, BuildRouteFailsOutsideHierarchy) {
  const AsTopology t = diamond();
  // AS 1 is not in 5's up-hierarchy (peering is not a provider link).
  EXPECT_FALSE(build_route(t, 5, 1, 4).has_value());
}

TEST(Policy, BuildRouteRespectsFailedLinks) {
  AsTopology t = diamond();
  t.set_link_up(5, 2, false);
  EXPECT_FALSE(build_route(t, 5, 0, 7).has_value());
  t.set_link_up(5, 2, true);
  EXPECT_TRUE(build_route(t, 5, 0, 7).has_value());
}

TEST(Policy, RouteLiveTracksTopology) {
  AsTopology t = diamond();
  const AsRoute r{5, 2, 0, 3, 7};
  EXPECT_TRUE(route_live(t, r));
  t.set_as_up(0, false);
  EXPECT_FALSE(route_live(t, r));
}

TEST(Policy, ValleyFreeAccepts) {
  const AsTopology t = diamond();
  EXPECT_TRUE(valley_free(t, {5, 2, 0, 3, 7}));   // up up down down
  EXPECT_TRUE(valley_free(t, {5, 2}));            // pure ascent
  EXPECT_TRUE(valley_free(t, {0, 3, 7}));         // pure descent
  EXPECT_TRUE(valley_free(t, {2, 0, 1, 4}));      // up peer down
  EXPECT_TRUE(valley_free(t, {5}));               // trivial
}

TEST(Policy, ValleyFreeRejects) {
  const AsTopology t = diamond();
  EXPECT_FALSE(valley_free(t, {2, 0, 1, 0}));  // peer then up... (0 again)
  EXPECT_FALSE(valley_free(t, {5, 2, 5, 2}));  // down then up
  EXPECT_FALSE(valley_free(t, {0, 2, 0}));     // descent then ascent (valley)
  EXPECT_FALSE(valley_free(t, {5, 7}));        // not even adjacent
}

TEST(Policy, BgpHopsUpDown) {
  const AsTopology t = diamond();
  EXPECT_EQ(bgp_policy_hops(t, 5, 7), 4u);   // 5-2-0-3-7
  EXPECT_EQ(bgp_policy_hops(t, 5, 6), 2u);   // 5-2-6
  EXPECT_EQ(bgp_policy_hops(t, 5, 5), 0u);
  EXPECT_EQ(bgp_policy_hops(t, 5, 2), 1u);
}

TEST(Policy, BgpHopsAcrossPeering) {
  const AsTopology t = diamond();
  // 5 -> 4 must cross the 0--1 peering: 5-2-0-1-4 = 4 hops.
  EXPECT_EQ(bgp_policy_hops(t, 5, 4), 4u);
}

TEST(Policy, BgpHopsNulloptWhenPartitioned) {
  AsTopology t = diamond();
  t.set_link_up(0, 1, false);
  EXPECT_EQ(bgp_policy_hops(t, 5, 4), std::nullopt);
}

TEST(Policy, VirtualAsIsTransparentInHopCount) {
  AsTopology t = diamond();
  std::vector<std::pair<graph::AsIndex, std::vector<graph::AsIndex>>> vmap;
  const AsTopology conv = t.with_virtual_peering_ases(&vmap);
  ASSERT_EQ(vmap.size(), 1u);
  const graph::AsIndex v = vmap[0].first;
  // Route 2 -> v -> 4 collapses the virtual hop: physical hops = 2-1? No:
  // 2 -> 0 is not on this route; 2 -(up)-> v -(down)-> 1? members are {0,1}.
  const auto r = build_route(conv, 5, v, 4);
  ASSERT_TRUE(r.has_value());
  // 5,2,0,v,1,4: entering v free, so physical = 5-2,2-0,0~1 (peering),1-4 = 4.
  EXPECT_EQ(physical_hops(conv, *r), 4u);
}

}  // namespace
}  // namespace rofl::inter
