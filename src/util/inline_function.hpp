// inline_function.hpp -- small-buffer-optimized move-only callable.
//
// The simulator schedules millions of events per run; wrapping every event
// closure in a std::function heap-allocates whenever the capture outgrows
// the library's tiny internal buffer (two pointers on libstdc++).  This
// callable embeds captures up to `BufSize` bytes directly in the object, so
// event payloads live inline in the event-queue slab and the hot scheduling
// path performs zero allocations.  Oversized captures (rare; asserted
// against in debug builds of the simulator hot path) degrade gracefully to
// a single heap cell.
//
// Move-only by design: events are consumed exactly once, and copyability
// would force every capture to be copyable.  Construction accepts any
// callable (including copyable ones, e.g. a std::function lvalue).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace rofl::util {

template <typename Signature, std::size_t BufSize = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t BufSize>
class InlineFunction<R(Args...), BufSize> {
 public:
  InlineFunction() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= BufSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &inline_vtable<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &boxed_vtable<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

  /// True when the callable is stored inline (no heap cell).
  [[nodiscard]] bool is_inline() const {
    return vt_ != nullptr && vt_->inline_storage;
  }

  R operator()(Args... args) {
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    // Move-constructs dst from src, then destroys src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static constexpr VTable inline_vtable{
      [](void* p, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(p)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); },
      /*inline_storage=*/true,
  };

  template <typename D>
  static constexpr VTable boxed_vtable{
      [](void* p, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<D**>(p)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        // The source pointer slot is trivially destructible; stealing the
        // pointee is the whole relocation.
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<D**>(p)); },
      /*inline_storage=*/false,
  };

  void move_from(InlineFunction& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[BufSize];
};

}  // namespace rofl::util
