#include "audit/shrink.hpp"

#include <algorithm>

namespace rofl::audit {

ShrinkResult shrink_schedule(std::vector<ChurnEvent> events,
                             const FailurePredicate& still_fails,
                             std::size_t max_probes) {
  ShrinkResult r;
  const auto probe = [&](const std::vector<ChurnEvent>& cand) {
    ++r.probes;
    return still_fails(cand);
  };

  if (max_probes == 0 || !probe(events)) {
    r.events = std::move(events);
    return r;
  }
  std::vector<ChurnEvent> cur = std::move(events);

  std::size_t chunk = std::max<std::size_t>(1, cur.size() / 2);
  while (true) {
    bool removed_any = false;
    for (std::size_t start = 0;
         start < cur.size() && r.probes < max_probes;) {
      const std::size_t end = std::min(start + chunk, cur.size());
      std::vector<ChurnEvent> cand;
      cand.reserve(cur.size() - (end - start));
      cand.insert(cand.end(), cur.begin(),
                  cur.begin() + static_cast<std::ptrdiff_t>(start));
      cand.insert(cand.end(), cur.begin() + static_cast<std::ptrdiff_t>(end),
                  cur.end());
      if (probe(cand)) {
        cur = std::move(cand);
        removed_any = true;
        // Do not advance: the next chunk has shifted into `start`.
      } else {
        start = end;
      }
    }
    if (r.probes >= max_probes) break;
    if (chunk > 1) {
      chunk /= 2;
      continue;
    }
    // chunk == 1: iterate to a fixpoint, then we are 1-minimal.
    if (!removed_any) {
      r.minimal = true;
      break;
    }
  }
  r.events = std::move(cur);
  return r;
}

}  // namespace rofl::audit
