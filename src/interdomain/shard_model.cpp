#include "interdomain/shard_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "obs/flight_recorder.hpp"
#include "sim/profiler.hpp"
#include "wire/messages.hpp"

namespace rofl::inter {

namespace {

// Event opcodes.
constexpr std::uint32_t kTick = 1;
constexpr std::uint32_t kRegister = 2;
constexpr std::uint32_t kUnregister = 3;
constexpr std::uint32_t kLookup = 4;
constexpr std::uint32_t kLookupResp = 5;

// Lookups are traced under the data category (they model the paper's
// resolution path); registration traffic is join/teardown accounting only.
constexpr std::uint8_t kDataCategory = 4;

struct RegPayload {
  std::uint64_t id_hi;
  std::uint64_t id_lo;
  std::uint32_t home;
};

struct LookupPayload {
  std::uint64_t id_hi;
  std::uint64_t id_lo;
  std::uint64_t trace;       // 0 = untraced
  std::uint32_t target_as;
  std::uint32_t src_as;
  std::uint16_t hops;
  std::uint8_t clique_pos;   // next tier-1 list index to try at the top
};

struct RespPayload {
  std::uint64_t id_hi;
  std::uint64_t id_lo;
  std::uint64_t trace;
  std::uint16_t hops;
  std::uint8_t hit;
};

static_assert(sizeof(RegPayload) <= sim::kShardEventPayloadBytes);
static_assert(sizeof(LookupPayload) <= sim::kShardEventPayloadBytes);
static_assert(sizeof(RespPayload) <= sim::kShardEventPayloadBytes);

template <typename P>
P read_payload(const sim::ShardEvent& ev) {
  assert(ev.size == sizeof(P));
  P p;
  std::memcpy(&p, ev.payload.data(), sizeof(P));
  return p;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

NodeId ShardScaleModel::id_for(std::uint64_t seed, graph::AsIndex as,
                               std::uint32_t slot) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(as) << 32) | std::uint64_t{slot};
  return NodeId{mix64(seed ^ key), mix64(key ^ 0xD1B54A32D192ED03ull)};
}

void ShardScaleModel::register_metrics(obs::Registry& reg, MetricIds* out) {
  MetricIds ids;
  ids.ticks = reg.counter("scale.ticks");
  ids.ops_join = reg.counter("scale.ops.join");
  ids.ops_leave = reg.counter("scale.ops.leave");
  ids.ops_lookup = reg.counter("scale.ops.lookup");
  ids.leave_noop = reg.counter("scale.leave.noop");
  ids.lookup_hit = reg.counter("scale.lookup.hit");
  ids.lookup_miss = reg.counter("scale.lookup.miss");
  ids.msgs_register = reg.counter("scale.msgs.register");
  ids.msgs_unregister = reg.counter("scale.msgs.unregister");
  ids.msgs_lookup = reg.counter("scale.msgs.lookup");
  ids.msgs_resp = reg.counter("scale.msgs.resp");
  ids.bytes_wire = reg.counter("scale.bytes.wire");
  ids.ring_max = reg.gauge("scale.ring.max");
  ids.hops_hist = reg.histogram("scale.lookup.hops",
                                obs::Histogram::linear_bounds(0.0, 1.0, 32));
  ids.ring_size_hist = reg.histogram(
      "scale.ring.size", obs::Histogram::exponential_bounds(1.0, 2.0, 22));
  if (out != nullptr) *out = ids;
}

ShardScaleModel::ShardScaleModel(const ScaleParams& params)
    : params_(params),
      topo_([&params] {
        graph::AsGenParams gp = params.topo;
        gp.total_hosts = params.hosts;
        Rng topo_rng(mix64(params.seed ^ 0x70F0F0F0ull));
        return graph::AsTopology::make_internet_like(gp, topo_rng);
      }()) {
  const auto n = static_cast<graph::AsIndex>(topo_.as_count());

  provider_.assign(n, graph::kInvalidAs);
  for (graph::AsIndex a = 0; a < n; ++a) {
    const std::vector<graph::AsIndex> provs = topo_.providers(a);
    if (!provs.empty()) provider_[a] = provs.front();
    if (topo_.tier(a) == 1) tier1_.push_back(a);
  }
  std::sort(tier1_.begin(), tier1_.end());

  chain_.resize(n);
  for (graph::AsIndex a = 0; a < n; ++a) {
    graph::AsIndex cur = a;
    // A provider walk on a generated topology is acyclic, but guard anyway:
    // a cycle would otherwise hang construction, not fail a test.
    for (unsigned depth = 0; depth < 64 && cur != graph::kInvalidAs; ++depth) {
      chain_[a].push_back(cur);
      cur = provider_[cur];
    }
  }

  // Anchor weight: an AS executes its own hosts' ops and absorbs one
  // registration hop from every AS whose chain passes through it.
  std::vector<std::uint64_t> weights(n, 0);
  for (graph::AsIndex a = 0; a < n; ++a) {
    for (const graph::AsIndex anchor : chain_[a]) {
      weights[anchor] += topo_.host_count(a);
    }
  }
  shard_map_ = sim::balanced_shard_map(weights, params_.shards);

  // Host-weighted target picker: cdf over AS indices (zero-host ASes get an
  // epsilon so the cdf stays strictly increasing and every AS is reachable).
  target_cdf_.resize(n);
  double acc = 0.0;
  for (graph::AsIndex a = 0; a < n; ++a) {
    acc += static_cast<double>(topo_.host_count(a)) + 1e-3;
    target_cdf_[a] = acc;
  }
  for (double& v : target_cdf_) v /= acc;

  state_.resize(n);
  for (AsState& st : state_) {
    st.live.assign(params_.slots_per_as, 0);
  }

  frame_bytes_ = wire::msg::control_wire_size(wire::msg::RingMerge{});

  sim::ShardedSimulator::Config cfg;
  cfg.shards = params_.shards;
  cfg.lookahead_ms = params_.lookahead_ms;
  cfg.channel_capacity = params_.channel_capacity;
  cfg.seed = params_.seed;
  cfg.recorder_capacity = params_.recorder_capacity;
  engine_ = std::make_unique<sim::ShardedSimulator>(shard_map_, cfg);
  engine_->set_registry_init(
      [](obs::Registry& reg) { register_metrics(reg, nullptr); });
  if (params_.timeline_window_ms > 0.0) {
    engine_->enable_timeline(obs::Timeline::Config{
        params_.timeline_window_ms, params_.timeline_capacity, {}});
  }
  if (params_.profile) {
    profiler_ = std::make_unique<sim::EngineProfiler>(params_.shards);
    profiler_->set_kind_names(
        {"", "tick", "register", "unregister", "lookup", "resp"});
    engine_->set_profiler(profiler_.get());
  }
  {
    // Ids are identical across shard registries (same registrations in the
    // same order); capture them once from a scratch registry.
    obs::Registry scratch;
    register_metrics(scratch, &ids_);
  }
  engine_->set_handler([this](sim::ShardContext& ctx,
                              const sim::ShardEvent& ev) { handle(ctx, ev); });
}

ShardScaleModel::~ShardScaleModel() = default;

bool ShardScaleModel::slot_live(graph::AsIndex a, std::uint32_t slot) const {
  return state_[a].live[slot] != 0;
}

const std::map<NodeId, graph::AsIndex>& ShardScaleModel::ring(
    graph::AsIndex a) const {
  return state_[a].ring;
}

double ShardScaleModel::latency(graph::AsIndex from, graph::AsIndex to) const {
  // Deterministic per-AS-pair base, 1-4x lookahead.  Fixing the delay per
  // ordered pair keeps every link FIFO: two frames on the same hop share a
  // delay, so the (when, src, seq) tie-break preserves send order and a
  // deregistration can never overtake the registration it revokes.  The
  // multiples are exact binary doubles, so timestamps are identical sums on
  // every shard count.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from) << 32) | std::uint64_t{to};
  return params_.lookahead_ms *
         (1.0 + static_cast<double>(mix64(params_.seed ^ key) & 3u));
}

graph::AsIndex ShardScaleModel::pick_target(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(target_cdf_.begin(), target_cdf_.end(), u);
  if (it == target_cdf_.end()) {
    return static_cast<graph::AsIndex>(target_cdf_.size() - 1);
  }
  return static_cast<graph::AsIndex>(it - target_cdf_.begin());
}

sim::ShardedSimulator::RunStats ShardScaleModel::run() {
  const auto n = static_cast<graph::AsIndex>(topo_.as_count());
  for (graph::AsIndex a = 0; a < n; ++a) {
    // Staggered phases spread tick storms without affecting determinism.
    const double phase =
        params_.tick_ms * static_cast<double>(a % 16) / 16.0;
    engine_->seed_event(phase, a, kTick);
  }
  return engine_->run();
}

void ShardScaleModel::handle(sim::ShardContext& ctx,
                             const sim::ShardEvent& ev) {
  switch (ev.kind) {
    case kTick:
      do_tick(ctx, ev);
      return;
    case kRegister: {
      const auto p = read_payload<RegPayload>(ev);
      ring_insert(ctx, ctx.self(), NodeId{p.id_hi, p.id_lo}, p.home);
      if (provider_[ctx.self()] != graph::kInvalidAs) {
        ctx.metrics().add(ids_.msgs_register);
        ctx.metrics().add(ids_.bytes_wire, frame_bytes_);
        ctx.send(provider_[ctx.self()], latency(ctx.self(), provider_[ctx.self()]),
                 kRegister, &p, sizeof(p));
      }
      return;
    }
    case kUnregister: {
      const auto p = read_payload<RegPayload>(ev);
      state_[ctx.self()].ring.erase(NodeId{p.id_hi, p.id_lo});
      if (provider_[ctx.self()] != graph::kInvalidAs) {
        ctx.metrics().add(ids_.msgs_unregister);
        ctx.metrics().add(ids_.bytes_wire, frame_bytes_);
        ctx.send(provider_[ctx.self()], latency(ctx.self(), provider_[ctx.self()]),
                 kUnregister, &p, sizeof(p));
      }
      return;
    }
    case kLookup: {
      const auto p = read_payload<LookupPayload>(ev);
      const graph::AsIndex b = ctx.self();
      const NodeId id{p.id_hi, p.id_lo};
      if (state_[b].ring.contains(id)) {
        if (p.trace != 0) {
          ctx.recorder().record({p.trace, 0, ctx.now_ms(),
                                 obs::HopDomain::kInter, b, kDataCategory,
                                 obs::HopKind::kDeliver,
                                 static_cast<std::uint32_t>(frame_bytes_), id});
        }
        RespPayload r{p.id_hi, p.id_lo, p.trace, p.hops, 1};
        ctx.metrics().add(ids_.msgs_resp);
        ctx.metrics().add(ids_.bytes_wire, frame_bytes_);
        ctx.send(p.src_as, latency(ctx.self(), p.src_as), kLookupResp, &r,
                 sizeof(r));
        return;
      }
      continue_lookup(ctx, b, ev.payload.data());
      return;
    }
    case kLookupResp: {
      const auto p = read_payload<RespPayload>(ev);
      const graph::AsIndex a = ctx.self();
      ctx.metrics().add(p.hit != 0 ? ids_.lookup_hit : ids_.lookup_miss);
      ctx.metrics().observe(ids_.hops_hist, static_cast<double>(p.hops));
      if (p.trace != 0) {
        ctx.recorder().record(
            {p.trace, 0, ctx.now_ms(), obs::HopDomain::kInter, a,
             kDataCategory,
             p.hit != 0 ? obs::HopKind::kDeliver : obs::HopKind::kDrop,
             static_cast<std::uint32_t>(frame_bytes_),
             NodeId{p.id_hi, p.id_lo}});
      }
      return;
    }
    default:
      assert(false && "unknown event kind");
  }
}

void ShardScaleModel::do_tick(sim::ShardContext& ctx,
                              const sim::ShardEvent& ev) {
  const graph::AsIndex a = ctx.self();
  AsState& st = state_[a];
  ctx.metrics().add(ids_.ticks);

  const double lambda = params_.op_rate_per_host_hz *
                        static_cast<double>(topo_.host_count(a)) *
                        params_.tick_ms / 1000.0;
  st.op_accumulator += lambda;
  auto ops = static_cast<std::uint64_t>(st.op_accumulator);
  st.op_accumulator -= static_cast<double>(ops);

  for (std::uint64_t i = 0; i < ops; ++i) {
    const double u = ctx.rng().uniform();
    if (u < params_.join_frac) {
      do_join(ctx, a);
    } else if (u < params_.join_frac + params_.leave_frac) {
      do_leave(ctx, a);
    } else {
      do_lookup(ctx, a);
    }
  }

  if (ev.when + params_.tick_ms <= params_.duration_ms) {
    ctx.send(a, params_.tick_ms, kTick);
  }
}

void ShardScaleModel::do_join(sim::ShardContext& ctx, graph::AsIndex a) {
  AsState& st = state_[a];
  ctx.metrics().add(ids_.ops_join);
  const auto slot = static_cast<std::uint32_t>(
      ctx.rng().below(params_.slots_per_as));
  st.live[slot] = 1;
  const NodeId id = id_for(params_.seed, a, slot);
  ring_insert(ctx, a, id, a);  // level-0 ring: the home AS itself
  if (provider_[a] != graph::kInvalidAs) {
    const RegPayload p{id.hi(), id.lo(), a};
    ctx.metrics().add(ids_.msgs_register);
    ctx.metrics().add(ids_.bytes_wire, frame_bytes_);
    ctx.send(provider_[a], latency(a, provider_[a]), kRegister, &p, sizeof(p));
  }
}

void ShardScaleModel::do_leave(sim::ShardContext& ctx, graph::AsIndex a) {
  AsState& st = state_[a];
  ctx.metrics().add(ids_.ops_leave);
  const auto slot = static_cast<std::uint32_t>(
      ctx.rng().below(params_.slots_per_as));
  if (st.live[slot] == 0) {
    ctx.metrics().add(ids_.leave_noop);
    return;
  }
  st.live[slot] = 0;
  const NodeId id = id_for(params_.seed, a, slot);
  st.ring.erase(id);
  if (provider_[a] != graph::kInvalidAs) {
    const RegPayload p{id.hi(), id.lo(), a};
    ctx.metrics().add(ids_.msgs_unregister);
    ctx.metrics().add(ids_.bytes_wire, frame_bytes_);
    ctx.send(provider_[a], latency(a, provider_[a]), kUnregister, &p, sizeof(p));
  }
}

void ShardScaleModel::do_lookup(sim::ShardContext& ctx, graph::AsIndex a) {
  AsState& st = state_[a];
  ctx.metrics().add(ids_.ops_lookup);
  const graph::AsIndex target = pick_target(ctx.rng());
  const auto slot = static_cast<std::uint32_t>(
      ctx.rng().below(params_.slots_per_as));
  const NodeId id = id_for(params_.seed, target, slot);

  st.lookup_counter++;
  std::uint64_t trace = 0;
  if (params_.trace_sample != 0 &&
      st.lookup_counter % params_.trace_sample == 0) {
    trace = ((static_cast<std::uint64_t>(a) + 1) << 32) | st.lookup_counter;
    ctx.recorder().record({trace, 0, ctx.now_ms(), obs::HopDomain::kInter, a,
                           kDataCategory, obs::HopKind::kStart,
                           static_cast<std::uint32_t>(frame_bytes_), id});
  }

  if (st.ring.contains(id)) {
    // Hit in the local (level-0 or merged) ring: resolved without traffic.
    ctx.metrics().add(ids_.lookup_hit);
    ctx.metrics().observe(ids_.hops_hist, 0.0);
    if (trace != 0) {
      ctx.recorder().record({trace, 0, ctx.now_ms(), obs::HopDomain::kInter, a,
                             kDataCategory, obs::HopKind::kDeliver, 0, id});
    }
    return;
  }

  LookupPayload p{id.hi(), id.lo(), trace, target, a, 0, 0};
  std::array<std::uint8_t, sizeof(LookupPayload)> raw;
  std::memcpy(raw.data(), &p, sizeof(p));
  continue_lookup(ctx, a, raw.data());
}

void ShardScaleModel::ring_insert(sim::ShardContext& ctx,
                                  graph::AsIndex anchor, NodeId id,
                                  graph::AsIndex home) {
  AsState& st = state_[anchor];
  st.ring[id] = home;
  const auto size = static_cast<double>(st.ring.size());
  ctx.metrics().observe(ids_.ring_size_hist, size);
  if (size > ctx.metrics().gauge_value(ids_.ring_max)) {
    ctx.metrics().set(ids_.ring_max, size);
  }
}

void ShardScaleModel::continue_lookup(sim::ShardContext& ctx,
                                      graph::AsIndex b,
                                      const std::uint8_t* payload) {
  LookupPayload p;
  std::memcpy(&p, payload, sizeof(p));
  const NodeId id{p.id_hi, p.id_lo};

  graph::AsIndex next = graph::kInvalidAs;
  obs::HopKind kind = obs::HopKind::kLevelEscalate;
  if (provider_[b] != graph::kInvalidAs) {
    next = provider_[b];
  } else {
    // Top of the hierarchy: sweep the tier-1 clique in ascending index
    // order -- the deterministic stand-in for the section 4.2 peering rule.
    std::uint8_t pos = p.clique_pos;
    while (pos < tier1_.size() && tier1_[pos] == b) ++pos;
    if (pos < tier1_.size()) {
      next = tier1_[pos];
      p.clique_pos = static_cast<std::uint8_t>(pos + 1);
      kind = obs::HopKind::kPeeringCross;
    }
  }

  if (next == graph::kInvalidAs) {
    // Hierarchy exhausted: answer the source with a miss.
    RespPayload r{p.id_hi, p.id_lo, p.trace, p.hops, 0};
    ctx.metrics().add(ids_.msgs_resp);
    ctx.metrics().add(ids_.bytes_wire, frame_bytes_);
    ctx.send(p.src_as, latency(b, p.src_as), kLookupResp, &r,
             sizeof(r));
    return;
  }

  if (p.trace != 0) {
    ctx.recorder().record({p.trace, 0, ctx.now_ms(), obs::HopDomain::kInter, b,
                           kDataCategory, kind,
                           static_cast<std::uint32_t>(frame_bytes_), id});
  }
  p.hops++;
  ctx.metrics().add(ids_.msgs_lookup);
  ctx.metrics().add(ids_.bytes_wire, frame_bytes_);
  ctx.send(next, latency(b, next), kLookup, &p, sizeof(p));
}

}  // namespace rofl::inter
