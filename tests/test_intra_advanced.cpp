// Advanced intradomain scenarios: failure injection sequences, stale-cache
// recovery, directed-flood hygiene, successor-group resilience, latency
// properties, and configuration ablations.
#include <gtest/gtest.h>

#include <set>

#include "rofl/network.hpp"
#include "util/stats.hpp"

namespace rofl::intra {
namespace {

struct Net {
  graph::IspTopology topo;
  std::unique_ptr<Network> net;

  explicit Net(std::size_t routers = 36, std::size_t pops = 6,
               Config cfg = {}, std::uint64_t seed = 501) {
    Rng trng(seed);
    graph::IspParams p;
    p.router_count = routers;
    p.pop_count = pops;
    topo = graph::make_isp_topology(p, trng);
    net = std::make_unique<Network>(&topo, cfg, seed + 1);
  }

  std::vector<Identity> join_idents(std::size_t n) {
    std::vector<Identity> out;
    for (std::size_t i = 0; i < n; ++i) {
      Identity ident = Identity::generate(net->rng());
      const auto gw = static_cast<graph::NodeIndex>(
          net->rng().index(net->router_count()));
      if (net->join_host(ident, gw).ok) out.push_back(ident);
    }
    return out;
  }
};

TEST(IntraAdvanced, DirectedFloodClearsCachedPointers) {
  Net t;
  const auto idents = t.join_idents(60);
  const NodeId victim = idents[20].id();
  // Find the routers caching the victim before the failure.
  std::size_t cached_before = 0;
  for (graph::NodeIndex r = 0; r < t.net->router_count(); ++r) {
    if (t.net->router(r).cache().find(victim) != nullptr) ++cached_before;
  }
  (void)t.net->fail_host(victim);
  // Invariant (b): control-path routers must have dropped the pointer.
  const std::size_t total = t.net->router_count();
  std::size_t cached_after = 0;
  for (graph::NodeIndex r = 0; r < total; ++r) {
    if (t.net->router(r).cache().find(victim) != nullptr) ++cached_after;
  }
  EXPECT_LT(cached_after, cached_before + 1);
  // Any stragglers (cached off the control path) must not break routing of
  // nearby IDs.
  for (const auto& ident : idents) {
    if (ident.id() == victim) continue;
    EXPECT_TRUE(t.net->route(0, ident.id()).delivered);
  }
}

TEST(IntraAdvanced, StaleCacheEntryRecoveredOnDataPath) {
  Net t;
  const auto idents = t.join_idents(50);
  const NodeId victim = idents[10].id();
  const auto victim_home = *t.net->hosting_router(victim);
  // Plant a deliberately stale cache entry at a remote router, then kill
  // the host: forwarding toward a nearby ID must survive the lie.
  graph::NodeIndex far = 0;
  for (graph::NodeIndex r = 0; r < t.net->router_count(); ++r) {
    if (r != victim_home) far = r;
  }
  (void)t.net->fail_host(victim);
  t.net->router(far).cache().insert(victim, victim_home,
                                    t.net->map().path(far, victim_home));
  // Routing to the dead ID itself chases the stale pointer, discovers the
  // ID is gone, and tears the entry down (invariant (b)); the packet is
  // then correctly reported undeliverable.
  EXPECT_FALSE(t.net->route(far, victim).delivered);
  EXPECT_EQ(t.net->router(far).cache().find(victim), nullptr);
  // Live destinations keep working regardless of the planted lie.
  const auto it = t.net->directory().upper_bound(victim);
  const NodeId target =
      it != t.net->directory().end() ? it->first
                                     : t.net->directory().begin()->first;
  EXPECT_TRUE(t.net->route(far, target).delivered);
}

TEST(IntraAdvanced, SimultaneousSuccessorFailures) {
  // Successor groups (k=4) survive several adjacent IDs dying at once.
  Net t;
  auto idents = t.join_idents(60);
  // Sort by ID and kill three consecutive ring members.
  std::sort(idents.begin(), idents.end(),
            [](const Identity& a, const Identity& b) { return a.id() < b.id(); });
  for (int i = 20; i < 23; ++i) {
    (void)t.net->fail_host(idents[static_cast<std::size_t>(i)].id());
  }
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
  for (std::size_t i = 0; i < idents.size(); ++i) {
    if (i >= 20 && i < 23) continue;
    EXPECT_TRUE(t.net->route(1, idents[i].id()).delivered) << i;
  }
}

TEST(IntraAdvanced, CascadingRouterFailures) {
  Net t(40, 8);
  const auto idents = t.join_idents(80);
  Rng chooser(77);
  std::set<graph::NodeIndex> downed;
  for (int round = 0; round < 5; ++round) {
    graph::NodeIndex r;
    // Keep the graph connected: try candidates until one's removal doesn't
    // partition the network.
    for (;;) {
      r = static_cast<graph::NodeIndex>(chooser.index(t.net->router_count()));
      if (downed.contains(r)) continue;
      t.topo.graph.set_node_up(r, false);
      const bool still = t.topo.graph.connected();
      t.topo.graph.set_node_up(r, true);
      if (still) break;
    }
    downed.insert(r);
    (void)t.net->fail_router(r);
    std::string err;
    ASSERT_TRUE(t.net->verify_rings(&err)) << "round " << round << ": " << err;
  }
  // Every host is still reachable from some live router.
  graph::NodeIndex probe = 0;
  while (downed.contains(probe)) ++probe;
  for (const auto& ident : idents) {
    EXPECT_TRUE(t.net->route(probe, ident.id()).delivered);
  }
}

TEST(IntraAdvanced, FailThenRestoreRouterRoundTrip) {
  Net t;
  const auto idents = t.join_idents(40);
  const graph::NodeIndex r = 7;
  (void)t.net->fail_router(r);
  (void)t.net->restore_router(r);
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err, /*strict=*/true)) << err;
  // The restored router can serve as a gateway again.
  Identity fresh = Identity::generate(t.net->rng());
  EXPECT_TRUE(t.net->join_host(fresh, r).ok);
  EXPECT_TRUE(t.net->route(0, fresh.id()).delivered);
}

TEST(IntraAdvanced, RepeatedLinkFlaps) {
  Net t;
  const auto idents = t.join_idents(50);
  // Flap the first redundant link five times.
  graph::NodeIndex u = 0, v = 0;
  for (graph::NodeIndex a = 0; a < t.net->router_count() && v == 0; ++a) {
    for (const auto& e : t.topo.graph.neighbors(a)) {
      if (a > e.to) continue;
      t.topo.graph.set_link_up(a, e.to, false);
      const bool still = t.topo.graph.connected();
      t.topo.graph.set_link_up(a, e.to, true);
      if (still) {
        u = a;
        v = e.to;
        break;
      }
    }
  }
  ASSERT_NE(v, 0u);
  for (int i = 0; i < 5; ++i) {
    (void)t.net->fail_link(u, v);
    (void)t.net->restore_link(u, v);
  }
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
  for (const auto& ident : idents) {
    EXPECT_TRUE(t.net->route(0, ident.id()).delivered);
  }
}

TEST(IntraAdvanced, SuccessorGroupSizeAblation) {
  // Deeper successor groups cost more join traffic but survive deeper
  // simultaneous failures; k=1 must break under a 2-deep cut while k=4
  // survives.  (The ablation bench quantifies the cost side.)
  for (const std::size_t k : {1u, 4u}) {
    Config cfg;
    cfg.successor_group = k;
    Net t(36, 6, cfg, 900 + k);
    auto idents = t.join_idents(50);
    std::sort(idents.begin(), idents.end(), [](const auto& a, const auto& b) {
      return a.id() < b.id();
    });
    // Kill two consecutive members abruptly WITHOUT repair in between.
    const NodeId a = idents[10].id();
    const NodeId b = idents[11].id();
    (void)t.net->fail_host(a);
    (void)t.net->fail_host(b);
    std::string err;
    const bool ok = t.net->verify_rings(&err);
    if (k >= 2) {
      EXPECT_TRUE(ok) << "k=" << k << ": " << err;
    }
    // Either way the network must self-heal via repair.
    (void)t.net->repair_partitions();
    EXPECT_TRUE(t.net->verify_rings(&err)) << "k=" << k << " post-repair: "
                                           << err;
  }
}

TEST(IntraAdvanced, CacheDisabledStillCorrect) {
  Config cfg;
  cfg.cache_capacity = 0;
  cfg.cache_control_paths = false;
  Net t(30, 5, cfg);
  const auto idents = t.join_idents(60);
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
  for (const auto& ident : idents) {
    EXPECT_TRUE(t.net->route(2, ident.id()).delivered);
  }
  for (graph::NodeIndex r = 0; r < t.net->router_count(); ++r) {
    EXPECT_EQ(t.net->router(r).cache().size(), 0u);
  }
}

TEST(IntraAdvanced, JoinLatencyScalesWithDiameterNotSize) {
  // Two networks with the same diameter class but different router counts:
  // join latency should track diameter (the paper's claim), not router
  // count.
  Net small(24, 4, {}, 111);
  Net big(96, 4, {}, 112);  // same PoP count => similar diameter
  auto measure = [](Net& t) {
    SampleSet lat;
    for (int i = 0; i < 40; ++i) {
      Identity ident = Identity::generate(t.net->rng());
      const auto gw = static_cast<graph::NodeIndex>(
          t.net->rng().index(t.net->router_count()));
      const auto js = t.net->join_host(ident, gw);
      if (js.ok) lat.add(js.latency_ms);
    }
    return lat.mean();
  };
  const double lat_small = measure(small);
  const double lat_big = measure(big);
  // 4x routers must not mean 4x latency; allow 2.5x slack.
  EXPECT_LT(lat_big, 2.5 * lat_small);
}

TEST(IntraAdvanced, EphemeralChurnLeavesNoResidue) {
  Net t;
  (void)t.join_idents(30);
  const std::size_t baseline_state = [&] {
    std::size_t s = 0;
    for (graph::NodeIndex r = 0; r < t.net->router_count(); ++r) {
      s += t.net->router(r).state_entries();
    }
    return s;
  }();
  // 40 ephemeral hosts join and fail.
  for (int i = 0; i < 40; ++i) {
    Identity ident = Identity::generate(t.net->rng());
    const auto gw = static_cast<graph::NodeIndex>(
        t.net->rng().index(t.net->router_count()));
    if (t.net->join_host(ident, gw, HostClass::kEphemeral).ok) {
      (void)t.net->fail_host(ident.id());
    }
  }
  std::size_t after = 0;
  std::size_t backpointers = 0;
  for (graph::NodeIndex r = 0; r < t.net->router_count(); ++r) {
    after += t.net->router(r).state_entries();
    backpointers += t.net->router(r).ephemeral_backpointers().size();
  }
  EXPECT_EQ(backpointers, 0u);
  // Ring state unchanged (caches may have grown from control traffic).
  EXPECT_GE(after + 1, baseline_state);
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
}

TEST(IntraAdvanced, CountersPartitionByCategory) {
  Net t;
  const auto before_join =
      t.net->simulator().counters().get(sim::MsgCategory::kJoin);
  const auto idents = t.join_idents(10);
  const auto after_join =
      t.net->simulator().counters().get(sim::MsgCategory::kJoin);
  EXPECT_GT(after_join, before_join);

  const auto before_td =
      t.net->simulator().counters().get(sim::MsgCategory::kTeardown);
  (void)t.net->fail_host(idents[0].id());
  EXPECT_GT(t.net->simulator().counters().get(sim::MsgCategory::kTeardown),
            before_td);

  const auto before_data =
      t.net->simulator().counters().get(sim::MsgCategory::kData);
  (void)t.net->route(0, idents[1].id());
  EXPECT_GE(t.net->simulator().counters().get(sim::MsgCategory::kData),
            before_data);
}

// Property sweep: for any successor-group depth, a fresh network's rings are
// canonical and repair is a no-op.
class GroupDepth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GroupDepth, CanonicalAfterJoins) {
  Config cfg;
  cfg.successor_group = GetParam();
  Net t(30, 5, cfg, 1300 + GetParam());
  (void)t.join_idents(60);
  std::string err;
  // Strict mode: full successor groups and predecessors must be canonical.
  ASSERT_TRUE(t.net->verify_rings(&err, /*strict=*/true)) << err;
  const RepairStats rs = t.net->repair_partitions();
  EXPECT_EQ(rs.ids_rejoined, 0u);
  EXPECT_EQ(rs.pointers_torn, 0u);
}

INSTANTIATE_TEST_SUITE_P(Depths, GroupDepth,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace rofl::intra
