#include "wire/packet.hpp"

#include <cassert>
#include <cstring>

namespace rofl::wire {
namespace {

constexpr std::uint8_t kFlagPeering = 0x01;
constexpr std::uint8_t kFlagCapability = 0x02;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).  Bitwise rather
/// than table-driven: packets are small and this keeps the binary free of a
/// 1 KiB table for a check that runs once per encode/decode.
std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    crc ^= byte;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

}  // namespace

void write_node_id(ByteWriter& w, const NodeId& id) {
  w.u64(id.hi());
  w.u64(id.lo());
}

std::optional<NodeId> read_node_id(ByteReader& r) {
  const auto hi = r.u64();
  const auto lo = r.u64();
  if (!hi.has_value() || !lo.has_value()) return std::nullopt;
  return NodeId{*hi, *lo};
}

std::vector<std::uint8_t> Packet::encode() const {
  // Counts and lengths ride u16 fields; anything larger cannot be encoded
  // without corrupting the packet, so encoding refuses (empty result)
  // instead of clamping.
  if (payload.size() > 0xFFFF || as_path.size() > 0xFFFF ||
      fingers.size() > 0xFFFF) {
    return {};
  }
  ByteWriter w;
  w.u8(version);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(ttl);
  std::uint8_t flags = 0;
  if (crossed_peering) flags |= kFlagPeering;
  if (capability.has_value()) flags |= kFlagCapability;
  w.u8(flags);
  write_node_id(w, destination);
  write_node_id(w, source);
  w.u64(trace_id);
  w.u16(static_cast<std::uint16_t>(as_path.size()));
  for (const std::uint32_t as : as_path) w.u32(as);
  if (capability.has_value()) {
    write_node_id(w, capability->source);
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(capability->expiry_ms));
    std::memcpy(&bits, &capability->expiry_ms, sizeof(bits));
    w.u64(bits);
    w.bytes(std::span<const std::uint8_t>(capability->token.data(),
                                          capability->token.size()));
  }
  w.u16(static_cast<std::uint16_t>(fingers.size()));
  for (const FingerField& f : fingers) {
    write_node_id(w, f.target);
    w.u32(f.home_as);
  }
  const bool payload_ok =
      w.lp_bytes(std::span<const std::uint8_t>(payload.data(), payload.size()));
  assert(payload_ok && w.ok());  // sizes were range-checked above
  (void)payload_ok;
  // Integrity trailer over everything above.  A link that flips any bit of
  // the packet -- header, fields, or payload -- fails decode instead of
  // delivering silently corrupted state.
  w.u32(crc32(w.data()));
  return w.take();
}

std::optional<Packet> Packet::decode(std::span<const std::uint8_t> data) {
  // Verify and strip the CRC trailer first: a corrupted buffer must never be
  // parsed into fields at all.
  if (data.size() < 4) return std::nullopt;
  const std::span<const std::uint8_t> body = data.first(data.size() - 4);
  std::uint32_t expected = 0;
  for (std::size_t i = data.size() - 4; i < data.size(); ++i) {
    expected = (expected << 8) | data[i];
  }
  if (crc32(body) != expected) return std::nullopt;

  ByteReader r(body);
  Packet p;
  const auto version = r.u8();
  if (!version.has_value() || *version != kVersion) return std::nullopt;
  p.version = *version;
  const auto type = r.u8();
  if (!type.has_value() || *type < 1 || *type > kMaxPacketType) {
    return std::nullopt;
  }
  p.type = static_cast<PacketType>(*type);
  const auto ttl = r.u8();
  const auto flags = r.u8();
  if (!ttl.has_value() || !flags.has_value()) return std::nullopt;
  p.ttl = *ttl;
  p.crossed_peering = (*flags & kFlagPeering) != 0;

  const auto dest = read_node_id(r);
  const auto src = read_node_id(r);
  if (!dest.has_value() || !src.has_value()) return std::nullopt;
  p.destination = *dest;
  p.source = *src;

  const auto trace_id = r.u64();
  if (!trace_id.has_value()) return std::nullopt;
  p.trace_id = *trace_id;

  const auto path_len = r.u16();
  if (!path_len.has_value()) return std::nullopt;
  p.as_path.reserve(*path_len);
  for (std::uint16_t i = 0; i < *path_len; ++i) {
    const auto as = r.u32();
    if (!as.has_value()) return std::nullopt;
    p.as_path.push_back(*as);
  }

  if ((*flags & kFlagCapability) != 0) {
    CapabilityField cap;
    const auto cap_src = read_node_id(r);
    const auto expiry_bits = r.u64();
    const auto token = r.bytes(cap.token.size());
    if (!cap_src.has_value() || !expiry_bits.has_value() ||
        !token.has_value()) {
      return std::nullopt;
    }
    cap.source = *cap_src;
    std::uint64_t bits = *expiry_bits;
    std::memcpy(&cap.expiry_ms, &bits, sizeof(bits));
    std::memcpy(cap.token.data(), token->data(), cap.token.size());
    p.capability = cap;
  }

  const auto finger_count = r.u16();
  if (!finger_count.has_value()) return std::nullopt;
  p.fingers.reserve(*finger_count);
  for (std::uint16_t i = 0; i < *finger_count; ++i) {
    FingerField f;
    const auto target = read_node_id(r);
    const auto home = r.u32();
    if (!target.has_value() || !home.has_value()) return std::nullopt;
    f.target = *target;
    f.home_as = *home;
    p.fingers.push_back(f);
  }

  const auto payload = r.lp_bytes();
  if (!payload.has_value()) return std::nullopt;
  p.payload.assign(payload->begin(), payload->end());
  if (!r.exhausted()) return std::nullopt;  // trailing garbage
  return p;
}

std::size_t Packet::wire_size() const {
  std::size_t n = 4 + 16 + 16 + 8 + 2 + 4 * as_path.size();
  if (capability.has_value()) n += 16 + 8 + capability->token.size();
  n += 2 + 20 * fingers.size();
  n += 2 + payload.size();
  n += 4;  // CRC-32 trailer
  return n;
}

std::size_t Packet::fragments(std::size_t mtu) const {
  // Guard the framing boundary: with mtu <= kFrameOverhead the effective
  // payload per fragment is zero or negative, and the old arithmetic
  // (unsigned) turned that into nonsense counts.  Such an MTU cannot carry
  // this packet at all, so report 0 fragments and let callers treat it as a
  // refusal.
  if (mtu <= kFrameOverhead) return 0;
  const std::size_t size = wire_size();
  return (size + mtu - 1) / mtu;
}

}  // namespace rofl::wire
