// udp.hpp -- real-socket Transport backend (localhost UDP).
//
// One datagram socket per router, bound to 127.0.0.1.  The pump is split
// across two threads the way high-rate measurement tools structure theirs
// (FlashRoute et al., PAPERS.md):
//
//   * TX runs on the caller's event-loop thread: token-bucket rate limiting
//     (sleeping out stalls in wall time), impairment draws, sendto().
//   * RX is a dedicated thread parked in recvfrom() with a short timeout; it
//     pushes raw datagrams into a bounded SPSC ring.  The event loop drains
//     the ring via poll(), where header parsing and dedup happen -- so the
//     RX thread does no work that could make it fall behind the socket.
//
// The SPSC pairing is honored exactly as util/spsc_queue.hpp demands: the RX
// thread is the only producer, the event-loop thread the only consumer, and
// nobody else ever looks at the ring.  When the ring is full the RX thread
// drops the datagram and counts it (ring_dropped, an atomic it owns); to the
// protocol that is indistinguishable from network loss and the normal
// retry/backoff machinery recovers.
//
// Ports: bind with port 0 to let the kernel pick (tests), or a fixed port
// (the spawn-mode mesh, where worker k derives its port from a shared base).
// Peers are registered explicitly with set_peer(id, port) -- ROFL's flat
// labels name routers, and this map is the only place a router id meets a
// network address.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"
#include "util/spsc_queue.hpp"

namespace rofl::net {

class UdpTransport final : public Transport {
 public:
  /// Binds 127.0.0.1:`port` (0 = kernel-assigned, see port()) and starts the
  /// RX thread.  Throws std::runtime_error if the socket cannot be set up.
  explicit UdpTransport(RouterId self, std::uint16_t port = 0,
                        std::size_t ring_capacity = 8192);
  ~UdpTransport() override;

  /// The locally bound UDP port (resolved after a port-0 bind).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Registers where router `id` listens.  Must cover every send() target;
  /// only called during mesh setup, before traffic starts.
  void set_peer(RouterId id, std::uint16_t port);

  bool poll(RxFrame& out) override;

  /// Datagrams the RX thread discarded because the ring was full.  Stable
  /// only after stop() (the RX thread owns the cell while running).
  [[nodiscard]] std::uint64_t ring_dropped() const override {
    return ring_dropped_.load(std::memory_order_relaxed);
  }

  /// Stops the RX thread and closes the socket.  Idempotent; the destructor
  /// calls it.
  void stop();

  /// Monotonic wall clock in milliseconds, the `now_ms` timebase every
  /// UDP-backend caller must use for send()/pump().
  static double wall_ms();

 private:
  void raw_send(RouterId dst, std::vector<std::uint8_t> datagram) override;
  double throttle_wait(double now_ms, double wait_ms) override;
  void rx_loop();

  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::unordered_map<RouterId, std::uint16_t> peers_;
  util::SpscQueue<std::vector<std::uint8_t>*> ring_;
  std::atomic<std::uint64_t> ring_dropped_{0};
  std::atomic<bool> running_{false};
  std::thread rx_thread_;
};

}  // namespace rofl::net
