#include "baselines/bgp_baseline.hpp"

#include <deque>
#include <unordered_map>

namespace rofl::baselines {

std::optional<std::uint32_t> shortest_as_hops(const graph::AsTopology& topo,
                                              graph::AsIndex src,
                                              graph::AsIndex dst) {
  if (src == dst) return 0;
  if (!topo.as_up(src) || !topo.as_up(dst)) return std::nullopt;
  std::unordered_map<graph::AsIndex, std::uint32_t> dist;
  dist[src] = 0;
  std::deque<graph::AsIndex> frontier{src};
  while (!frontier.empty()) {
    const graph::AsIndex cur = frontier.front();
    frontier.pop_front();
    for (const auto& adj : topo.adjacencies(cur)) {
      if (!topo.as_up(adj.neighbor) || !topo.link_up(cur, adj.neighbor)) {
        continue;
      }
      if (dist.contains(adj.neighbor)) continue;
      dist[adj.neighbor] = dist[cur] + 1;
      if (adj.neighbor == dst) return dist[adj.neighbor];
      frontier.push_back(adj.neighbor);
    }
  }
  return std::nullopt;
}

std::optional<double> bgp_policy_stretch(const graph::AsTopology& topo,
                                         graph::AsIndex src,
                                         graph::AsIndex dst) {
  const auto policy = bgp_policy_hops(topo, src, dst);
  const auto shortest = shortest_as_hops(topo, src, dst);
  if (!policy.has_value() || !shortest.has_value() || *shortest == 0) {
    return std::nullopt;
  }
  return static_cast<double>(*policy) / static_cast<double>(*shortest);
}

}  // namespace rofl::baselines
