// branchless_search.hpp -- binary search over a sorted contiguous key lane,
// tuned for the per-packet lookups of the flat datapath.
//
// std::lower_bound compiles to a compare-and-branch per probe; on random
// keys the branch is unpredictable, so every probe costs a misprediction on
// top of its cache miss.  The loop below keeps the range as (base, n) and
// advances base with a conditional move instead of a branch, and prefetches
// both possible next probe addresses so the memory system works one level
// ahead of the comparison.  Semantics match std::lower_bound/upper_bound.
#pragma once

#include <cstddef>

namespace rofl::util {

#if defined(__GNUC__) || defined(__clang__)
#define ROFL_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define ROFL_PREFETCH(addr) ((void)0)
#endif

/// Index of the first element not less than `key`, where `lt(elem, key)`
/// orders elements before the key (std::lower_bound semantics).
template <typename T, typename Key, typename ElemLessKey>
std::size_t lower_bound_index(const T* data, std::size_t n, const Key& key,
                              ElemLessKey lt) {
  const T* base = data;
  while (n > 1) {
    const std::size_t half = n / 2;
    ROFL_PREFETCH(base + half / 2);
    ROFL_PREFETCH(base + half + half / 2);
    base = lt(base[half - 1], key) ? base + half : base;
    n -= half;
  }
  if (n == 1 && lt(*base, key)) ++base;
  return static_cast<std::size_t>(base - data);
}

template <typename T, typename Key>
std::size_t lower_bound_index(const T* data, std::size_t n, const Key& key) {
  return lower_bound_index(
      data, n, key, [](const T& a, const Key& b) { return a < b; });
}

/// Index of the first element greater than `key` (std::upper_bound).
template <typename T, typename Key>
std::size_t upper_bound_index(const T* data, std::size_t n, const Key& key) {
  const T* base = data;
  while (n > 1) {
    const std::size_t half = n / 2;
    ROFL_PREFETCH(base + half / 2);
    ROFL_PREFETCH(base + half + half / 2);
    base = !(key < base[half - 1]) ? base + half : base;
    n -= half;
  }
  if (n == 1 && !(key < *base)) ++base;
  return static_cast<std::size_t>(base - data);
}

#undef ROFL_PREFETCH

}  // namespace rofl::util
