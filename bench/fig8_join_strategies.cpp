// fig8_join_strategies -- regenerates Figure 8a: interdomain join overhead
// vs the number of IDs in the system, for the four joining strategies:
// ephemeral, single-homed, recursively multihomed, and peering (joins across
// peering links too).  A second pass runs the bloom-filter optimization,
// which the paper reports reduces the peering join's cost to that of the
// multihomed join.
//
// Paper reference (extrapolated to 600M IDs): ephemeral ~14 messages,
// single-homed ~75-80, multihomed ~100, peering ~300 (reduced to multihomed
// cost with blooms).  The orderings and the moving-average-vs-scale shape
// are the reproducible content at simulation scale.
#include <iostream>

#include "bench_common.hpp"
#include "interdomain/inter_network.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rofl {
namespace {

using inter::InterNetwork;
using inter::JoinStrategy;

std::vector<std::pair<std::size_t, double>> run_strategy(
    const graph::AsTopology& topo, JoinStrategy strategy,
    inter::PeeringMode mode, std::size_t max_ids) {
  inter::InterConfig cfg;
  cfg.peering_mode = mode;
  InterNetwork net(&topo, cfg, bench::kSeed + 7);
  MovingAverage avg(200);  // the paper's moving-average window
  std::vector<std::pair<std::size_t, double>> series;
  std::size_t next_report = 10;
  for (std::size_t n = 1; n <= max_ids; ++n) {
    const auto js = net.join_random_host(strategy);
    if (!js.ok) continue;
    avg.add(static_cast<double>(js.messages));
    if (n == next_report || n == max_ids) {
      series.emplace_back(n, avg.value());
      next_report *= (next_report < 1000 ? 10 : 3);
    }
  }
  return series;
}

}  // namespace
}  // namespace rofl

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  const std::size_t max_ids = bench::full_scale() ? 20'000 : 4'000;

  Rng trng(bench::kSeed);
  const graph::AsTopology topo = bench::make_inter_topology(trng);
  std::cout << "AS topology: " << topo.as_count() << " ASes\n";

  const std::vector<std::pair<std::string, inter::JoinStrategy>> strategies = {
      {"ephemeral", inter::JoinStrategy::kEphemeral},
      {"single-homed", inter::JoinStrategy::kSingleHomed},
      {"rec. multihomed", inter::JoinStrategy::kRecursiveMultihomed},
      {"peering", inter::JoinStrategy::kPeering},
  };

  print_banner(std::cout,
               "Figure 8a: join overhead [packets], 200-join moving average "
               "(virtual-AS peering)");
  {
    Table t({"strategy", "IDs", "join overhead [packets]"});
    std::vector<double> finals;
    for (const auto& [name, strategy] : strategies) {
      const auto series = run_strategy(topo, strategy,
                                       inter::PeeringMode::kVirtualAs, max_ids);
      for (const auto& [n, v] : series) {
        t.add_row({name, static_cast<std::int64_t>(n), v});
      }
      finals.push_back(series.empty() ? 0.0 : series.back().second);
    }
    t.print(std::cout);
    std::cout << "\nfinal moving averages: ephemeral=" << finals[0]
              << " single=" << finals[1] << " multihomed=" << finals[2]
              << " peering=" << finals[3] << "\n";
  }

  print_banner(std::cout,
               "Figure 8a (bloom optimization): peering join cost collapses "
               "to the multihomed join");
  {
    Table t({"strategy", "final moving avg [packets]"});
    for (const auto& [name, strategy] :
         {strategies[2], strategies[3]}) {
      const auto series =
          run_strategy(topo, strategy, inter::PeeringMode::kBloom, max_ids / 2);
      t.add_row({name, series.empty() ? 0.0 : series.back().second});
    }
    t.print(std::cout);
  }
  std::cout << "\nPaper reference: ephemeral < single-homed < multihomed < "
               "peering; multihomed is only slightly costlier than "
               "single-homed (few unique successors across the 75-100 "
               "up-hierarchy ASes); blooms cut peering to multihomed cost.  "
               "Extrapolated to 600M IDs: ~14 / ~80 / ~100 / ~300 packets.\n";
  return 0;
}
