#include "interdomain/policy.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace rofl::inter {
namespace {

using graph::AsRel;
using graph::AsTopology;

/// BFS over live provider links from `from`; returns parent map covering the
/// reachable up-hierarchy.
std::unordered_map<AsIndex, AsIndex> climb(const AsTopology& topo,
                                           AsIndex from, bool use_backup) {
  std::unordered_map<AsIndex, AsIndex> parent;
  parent[from] = graph::kInvalidAs;
  std::deque<AsIndex> frontier{from};
  while (!frontier.empty()) {
    const AsIndex cur = frontier.front();
    frontier.pop_front();
    for (const AsIndex p : topo.providers(cur, use_backup)) {
      if (!topo.as_up(p) || !topo.link_up(cur, p)) continue;
      if (parent.contains(p)) continue;
      parent[p] = cur;
      frontier.push_back(p);
    }
  }
  return parent;
}

std::optional<AsRoute> path_up(const AsTopology& topo, AsIndex from,
                               AsIndex anchor, bool use_backup) {
  if (from == anchor) return AsRoute{from};
  const auto parent = climb(topo, from, use_backup);
  const auto it = parent.find(anchor);
  if (it == parent.end()) return std::nullopt;
  AsRoute up;
  for (AsIndex cur = anchor; cur != graph::kInvalidAs; cur = parent.at(cur)) {
    up.push_back(cur);
  }
  std::reverse(up.begin(), up.end());  // from .. anchor
  return up;
}

}  // namespace

std::optional<AsRoute> build_route(const AsTopology& topo, AsIndex from,
                                   AsIndex anchor, AsIndex to,
                                   bool use_backup) {
  const auto up = path_up(topo, from, anchor, use_backup);
  if (!up.has_value()) return std::nullopt;
  const auto down_up = path_up(topo, to, anchor, use_backup);
  if (!down_up.has_value()) return std::nullopt;
  AsRoute route = *up;
  // Append the reversed climb of `to`, skipping the shared anchor.
  for (auto it = down_up->rbegin() + 1; it < down_up->rend(); ++it) {
    route.push_back(*it);
  }
  if (route.empty()) route.push_back(from);
  return route;
}

std::uint32_t physical_hops(const AsTopology& topo, const AsRoute& route) {
  std::uint32_t hops = 0;
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    // Entering a virtual peering AS is free; leaving it is the peering link.
    if (topo.is_virtual(route[i])) continue;
    ++hops;
  }
  return hops;
}

bool route_live(const AsTopology& topo, const AsRoute& route) {
  if (route.empty()) return false;
  if (!topo.as_up(route.front())) return false;
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    if (!topo.link_up(route[i], route[i + 1])) return false;
  }
  return true;
}

bool valley_free(const AsTopology& topo, const AsRoute& route) {
  // Phases: 0 = ascending, 1 = after the single peering step, 2 = descending.
  int phase = 0;
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    const auto rel = topo.relationship(route[i], route[i + 1]);
    if (!rel.has_value()) return false;
    switch (*rel) {
      case AsRel::kProvider:
      case AsRel::kBackupProvider:
        if (phase != 0) return false;  // cannot climb after peering/descent
        break;
      case AsRel::kPeer:
        if (phase >= 1) return false;  // at most one peering step
        phase = 1;
        break;
      case AsRel::kCustomer:
      case AsRel::kBackupCustomer:
        phase = 2;
        break;
    }
  }
  return true;
}

std::optional<std::uint32_t> bgp_policy_hops(const AsTopology& topo,
                                             AsIndex src, AsIndex dst) {
  if (src == dst) return 0;
  if (!topo.as_up(src) || !topo.as_up(dst)) return std::nullopt;
  // Hop counts up the provider DAG from both endpoints.
  auto levels = [&](AsIndex start) {
    std::unordered_map<AsIndex, std::uint32_t> dist;
    dist[start] = 0;
    std::deque<AsIndex> frontier{start};
    while (!frontier.empty()) {
      const AsIndex cur = frontier.front();
      frontier.pop_front();
      for (const AsIndex p : topo.providers(cur, /*include_backup=*/true)) {
        if (!topo.as_up(p) || !topo.link_up(cur, p) || dist.contains(p)) continue;
        dist[p] = dist[cur] + 1;
        frontier.push_back(p);
      }
    }
    return dist;
  };
  const auto up_s = levels(src);
  const auto up_d = levels(dst);

  std::optional<std::uint32_t> best;
  auto consider = [&](std::uint32_t hops) {
    if (!best.has_value() || hops < *best) best = hops;
  };
  // Up-down through a common ancestor.
  for (const auto& [as, ds] : up_s) {
    const auto it = up_d.find(as);
    if (it != up_d.end()) consider(ds + it->second);
  }
  // Up, one peering link, down.  Virtual peering ASes (if the topology was
  // converted) are treated as peering links between their members.
  for (const auto& [a, da] : up_s) {
    for (const AsIndex peer : topo.peers(a)) {
      if (!topo.as_up(peer) || !topo.link_up(a, peer)) continue;
      const auto it = up_d.find(peer);
      if (it != up_d.end()) consider(da + 1 + it->second);
    }
  }
  return best;
}

}  // namespace rofl::inter
