// content_delivery -- anycast, multicast, and DoS defenses over ROFL
// (section 5).
//
// A content provider runs replicated front-ends behind one anycast group,
// fans content out to subscribers over a ROFL multicast tree, and protects
// its origin server with default-off + capabilities.
//
//   $ ./build/examples/content_delivery
#include <iostream>

#include "ext/anycast.hpp"
#include "ext/capability.hpp"
#include "ext/multicast.hpp"
#include "ext/weighted_anycast.hpp"
#include "rofl/network.hpp"

int main() {
  using namespace rofl;

  Rng topo_rng(11);
  graph::IspParams params;
  params.name = "cdn-isp";
  params.router_count = 60;
  params.pop_count = 8;
  const graph::IspTopology topo = graph::make_isp_topology(params, topo_rng);
  intra::Network net(&topo, intra::Config{}, /*seed=*/31337);
  for (int i = 0; i < 150; ++i) (void)net.join_random_host();

  // ---- Anycast: replicated front-ends under one group label --------------
  // All replicas hold the group key; each joins with a distinct suffix.
  // Clients route to the group label and land at whatever replica the
  // packet first encounters a route for -- no extra infrastructure.
  const ext::GroupId frontends(Identity::generate(net.rng()));
  const std::pair<std::uint32_t, graph::NodeIndex> replicas[] = {
      {1, 5}, {2, 23}, {3, 47}};
  for (const auto& [suffix, gw] : replicas) {
    const auto js = ext::anycast_join(net, frontends, suffix, gw);
    std::cout << "front-end replica (suffix " << suffix << ") at router "
              << gw << ": " << (js.ok ? "up" : "FAILED") << "\n";
  }
  std::size_t hits[4] = {0, 0, 0, 0};
  for (graph::NodeIndex client = 0; client < net.router_count(); ++client) {
    const ext::AnycastResult r = ext::anycast_route(net, client, frontends);
    if (!r.delivered) continue;
    const auto suffix = static_cast<std::size_t>(r.member.lo() & 0xFF);
    if (suffix < 4) ++hits[suffix];
  }
  std::cout << "anycast spread across replicas: " << hits[1] << " / "
            << hits[2] << " / " << hits[3] << " (all " << net.router_count()
            << " client routers served)\n";

  // ---- Weighted anycast: capacity-proportional load balancing -------------
  // A bigger replica takes a proportionally bigger slice of the suffix
  // space; clients pick random suffixes, so load follows capacity with no
  // coordination (the i3-style extension of section 5.2).
  const ext::GroupId tier2(Identity::generate(net.rng()));
  ext::WeightedAnycast wa(tier2);
  wa.add_replica(8, 1.0);    // small instance
  wa.add_replica(36, 3.0);   // 3x capacity
  if (wa.deploy(net)) {
    Rng clients(99);
    int small = 0, big = 0;
    for (int i = 0; i < 300; ++i) {
      const auto src = static_cast<graph::NodeIndex>(
          clients.index(net.router_count()));
      const auto r = wa.send(net, src, clients);
      if (!r.delivered) continue;
      (r.member == wa.replicas()[0].member_id ? small : big) += 1;
    }
    std::cout << "weighted anycast (1:3 capacities): " << small << " vs "
              << big << " requests\n";
  }

  // ---- Multicast: path-painted distribution tree --------------------------
  const ext::GroupId channel(Identity::generate(net.rng()));
  ext::MulticastGroup mc(channel);
  std::uint32_t suffix = 1;
  for (const graph::NodeIndex subscriber : {2u, 14u, 29u, 41u, 55u}) {
    const auto js = mc.join(net, subscriber, suffix++);
    std::cout << "subscriber at router " << subscriber << ": "
              << (js.ok ? "joined" : "FAILED")
              << (js.intersected_tree ? " (grafted onto existing branch)" : "")
              << "\n";
  }
  std::cout << "tree valid: " << (mc.verify_tree() ? "yes" : "NO") << ", "
            << mc.tree_router_count() << " routers carry group state\n";
  const auto send = mc.send(net, 2);
  std::cout << "publish from router 2: " << send.members_reached << "/5 "
            << "subscribers reached with " << send.copies
            << " link copies (unicast would need "
            << 4 * topo.graph.diameter_hops(60) << "+)\n";

  // ---- Default-off origin + capabilities ----------------------------------
  const Identity origin = Identity::generate(net.rng());
  (void)net.join_host(origin, 33);
  ext::CapabilityIssuer issuer(origin);
  ext::DefaultOffFilter filter;
  filter.register_host(origin.id());
  filter.protect(origin.id(), &issuer);

  const Identity subscriber = Identity::generate(net.rng());
  const Identity attacker = Identity::generate(net.rng());

  // The subscriber asks for access; the origin grants a capability bound to
  // (subscriber, origin, expiry) under its private key.
  const ext::Capability cap =
      issuer.issue(subscriber.id(), net.simulator().now_ms(),
                   /*lifetime_ms=*/60'000.0);

  const auto good =
      filter.guarded_route(net, 0, subscriber.id(), origin.id(), &cap);
  const auto bad =
      filter.guarded_route(net, 0, attacker.id(), origin.id(), nullptr);
  ext::Capability stolen = cap;  // attacker replays the subscriber's token
  const auto replay =
      filter.guarded_route(net, 0, attacker.id(), origin.id(), &stolen);
  std::cout << "\norigin is default-off:\n";
  std::cout << "  subscriber with capability: "
            << (good.delivered ? "delivered" : "dropped") << "\n";
  std::cout << "  attacker without capability: "
            << (bad.delivered ? "DELIVERED?!" : "dropped at the edge") << "\n";
  std::cout << "  attacker replaying stolen token: "
            << (replay.delivered ? "DELIVERED?!" : "dropped (source-bound)")
            << "\n";
  return 0;
}
