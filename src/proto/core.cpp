#include "proto/core.hpp"

#include <algorithm>
#include <string>

namespace rofl::proto {

namespace {

using wire::Packet;
using wire::PacketType;
namespace msg = wire::msg;

/// The requester's router id rides in the packet source label.
NodeId router_label(RouterId r) { return NodeId::from_u64(r); }
RouterId label_router(const NodeId& id) {
  return static_cast<RouterId>(id.lo());
}

/// Synthetic compact-finger payload: the byte accounting only depends on the
/// entry count (6 bytes each), not the values, so fill deterministically.
std::vector<msg::CompactFinger> make_fingers(std::uint32_t n,
                                             const NodeId& target) {
  std::vector<msg::CompactFinger> out(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out[i].target_prefix = static_cast<std::uint32_t>(target.lo()) + i;
    out[i].home_as = static_cast<std::uint16_t>(i);
  }
  return out;
}

}  // namespace

Core::Core(CoreConfig cfg, Env& env) : cfg_(cfg), env_(env) {
  obs::Registry& reg = env_.metrics();
  decode_failed_ = reg.counter("net.rx.decode_failed");
  retrans_ = reg.counter("net.retrans");
  acks_ = reg.counter("net.acks");
  redirects_ = reg.counter("net.redirects");
  locate_steps_ = reg.counter("net.locate.steps");
  joins_done_id_ = reg.counter("net.joins.completed");
  joins_rejected_ = reg.counter("net.joins.rejected");
  const auto per_type = [this, &reg](PacketType t, const char* name) {
    PerType p;
    p.msgs = reg.counter(std::string("net.msgs.") + name);
    p.bytes = reg.counter(std::string("net.bytes.") + name);
    per_type_[static_cast<std::uint8_t>(t)] = p;
  };
  per_type(PacketType::kLocate, "locate");
  per_type(PacketType::kJoinRequest, "join_request");
  per_type(PacketType::kJoinReply, "join_reply");
  per_type(PacketType::kPointerInstall, "pointer_install");
  per_type(PacketType::kKeepalive, "keepalive");
  per_type(PacketType::kRepair, "repair");
  lookups_done_id_ = reg.counter("net.lookups.completed");
  lookups_hit_id_ = reg.counter("net.lookups.hit");
  leave_relinks_ = reg.counter("net.leave.relinks");
  join_latency_ = reg.histogram(
      "net.join.latency_ms", obs::Histogram::exponential_bounds(1.0, 2.0, 16));
  lookup_latency_ = reg.histogram(
      "net.lookup.latency_ms",
      obs::Histogram::exponential_bounds(0.25, 2.0, 16));
}

void Core::seed(const Identity& first) {
  Vnode v;
  v.id = first.id();
  v.succ = v.id;
  v.succ_owner = cfg_.self;
  v.pred = v.id;
  v.pred_owner = cfg_.self;
  vnodes_[v.id] = v;
}

void Core::enqueue_join(Identity ident) {
  queued_.push_back(std::move(ident));
  ++joins_queued_total_;
}

void Core::enqueue_lookup(const NodeId& target) {
  queued_lookups_.push_back(target);
}

void Core::send_control(RouterId dst, const msg::ControlMessage& m,
                        const NodeId& src, const NodeId& dst_id,
                        std::uint64_t trace_id, double now_ms) {
  std::vector<std::uint8_t> frame =
      msg::encode_control(m, src, dst_id, trace_id);
  if (frame.empty()) return;  // over a u16 wire limit; never transmit
  const auto it = per_type_.find(static_cast<std::uint8_t>(msg::type_of(m)));
  if (it != per_type_.end()) {
    obs::Registry& reg = env_.metrics();
    reg.add(it->second.msgs);
    reg.add(it->second.bytes, frame.size());
  }
  env_.send(dst, std::move(frame), now_ms);
}

void Core::start_locate(JoinTask& t, RouterId at, double now_ms) {
  t.st = JoinTask::St::kLocating;
  t.locate_at = at;
  t.timeout_ms = cfg_.retry.timeout_ms;
  t.deadline_ms = now_ms + t.timeout_ms;
  arm(t.deadline_ms);
  msg::Locate loc;
  loc.target = t.target;
  loc.purpose = 0;
  send_control(at, loc, router_label(cfg_.self), t.target, t.nonce, now_ms);
}

void Core::send_join_request(JoinTask& t, double now_ms) {
  msg::JoinRequest jr;
  jr.nonce = t.nonce;
  jr.gateway = cfg_.self;
  jr.public_key = t.ident.public_key();
  jr.fingers = make_fingers(cfg_.fingers, t.target);
  send_control(t.join_to, jr, router_label(cfg_.self), t.target, t.nonce,
               now_ms);
}

void Core::start_lookup(LookupTask& t, RouterId at, double now_ms) {
  t.at = at;
  t.timeout_ms = cfg_.retry.timeout_ms;
  t.deadline_ms = now_ms + t.timeout_ms;
  arm(t.deadline_ms);
  msg::Locate loc;
  loc.target = t.target;
  loc.purpose = 2;  // data-plane probe
  send_control(at, loc, router_label(cfg_.self), t.target, t.nonce, now_ms);
}

Core::JoinTask* Core::join_by_nonce(std::uint64_t nonce) {
  for (JoinTask& t : active_) {
    if (t.nonce == nonce) return &t;
  }
  return nullptr;
}

Core::LookupTask* Core::lookup_by_nonce(std::uint64_t nonce) {
  for (LookupTask& t : lookups_) {
    if (t.nonce == nonce) return &t;
  }
  return nullptr;
}

Vnode* Core::best_predecessor(const NodeId& target) {
  const auto it = closest_predecessor(
      vnodes_.begin(), vnodes_.end(), target,
      [](const auto& kv) -> const NodeId& { return kv.first; });
  return it == vnodes_.end() ? nullptr : &it->second;
}

void Core::schedule_install(RouterId dst, const NodeId& subject,
                            const NodeId& neighbor, RouterId neighbor_owner,
                            double now_ms) {
  // Deliberately no self-delivery shortcut: even when dst == self the
  // subject vnode may not be resident yet (its JoinReply is still in this
  // router's own transport queue), so the install must go through the same
  // retry-until-acked path as the remote case.
  const std::uint64_t nonce = next_nonce();
  PendingInstall pi;
  pi.dst = dst;
  pi.msg.subject = subject;
  pi.msg.neighbor = neighbor;
  pi.msg.neighbor_host = neighbor_owner;
  pi.msg.op = 1;  // set-predecessor
  pi.timeout_ms = cfg_.retry.timeout_ms;
  pi.deadline_ms = now_ms + pi.timeout_ms;
  arm(pi.deadline_ms);
  send_control(dst, pi.msg, router_label(cfg_.self), subject, nonce, now_ms);
  installs_.emplace(nonce, std::move(pi));
}

void Core::answer_locate(RouterId requester, const NodeId& target,
                         const NodeId& neighbor, RouterId neighbor_owner,
                         std::uint64_t trace_id, double now_ms) {
  msg::PointerInstall reply;
  reply.subject = target;
  reply.neighbor = neighbor;
  reply.neighbor_host = neighbor_owner;
  reply.op = 2;  // refill == locate answer
  send_control(requester, reply, router_label(cfg_.self), target, trace_id,
               now_ms);
}

void Core::on_locate(const Packet& pkt, const msg::Locate& m, double now_ms) {
  const RouterId requester = label_router(pkt.source);
  if (vnodes_.empty()) {
    // Nothing to answer with yet; punt the walk at the bootstrap router
    // (it always holds the seed).  Self-forwarding would loop.
    if (cfg_.self != cfg_.bootstrap) {
      send_control(cfg_.bootstrap, m, pkt.source, pkt.destination,
                   pkt.trace_id, now_ms);
    }
    return;
  }
  if (m.purpose == 2 && vnodes_.contains(m.target)) {
    // Lookup probe for an id resident right here: answer with the target
    // itself -- the requester reads `neighbor == target` as a hit and
    // `neighbor_host` as the owning router.
    answer_locate(requester, m.target, m.target, cfg_.self, pkt.trace_id,
                  now_ms);
    return;
  }
  Vnode* p = best_predecessor(m.target);
  if (p == nullptr) {
    // The target is the only id here (single-vnode router owning the target
    // itself): its predecessor is recorded on the vnode.
    const auto it = vnodes_.find(m.target);
    if (it == vnodes_.end()) return;
    answer_locate(requester, m.target, it->second.pred,
                  it->second.pred_owner, pkt.trace_id, now_ms);
    return;
  }
  if (is_predecessor_of(p->id, m.target, p->succ)) {
    if (m.purpose == 2) {
      // Lookup termination at the predecessor: its successor pointer is the
      // resolution.  succ == target resolves the owner (hit); anything else
      // proves the id is not in the ring (miss).
      answer_locate(requester, m.target, p->succ, p->succ_owner, pkt.trace_id,
                    now_ms);
    } else {
      answer_locate(requester, m.target, p->id, cfg_.self, pkt.trace_id,
                    now_ms);
    }
    return;
  }
  // Forward the walk greedily; the source label (requester) is preserved so
  // the eventual answer goes straight back.
  env_.metrics().add(locate_steps_);
  send_control(p->succ_owner, m, pkt.source, pkt.destination, pkt.trace_id,
               now_ms);
}

void Core::on_join_request(const Packet& pkt, const msg::JoinRequest& m,
                           double now_ms) {
  const RouterId requester = m.gateway;
  const NodeId target = pkt.destination;
  obs::Registry& reg = env_.metrics();
  // Self-certification (section 2.1): the label must be the hash of the
  // carried public key.
  if (derive_id(m.public_key) != target) {
    reg.add(joins_rejected_);
    return;
  }
  // Idempotent re-reply: a retransmitted JoinRequest for an id we already
  // spliced gets the cached JoinReply verbatim.
  const auto cached = join_cache_.find(target);
  if (cached != join_cache_.end()) {
    const auto it =
        per_type_.find(static_cast<std::uint8_t>(PacketType::kJoinReply));
    reg.add(it->second.msgs);
    reg.add(it->second.bytes, cached->second.size());
    env_.send(requester, cached->second, now_ms);
    return;
  }
  Vnode* p = best_predecessor(target);
  if (p == nullptr || !is_predecessor_of(p->id, target, p->succ)) {
    // The ring moved under the walk: redirect the gateway to keep walking
    // from the closest point we do know.
    msg::JoinReply redirect;
    if (p != nullptr) {
      redirect.predecessor = p->succ;
      redirect.predecessor_host = p->succ_owner;
    } else {
      redirect.predecessor_host = cfg_.bootstrap;
    }
    send_control(requester, redirect, router_label(cfg_.self), target,
                 pkt.trace_id, now_ms);
    return;
  }
  // Splice target between p and p.succ; the reply carries p's (singleton)
  // successor view through the same constructor the simulator's splice uses.
  const RingPtr old_succ{p->succ, p->succ_owner};
  p->succ = target;
  p->succ_owner = requester;

  const msg::JoinReply reply =
      make_join_reply(p->id, cfg_.self, std::span(&old_succ, 1), target);
  std::vector<std::uint8_t> frame = msg::encode_control(
      reply, router_label(cfg_.self), target, pkt.trace_id);
  const auto it =
      per_type_.find(static_cast<std::uint8_t>(PacketType::kJoinReply));
  reg.add(it->second.msgs);
  reg.add(it->second.bytes, frame.size());
  env_.send(requester, frame, now_ms);
  join_cache_[target] = std::move(frame);

  // Tell the old successor its predecessor changed (reliable, acked).
  schedule_install(old_succ.owner, old_succ.id, target, requester, now_ms);
}

void Core::on_join_reply(const Packet& pkt, const msg::JoinReply& m,
                         double now_ms) {
  JoinTask* t = join_by_nonce(pkt.trace_id);
  if (t == nullptr || t->st != JoinTask::St::kJoining) return;  // stale
  if (m.successors.empty()) {
    // Redirect: re-locate from the router the splicer pointed us at.
    env_.metrics().add(redirects_);
    t->attempt = 0;
    start_locate(*t, static_cast<RouterId>(m.predecessor_host), now_ms);
    return;
  }
  Vnode v;
  v.id = t->target;
  v.succ = m.successors.front().target;
  v.succ_owner = static_cast<RouterId>(m.successors.front().home_as);
  v.pred = m.predecessor;
  v.pred_owner = static_cast<RouterId>(m.predecessor_host);
  vnodes_[v.id] = v;
  ++joins_completed_;
  env_.metrics().add(joins_done_id_);
  env_.metrics().observe(join_latency_, now_ms - t->started_ms);
  active_.erase(active_.begin() + (t - active_.data()));
}

void Core::on_pointer_install(const Packet& pkt, const msg::PointerInstall& m,
                              double now_ms) {
  if (m.op == 2) {  // locate answer (join walk or lookup probe)
    if (JoinTask* t = join_by_nonce(pkt.trace_id)) {
      if (t->st != JoinTask::St::kLocating) return;  // stale
      t->st = JoinTask::St::kJoining;
      t->join_to = m.neighbor_host;
      t->attempt = 0;
      t->timeout_ms = cfg_.retry.timeout_ms;
      t->deadline_ms = now_ms + t->timeout_ms;
      arm(t->deadline_ms);
      send_join_request(*t, now_ms);
      return;
    }
    LookupTask* l = lookup_by_nonce(pkt.trace_id);
    if (l == nullptr) return;  // stale
    ++lookups_completed_;
    obs::Registry& reg = env_.metrics();
    reg.add(lookups_done_id_);
    if (m.neighbor == l->target) {
      ++lookups_hit_;
      reg.add(lookups_hit_id_);
    }
    reg.observe(lookup_latency_, now_ms - l->started_ms);
    lookups_.erase(lookups_.begin() + (l - lookups_.data()));
    return;
  }
  if (m.op == 1) {  // set-predecessor from a splicer
    // Not resident yet: the subject's own JoinReply may still be in flight
    // to this gateway.  Stay silent -- the splicer's retry loop redelivers
    // until the vnode exists and the install can actually apply.
    const auto it = vnodes_.find(m.subject);
    if (it == vnodes_.end()) return;
    Vnode& v = it->second;
    // The Chord notify rule (proto::accept_notify): only a strictly closer
    // predecessor may replace the current one, so stale (reordered/delayed)
    // installs cannot regress the pointer.
    if (accept_notify(v.id, v.pred, m.neighbor)) {
      v.pred = m.neighbor;
      v.pred_owner = m.neighbor_host;
    }
    // Ack regardless of whether the notify rule applied it -- the sender
    // only needs to know the install arrived (a stale install is *complete*,
    // not lost).
    msg::Keepalive ack;
    ack.seq = pkt.trace_id;
    send_control(label_router(pkt.source), ack, router_label(cfg_.self),
                 m.subject, pkt.trace_id, now_ms);
  }
}

void Core::on_repair(const Packet& pkt, const msg::Repair& m, double now_ms) {
  // A departing neighbor's relink: re-point this survivor's successor
  // (op 0) or predecessor (op 1) across the departing run.  Departure is
  // serialized after convergence, so the apply is unconditional; duplicate
  // retransmissions re-apply the same value (idempotent).
  const auto it = vnodes_.find(m.subject);
  if (it == vnodes_.end()) return;  // not resident; the sender retries
  Vnode& v = it->second;
  if (m.op == 0) {
    v.succ = m.neighbor;
    v.succ_owner = m.neighbor_host;
  } else if (m.op == 1) {
    v.pred = m.neighbor;
    v.pred_owner = m.neighbor_host;
  } else {
    return;  // unknown relink op: ignore (no ack, sender gives up loudly)
  }
  msg::Keepalive ack;
  ack.seq = pkt.trace_id;
  send_control(label_router(pkt.source), ack, router_label(cfg_.self),
               m.subject, pkt.trace_id, now_ms);
}

void Core::on_keepalive(const Packet& /*pkt*/, const msg::Keepalive& m) {
  if (installs_.erase(m.seq) != 0) {
    env_.metrics().add(acks_);
    return;
  }
  if (relinks_.erase(m.seq) != 0) {
    env_.metrics().add(acks_);
    if (leaving_ && relinks_.empty()) {
      // Every surviving boundary is repointed; this router's ids are no
      // longer part of the ring anyone routes by.
      vnodes_.clear();
      departed_ = true;
    }
  }
}

void Core::begin_leave(double now_ms) {
  if (leaving_) return;
  leaving_ = true;
  const std::vector<LeaveRelink> boundary = compute_leave_relinks(vnodes_);
  for (const LeaveRelink& r : boundary) {
    env_.metrics().add(leave_relinks_, 2);
    // Surviving successor's predecessor jumps back over the departing run...
    {
      const std::uint64_t nonce = next_nonce();
      PendingRelink pr;
      pr.dst = r.succ.owner;
      pr.msg.subject = r.succ.id;
      pr.msg.neighbor = r.pred.id;
      pr.msg.neighbor_host = r.pred.owner;
      pr.msg.op = 1;  // predecessor-set
      pr.timeout_ms = cfg_.retry.timeout_ms;
      pr.deadline_ms = now_ms + pr.timeout_ms;
      arm(pr.deadline_ms);
      send_control(pr.dst, pr.msg, router_label(cfg_.self), r.succ.id, nonce,
                   now_ms);
      relinks_.emplace(nonce, std::move(pr));
    }
    // ...and the surviving predecessor's successor jumps forward over it.
    {
      const std::uint64_t nonce = next_nonce();
      PendingRelink pr;
      pr.dst = r.pred.owner;
      pr.msg.subject = r.pred.id;
      pr.msg.neighbor = r.succ.id;
      pr.msg.neighbor_host = r.succ.owner;
      pr.msg.op = 0;  // successor-set
      pr.timeout_ms = cfg_.retry.timeout_ms;
      pr.deadline_ms = now_ms + pr.timeout_ms;
      arm(pr.deadline_ms);
      send_control(pr.dst, pr.msg, router_label(cfg_.self), r.pred.id, nonce,
                   now_ms);
      relinks_.emplace(nonce, std::move(pr));
    }
  }
  if (relinks_.empty()) {
    // No survivor to notify (the whole ring was resident here, or nothing
    // was): the departure is complete immediately.
    vnodes_.clear();
    departed_ = true;
  }
}

void Core::on_frame(std::span<const std::uint8_t> frame, double now_ms) {
  const auto pkt = Packet::decode(frame);
  const auto m = msg::decode_control(frame);
  if (!pkt.has_value() || !m.has_value()) {
    // CRC-rejected (impairment corruption) or otherwise undecodable: to the
    // protocol this is loss; retries recover.
    env_.metrics().add(decode_failed_);
    return;
  }
  std::visit(
      [&](const auto& mm) {
        using T = std::decay_t<decltype(mm)>;
        if constexpr (std::is_same_v<T, msg::Locate>) {
          on_locate(*pkt, mm, now_ms);
        } else if constexpr (std::is_same_v<T, msg::JoinRequest>) {
          on_join_request(*pkt, mm, now_ms);
        } else if constexpr (std::is_same_v<T, msg::JoinReply>) {
          on_join_reply(*pkt, mm, now_ms);
        } else if constexpr (std::is_same_v<T, msg::PointerInstall>) {
          on_pointer_install(*pkt, mm, now_ms);
        } else if constexpr (std::is_same_v<T, msg::Repair>) {
          on_repair(*pkt, mm, now_ms);
        } else if constexpr (std::is_same_v<T, msg::Keepalive>) {
          on_keepalive(*pkt, mm);
        }
        // Other control types never appear in the live protocol.
      },
      *m);
}

void Core::tick(double now_ms) {
  obs::Registry& reg = env_.metrics();

  // Start queued joins up to the outstanding cap.
  while (active_.size() < cfg_.max_outstanding && !queued_.empty()) {
    JoinTask t(std::move(queued_.front()));
    queued_.pop_front();
    t.target = t.ident.id();
    t.nonce = next_nonce();
    t.started_ms = now_ms;
    active_.push_back(std::move(t));
    start_locate(active_.back(), cfg_.bootstrap, now_ms);
  }
  // And queued lookups; probes start at this router -- the natural
  // data-plane entry point -- and walk greedily from local ring state.
  while (lookups_.size() < cfg_.max_outstanding && !queued_lookups_.empty()) {
    LookupTask t;
    t.target = queued_lookups_.front();
    queued_lookups_.pop_front();
    t.nonce = next_nonce();
    t.started_ms = now_ms;
    lookups_.push_back(t);
    start_lookup(lookups_.back(), cfg_.self, now_ms);
  }

  // Retry timers.
  for (JoinTask& t : active_) {
    if (now_ms < t.deadline_ms) continue;
    ++t.attempt;
    if (t.attempt >= cfg_.retry.max_attempts) {
      // Give up on this walk entirely and restart from the bootstrap.
      env_.note_retry_exhausted();
      t.attempt = 0;
      start_locate(t, cfg_.bootstrap, now_ms);
      continue;
    }
    reg.add(retrans_);
    env_.note_retry();
    t.timeout_ms = cfg_.retry.next_timeout(t.timeout_ms);
    t.deadline_ms = now_ms + t.timeout_ms;
    arm(t.deadline_ms);
    if (t.st == JoinTask::St::kLocating) {
      msg::Locate loc;
      loc.target = t.target;
      send_control(t.locate_at, loc, router_label(cfg_.self), t.target,
                   t.nonce, now_ms);
    } else {
      send_join_request(t, now_ms);
    }
  }
  for (LookupTask& t : lookups_) {
    if (now_ms < t.deadline_ms) continue;
    ++t.attempt;
    if (t.attempt >= cfg_.retry.max_attempts) {
      // Restart the probe from the bootstrap -- the walk itself may have
      // died on a router this gateway cannot see.
      env_.note_retry_exhausted();
      t.attempt = 0;
      start_lookup(t, cfg_.bootstrap, now_ms);
      continue;
    }
    reg.add(retrans_);
    env_.note_retry();
    t.timeout_ms = cfg_.retry.next_timeout(t.timeout_ms);
    t.deadline_ms = now_ms + t.timeout_ms;
    arm(t.deadline_ms);
    msg::Locate loc;
    loc.target = t.target;
    loc.purpose = 2;
    send_control(t.at, loc, router_label(cfg_.self), t.target, t.nonce,
                 now_ms);
  }
  for (auto& [nonce, pi] : installs_) {
    if (now_ms < pi.deadline_ms) continue;
    ++pi.attempt;
    reg.add(retrans_);
    env_.note_retry();
    pi.timeout_ms = cfg_.retry.next_timeout(pi.timeout_ms);
    pi.deadline_ms = now_ms + pi.timeout_ms;
    arm(pi.deadline_ms);
    send_control(pi.dst, pi.msg, router_label(cfg_.self), pi.msg.subject,
                 nonce, now_ms);
  }
  for (auto& [nonce, pr] : relinks_) {
    if (now_ms < pr.deadline_ms) continue;
    ++pr.attempt;
    reg.add(retrans_);
    env_.note_retry();
    pr.timeout_ms = cfg_.retry.next_timeout(pr.timeout_ms);
    pr.deadline_ms = now_ms + pr.timeout_ms;
    arm(pr.deadline_ms);
    send_control(pr.dst, pr.msg, router_label(cfg_.self), pr.msg.subject,
                 nonce, now_ms);
  }
}

void Core::debug_dump(std::ostream& os) const {
  os << "router " << cfg_.self << ": vnodes=" << vnodes_.size()
     << " queued=" << queued_.size() << " active=" << active_.size()
     << " installs=" << installs_.size() << " lookups=" << lookups_.size()
     << " relinks=" << relinks_.size()
     << (leaving_ ? (departed_ ? " departed" : " leaving") : "") << "\n";
  for (const JoinTask& t : active_) {
    os << "  task nonce=" << std::hex << t.nonce << std::dec << " target="
       << t.target.to_string().substr(0, 8)
       << (t.st == JoinTask::St::kLocating ? " LOCATING at=" : " JOINING to=")
       << (t.st == JoinTask::St::kLocating ? t.locate_at : t.join_to)
       << " attempt=" << t.attempt << " timeout=" << t.timeout_ms << "\n";
  }
  for (const LookupTask& t : lookups_) {
    os << "  lookup nonce=" << std::hex << t.nonce << std::dec << " target="
       << t.target.to_string().substr(0, 8) << " at=" << t.at
       << " attempt=" << t.attempt << "\n";
  }
  for (const auto& [nonce, pi] : installs_) {
    os << "  install nonce=" << std::hex << nonce << std::dec << " dst="
       << pi.dst << " subject=" << pi.msg.subject.to_string().substr(0, 8)
       << " neighbor=" << pi.msg.neighbor.to_string().substr(0, 8)
       << " attempt=" << pi.attempt << "\n";
  }
  for (const auto& [nonce, pr] : relinks_) {
    os << "  relink nonce=" << std::hex << nonce << std::dec << " dst="
       << pr.dst << " subject=" << pr.msg.subject.to_string().substr(0, 8)
       << " neighbor=" << pr.msg.neighbor.to_string().substr(0, 8)
       << " op=" << int(pr.msg.op) << " attempt=" << pr.attempt << "\n";
  }
}

}  // namespace rofl::proto
