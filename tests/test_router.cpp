#include "rofl/router.hpp"

#include <gtest/gtest.h>

namespace rofl::intra {
namespace {

NodeId id(std::uint64_t v) { return NodeId::from_u64(v); }

Identity make_identity(std::uint64_t seed) {
  Rng rng(seed);
  return Identity::generate(rng);
}

VirtualNode make_vnode(std::uint64_t v,
                       std::vector<std::pair<std::uint64_t, NodeIndex>> succs,
                       HostClass cls = HostClass::kStable) {
  VirtualNode vn;
  vn.id = id(v);
  vn.host_class = cls;
  for (const auto& [sid, host] : succs) {
    vn.successors.push_back(NeighborPtr{id(sid), host});
  }
  return vn;
}

TEST(Router, AddAndFindVnode) {
  Router r(0, make_identity(1), 16);
  ASSERT_NE(r.add_vnode(make_vnode(10, {{20, 1}})), nullptr);
  EXPECT_NE(r.find_vnode(id(10)), nullptr);
  EXPECT_EQ(r.find_vnode(id(11)), nullptr);
  EXPECT_EQ(r.resident_count(), 1u);
  EXPECT_TRUE(r.hosts(id(10)));
}

TEST(Router, DuplicateVnodeRejected) {
  Router r(0, make_identity(1), 16);
  ASSERT_NE(r.add_vnode(make_vnode(10, {})), nullptr);
  EXPECT_EQ(r.add_vnode(make_vnode(10, {})), nullptr);
  EXPECT_EQ(r.resident_count(), 1u);
}

TEST(Router, VnBestMatchPicksClosestNotPast) {
  Router r(3, make_identity(2), 16);
  r.add_vnode(make_vnode(10, {{40, 7}}));
  r.add_vnode(make_vnode(60, {{90, 8}}));
  // dest 50: candidates {10@3, 40@7, 60@3, 90@8}; closest <= 50 is 40.
  const auto c = r.vn_best_match(id(50));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->id, id(40));
  EXPECT_EQ(c->host, 7u);
  EXPECT_FALSE(c->resident);
  // dest 65: closest is the resident 60.
  const auto c2 = r.vn_best_match(id(65));
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->id, id(60));
  EXPECT_TRUE(c2->resident);
}

TEST(Router, VnBestMatchWrapsRing) {
  Router r(0, make_identity(3), 16);
  r.add_vnode(make_vnode(100, {{200, 5}}));
  // dest 50 is "before" everything: the wrap pick is 200 (largest <= 50+ring).
  const auto c = r.vn_best_match(id(50));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->id, id(200));
}

TEST(Router, EmptyRouterHasNoMatch) {
  Router r(0, make_identity(4), 16);
  EXPECT_FALSE(r.vn_best_match(id(1)).has_value());
  EXPECT_EQ(r.predecessor_vnode_of(id(1)), nullptr);
}

TEST(Router, RemoveVnodeClearsIndexExactly) {
  Router r(0, make_identity(5), 16);
  r.add_vnode(make_vnode(10, {{30, 2}}));
  r.add_vnode(make_vnode(50, {{30, 2}}));  // shares successor 30
  r.remove_vnode(id(10));
  // 30 must still be indexed (vnode 50 still points to it).
  const auto c = r.vn_best_match(id(35));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->id, id(30));
  r.remove_vnode(id(50));
  // Now nothing remains.
  EXPECT_FALSE(r.vn_best_match(id(35)).has_value());
}

TEST(Router, ReindexAfterSuccessorMutation) {
  Router r(0, make_identity(6), 16);
  VirtualNode* vn = r.add_vnode(make_vnode(10, {{30, 2}}));
  ASSERT_NE(vn, nullptr);
  vn->successors[0] = NeighborPtr{id(25), 4};
  r.reindex_vnode(id(10));
  const auto c = r.vn_best_match(id(27));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->id, id(25));
  EXPECT_EQ(c->host, 4u);
}

TEST(Router, PredecessorVnodeOfUsesOpenClosedInterval) {
  Router r(0, make_identity(7), 16);
  r.add_vnode(make_vnode(10, {{40, 2}}));
  // 25 in (10, 40]: vnode 10 is the predecessor.
  EXPECT_NE(r.predecessor_vnode_of(id(25)), nullptr);
  // Exactly the successor boundary counts (closed at b).
  EXPECT_NE(r.predecessor_vnode_of(id(40)), nullptr);
  // Outside the span: not the predecessor.
  EXPECT_EQ(r.predecessor_vnode_of(id(45)), nullptr);
  // Equal to the vnode itself: open at a.
  EXPECT_EQ(r.predecessor_vnode_of(id(10)), nullptr);
}

TEST(Router, EphemeralVnodesInvisibleToGreedyState) {
  Router r(0, make_identity(8), 16);
  r.add_vnode(make_vnode(10, {{200, 2}}));
  r.add_vnode(make_vnode(50, {{10, 0}}, HostClass::kEphemeral));
  // Greedy match for 60 must NOT return the ephemeral 50.
  const auto c = r.vn_best_match(id(60));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->id, id(10));
  // Nor may it act as a predecessor owner.
  EXPECT_EQ(r.predecessor_vnode_of(id(55)),
            r.find_vnode(id(10)));  // pred is 10 (50..200 via vnode 10)
  // But delivery still sees it as hosted.
  EXPECT_TRUE(r.hosts(id(50)));
}

TEST(Router, EphemeralBackpointers) {
  Router r(0, make_identity(9), 16);
  r.add_ephemeral_backpointer(id(5), 7);
  EXPECT_EQ(r.ephemeral_gateway(id(5)), 7u);
  EXPECT_EQ(r.ephemeral_gateway(id(6)), std::nullopt);
  r.remove_ephemeral_backpointer(id(5));
  EXPECT_EQ(r.ephemeral_gateway(id(5)), std::nullopt);
}

TEST(Router, StateEntriesAccounting) {
  Router r(0, make_identity(10), 16);
  EXPECT_EQ(r.state_entries(), 0u);
  VirtualNode vn = make_vnode(10, {{20, 1}, {30, 2}});
  vn.predecessor = NeighborPtr{id(5), 3};
  r.add_vnode(std::move(vn));
  // 1 resident + 2 successors + 1 predecessor = 4.
  EXPECT_EQ(r.state_entries(), 4u);
  r.cache().insert(id(99), 5, {0, 5});
  EXPECT_EQ(r.state_entries(), 5u);
  r.add_ephemeral_backpointer(id(7), 2);
  EXPECT_EQ(r.state_entries(), 6u);
}

TEST(Router, TraversalCounters) {
  Router r(0, make_identity(11), 16);
  EXPECT_EQ(r.traversals(), 0u);
  r.count_traversal();
  r.count_traversal();
  EXPECT_EQ(r.traversals(), 2u);
  r.reset_traversals();
  EXPECT_EQ(r.traversals(), 0u);
}

TEST(Router, RouterIdIsSelfCertified) {
  const Identity ident = make_identity(12);
  Router r(4, ident, 16);
  EXPECT_EQ(r.router_id(), ident.id());
  EXPECT_EQ(derive_id(r.identity().public_key()), r.router_id());
}

}  // namespace
}  // namespace rofl::intra
