// t64_summary -- regenerates the "Summary of results" (section 6.4): one
// compact table per domain with our measured values next to the paper's
// reported ones, plus the same style of extrapolation to a 600M-ID system
// the paper performs (fitting the measured join-overhead growth against
// log2(n) and evaluating at 6e8).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "interdomain/inter_network.hpp"
#include "rofl/network.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rofl {
namespace {

/// Least-squares fit y = a + b*log2(n) over (n, y) points, evaluated at nx.
double extrapolate_log(const std::vector<std::pair<double, double>>& pts,
                       double nx) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [n, y] : pts) {
    const double x = std::log2(n);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double m = static_cast<double>(pts.size());
  const double denom = m * sxx - sx * sx;
  if (denom == 0.0) return pts.empty() ? 0.0 : pts.back().second;
  const double b = (m * sxy - sx * sy) / denom;
  const double a = (sy - b * sx) / m;
  return a + b * std::log2(nx);
}

}  // namespace
}  // namespace rofl

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);

  // ---- Intradomain summary -------------------------------------------------
  print_banner(std::cout, "Section 6.4 summary -- Intradomain");
  {
    const std::size_t ids = bench::full_scale() ? 20'000 : 4'000;
    Table t({"metric", "measured", "paper"});
    SampleSet join_msgs, join_bytes, join_lat, stretches;
    double mean_state = 0.0;
    bool partitions_ok = true;
    int isp_count = 0;
    for (const auto which : graph::all_rocketfuel_ases()) {
      Rng trng(bench::kSeed);
      const graph::IspTopology topo = graph::make_rocketfuel_like(which, trng);
      intra::Config cfg;
      cfg.cache_capacity = 8192;
      intra::Network net(&topo, cfg, bench::kSeed + 23);
      std::vector<NodeId> joined;
      for (std::size_t i = 0; i < ids; ++i) {
        const auto gw = static_cast<graph::NodeIndex>(
            net.rng().index(net.router_count()));
        const Identity ident = Identity::generate(net.rng());
        const std::uint64_t bytes_before =
            net.simulator().counters().bytes(sim::MsgCategory::kJoin);
        const auto js = net.join_host(ident, gw);
        if (!js.ok) continue;
        joined.push_back(ident.id());
        join_msgs.add(static_cast<double>(js.messages));
        join_bytes.add(static_cast<double>(
            net.simulator().counters().bytes(sim::MsgCategory::kJoin) -
            bytes_before));
        join_lat.add(js.latency_ms);
      }
      for (int i = 0; i < 800; ++i) {
        const NodeId dest = joined[net.rng().index(joined.size())];
        const auto src = static_cast<graph::NodeIndex>(
            net.rng().index(net.router_count()));
        const auto rs = net.route(src, dest);
        if (rs.delivered && rs.shortest_hops > 0) stretches.add(rs.stretch());
      }
      mean_state += net.mean_state_entries();
      partitions_ok &= net.verify_rings();
      ++isp_count;
    }
    mean_state /= isp_count;
    t.add_row({std::string("routing stretch (8k-entry cache)"),
               stretches.mean(), std::string("1.2 - 2 with 9 Mbit cache")});
    t.add_row({std::string("join latency p99 [ms]"),
               join_lat.percentile(0.99), std::string("< 40 ms typical")});
    t.add_row({std::string("join overhead p99 [packets]"),
               join_msgs.percentile(0.99), std::string("< 45 packets")});
    t.add_row({std::string("join overhead mean [wire bytes]"),
               join_bytes.mean(), std::string("encoder-sized frames")});
    t.add_row({std::string("mean state entries/router"), mean_state,
               std::string("bounded: ring + cache")});
    t.add_row({std::string("rings consistent"),
               std::string(partitions_ok ? "yes" : "NO"),
               std::string("heals partitions/failures correctly")});
    t.print(std::cout);
  }

  // ---- Interdomain summary ---------------------------------------------------
  print_banner(std::cout, "Section 6.4 summary -- Interdomain");
  {
    Rng trng(bench::kSeed);
    const graph::AsTopology topo = bench::make_inter_topology(trng);
    Table t({"metric", "measured", "paper (600M extrapolation)"});

    // Join overhead growth for the three strategies, fit vs log2(n) and
    // extrapolated to 600M IDs exactly as the paper does.
    const std::size_t max_ids = bench::full_scale() ? 8'000 : 3'000;
    struct JoinSeries {
      std::vector<std::pair<double, double>> packets;
      std::vector<std::pair<double, double>> bytes;
    };
    auto series_for = [&](inter::JoinStrategy s) {
      inter::InterNetwork net(&topo, inter::InterConfig{}, bench::kSeed + 29);
      JoinSeries series;
      MovingAverage avg(200);
      MovingAverage avg_bytes(200);
      std::size_t next = 100;
      for (std::size_t n = 1; n <= max_ids; ++n) {
        const auto js = net.join_random_host(s);
        if (js.ok) {
          avg.add(static_cast<double>(js.messages));
          avg_bytes.add(static_cast<double>(js.bytes));
        }
        if (n == next) {
          series.packets.emplace_back(static_cast<double>(n), avg.value());
          series.bytes.emplace_back(static_cast<double>(n), avg_bytes.value());
          next *= 2;
        }
      }
      return series;
    };
    const auto eph = series_for(inter::JoinStrategy::kEphemeral);
    const auto single = series_for(inter::JoinStrategy::kSingleHomed);
    const auto multi = series_for(inter::JoinStrategy::kRecursiveMultihomed);
    t.add_row({std::string("ephemeral join @600M [packets]"),
               extrapolate_log(eph.packets, 6e8), std::string("~14")});
    t.add_row({std::string("single-homed join @600M [packets]"),
               extrapolate_log(single.packets, 6e8), std::string("~75-80")});
    t.add_row({std::string("multihomed join @600M [packets]"),
               extrapolate_log(multi.packets, 6e8), std::string("~100")});
    t.add_row({std::string("ephemeral join @600M [wire bytes]"),
               extrapolate_log(eph.bytes, 6e8),
               std::string("encoder-sized frames")});
    t.add_row({std::string("single-homed join @600M [wire bytes]"),
               extrapolate_log(single.bytes, 6e8),
               std::string("1638 B JoinRequest @256 fingers (sec 6.3)")});
    t.add_row({std::string("multihomed join @600M [wire bytes]"),
               extrapolate_log(multi.bytes, 6e8),
               std::string("encoder-sized frames")});

    // Stretch with a paper-scale finger table.
    {
      inter::InterConfig cfg;
      cfg.fingers_per_id = 160;
      inter::InterNetwork net(&topo, cfg, bench::kSeed + 31);
      for (std::size_t i = 0; i < max_ids / 2; ++i) {
        (void)net.join_random_host(inter::JoinStrategy::kRecursiveMultihomed);
      }
      std::vector<NodeId> joined;
      for (const auto& [id, home] : net.directory()) joined.push_back(id);
      SampleSet stretch;
      std::uint64_t violations = 0;
      for (int i = 0; i < 1000; ++i) {
        const NodeId dest = joined[net.rng().index(joined.size())];
        const auto src = net.home_of(joined[net.rng().index(joined.size())]);
        if (!src.has_value() || net.home_of(dest) == *src) continue;
        const auto rs = net.route(*src, dest);
        if (!rs.delivered) continue;
        if (!rs.isolation_held) ++violations;
        if (rs.bgp_hops > 0) stretch.add(rs.stretch());
      }
      t.add_row({std::string("stretch, 160 fingers"), stretch.mean(),
                 std::string("~2.5 (340 fingers), ~2.9 (128)")});
      t.add_row({std::string("isolation violations"),
                 static_cast<std::int64_t>(violations), std::string("0")});
      t.add_row({std::string("mean routing state [Mbit/AS]"),
                 net.mean_state_bits_per_as() / 1e6,
                 std::string("184 Mbit/AS @600M IDs, 256 fingers")});
    }
    // Bloom peering state.
    {
      inter::InterConfig cfg;
      cfg.peering_mode = inter::PeeringMode::kBloom;
      cfg.bloom_bits = 1u << 18;
      inter::InterNetwork net(&topo, cfg, bench::kSeed + 37);
      for (std::size_t i = 0; i < 500; ++i) {
        (void)net.join_random_host(inter::JoinStrategy::kPeering);
      }
      t.add_row({std::string("bloom filter state [Mbit/AS]"),
                 net.mean_bloom_bits_per_as() / 1e6,
                 std::string("74 Mbit/AS @600M IDs")});
    }
    t.print(std::cout);
  }
  std::cout << "\nNote: measured values come from the simulation scales "
               "printed above; the paper column lists the published "
               "600M-host extrapolations for context.\n";
  return 0;
}
