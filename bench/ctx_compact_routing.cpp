// ctx_compact_routing -- the related-work context the paper opens with:
// "While ROFL falls far short of the static compact routing performance
// described in [24, 25], it seems far better suited for a distributed
// dynamic implementation."
//
// This bench quantifies both halves of that sentence on the same ISP
// topologies:
//   * static performance: Thorup-Zwick stretch-3 compact routing gets lower
//     stretch with sublinear per-router state;
//   * dynamics: TZ has no incremental join/repair story -- a topology or
//     membership change forces preprocessing from scratch (quantified as
//     full-rebuild cost), while ROFL pays a handful of packets.
#include <iostream>

#include "baselines/compact_routing.hpp"
#include "bench_common.hpp"
#include "rofl/network.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  const std::size_t ids = bench::full_scale() ? 8'000 : 2'000;
  const std::size_t samples = bench::full_scale() ? 3'000 : 800;

  print_banner(std::cout,
               "Static comparison: ROFL vs Thorup-Zwick stretch-3 compact "
               "routing (router-to-router)");
  Table t({"ISP", "TZ mean stretch", "TZ max stretch", "TZ entries/router",
           "ROFL mean stretch", "ROFL entries/router"});
  for (const auto which : graph::all_rocketfuel_ases()) {
    Rng trng(bench::kSeed);
    const graph::IspTopology topo = graph::make_rocketfuel_like(which, trng);

    // TZ over the router graph.
    Rng lrng(bench::kSeed + 1);
    const baselines::CompactRouting cr(&topo.graph, lrng);
    SampleSet tz;
    double tz_max = 0.0;
    Rng pick(bench::kSeed + 2);
    for (std::size_t i = 0; i < samples; ++i) {
      const auto u = static_cast<graph::NodeIndex>(
          pick.index(topo.router_count()));
      const auto v = static_cast<graph::NodeIndex>(
          pick.index(topo.router_count()));
      const auto r = cr.route(u, v);
      if (r.delivered && r.shortest > 0) {
        tz.add(r.stretch());
        tz_max = std::max(tz_max, r.stretch());
      }
    }

    // ROFL routing between router IDs (the comparable workload), with the
    // usual host population and cache.
    intra::Config cfg;
    cfg.cache_capacity = 2048;
    intra::Network net(&topo, cfg, bench::kSeed + 3);
    for (std::size_t i = 0; i < ids; ++i) (void)net.join_random_host();
    SampleSet rofl;
    for (std::size_t i = 0; i < samples; ++i) {
      const auto u = static_cast<graph::NodeIndex>(
          pick.index(net.router_count()));
      const auto v = static_cast<graph::NodeIndex>(
          pick.index(net.router_count()));
      if (u == v) continue;
      const auto rs = net.route(u, net.router(v).router_id());
      if (rs.delivered && rs.shortest_hops > 0) rofl.add(rs.stretch());
    }

    t.add_row({topo.name, tz.mean(), tz_max, cr.mean_table_size(),
               rofl.mean(), net.mean_state_entries()});
  }
  t.print(std::cout);

  print_banner(std::cout,
               "Dynamic comparison: cost of one membership/topology change");
  {
    Rng trng(bench::kSeed);
    const graph::IspTopology topo =
        graph::make_rocketfuel_like(graph::RocketfuelAs::kAs3967, trng);
    intra::Network net(&topo, intra::Config{}, bench::kSeed + 7);
    for (int i = 0; i < 500; ++i) (void)net.join_random_host();
    const auto js = net.join_random_host();

    // TZ "update": the scheme is static; re-run preprocessing (counted as
    // one BFS per node plus one per landmark, in traversed-edge units).
    const std::uint64_t rebuild_edges =
        static_cast<std::uint64_t>(topo.graph.edge_count()) * 2 *
        (topo.router_count() + static_cast<std::size_t>(std::sqrt(
                                   static_cast<double>(topo.router_count()))));
    Table d({"system", "cost of one change"});
    d.add_row({std::string("ROFL join (packets)"),
               static_cast<std::int64_t>(js.messages)});
    d.add_row({std::string("TZ full rebuild (edge traversals)"),
               static_cast<std::int64_t>(rebuild_edges)});
    d.print(std::cout);
  }
  std::cout << "\nPaper reference: compact routing wins statically (stretch "
               "<= 3 with sublinear state) but has no dynamic distributed "
               "construction; ROFL trades stretch for cheap incremental "
               "joins, repairs, and flat (name-independent) labels.\n";
  return 0;
}
