// env.hpp -- the narrow waist between the protocol core and its drivers.
//
// proto::Core is sans-I/O: it consumes decoded wire::ControlMessages plus
// the clock value its driver passes in, mutates its own state, and emits
// every externally visible effect through this interface.  A driver
// implements five concerns and nothing else:
//
//   send      transmit one already-encoded frame to a router (the core does
//             the encoding and the per-type byte accounting; the driver owns
//             datagrams, threads, and impairment).
//   timer     on_timer_armed(deadline) is a scheduling *hint*: the earliest
//             retry deadline moved.  Poll-driven drivers (the loopback and
//             UDP meshes call tick() every step) may ignore it; an
//             event-driven driver can sleep until the deadline instead of
//             spinning.
//   rng       the core draws no randomness at all -- nonces are derived
//             deterministically from (router id, counter), the same
//             derived-not-drawn discipline intra::Network uses for its join
//             nonces.  What it does expose is retry telemetry
//             (note_retry / note_retry_exhausted) that drivers forward to
//             their sim::FaultInjector stream so fault accounting matches
//             the simulator's.
//   clock     there is no clock call: every entry point takes now_ms.  The
//             loopback mesh passes virtual milliseconds, the UDP mesh wall
//             milliseconds; the core cannot tell the difference, which is
//             exactly why the same state machine runs on both.
//   metrics   the obs::Registry the core registers its counters and
//             histograms in (registration order is the cross-router merge
//             contract; the core registers identically on every router).
//
// DESIGN.md section 17 documents the effect model and the equivalence
// contract this seam carries.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace rofl::proto {

using RouterId = std::uint32_t;

class Env {
 public:
  virtual ~Env() = default;

  /// Transmits one encoded control frame to `dst`.  The core never hands
  /// over an empty frame (encode failures are swallowed as the codec layer
  /// demands) and never retains a reference to the buffer.
  virtual void send(RouterId dst, std::vector<std::uint8_t> frame,
                    double now_ms) = 0;

  /// The registry protocol metrics live in.  Called once, from the core's
  /// constructor, before any traffic.
  virtual obs::Registry& metrics() = 0;

  /// Retry telemetry, forwarded to the driver's fault/retry accounting.
  virtual void note_retry() = 0;
  virtual void note_retry_exhausted() = 0;

  /// The earliest pending deadline changed to `deadline_ms`.  Optional hint;
  /// poll-driven drivers ignore it.
  virtual void on_timer_armed(double /*deadline_ms*/) {}
};

}  // namespace rofl::proto
