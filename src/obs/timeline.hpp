// timeline.hpp -- windowed time-series sampling over an obs::Registry.
//
// The paper's evaluation is trajectory-shaped: convergence traffic after a
// partition (figure 7), join overhead over time (figure 5 / section 6.3),
// stretch under churn (figure 8).  End-of-run Registry snapshots flatten all
// of that into one number, so every transient -- churn spikes, retry storms,
// lookahead stalls -- is invisible.  A Timeline fixes it: the engine drives
// it on the *simulation* clock, and at every fixed-width window boundary it
// records the per-window *delta* of every registry counter, the gauge values
// at window close, and the per-window histogram bucket deltas, into a
// bounded ring of window samples.
//
// Determinism contract (the same one Registry::merge_from obeys, DESIGN.md
// section 13/14): window membership is decided purely by event timestamps,
// deltas add, gauges take the max, histogram buckets add.  merge_from is
// therefore commutative and associative, and per-shard timelines fold into a
// merged timeline that is bit-identical for every shard count -- provided
// every shard closes the same window range, which the sharded engine
// guarantees by flushing all shards to the global end time at quiescence.
// Nothing here reads the wall clock; wall-time provenance belongs in the
// trailer lines the exporters append, never in window records.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace rofl::obs {

class Tracer;

class Timeline {
 public:
  struct Config {
    /// Window width on the simulation clock.  Non-finite or non-positive
    /// widths (and a zero capacity) are replaced by these defaults at
    /// construction -- a zero-width window would close windows forever.
    double window_ms = 50.0;
    /// Windows retained; when a run closes more, the oldest are dropped.
    /// Shard-count independence of the retained range holds as long as every
    /// per-shard timeline uses the same capacity (they drop identically).
    std::size_t capacity = 4096;
    /// Metrics whose name contains any of these substrings are omitted from
    /// exports and series: the escape hatch for wall-clock histograms
    /// (e.g. SPF "recompute_ms") that would break byte-compare gates.
    std::vector<std::string> exclude;
  };

  /// Per-window histogram activity: count/sum deltas plus per-bucket count
  /// deltas (overflow last), from which windowed percentiles are computed at
  /// export time -- after merging, so percentiles are taken over the merged
  /// distribution, never averaged across shards.
  struct HistWindow {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::vector<std::uint64_t> buckets;
  };

  /// One closed window.  Vectors are indexed by MetricId at close time; a
  /// metric registered after a window closed simply has no entry there
  /// (treated as zero by exports and merges).
  struct Window {
    std::uint64_t index = 0;  // covers [index*W, (index+1)*W) sim-ms
    std::vector<std::uint64_t> counters;  // per-counter deltas
    std::vector<double> gauges;           // values at window close
    std::vector<HistWindow> hists;
  };

  /// Sampling timeline: reads `registry` (not owned; must outlive this) at
  /// every window close.
  Timeline(const Registry* registry, Config cfg);
  /// Merge-only timeline (no registry): the accumulator merged_timeline()
  /// folds per-shard timelines into.
  explicit Timeline(Config cfg) : Timeline(nullptr, cfg) {}

  // -- engine hooks (sampling timelines only) -------------------------------
  /// Closes every window that ends at or before `t_ms`.  The engine calls
  /// this with the event timestamp *before* dispatching each event, so all
  /// registry activity since the previous call belongs to the earliest open
  /// window -- which is exactly where the delta is recorded.
  void advance_to(double t_ms);
  /// advance_to plus closing the window containing `t_ms` itself: the
  /// end-of-run call.  Idempotent for the same `t_ms`.
  void flush(double t_ms);

  // -- reads ----------------------------------------------------------------
  [[nodiscard]] double window_ms() const { return cfg_.window_ms; }
  [[nodiscard]] std::size_t capacity() const { return cfg_.capacity; }
  /// Retained windows (<= capacity).
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  /// Absolute index of the oldest retained window.
  [[nodiscard]] std::uint64_t first_index() const { return first_index_; }
  /// Windows closed and then evicted by the capacity bound.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] const Window& window(std::size_t i) const { return ring_[i]; }

  /// Per-window deltas of the named counter over the retained range
  /// (zero where the window predates the counter's registration).
  [[nodiscard]] std::vector<std::uint64_t> counter_series(
      std::string_view name) const;

  // -- merge ----------------------------------------------------------------
  /// Folds another timeline in by absolute window index: counter and
  /// histogram deltas add, gauges take the max.  Requires identical
  /// window_ms and identical metric registration order where names overlap
  /// (the sharded engine's registry-init discipline).  Commutative under the
  /// integral-sample rule, like Registry::merge_from.
  void merge_from(const Timeline& other);

  // -- export ---------------------------------------------------------------
  /// One JSON object per line, one line per retained window:
  ///   {"window": N, "t_ms": END, "counters": {...}, "gauges": {...},
  ///    "histograms": {name: {count, sum, p50, p90, p99}}}
  /// Zero-delta metrics are omitted per window; excluded names never appear.
  /// Contains no wall-clock fields, so two deterministic runs byte-compare.
  [[nodiscard]] std::string to_jsonl() const;

  /// Compact JSON array of the named counters' series, for embedding in
  /// BENCH_*.json: {"window_ms": W, "first_window": F, name: [deltas...]}.
  [[nodiscard]] std::string series_json(
      const std::vector<std::string>& counters, int indent = 0) const;

  /// Installs a live Chrome-trace counter sink: every window close emits one
  /// "ph":"C" event per nonzero counter delta at the window's end time, so
  /// the series render as graphs in Perfetto alongside the spans.  Emission
  /// happens inside advance_to/flush, i.e. in simulation-clock order, which
  /// keeps the trace file's timestamps monotone.
  void set_trace_sink(Tracer* tracer, std::uint32_t track = 0);

 private:
  void close_through(std::uint64_t target_closed);
  void close_one();
  void refresh_names();
  [[nodiscard]] bool excluded(const std::string& name) const;

  const Registry* registry_;
  Config cfg_;
  std::uint64_t closed_ = 0;  // windows closed so far == next window index

  // Snapshot of cumulative values at the last window close.
  std::vector<std::uint64_t> prev_counters_;
  struct PrevHist {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::vector<std::uint64_t> buckets;
  };
  std::vector<PrevHist> prev_hists_;

  // Metric name tables captured from the registry (or adopted on merge) so
  // exports survive the registry they sampled from.
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  std::vector<std::vector<double>> hist_bounds_;

  std::deque<Window> ring_;
  std::uint64_t first_index_ = 0;
  std::uint64_t dropped_ = 0;

  Tracer* trace_sink_ = nullptr;
  std::uint32_t trace_track_ = 0;
};

}  // namespace rofl::obs
