#include "util/identity.hpp"

#include <gtest/gtest.h>

namespace rofl {
namespace {

TEST(Identity, GenerateIsDeterministicUnderSeed) {
  Rng rng1(42);
  Rng rng2(42);
  const Identity a = Identity::generate(rng1);
  const Identity b = Identity::generate(rng2);
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.public_key(), b.public_key());
}

TEST(Identity, IdIsSelfCertifying) {
  Rng rng(7);
  const Identity ident = Identity::generate(rng);
  EXPECT_EQ(derive_id(ident.public_key()), ident.id());
}

TEST(Identity, OwnershipProofVerifies) {
  Rng rng(7);
  const Identity ident = Identity::generate(rng);
  const std::uint64_t nonce = 0xDEADBEEFull;
  const OwnershipProof proof = ident.prove(nonce);
  EXPECT_TRUE(verify_ownership(ident.id(), ident.public_key(), nonce, proof,
                               ident.private_key()));
}

TEST(Identity, ProofBoundToNonce) {
  Rng rng(7);
  const Identity ident = Identity::generate(rng);
  const OwnershipProof proof = ident.prove(1);
  EXPECT_FALSE(verify_ownership(ident.id(), ident.public_key(), 2, proof,
                                ident.private_key()));
}

TEST(Identity, SpoofedIdRejected) {
  Rng rng(7);
  const Identity victim = Identity::generate(rng);
  const Identity attacker = Identity::generate(rng);
  const std::uint64_t nonce = 99;
  // Attacker claims the victim's ID but can only prove its own key.
  EXPECT_FALSE(verify_ownership(victim.id(), attacker.public_key(), nonce,
                                attacker.prove(nonce),
                                attacker.private_key()));
}

TEST(Identity, WrongPrivateKeyRejected) {
  Rng rng(7);
  const Identity ident = Identity::generate(rng);
  const Identity other = Identity::generate(rng);
  const std::uint64_t nonce = 5;
  EXPECT_FALSE(verify_ownership(ident.id(), ident.public_key(), nonce,
                                ident.prove(nonce), other.private_key()));
}

TEST(Identity, RoundTripFromPrivateKey) {
  Rng rng(13);
  const Identity a = Identity::generate(rng);
  const Identity b = Identity::from_private_key(a.private_key());
  EXPECT_EQ(a.id(), b.id());
}

TEST(Identity, IdsAreWellSpread) {
  // Flat labels should not collide or cluster trivially.
  Rng rng(1);
  std::set<NodeId> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(Identity::generate(rng).id()).second);
  }
}

}  // namespace
}  // namespace rofl
