#include "rofl/zero_id.hpp"

#include <algorithm>
#include <cassert>

namespace rofl::intra {

ZeroIdProtocol::ZeroIdProtocol(const graph::Graph* g) : graph_(g) {
  assert(g != nullptr);
  local_.resize(g->node_count());
  beliefs_.resize(g->node_count());
}

void ZeroIdProtocol::set_local_min(graph::NodeIndex router,
                                   const std::optional<NodeId>& smallest) {
  local_[router] = smallest;
  // Reset this router's belief to its own knowledge; neighbors re-learn.
  beliefs_[router] = Belief{smallest, {router}};
}

std::size_t ZeroIdProtocol::step() {
  std::size_t changes = 0;
  std::vector<Belief> next(beliefs_.size());
  for (graph::NodeIndex r = 0; r < beliefs_.size(); ++r) {
    if (!graph_->node_up(r)) {
      next[r] = Belief{};
      continue;
    }
    // Start from local knowledge (beliefs can only shrink toward the true
    // minimum; re-deriving each round flushes state whose origin died).
    Belief best{local_[r], {r}};
    for (const graph::Edge& e : graph_->neighbors(r)) {
      if (!e.up || !graph_->node_up(e.to)) continue;
      const Belief& offer = beliefs_[e.to];
      if (!offer.id.has_value()) continue;
      // Path-vector check: reject offers that already flowed through us.
      if (std::find(offer.path.begin(), offer.path.end(), r) !=
          offer.path.end()) {
        continue;
      }
      if (!best.id.has_value() || *offer.id < *best.id) {
        best.id = offer.id;
        best.path.assign(1, r);
        best.path.insert(best.path.end(), offer.path.begin(),
                         offer.path.end());
      }
    }
    if (best.id != beliefs_[r].id) ++changes;
    next[r] = std::move(best);
  }
  beliefs_ = std::move(next);
  return changes;
}

ZeroIdProtocol::Convergence ZeroIdProtocol::run_to_convergence(
    std::size_t max_rounds) {
  Convergence conv;
  std::uint64_t per_round = 0;
  for (graph::NodeIndex r = 0; r < beliefs_.size(); ++r) {
    per_round += graph_->live_degree(r);
  }
  for (std::size_t round = 0; round < max_rounds; ++round) {
    ++conv.rounds;
    conv.messages += per_round;
    if (step() == 0) break;
  }
  return conv;
}

std::optional<NodeId> ZeroIdProtocol::belief(graph::NodeIndex router) const {
  return beliefs_[router].id;
}

const std::vector<graph::NodeIndex>& ZeroIdProtocol::belief_path(
    graph::NodeIndex router) const {
  return beliefs_[router].path;
}

bool ZeroIdProtocol::verify_consistent() const {
  const auto comp = graph_->components();
  std::map<graph::NodeIndex, std::optional<NodeId>> truth;
  for (graph::NodeIndex r = 0; r < beliefs_.size(); ++r) {
    if (!graph_->node_up(r) || !local_[r].has_value()) continue;
    auto& t = truth[comp[r]];
    if (!t.has_value() || *local_[r] < *t) t = local_[r];
  }
  for (graph::NodeIndex r = 0; r < beliefs_.size(); ++r) {
    if (!graph_->node_up(r)) continue;
    const auto expect = truth.contains(comp[r]) ? truth[comp[r]]
                                                : std::optional<NodeId>{};
    if (beliefs_[r].id != expect) return false;
  }
  return true;
}

}  // namespace rofl::intra
