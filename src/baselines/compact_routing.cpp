#include "baselines/compact_routing.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace rofl::baselines {
namespace {

constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();

}  // namespace

CompactRouting::CompactRouting(const graph::Graph* g, Rng& rng,
                               std::size_t landmarks)
    : graph_(g) {
  assert(g != nullptr);
  const std::size_t n = g->node_count();
  if (landmarks == 0) {
    landmarks = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n) *
                            std::log2(std::max<double>(2.0, static_cast<double>(n))))));
  }
  landmarks = std::min(landmarks, n);

  // Sample distinct landmarks.
  std::vector<graph::NodeIndex> order(n);
  for (graph::NodeIndex i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  landmarks_.assign(order.begin(),
                    order.begin() + static_cast<long>(landmarks));

  // BFS from every landmark.
  home_landmark_.assign(n, graph::kInvalidNode);
  landmark_dist_.assign(n, kUnreached);
  for (const graph::NodeIndex l : landmarks_) {
    from_landmark_[l] = g->bfs_hops(l);
    const auto& d = from_landmark_[l];
    for (graph::NodeIndex v = 0; v < n; ++v) {
      if (d[v] < landmark_dist_[v]) {
        landmark_dist_[v] = d[v];
        home_landmark_[v] = l;
      }
    }
  }

  // Clusters: v belongs to u's table iff d(u,v) < d(v, home_landmark(v)).
  // (Computed by BFS from every node; the preprocessing is quadratic, which
  // is fine at ISP scale and irrelevant to the scheme's *state* bounds.)
  cluster_.resize(n);
  for (graph::NodeIndex v = 0; v < n; ++v) {
    if (landmark_dist_[v] == kUnreached) continue;
    const auto d = g->bfs_hops(v);
    for (graph::NodeIndex u = 0; u < n; ++u) {
      if (u == v || d[u] == kUnreached) continue;
      if (d[u] < landmark_dist_[v]) {
        cluster_[u].emplace(v, d[u]);
      }
    }
  }
}

CompactRouting::RouteResult CompactRouting::route(graph::NodeIndex u,
                                                  graph::NodeIndex v) const {
  RouteResult res;
  const auto direct = graph_->bfs_hops(u);  // oracle for the stretch metric
  if (direct[v] == kUnreached) return res;
  res.shortest = direct[v];
  if (u == v) {
    res.delivered = true;
    return res;
  }

  // Direct table hit: v in u's cluster, or v is a landmark.
  const auto it = cluster_[u].find(v);
  if (it != cluster_[u].end()) {
    res.delivered = true;
    res.hops = it->second;
    return res;
  }
  const auto lm = from_landmark_.find(v);
  if (lm != from_landmark_.end()) {
    res.delivered = true;
    res.hops = lm->second[u];
    return res;
  }

  // Otherwise route via v's home landmark (embedded in v's label).
  const graph::NodeIndex home = home_landmark_[v];
  if (home == graph::kInvalidNode) return res;
  const auto& dl = from_landmark_.at(home);
  if (dl[u] == kUnreached || dl[v] == kUnreached) return res;
  res.delivered = true;
  res.via_landmark = true;
  res.hops = dl[u] + dl[v];
  return res;
}

std::size_t CompactRouting::table_size(graph::NodeIndex u) const {
  return landmarks_.size() + cluster_[u].size();
}

double CompactRouting::mean_table_size() const {
  double total = 0.0;
  for (graph::NodeIndex u = 0; u < graph_->node_count(); ++u) {
    total += static_cast<double>(table_size(u));
  }
  return total / static_cast<double>(graph_->node_count());
}

}  // namespace rofl::baselines
