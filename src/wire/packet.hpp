// packet.hpp -- ROFL packet formats.
//
// The header the design implies (sections 2.3, 4.1, 5.3): a type, the flat
// destination (and source) labels, a TTL, the peering bit used by the
// bloom-filter rule, the AS-level source route the packet accumulates, an
// optional capability, and -- for join messages -- the carried finger
// entries whose size the paper weighs against the MTU ("with 256 fingers the
// message size increases to 1638 bytes; ... a 256-finger single-homed join
// requires 258 IP packets", section 6.3).
#pragma once

#include <optional>
#include <vector>

#include "util/node_id.hpp"
#include "util/sha256.hpp"
#include "wire/buffer.hpp"

namespace rofl::wire {

enum class PacketType : std::uint8_t {
  kData = 1,
  kJoinRequest = 2,
  kJoinReply = 3,
  kTeardown = 4,
  kRepair = 5,
  kKeepalive = 6,
  kCapabilityGrant = 7,
  // Control-plane types added when every exchange moved onto the wire
  // (PR 5): the greedy locate walk, pointer installs/updates, link-state
  // advertisements, and interdomain ring-merge registrations.
  kLocate = 8,
  kPointerInstall = 9,
  kLsa = 10,
  kRingMerge = 11,
  // Label-switched fast path (DESIGN.md section 15): install/retire one hop
  // of a per-flow label chain along a stabilized pointer path.
  kLabelInstall = 12,
  kLabelTeardown = 13,
};

/// Highest assigned PacketType -- decode's range check derives from this so
/// adding a type cannot silently leave it rejected on the wire.
inline constexpr std::uint8_t kMaxPacketType =
    static_cast<std::uint8_t>(PacketType::kLabelTeardown);

inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kDefaultMtu = 1500;
/// Fixed framing cost of a control frame with no variable-length fields:
/// 4 header + 16 dst + 16 src + 8 trace + 2 as_path count + 2 finger count +
/// 2 payload length + 4 CRC.  An MTU at or below this carries no payload per
/// fragment, so fragmentation is impossible.
inline constexpr std::size_t kFrameOverhead = 54;

struct CapabilityField {
  NodeId source;
  double expiry_ms = 0.0;
  Sha256::Digest token{};

  friend bool operator==(const CapabilityField&, const CapabilityField&) =
      default;
};

/// A finger entry as carried in join messages: target ID plus the home AS.
/// 16 + 4 = 20 bytes each on the wire (the paper's estimate of ~6 bytes
/// assumed compressed IDs; the byte count is a parameter of the analysis,
/// not of the protocol).
struct FingerField {
  NodeId target;
  std::uint32_t home_as = 0;

  friend bool operator==(const FingerField&, const FingerField&) = default;
};

struct Packet {
  std::uint8_t version = kVersion;
  PacketType type = PacketType::kData;
  std::uint8_t ttl = 64;
  /// The bloom-peering rule's marker: once set, the packet may not be
  /// relayed up the hierarchy (section 4.2).
  bool crossed_peering = false;
  NodeId destination;
  NodeId source;
  /// Flight-recorder trace id (obs::FlightRecorder); 0 = untraced.  Carried
  /// on the wire so one id names a packet's whole flight across the
  /// intradomain -> interdomain handoff.
  std::uint64_t trace_id = 0;
  /// AS-level source route accumulated as the packet travels (section 2.3).
  std::vector<std::uint32_t> as_path;
  std::optional<CapabilityField> capability;
  std::vector<FingerField> fingers;  // join messages only
  std::vector<std::uint8_t> payload;

  /// Serializes the packet.  Returns an empty vector when a variable-length
  /// field (payload, as_path, fingers) exceeds its u16 wire limit -- an
  /// explicit failure, never a silently truncated packet.  The encoding ends
  /// with a CRC-32 trailer over every preceding byte.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// Parses an encoding.  Returns nullopt on truncation, trailing garbage,
  /// bad version/type, or CRC mismatch -- any single bit flipped anywhere in
  /// the buffer is guaranteed to be rejected rather than decoded into a
  /// silently different packet.
  [[nodiscard]] static std::optional<Packet> decode(
      std::span<const std::uint8_t> data);

  /// Exact on-wire size without materializing the bytes.
  [[nodiscard]] std::size_t wire_size() const;

  /// Number of MTU-sized network packets this message occupies -- the
  /// quantity the paper charges for finger-carrying joins.  An MTU at or
  /// below kFrameOverhead leaves no room for payload (the effective
  /// payload-per-fragment would wrap negative), so it yields 0: "cannot be
  /// fragmented", never a bogus huge count.
  [[nodiscard]] std::size_t fragments(std::size_t mtu = kDefaultMtu) const;

  friend bool operator==(const Packet&, const Packet&) = default;
};

/// Serializes a NodeId (16 bytes, big-endian).
void write_node_id(ByteWriter& w, const NodeId& id);
[[nodiscard]] std::optional<NodeId> read_node_id(ByteReader& r);

}  // namespace rofl::wire
