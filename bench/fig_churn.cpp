// fig_churn -- invariant-audited churn stress sweep.
//
// The paper argues ROFL stays consistent under continuous churn (sections
// 3.2, 6.2) but never defines "consistent" operationally.  This bench does:
// a seeded churn schedule (joins, ephemeral joins, graceful leaves, crashes,
// data traffic) runs with the cross-layer invariant Auditor sampling the
// whole stack every 25 simulated ms, under message-loss levels from 0 to 5%.
// Reported per cell: executed op counts, mid-churn delivery, audits run, and
// the hard/soft violation split -- hard must be zero everywhere, soft counts
// the protocol's tolerated staleness (lazily repaired pointers) actually
// observed mid-run.
//
// Output: a console table plus BENCH_churn.json (override the path with
// ROFL_CHURN_JSON; empty string suppresses emission) with one entry per
// (events, loss) cell, each carrying the deterministic audit digest.  The
// bench re-runs the reference cell and fails unless digest and metrics
// snapshot reproduce byte-for-byte -- the same gate scripts/check.sh applies
// to the roflsim audit command.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "audit/churn.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

namespace rofl {
namespace {

struct ChurnCell {
  std::size_t events = 0;
  double loss = 0.0;
  double wall_seconds = 0.0;  // host wall time of this cell's run
  audit::ChurnRunResult res;
};

ChurnCell run_cell(std::size_t events, double loss) {
  const auto t0 = std::chrono::steady_clock::now();
  ChurnCell cell;
  cell.events = events;
  cell.loss = loss;

  audit::ChurnConfig cc;
  cc.events = events;
  audit::ChurnRunParams params;
  params.router_count = bench::full_scale() ? 60 : 36;
  params.pop_count = bench::full_scale() ? 8 : 5;
  params.initial_hosts = bench::full_scale() ? 64 : 32;
  params.seed = bench::kSeed;
  // Windowed telemetry: BENCH_churn.json embeds the reference cell's
  // per-window join/repair/teardown series (the convergence-curve view).
  params.timeline_window_ms = 25.0;
  if (loss > 0.0) {
    params.use_faults = true;
    params.faults.defaults.loss = loss;
    params.faults.defaults.duplicate = loss / 2.0;
  }
  const auto schedule = audit::make_churn_schedule(cc, bench::kSeed);
  cell.res = audit::run_churn(params, schedule);
  cell.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return cell;
}

void write_json(const std::vector<ChurnCell>& cells,
                const audit::ChurnRunResult& reference) {
  std::string path = "BENCH_churn.json";
  if (const char* env = std::getenv("ROFL_CHURN_JSON")) path = env;
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "fig_churn: cannot open " << path << "\n";
    return;
  }
  out << "{\n  \"schema\": \"rofl-bench-churn-v1\",\n  \"sweep\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    const auto& r = c.res;
    out << "    {\"events\": " << c.events << ", \"loss\": " << c.loss
        << ", \"joins\": " << r.joins
        << ", \"joins_failed\": " << r.joins_failed
        << ", \"leaves\": " << r.leaves << ", \"crashes\": " << r.crashes
        << ", \"routes\": " << r.routes << ", \"delivered\": " << r.delivered
        << ", \"audits\": " << r.audits << ", \"hard\": " << r.hard
        << ", \"soft\": " << r.soft
        << ", \"converged\": " << (r.converged ? "true" : "false")
        << ", \"events_dispatched\": " << r.events_dispatched
        << ", \"events_per_sec\": "
        << (c.wall_seconds > 0.0
                ? static_cast<double>(r.events_dispatched) / c.wall_seconds
                : 0.0)
        << ", \"digest\": \"" << r.digest << "\"}"
        << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"run\": " << bench::run_info_json([&] {
    double total = 0.0;
    for (const auto& c : cells) total += c.wall_seconds;
    return total;
  }());
  // Per-window delta series from the reference cell: convergence traffic
  // over sim time (deterministic; part of the reproduction gate below).
  out << ",\n  \"series\": {\n    \"window_ms\": "
      << reference.timeline_window_ms;
  for (const auto& [name, values] : reference.timeline_series) {
    out << ",\n    \"" << name << "\": [";
    for (std::size_t i = 0; i < values.size(); ++i) {
      out << (i == 0 ? "" : ", ") << values[i];
    }
    out << "]";
  }
  out << "\n  }";
  out << ",\n  \"metrics\": " << reference.metrics_json << "}\n";
  std::cout << "JSON written to " << path << "\n";
}

}  // namespace
}  // namespace rofl

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  print_banner(std::cout,
               "Invariant-audited churn: hard/soft violations vs load & loss");

  const std::vector<std::size_t> event_counts =
      bench::full_scale() ? std::vector<std::size_t>{100, 300}
                          : std::vector<std::size_t>{60, 150};
  const std::vector<double> losses = {0.0, 0.02, 0.05};

  std::vector<ChurnCell> cells;
  bool all_clean = true;
  Table t({"events", "loss", "joins", "leaves", "crashes", "delivery",
           "audits", "hard", "soft", "converged"});
  for (const std::size_t events : event_counts) {
    for (const double loss : losses) {
      cells.push_back(run_cell(events, loss));
      const auto& r = cells.back().res;
      all_clean = all_clean && r.converged && r.hard == 0;
      t.add_row({static_cast<std::int64_t>(events), loss,
                 static_cast<std::int64_t>(r.joins),
                 static_cast<std::int64_t>(r.leaves),
                 static_cast<std::int64_t>(r.crashes),
                 std::to_string(r.delivered) + "/" + std::to_string(r.routes),
                 static_cast<std::int64_t>(r.audits),
                 static_cast<std::int64_t>(r.hard),
                 static_cast<std::int64_t>(r.soft),
                 std::string(r.converged ? "yes" : "NO")});
    }
  }
  t.print(std::cout);

  std::cout
      << "\nEvery audit interval checks ring agreement, directory/vnode "
         "residency, cache route validity, ephemeral anchoring, and "
         "interdomain registrations.  Hard violations (state no protocol "
         "rule permits) must be zero at every sample; soft counts the "
         "tolerated staleness -- cached pointers to departed IDs -- that "
         "greedy forwarding tears down lazily.  Loss raises soft counts and "
         "failed joins, never hard ones.\n";

  // Determinism gate: the reference cell must reproduce bit-for-bit --
  // identical audit digest (violation-by-violation) and metrics snapshot.
  const ChurnCell again = run_cell(event_counts.front(), 0.02);
  const auto& ref = cells[1].res;
  const bool identical = again.res.digest == ref.digest &&
                         again.res.metrics_json == ref.metrics_json &&
                         again.res.timeline_jsonl == ref.timeline_jsonl &&
                         !ref.timeline_jsonl.empty();
  std::cout << "same-seed reproduction at loss=0.02: "
            << (identical ? "bit-identical digest + metrics" : "MISMATCH")
            << "\n";

  write_json(cells, cells[1].res);
  return (identical && all_clean) ? 0 : 1;
}
