#include "ext/traffic_control.hpp"

#include <algorithm>

namespace rofl::ext {

std::vector<graph::AsIndex> negotiable_ases(const inter::InterNetwork& net,
                                            graph::AsIndex src_as,
                                            graph::AsIndex dst_as) {
  const auto& topo = net.work_topology();
  const auto up_s = topo.up_hierarchy(src_as);
  const auto up_d = topo.up_hierarchy(dst_as);
  std::vector<graph::AsIndex> common;
  for (const graph::AsIndex a : up_d.nodes) {  // destination-side ordering
    if (up_s.contains(a)) common.push_back(a);
  }
  std::stable_sort(common.begin(), common.end(),
                   [&](graph::AsIndex a, graph::AsIndex b) {
                     return up_d.level.at(a) < up_d.level.at(b);
                   });
  return common;
}

NegotiatedRouteResult route_negotiated(
    inter::InterNetwork& net, graph::AsIndex src_as, const NodeId& dest,
    const std::vector<graph::AsIndex>& allowed) {
  NegotiatedRouteResult result;
  std::vector<graph::AsIndex> trace;
  result.stats = net.route(src_as, dest, &trace);
  if (!result.stats.delivered) return result;

  const auto dst_home = net.home_of(dest);
  const auto& topo = net.work_topology();
  // Compliance: every transit AS lies in the negotiated set or in the
  // customer subtree of one of its members (traffic below an allowed
  // ancestor is that ancestor's business).
  result.compliant = std::all_of(
      trace.begin(), trace.end(), [&](graph::AsIndex t) {
        if (topo.is_virtual(t)) return true;
        if (t == src_as || (dst_home.has_value() && t == *dst_home)) return true;
        return std::any_of(allowed.begin(), allowed.end(),
                           [&](graph::AsIndex w) {
                             return w == t || topo.in_subtree(w, t);
                           });
      });
  return result;
}

TeBinding te_multihomed_join(inter::InterNetwork& net,
                             const GroupId& host_group, graph::AsIndex home) {
  TeBinding binding;
  binding.providers = net.work_topology().providers(home);
  std::uint32_t suffix = 0;
  for (const graph::AsIndex provider : binding.providers) {
    const NodeId id = host_group.with_suffix(suffix++);
    const auto js = net.join_group_id(id, home, inter::JoinStrategy::kSingleHomed,
                                      provider);
    if (js.ok) {
      binding.ids.push_back(id);
      binding.join_messages += js.messages;
    } else {
      binding.ids.push_back(NodeId{});
    }
  }
  return binding;
}

}  // namespace rofl::ext
